module stateowned

go 1.22
