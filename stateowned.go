// Package stateowned reproduces, end to end, the methodology of
// "Identifying ASes of State-Owned Internet Operators" (Carisimo,
// Gamero-Garrido, Snoeren, Dainotti — ACM IMC 2021) on a synthetic,
// seeded world.
//
// A single call to Run generates the ground-truth world (countries,
// companies, equity graphs, ASes, prefixes), derives every measurement
// data source the paper consumes (BGP origin table and monitor paths,
// country-level geolocation, APNIC-style eyeball estimates, the CTI
// transit-influence metric, WHOIS, PeeringDB, AS2Org, Orbis and the
// documentary confirmation corpus), and executes the paper's three-stage
// classification pipeline:
//
//	stage 1  candidate ASes (geolocation >= 5%, eyeballs >= 5%, CTI top-2)
//	         and candidate companies (Orbis, Wikipedia + Freedom House),
//	         with AS-to-company mapping via WHOIS and PeeringDB;
//	stage 2  mechanized ownership confirmation against authoritative
//	         documents, scope filtering, subsidiary discovery;
//	stage 3  company-to-ASN mapping, AS2Org sibling expansion, and the
//	         final dataset in the paper's Listing-1 JSON schema.
//
// Because the world is synthetic, the ground truth is known, and the
// pipeline's precision/recall can be scored exactly — something the
// original study could only approximate through expert spot checks. The
// internal/analysis package regenerates every table and figure of the
// paper's evaluation from a Result.
package stateowned

import (
	"sort"
	"sync"

	"stateowned/internal/analysis"
	"stateowned/internal/as2org"
	"stateowned/internal/bgp"
	"stateowned/internal/candidates"
	"stateowned/internal/ccodes"
	"stateowned/internal/confirm"
	"stateowned/internal/cti"
	"stateowned/internal/docsrc"
	"stateowned/internal/expand"
	"stateowned/internal/eyeballs"
	"stateowned/internal/faults"
	"stateowned/internal/geo"
	"stateowned/internal/graph"
	"stateowned/internal/hijack"
	"stateowned/internal/orbis"
	"stateowned/internal/peeringdb"
	"stateowned/internal/runner"
	"stateowned/internal/sched"
	"stateowned/internal/serve"
	"stateowned/internal/topology"
	"stateowned/internal/whois"
	"stateowned/internal/world"
)

// Config parameterizes a full run.
type Config struct {
	// Seed drives the world and every simulated data source.
	Seed uint64
	// Scale shrinks the world for tests (1.0 = the default experiment
	// world of roughly 10k ASes).
	Scale float64
	// Countries restricts the world to a subset (nil = all).
	Countries []string
	// Monitors sets the BGP vantage-point count (0 = 60, as in a
	// mid-sized RouteViews/RIS collector set).
	Monitors int
	// Workers bounds the build scheduler's pool: how many independent
	// substrate builds (and per-country CTI computations, per-origin BGP
	// propagations) may run concurrently. 0 selects GOMAXPROCS; 1 runs
	// the canonical serial schedule. The result is bit-identical for
	// every worker count — the determinism tests enforce it.
	Workers int

	// World, when non-nil, supplies a pre-built ground truth instead of
	// generating one from Seed/Scale/Countries — the hook the
	// generational snapshot store (internal/snapshot) uses to rebuild
	// the pipeline over a churn-evolved world. The world is adopted, not
	// copied: callers must not mutate it while the Result is alive. A
	// world generated with the same Seed/Scale/Countries yields a run
	// bit-identical to one without the override.
	World *world.World

	// Ablation switches (all false for the paper-faithful pipeline).
	DisableGeo      bool
	DisableEyeballs bool
	DisableCTI      bool
	DisableOrbis    bool
	DisableWikiFH   bool
	// DisableSiblings turns off stage-3 AS2Org expansion.
	DisableSiblings bool
	// Threshold overrides the 5% market-share cut when > 0.
	Threshold float64

	// ChaosSeverity turns on seeded fault injection when > 0 (up to 1):
	// monitor outages, WHOIS/geolocation record loss and corruption,
	// Orbis timeouts, missing documents. The hardened runner retries
	// transient faults, quarantines corrupt records and degrades
	// gracefully; Result.Health reports what was lost.
	ChaosSeverity float64
	// ChaosSeed seeds the fault plan independently of the world
	// (0 = derive from Seed), so one world can be replayed under many
	// fault episodes.
	ChaosSeed uint64

	// HijackSeverity turns on the seeded routing adversary when > 0 (up
	// to 1): a roster of exact-prefix, sub-prefix and forged-path
	// campaigns drawn by internal/hijack pollutes the monitor paths CTI
	// consumes, and the detection pass publishes what origin-based
	// monitoring would catch. Severity selects a prefix of the roster,
	// so raising it only adds campaigns.
	HijackSeverity float64
	// HijackSeed seeds the campaign roster independently of the world
	// (0 = derive from Seed), so one world can be replayed under many
	// adversary episodes.
	HijackSeed uint64
	// ROVFraction in [0,1] sets route-origin-validation deployment: the
	// nested per-AS thresholds in world/topology admit exactly the ASes
	// below the fraction, and validators neither adopt nor re-export
	// invalid announcements. At 1.0 every campaign is inert and the run
	// is byte-identical to an honest one.
	ROVFraction float64

	// Memo supplies the previous build's artifact cache for an
	// incremental rebuild: nodes whose input fingerprints match re-adopt
	// the memoized artifact instead of rebuilding, provably without
	// changing a byte of output. Only consulted when World is non-nil
	// (the snapshot store's rebuild path) — a generated-world run always
	// builds from scratch. The memo is not retained on the Result's
	// Config (it is scrubbed after the run) so holding a Result never
	// pins the previous generation's artifacts.
	Memo *sched.Memo
	// CaptureMemo asks the run to capture its own artifact cache into
	// Result.Memo for the next incremental rebuild. Like Memo it is
	// only honored when World is non-nil.
	CaptureMemo bool
}

// DefaultConfig is the configuration all experiments run with.
func DefaultConfig() Config { return Config{Seed: 42, Scale: 1.0} }

// Result carries every intermediate and final product of a run.
type Result struct {
	Config Config

	// Ground truth and substrates.
	World     *world.World
	Topology  *topology.Graph // final-year snapshot
	Geo       *geo.DB
	Eyeballs  *eyeballs.Dataset
	WHOIS     *whois.Registry
	PeeringDB *peeringdb.DB
	AS2Org    *as2org.Mapping
	Orbis     *orbis.DB
	Docs      *docsrc.Corpus
	Monitors  []bgp.Monitor
	CTITop    map[string][]world.ASN

	// Hijacks is the adversary detection report: origin changes observed
	// against the registered ownership, empty (never nil) on honest or
	// fully-ROV-gated runs. Served at /v1/hijacks.
	Hijacks *hijack.Report

	// Pipeline stages.
	Candidates   *candidates.Result
	Confirmation *confirm.Result
	Dataset      *expand.Dataset

	// Health is the degradation report of the hardened runner: per-source
	// status, records dropped and quarantined, retries spent, stages that
	// ran degraded. Always populated; all-healthy on a pristine run.
	Health *runner.Health

	// Memo is the artifact cache captured for the next incremental
	// rebuild (Config.CaptureMemo); nil otherwise. Like Health.Timings it
	// is build metadata: it must never feed into rendered output or
	// determinism comparisons.
	Memo *sched.Memo
	// Reused lists, in canonical node order, the build-graph nodes whose
	// artifacts were restored from Config.Memo instead of rebuilt. Empty
	// on a full build. Build metadata, like Memo.
	Reused []string

	// ctiSlices is the per-country CTI slice memo riding inside the cti
	// node's artifact (see incremental.go).
	ctiSlices map[string]ctiSlice

	indexOnce sync.Once
	index     *serve.Index

	graphOnce sync.Once
	graph     *graph.Graph
}

// AdoptIndex pre-seeds the lazily compiled serving index with one built
// from an identical dataset — the snapshot store calls it when an
// incremental rebuild proved the dataset unchanged, so the previous
// generation's index (immutable, safe to share) serves the new one too.
// A nil index, or an index already compiled, is ignored.
func (r *Result) AdoptIndex(idx *serve.Index) {
	if idx == nil {
		return
	}
	r.indexOnce.Do(func() { r.index = idx })
}

// AdoptGraph pre-seeds the lazily compiled relationship query plane,
// the graph-plane analogue of AdoptIndex: safe exactly when the
// topology, monitor set and AS2Org inputs are unchanged.
func (r *Result) AdoptGraph(g *graph.Graph) {
	if g == nil {
		return
	}
	r.graphOnce.Do(func() { r.graph = g })
}

// Index compiles (once, lazily) the run's dataset into the serving
// index: O(1) ASN/country/org lookups and fuzzy name search, the
// substrate of internal/serve's HTTP API and cmd/query. The index is
// immutable and safe for concurrent readers.
func (r *Result) Index() *serve.Index {
	r.indexOnce.Do(func() { r.index = serve.BuildIndex(r.Dataset) })
	return r.index
}

// Graph compiles (once, lazily) the run's relationship query plane: the
// classed adjacency, customer-cone closure, transit-dependency ranking
// and valley-free path oracle behind internal/serve's /v1/graph/*
// endpoints and cmd/query's graph modes. It reuses the run's monitor
// set when CTI selected one (so dependency scores are observed from the
// same vantage points, outages included) and derives the canonical set
// otherwise; the build fans out on the run's Workers budget and is
// bit-identical for every worker count. Nil when the run has no
// topology (a degraded build) — callers treat that as "no graph plane".
func (r *Result) Graph() *graph.Graph {
	r.graphOnce.Do(func() {
		if r.Topology == nil {
			return
		}
		monitors := r.Monitors
		if monitors == nil {
			monitors = bgp.SelectMonitors(r.World, r.Topology, r.Config.Monitors)
		}
		r.graph = graph.Build(r.Topology, monitors, r.AS2Org, r.Config.Workers)
	})
	return r.graph
}

// AnalysisData bundles the run's artifacts for internal/analysis, which
// regenerates the paper's tables and figures from them.
func (r *Result) AnalysisData() *analysis.Data {
	return &analysis.Data{
		World: r.World, Geo: r.Geo, Eye: r.Eyeballs, WHOIS: r.WHOIS,
		Cands: r.Candidates, Conf: r.Confirmation, DS: r.Dataset,
	}
}

// minMonitorQuorum is the smallest vantage set CTI is allowed to run on;
// below it the BGP feed is declared unavailable and CTI is skipped.
const minMonitorQuorum = 2

// computeCTI runs the transit-influence metric over the monitor paths for
// every transit-dominated country (the paper applies CTI in 75 such
// countries) and returns the monitor set and the per-country top-2
// transit ASes. Under a fault plan, monitors go dark first: the surviving
// set feeds CTI, and if it falls below quorum the whole source degrades
// to unavailable (the pipeline then simply lacks the C source, the same
// pathway as the DisableCTI ablation).
//
// workers bounds the internal fan-out (per-origin path collection,
// per-country CTI — the per-country computations are independent, which
// is the CTI paper's own observation). Stage notes go through mark
// rather than straight into Health so the scheduler can flush them in
// canonical node order regardless of execution interleaving.
//
// On an incremental rebuild (fps non-nil), the per-country computations
// are memoized individually: each country's slice fingerprint covers
// everything its computation reads — the config, the built topology's
// full content, the live monitor set, and the country's geolocation
// slice — and a country whose fingerprint matches the previous
// generation's slice (prev) reuses its picks without collecting paths
// for its origins. When the topology node re-ran but produced an
// identical graph, every slice proves clean and the CTI re-run
// degenerates to hashing.
func computeCTI(res *Result, cfg Config, plan faults.Plan, h *runner.Health, workers int,
	fps *nodeFPs, prev *ctiArtifact,
	mark func(stage string, degraded bool, note string)) ([]bgp.Monitor, map[string][]world.ASN, map[string]ctiSlice) {
	monitors := bgp.SelectMonitors(res.World, res.Topology, cfg.Monitors)
	if plan.Enabled() && plan.BGP.MonitorOutageRate > 0 {
		inj := plan.Injector("bgp", faults.RecordSpec{DropRate: plan.BGP.MonitorOutageRate})
		up, dark := bgp.ApplyOutages(monitors, func(bgp.Monitor) bool { return inj.Next() == faults.Drop })
		h.NoteDamage("bgp", faults.Damage{Dropped: dark})
		monitors = up
		if len(monitors) < minMonitorQuorum {
			h.MarkUnavailable("bgp", "monitor set below quorum")
			mark("cti", true, "too few live monitors; CTI skipped")
			return nil, map[string][]world.ASN{}, nil
		}
	}

	// Countries in scope for CTI: the paper applies the metric in 75
	// transit-dominated countries; pick the most gateway-like first.
	type ctiCand struct {
		cc    string
		score float64
	}
	var cands []ctiCand
	for _, cc := range res.World.Countries {
		prof := res.World.Profiles[cc]
		if !prof.TransitDominated {
			continue
		}
		s := 1 - prof.ICT
		if prof.GatewayConcentrated {
			s += 10
		}
		// The CTI study concentrated on Latin America and Africa; keep
		// LACNIC's transit-dominated countries inside the 75-country cap
		// (this is where the paper's CTI source surfaced ARSAT-style
		// state transit builders).
		if c, ok := ccodes.ByCode(cc); ok && c.RIR == ccodes.LACNIC {
			s += 1.5
		}
		cands = append(cands, ctiCand{cc, s})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].cc < cands[j].cc
	})
	const ctiCountryCap = 75
	var ctiCountries []string
	for i, c := range cands {
		if i >= ctiCountryCap {
			break
		}
		ctiCountries = append(ctiCountries, c.cc)
	}

	perCountry := map[string][]world.ASN{}
	for _, cc := range ctiCountries {
		for _, tr := range res.Geo.CountryOrigins(cc) {
			perCountry[cc] = append(perCountry[cc], tr.Origin)
		}
		world.SortASNs(perCountry[cc])
	}

	// The routing adversary, when enabled, pollutes the paths CTI reads.
	// The plan is a pure function of (world, topology, hijack knobs), so
	// building it here and in the hijack node yields the same campaigns.
	var adv *bgp.Adversary
	var advFP sched.Fingerprint
	if cfg.HijackSeverity > 0 {
		plan := hijack.NewPlan(res.World, res.Topology, hijackConfig(cfg))
		adv = plan.Adversary()
		advFP = plan.Fingerprint()
	}

	// Slice memo: fingerprint each country's full read set and mark the
	// countries whose previous-generation slice no longer matches.
	reuse := fps != nil
	var sliceFPs map[string]sched.Fingerprint
	if reuse {
		topoFP := topologyContentFP(res.Topology)
		monFP := monitorsContentFP(monitors)
		sliceFPs = make(map[string]sched.Fingerprint, len(ctiCountries))
		for _, cc := range ctiCountries {
			sh := sched.NewHasher("cti/slice")
			sh.FP(fps.cfg)
			sh.FP(topoFP)
			sh.FP(monFP)
			sh.FP(advFP) // zero when the adversary is off; cfg covers the knobs
			sh.Str(cc)
			sh.U64(res.Geo.TotalIn(cc))
			sh.I64(int64(len(perCountry[cc])))
			for _, o := range perCountry[cc] {
				sh.U64(uint64(o))
				np := res.Geo.NumPrefixes(o)
				sh.I64(int64(np))
				for pi := 0; pi < np; pi++ {
					sh.U64(res.Geo.AddressesIn(o, pi, cc))
				}
			}
			sliceFPs[cc] = sh.Sum()
		}
	}
	ccPicks := make([][]world.ASN, len(ctiCountries))
	var dirtyIdx []int
	for i, cc := range ctiCountries {
		if reuse && prev != nil {
			if ps, ok := prev.slices[cc]; ok && ps.fp == sliceFPs[cc] {
				ccPicks[i] = ps.picks
				continue
			}
		}
		dirtyIdx = append(dirtyIdx, i)
	}

	// Paths are only collected for the origins the dirty countries need;
	// on a fully clean re-run the collection is empty.
	originSet := map[world.ASN]bool{}
	for _, i := range dirtyIdx {
		for _, o := range perCountry[ctiCountries[i]] {
			originSet[o] = true
		}
	}
	origins := make([]world.ASN, 0, len(originSet))
	for o := range originSet {
		origins = append(origins, o)
	}
	world.SortASNs(origins)

	paths := bgp.CollectPathsAdversary(res.Topology, monitors, origins, workers, adv)
	comp := cti.NewComputer(paths)
	// Per-country CTI computations are independent reads over the frozen
	// path collection and geo snapshot: fan them out, each iteration
	// owning its result slot, then assemble the map in canonical order.
	sched.ParallelFor(workers, len(dirtyIdx), func(k int) {
		i := dirtyIdx[k]
		cc := ctiCountries[i]
		scores := comp.Country(cc, perCountry[cc], res.Geo.NumPrefixes, res.Geo)
		for _, s := range cti.TopK(scores, candidates.CTITopK) {
			ccPicks[i] = append(ccPicks[i], s.AS)
		}
	})
	var slices map[string]ctiSlice
	if reuse {
		slices = make(map[string]ctiSlice, len(ctiCountries))
		for i, cc := range ctiCountries {
			slices[cc] = ctiSlice{fp: sliceFPs[cc], picks: ccPicks[i]}
		}
	}
	top := make(map[string][]world.ASN, len(ctiCountries))
	for i, cc := range ctiCountries {
		if len(ccPicks[i]) > 0 {
			top[cc] = ccPicks[i]
		}
	}
	return monitors, top, slices
}

// hijackConfig projects the adversary knobs for internal/hijack.
func hijackConfig(cfg Config) hijack.Config {
	return hijack.Config{
		Severity:    cfg.HijackSeverity,
		Seed:        cfg.HijackSeed,
		ROVFraction: cfg.ROVFraction,
	}
}

// computeHijacks runs the campaign plan through the adversarial
// collector and the plan-blind detection pass. The monitor count is
// reported even when no campaign runs, so an honest run and a
// fully-ROV-gated one publish byte-identical (empty) reports; a run
// with no topology (degraded build) publishes an empty report with no
// vantage points.
func computeHijacks(res *Result, cfg Config, workers int) *hijack.Report {
	rep := &hijack.Report{Detections: []hijack.Detection{}}
	if res.Topology == nil {
		return rep
	}
	monitors := res.Monitors
	if monitors == nil {
		monitors = bgp.SelectMonitors(res.World, res.Topology, cfg.Monitors)
	}
	rep.Monitors = len(monitors)
	if cfg.HijackSeverity <= 0 {
		return rep
	}
	plan := hijack.NewPlan(res.World, res.Topology, hijackConfig(cfg))
	victims := plan.Victims()
	if len(victims) == 0 {
		return rep
	}
	paths := bgp.CollectPathsAdversary(res.Topology, monitors, victims, workers, plan.Adversary())
	return hijack.Detect(paths, victims, res.World)
}

// runStage1 assembles the candidate inputs, honoring ablation switches.
// A source that went unavailable under faults arrives here as nil and is
// treated exactly like its ablation switch.
func runStage1(res *Result, cfg Config) *candidates.Result {
	in := candidates.Inputs{
		WHOIS:     res.WHOIS,
		PeeringDB: res.PeeringDB,
		AS2Org:    res.AS2Org,
		Docs:      res.Docs,
		Countries: res.World.Countries,
		CTITop:    res.CTITop,
	}
	in.DisableWikiFH = cfg.DisableWikiFH
	in.Threshold = cfg.Threshold
	if !cfg.DisableGeo {
		in.Geo = res.Geo
	}
	if !cfg.DisableEyeballs {
		in.Eyeballs = res.Eyeballs
	}
	if !cfg.DisableOrbis && res.Orbis != nil {
		in.Orbis = res.Orbis
	}
	return candidates.Run(in)
}
