package stateowned

import (
	"fmt"

	"stateowned/internal/as2org"
	"stateowned/internal/candidates"
	"stateowned/internal/confirm"
	"stateowned/internal/docsrc"
	"stateowned/internal/expand"
	"stateowned/internal/eyeballs"
	"stateowned/internal/faults"
	"stateowned/internal/geo"
	"stateowned/internal/hijack"
	"stateowned/internal/orbis"
	"stateowned/internal/peeringdb"
	"stateowned/internal/runner"
	"stateowned/internal/sched"
	"stateowned/internal/topology"
	"stateowned/internal/whois"
	"stateowned/internal/world"
)

// breakerThreshold is the per-source circuit breaker: after this many
// consecutive failed fetch attempts the source trips to unavailable and
// the pipeline completes on whatever survives.
const breakerThreshold = 4

// sourceOrder fixes the Health report's row order regardless of which
// source is touched first.
var sourceOrder = []string{
	"bgp", "geo", "eyeballs", "whois", "peeringdb", "as2org", "orbis", "docs",
}

// Run executes the full reproduction. With ChaosSeverity > 0 it runs
// under a seeded fault plan: sources are built through the hardened
// runner (retry with deterministic backoff, circuit breakers), corrupt
// records are quarantined by validation passes, unavailable sources fall
// back to the matching ablation pathway, and Result.Health reports the
// degradation. With ChaosSeverity == 0 the same code path runs with a
// no-op plan, so pristine results are bit-identical to the pre-chaos
// pipeline. With Workers != 1 the independent substrate builds overlap
// on the scheduler's pool — provably without changing a byte of output.
func Run(cfg Config) *Result {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	seed := cfg.ChaosSeed
	if seed == 0 {
		seed = cfg.Seed
	}
	return runHardened(cfg, faults.NewPlan(seed, cfg.ChaosSeverity))
}

// stageNote is a deferred Health.MarkStage call: nodes buffer their
// stage notes and runHardened flushes them in canonical node order, so
// the Stages list is identical no matter how parallel execution
// interleaved the nodes.
type stageNote struct {
	stage    string
	degraded bool
	note     string
}

// buildHook, when non-nil, is called at the start of every scheduler
// node with the node's name. It exists for tests that need to inject a
// panicking build into a chosen node and prove the scheduler contains
// it; production runs never set it.
var buildHook func(node string)

// SetBuildHook installs the scheduler-node build hook (nil uninstalls)
// and returns a restore function for the previous value. The hook is
// process-global and not synchronized against concurrent Run calls —
// it exists so tests outside this package (the snapshot store's reload
// gate, chiefly) can force a chosen pipeline node to fail or panic and
// prove the failure is contained. Production code must never call it.
func SetBuildHook(fn func(node string)) (restore func()) {
	prev := buildHook
	buildHook = fn
	return func() { buildHook = prev }
}

// runHardened is the degradation-aware pipeline runner, rebuilt on the
// deterministic DAG scheduler: the five independent data sources (plus
// WHOIS-derived AS2Org and topology-derived CTI) build concurrently on
// a bounded pool after the shared world and topology substrates, while
// the three classification stages remain a serial tail. Every node runs
// behind the scheduler's panic guard (a panicking build degrades its
// source instead of killing the run), record faults are injected and
// quarantined inside the owning node so Health accounting is unchanged
// from the serial pipeline, and per-node wall time lands in
// Health.Timings.
//
// The build graph (stage1 additionally depends on every source node):
//
//	world ─┬─ topology ──┬─ cti ── stage1 ── stage2 ── stage3
//	       ├─ geo ───────┘
//	       ├─ eyeballs
//	       ├─ whois ──── as2org
//	       ├─ peeringdb
//	       ├─ orbis
//	       └─ docs
func runHardened(cfg Config, plan faults.Plan) *Result {
	workers := sched.Workers(cfg.Workers)
	h := runner.NewHealth(plan.Severity)
	h.Workers = workers
	for _, s := range sourceOrder {
		h.Source(s)
	}
	bo := runner.DefaultBackoff()

	res := &Result{Config: cfg, Health: h}

	// Incremental rebuilds engage only on the caller-supplied-world path
	// (the snapshot store): fingerprints must be computable before the
	// graph runs, which requires the world to already exist.
	var fps *nodeFPs
	if cfg.World != nil && (cfg.CaptureMemo || cfg.Memo != nil) {
		fps = fingerprintInputs(cfg)
	}
	memoWiring := memoIO()

	// inject returns the per-source fault stream, or nil (keep all) when
	// the plan is off or the source has no fault channel.
	inject := func(source string, spec faults.RecordSpec) *faults.Injector {
		if !plan.Enabled() || spec.Zero() {
			return nil
		}
		return plan.Injector(source, spec)
	}

	// Graph assembly. Each add captures a per-node note buffer: nodes
	// never call h.MarkStage directly, so the Stages list stays in
	// canonical order under any execution interleaving. On an
	// incremental run each node also gets its MemoSpec: the input
	// fingerprint from fingerprintInputs and a capture/restore pair that
	// moves the node's Result fields, its Health row and its buffered
	// notes in and out of the artifact cache. The buildHook wraps only
	// the real build fn — a restored node never fires it, which is what
	// lets the metamorphic tests assert "zero nodes executed".
	g := sched.New()
	var noteBufs []*[]stageNote
	add := func(name string, fn func(mark func(string, bool, string)) error, deps ...string) {
		buf := &[]stageNote{}
		noteBufs = append(noteBufs, buf)
		mark := func(stage string, degraded bool, note string) {
			*buf = append(*buf, stageNote{stage, degraded, note})
		}
		wrapped := func() error {
			if buildHook != nil {
				buildHook(name)
			}
			return fn(mark)
		}
		io, memoizable := memoWiring[name]
		if fps == nil || !memoizable {
			g.Add(name, wrapped, deps...)
			return
		}
		g.AddMemo(name, sched.MemoSpec{
			FP: fps.node[name],
			Capture: func() any {
				a := memoArtifact{value: io.get(res), notes: append([]stageNote(nil), *buf...)}
				if io.source != "" {
					a.health = *h.Source(io.source)
					a.hasHealth = true
				}
				return a
			},
			Restore: func(v any) {
				a := v.(memoArtifact)
				io.set(res, a.value)
				if a.hasHealth {
					*h.Source(io.source) = a.health
				}
				*buf = append([]stageNote(nil), a.notes...)
			},
			CleanDeps: io.cleanDeps,
		}, wrapped, deps...)
	}

	add("world", func(func(string, bool, string)) error {
		// A caller-supplied world (the snapshot store's churn-evolved
		// ground truth) short-circuits generation; everything downstream
		// is oblivious to where the world came from.
		if cfg.World != nil {
			res.World = cfg.World
			return nil
		}
		res.World = world.Generate(world.Config{
			Seed: cfg.Seed, Scale: cfg.Scale, Countries: cfg.Countries,
		})
		return nil
	})
	add("topology", func(func(string, bool, string)) error {
		res.Topology = topology.Build(res.World, topology.FinalYear)
		return nil
	}, "world")

	// Geolocation feed: build, then inject snapshot faults and run the
	// validation pass so impossible assignments never reach the pipeline.
	add("geo", func(func(string, bool, string)) error {
		res.Geo, _ = runner.Do(h, runner.NewBreaker(breakerThreshold), bo, "geo",
			func(int) (*geo.DB, error) { return geo.Build(res.World), nil })
		if in := inject("geo", plan.Geo); in != nil {
			h.NoteDamage("geo", res.Geo.Degrade(in))
			h.NoteQuarantined("geo", res.Geo.Quarantine())
		}
		return nil
	}, "world")

	add("eyeballs", func(func(string, bool, string)) error {
		res.Eyeballs, _ = runner.Do(h, runner.NewBreaker(breakerThreshold), bo, "eyeballs",
			func(int) (*eyeballs.Dataset, error) { return eyeballs.Build(res.World), nil })
		return nil
	}, "world")

	add("whois", func(func(string, bool, string)) error {
		res.WHOIS, _ = runner.Do(h, runner.NewBreaker(breakerThreshold), bo, "whois",
			func(int) (*whois.Registry, error) { return whois.Build(res.World), nil })
		if in := inject("whois", plan.WHOIS); in != nil {
			h.NoteDamage("whois", res.WHOIS.Degrade(in))
			h.NoteQuarantined("whois", res.WHOIS.Quarantine())
		}
		return nil
	}, "world")

	add("peeringdb", func(func(string, bool, string)) error {
		res.PeeringDB, _ = runner.Do(h, runner.NewBreaker(breakerThreshold), bo, "peeringdb",
			func(int) (*peeringdb.DB, error) { return peeringdb.Build(res.World), nil })
		return nil
	}, "world")

	// AS2Org is inferred from whatever WHOIS survived, so WHOIS damage
	// propagates into sibling inference exactly as it would in the wild.
	add("as2org", func(func(string, bool, string)) error {
		res.AS2Org, _ = runner.Do(h, runner.NewBreaker(breakerThreshold), bo, "as2org",
			func(int) (*as2org.Mapping, error) { return as2org.Infer(res.WHOIS), nil })
		return nil
	}, "whois")

	// Orbis is the transiently failing source: the plan's first Timeouts
	// attempts fail and runner.Do retries them with backoff. If the retry
	// budget or the breaker runs out, the run degrades to the same path as
	// the DisableOrbis ablation (stage 1 without the O source).
	add("orbis", func(mark func(string, bool, string)) error {
		orbisIn := inject("orbis", plan.Orbis.Records)
		orbisDB, orbisOK := runner.Do(h, runner.NewBreaker(breakerThreshold), bo, "orbis",
			func(attempt int) (*orbis.DB, error) {
				return orbis.Fetch(res.World, attempt, plan.Orbis.Timeouts, orbisIn)
			})
		if orbisOK {
			res.Orbis = orbisDB
			if orbisIn != nil {
				h.NoteDamage("orbis", orbisIn.Damage())
				h.NoteQuarantined("orbis", res.Orbis.Quarantine())
			}
		} else {
			mark("stage1", true, "orbis unavailable; candidates ran without the O source")
		}
		return nil
	}, "world")

	add("docs", func(func(string, bool, string)) error {
		res.Docs, _ = runner.Do(h, runner.NewBreaker(breakerThreshold), bo, "docs",
			func(int) (*docsrc.Corpus, error) { return docsrc.Build(res.World), nil })
		if in := inject("docs", plan.Docs); in != nil {
			h.NoteDamage("docs", res.Docs.Degrade(in))
		}
		return nil
	}, "world")

	add("cti", func(mark func(string, bool, string)) error {
		if cfg.DisableCTI {
			res.CTITop = map[string][]world.ASN{}
			res.ctiSlices = nil
			return nil
		}
		var prevCTI *ctiArtifact
		if fps != nil {
			prevCTI = prevCTIArtifact(cfg.Memo)
		}
		res.Monitors, res.CTITop, res.ctiSlices = computeCTI(res, cfg, plan, h, workers, fps, prevCTI, mark)
		return nil
	}, "topology", "geo")

	// The routing adversary rides after CTI so it reuses the same
	// outage-thinned monitor set. Detection is plan-blind: honest and
	// fully-ROV-gated runs publish byte-identical empty reports.
	add("hijack", func(func(string, bool, string)) error {
		res.Hijacks = computeHijacks(res, cfg, workers)
		return nil
	}, "topology", "cti")

	// The serial tail: the classification stages consume every source.
	add("stage1", func(func(string, bool, string)) error {
		res.Candidates = runStage1(res, cfg)
		return nil
	}, "geo", "eyeballs", "whois", "peeringdb", "as2org", "orbis", "docs", "cti")
	// Stages 2 and 3 substitute an empty input when their predecessor
	// panicked (and so produced nothing): they still run and degrade
	// gracefully, exactly as under the old per-stage panic guard.
	add("stage2", func(func(string, bool, string)) error {
		cands := res.Candidates
		if cands == nil {
			cands = &candidates.Result{}
		}
		res.Confirmation = confirm.Run(confirm.Inputs{
			WHOIS: res.WHOIS, PeeringDB: res.PeeringDB, Docs: res.Docs,
		}, cands.Companies)
		return nil
	}, "stage1")
	add("stage3", func(func(string, bool, string)) error {
		conf := res.Confirmation
		if conf == nil {
			conf = &confirm.Result{}
		}
		res.Dataset = expand.Run(conf, res.AS2Org, expand.Options{
			DisableSiblingExpansion: cfg.DisableSiblings,
			WHOIS:                   res.WHOIS,
		})
		return nil
	}, "stage2")

	var results []sched.NodeResult
	if fps != nil {
		var next *sched.Memo
		results, next = g.RunMemo(workers, cfg.Memo)
		if cfg.CaptureMemo {
			res.Memo = next
		}
	} else {
		results = g.Run(workers)
	}

	// Post-run accounting, all in declaration (= canonical serial)
	// order: flush each node's deferred stage notes, then translate a
	// guarded panic into the serial pipeline's degradation pathway — a
	// source build panic trips that source's circuit, a stage panic
	// yields the stage's empty fallback and a degraded-stage note.
	isSource := map[string]bool{}
	for _, s := range sourceOrder {
		isSource[s] = true
	}
	h.Timings = make([]runner.NodeTiming, len(results))
	for i, r := range results {
		h.Timings[i] = runner.NodeTiming{Node: r.Name, Wall: r.Wall, Reused: r.Reused}
		if r.Reused {
			res.Reused = append(res.Reused, r.Name)
		}
		for _, n := range *noteBufs[i] {
			h.MarkStage(n.stage, n.degraded, n.note)
		}
		if r.Err == nil {
			continue
		}
		if isSource[r.Name] {
			h.MarkUnavailable(r.Name, r.Err.Error())
		} else {
			h.MarkStage(r.Name, true, fmt.Sprintf("node panicked, substituted empty result: %v", r.Err))
		}
	}

	// Scrub the memo inputs off the retained Config: a Result must never
	// pin the previous generation's artifact cache (and through it, a
	// transitive chain of every generation ever built).
	res.Config.Memo = nil
	res.Config.CaptureMemo = false

	// Empty fallbacks for anything a panicked node failed to produce,
	// mirroring the old guardStage contract: downstream consumers see an
	// empty-but-valid value, never nil stages.
	if res.CTITop == nil {
		res.CTITop = map[string][]world.ASN{}
	}
	if res.Hijacks == nil {
		res.Hijacks = &hijack.Report{Detections: []hijack.Detection{}}
	}
	if res.Candidates == nil {
		res.Candidates = &candidates.Result{PerSourceASes: map[candidates.Source][]world.ASN{}}
	}
	if res.Confirmation == nil {
		res.Confirmation = &confirm.Result{}
	}
	if res.Dataset == nil {
		res.Dataset = &expand.Dataset{}
	}
	return res
}
