package stateowned

import (
	"fmt"

	"stateowned/internal/as2org"
	"stateowned/internal/candidates"
	"stateowned/internal/confirm"
	"stateowned/internal/docsrc"
	"stateowned/internal/expand"
	"stateowned/internal/eyeballs"
	"stateowned/internal/faults"
	"stateowned/internal/geo"
	"stateowned/internal/orbis"
	"stateowned/internal/peeringdb"
	"stateowned/internal/runner"
	"stateowned/internal/topology"
	"stateowned/internal/whois"
	"stateowned/internal/world"
)

// breakerThreshold is the per-source circuit breaker: after this many
// consecutive failed fetch attempts the source trips to unavailable and
// the pipeline completes on whatever survives.
const breakerThreshold = 4

// sourceOrder fixes the Health report's row order regardless of which
// source is touched first.
var sourceOrder = []string{
	"bgp", "geo", "eyeballs", "whois", "peeringdb", "as2org", "orbis", "docs",
}

// Run executes the full reproduction. With ChaosSeverity > 0 it runs
// under a seeded fault plan: sources are built through the hardened
// runner (retry with deterministic backoff, circuit breakers), corrupt
// records are quarantined by validation passes, unavailable sources fall
// back to the matching ablation pathway, and Result.Health reports the
// degradation. With ChaosSeverity == 0 the same code path runs with a
// no-op plan, so pristine results are bit-identical to the pre-chaos
// pipeline.
func Run(cfg Config) *Result {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	seed := cfg.ChaosSeed
	if seed == 0 {
		seed = cfg.Seed
	}
	return runHardened(cfg, faults.NewPlan(seed, cfg.ChaosSeverity))
}

// runHardened is the degradation-aware pipeline runner: every substrate
// build goes through runner.Do, record faults are injected and then
// quarantined, and the three classification stages run behind panic
// guards so a degraded substrate can never take the whole run down.
func runHardened(cfg Config, plan faults.Plan) *Result {
	h := runner.NewHealth(plan.Severity)
	for _, s := range sourceOrder {
		h.Source(s)
	}
	bo := runner.DefaultBackoff()

	res := &Result{Config: cfg, Health: h}
	res.World = world.Generate(world.Config{
		Seed: cfg.Seed, Scale: cfg.Scale, Countries: cfg.Countries,
	})
	res.Topology = topology.Build(res.World, topology.FinalYear)

	// inject returns the per-source fault stream, or nil (keep all) when
	// the plan is off or the source has no fault channel.
	inject := func(source string, spec faults.RecordSpec) *faults.Injector {
		if !plan.Enabled() || spec.Zero() {
			return nil
		}
		return plan.Injector(source, spec)
	}

	// Geolocation feed: build, then inject snapshot faults and run the
	// validation pass so impossible assignments never reach the pipeline.
	res.Geo, _ = runner.Do(h, runner.NewBreaker(breakerThreshold), bo, "geo",
		func(int) (*geo.DB, error) { return geo.Build(res.World), nil })
	if in := inject("geo", plan.Geo); in != nil {
		h.NoteDamage("geo", res.Geo.Degrade(in))
		h.NoteQuarantined("geo", res.Geo.Quarantine())
	}

	res.Eyeballs, _ = runner.Do(h, runner.NewBreaker(breakerThreshold), bo, "eyeballs",
		func(int) (*eyeballs.Dataset, error) { return eyeballs.Build(res.World), nil })

	res.WHOIS, _ = runner.Do(h, runner.NewBreaker(breakerThreshold), bo, "whois",
		func(int) (*whois.Registry, error) { return whois.Build(res.World), nil })
	if in := inject("whois", plan.WHOIS); in != nil {
		h.NoteDamage("whois", res.WHOIS.Degrade(in))
		h.NoteQuarantined("whois", res.WHOIS.Quarantine())
	}

	res.PeeringDB, _ = runner.Do(h, runner.NewBreaker(breakerThreshold), bo, "peeringdb",
		func(int) (*peeringdb.DB, error) { return peeringdb.Build(res.World), nil })

	// AS2Org is inferred from whatever WHOIS survived, so WHOIS damage
	// propagates into sibling inference exactly as it would in the wild.
	res.AS2Org, _ = runner.Do(h, runner.NewBreaker(breakerThreshold), bo, "as2org",
		func(int) (*as2org.Mapping, error) { return as2org.Infer(res.WHOIS), nil })

	// Orbis is the transiently failing source: the plan's first Timeouts
	// attempts fail and runner.Do retries them with backoff. If the retry
	// budget or the breaker runs out, the run degrades to the same path as
	// the DisableOrbis ablation (stage 1 without the O source).
	orbisIn := inject("orbis", plan.Orbis.Records)
	orbisDB, orbisOK := runner.Do(h, runner.NewBreaker(breakerThreshold), bo, "orbis",
		func(attempt int) (*orbis.DB, error) {
			return orbis.Fetch(res.World, attempt, plan.Orbis.Timeouts, orbisIn)
		})
	if orbisOK {
		res.Orbis = orbisDB
		if orbisIn != nil {
			h.NoteDamage("orbis", orbisIn.Damage())
			h.NoteQuarantined("orbis", res.Orbis.Quarantine())
		}
	} else {
		h.MarkStage("stage1", true, "orbis unavailable; candidates ran without the O source")
	}

	res.Docs, _ = runner.Do(h, runner.NewBreaker(breakerThreshold), bo, "docs",
		func(int) (*docsrc.Corpus, error) { return docsrc.Build(res.World), nil })
	if in := inject("docs", plan.Docs); in != nil {
		h.NoteDamage("docs", res.Docs.Degrade(in))
	}

	if !cfg.DisableCTI {
		res.Monitors, res.CTITop = computeCTI(res, cfg, plan, h)
	} else {
		res.CTITop = map[string][]world.ASN{}
	}

	res.Candidates = guardStage(h, "stage1",
		&candidates.Result{PerSourceASes: map[candidates.Source][]world.ASN{}},
		func() *candidates.Result { return runStage1(res, cfg) })
	res.Confirmation = guardStage(h, "stage2", &confirm.Result{},
		func() *confirm.Result {
			return confirm.Run(confirm.Inputs{
				WHOIS: res.WHOIS, PeeringDB: res.PeeringDB, Docs: res.Docs,
			}, res.Candidates.Companies)
		})
	res.Dataset = guardStage(h, "stage3", &expand.Dataset{},
		func() *expand.Dataset {
			return expand.Run(res.Confirmation, res.AS2Org, expand.Options{
				DisableSiblingExpansion: cfg.DisableSiblings,
				WHOIS:                   res.WHOIS,
			})
		})
	return res
}

// guardStage runs one classification stage behind a panic guard: a stage
// blown up by a degraded substrate yields its empty fallback and a
// degraded-stage note instead of killing the run.
func guardStage[T any](h *runner.Health, name string, fallback T, fn func() T) T {
	out := fallback
	func() {
		defer func() {
			if r := recover(); r != nil {
				h.MarkStage(name, true, fmt.Sprintf("stage panicked, substituted empty result: %v", r))
			}
		}()
		out = fn()
	}()
	return out
}
