// Quickstart: run the full reproduction end to end on a reduced world and
// look at what the pipeline found — including the Telenor record in the
// exact shape of the paper's Listing 1.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"stateowned"
)

func main() {
	// A reduced world (about a quarter of the default stub density)
	// keeps the quickstart under a couple of seconds.
	res := stateowned.Run(stateowned.Config{Seed: 42, Scale: 0.25})

	ds := res.Dataset
	fmt.Printf("found %d state-owned organizations owning %d ASNs (%d operated abroad)\n\n",
		len(ds.Organizations), len(ds.AllASNs()), ds.NumForeignSubsidiaryASNs())

	// Print the Telenor organization the way the paper's Listing 1 does.
	for i := range ds.Organizations {
		org := &ds.Organizations[i]
		if org.OrgName != "Telenor Norge AS" && org.ConglomerateName != "Telenor Norge AS" {
			continue
		}
		fmt.Println("# Ownership details of an identified state-owned organization")
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(org); err != nil {
			panic(err)
		}
		fmt.Println("# List of ASes operated by the identified state-owned organization")
		if err := enc.Encode(ds.ASNs[i]); err != nil {
			panic(err)
		}
		break
	}

	// The ten countries with the most state-owned ASNs on their soil.
	counts := map[string]int{}
	for i := range ds.Organizations {
		counts[ds.Organizations[i].OperatingCountry()] += len(ds.ASNs[i].ASNs)
	}
	type row struct {
		cc string
		n  int
	}
	rows := make([]row, 0, len(counts))
	for cc, n := range counts {
		rows = append(rows, row{cc, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].cc < rows[j].cc
	})
	fmt.Println("\ncountries with the most state-owned ASNs operated on their soil:")
	for i := 0; i < 10 && i < len(rows); i++ {
		fmt.Printf("  %s  %d\n", rows[i].cc, rows[i].n)
	}
}
