// Dataset-ageing study: §9 of the paper warns that ownership is dynamic —
// privatizations, nationalizations, new foreign expansions — so the
// published dataset needs maintenance, and argues that re-validating an
// existing list is "significantly less taxing" than regenerating it.
//
// This example quantifies that claim: build the dataset at year 0, let
// the world's ownership churn for five years, audit the aged dataset
// against the new ground truth, and compare the maintenance workload with
// a from-scratch rebuild.
package main

import (
	"fmt"

	"stateowned"
	"stateowned/internal/churn"
	"stateowned/internal/report"
)

func main() {
	res := stateowned.Run(stateowned.Config{Seed: 42, Scale: 0.25})
	ds := res.Dataset
	fmt.Printf("year 0: dataset has %d organizations / %d ASNs\n\n",
		len(ds.Organizations), len(ds.AllASNs()))

	events := churn.Evolve(res.World, 5, 2026, churn.DefaultRates())
	byKind := map[churn.EventKind][]churn.Event{}
	for _, e := range events {
		byKind[e.Kind] = append(byKind[e.Kind], e)
	}
	t := report.NewTable("Five years of ownership churn", "event", "count", "examples")
	for _, k := range []churn.EventKind{churn.Privatization, churn.Nationalization, churn.NewForeignSubsidiary} {
		es := byKind[k]
		example := ""
		if len(es) > 0 {
			example = fmt.Sprintf("%s (%s, year %d)", es[0].Company, es[0].Country, es[0].Year)
		}
		t.AddRow(k.String(), len(es), example)
	}
	fmt.Println(t.String())

	audit := churn.RunAudit(ds, res.World)
	fmt.Printf("audit after 5 years:\n")
	fmt.Printf("  still valid:        %d organizations\n", audit.StillValid)
	fmt.Printf("  stale (privatized): %d\n", len(audit.StaleOrgs))
	for i, row := range audit.StaleOrgs {
		if i >= 5 {
			fmt.Printf("    ... and %d more\n", len(audit.StaleOrgs)-5)
			break
		}
		fmt.Printf("    - %s\n", row.OrgName)
	}
	fmt.Printf("  newly state-owned:  %d companies to add\n", len(audit.MissingCompanies))
	fmt.Printf("  maintenance load:   %.1f%% of records need attention\n", 100*audit.MaintenanceFraction)
	fmt.Printf("\nthe paper's §9 claim holds: upkeep touches a small fraction of the list,\n")
	fmt.Printf("while a rebuild would re-verify all %d candidate companies.\n",
		res.Candidates.Stats.CandidateCompanys)
}
