// Foreign-subsidiary exploration: the paper's most striking geographic
// finding is that 19 states operate Internet access abroad through
// subsidiaries, and that in several African countries foreign state-owned
// operators hold the majority of the access market (Figure 1's green
// channel, Table 3, §8).
//
// This example walks the dataset from both ends: which states project
// network ownership abroad, and which countries host the deepest foreign
// state presence.
package main

import (
	"fmt"
	"sort"

	"stateowned"
	"stateowned/internal/analysis"
	"stateowned/internal/ccodes"
	"stateowned/internal/report"
)

func main() {
	res := stateowned.Run(stateowned.Config{Seed: 42, Scale: 0.25})
	d := res.AnalysisData()

	// Owner-side view (Table 3).
	fmt.Println(analysis.RenderTable3(analysis.ComputeTable3(d)))

	// Host-side view: countries by foreign state-owned footprint.
	type hostRow struct {
		cc      string
		foreign float64
		owners  []string
	}
	ownersIn := map[string]map[string]bool{}
	for i := range res.Dataset.Organizations {
		org := &res.Dataset.Organizations[i]
		if !org.IsForeignSubsidiary() {
			continue
		}
		if ownersIn[org.TargetCC] == nil {
			ownersIn[org.TargetCC] = map[string]bool{}
		}
		ownersIn[org.TargetCC][org.OwnershipCC] = true
	}
	var rows []hostRow
	for _, f := range analysis.ComputeFigure1(d) {
		if f.Foreign <= 0.05 {
			continue
		}
		r := hostRow{cc: f.CC, foreign: f.Foreign}
		for o := range ownersIn[f.CC] {
			r.owners = append(r.owners, o)
		}
		sort.Strings(r.owners)
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].foreign != rows[j].foreign {
			return rows[i].foreign > rows[j].foreign
		}
		return rows[i].cc < rows[j].cc
	})

	t := report.NewTable("Hosts with foreign state-owned footprint > 5%",
		"host", "region", "foreign footprint", "owner states")
	african, africanMajority := 0, 0
	for _, r := range rows {
		c := ccodes.MustByCode(r.cc)
		t.AddRow(r.cc, c.Region.String(), fmt.Sprintf("%.2f", r.foreign), fmt.Sprint(r.owners))
		if c.Region == ccodes.Africa {
			african++
			if r.foreign > 0.5 {
				africanMajority++
			}
		}
	}
	fmt.Println(t.String())
	fmt.Printf("African countries with >5%% foreign state footprint: %d (paper: 12)\n", african)
	fmt.Printf("...of which foreign states hold the majority of access: %d (paper: 6)\n", africanMajority)
}
