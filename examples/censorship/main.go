// Censorship-readiness study: the paper's introduction motivates the
// dataset with Internet-shutdown and surveillance research (Dainotti et
// al., Raman et al.). This example combines the state-ownership dataset
// with the topology to answer the question such studies start from: in
// which countries could the state unilaterally disconnect or intercept
// most Internet access, because it owns the networks that carry it?
//
// For each country we compute a "state leverage" score: the state-owned
// share of the access market (max of addresses and eyeballs, as in the
// paper's Figure 1) combined with whether international connectivity
// funnels through a state-owned gateway AS.
package main

import (
	"fmt"
	"sort"

	"stateowned"
	"stateowned/internal/analysis"
	"stateowned/internal/report"
	"stateowned/internal/world"
)

func main() {
	res := stateowned.Run(stateowned.Config{Seed: 42, Scale: 0.25})
	d := res.AnalysisData()

	// Ownership per dataset ASN.
	owner := map[world.ASN]string{}
	for i := range res.Dataset.Organizations {
		for _, a := range res.Dataset.ASNs[i].ASNs {
			owner[a] = res.Dataset.Organizations[i].OwnershipCC
		}
	}

	type row struct {
		cc         string
		market     float64
		gateway    bool // a domestic state-owned AS is the top transit chokepoint
		leverage   float64
		gatewayASN world.ASN
	}
	var rows []row
	footprints := analysis.ComputeFigure1(d)
	for _, f := range footprints {
		r := row{cc: f.CC, market: f.Domestic}
		// Gateway check: the country's highest-CTI AS is state-owned by
		// the country itself.
		for _, top := range res.CTITop[f.CC] {
			if owner[top] == f.CC {
				r.gateway = true
				r.gatewayASN = top
				break
			}
		}
		r.leverage = r.market
		if r.gateway {
			// A state chokepoint makes even partial market ownership
			// decisive for shutdown capability.
			r.leverage = 0.5 + 0.5*r.market
		}
		if r.leverage > 0 {
			rows = append(rows, r)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].leverage != rows[j].leverage {
			return rows[i].leverage > rows[j].leverage
		}
		return rows[i].cc < rows[j].cc
	})

	t := report.NewTable("State shutdown/surveillance leverage (top 25)",
		"cc", "state market share", "state gateway", "leverage")
	for i, r := range rows {
		if i >= 25 {
			break
		}
		gw := "-"
		if r.gateway {
			gw = fmt.Sprintf("AS%d", r.gatewayASN)
		}
		t.AddRow(r.cc, fmt.Sprintf("%.2f", r.market), gw, fmt.Sprintf("%.2f", r.leverage))
	}
	fmt.Println(t.String())

	high := 0
	for _, r := range rows {
		if r.leverage > 0.9 {
			high++
		}
	}
	fmt.Printf("countries where the state could unilaterally shut down >90%% of access: %d\n", high)
	fmt.Println("(compare the paper's Table 8: 18 countries with >=0.9 state access-market footprint)")
}
