// Transit-market view: §8 of the paper examines state-owned operators in
// the Internet-wide transit ecosystem — the ten largest customer cones
// (Table 5), the submarine-cable newcomers whose cones grew fastest
// (Figure 5), and the narrow class of influential transit ASes only the
// CTI metric surfaces (Table 7).
package main

import (
	"fmt"

	"stateowned"
	"stateowned/internal/analysis"
)

func main() {
	res := stateowned.Run(stateowned.Config{Seed: 42, Scale: 0.25})
	d := res.AnalysisData()

	fmt.Println(analysis.RenderTable5(analysis.ComputeTable5(d, 10)))

	fmt.Println("Fastest-growing state-owned customer cones, 2010-2020 (§8):")
	for _, s := range analysis.FastestGrowingCones(d, 8) {
		fmt.Printf("  AS%-7d slope %5.1f/yr: ", s.AS, s.Slope)
		for i, size := range s.Sizes {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Print(size)
		}
		fmt.Println()
	}
	fmt.Println()

	fmt.Println(analysis.RenderFigure5(analysis.ComputeFigure5(d)))
	fmt.Println(analysis.RenderTable7(analysis.ComputeTable7(d)))

	// Per-country transit chokepoints: the two most CTI-influential ASes
	// for a sample of gateway countries.
	fmt.Println("CTI top-2 transit ASes in gateway-concentrated countries (sample):")
	shown := 0
	for _, cc := range res.World.Countries {
		if !res.World.Profiles[cc].GatewayConcentrated || shown >= 8 {
			continue
		}
		tops := res.CTITop[cc]
		if len(tops) == 0 {
			continue
		}
		fmt.Printf("  %s:", cc)
		for _, a := range tops {
			name := fmt.Sprintf("AS%d", a)
			if rec, ok := res.WHOIS.Lookup(a); ok {
				name = fmt.Sprintf("AS%d (%s)", a, rec.ASName)
			}
			fmt.Printf(" %s", name)
		}
		fmt.Println()
		shown++
	}
}
