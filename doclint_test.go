package stateowned

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExportedIdentifiersDocumented walks every non-test Go file in the
// repository and requires a doc comment on each exported declaration —
// the deliverable's "doc comments on every public item" requirement,
// enforced mechanically.
func TestExportedIdentifiersDocumented(t *testing.T) {
	var files []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && d.Name() != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 20 {
		t.Fatalf("only %d source files found; walk broken?", len(files))
	}

	fset := token.NewFileSet()
	var missing []string
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		// main packages document behavior in the command comment.
		isMain := f.Name.Name == "main"
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if isMain || !d.Name.IsExported() {
					continue
				}
				if d.Doc == nil {
					missing = append(missing, pos(fset, d.Pos())+" func "+d.Name.Name)
				}
			case *ast.GenDecl:
				if isMain {
					continue
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
							missing = append(missing, pos(fset, s.Pos())+" type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && d.Doc == nil && s.Doc == nil {
								missing = append(missing, pos(fset, n.Pos())+" value "+n.Name)
							}
						}
					}
				}
			}
		}
	}
	for _, m := range missing {
		t.Errorf("undocumented exported identifier: %s", m)
	}
}

func pos(fset *token.FileSet, p token.Pos) string {
	position := fset.Position(p)
	return position.Filename + ":" + itoa(position.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
