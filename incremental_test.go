package stateowned

// Run-level tests of the incremental rebuild path: artifact reuse on an
// unchanged world, byte identity under churn, config-sensitivity of the
// fingerprints, and exclusion of failed nodes from the memo.

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"testing"

	"stateowned/internal/churn"
	"stateowned/internal/world"
)

const incScale = 0.08

// allNodes is every build-graph node, in declaration order.
var allNodes = []string{
	"world", "topology", "geo", "eyeballs", "whois", "peeringdb",
	"as2org", "orbis", "docs", "cti", "hijack", "stage1", "stage2", "stage3",
}

func incWorld(t *testing.T, seed uint64, churnSteps int) *world.World {
	t.Helper()
	w := world.Generate(world.Config{Seed: seed, Scale: incScale})
	for i := 1; i <= churnSteps; i++ {
		churn.Evolve(w, 2, seed+uint64(i)*1000, churn.DefaultRates())
	}
	return w
}

// assertRunsEqual compares every determinism-relevant projection of two
// runs: exported dataset bytes, rendered analysis tables, and the
// health report's deterministic view (source rows and stages — not
// Timings, which are measurement).
func assertRunsEqual(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if !bytes.Equal(exportBytes(t, a), exportBytes(t, b)) {
		t.Errorf("%s: exported dataset bytes differ", label)
	}
	if ta, tb := renderedTables(a), renderedTables(b); ta != tb {
		t.Errorf("%s: rendered tables differ", label)
	}
	rowsA, stagesA := healthNotes(a.Health)
	rowsB, stagesB := healthNotes(b.Health)
	if !reflect.DeepEqual(rowsA, rowsB) {
		t.Errorf("%s: health source rows differ:\n%+v\nvs\n%+v", label, rowsA, rowsB)
	}
	if !reflect.DeepEqual(stagesA, stagesB) {
		t.Errorf("%s: health stages differ:\n%+v\nvs\n%+v", label, stagesA, stagesB)
	}
	if a.Health.Render() != b.Health.Render() {
		t.Errorf("%s: rendered health differs", label)
	}
}

// TestIncrementalUnchangedWorldSkipsEveryNode proves the zero-churn
// metamorphic property at the run level: rebuilding over a world whose
// fingerprints are unchanged restores every artifact and executes zero
// build functions.
func TestIncrementalUnchangedWorldSkipsEveryNode(t *testing.T) {
	w := incWorld(t, 42, 1)
	cfg := Config{Seed: 42, Scale: incScale, World: w, CaptureMemo: true}
	first := Run(cfg)
	if first.Memo == nil {
		t.Fatal("CaptureMemo produced no memo")
	}
	if len(first.Reused) != 0 {
		t.Fatalf("first run reused nodes: %v", first.Reused)
	}

	var executed []string
	restore := SetBuildHook(func(node string) { executed = append(executed, node) })
	defer restore()
	cfg.Memo = first.Memo
	second := Run(cfg)
	if len(executed) != 0 {
		t.Errorf("unchanged world executed nodes %v, want none", executed)
	}
	if !reflect.DeepEqual(second.Reused, allNodes) {
		t.Errorf("Reused = %v, want all of %v", second.Reused, allNodes)
	}
	assertRunsEqual(t, "unchanged world", first, second)
	if second.World != w {
		t.Error("restored run does not adopt the caller's world")
	}
}

// TestIncrementalChurnByteIdentical is the run-level differential
// proof: an incremental rebuild over a churn-evolved world must be
// byte-identical to a from-scratch rebuild over an identically evolved
// world, while actually reusing the churn-blind sources.
func TestIncrementalChurnByteIdentical(t *testing.T) {
	// Two independently constructed copies of the same evolved world:
	// one for the full rebuild, one for the incremental chain (Evolve
	// mutates in place, so the chain needs its own objects).
	for _, workers := range []int{1, 4} {
		base := incWorld(t, 21, 0)
		evolved := incWorld(t, 21, 2)

		full := Run(Config{Seed: 21, Scale: incScale, World: evolved, Workers: workers})

		r0 := Run(Config{Seed: 21, Scale: incScale, World: base, CaptureMemo: true, Workers: workers})
		inc := Run(Config{
			Seed: 21, Scale: incScale, World: incWorld(t, 21, 2),
			Memo: r0.Memo, CaptureMemo: true, Workers: workers,
		})
		assertRunsEqual(t, "churned world", full, inc)

		reused := map[string]bool{}
		for _, n := range inc.Reused {
			reused[n] = true
		}
		// Churn only mutates the equity graph, so the structure-only
		// sources must always prove clean.
		for _, n := range []string{"geo", "eyeballs", "whois", "peeringdb", "as2org"} {
			if !reused[n] {
				t.Errorf("workers=%d: structure-only node %q was rebuilt under pure ownership churn", workers, n)
			}
		}
	}
}

// TestIncrementalConfigChangeDirtiesEverything: the fingerprints cover
// the chaos plan, so replaying the same world under a different chaos
// seed must rebuild every node (reusing any artifact would leak the old
// fault episode into the new one).
func TestIncrementalConfigChangeDirtiesEverything(t *testing.T) {
	w := incWorld(t, 7, 1)
	cfg := Config{Seed: 7, Scale: incScale, World: w, CaptureMemo: true, ChaosSeverity: 0.3, ChaosSeed: 11}
	first := Run(cfg)

	cfg.Memo = first.Memo
	cfg.ChaosSeed = 12
	second := Run(cfg)
	if len(second.Reused) != 0 {
		t.Errorf("chaos-seed change still reused %v", second.Reused)
	}
}

// TestIncrementalFailedNodeExcludedFromMemo: a panicking node must not
// seed the next generation's memo, and neither may anything downstream
// of it — the rebuilt chain must converge back to the pristine output.
func TestIncrementalFailedNodeExcludedFromMemo(t *testing.T) {
	w := incWorld(t, 42, 1)
	cfg := Config{Seed: 42, Scale: incScale, World: w, CaptureMemo: true}

	restore := SetBuildHook(func(node string) {
		if node == "orbis" {
			panic("injected orbis failure")
		}
	})
	broken := Run(cfg)
	restore()
	if got := broken.Memo.Nodes(); len(got) != 0 {
		for _, n := range got {
			if n == "orbis" || strings.HasPrefix(n, "stage") {
				t.Errorf("failed node %q (or dependent) leaked into memo %v", n, got)
			}
		}
	}

	// Rebuild over the same world with the degraded memo: orbis and the
	// stages must re-execute, and the result must equal a pristine run.
	cfg.Memo = broken.Memo
	healed := Run(cfg)
	pristine := Run(Config{Seed: 42, Scale: incScale, World: w})
	assertRunsEqual(t, "healed after panic", pristine, healed)
	sort.Strings(healed.Reused)
	for _, n := range healed.Reused {
		if n == "orbis" || strings.HasPrefix(n, "stage") {
			t.Errorf("node %q reused from a failed build", n)
		}
	}
}

// TestMemoScrubbedFromResultConfig guards the retention chain: holding
// a Result must not pin the previous generation's artifacts.
func TestMemoScrubbedFromResultConfig(t *testing.T) {
	w := incWorld(t, 42, 0)
	res := Run(Config{Seed: 42, Scale: incScale, World: w, CaptureMemo: true})
	if res.Config.Memo != nil || res.Config.CaptureMemo {
		t.Errorf("memo inputs survived on Result.Config: %+v", res.Config.Memo)
	}
	res2 := Run(Config{Seed: 42, Scale: incScale, World: w, Memo: res.Memo})
	if res2.Config.Memo != nil {
		t.Error("memo input survived on second Result.Config")
	}
}

// TestRenderExcludesIncrementalMetadata is the latent-determinism
// guard: Health.Render (the diffable report) must not change when
// Timings, Workers or reuse markers differ — otherwise incremental
// metadata could leak into golden bytes.
func TestRenderExcludesIncrementalMetadata(t *testing.T) {
	w := incWorld(t, 42, 1)
	full := Run(Config{Seed: 42, Scale: incScale, World: w, Workers: 1})
	inc0 := Run(Config{Seed: 42, Scale: incScale, World: w, CaptureMemo: true, Workers: 4})
	inc := Run(Config{Seed: 42, Scale: incScale, World: w, Memo: inc0.Memo, Workers: 8})

	if full.Health.Render() != inc.Health.Render() {
		t.Error("Render differs between full and incremental runs over the same world")
	}
	if r := inc.Health.Render(); strings.Contains(r, "reused") {
		t.Errorf("Render leaks reuse metadata:\n%s", r)
	}
	if !strings.Contains(inc.Health.RenderTimings(), "reused") {
		t.Error("RenderTimings does not surface reuse markers")
	}
}
