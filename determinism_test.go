package stateowned

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"stateowned/internal/analysis"
	"stateowned/internal/runner"
)

// The differential determinism proof: a parallel run must be
// bit-identical to the canonical serial schedule — same dataset bytes,
// same analysis tables, same Health notes — for every seed × chaos
// severity combination. The tier-1 recipe runs this file under -race,
// so any unsynchronized sharing between build nodes fails loudly.

// detScale keeps the 2-runs-per-cell matrix affordable; every code path
// (all sources, CTI, all three stages, fault injection) is exercised at
// this scale.
const detScale = 0.08

// healthNotes projects a Health report onto its deterministic parts:
// source rows (by value) and stage notes. Timings and Workers are
// execution measurements and legitimately differ between schedules.
func healthNotes(h *runner.Health) ([]runner.SourceHealth, []runner.StageHealth) {
	rows := make([]runner.SourceHealth, 0, len(h.Sources()))
	for _, sh := range h.Sources() {
		rows = append(rows, *sh)
	}
	return rows, h.Stages
}

// renderedTables regenerates a representative slice of the paper's
// evaluation (the headline, a per-country table, and the ground-truth
// score) from a run.
func renderedTables(res *Result) string {
	d := res.AnalysisData()
	var b bytes.Buffer
	b.WriteString(analysis.RenderHeadline(analysis.ComputeHeadline(d)))
	b.WriteString(analysis.RenderTable1(analysis.ComputeTable1(d)))
	b.WriteString(analysis.RenderScore("score", analysis.ComputeScore(d, nil)))
	return b.String()
}

func exportBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Dataset.Export(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	return buf.Bytes()
}

// TestDeterminismParallelMatchesSerial is the scheduler's proof
// obligation: Run(Workers=8) deep-equals Run(Workers=1) across seeds
// {7, 21, 42} and chaos severities {0, 0.3, 1.0}. In -short mode (the
// tier-1 -race leg) the seed set shrinks to {7}; all severities always
// run.
func TestDeterminismParallelMatchesSerial(t *testing.T) {
	seeds := []uint64{7, 21, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		for _, sev := range []float64{0, 0.3, 1.0} {
			t.Run(fmt.Sprintf("seed%d_sev%.1f", seed, sev), func(t *testing.T) {
				cfg := Config{Seed: seed, Scale: detScale, ChaosSeverity: sev}
				cfg.Workers = 1
				serial := Run(cfg)
				cfg.Workers = 8
				parallel := Run(cfg)

				if !bytes.Equal(exportBytes(t, serial), exportBytes(t, parallel)) {
					t.Error("exported Listing-1 JSON differs between serial and parallel runs")
				}
				if !reflect.DeepEqual(serial.Dataset, parallel.Dataset) {
					t.Error("in-memory dataset differs between serial and parallel runs")
				}
				if !reflect.DeepEqual(serial.Candidates, parallel.Candidates) {
					t.Error("stage-1 candidates differ between serial and parallel runs")
				}
				if !reflect.DeepEqual(serial.Confirmation, parallel.Confirmation) {
					t.Error("stage-2 confirmation differs between serial and parallel runs")
				}
				if !reflect.DeepEqual(serial.CTITop, parallel.CTITop) {
					t.Error("CTI top-2 map differs between serial and parallel runs")
				}
				if got, want := renderedTables(parallel), renderedTables(serial); got != want {
					t.Errorf("analysis tables differ between serial and parallel runs:\nserial:\n%s\nparallel:\n%s", want, got)
				}

				sSrc, sStages := healthNotes(serial.Health)
				pSrc, pStages := healthNotes(parallel.Health)
				if !reflect.DeepEqual(sSrc, pSrc) {
					t.Errorf("health source rows differ:\nserial:   %+v\nparallel: %+v", sSrc, pSrc)
				}
				if !reflect.DeepEqual(sStages, pStages) {
					t.Errorf("health stage notes differ:\nserial:   %+v\nparallel: %+v", sStages, pStages)
				}
				if got, want := parallel.Health.Render(), serial.Health.Render(); got != want {
					t.Errorf("rendered health reports differ:\nserial:\n%s\nparallel:\n%s", want, got)
				}

				// Timings are the one sanctioned difference: both runs must
				// still record one entry per build node.
				if len(serial.Health.Timings) == 0 ||
					len(serial.Health.Timings) != len(parallel.Health.Timings) {
					t.Errorf("timings rows: serial %d, parallel %d",
						len(serial.Health.Timings), len(parallel.Health.Timings))
				}
			})
		}
	}
}

// TestDeterminismWorkerCountSweep pins a second axis: every pool size
// gives the same bytes, not just the 1-vs-8 pair.
func TestDeterminismWorkerCountSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("worker sweep runs in the full (non-short) suite")
	}
	base := Config{Seed: 21, Scale: detScale, ChaosSeverity: 0.3, Workers: 1}
	want := exportBytes(t, Run(base))
	for _, workers := range []int{2, 3, 5, 16} {
		cfg := base
		cfg.Workers = workers
		if !bytes.Equal(want, exportBytes(t, Run(cfg))) {
			t.Errorf("Workers=%d changed the exported dataset", workers)
		}
	}
}
