package stateowned

// Incremental rebuild support: input fingerprints for every build-graph
// node, the artifact capture/restore adapters that let the scheduler
// skip clean nodes, and the per-country CTI slice memo.
//
// Fingerprints are computed from the caller-supplied world BEFORE the
// graph runs, so memoization only engages on the Config.World path (the
// snapshot store's churn-evolved rebuilds); a generated-world run
// always builds from scratch. The projection a node's fingerprint
// hashes must cover every byte the node reads — the differential
// harness in internal/snapshot holds each node to that contract by
// proving incremental chains byte-identical to full rebuilds.

import (
	"stateowned/internal/as2org"
	"stateowned/internal/bgp"
	"stateowned/internal/candidates"
	"stateowned/internal/confirm"
	"stateowned/internal/docsrc"
	"stateowned/internal/expand"
	"stateowned/internal/eyeballs"
	"stateowned/internal/geo"
	"stateowned/internal/hijack"
	"stateowned/internal/orbis"
	"stateowned/internal/peeringdb"
	"stateowned/internal/runner"
	"stateowned/internal/sched"
	"stateowned/internal/topology"
	"stateowned/internal/whois"
	"stateowned/internal/world"
)

// nodeFPs carries the per-node input fingerprints (and the shared input
// projections the CTI slice memo reuses) for one memoized run.
type nodeFPs struct {
	cfg  sched.Fingerprint // config projection, mixed into every node
	node map[string]sched.Fingerprint
}

// fingerprintInputs computes every node's input fingerprint from the
// caller-supplied world and the run config. The config projection
// covers everything that parameterizes a build EXCEPT Workers: output
// is provably worker-count independent, so a memo recorded under one
// pool size must stay valid under any other.
func fingerprintInputs(cfg Config) *nodeFPs {
	w := cfg.World
	structFP := w.FingerprintStructure()
	ownFP := w.FingerprintOwnership()
	topoOwnFP := w.FingerprintTopologyOwnership()

	ch := sched.NewHasher("config")
	ch.U64(cfg.Seed)
	ch.F64(cfg.Scale)
	ch.I64(int64(len(cfg.Countries)))
	for _, cc := range cfg.Countries {
		ch.Str(cc)
	}
	ch.I64(int64(cfg.Monitors))
	ch.F64(cfg.Threshold)
	ch.Bool(cfg.DisableGeo)
	ch.Bool(cfg.DisableEyeballs)
	ch.Bool(cfg.DisableCTI)
	ch.Bool(cfg.DisableOrbis)
	ch.Bool(cfg.DisableWikiFH)
	ch.Bool(cfg.DisableSiblings)
	ch.F64(cfg.ChaosSeverity)
	chaos := cfg.ChaosSeed
	if chaos == 0 {
		chaos = cfg.Seed
	}
	ch.U64(chaos)
	ch.F64(cfg.HijackSeverity)
	hjSeed := cfg.HijackSeed
	if hjSeed == 0 {
		hjSeed = cfg.Seed
	}
	ch.U64(hjSeed)
	ch.F64(cfg.ROVFraction)
	cfgFP := ch.Sum()

	mk := func(domain string, parts ...sched.Fingerprint) sched.Fingerprint {
		h := sched.NewHasher(domain)
		h.FP(cfgFP)
		for _, p := range parts {
			h.FP(p)
		}
		return h.Sum()
	}
	return &nodeFPs{
		cfg: cfgFP,
		node: map[string]sched.Fingerprint{
			// The world node adopts cfg.World either way; its fingerprint
			// covers the full content so zero churn leaves it clean.
			"world": mk("node/world", structFP, ownFP),
			// Topology reads structure plus the narrow two-bit ownership
			// view; ownership churn outside that view leaves it clean.
			"topology": mk("node/topology", structFP, topoOwnFP),
			// These sources never read the equity graph.
			"geo":       mk("node/geo", structFP),
			"eyeballs":  mk("node/eyeballs", structFP),
			"whois":     mk("node/whois", structFP),
			"peeringdb": mk("node/peeringdb", structFP),
			// AS2Org reads only the WHOIS artifact; its dirtying dep on the
			// whois node covers that, the fingerprint covers the rest.
			"as2org": mk("node/as2org", structFP),
			// Orbis and the documents corpus read the full ownership view.
			"orbis": mk("node/orbis", structFP, ownFP),
			"docs":  mk("node/docs", structFP, ownFP),
			// CTI reads the topology and geo artifacts (dirtying deps) plus
			// world structure (country profiles) and config.
			"cti": mk("node/cti", structFP),
			// The adversary reads world structure (prefixes, ICT, ROV
			// thresholds) and ownership (the detection report's ground
			// truth); its dirtying deps on topology and cti carry the
			// rest.
			"hijack": mk("node/hijack", structFP, ownFP),
			// The stages read only upstream artifacts; dirtying deps on
			// every source (stage1) and the predecessor stage (2, 3) carry
			// all content sensitivity.
			"stage1": mk("node/stage1", structFP),
			"stage2": mk("node/stage2"),
			"stage3": mk("node/stage3"),
		},
	}
}

// nodeMemoIO declares how one node's product maps onto Result fields
// and Health state, so a generic capture/restore adapter can memoize
// it. get/set move the node's Result field(s); source names the Health
// row the node owns ("" when it owns none).
type nodeMemoIO struct {
	source    string
	cleanDeps []string
	get       func(res *Result) any
	set       func(res *Result, v any)
}

// memoArtifact is the captured product of one node: its Result value,
// a value copy of the Health row it owns, and its buffered stage notes.
// Artifacts are shared between generations, never deep-copied — the
// pipeline contract is that node products are immutable once built (the
// snapshot package's race regression test enforces it).
type memoArtifact struct {
	value     any
	health    runner.SourceHealth
	hasHealth bool
	notes     []stageNote
}

// memoIO returns the artifact wiring for each memoizable node.
func memoIO() map[string]nodeMemoIO {
	fromWorld := []string{"world"}
	return map[string]nodeMemoIO{
		"world": {
			// The world is adopted from cfg, not captured: restore re-runs
			// the same assignment the build would, so Result.World always
			// aliases the caller's current world object (memoization only
			// engages when Config.World is non-nil).
			get: func(*Result) any { return nil },
			set: func(r *Result, _ any) { r.World = r.Config.World },
		},
		"topology": {
			cleanDeps: fromWorld,
			get:       func(r *Result) any { return r.Topology },
			set:       func(r *Result, v any) { r.Topology, _ = v.(*topology.Graph) },
		},
		"geo": {
			source: "geo", cleanDeps: fromWorld,
			get: func(r *Result) any { return r.Geo },
			set: func(r *Result, v any) { r.Geo, _ = v.(*geo.DB) },
		},
		"eyeballs": {
			source: "eyeballs", cleanDeps: fromWorld,
			get: func(r *Result) any { return r.Eyeballs },
			set: func(r *Result, v any) { r.Eyeballs, _ = v.(*eyeballs.Dataset) },
		},
		"whois": {
			source: "whois", cleanDeps: fromWorld,
			get: func(r *Result) any { return r.WHOIS },
			set: func(r *Result, v any) { r.WHOIS, _ = v.(*whois.Registry) },
		},
		"peeringdb": {
			source: "peeringdb", cleanDeps: fromWorld,
			get: func(r *Result) any { return r.PeeringDB },
			set: func(r *Result, v any) { r.PeeringDB, _ = v.(*peeringdb.DB) },
		},
		"as2org": {
			source: "as2org",
			get:    func(r *Result) any { return r.AS2Org },
			set:    func(r *Result, v any) { r.AS2Org, _ = v.(*as2org.Mapping) },
		},
		"orbis": {
			source: "orbis", cleanDeps: fromWorld,
			get: func(r *Result) any { return r.Orbis },
			set: func(r *Result, v any) { r.Orbis, _ = v.(*orbis.DB) },
		},
		"docs": {
			source: "docs", cleanDeps: fromWorld,
			get: func(r *Result) any { return r.Docs },
			set: func(r *Result, v any) { r.Docs, _ = v.(*docsrc.Corpus) },
		},
		"cti": {
			source: "bgp",
			get: func(r *Result) any {
				return &ctiArtifact{monitors: r.Monitors, top: r.CTITop, slices: r.ctiSlices}
			},
			set: func(r *Result, v any) {
				a := v.(*ctiArtifact)
				r.Monitors, r.CTITop, r.ctiSlices = a.monitors, a.top, a.slices
			},
		},
		"hijack": {
			get: func(r *Result) any { return r.Hijacks },
			set: func(r *Result, v any) { r.Hijacks, _ = v.(*hijack.Report) },
		},
		"stage1": {
			get: func(r *Result) any { return r.Candidates },
			set: func(r *Result, v any) { r.Candidates, _ = v.(*candidates.Result) },
		},
		"stage2": {
			get: func(r *Result) any { return r.Confirmation },
			set: func(r *Result, v any) { r.Confirmation, _ = v.(*confirm.Result) },
		},
		"stage3": {
			get: func(r *Result) any { return r.Dataset },
			set: func(r *Result, v any) { r.Dataset, _ = v.(*expand.Dataset) },
		},
	}
}

// ctiArtifact is the CTI node's memoized product: the (possibly
// outage-thinned) monitor set, the per-country top picks, and the
// per-country slice memo the next rebuild checks before recomputing a
// country.
type ctiArtifact struct {
	monitors []bgp.Monitor
	top      map[string][]world.ASN
	slices   map[string]ctiSlice
}

// ctiSlice is one country's memoized CTI computation: the fingerprint
// of everything the computation read and the resulting top picks.
type ctiSlice struct {
	fp    sched.Fingerprint
	picks []world.ASN
}

// prevCTIArtifact unwraps the previous generation's CTI artifact from
// the memo, if one survived trust filtering.
func prevCTIArtifact(m *sched.Memo) *ctiArtifact {
	art, ok := m.Lookup("cti")
	if !ok {
		return nil
	}
	wrapped, ok := art.Value.(memoArtifact)
	if !ok {
		return nil
	}
	ca, _ := wrapped.value.(*ctiArtifact)
	return ca
}

// topologyContentFP hashes the built topology graph's full content:
// year, active ASN list and the three adjacency structures in dense
// order. Two topologies with equal content fingerprints yield identical
// path collections for any monitor/origin set, which is what lets a
// re-run CTI node prove its per-country slices unchanged even though
// the topology node itself was rebuilt.
func topologyContentFP(t *topology.Graph) sched.Fingerprint {
	h := sched.NewHasher("topology/content")
	h.I64(int64(t.Year))
	asns := t.ASes()
	h.I64(int64(len(asns)))
	for _, a := range asns {
		h.U64(uint64(a))
	}
	hashAdj := func(adj func(int) []int) {
		for i := 0; i < t.NumASes(); i++ {
			row := adj(i)
			h.I64(int64(len(row)))
			for _, j := range row {
				h.I64(int64(j))
			}
		}
	}
	hashAdj(t.ProviderIdx)
	hashAdj(t.CustomerIdx)
	hashAdj(t.PeerIdx)
	return h.Sum()
}

// monitorsContentFP hashes the live monitor set after outage injection.
func monitorsContentFP(monitors []bgp.Monitor) sched.Fingerprint {
	h := sched.NewHasher("bgp/monitors")
	h.I64(int64(len(monitors)))
	for _, m := range monitors {
		h.Str(m.ID)
		h.U64(uint64(m.AS))
	}
	return h.Sum()
}
