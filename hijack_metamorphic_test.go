package stateowned

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"stateowned/internal/hijack"
)

// The metamorphic battery: properties that must hold across knob sweeps
// without any oracle for the individual values.
//
//   - ROV is a defense: campaign recall is monotone non-increasing in
//     the deployment fraction, reaching zero at full deployment.
//   - Severity is an attack budget: the roster is prefix-nested, so the
//     set of detected origin changes only ever grows with severity.
//
// Plus a golden fixture pinning the full seed-42 detection report, so
// intentional changes to the adversary model surface as reviewable
// diffs (regenerate with `go test -run GoldenHijack -update`).

const goldenHijacksFile = "golden_hijacks_seed42.json"

func hijackRun(sev, rov float64) (*Result, *hijack.Plan) {
	res := Run(Config{Seed: 42, Scale: detScale, HijackSeverity: sev, ROVFraction: rov})
	plan := hijack.NewPlan(res.World, res.Topology, hijack.Config{Severity: sev, ROVFraction: rov})
	return res, plan
}

func TestHijackRecallMonotoneInROV(t *testing.T) {
	const sev = 1.0
	fractions := []float64{0, 0.25, 0.5, 0.75, 1}
	prev := 2.0 // above any real recall
	for _, rov := range fractions {
		res, plan := hijackRun(sev, rov)
		recall := plan.Recall(res.Hijacks)
		t.Logf("rov=%.2f: %d campaigns, %d detections, recall %.3f",
			rov, len(plan.Campaigns), len(res.Hijacks.Detections), recall)
		if recall > prev {
			t.Errorf("recall rose from %.3f to %.3f when ROV deployment grew to %.2f", prev, recall, rov)
		}
		prev = recall
		switch rov {
		case 0:
			if recall == 0 {
				t.Error("undefended full-severity adversary has zero recall; sweep is vacuous")
			}
		case 1:
			if recall != 0 {
				t.Errorf("full ROV deployment left recall at %.3f", recall)
			}
		}
	}
}

func TestHijackDetectionsMonotoneInSeverity(t *testing.T) {
	type change struct{ victim, observed uint32 }
	prevSet := map[change]bool{}
	prevCount := 0
	for _, sev := range []float64{0, 0.25, 0.5, 0.75, 1} {
		res, _ := hijackRun(sev, 0)
		if n := len(res.Hijacks.Detections); n < prevCount {
			t.Errorf("severity %.2f detected %d origin changes, fewer than the %d at a lower severity",
				sev, n, prevCount)
		}
		// Prefix-nested rosters mean earlier campaigns still run: every
		// previously detected (victim, observed) pair must persist.
		cur := map[change]bool{}
		for _, d := range res.Hijacks.Detections {
			cur[change{uint32(d.Victim), uint32(d.Observed)}] = true
		}
		for ch := range prevSet {
			if !cur[ch] {
				t.Errorf("severity %.2f lost the %d→%d origin change detected at a lower severity",
					sev, ch.victim, ch.observed)
			}
		}
		prevSet, prevCount = cur, len(res.Hijacks.Detections)
	}
	if prevCount == 0 {
		t.Error("full severity detected nothing; sweep is vacuous")
	}
}

// TestGoldenHijackReport pins the seed-42 detection report byte for
// byte, the same way TestGoldenDataset pins the Listing-1 export.
func TestGoldenHijackReport(t *testing.T) {
	res, plan := hijackRun(0.75, 0.25)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Campaigns int            `json:"campaigns_planned"`
		Report    *hijack.Report `json:"report"`
		PerKind   map[string]int `json:"campaigns_by_kind"`
		Detected  int            `json:"campaigns_detected"`
	}{
		Campaigns: len(plan.Campaigns),
		Report:    res.Hijacks,
		PerKind:   campaignsByKind(plan),
		Detected:  plan.Detected(res.Hijacks),
	}); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	path := filepath.Join("testdata", goldenHijacksFile)

	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with `go test -run GoldenHijack -update`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("seed-42 hijack report drifted from %s:\n%s\nif the change is intentional, regenerate with `go test -run GoldenHijack -update`",
			path, firstDiff(want, got))
	}
}

func campaignsByKind(p *hijack.Plan) map[string]int {
	out := map[string]int{}
	for _, c := range p.Campaigns {
		out[fmt.Sprint(c.Kind)]++
	}
	return out
}
