package stateowned

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"stateowned/internal/bgp"
	"stateowned/internal/hijack"
	"stateowned/internal/world"
)

// The adversarial differential battery: three independent oracles pin
// the hijack subsystem.
//
//  1. rov=1.0 neutralizes every campaign, so the whole run — dataset
//     bytes, CTI, detection report — must be byte-identical to the
//     honest simulator's.
//  2. A zero-campaign run must be byte-identical to the committed
//     golden fixture even with the other adversary knobs set, because
//     severity 0 is the off switch.
//  3. The served detection report must equal an independent naive
//     origin-vs-ownership scan of freshly collected paths.

// reportJSON canonicalizes a detection report for byte comparison.
func reportJSON(t *testing.T, rep *hijack.Report) []byte {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return b
}

func TestHijackFullROVMatchesHonest(t *testing.T) {
	seeds := []uint64{7, 21, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		for _, sev := range []float64{0.5, 1.0} {
			for _, workers := range []int{1, 4} {
				t.Run(fmt.Sprintf("seed%d_sev%.1f_w%d", seed, sev, workers), func(t *testing.T) {
					honest := Run(Config{Seed: seed, Scale: detScale, Workers: workers})
					gated := Run(Config{
						Seed: seed, Scale: detScale, Workers: workers,
						HijackSeverity: sev, ROVFraction: 1.0,
					})
					if !bytes.Equal(exportBytes(t, honest), exportBytes(t, gated)) {
						t.Error("rov=1.0 exported dataset differs from the honest run")
					}
					if !reflect.DeepEqual(honest.CTITop, gated.CTITop) {
						t.Error("rov=1.0 CTI top map differs from the honest run")
					}
					if !bytes.Equal(reportJSON(t, honest.Hijacks), reportJSON(t, gated.Hijacks)) {
						t.Errorf("rov=1.0 detection report differs from honest:\nhonest: %s\ngated:  %s",
							reportJSON(t, honest.Hijacks), reportJSON(t, gated.Hijacks))
					}
					if len(gated.Hijacks.Detections) != 0 {
						t.Errorf("rov=1.0 run detected %d origin changes", len(gated.Hijacks.Detections))
					}
					if gated.Hijacks.Monitors == 0 {
						t.Error("detection report lost its monitor count")
					}
				})
			}
		}
	}
}

// The committed golden fixture was produced with no adversary fields at
// all; a run with severity 0 — whatever the other knobs say — must
// reproduce it bit for bit.
func TestHijackSeverityZeroMatchesGolden(t *testing.T) {
	got := exportBytes(t, Run(Config{
		Seed: goldenSeed, Scale: goldenScale,
		HijackSeverity: 0, HijackSeed: 999, ROVFraction: 0.7,
	}))
	want, err := os.ReadFile(filepath.Join("testdata", goldenFile))
	if err != nil {
		t.Fatalf("missing golden file (regenerate with `go test -run Golden -update`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("severity-0 dataset drifted from the golden fixture:\n%s", firstDiff(want, got))
	}
}

// The pipeline's detection report must equal what an independent scan
// derives from scratch: re-plan the campaigns, re-collect the paths,
// re-count every (victim, terminal-AS) mismatch by hand.
func TestHijackDetectionMatchesNaiveScan(t *testing.T) {
	seeds := []uint64{7, 21, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("seed%d_w%d", seed, workers), func(t *testing.T) {
				cfg := Config{
					Seed: seed, Scale: detScale, Workers: workers,
					HijackSeverity: 0.8, ROVFraction: 0.25,
				}
				res := Run(cfg)
				if len(res.Hijacks.Detections) == 0 {
					t.Fatal("severity 0.8 produced no detections; battery is vacuous")
				}

				plan := hijack.NewPlan(res.World, res.Topology, hijack.Config{
					Severity: cfg.HijackSeverity, Seed: cfg.HijackSeed, ROVFraction: cfg.ROVFraction,
				})
				victims := plan.Victims()
				mp := bgp.CollectPathsAdversary(res.Topology, res.Monitors, victims, 1, plan.Adversary())

				type change struct{ victim, observed world.ASN }
				naive := map[change]int{}
				for mi := range res.Monitors {
					for _, v := range victims {
						if p := mp.Path(mi, v); len(p) > 0 && p[len(p)-1] != v {
							naive[change{v, p[len(p)-1]}]++
						}
					}
				}
				if len(naive) != len(res.Hijacks.Detections) {
					t.Fatalf("naive scan found %d origin changes, pipeline reported %d",
						len(naive), len(res.Hijacks.Detections))
				}
				for _, d := range res.Hijacks.Detections {
					if naive[change{d.Victim, d.Observed}] != d.Monitors {
						t.Errorf("detection %d→%d: pipeline counts %d monitors, naive scan %d",
							d.Victim, d.Observed, d.Monitors, naive[change{d.Victim, d.Observed}])
					}
				}
				if res.Hijacks.Monitors != len(res.Monitors) {
					t.Errorf("report monitor count %d, run selected %d", res.Hijacks.Monitors, len(res.Monitors))
				}

				// And the report itself is worker-invariant: an 8-worker twin
				// serves the same bytes.
				twin := cfg
				twin.Workers = 8
				if a, b := reportJSON(t, res.Hijacks), reportJSON(t, Run(twin).Hijacks); !bytes.Equal(a, b) {
					t.Error("detection report differs between worker counts")
				}
			})
		}
	}
}
