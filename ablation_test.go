package stateowned

import (
	"testing"

	"stateowned/internal/candidates"
)

// ablationRun executes one small-scale pipeline with a single source
// switched off.
func ablationRun(mod func(*Config)) *Result {
	cfg := Config{Seed: 7, Scale: 0.08}
	mod(&cfg)
	return Run(cfg)
}

// assertNoProvenance fails if any dataset organization still credits the
// disabled source in its input list.
func assertNoProvenance(t *testing.T, res *Result, src candidates.Source) {
	t.Helper()
	for i, org := range res.Dataset.Organizations {
		if res.Dataset.InputsOf(i).Has(src) {
			t.Errorf("org %q credits disabled source %s (inputs %v)",
				org.OrgName, src.Letter(), org.Inputs)
		}
	}
}

// TestAblationDisableGeo runs end-to-end without the geolocation source:
// no geo candidates, no geo provenance anywhere in the dataset.
func TestAblationDisableGeo(t *testing.T) {
	res := ablationRun(func(c *Config) { c.DisableGeo = true })
	if n := len(res.Candidates.PerSourceASes[candidates.SrcGeo]); n != 0 {
		t.Errorf("geo disabled but %d geo candidate ASes", n)
	}
	if res.Candidates.Stats.GeoASes != 0 {
		t.Errorf("geo disabled but Stats.GeoASes = %d", res.Candidates.Stats.GeoASes)
	}
	assertNoProvenance(t, res, candidates.SrcGeo)
}

// TestAblationDisableEyeballs runs end-to-end without the eyeball source.
func TestAblationDisableEyeballs(t *testing.T) {
	res := ablationRun(func(c *Config) { c.DisableEyeballs = true })
	if n := len(res.Candidates.PerSourceASes[candidates.SrcEyeballs]); n != 0 {
		t.Errorf("eyeballs disabled but %d eyeball candidate ASes", n)
	}
	if res.Candidates.Stats.EyeballASes != 0 {
		t.Errorf("eyeballs disabled but Stats.EyeballASes = %d", res.Candidates.Stats.EyeballASes)
	}
	assertNoProvenance(t, res, candidates.SrcEyeballs)
}

// TestAblationDisableCTI runs end-to-end without the transit-influence
// source: no monitors selected, no CTI candidates, no CTI provenance.
func TestAblationDisableCTI(t *testing.T) {
	res := ablationRun(func(c *Config) { c.DisableCTI = true })
	if len(res.Monitors) != 0 {
		t.Errorf("CTI disabled but %d monitors selected", len(res.Monitors))
	}
	if len(res.CTITop) != 0 {
		t.Errorf("CTI disabled but CTITop has %d countries", len(res.CTITop))
	}
	if n := len(res.Candidates.PerSourceASes[candidates.SrcCTI]); n != 0 {
		t.Errorf("CTI disabled but %d CTI candidate ASes", n)
	}
	assertNoProvenance(t, res, candidates.SrcCTI)
}

// TestAblationDisableOrbis runs end-to-end without the Orbis source.
func TestAblationDisableOrbis(t *testing.T) {
	res := ablationRun(func(c *Config) { c.DisableOrbis = true })
	if res.Candidates.Stats.OrbisCompanies != 0 {
		t.Errorf("orbis disabled but Stats.OrbisCompanies = %d", res.Candidates.Stats.OrbisCompanies)
	}
	for _, co := range res.Candidates.Companies {
		if co.Sources.Has(candidates.SrcOrbis) {
			t.Errorf("orbis disabled but candidate %q credits it", co.Name)
		}
	}
	assertNoProvenance(t, res, candidates.SrcOrbis)
}

// TestAblationDisableWikiFH runs end-to-end without the Wikipedia +
// Freedom House listings.
func TestAblationDisableWikiFH(t *testing.T) {
	res := ablationRun(func(c *Config) { c.DisableWikiFH = true })
	if res.Candidates.Stats.WikiFHCompanies != 0 {
		t.Errorf("wiki/FH disabled but Stats.WikiFHCompanies = %d", res.Candidates.Stats.WikiFHCompanies)
	}
	for _, co := range res.Candidates.Companies {
		if co.Sources.Has(candidates.SrcWiki) {
			t.Errorf("wiki/FH disabled but candidate %q credits it", co.Name)
		}
	}
	assertNoProvenance(t, res, candidates.SrcWiki)
}

// TestAblationDisableSiblings switches off stage-3 AS2Org expansion: the
// dataset must never grow relative to the expanded baseline.
func TestAblationDisableSiblings(t *testing.T) {
	baseline := ablationRun(func(*Config) {})
	res := ablationRun(func(c *Config) { c.DisableSiblings = true })
	count := func(r *Result) int {
		n := 0
		for _, oa := range r.Dataset.ASNs {
			n += len(oa.ASNs)
		}
		return n
	}
	nb, na := count(baseline), count(res)
	if na > nb {
		t.Errorf("sibling expansion disabled yet dataset grew: %d ASNs vs baseline %d", na, nb)
	}
	if na == 0 {
		t.Error("sibling ablation produced an empty dataset")
	}
}
