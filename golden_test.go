package stateowned

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update regenerates the golden snapshot instead of comparing against it:
//
//	go test -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files from the current pipeline output")

const (
	goldenSeed  = 42
	goldenScale = 0.08
	goldenFile  = "golden_seed42.json"
)

// TestGoldenDataset pins the seed-42 Listing-1 dataset byte for byte.
// Any intentional change to the world generator, the pipeline, or the
// export schema shows up here as a readable diff; regenerate with
// `go test -run Golden -update` and review the delta like any other
// code change.
func TestGoldenDataset(t *testing.T) {
	got := exportBytes(t, Run(Config{Seed: goldenSeed, Scale: goldenScale}))
	path := filepath.Join("testdata", goldenFile)

	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}

	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with `go test -run Golden -update`): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	t.Errorf("seed-%d dataset drifted from %s:\n%s\nif the change is intentional, regenerate with `go test -run Golden -update`",
		goldenSeed, path, firstDiff(want, got))
}

// firstDiff renders the first divergent line with a few lines of context
// on each side — enough to see what moved without dumping the whole
// dataset into the test log.
func firstDiff(want, got []byte) string {
	wl := strings.Split(string(want), "\n")
	gl := strings.Split(string(got), "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	line := n // first divergence is a length difference unless found below
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			line = i
			break
		}
	}
	if line == n && len(wl) == len(gl) {
		return "(no line-level difference; byte-level difference only)"
	}

	var b strings.Builder
	fmt.Fprintf(&b, "first difference at line %d (golden has %d lines, got %d):\n", line+1, len(wl), len(gl))
	const ctx = 3
	start := line - ctx
	if start < 0 {
		start = 0
	}
	write := func(label string, lines []string) {
		end := line + ctx + 1
		if end > len(lines) {
			end = len(lines)
		}
		for i := start; i < end; i++ {
			marker := " "
			if i == line {
				marker = ">"
			}
			fmt.Fprintf(&b, "%s %s %4d | %s\n", marker, label, i+1, lines[i])
		}
	}
	write("golden", wl)
	write("   got", gl)
	return b.String()
}
