package stateowned

import (
	"reflect"
	"testing"

	"stateowned/internal/analysis"
	"stateowned/internal/runner"
)

// TestPristineRunHealthy verifies the hardened runner is invisible on a
// fault-free run: every source healthy, no damage counters, no degraded
// stages.
func TestPristineRunHealthy(t *testing.T) {
	h := testRes.Health
	if h == nil {
		t.Fatal("Result.Health not populated on pristine run")
	}
	if h.Severity != 0 {
		t.Fatalf("pristine run reports severity %v", h.Severity)
	}
	if got := h.DegradedSources(); len(got) != 0 {
		t.Errorf("pristine run has degraded sources %v", got)
	}
	if n := h.Quarantined() + h.Dropped() + h.Retries(); n != 0 {
		t.Errorf("pristine run has nonzero damage counters (quar+drop+retries=%d)", n)
	}
	if ds := h.DegradedStages(); len(ds) != 0 {
		t.Errorf("pristine run has degraded stages %v", ds)
	}
	for _, sh := range h.Sources() {
		if sh.Status != runner.Healthy {
			t.Errorf("source %s status %s on pristine run", sh.Name, sh.Status)
		}
	}
}

// TestChaosGracefulDegradation is the issue's acceptance run: severity
// 0.3 must complete, report substantive degradation in Health, and still
// hold the precision floor — faults lose recall, never correctness.
func TestChaosGracefulDegradation(t *testing.T) {
	res := Run(Config{Seed: 7, Scale: 0.12, ChaosSeverity: 0.3})
	if res.Dataset == nil || res.Candidates == nil || res.Confirmation == nil {
		t.Fatal("chaos run left pipeline stages nil")
	}
	h := res.Health
	if h == nil {
		t.Fatal("chaos run did not populate Health")
	}
	if got := len(h.DegradedSources()); got < 2 {
		t.Errorf("want >=2 degraded sources at severity 0.3, got %d (%v)", got, h.DegradedSources())
	}
	if h.Quarantined() == 0 {
		t.Error("want >0 quarantined records at severity 0.3")
	}
	if h.Dropped() == 0 {
		t.Error("want >0 dropped records at severity 0.3")
	}
	s := analysis.ComputeScore(res.AnalysisData(), nil)
	if s.Precision < 0.95 {
		t.Errorf("precision %.3f below 0.95 floor under chaos (fp=%d)", s.Precision, s.FP)
	}
	if s.TP == 0 {
		t.Error("chaos run found no true positives at all")
	}
	if h.Render() == "" {
		t.Error("Health.Render returned nothing")
	}
}

// TestChaosDeterminism replays the same fault episode twice and demands
// bit-identical results: same dataset, same health counters.
func TestChaosDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, Scale: 0.08, ChaosSeverity: 0.35}
	a, b := Run(cfg), Run(cfg)
	if !reflect.DeepEqual(a.Dataset, b.Dataset) {
		t.Error("chaos datasets differ between identical runs")
	}
	if a.Health.Dropped() != b.Health.Dropped() ||
		a.Health.Quarantined() != b.Health.Quarantined() ||
		a.Health.Retries() != b.Health.Retries() {
		t.Errorf("health counters differ: (%d,%d,%d) vs (%d,%d,%d)",
			a.Health.Dropped(), a.Health.Quarantined(), a.Health.Retries(),
			b.Health.Dropped(), b.Health.Quarantined(), b.Health.Retries())
	}
	if a.Health.Render() != b.Health.Render() {
		t.Error("health reports differ between identical runs")
	}
}

// TestChaosSeedIndependence replays one world under two fault episodes:
// the world (ground truth) must be identical, the damage must differ.
func TestChaosSeedIndependence(t *testing.T) {
	a := Run(Config{Seed: 7, Scale: 0.08, ChaosSeverity: 0.35, ChaosSeed: 1001})
	b := Run(Config{Seed: 7, Scale: 0.08, ChaosSeverity: 0.35, ChaosSeed: 1002})
	if !reflect.DeepEqual(a.World.ASNList, b.World.ASNList) {
		t.Error("ChaosSeed perturbed the world itself")
	}
	if a.Health.Dropped() == b.Health.Dropped() && a.Health.Quarantined() == b.Health.Quarantined() &&
		reflect.DeepEqual(a.Dataset, b.Dataset) {
		t.Error("different ChaosSeeds produced identical fault episodes")
	}
}

// TestDegradationCurve sweeps severity and asserts the shape the issue
// demands: every run completes, recall decays monotone-ish (small upward
// wiggle allowed — fault draws are stochastic across severities), and the
// endpoints differ meaningfully.
func TestDegradationCurve(t *testing.T) {
	if testing.Short() {
		t.Skip("severity sweep is several full pipeline runs")
	}
	sevs := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	recalls := make([]float64, len(sevs))
	for i, sev := range sevs {
		res := Run(Config{Seed: 7, Scale: 0.08, ChaosSeverity: sev})
		if res.Dataset == nil {
			t.Fatalf("severity %.1f: run did not complete", sev)
		}
		s := analysis.ComputeScore(res.AnalysisData(), nil)
		recalls[i] = s.Recall
		t.Logf("severity %.1f: precision=%.3f recall=%.3f degraded=%d quarantined=%d",
			sev, s.Precision, s.Recall, len(res.Health.DegradedSources()), res.Health.Quarantined())
	}
	const wiggle = 0.08
	for i := 1; i < len(recalls); i++ {
		if recalls[i] > recalls[i-1]+wiggle {
			t.Errorf("recall rose %.3f -> %.3f between severity %.1f and %.1f (beyond wiggle)",
				recalls[i-1], recalls[i], sevs[i-1], sevs[i])
		}
	}
	if recalls[len(recalls)-1] >= recalls[0] {
		t.Errorf("recall did not decay across the sweep: %.3f at 0 vs %.3f at 0.5",
			recalls[0], recalls[len(recalls)-1])
	}
}

// TestChaosMaxSeverity drives the plan to its ceiling: Orbis exhausts the
// retry budget and trips to unavailable, and the run must still complete
// on the surviving sources without panicking.
func TestChaosMaxSeverity(t *testing.T) {
	res := Run(Config{Seed: 7, Scale: 0.08, ChaosSeverity: 1.0})
	if res.Dataset == nil {
		t.Fatal("severity 1.0 run did not complete")
	}
	unavail := res.Health.UnavailableSources()
	found := false
	for _, s := range unavail {
		if s == "orbis" {
			found = true
		}
	}
	if !found {
		t.Errorf("want orbis unavailable at severity 1.0, got %v", unavail)
	}
	if res.Orbis != nil {
		t.Error("unavailable orbis still attached to Result")
	}
	orbisRow := res.Health.Source("orbis")
	if orbisRow.Retries == 0 || orbisRow.BackoffUnits == 0 {
		t.Errorf("orbis retry accounting empty: retries=%d backoff=%d",
			orbisRow.Retries, orbisRow.BackoffUnits)
	}
	if len(res.Health.DegradedStages()) == 0 {
		t.Error("want a degraded-stage note when orbis drops out")
	}
}
