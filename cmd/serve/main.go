// Command serve runs the pipeline and serves the resulting dataset over
// an HTTP JSON API: per-ASN, per-country and per-organization lookups,
// fuzzy name search, the full Listing-1 export, and the operational
// endpoints /healthz, /readyz (the pipeline's degradation report) and
// /metrics (request counts, latency histograms, cache hit ratio).
//
// The dataset is generational: the server holds a snapshot store whose
// ground-truth world ages under the seeded ownership-churn model. With
// -reload-every > 0 the store rebuilds the next generation on a
// background cadence and publishes it with an atomic swap — traffic is
// never paused; in-flight requests finish on the generation they
// started on. ?gen=N pins a query to any generation still in the
// retention ring (-generations), and /v1/diff?from=&to= audits the
// ownership churn between two retained generations.
//
// Usage:
//
//	serve [-addr :8080] [-seed N] [-scale F] [-workers N] [-chaos F] [-chaos-seed N] [-cache N]
//	      [-reload-every D] [-generations N] [-churn-seed N]
//	      [-max-inflight N] [-queue-wait D] [-request-timeout D] [-drain-timeout D]
//	      [-reload-max-churn F] [-reload-max-failures N]
//
// With -chaos > 0 the pipeline builds under a seeded fault plan and
// /readyz reflects the degraded sources (503 when a source went
// unavailable). -workers bounds the build scheduler's pool for every
// generation's pipeline run (0 = GOMAXPROCS; the served dataset is
// identical for every worker count); /metrics reports the per-node
// build times.
//
// Overload and failure containment: -max-inflight bounds concurrently
// executing /v1 requests (excess waits up to -queue-wait, then is shed
// with 503 + Retry-After); -request-timeout is the per-request handler
// budget (expensive endpoints — /v1/diff, /v1/search — get half; 504 on
// overrun); -reload-max-churn and -reload-max-failures configure the
// reload validation gate — a rebuilt generation whose dataset churned
// more than the bound (or that is empty, unhealthy, or panicked) is
// quarantined and the server keeps answering from the last good
// generation, retrying under capped exponential backoff and reporting
// the degraded state on /readyz and /metrics. SIGINT/SIGTERM triggers a
// graceful drain bounded by -drain-timeout.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stateowned"
	"stateowned/internal/serve"
	"stateowned/internal/snapshot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
	seed := flag.Uint64("seed", 42, "world seed")
	scale := flag.Float64("scale", 1.0, "world scale")
	workers := flag.Int("workers", 0, "build-scheduler pool size (0 = GOMAXPROCS, 1 = serial; output is identical either way)")
	chaos := flag.Float64("chaos", 0, "fault-injection severity in [0,1] (0 = off)")
	chaosSeed := flag.Uint64("chaos-seed", 0, "fault-plan seed (0 = derive from -seed)")
	cacheSize := flag.Int("cache", 1024, "response-cache capacity in entries (0 disables caching)")
	reloadEvery := flag.Duration("reload-every", time.Duration(0), "rebuild and hot-swap the next dataset generation on this cadence (0 = serve generation 0 forever)")
	generations := flag.Int("generations", snapshot.DefaultRetain, "retention ring: how many generations stay pinnable via ?gen=N")
	churnSeed := flag.Uint64("churn-seed", 0, "ownership-churn schedule seed (0 = derive from -seed)")
	maxInflight := flag.Int("max-inflight", serve.DefaultMaxInFlight, "admission control: max concurrently executing /v1 requests (0 = off)")
	queueWait := flag.Duration("queue-wait", serve.DefaultQueueWait, "admission control: how long an over-limit request may wait for a slot before being shed with 503")
	requestTimeout := flag.Duration("request-timeout", serve.DefaultRequestTimeout, "per-request handler budget; expensive endpoints get half (0 = no deadline)")
	drainTimeout := flag.Duration("drain-timeout", serve.DefaultDrainTimeout, "graceful-shutdown drain budget after SIGINT/SIGTERM")
	reloadMaxChurn := flag.Float64("reload-max-churn", snapshot.DefaultMaxChurnFraction, "reload gate: quarantine a rebuilt generation whose state-owned ASN set churned more than this fraction (0 rejects any change; >= 1 disables the bound)")
	reloadMaxFailures := flag.Int("reload-max-failures", 0, "reload gate: stop retrying after this many consecutive quarantined rebuilds and serve last-known-good until restart (0 = retry forever)")
	flag.Parse()

	if *scale <= 0 {
		log.Println("invalid -scale: must be > 0")
		os.Exit(2)
	}
	if *workers < 0 {
		log.Println("invalid -workers: must be >= 0")
		os.Exit(2)
	}
	if *chaos < 0 || *chaos > 1 {
		log.Println("invalid -chaos: severity must be in [0,1]")
		os.Exit(2)
	}
	if *cacheSize < 0 {
		log.Println("invalid -cache: must be >= 0")
		os.Exit(2)
	}
	if *reloadEvery < 0 {
		log.Println("invalid -reload-every: must be >= 0")
		os.Exit(2)
	}
	if *generations < 1 {
		log.Println("invalid -generations: must be >= 1")
		os.Exit(2)
	}
	if *maxInflight < 0 || *maxInflight > serve.MaxInFlightCap {
		log.Printf("invalid -max-inflight: must be in [0, %d]", serve.MaxInFlightCap)
		os.Exit(2)
	}
	if *queueWait < 0 {
		log.Println("invalid -queue-wait: must be >= 0")
		os.Exit(2)
	}
	if *requestTimeout < 0 {
		log.Println("invalid -request-timeout: must be >= 0")
		os.Exit(2)
	}
	if *drainTimeout <= 0 {
		log.Println("invalid -drain-timeout: must be > 0")
		os.Exit(2)
	}
	if *reloadMaxChurn < 0 {
		log.Println("invalid -reload-max-churn: must be >= 0")
		os.Exit(2)
	}
	if *reloadMaxFailures < 0 {
		log.Println("invalid -reload-max-failures: must be >= 0")
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("invalid -addr: %v", err)
		os.Exit(2)
	}

	log.Printf("building generation 0 (seed %d, scale %g, chaos %g)...", *seed, *scale, *chaos)
	store := snapshot.New(snapshot.Options{
		Base: stateowned.Config{
			Seed: *seed, Scale: *scale, Workers: *workers,
			ChaosSeverity: *chaos, ChaosSeed: *chaosSeed,
		},
		ChurnSeed: *churnSeed,
		Retain:    *generations,
		Validation: &snapshot.Validation{
			MaxChurnFraction: *reloadMaxChurn,
			MaxFailures:      *reloadMaxFailures,
		},
	})
	g := store.Current()
	log.Printf("generation 0 live: %d organizations, %d state-owned ASNs, %d minority records",
		g.Index.NumOrgs(), g.Index.NumASNs(), g.Index.NumMinority())
	if degraded := g.Result.Health.DegradedSources(); len(degraded) > 0 {
		log.Printf("degraded sources: %v (see /readyz)", degraded)
	}

	var admission *serve.AdmissionConfig
	if *maxInflight > 0 {
		admission = &serve.AdmissionConfig{
			MaxInFlight: *maxInflight,
			QueueWait:   *queueWait,
		}
		if *queueWait == 0 {
			// Flag semantics: an explicit zero means "no waiting", while the
			// config's zero value means "default wait".
			admission.QueueWait = -1
		}
	}
	srv := serve.NewDynamic(store.Source(), serve.Options{
		CacheSize:      *cacheSize,
		Admission:      admission,
		RequestTimeout: *requestTimeout,
		DrainTimeout:   *drainTimeout,
	})
	store.OnEvict(srv.InvalidateGeneration)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *reloadEvery > 0 {
		log.Printf("hot reload on: next generation every %s, retaining %d", *reloadEvery, *generations)
		go store.Reload(ctx, *reloadEvery, log.Printf)
	}

	// The "listening on" line is the machine-readable handshake the smoke
	// tests (and port-0 users) parse for the bound address.
	fmt.Printf("listening on %s\n", ln.Addr())
	if err := srv.Serve(ctx, ln); err != nil {
		log.Fatal(err)
	}
	log.Println("shut down cleanly")
}
