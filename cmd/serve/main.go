// Command serve runs the pipeline once and serves the resulting dataset
// over an HTTP JSON API: per-ASN, per-country and per-organization
// lookups, fuzzy name search, the full Listing-1 export, and the
// operational endpoints /healthz, /readyz (the pipeline's degradation
// report) and /metrics (request counts, latency histograms, cache hit
// ratio).
//
// Usage:
//
//	serve [-addr :8080] [-seed N] [-scale F] [-workers N] [-chaos F] [-chaos-seed N] [-cache N]
//
// With -chaos > 0 the pipeline builds under a seeded fault plan and
// /readyz reflects the degraded sources (503 when a source went
// unavailable). -workers bounds the build scheduler's pool for the
// startup pipeline run (0 = GOMAXPROCS; the served dataset is identical
// for every worker count); /metrics reports the per-node build times.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"stateowned"
	"stateowned/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
	seed := flag.Uint64("seed", 42, "world seed")
	scale := flag.Float64("scale", 1.0, "world scale")
	workers := flag.Int("workers", 0, "build-scheduler pool size (0 = GOMAXPROCS, 1 = serial; output is identical either way)")
	chaos := flag.Float64("chaos", 0, "fault-injection severity in [0,1] (0 = off)")
	chaosSeed := flag.Uint64("chaos-seed", 0, "fault-plan seed (0 = derive from -seed)")
	cacheSize := flag.Int("cache", 1024, "response-cache capacity in entries (0 disables caching)")
	flag.Parse()

	if *scale <= 0 {
		log.Println("invalid -scale: must be > 0")
		os.Exit(2)
	}
	if *workers < 0 {
		log.Println("invalid -workers: must be >= 0")
		os.Exit(2)
	}
	if *chaos < 0 || *chaos > 1 {
		log.Println("invalid -chaos: severity must be in [0,1]")
		os.Exit(2)
	}
	if *cacheSize < 0 {
		log.Println("invalid -cache: must be >= 0")
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("invalid -addr: %v", err)
		os.Exit(2)
	}

	log.Printf("building dataset (seed %d, scale %g, chaos %g)...", *seed, *scale, *chaos)
	res := stateowned.Run(stateowned.Config{
		Seed: *seed, Scale: *scale, Workers: *workers,
		ChaosSeverity: *chaos, ChaosSeed: *chaosSeed,
	})
	idx := res.Index()
	log.Printf("index ready: %d organizations, %d state-owned ASNs, %d minority records",
		idx.NumOrgs(), idx.NumASNs(), len(res.Dataset.Minority))
	if degraded := res.Health.DegradedSources(); len(degraded) > 0 {
		log.Printf("degraded sources: %v (see /readyz)", degraded)
	}

	srv := serve.New(idx, serve.Options{
		Health:    res.Health,
		CacheSize: *cacheSize,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The "listening on" line is the machine-readable handshake the smoke
	// tests (and port-0 users) parse for the bound address.
	fmt.Printf("listening on %s\n", ln.Addr())
	if err := srv.Serve(ctx, ln); err != nil {
		log.Fatal(err)
	}
	log.Println("shut down cleanly")
}
