// Command serve runs the pipeline and serves the resulting dataset over
// an HTTP JSON API: per-ASN, per-country and per-organization lookups,
// fuzzy name search, the full Listing-1 export, and the operational
// endpoints /healthz, /readyz (the pipeline's degradation report) and
// /metrics (request counts, latency histograms, cache hit ratio).
//
// The dataset is generational: the server holds a snapshot store whose
// ground-truth world ages under the seeded ownership-churn model. With
// -reload-every > 0 the store rebuilds the next generation on a
// background cadence and publishes it with an atomic swap — traffic is
// never paused; in-flight requests finish on the generation they
// started on. ?gen=N pins a query to any generation still in the
// retention ring (-generations), and /v1/diff?from=&to= audits the
// ownership churn between two retained generations. -incremental makes
// each rebuild reuse the previous generation's artifacts for pipeline
// nodes whose inputs did not churn — byte-identical output, reported on
// /metrics as nodes_reused/nodes_rebuilt.
//
// The same binary also runs as a sharded fleet. -mode shard serves one
// ASN-range partition of the dataset plus the /fleet two-phase control
// plane; -mode router is the fleet's front door, scatter-gathering the
// shards in -shard-addrs and (with -flip-every) driving their
// generation-coherent reloads: stage everywhere behind each shard's
// validation gate, commit only on unanimous acks, then flip the
// router's generation pin. Shards rebuild every generation
// deterministically from (seed, churn seed, generation), so a fleet
// needs agreement on numbers, never state transfer.
//
// Usage:
//
//	serve [-addr :8080] [-seed N] [-scale F] [-workers N] [-chaos F] [-chaos-seed N] [-cache N]
//	      [-reload-every D] [-generations N] [-churn-seed N] [-incremental]
//	      [-max-inflight N] [-queue-wait D] [-request-timeout D] [-drain-timeout D]
//	      [-reload-max-churn F] [-reload-max-failures N]
//	serve -mode shard -shards N -shard-index I [world and serving flags]
//	serve -mode router -shard-addrs host:port,host:port,... [-flip-every D] [serving flags]
//
// Flags that contradict the chosen mode (a -reload-every timer on a
// shard, world-build flags on the data-less router, fleet flags on a
// single) are rejected at startup with exit status 2.
//
// With -chaos > 0 the pipeline builds under a seeded fault plan and
// /readyz reflects the degraded sources (503 when a source went
// unavailable). -workers bounds the build scheduler's pool for every
// generation's pipeline run (0 = GOMAXPROCS; the served dataset is
// identical for every worker count); /metrics reports the per-node
// build times.
//
// Overload and failure containment: -max-inflight bounds concurrently
// executing /v1 requests (excess waits up to -queue-wait, then is shed
// with 503 + Retry-After); -request-timeout is the per-request handler
// budget (expensive endpoints — /v1/diff, /v1/search — get half; 504 on
// overrun); -reload-max-churn and -reload-max-failures configure the
// reload validation gate — a rebuilt generation whose dataset churned
// more than the bound (or that is empty, unhealthy, or panicked) is
// quarantined and the server keeps answering from the last good
// generation, retrying under capped exponential backoff and reporting
// the degraded state on /readyz and /metrics. SIGINT/SIGTERM triggers a
// graceful drain bounded by -drain-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stateowned"
	"stateowned/internal/durable"
	"stateowned/internal/fleet"
	"stateowned/internal/serve"
	"stateowned/internal/snapshot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		log.Println(err)
		os.Exit(2)
	}

	// Open the durable archive before binding the port: an unwritable
	// -data-dir is a configuration error (exit 2), discovered before the
	// process starts accepting anything.
	var archive *durable.Archive
	if cfg.dataDir != "" {
		archive, err = durable.Open(durable.Options{Dir: cfg.dataDir, Retain: cfg.archiveRetain})
		if err != nil {
			log.Println(err)
			os.Exit(2)
		}
		rec := archive.Recovered()
		if n := len(rec.Generations); n > 0 {
			newest := rec.Generations[n-1].Record.Gen
			log.Printf("archive %s: %d verified generation(s), newest %d", cfg.dataDir, n, newest)
		} else {
			log.Printf("archive %s: empty, cold start", cfg.dataDir)
		}
		if note := rec.ManifestNote; note != "" {
			log.Printf("archive manifest: %s", note)
		}
		for _, q := range rec.Quarantined {
			log.Printf("archive quarantined generation %d (%s): %s", q.Gen, q.Segment, q.Reason)
		}
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		log.Printf("invalid -addr: %v", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch cfg.mode {
	case "single":
		err = runSingle(ctx, cfg, archive, ln)
	case "shard":
		err = runShard(ctx, cfg, archive, ln)
	case "router":
		err = runRouter(ctx, cfg, ln)
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Println("shut down cleanly")
}

// buildStore builds generation 0 synchronously (single and shard
// modes) — or, with a durable archive holding verified generations,
// warm-starts from the newest one instead — and logs what went live.
func buildStore(cfg config, archive *durable.Archive) *snapshot.Store {
	if archive == nil || len(archive.Recovered().Generations) == 0 {
		log.Printf("building generation 0 (seed %d, scale %g, chaos %g)...", cfg.seed, cfg.scale, cfg.chaos)
	}
	store := snapshot.New(snapshot.Options{
		Base: stateowned.Config{
			Seed: cfg.seed, Scale: cfg.scale, Workers: cfg.workers,
			ChaosSeverity: cfg.chaos, ChaosSeed: cfg.chaosSeed,
			HijackSeverity: cfg.hijack, HijackSeed: cfg.hijackSeed,
			ROVFraction: cfg.rovFraction,
		},
		ChurnSeed:   cfg.churnSeed,
		Retain:      cfg.generations,
		Incremental: cfg.incremental,
		Archive:     archive,
		Validation: &snapshot.Validation{
			MaxChurnFraction: cfg.reloadMaxChurn,
			MaxFailures:      cfg.reloadMaxFailures,
		},
	})
	g := store.Current()
	if rg := store.RecoveredGen(); rg >= 0 {
		log.Printf("warm start: generation %d recovered from archive (%d organizations, %d state-owned ASNs); retained %v",
			g.Gen, g.Index.NumOrgs(), g.Index.NumASNs(), store.Retained())
	} else {
		log.Printf("generation 0 live: %d organizations, %d state-owned ASNs, %d minority records",
			g.Index.NumOrgs(), g.Index.NumASNs(), g.Index.NumMinority())
	}
	if degraded := g.Result.Health.DegradedSources(); len(degraded) > 0 {
		log.Printf("degraded sources: %v (see /readyz)", degraded)
	}
	return store
}

// admissionFor maps the admission flags to config, preserving the flag
// semantics: -max-inflight 0 disables admission entirely, and an
// explicit -queue-wait 0 means "no waiting" where the config's zero
// value would mean "default wait".
func admissionFor(cfg config) *serve.AdmissionConfig {
	if cfg.maxInflight <= 0 {
		return nil
	}
	a := &serve.AdmissionConfig{MaxInFlight: cfg.maxInflight, QueueWait: cfg.queueWait}
	if cfg.queueWait == 0 {
		a.QueueWait = -1
	}
	return a
}

func serveOptions(cfg config) serve.Options {
	return serve.Options{
		CacheSize:      cfg.cacheSize,
		Admission:      admissionFor(cfg),
		RequestTimeout: cfg.requestTimeout,
		DrainTimeout:   cfg.drainTimeout,
	}
}

// announce prints the machine-readable handshake the smoke tests (and
// port-0 users) parse for the bound address.
func announce(ln net.Listener) { fmt.Printf("listening on %s\n", ln.Addr()) }

// runSingle is the classic all-in-one server: build, serve, optionally
// hot-reload on a timer.
func runSingle(ctx context.Context, cfg config, archive *durable.Archive, ln net.Listener) error {
	store := buildStore(cfg, archive)
	srv := serve.NewDynamic(store.Source(), serveOptions(cfg))
	store.OnEvict(srv.InvalidateGeneration)

	if cfg.reloadEvery > 0 {
		log.Printf("hot reload on: next generation every %s, retaining %d", cfg.reloadEvery, cfg.generations)
		go store.Reload(ctx, cfg.reloadEvery, log.Printf)
	}
	announce(ln)
	return srv.Serve(ctx, ln)
}

// runShard serves one partition of the fleet: the carved data plane,
// the /full plane, and the two-phase control plane. Generations advance
// only on the coordinator's stage/commit orders.
func runShard(ctx context.Context, cfg config, archive *durable.Archive, ln net.Listener) error {
	store := buildStore(cfg, archive)
	part, err := fleet.ComputePartition(store.Current().Result.Dataset, cfg.shards)
	if err != nil {
		return fmt.Errorf("computing partition: %w", err)
	}
	sh := fleet.NewShardServer(store, part, cfg.shardIndex, serveOptions(cfg))
	log.Printf("shard %d/%d ready: awaiting coordinator orders on %s", cfg.shardIndex, cfg.shards, fleet.StagePath)
	announce(ln)
	return sh.Serve(ctx, ln)
}

// runRouter is the fleet front door: adopt the partition from shard 0,
// bootstrap a coherent generation pin from the whole fleet, then serve —
// and, with -flip-every, drive the coordinated reload loop.
func runRouter(ctx context.Context, cfg config, ln net.Listener) error {
	httpc := &http.Client{}
	clients := make([]fleet.ShardClient, len(cfg.shardAddrs))
	for i, base := range cfg.shardAddrs {
		clients[i] = fleet.ShardClient{Index: i, Base: base, HTTP: httpc}
	}

	// The partition is the shards' to declare (they carved it from the
	// generation-0 dataset); the router adopts it from shard 0 and
	// Bootstrap cross-checks every other shard against it. Shards build
	// their world at startup, so poll patiently.
	part, err := adoptPartition(ctx, &clients[0], cfg.shards)
	if err != nil {
		return err
	}

	rt, err := fleet.NewRouter(fleet.RouterOptions{
		Partition:      part,
		Shards:         clients,
		Admission:      admissionFor(cfg),
		RequestTimeout: cfg.requestTimeout,
		Lifecycle:      serve.LifecycleOptions{DrainTimeout: cfg.drainTimeout},
	})
	if err != nil {
		return fmt.Errorf("building router: %w", err)
	}
	coord := fleet.NewCoordinator(rt, clients, fleet.CoordinatorOptions{
		// Stage calls build a whole generation on the shard; budget for a
		// build, not a ping.
		ControlTimeout: 5 * time.Minute,
	})
	gen, err := coord.Bootstrap(ctx)
	if err != nil {
		return err
	}
	log.Printf("fleet bootstrap: %d shards coherent at generation %d", len(clients), gen)

	if cfg.flipEvery > 0 {
		log.Printf("coordinated reload on: two-phase flip every %s", cfg.flipEvery)
		go coord.Run(ctx, cfg.flipEvery, log.Printf)
	}
	announce(ln)
	return rt.Serve(ctx, ln)
}

// adoptPartition polls shard 0's control plane until it answers (shards
// spend their startup building generation 0) and returns its declared
// partition.
func adoptPartition(ctx context.Context, sc *fleet.ShardClient, wantShards int) (fleet.Partition, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		callCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
		st, err := sc.Status(callCtx)
		cancel()
		switch {
		case err == nil && st.Shards != wantShards:
			return fleet.Partition{}, fmt.Errorf(
				"shard 0 at %s is part of a %d-shard fleet, not %d", sc.Base, st.Shards, wantShards)
		case err == nil:
			return st.Partition, nil
		default:
			lastErr = err
		}
		if attempt%10 == 0 {
			log.Printf("waiting for shard 0 at %s: %v", sc.Base, lastErr)
		}
		select {
		case <-ctx.Done():
			return fleet.Partition{}, fmt.Errorf("waiting for shard 0 at %s: %w (last: %v)", sc.Base, ctx.Err(), lastErr)
		case <-time.After(time.Second):
		}
	}
}
