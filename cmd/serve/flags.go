package main

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"stateowned/internal/fleet"
	"stateowned/internal/serve"
	"stateowned/internal/snapshot"
)

// maxArchiveRetain caps -archive-retain: a larger window is almost
// certainly a typo'd number, and each archived generation is a full
// dataset export on disk.
const maxArchiveRetain = 1024

// config is the fully parsed and validated command configuration. One
// process runs in exactly one of three modes:
//
//   - single: the classic all-in-one server (build the world, serve it,
//     optionally hot-reload generations on a timer).
//   - shard: one fleet shard — builds the world, serves its carved ASN
//     partition plus the /fleet control plane, and advances generations
//     only on the coordinator's two-phase orders (never on a timer).
//   - router: the fleet front door — owns no data, scatter-gathers the
//     shards listed in -shard-addrs and drives their coherent reloads.
type config struct {
	mode string
	addr string

	// World-build knobs (single and shard modes).
	seed        uint64
	scale       float64
	workers     int
	chaos       float64
	chaosSeed   uint64
	churnSeed   uint64
	hijack      float64
	hijackSeed  uint64
	rovFraction float64

	// Serving knobs.
	cacheSize      int
	generations    int
	maxInflight    int
	queueWait      time.Duration
	requestTimeout time.Duration
	drainTimeout   time.Duration

	// Reload knobs (single mode only; fleet reloads are coordinated).
	reloadEvery       time.Duration
	reloadMaxChurn    float64
	reloadMaxFailures int

	// Incremental rebuilds (single and shard modes: anywhere a store
	// builds generations).
	incremental bool

	// Durable archive (single and shard modes: anywhere a store owns
	// data). dataDir enables crash-consistent persistence of every
	// committed generation and warm-start recovery at boot;
	// archiveRetain bounds the on-disk generation window.
	dataDir       string
	archiveRetain int

	// Fleet knobs.
	shards     int
	shardIndex int
	shardAddrs []string
	flipEvery  time.Duration
}

// parseFlags parses and validates the command line. Any error —
// malformed flags, out-of-range values, or a contradictory fleet-mode
// combination — is returned for main to report and exit 2 on, so the
// whole surface is testable without spawning processes.
func parseFlags(args []string, output io.Writer) (config, error) {
	var cfg config
	var shardAddrs string
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(output)
	fs.StringVar(&cfg.mode, "mode", "single", "process role: single (all-in-one), shard (one fleet partition + control plane), router (fleet front door)")
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
	fs.Uint64Var(&cfg.seed, "seed", 42, "world seed")
	fs.Float64Var(&cfg.scale, "scale", 1.0, "world scale")
	fs.IntVar(&cfg.workers, "workers", 0, "build-scheduler pool size (0 = GOMAXPROCS, 1 = serial; output is identical either way)")
	fs.Float64Var(&cfg.chaos, "chaos", 0, "fault-injection severity in [0,1] (0 = off)")
	fs.Uint64Var(&cfg.chaosSeed, "chaos-seed", 0, "fault-plan seed (0 = derive from -seed)")
	fs.Float64Var(&cfg.hijack, "hijack", 0, "routing-adversary severity in [0,1] (0 = off): seeded prefix-hijack campaigns pollute monitor paths and feed /v1/hijacks")
	fs.Uint64Var(&cfg.hijackSeed, "hijack-seed", 0, "campaign-roster seed (0 = derive from -seed)")
	fs.Float64Var(&cfg.rovFraction, "rov-fraction", 0, "route-origin-validation deployment fraction in [0,1]; 1.0 neutralizes every campaign (byte-identical to an honest run)")
	fs.IntVar(&cfg.cacheSize, "cache", 1024, "response-cache capacity in entries (0 disables caching)")
	fs.DurationVar(&cfg.reloadEvery, "reload-every", 0, "single mode: rebuild and hot-swap the next dataset generation on this cadence (0 = serve generation 0 forever)")
	fs.IntVar(&cfg.generations, "generations", snapshot.DefaultRetain, "retention ring: how many generations stay pinnable via ?gen=N")
	fs.Uint64Var(&cfg.churnSeed, "churn-seed", 0, "ownership-churn schedule seed (0 = derive from -seed)")
	fs.IntVar(&cfg.maxInflight, "max-inflight", serve.DefaultMaxInFlight, "admission control: max concurrently executing /v1 requests (0 = off)")
	fs.DurationVar(&cfg.queueWait, "queue-wait", serve.DefaultQueueWait, "admission control: how long an over-limit request may wait for a slot before being shed with 503")
	fs.DurationVar(&cfg.requestTimeout, "request-timeout", serve.DefaultRequestTimeout, "per-request handler budget; expensive endpoints get half (0 = no deadline)")
	fs.DurationVar(&cfg.drainTimeout, "drain-timeout", serve.DefaultDrainTimeout, "graceful-shutdown drain budget after SIGINT/SIGTERM")
	fs.Float64Var(&cfg.reloadMaxChurn, "reload-max-churn", snapshot.DefaultMaxChurnFraction, "reload gate: quarantine a rebuilt generation whose state-owned ASN set churned more than this fraction (0 rejects any change; >= 1 disables the bound)")
	fs.IntVar(&cfg.reloadMaxFailures, "reload-max-failures", 0, "reload gate: stop retrying after this many consecutive quarantined rebuilds and serve last-known-good until restart (0 = retry forever)")
	fs.BoolVar(&cfg.incremental, "incremental", false, "rebuild generations incrementally: reuse the previous generation's artifacts for pipeline nodes whose inputs did not churn (byte-identical output, less rebuild work)")
	fs.StringVar(&cfg.dataDir, "data-dir", "", "durable generation archive directory: every committed generation persists here (crash-consistent), and a restarted process warm-starts from the newest verified one ('' = memory only)")
	fs.IntVar(&cfg.archiveRetain, "archive-retain", 0, "with -data-dir: how many generations stay archived on disk (0 = default; may exceed -generations)")
	fs.IntVar(&cfg.shards, "shards", 0, "fleet size (shard mode: the partition's shard count; router mode: optional cross-check against -shard-addrs)")
	fs.IntVar(&cfg.shardIndex, "shard-index", -1, "shard mode: this shard's position in [0, -shards)")
	fs.StringVar(&shardAddrs, "shard-addrs", "", "router mode: comma-separated shard base addresses, in shard order")
	fs.DurationVar(&cfg.flipEvery, "flip-every", 0, "router mode: drive a coherent two-phase fleet reload on this cadence (0 = no automatic flips)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if fs.NArg() > 0 {
		return cfg, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if shardAddrs != "" {
		for _, a := range strings.Split(shardAddrs, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				return cfg, fmt.Errorf("invalid -shard-addrs: empty address in %q", shardAddrs)
			}
			if !strings.Contains(a, "://") {
				a = "http://" + a
			}
			cfg.shardAddrs = append(cfg.shardAddrs, a)
		}
	}
	return cfg, validate(&cfg, set)
}

// validate enforces value ranges and, above all, mode coherence: flags
// that contradict the chosen mode are hard errors, not silent no-ops —
// a fleet operator who passes -reload-every to a shard almost certainly
// believes timers drive fleet reloads, and that belief must be
// corrected at startup, not discovered during an incoherent flip.
func validate(cfg *config, set map[string]bool) error {
	switch {
	case cfg.scale <= 0:
		return fmt.Errorf("invalid -scale: must be > 0")
	case cfg.workers < 0:
		return fmt.Errorf("invalid -workers: must be >= 0")
	case cfg.chaos < 0 || cfg.chaos > 1:
		return fmt.Errorf("invalid -chaos: severity must be in [0,1]")
	case cfg.hijack < 0 || cfg.hijack > 1:
		return fmt.Errorf("invalid -hijack: severity must be in [0,1]")
	case cfg.rovFraction < 0 || cfg.rovFraction > 1:
		return fmt.Errorf("invalid -rov-fraction: must be in [0,1]")
	case cfg.cacheSize < 0:
		return fmt.Errorf("invalid -cache: must be >= 0")
	case cfg.reloadEvery < 0:
		return fmt.Errorf("invalid -reload-every: must be >= 0")
	case cfg.generations < 1:
		return fmt.Errorf("invalid -generations: must be >= 1")
	case cfg.maxInflight < 0 || cfg.maxInflight > serve.MaxInFlightCap:
		return fmt.Errorf("invalid -max-inflight: must be in [0, %d]", serve.MaxInFlightCap)
	case cfg.queueWait < 0:
		return fmt.Errorf("invalid -queue-wait: must be >= 0")
	case cfg.requestTimeout < 0:
		return fmt.Errorf("invalid -request-timeout: must be >= 0")
	case cfg.drainTimeout <= 0:
		return fmt.Errorf("invalid -drain-timeout: must be > 0")
	case cfg.reloadMaxChurn < 0:
		return fmt.Errorf("invalid -reload-max-churn: must be >= 0")
	case cfg.reloadMaxFailures < 0:
		return fmt.Errorf("invalid -reload-max-failures: must be >= 0")
	case cfg.flipEvery < 0:
		return fmt.Errorf("invalid -flip-every: must be >= 0")
	case cfg.archiveRetain < 0 || cfg.archiveRetain > maxArchiveRetain:
		return fmt.Errorf("invalid -archive-retain: must be in [0, %d]", maxArchiveRetain)
	}
	if err := validateMode(cfg, set); err != nil {
		return err
	}
	// Cross-flag dependency, checked after mode coherence so a router
	// operator passing -archive-retain hears "contradicts -mode router",
	// not a hint to add -data-dir (which also contradicts).
	if cfg.archiveRetain > 0 && cfg.dataDir == "" {
		return fmt.Errorf("-archive-retain needs -data-dir (nothing to retain without an archive)")
	}
	return nil
}

// validateMode enforces mode coherence: flags that contradict the
// chosen mode are hard errors, plus each mode's own required fields.
func validateMode(cfg *config, set map[string]bool) error {
	reject := func(flags ...string) error {
		for _, f := range flags {
			if set[f] {
				return fmt.Errorf("-%s contradicts -mode %s", f, cfg.mode)
			}
		}
		return nil
	}
	switch cfg.mode {
	case "single":
		return reject("shards", "shard-index", "shard-addrs", "flip-every")
	case "shard":
		// A shard never reloads on its own timer — generations advance
		// only through the coordinator's stage/commit orders, or the fleet
		// loses coherence. Router-only flags are equally contradictory.
		if err := reject("reload-every", "shard-addrs", "flip-every"); err != nil {
			return err
		}
		if cfg.shards < 1 || cfg.shards > fleet.MaxShards {
			return fmt.Errorf("invalid -shards: shard mode needs a fleet size in [1, %d]", fleet.MaxShards)
		}
		if cfg.shardIndex < 0 || cfg.shardIndex >= cfg.shards {
			return fmt.Errorf("invalid -shard-index: must be in [0, %d)", cfg.shards)
		}
		return nil
	case "router":
		// The router owns no data: every world-build and reload-gate flag
		// is a contradiction (the shards build the world; the coordinator,
		// not a timer, reloads it).
		if err := reject("seed", "scale", "workers", "chaos", "chaos-seed", "churn-seed",
			"hijack", "hijack-seed", "rov-fraction",
			"generations", "cache", "reload-every", "reload-max-churn", "reload-max-failures",
			"incremental", "shard-index", "data-dir", "archive-retain"); err != nil {
			return err
		}
		if len(cfg.shardAddrs) == 0 {
			return fmt.Errorf("router mode needs -shard-addrs")
		}
		if len(cfg.shardAddrs) > fleet.MaxShards {
			return fmt.Errorf("invalid -shard-addrs: %d shards exceeds the maximum of %d",
				len(cfg.shardAddrs), fleet.MaxShards)
		}
		if set["shards"] && cfg.shards != len(cfg.shardAddrs) {
			return fmt.Errorf("-shards %d contradicts -shard-addrs (%d addresses)",
				cfg.shards, len(cfg.shardAddrs))
		}
		cfg.shards = len(cfg.shardAddrs)
		return nil
	default:
		return fmt.Errorf("invalid -mode %q: want single, shard or router", cfg.mode)
	}
}
