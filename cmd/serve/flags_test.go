package main

import (
	"io"
	"strings"
	"testing"
)

// TestParseFlagsModeValidation drives the whole flag surface through
// parseFlags: valid combinations for each mode parse cleanly, and every
// contradictory fleet-mode combination is rejected with an error naming
// the offending flag — main turns any error into exit status 2, so this
// table is the exit-2 contract.
func TestParseFlagsModeValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // "" = must parse
	}{
		{name: "default single", args: nil},
		{name: "single with reload", args: []string{"-reload-every", "5s", "-generations", "6"}},
		{name: "single incremental reload", args: []string{"-reload-every", "5s", "-incremental"}},
		{name: "shard incremental", args: []string{"-mode", "shard", "-shards", "2", "-shard-index", "1", "-incremental"}},
		{name: "shard", args: []string{"-mode", "shard", "-shards", "4", "-shard-index", "2"}},
		{name: "shard with build flags", args: []string{"-mode", "shard", "-shards", "2", "-shard-index", "0", "-seed", "7", "-scale", "0.1"}},
		{name: "router", args: []string{"-mode", "router", "-shard-addrs", "localhost:9001,localhost:9002"}},
		{name: "router with matching shards", args: []string{"-mode", "router", "-shards", "2", "-shard-addrs", "a:1,b:2", "-flip-every", "30s"}},
		{name: "router with serving flags", args: []string{"-mode", "router", "-shard-addrs", "a:1", "-max-inflight", "64", "-request-timeout", "3s"}},

		{name: "unknown mode", args: []string{"-mode", "mesh"}, wantErr: `invalid -mode "mesh"`},
		{name: "single with shards", args: []string{"-shards", "4"}, wantErr: "-shards contradicts -mode single"},
		{name: "single with shard-index", args: []string{"-shard-index", "0"}, wantErr: "-shard-index contradicts -mode single"},
		{name: "single with shard-addrs", args: []string{"-shard-addrs", "a:1"}, wantErr: "-shard-addrs contradicts -mode single"},
		{name: "single with flip-every", args: []string{"-flip-every", "1m"}, wantErr: "-flip-every contradicts -mode single"},
		{name: "shard with timer reload", args: []string{"-mode", "shard", "-shards", "2", "-shard-index", "0", "-reload-every", "5s"}, wantErr: "-reload-every contradicts -mode shard"},
		{name: "shard with shard-addrs", args: []string{"-mode", "shard", "-shards", "2", "-shard-index", "0", "-shard-addrs", "a:1"}, wantErr: "-shard-addrs contradicts -mode shard"},
		{name: "shard with flip-every", args: []string{"-mode", "shard", "-shards", "2", "-shard-index", "0", "-flip-every", "1m"}, wantErr: "-flip-every contradicts -mode shard"},
		{name: "shard without fleet size", args: []string{"-mode", "shard", "-shard-index", "0"}, wantErr: "invalid -shards"},
		{name: "shard index out of range", args: []string{"-mode", "shard", "-shards", "2", "-shard-index", "2"}, wantErr: "invalid -shard-index"},
		{name: "shard index missing", args: []string{"-mode", "shard", "-shards", "2"}, wantErr: "invalid -shard-index"},
		{name: "router without addrs", args: []string{"-mode", "router"}, wantErr: "router mode needs -shard-addrs"},
		{name: "router with seed", args: []string{"-mode", "router", "-shard-addrs", "a:1", "-seed", "7"}, wantErr: "-seed contradicts -mode router"},
		{name: "router with scale", args: []string{"-mode", "router", "-shard-addrs", "a:1", "-scale", "0.5"}, wantErr: "-scale contradicts -mode router"},
		{name: "router with cache", args: []string{"-mode", "router", "-shard-addrs", "a:1", "-cache", "16"}, wantErr: "-cache contradicts -mode router"},
		{name: "router with reload gate", args: []string{"-mode", "router", "-shard-addrs", "a:1", "-reload-max-churn", "0.5"}, wantErr: "-reload-max-churn contradicts -mode router"},
		{name: "router with shard-index", args: []string{"-mode", "router", "-shard-addrs", "a:1", "-shard-index", "0"}, wantErr: "-shard-index contradicts -mode router"},
		{name: "router with incremental", args: []string{"-mode", "router", "-shard-addrs", "a:1", "-incremental"}, wantErr: "-incremental contradicts -mode router"},
		{name: "router shard count mismatch", args: []string{"-mode", "router", "-shards", "3", "-shard-addrs", "a:1,b:2"}, wantErr: "-shards 3 contradicts -shard-addrs (2 addresses)"},
		{name: "router empty addr", args: []string{"-mode", "router", "-shard-addrs", "a:1,,b:2"}, wantErr: "empty address"},
		{name: "positional garbage", args: []string{"extra"}, wantErr: "unexpected arguments"},
		{name: "bad scale still caught", args: []string{"-scale", "0"}, wantErr: "invalid -scale"},
		{name: "single with hijack", args: []string{"-hijack", "0.5", "-hijack-seed", "7", "-rov-fraction", "0.25"}},
		{name: "shard with hijack", args: []string{"-mode", "shard", "-shards", "2", "-shard-index", "0", "-hijack", "1"}},
		{name: "hijack out of range", args: []string{"-hijack", "1.5"}, wantErr: "invalid -hijack"},
		{name: "hijack negative", args: []string{"-hijack", "-0.1"}, wantErr: "invalid -hijack"},
		{name: "rov out of range", args: []string{"-rov-fraction", "2"}, wantErr: "invalid -rov-fraction"},
		{name: "router with hijack", args: []string{"-mode", "router", "-shard-addrs", "a:1", "-hijack", "0.5"}, wantErr: "-hijack contradicts -mode router"},
		{name: "router with hijack-seed", args: []string{"-mode", "router", "-shard-addrs", "a:1", "-hijack-seed", "7"}, wantErr: "-hijack-seed contradicts -mode router"},
		{name: "router with rov-fraction", args: []string{"-mode", "router", "-shard-addrs", "a:1", "-rov-fraction", "1"}, wantErr: "-rov-fraction contradicts -mode router"},
		{name: "single with data dir", args: []string{"-data-dir", "/tmp/archive", "-archive-retain", "16"}},
		{name: "shard with data dir", args: []string{"-mode", "shard", "-shards", "2", "-shard-index", "0", "-data-dir", "/tmp/archive"}},
		{name: "archive retain negative", args: []string{"-data-dir", "/tmp/a", "-archive-retain", "-1"}, wantErr: "invalid -archive-retain"},
		{name: "archive retain too large", args: []string{"-data-dir", "/tmp/a", "-archive-retain", "4096"}, wantErr: "invalid -archive-retain"},
		{name: "archive retain without data dir", args: []string{"-archive-retain", "8"}, wantErr: "-archive-retain needs -data-dir"},
		{name: "router with data dir", args: []string{"-mode", "router", "-shard-addrs", "a:1", "-data-dir", "/tmp/a"}, wantErr: "-data-dir contradicts -mode router"},
		{name: "router with archive retain", args: []string{"-mode", "router", "-shard-addrs", "a:1", "-archive-retain", "4"}, wantErr: "-archive-retain contradicts -mode router"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := parseFlags(tc.args, io.Discard)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("parseFlags(%v): %v", tc.args, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("parseFlags(%v) accepted (mode %q), want error containing %q", tc.args, cfg.mode, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("parseFlags(%v) error %q, want substring %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// TestParseFlagsRouterDerivations pins the router-mode conveniences:
// schemeless addresses gain http://, and -shards is derived from the
// address list when not given.
func TestParseFlagsRouterDerivations(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-mode", "router",
		"-shard-addrs", "localhost:9001, https://shard1.internal:9002 ,localhost:9003",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://localhost:9001", "https://shard1.internal:9002", "http://localhost:9003"}
	if len(cfg.shardAddrs) != len(want) {
		t.Fatalf("shardAddrs = %v, want %v", cfg.shardAddrs, want)
	}
	for i := range want {
		if cfg.shardAddrs[i] != want[i] {
			t.Fatalf("shardAddrs[%d] = %q, want %q", i, cfg.shardAddrs[i], want[i])
		}
	}
	if cfg.shards != 3 {
		t.Fatalf("shards = %d, want 3 (derived from the address list)", cfg.shards)
	}
}
