// Command pipeline runs the full three-stage classification pipeline on a
// seeded synthetic world and writes the final dataset — the paper's
// Listing-1 JSON — to a file, printing per-stage statistics on the way.
//
// Usage:
//
//	pipeline [-seed N] [-scale F] [-monitors N] [-workers N] [-chaos F] [-chaos-seed N] [-o dataset.json]
//
// With -chaos > 0 the run executes under a seeded fault plan (monitor
// outages, registry record loss and corruption, Orbis timeouts, missing
// documents) and prints the hardened runner's health report.
//
// -workers bounds the build scheduler's pool: independent data-source
// builds run concurrently, with output bit-identical to -workers 1 (the
// canonical serial schedule). 0 selects GOMAXPROCS.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"stateowned"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pipeline: ")
	seed := flag.Uint64("seed", 42, "world seed")
	scale := flag.Float64("scale", 1.0, "world scale")
	monitors := flag.Int("monitors", 0, "BGP vantage-point count (0 = default 60)")
	workers := flag.Int("workers", 0, "build-scheduler pool size (0 = GOMAXPROCS, 1 = serial; output is identical either way)")
	chaos := flag.Float64("chaos", 0, "fault-injection severity in [0,1] (0 = off)")
	chaosSeed := flag.Uint64("chaos-seed", 0, "fault-plan seed (0 = derive from -seed)")
	out := flag.String("o", "dataset.json", "output path for the dataset JSON")
	flag.Parse()

	if *scale <= 0 {
		log.Println("invalid -scale: must be > 0")
		os.Exit(2)
	}
	if *monitors < 0 {
		log.Println("invalid -monitors: must be >= 0")
		os.Exit(2)
	}
	if *workers < 0 {
		log.Println("invalid -workers: must be >= 0")
		os.Exit(2)
	}
	if *chaos < 0 || *chaos > 1 {
		log.Println("invalid -chaos: severity must be in [0,1]")
		os.Exit(2)
	}

	res := stateowned.Run(stateowned.Config{
		Seed: *seed, Scale: *scale, Monitors: *monitors, Workers: *workers,
		ChaosSeverity: *chaos, ChaosSeed: *chaosSeed,
	})

	st := res.Candidates.Stats
	fmt.Printf("stage 1: %d technical candidate ASes (%d orgs), %d Orbis rows, %d Wikipedia+FH mentions -> %d candidate companies\n",
		st.AllTechnicalASes, st.DistinctOrgs, st.OrbisCompanies, st.WikiFHCompanies, st.CandidateCompanys)
	fmt.Printf("stage 2: %d confirmed state-owned, %d minority, %d excluded\n",
		len(res.Confirmation.Confirmed), len(res.Confirmation.Minority), len(res.Confirmation.Excluded))

	reasons := map[string]int{}
	for _, e := range res.Confirmation.Excluded {
		reasons[e.Verdict.String()]++
	}
	for _, v := range []string{"out-of-scope", "no-asn", "private", "unconfirmed"} {
		fmt.Printf("         excluded (%s): %d\n", v, reasons[v])
	}

	ds := res.Dataset
	fmt.Printf("stage 3: %d organizations, %d state-owned ASNs (%d foreign-subsidiary), %d minority records\n",
		len(ds.Organizations), len(ds.AllASNs()), ds.NumForeignSubsidiaryASNs(), len(ds.Minority))

	if *chaos > 0 {
		fmt.Printf("\n%s\n", res.Health.Render())
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := ds.Export(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset written to %s\n", *out)
}
