// Command pipeline runs the full three-stage classification pipeline on a
// seeded synthetic world and writes the final dataset — the paper's
// Listing-1 JSON — to a file, printing per-stage statistics on the way.
//
// Usage:
//
//	pipeline [-seed N] [-scale F] [-o dataset.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"stateowned"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pipeline: ")
	seed := flag.Uint64("seed", 42, "world seed")
	scale := flag.Float64("scale", 1.0, "world scale")
	out := flag.String("o", "dataset.json", "output path for the dataset JSON")
	flag.Parse()

	res := stateowned.Run(stateowned.Config{Seed: *seed, Scale: *scale})

	st := res.Candidates.Stats
	fmt.Printf("stage 1: %d technical candidate ASes (%d orgs), %d Orbis rows, %d Wikipedia+FH mentions -> %d candidate companies\n",
		st.AllTechnicalASes, st.DistinctOrgs, st.OrbisCompanies, st.WikiFHCompanies, st.CandidateCompanys)
	fmt.Printf("stage 2: %d confirmed state-owned, %d minority, %d excluded\n",
		len(res.Confirmation.Confirmed), len(res.Confirmation.Minority), len(res.Confirmation.Excluded))

	reasons := map[string]int{}
	for _, e := range res.Confirmation.Excluded {
		reasons[e.Verdict.String()]++
	}
	for _, v := range []string{"out-of-scope", "no-asn", "private", "unconfirmed"} {
		fmt.Printf("         excluded (%s): %d\n", v, reasons[v])
	}

	ds := res.Dataset
	fmt.Printf("stage 3: %d organizations, %d state-owned ASNs (%d foreign-subsidiary), %d minority records\n",
		len(ds.Organizations), len(ds.AllASNs()), ds.NumForeignSubsidiaryASNs(), len(ds.Minority))

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := ds.Export(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset written to %s\n", *out)
}
