// Command worldgen generates the synthetic ground-truth world and prints
// a summary: per-region operator counts, state-ownership prevalence, and
// the anchor operators planted from the paper's tables.
//
// Usage:
//
//	worldgen [-seed N] [-scale F] [-country CC] [-dot operatorID]
package main

import (
	"flag"
	"fmt"
	"os"

	"stateowned/internal/ccodes"
	"stateowned/internal/report"
	"stateowned/internal/world"
)

func main() {
	seed := flag.Uint64("seed", 42, "world seed")
	scale := flag.Float64("scale", 1.0, "world scale")
	country := flag.String("country", "", "print this country's operators in detail")
	dot := flag.String("dot", "", "emit the ownership chain of this operator ID as GraphViz DOT")
	flag.Parse()

	w := world.Generate(world.Config{Seed: *seed, Scale: *scale})
	if err := w.Validate(); err != nil {
		panic(err)
	}

	if *dot != "" {
		op, ok := w.Operator(*dot)
		if !ok {
			fmt.Printf("worldgen: unknown operator %q\n", *dot)
			return
		}
		if err := w.Graph.WriteDOT(os.Stdout, op.Entity); err != nil {
			panic(err)
		}
		return
	}

	fmt.Printf("world: %d countries, %d operators, %d ASes, %d entities, %d total announced addresses\n",
		len(w.Countries), len(w.OperatorIDs), len(w.ASNList), w.Graph.NumEntities(), w.TotalAnnounced())

	t := report.NewTable("Ground truth by region", "region", "countries", "state-owned countries", "state ASes")
	for _, region := range []ccodes.Region{ccodes.Africa, ccodes.Asia, ccodes.Europe,
		ccodes.NorthAmerica, ccodes.LatinAmerica, ccodes.Oceania} {
		countries, stateCountries, stateASes := 0, 0, 0
		seen := map[string]bool{}
		for _, cc := range w.Countries {
			c := ccodes.MustByCode(cc)
			if c.Region != region {
				continue
			}
			countries++
			for _, op := range w.OperatorsIn(cc) {
				if !op.Kind.InScope() {
					continue
				}
				ctrl := w.ControlOf(op)
				if ctrl.Controlled() && ctrl.Controller == cc {
					if !seen[cc] {
						seen[cc] = true
						stateCountries++
					}
					stateASes += len(op.ASNs)
				}
			}
		}
		t.AddRow(region.String(), countries, stateCountries, stateASes)
	}
	fmt.Println(t.String())

	if *country != "" {
		td := report.NewTable("Operators in "+*country, "id", "brand", "kind", "ASNs", "subs", "addrShare", "control")
		for _, op := range w.OperatorsIn(*country) {
			ctrl := w.ControlOf(op)
			control := "private"
			if ctrl.Controlled() {
				control = fmt.Sprintf("%s (%.0f%%)", ctrl.Controller, ctrl.Share*100)
			} else if cc, share, ok := w.Graph.MinorityState(op.Entity); ok {
				control = fmt.Sprintf("minority %s (%.0f%%)", cc, share*100)
			}
			td.AddRow(op.ID, op.BrandName, op.Kind.String(), len(op.ASNs), op.Subscribers,
				fmt.Sprintf("%.2f", op.AddrShare), control)
		}
		fmt.Println(td.String())
	}
}
