// Command sensitivity quantifies how much of the reproduction is signal
// and how much is seed noise: it runs the full pipeline across several
// seeds and reports mean and standard deviation for the headline metrics,
// the honesty check a simulation-backed reproduction owes its readers.
//
// Usage:
//
//	sensitivity [-seeds 5] [-scale 0.25]
package main

import (
	"flag"
	"fmt"
	"math"

	"stateowned"
	"stateowned/internal/analysis"
	"stateowned/internal/report"
)

func main() {
	nSeeds := flag.Int("seeds", 5, "number of seeds to run")
	scale := flag.Float64("scale", 0.25, "world scale per run")
	flag.Parse()

	metrics := []string{
		"state-owned ASes", "companies", "owner countries",
		"subsidiary-owner countries", "precision", "recall",
		"addr share", "addr share ex-US",
	}
	samples := make(map[string][]float64, len(metrics))

	for seed := uint64(1); seed <= uint64(*nSeeds); seed++ {
		res := stateowned.Run(stateowned.Config{Seed: seed * 31, Scale: *scale})
		d := res.AnalysisData()
		h := analysis.ComputeHeadline(d)
		s := analysis.ComputeScore(d, nil)
		add := func(name string, v float64) { samples[name] = append(samples[name], v) }
		add("state-owned ASes", float64(h.StateASes))
		add("companies", float64(h.Companies))
		add("owner countries", float64(h.OwnerCountries))
		add("subsidiary-owner countries", float64(h.SubOwners))
		add("precision", s.Precision)
		add("recall", s.Recall)
		add("addr share", h.AddrShare)
		add("addr share ex-US", h.AddrShareExUS)
		fmt.Printf("seed %3d: ASes=%d companies=%d countries=%d precision=%.3f recall=%.3f\n",
			seed*31, h.StateASes, h.Companies, h.OwnerCountries, s.Precision, s.Recall)
	}

	t := report.NewTable(fmt.Sprintf("Sensitivity across %d seeds (scale %.2f)", *nSeeds, *scale),
		"metric", "mean", "stddev", "cv")
	for _, name := range metrics {
		m, sd := meanStd(samples[name])
		cv := 0.0
		if m != 0 {
			cv = sd / m
		}
		t.AddRow(name, fmt.Sprintf("%.3f", m), fmt.Sprintf("%.3f", sd), fmt.Sprintf("%.3f", cv))
	}
	fmt.Println()
	fmt.Println(t.String())
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return
}
