// Command experiments regenerates every table and figure of the paper's
// evaluation from a full pipeline run and prints them alongside the
// published values.
//
// Usage:
//
//	experiments [-seed N] [-scale F] [-workers N] [-only section[,section...]] [-chaos-seed N]
//
// Sections: stage1, headline, figure1, figure3, figure4, figure5,
// figure6, figure7, table1..table8, rirshares, appendixE, orbis, score,
// timings, robustness, hijacks. Default: all except timings, robustness
// and hijacks — timings reports nondeterministic per-node build wall
// times (every other section is byte-reproducible for a seed), and the
// degradation-curve sweeps (robustness over fault severities, hijacks
// over adversary severity and ROV deployment) rerun the whole pipeline
// once per point; all three only run when selected explicitly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"stateowned"
	"stateowned/internal/analysis"
	"stateowned/internal/ccodes"
	"stateowned/internal/hijack"
	"stateowned/internal/report"
	"stateowned/internal/world"
)

func main() {
	seed := flag.Uint64("seed", 42, "world seed")
	scale := flag.Float64("scale", 1.0, "world scale (stub-AS multiplier)")
	workers := flag.Int("workers", 0, "build-scheduler pool size (0 = GOMAXPROCS, 1 = serial; results are identical either way)")
	only := flag.String("only", "", "comma-separated list of sections (default: all)")
	chaosSeed := flag.Uint64("chaos-seed", 0, "fault-plan seed for the robustness sweep (0 = derive from -seed)")
	hijackSeed := flag.Uint64("hijack-seed", 0, "campaign-roster seed for the hijacks sweep (0 = derive from -seed)")
	csvDir := flag.String("csv", "", "also write figure data as CSV files into this directory")
	flag.Parse()

	if *scale <= 0 {
		fmt.Fprintln(os.Stderr, "experiments: invalid -scale: must be > 0")
		os.Exit(2)
	}
	if *workers < 0 {
		fmt.Fprintln(os.Stderr, "experiments: invalid -workers: must be >= 0")
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, s := range strings.Split(*only, ",") {
		if s = strings.TrimSpace(s); s != "" {
			want[s] = true
		}
	}
	// Three sections are opt-in: the robustness and hijacks sweeps rerun
	// the full pipeline once per point and would multiply the default
	// invocation's cost, and timings is the one nondeterministic section
	// (measured wall times) in an otherwise byte-reproducible report.
	sel := func(name string) bool {
		if name == "robustness" || name == "timings" || name == "hijacks" {
			return want[name]
		}
		return len(want) == 0 || want[name]
	}

	// res and d are assigned after section-name validation; the closures
	// below capture the variables, not their (still nil) values.
	var res *stateowned.Result
	var d *analysis.Data

	type section struct {
		name   string
		render func() string
	}
	sections := []section{
		{"stage1", func() string { return renderStage1(res) }},
		{"headline", func() string { return analysis.RenderHeadline(analysis.ComputeHeadline(d)) }},
		{"figure1", func() string { return analysis.RenderFigure1(analysis.ComputeFigure1(d)) }},
		{"figure3", func() string {
			return analysis.RenderVennRegions(
				"Figure 3: Venn of source categories (paper: all-three=193, technical-unique=95)",
				[]string{"Technical", "Wikipedia+FH", "Orbis"}, analysis.ComputeFigure3(d))
		}},
		{"figure4", func() string { return analysis.RenderFigure4(analysis.ComputeFigure4(d)) }},
		{"figure5", func() string { return analysis.RenderFigure5(analysis.ComputeFigure5(d)) }},
		{"figure6", func() string { return analysis.RenderFigure6(analysis.ComputeFigure6(d)) }},
		{"figure7", func() string {
			return analysis.RenderVennRegions(
				"Figure 7: full five-source Venn (paper's Appendix C)",
				[]string{"G", "E", "C", "O", "W"}, analysis.ComputeFigure7(d))
		}},
		{"table1", func() string { return analysis.RenderTable1(analysis.ComputeTable1(d)) }},
		{"table2", func() string { return analysis.RenderTable2(analysis.ComputeTable2(d)) }},
		{"table3", func() string { return analysis.RenderTable3(analysis.ComputeTable3(d)) }},
		{"table4", func() string { r, t := analysis.ComputeTable4(d); return analysis.RenderTable4(r, t) }},
		{"table5", func() string { return analysis.RenderTable5(analysis.ComputeTable5(d, 10)) }},
		{"table6", func() string { r, t := analysis.ComputeTable6(d); return analysis.RenderTable6(r, t) }},
		{"table7", func() string { return analysis.RenderTable7(analysis.ComputeTable7(d)) }},
		{"table8", func() string { return analysis.RenderTable8(analysis.ComputeTable8(d, 0.9)) }},
		{"rirshares", func() string { return analysis.RenderRIRShares(analysis.ComputeRIRShares(d)) }},
		{"appendixE", func() string { return analysis.RenderAppendixE(analysis.ComputeAppendixE(d)) }},
		{"orbis", func() string { return analysis.RenderOrbisAudit(analysis.ComputeOrbisAudit(d, res.Orbis)) }},
		{"score", func() string { return renderScores(d) }},
		{"timings", func() string { return res.Health.RenderTimings() }},
		{"robustness", func() string { return renderRobustness(*seed, *scale, *chaosSeed, res) }},
		{"hijacks", func() string { return renderHijacks(*seed, *scale, *hijackSeed, res) }},
	}
	known := map[string]bool{}
	for _, s := range sections {
		known[s.name] = true
	}
	for name := range want {
		if !known[name] {
			names := make([]string, 0, len(sections))
			for _, s := range sections {
				names = append(names, s.name)
			}
			fmt.Fprintf(os.Stderr, "experiments: unknown -only section %q (valid: %s)\n",
				name, strings.Join(names, ", "))
			os.Exit(2)
		}
	}

	fmt.Fprintf(os.Stderr, "running pipeline (seed=%d scale=%.2f)...\n", *seed, *scale)
	res = stateowned.Run(stateowned.Config{Seed: *seed, Scale: *scale, Workers: *workers})
	d = res.AnalysisData()

	for _, s := range sections {
		if !sel(s.name) {
			continue
		}
		fmt.Printf("\n### %s\n\n%s\n", s.name, s.render())
	}

	if *csvDir != "" {
		if err := writeCSVs(*csvDir, d); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "figure CSVs written to %s\n", *csvDir)
	}
}

func writeCSVs(dir string, d *analysis.Data) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(*os.File) error) error {
		f, err := os.Create(dir + "/" + name)
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}
	if err := write("figure1.csv", func(f *os.File) error {
		return analysis.WriteFigure1CSV(f, analysis.ComputeFigure1(d))
	}); err != nil {
		return err
	}
	if err := write("figure4.csv", func(f *os.File) error {
		return analysis.WriteFigure4CSV(f, analysis.ComputeFigure4(d))
	}); err != nil {
		return err
	}
	return write("figure5.csv", func(f *os.File) error {
		return analysis.WriteFigure5CSV(f, analysis.ComputeFigure5(d))
	})
}

func renderStage1(res *stateowned.Result) string {
	st := res.Candidates.Stats
	t := report.NewTable("Stage 1 candidate statistics (§4)", "metric", "measured", "paper")
	t.AddRow("geolocation candidate ASes (>=5%)", st.GeoASes, 793)
	t.AddRow("eyeball candidate ASes (>=5%)", st.EyeballASes, 716)
	t.AddRow("intersection of both", st.TechIntersection, 466)
	t.AddRow("union of both", st.TechUnionGE, 1043)
	t.AddRow("CTI candidate ASes (top-2/country)", st.CTIASes, 93)
	t.AddRow("all technical candidate ASes", st.AllTechnicalASes, 1091)
	t.AddRow("distinct organizations (AS2Org)", st.DistinctOrgs, 1023)
	t.AddRow("Orbis query rows", st.OrbisCompanies, 994)
	t.AddRow("Wikipedia+FH company mentions", st.WikiFHCompanies, "-")
	t.AddRow("merged candidate companies", st.CandidateCompanys, "~1500 (thousands examined)")
	return t.String()
}

// robustnessSeverities is the degradation-curve sweep: severity 0 reuses
// the baseline run already in hand, every other point is a fresh full
// pipeline run under the corresponding fault plan.
var robustnessSeverities = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}

func renderRobustness(seed uint64, scale float64, chaosSeed uint64, baseline *stateowned.Result) string {
	pts := make([]analysis.DegradationPoint, 0, len(robustnessSeverities))
	for _, sev := range robustnessSeverities {
		res := baseline
		if sev > 0 {
			fmt.Fprintf(os.Stderr, "running chaos pipeline (severity=%.2f)...\n", sev)
			res = stateowned.Run(stateowned.Config{
				Seed: seed, Scale: scale, ChaosSeverity: sev, ChaosSeed: chaosSeed,
			})
		}
		s := analysis.ComputeScore(res.AnalysisData(), nil)
		h := res.Health
		pts = append(pts, analysis.DegradationPoint{
			Severity:           sev,
			Precision:          s.Precision,
			Recall:             s.Recall,
			StateASes:          len(res.Dataset.AllASNs()),
			DegradedSources:    len(h.DegradedSources()),
			UnavailableSources: len(h.UnavailableSources()),
			Quarantined:        h.Quarantined(),
			Dropped:            h.Dropped(),
			Retries:            h.Retries(),
		})
	}
	return analysis.RenderDegradation(pts)
}

// hijackSweep lists the (severity, ROV fraction) points of the
// adversarial-routing degradation curves: the severity axis at zero ROV
// deployment shows how classification quality and CTI decay as the
// campaign roster grows, and the ROV axis at full severity shows origin
// validation clawing that quality back until, at rov=1.0, every
// campaign is neutralized and the run is byte-identical to the honest
// baseline.
var hijackSweep = []struct{ severity, rov float64 }{
	{0, 0},
	{0.25, 0}, {0.5, 0}, {0.75, 0}, {1, 0},
	{1, 0.25}, {1, 0.5}, {1, 0.75}, {1, 1},
}

func renderHijacks(seed uint64, scale float64, hijackSeed uint64, baseline *stateowned.Result) string {
	// ctiChurn counts per-country CTI top-candidate slots the polluted run
	// disagrees with the honest baseline on — the propagation-layer damage
	// that precedes any classification change.
	ctiChurn := func(res *stateowned.Result) int {
		churn := 0
		for cc, base := range baseline.CTITop {
			got := res.CTITop[cc]
			for i, asn := range base {
				if i >= len(got) || got[i] != asn {
					churn++
				}
			}
		}
		for cc, got := range res.CTITop {
			if base := baseline.CTITop[cc]; len(got) > len(base) {
				churn += len(got) - len(base)
			}
		}
		return churn
	}
	t := report.NewTable("Classification and detection vs. hijack severity and ROV deployment",
		"severity", "rov", "precision", "recall", "cti-churn", "detections", "campaigns", "detected", "det-recall")
	for _, pt := range hijackSweep {
		res := baseline
		if pt.severity > 0 {
			fmt.Fprintf(os.Stderr, "running hijacked pipeline (severity=%.2f rov=%.2f)...\n", pt.severity, pt.rov)
			res = stateowned.Run(stateowned.Config{
				Seed: seed, Scale: scale,
				HijackSeverity: pt.severity, HijackSeed: hijackSeed, ROVFraction: pt.rov,
			})
		}
		s := analysis.ComputeScore(res.AnalysisData(), nil)
		plan := hijack.NewPlan(res.World, res.Topology, hijack.Config{
			Severity: pt.severity, Seed: hijackSeed, ROVFraction: pt.rov,
		})
		detected := plan.Detected(res.Hijacks)
		detRecall := "-"
		if n := len(plan.Campaigns); n > 0 {
			detRecall = fmt.Sprintf("%.2f", float64(detected)/float64(n))
		}
		t.AddRow(fmt.Sprintf("%.2f", pt.severity), fmt.Sprintf("%.2f", pt.rov),
			fmt.Sprintf("%.3f", s.Precision), fmt.Sprintf("%.3f", s.Recall),
			ctiChurn(res), len(res.Hijacks.Detections), len(plan.Campaigns), detected, detRecall)
	}
	return t.String()
}

func renderScores(d *analysis.Data) string {
	var b strings.Builder
	b.WriteString(analysis.RenderScore("Ground-truth score (whole world)", analysis.ComputeScore(d, nil)))
	b.WriteByte('\n')
	b.WriteString(analysis.RenderScore("LACNIC stratum (paper: expert found 0 FP / 0 FN on 35 ASNs)",
		analysis.ComputeScore(d, func(a *world.AS) bool {
			c, ok := ccodes.ByCode(a.Country)
			return ok && c.RIR == ccodes.LACNIC
		})))
	return b.String()
}
