// Command analyze runs the paper's §8 "first look" analysis — the global
// view, the Internet-access-market footprints and the transit-market
// view — against a pipeline run, optionally loading a previously exported
// dataset instead of re-running the classification.
//
// Usage:
//
//	analyze [-seed N] [-scale F] [-dataset dataset.json] [-country CC]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"stateowned"
	"stateowned/internal/analysis"
	"stateowned/internal/expand"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("analyze: ")
	seed := flag.Uint64("seed", 42, "world seed")
	scale := flag.Float64("scale", 1.0, "world scale")
	dataset := flag.String("dataset", "", "load this dataset JSON instead of the run's own")
	country := flag.String("country", "", "print one country's footprint detail")
	flag.Parse()

	res := stateowned.Run(stateowned.Config{Seed: *seed, Scale: *scale})
	d := res.AnalysisData()

	if *dataset != "" {
		f, err := os.Open(*dataset)
		if err != nil {
			log.Fatal(err)
		}
		ds, err := expand.Import(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		d.DS = ds
		fmt.Printf("loaded dataset: %d organizations, %d ASNs\n", len(ds.Organizations), len(ds.AllASNs()))
	}

	fmt.Println(analysis.RenderHeadline(analysis.ComputeHeadline(d)))
	fmt.Println(analysis.RenderTable2(analysis.ComputeTable2(d)))
	fmt.Println(analysis.RenderFigure4(analysis.ComputeFigure4(d)))
	fmt.Println(analysis.RenderTable5(analysis.ComputeTable5(d, 10)))

	fmt.Println("Fastest-growing state-owned customer cones (2010-2020):")
	for _, s := range analysis.FastestGrowingCones(d, 10) {
		fmt.Printf("  AS%-7d slope %6.1f/yr  cone %4d -> %4d\n",
			s.AS, s.Slope, s.Sizes[0], s.Sizes[len(s.Sizes)-1])
	}
	fmt.Println()

	if *country != "" {
		for _, f := range analysis.ComputeFigure1(d) {
			if f.CC == *country {
				fmt.Printf("%s: domestic=%.2f (addr %.2f / eyeballs %.2f), foreign=%.2f (addr %.2f / eyeballs %.2f)\n",
					f.CC, f.Domestic, f.DomesticAddr, f.DomesticEye, f.Foreign, f.ForeignAddr, f.ForeignEye)
			}
		}
	}
}
