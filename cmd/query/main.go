// Command query answers the questions a downstream user asks of the
// dataset: is this ASN state-owned, by whom, on what evidence; what
// does the state own in a given country; and the relational questions
// behind the /v1/graph/* plane — who neighbors an AS and in what role,
// which transits its observed paths depend on, what its customer cone
// contains, and the valley-free route between two ASes. It is a thin
// client of the serving index (internal/serve) and the compiled
// relationship graph (internal/graph) — the same structures cmd/serve
// exposes over HTTP — so answers come from O(result) lookups, not
// on-demand traversals.
//
// Usage:
//
//	query [-seed N] [-scale F] [-gen N] -asn 7473
//	query [-seed N] [-scale F] [-gen N] -country AO
//	query [-seed N] [-scale F] -shards 4 -asn 7473
//	query [-seed N] [-scale F] -neighbors 7473 [-class provider]
//	query [-seed N] [-scale F] -upstreams 7473
//	query [-seed N] [-scale F] -cone 7473
//	query [-seed N] [-scale F] -path 7473:3356
//	query [-seed N] [-scale F] -hijack 0.4 [-rov-fraction 0.25] -hijacks
//
// The query modes (-asn, -country, -neighbors, -upstreams, -cone,
// -path, -hijacks) are mutually exclusive — pick exactly one. The
// adversary knobs (-hijack, -hijack-seed, -rov-fraction) parameterize
// the world build like -seed does: -hijacks prints the detection
// report an honest origin-vs-ownership scan produces over the polluted
// paths (empty without -hijack, exactly as /v1/hijacks serves it). -gen N answers
// from dataset generation N — the world aged N steps under the seeded
// ownership-churn model, rebuilt through the full pipeline — matching
// what a cmd/serve instance with the same seeds serves for ?gen=N.
//
// -shards N is the fleet diagnostic: alongside the -asn answer it
// prints which shard of an N-shard fleet owns the ASN, computed from
// the same partition function a `serve -mode shard` fleet carves with.
// It only makes sense per-ASN, so combining it with any other mode is
// an error (graph answers are global; a country's ASes span shards).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"stateowned"
	"stateowned/internal/expand"
	"stateowned/internal/fleet"
	"stateowned/internal/graph"
	"stateowned/internal/hijack"
	"stateowned/internal/report"
	"stateowned/internal/serve"
	"stateowned/internal/snapshot"
	"stateowned/internal/world"
)

func main() {
	seed := flag.Uint64("seed", 42, "world seed")
	scale := flag.Float64("scale", 1.0, "world scale")
	asn := flag.Uint64("asn", 0, "look up one ASN")
	country := flag.String("country", "", "list a country's state-owned ASes")
	neighbors := flag.Uint64("neighbors", 0, "list an ASN's relationship-classed neighbors")
	class := flag.String("class", "", "restrict -neighbors to one class (provider, customer, peer or sibling)")
	upstreams := flag.Uint64("upstreams", 0, "rank the transits an ASN's observed paths depend on")
	cone := flag.Uint64("cone", 0, "print an ASN's transitive customer cone")
	pathPair := flag.String("path", "", "valley-free shortest path between two ASNs, as FROM:TO")
	hijacks := flag.Bool("hijacks", false, "print the generation's hijack detection report (/v1/hijacks)")
	hijackSev := flag.Float64("hijack", 0, "routing-adversary severity in [0,1] (0 = off)")
	hijackSeed := flag.Uint64("hijack-seed", 0, "campaign-roster seed (0 = derive from -seed)")
	rovFraction := flag.Float64("rov-fraction", 0, "route-origin-validation deployment fraction in [0,1]")
	gen := flag.Int("gen", 0, "dataset generation to answer from (0 = the pristine build)")
	shards := flag.Int("shards", 0, "fleet diagnostic: also print which shard of an N-shard fleet owns -asn (0 = off)")
	churnSeed := flag.Uint64("churn-seed", 0, "ownership-churn schedule seed (0 = derive from -seed)")
	flag.Parse()
	modes := 0
	for _, on := range []bool{*asn != 0, *country != "", *neighbors != 0, *upstreams != 0, *cone != 0, *pathPair != "", *hijacks} {
		if on {
			modes++
		}
	}
	switch {
	case *scale <= 0:
		fmt.Fprintln(os.Stderr, "query: invalid -scale: must be > 0")
		os.Exit(2)
	case *gen < 0:
		fmt.Fprintln(os.Stderr, "query: invalid -gen: must be >= 0")
		os.Exit(2)
	case *hijackSev < 0 || *hijackSev > 1:
		fmt.Fprintln(os.Stderr, "query: invalid -hijack: severity must be in [0,1]")
		os.Exit(2)
	case *rovFraction < 0 || *rovFraction > 1:
		fmt.Fprintln(os.Stderr, "query: invalid -rov-fraction: must be in [0,1]")
		os.Exit(2)
	case modes == 0:
		fmt.Fprintln(os.Stderr, "query: need one of -asn, -country, -neighbors, -upstreams, -cone, -path or -hijacks")
		os.Exit(2)
	case modes > 1:
		fmt.Fprintln(os.Stderr, "query: -asn, -country, -neighbors, -upstreams, -cone, -path and -hijacks are mutually exclusive; pick one query mode")
		os.Exit(2)
	case *class != "" && *neighbors == 0:
		fmt.Fprintln(os.Stderr, "query: -class only applies to -neighbors")
		os.Exit(2)
	case *shards < 0 || *shards > fleet.MaxShards:
		fmt.Fprintf(os.Stderr, "query: invalid -shards: must be in [0, %d]\n", fleet.MaxShards)
		os.Exit(2)
	case *shards > 0 && *asn == 0:
		fmt.Fprintln(os.Stderr, "query: -shards is a per-ASN diagnostic; use it with -asn")
		os.Exit(2)
	}
	cls := graph.Provider
	if *class != "" {
		var ok bool
		if cls, ok = graph.ParseClass(*class); !ok {
			fmt.Fprintf(os.Stderr, "query: unknown -class %q (want provider, customer, peer or sibling)\n", *class)
			os.Exit(2)
		}
	}
	var from, to world.ASN
	if *pathPair != "" {
		var ok bool
		if from, to, ok = parsePathPair(*pathPair); !ok {
			fmt.Fprintf(os.Stderr, "query: invalid -path %q: want FROM:TO ASNs\n", *pathPair)
			os.Exit(2)
		}
	}

	base := stateowned.Config{
		Seed: *seed, Scale: *scale,
		HijackSeverity: *hijackSev, HijackSeed: *hijackSeed, ROVFraction: *rovFraction,
	}
	var idx *serve.Index
	var ds *expand.Dataset
	var graphOf func() *graph.Graph
	var rep *hijack.Report
	if *gen == 0 && *churnSeed == 0 {
		res := stateowned.Run(base)
		idx, ds, graphOf, rep = res.Index(), res.Dataset, res.Graph, res.Hijacks
	} else {
		// A churned generation: the snapshot store rebuilds the world
		// through -gen seeded churn steps, exactly what a cmd/serve
		// instance with the same seeds answers for ?gen=N.
		store := snapshot.New(snapshot.Options{
			Base:      base,
			ChurnSeed: *churnSeed,
			Retain:    *gen + 1,
		})
		for store.Current().Gen < *gen {
			store.Advance()
		}
		g, st := store.Lookup(*gen)
		if st != serve.GenOK {
			fmt.Fprintf(os.Stderr, "query: generation %d unavailable\n", *gen)
			os.Exit(2)
		}
		idx, ds, graphOf, rep = g.Index, g.Result.Dataset, g.Result.Graph, g.Result.Hijacks
	}

	switch {
	case *asn != 0:
		queryASN(idx, world.ASN(*asn))
		if *shards > 0 {
			queryShard(ds, *shards, world.ASN(*asn))
		}
	case *country != "":
		queryCountry(idx, *country)
	case *neighbors != 0:
		queryNeighbors(graphOf(), world.ASN(*neighbors), *class != "", cls)
	case *upstreams != 0:
		queryUpstreams(graphOf(), world.ASN(*upstreams))
	case *cone != 0:
		queryCone(graphOf(), world.ASN(*cone))
	case *hijacks:
		queryHijacks(rep)
	default:
		queryPath(graphOf(), from, to)
	}
}

// queryHijacks prints the generation's origin-change detections — the
// same report /v1/hijacks serves, as a table.
func queryHijacks(rep *hijack.Report) {
	if rep == nil || len(rep.Detections) == 0 {
		mon := 0
		if rep != nil {
			mon = rep.Monitors
		}
		fmt.Printf("no origin changes detected (%d monitors)\n", mon)
		return
	}
	t := report.NewTable(fmt.Sprintf("Observed origin changes (%d monitors)", rep.Monitors),
		"victim ASN", "observed origin", "monitors", "victim cc", "observed cc", "state-owned", "cross-border")
	for _, d := range rep.Detections {
		so, xb := "", ""
		if d.VictimStateOwned {
			so = "yes"
		}
		if d.CrossBorder {
			xb = "yes"
		}
		t.AddRow(uint32(d.Victim), uint32(d.Observed), d.Monitors, d.VictimCountry, d.ObservedCountry, so, xb)
	}
	fmt.Println(t.String())
}

// parsePathPair splits a FROM:TO flag value into two ASNs.
func parsePathPair(s string) (from, to world.ASN, ok bool) {
	a, b, found := strings.Cut(s, ":")
	if !found {
		return 0, 0, false
	}
	fn, errA := strconv.ParseUint(a, 10, 32)
	tn, errB := strconv.ParseUint(b, 10, 32)
	if errA != nil || errB != nil || fn == 0 || tn == 0 {
		return 0, 0, false
	}
	return world.ASN(fn), world.ASN(tn), true
}

func queryASN(idx *serve.Index, target world.ASN) {
	org, minority, owned := idx.ASN(target)
	if owned {
		rec := org.Record
		fmt.Printf("AS%d is STATE-OWNED\n", target)
		fmt.Printf("  organization:  %s (%s)\n", rec.OrgName, rec.OrgID)
		fmt.Printf("  conglomerate:  %s\n", rec.ConglomerateName)
		fmt.Printf("  owner state:   %s (%s)\n", rec.OwnershipCC, rec.OwnershipCountryName)
		if rec.IsForeignSubsidiary() {
			fmt.Printf("  operates in:   %s (%s) — foreign subsidiary\n", rec.TargetCC, rec.TargetCountryName)
		}
		fmt.Printf("  confirmed by:  %s\n", rec.Source)
		fmt.Printf("  quote:         %q (%s)\n", rec.Quote, rec.QuoteLang)
		if rec.URL != "" {
			fmt.Printf("  url:           %s\n", rec.URL)
		}
		fmt.Printf("  input sources: %v\n", rec.Inputs)
		fmt.Printf("  sibling ASNs:  %v\n", org.ASNs)
		return
	}
	if len(minority) > 0 {
		for _, m := range minority {
			fmt.Printf("AS%d is MINORITY state-owned: %s holds %.1f%% of %s\n",
				target, m.Owner, m.Share*100, m.OrgName)
		}
		return
	}
	fmt.Printf("AS%d: no state ownership detected\n", target)
}

// queryShard prints the fleet-routing diagnostic: which shard of an
// n-shard fleet owns the ASN, under the partition a fleet with these
// seeds would carve.
func queryShard(ds *expand.Dataset, n int, target world.ASN) {
	part, err := fleet.ComputePartition(ds, n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "query: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("  fleet:         shard %d of %d owns AS%d (partition bounds %v)\n",
		part.ShardOf(target), n, target, part.Bounds)
}

func queryCountry(idx *serve.Index, cc string) {
	cc = serve.CanonicalCC(cc)
	orgs, minority := idx.Country(cc)

	t := report.NewTable("State-owned ASes operating in "+cc,
		"ASN", "organization", "owner", "foreign", "source")
	for _, o := range orgs {
		foreign := ""
		if o.Record.IsForeignSubsidiary() {
			foreign = "yes"
		}
		for _, a := range o.ASNs {
			t.AddRow(uint32(a), o.Record.OrgName, o.Record.OwnershipCC, foreign, o.Record.Source)
		}
	}
	if t.NumRows() == 0 && len(minority) == 0 {
		fmt.Printf("no state-owned ASes found operating in %s\n", cc)
		return
	}
	if t.NumRows() > 0 {
		fmt.Println(t.String())
	}
	if len(minority) > 0 {
		mt := report.NewTable("Minority state holdings in "+cc,
			"ASN", "organization", "owner", "share")
		for _, m := range minority {
			for _, a := range m.ASNs {
				mt.AddRow(uint32(a), m.OrgName, m.Owner, fmt.Sprintf("%.1f%%", m.Share*100))
			}
		}
		fmt.Println(mt.String())
	}
}

// notInTopology is the shared not-found answer of the graph modes.
func notInTopology(g *graph.Graph, target world.ASN) bool {
	if g.Active(target) {
		return false
	}
	fmt.Printf("AS%d is not in the topology\n", target)
	return true
}

func queryNeighbors(g *graph.Graph, target world.ASN, filtered bool, cls graph.Class) {
	if notInTopology(g, target) {
		return
	}
	if filtered {
		ns, _ := g.Neighbors(target, cls)
		fmt.Printf("AS%d has %d %s neighbors: %v\n", target, len(ns), cls, ns)
		return
	}
	fmt.Printf("AS%d neighbors:\n", target)
	for _, c := range graph.Classes() {
		ns, _ := g.Neighbors(target, c)
		fmt.Printf("  %-9s %4d  %v\n", c.String()+":", len(ns), ns)
	}
}

func queryUpstreams(g *graph.Graph, target world.ASN) {
	if notInTopology(g, target) {
		return
	}
	deps, _ := g.Upstreams(target)
	total := g.PathsObserved(target)
	if len(deps) == 0 {
		fmt.Printf("AS%d: no transit dependencies observed (%d monitor paths, %d monitors)\n",
			target, total, g.NumMonitors())
		return
	}
	t := report.NewTable(fmt.Sprintf("Transit dependencies of AS%d (%d paths from %d monitors)",
		target, total, g.NumMonitors()),
		"transit ASN", "paths", "score")
	for _, d := range deps {
		t.AddRow(uint32(d.Transit), d.Paths, fmt.Sprintf("%.3f", d.Score))
	}
	fmt.Println(t.String())
}

func queryCone(g *graph.Graph, target world.ASN) {
	if notInTopology(g, target) {
		return
	}
	members := g.Cone(target)
	fmt.Printf("AS%d customer cone: %d ASes\n", target, len(members))
	fmt.Printf("  %v\n", members)
}

func queryPath(g *graph.Graph, from, to world.ASN) {
	if notInTopology(g, from) || notInTopology(g, to) {
		return
	}
	p := g.Path(from, to)
	if p == nil {
		fmt.Printf("no valley-free path from AS%d to AS%d\n", from, to)
		return
	}
	hops := make([]string, len(p))
	for i, a := range p {
		hops[i] = fmt.Sprintf("AS%d", a)
	}
	fmt.Printf("valley-free path (%d hops): %s\n", len(p)-1, strings.Join(hops, " -> "))
}
