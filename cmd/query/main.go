// Command query answers the questions a downstream user asks of the
// dataset: is this ASN state-owned, by whom, on what evidence; and what
// does the state own in a given country. It is a thin client of the
// serving index (internal/serve) — the same lookup structures cmd/serve
// exposes over HTTP — so answers come from O(1) index lookups, not
// linear dataset scans.
//
// Usage:
//
//	query [-seed N] [-scale F] [-gen N] -asn 7473
//	query [-seed N] [-scale F] [-gen N] -country AO
//	query [-seed N] [-scale F] -shards 4 -asn 7473
//
// -asn and -country are mutually exclusive. -gen N answers from dataset
// generation N — the world aged N steps under the seeded ownership-churn
// model, rebuilt through the full pipeline — matching what a cmd/serve
// instance with the same seeds serves for ?gen=N.
//
// -shards N is the fleet diagnostic: alongside the -asn answer it
// prints which shard of an N-shard fleet owns the ASN, computed from
// the same partition function a `serve -mode shard` fleet carves with.
// It only makes sense per-ASN, so combining it with -country is an
// error (a country's ASes span shards; ask the router).
package main

import (
	"flag"
	"fmt"
	"os"

	"stateowned"
	"stateowned/internal/expand"
	"stateowned/internal/fleet"
	"stateowned/internal/report"
	"stateowned/internal/serve"
	"stateowned/internal/snapshot"
	"stateowned/internal/world"
)

func main() {
	seed := flag.Uint64("seed", 42, "world seed")
	scale := flag.Float64("scale", 1.0, "world scale")
	asn := flag.Uint64("asn", 0, "look up one ASN")
	country := flag.String("country", "", "list a country's state-owned ASes")
	gen := flag.Int("gen", 0, "dataset generation to answer from (0 = the pristine build)")
	shards := flag.Int("shards", 0, "fleet diagnostic: also print which shard of an N-shard fleet owns -asn (0 = off)")
	churnSeed := flag.Uint64("churn-seed", 0, "ownership-churn schedule seed (0 = derive from -seed)")
	flag.Parse()
	switch {
	case *scale <= 0:
		fmt.Fprintln(os.Stderr, "query: invalid -scale: must be > 0")
		os.Exit(2)
	case *gen < 0:
		fmt.Fprintln(os.Stderr, "query: invalid -gen: must be >= 0")
		os.Exit(2)
	case *asn == 0 && *country == "":
		fmt.Fprintln(os.Stderr, "query: need -asn or -country")
		os.Exit(2)
	case *asn != 0 && *country != "":
		fmt.Fprintln(os.Stderr, "query: -asn and -country are mutually exclusive")
		os.Exit(2)
	case *shards < 0 || *shards > fleet.MaxShards:
		fmt.Fprintf(os.Stderr, "query: invalid -shards: must be in [0, %d]\n", fleet.MaxShards)
		os.Exit(2)
	case *shards > 0 && *country != "":
		fmt.Fprintln(os.Stderr, "query: -shards is a per-ASN diagnostic; a country's ASes span shards")
		os.Exit(2)
	}

	var idx *serve.Index
	var ds *expand.Dataset
	if *gen == 0 && *churnSeed == 0 {
		res := stateowned.Run(stateowned.Config{Seed: *seed, Scale: *scale})
		idx, ds = res.Index(), res.Dataset
	} else {
		// A churned generation: the snapshot store rebuilds the world
		// through -gen seeded churn steps, exactly what a cmd/serve
		// instance with the same seeds answers for ?gen=N.
		store := snapshot.New(snapshot.Options{
			Base:      stateowned.Config{Seed: *seed, Scale: *scale},
			ChurnSeed: *churnSeed,
			Retain:    *gen + 1,
		})
		for store.Current().Gen < *gen {
			store.Advance()
		}
		g, st := store.Lookup(*gen)
		if st != serve.GenOK {
			fmt.Fprintf(os.Stderr, "query: generation %d unavailable\n", *gen)
			os.Exit(2)
		}
		idx, ds = g.Index, g.Result.Dataset
	}

	if *asn != 0 {
		queryASN(idx, world.ASN(*asn))
		if *shards > 0 {
			queryShard(ds, *shards, world.ASN(*asn))
		}
		return
	}
	queryCountry(idx, *country)
}

func queryASN(idx *serve.Index, target world.ASN) {
	org, minority, owned := idx.ASN(target)
	if owned {
		rec := org.Record
		fmt.Printf("AS%d is STATE-OWNED\n", target)
		fmt.Printf("  organization:  %s (%s)\n", rec.OrgName, rec.OrgID)
		fmt.Printf("  conglomerate:  %s\n", rec.ConglomerateName)
		fmt.Printf("  owner state:   %s (%s)\n", rec.OwnershipCC, rec.OwnershipCountryName)
		if rec.IsForeignSubsidiary() {
			fmt.Printf("  operates in:   %s (%s) — foreign subsidiary\n", rec.TargetCC, rec.TargetCountryName)
		}
		fmt.Printf("  confirmed by:  %s\n", rec.Source)
		fmt.Printf("  quote:         %q (%s)\n", rec.Quote, rec.QuoteLang)
		if rec.URL != "" {
			fmt.Printf("  url:           %s\n", rec.URL)
		}
		fmt.Printf("  input sources: %v\n", rec.Inputs)
		fmt.Printf("  sibling ASNs:  %v\n", org.ASNs)
		return
	}
	if len(minority) > 0 {
		for _, m := range minority {
			fmt.Printf("AS%d is MINORITY state-owned: %s holds %.1f%% of %s\n",
				target, m.Owner, m.Share*100, m.OrgName)
		}
		return
	}
	fmt.Printf("AS%d: no state ownership detected\n", target)
}

// queryShard prints the fleet-routing diagnostic: which shard of an
// n-shard fleet owns the ASN, under the partition a fleet with these
// seeds would carve.
func queryShard(ds *expand.Dataset, n int, target world.ASN) {
	part, err := fleet.ComputePartition(ds, n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "query: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("  fleet:         shard %d of %d owns AS%d (partition bounds %v)\n",
		part.ShardOf(target), n, target, part.Bounds)
}

func queryCountry(idx *serve.Index, cc string) {
	cc = serve.CanonicalCC(cc)
	orgs, minority := idx.Country(cc)

	t := report.NewTable("State-owned ASes operating in "+cc,
		"ASN", "organization", "owner", "foreign", "source")
	for _, o := range orgs {
		foreign := ""
		if o.Record.IsForeignSubsidiary() {
			foreign = "yes"
		}
		for _, a := range o.ASNs {
			t.AddRow(uint32(a), o.Record.OrgName, o.Record.OwnershipCC, foreign, o.Record.Source)
		}
	}
	if t.NumRows() == 0 && len(minority) == 0 {
		fmt.Printf("no state-owned ASes found operating in %s\n", cc)
		return
	}
	if t.NumRows() > 0 {
		fmt.Println(t.String())
	}
	if len(minority) > 0 {
		mt := report.NewTable("Minority state holdings in "+cc,
			"ASN", "organization", "owner", "share")
		for _, m := range minority {
			for _, a := range m.ASNs {
				mt.AddRow(uint32(a), m.OrgName, m.Owner, fmt.Sprintf("%.1f%%", m.Share*100))
			}
		}
		fmt.Println(mt.String())
	}
}
