// Command query answers the questions a downstream user asks of the
// dataset: is this ASN state-owned, by whom, on what evidence; and what
// does the state own in a given country.
//
// Usage:
//
//	query [-seed N] [-scale F] -asn 7473
//	query [-seed N] [-scale F] -country AO
package main

import (
	"flag"
	"fmt"
	"os"

	"stateowned"
	"stateowned/internal/report"
	"stateowned/internal/world"
)

func main() {
	seed := flag.Uint64("seed", 42, "world seed")
	scale := flag.Float64("scale", 1.0, "world scale")
	asn := flag.Uint64("asn", 0, "look up one ASN")
	country := flag.String("country", "", "list a country's state-owned ASes")
	flag.Parse()
	if *asn == 0 && *country == "" {
		fmt.Fprintln(os.Stderr, "query: need -asn or -country")
		os.Exit(2)
	}

	res := stateowned.Run(stateowned.Config{Seed: *seed, Scale: *scale})
	ds := res.Dataset

	if *asn != 0 {
		target := world.ASN(*asn)
		for i := range ds.Organizations {
			for _, a := range ds.ASNs[i].ASNs {
				if a != target {
					continue
				}
				org := &ds.Organizations[i]
				fmt.Printf("AS%d is STATE-OWNED\n", target)
				fmt.Printf("  organization:  %s (%s)\n", org.OrgName, org.OrgID)
				fmt.Printf("  conglomerate:  %s\n", org.ConglomerateName)
				fmt.Printf("  owner state:   %s (%s)\n", org.OwnershipCC, org.OwnershipCountryName)
				if org.IsForeignSubsidiary() {
					fmt.Printf("  operates in:   %s (%s) — foreign subsidiary\n", org.TargetCC, org.TargetCountryName)
				}
				fmt.Printf("  confirmed by:  %s\n", org.Source)
				fmt.Printf("  quote:         %q (%s)\n", org.Quote, org.QuoteLang)
				if org.URL != "" {
					fmt.Printf("  url:           %s\n", org.URL)
				}
				fmt.Printf("  input sources: %v\n", org.Inputs)
				fmt.Printf("  sibling ASNs:  %v\n", ds.ASNs[i].ASNs)
				return
			}
		}
		for _, m := range ds.Minority {
			for _, a := range m.ASNs {
				if a == world.ASN(*asn) {
					fmt.Printf("AS%d is MINORITY state-owned: %s holds %.1f%% of %s\n",
						*asn, m.Owner, m.Share*100, m.OrgName)
					return
				}
			}
		}
		fmt.Printf("AS%d: no state ownership detected\n", *asn)
		return
	}

	t := report.NewTable("State-owned ASes operating in "+*country,
		"ASN", "organization", "owner", "foreign", "source")
	for i := range ds.Organizations {
		org := &ds.Organizations[i]
		if org.OperatingCountry() != *country {
			continue
		}
		foreign := ""
		if org.IsForeignSubsidiary() {
			foreign = "yes"
		}
		for _, a := range ds.ASNs[i].ASNs {
			t.AddRow(uint32(a), org.OrgName, org.OwnershipCC, foreign, org.Source)
		}
	}
	if t.NumRows() == 0 {
		fmt.Printf("no state-owned ASes found operating in %s\n", *country)
		return
	}
	fmt.Println(t.String())
}
