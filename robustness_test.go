package stateowned

import (
	"testing"

	"stateowned/internal/analysis"
)

// TestSeedRobustness verifies that the reproduction's headline properties
// are not artifacts of one lucky seed: across several seeds the pipeline
// must stay at (near-)perfect precision, recall in a plausible band, and
// the headline categories populated.
func TestSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed pipeline runs")
	}
	for _, seed := range []uint64{1, 9, 77} {
		res := Run(Config{Seed: seed, Scale: 0.08})
		d := res.AnalysisData()
		s := analysis.ComputeScore(d, nil)
		if s.Precision < 0.97 {
			t.Errorf("seed %d: precision %.3f below 0.97 (fp=%d)", seed, s.Precision, s.FP)
		}
		if s.Recall < 0.55 || s.Recall > 0.97 {
			t.Errorf("seed %d: recall %.3f outside plausible band", seed, s.Recall)
		}
		h := analysis.ComputeHeadline(d)
		if h.SubOwners < 12 || h.SubOwners > 19 {
			t.Errorf("seed %d: subsidiary-owner countries = %d, want near 19", seed, h.SubOwners)
		}
		if h.OwnerCountries < 80 {
			t.Errorf("seed %d: owner countries = %d", seed, h.OwnerCountries)
		}
		if h.AddrShareExUS <= h.AddrShare {
			t.Errorf("seed %d: US-exclusion effect inverted", seed)
		}
		t.Logf("seed %d: precision=%.3f recall=%.3f ASes=%d countries=%d",
			seed, s.Precision, s.Recall, h.StateASes, h.OwnerCountries)
	}

	// One chaos seed rides along: a moderate fault plan must cost recall,
	// never precision — the same floor the pristine seeds are held to is
	// only slightly relaxed (quarantine can eat a confirming document).
	chaos := Run(Config{Seed: 9, Scale: 0.08, ChaosSeverity: 0.3})
	cs := analysis.ComputeScore(chaos.AnalysisData(), nil)
	if cs.Precision < 0.95 {
		t.Errorf("chaos seed 9: precision %.3f below 0.95 floor (fp=%d)", cs.Precision, cs.FP)
	}
	if cs.Recall < 0.30 {
		t.Errorf("chaos seed 9: recall %.3f collapsed entirely", cs.Recall)
	}
	if len(chaos.Health.DegradedSources()) < 2 {
		t.Errorf("chaos seed 9: only %d degraded sources", len(chaos.Health.DegradedSources()))
	}
	t.Logf("chaos seed 9 (severity 0.3): precision=%.3f recall=%.3f degraded=%v quarantined=%d",
		cs.Precision, cs.Recall, chaos.Health.DegradedSources(), chaos.Health.Quarantined())
}

// TestGeoOriginConsistency cross-checks two substrate views of the same
// facts: the BGP origin table and the geolocation database must account
// for exactly the same address space.
func TestGeoOriginConsistency(t *testing.T) {
	var originTotal, geoTotal uint64
	for _, asn := range testRes.World.ASNList {
		originTotal += testRes.World.ASes[asn].NumAddresses()
	}
	for _, cc := range testRes.World.Countries {
		geoTotal += testRes.Geo.TotalIn(cc)
	}
	if originTotal != geoTotal {
		t.Fatalf("origin table holds %d addresses, geolocation DB %d", originTotal, geoTotal)
	}
}
