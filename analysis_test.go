package stateowned

import (
	"strings"
	"testing"

	"stateowned/internal/analysis"
	"stateowned/internal/candidates"
	"stateowned/internal/ccodes"
	"stateowned/internal/world"
)

// The analysis tests reuse testRes (pipeline_test.go) via AnalysisData.
func testData() *analysis.Data { return testRes.AnalysisData() }

func TestHeadlineShape(t *testing.T) {
	h := analysis.ComputeHeadline(testData())
	if h.StateASes == 0 || h.Companies == 0 || h.OwnerCountries == 0 {
		t.Fatalf("degenerate headline: %+v", h)
	}
	if h.SubsidiaryASes == 0 || h.SubCompanies == 0 {
		t.Errorf("no subsidiaries in headline: %+v", h)
	}
	if h.AddrShareExUS <= h.AddrShare {
		t.Errorf("US exclusion must raise the share: %.3f -> %.3f", h.AddrShare, h.AddrShareExUS)
	}
	if out := analysis.RenderHeadline(h); !strings.Contains(out, "989") {
		t.Error("rendered headline misses paper reference values")
	}
}

func TestFigure1Invariants(t *testing.T) {
	rows := analysis.ComputeFigure1(testData())
	if len(rows) == 0 {
		t.Fatal("no footprint rows")
	}
	byCC := map[string]analysis.CountryFootprint{}
	for _, f := range rows {
		if f.Domestic < 0 || f.Domestic > 1 || f.Foreign < 0 || f.Foreign > 1 {
			t.Fatalf("footprint out of range: %+v", f)
		}
		byCC[f.CC] = f
	}
	// Table 8 anchors must show near-total domestic footprints.
	for _, cc := range []string{"ET", "CU", "SY"} {
		if f := byCC[cc]; f.Domestic < 0.8 {
			t.Errorf("%s domestic footprint %.2f, want >= 0.8", cc, f.Domestic)
		}
	}
	// The African foreign-subsidiary story: several AFRINIC countries
	// must show substantial foreign footprints.
	nForeign := 0
	for _, f := range rows {
		c := ccodes.MustByCode(f.CC)
		if c.RIR == ccodes.AFRINIC && f.Foreign > 0.05 {
			nForeign++
		}
	}
	if nForeign < 5 {
		t.Errorf("only %d African countries with >5%% foreign footprint (paper: 12)", nForeign)
	}
}

func TestVennFigures(t *testing.T) {
	f3 := analysis.ComputeFigure3(testData())
	if len(f3) < 3 {
		t.Fatalf("figure 3 regions = %d", len(f3))
	}
	full := 0
	for _, r := range f3 {
		if len(r.Members) == 3 {
			full = r.Count
		}
	}
	if full == 0 {
		t.Error("no ASes shared by all three source categories (paper: 193)")
	}
	f7 := analysis.ComputeFigure7(testData())
	if len(f7) < 5 {
		t.Errorf("figure 7 regions = %d", len(f7))
	}
	// Each single-source exclusive region the paper reports as nonzero
	// must exist: Orbis-only (paper 121), WikiFH-only (paper 108) and
	// CTI-only (paper 9, Table 7).
	single := map[string]int{}
	for _, r := range f7 {
		if len(r.Members) == 1 {
			single[r.Members[0]] += r.Count
		}
	}
	for _, src := range []string{"O", "W", "C"} {
		if single[src] == 0 {
			t.Errorf("no %s-only ASes; the paper's unique-contribution finding is absent", src)
		}
	}
	out := analysis.RenderVennRegions("t", []string{"Technical", "Wikipedia+FH", "Orbis"}, f3)
	if !strings.Contains(out, "111") {
		t.Errorf("venn rendering missing full region:\n%s", out)
	}
}

func TestFigure4(t *testing.T) {
	r := analysis.ComputeFigure4(testData())
	var totalAddr int
	for _, b := range r.Addr {
		totalAddr += b.Total
	}
	if totalAddr != len(testRes.World.Countries) {
		t.Errorf("figure 4a buckets cover %d of %d countries", totalAddr, len(testRes.World.Countries))
	}
	if r.AddrOverHalf == 0 || r.Over90Combined == 0 {
		t.Errorf("threshold stats degenerate: %+v", r)
	}
	if r.Over90Combined > r.AddrOverHalf+r.EyeOverHalf {
		t.Error("over-0.9 exceeds over-0.5 counts")
	}
}

func TestFigure5AndConeGrowth(t *testing.T) {
	d := testData()
	series := analysis.ComputeFigure5(d)
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if s.Slope <= 0 {
			t.Errorf("AS%d slope %.2f, want growth", s.AS, s.Slope)
		}
		if s.Sizes[len(s.Sizes)-1] <= s.Sizes[0] {
			t.Errorf("AS%d cone did not grow across the decade", s.AS)
		}
	}
	fastest := analysis.FastestGrowingCones(d, 10)
	if len(fastest) == 0 {
		t.Fatal("no fastest-growing cones")
	}
	// The two submarine-cable anchors must rank among the fastest (the
	// paper's §8 finding).
	found := 0
	for _, s := range fastest {
		if s.AS == 37468 || s.AS == 132602 {
			found++
		}
	}
	if found == 0 {
		t.Error("neither Angola Cables nor BSCCL in the top-10 fastest-growing cones")
	}
}

func TestFigure6Categories(t *testing.T) {
	cats := analysis.ComputeFigure6(testData())
	counts := map[analysis.OwnershipCategory]int{}
	for _, c := range cats {
		counts[c]++
	}
	if counts[analysis.Majority] == 0 || counts[analysis.MinorityOnly] == 0 {
		t.Errorf("figure 6 categories degenerate: %v", counts)
	}
	if cats["DE"] != analysis.MinorityOnly {
		t.Errorf("Germany should be minority-only, got %v", cats["DE"])
	}
	if cats["NO"] != analysis.Majority {
		t.Errorf("Norway should be majority, got %v", cats["NO"])
	}
}

func TestTable1(t *testing.T) {
	rows := analysis.ComputeTable1(testData())
	if len(rows) < 4 {
		t.Fatalf("only %d confirmation sources used", len(rows))
	}
	// Company websites must dominate (paper: ~50%).
	if rows[0].Source != "Company's website" {
		t.Errorf("top source = %s, want Company's website", rows[0].Source)
	}
	total := 0
	for _, r := range rows {
		total += r.Companies
	}
	if total != len(testRes.Dataset.Organizations) {
		t.Errorf("table 1 totals %d != %d organizations", total, len(testRes.Dataset.Organizations))
	}
}

func TestTable2And3(t *testing.T) {
	t2 := analysis.ComputeTable2(testData())
	if t2.TotalCountries < t2.MajorityOwners {
		t.Errorf("total < majority: %+v", t2)
	}
	rows := analysis.ComputeTable3(testData())
	if len(rows) < 8 {
		t.Errorf("only %d subsidiary-owner countries (paper: 19)", len(rows))
	}
	// Paper's top owners must appear.
	owners := map[string]int{}
	for _, r := range rows {
		owners[r.Owner] = len(r.Hosts)
	}
	for _, cc := range []string{"AE", "QA", "NO", "VN", "SG"} {
		if owners[cc] == 0 {
			t.Errorf("owner %s missing from Table 3", cc)
		}
	}
	if owners["AE"] < 5 {
		t.Errorf("UAE hosts = %d, want the largest footprint (paper: 12)", owners["AE"])
	}
}

func TestTable4(t *testing.T) {
	rows, total := analysis.ComputeTable4(testData())
	if len(rows) != 5 {
		t.Fatalf("table 4 rows = %d", len(rows))
	}
	sum := 0
	for _, r := range rows {
		sum += r.Companies
		if r.PctCountries < 0 || r.PctCountries > 100 {
			t.Errorf("%v: pct %d", r.RIR, r.PctCountries)
		}
	}
	if sum != total.Companies {
		t.Errorf("per-RIR companies %d != total %d", sum, total.Companies)
	}
	// ARIN must be the outlier with (almost) no state ownership.
	for _, r := range rows {
		if r.RIR == ccodes.ARIN && r.PctCountries > 20 {
			t.Errorf("ARIN pct = %d, should be the outlier (paper: 7)", r.PctCountries)
		}
	}
}

func TestTable5Ranking(t *testing.T) {
	rows := analysis.ComputeTable5(testData(), 10)
	if len(rows) != 10 {
		t.Fatalf("table 5 rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].ConeSize > rows[i-1].ConeSize {
			t.Fatal("table 5 not sorted")
		}
	}
	if rows[0].AS != 7473 {
		t.Errorf("largest cone = AS%d, want 7473 (SingTel)", rows[0].AS)
	}
	top := map[world.ASN]bool{}
	for _, r := range rows {
		top[r.AS] = true
	}
	// Most of the paper's Table 5 anchors must surface; individual ones
	// can drop out of a small-scale world when the confirmation stage
	// misses them (legitimate recall noise).
	found := 0
	for _, want := range []world.ASN{12389, 20485, 37468, 262589, 4809, 3303, 20804, 10099, 132602} {
		if top[want] {
			found++
		}
	}
	if found < 5 {
		t.Errorf("only %d of 9 paper anchors in the top-10 cones", found)
	}
}

func TestTable6And7(t *testing.T) {
	rows, total := analysis.ComputeTable6(testData())
	if len(rows) != 5 {
		t.Fatalf("table 6 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Source == candidates.SrcCTI {
			if r.StateASes == 0 {
				t.Error("CTI contributed nothing")
			}
			if r.StateASes > total.StateASes/4 {
				t.Errorf("CTI contribution %d implausibly large", r.StateASes)
			}
		} else if r.StateASes < total.StateASes/10 {
			t.Errorf("%v contribution %d implausibly small", r.Source, r.StateASes)
		}
	}
	t7 := analysis.ComputeTable7(testData())
	if len(t7) == 0 {
		t.Error("no CTI-only ASes (paper: 9)")
	}
}

func TestTable8(t *testing.T) {
	rows := analysis.ComputeTable8(testData(), 0.9)
	if len(rows) < 5 {
		t.Errorf("only %d countries over 0.9 (paper: 18)", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.CC] = true
	}
	for _, cc := range []string{"ET", "CU"} {
		if !seen[cc] {
			t.Errorf("%s missing from Table 8", cc)
		}
	}
	// Threshold sanity: lowering it can only grow the list.
	if len(analysis.ComputeTable8(testData(), 0.5)) < len(rows) {
		t.Error("table 8 not monotone in threshold")
	}
}

func TestRIRShares(t *testing.T) {
	rows := analysis.ComputeRIRShares(testData())
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byRIR := map[ccodes.RIR]analysis.RIRShare{}
	for _, r := range rows {
		if r.Domestic < 0 || r.Domestic > 1 || r.Foreign < 0 || r.Foreign > 1 {
			t.Fatalf("share out of range: %+v", r)
		}
		byRIR[r.RIR] = r
	}
	// §8: AFRINIC's per-country state fraction is the largest of all
	// regions, and AFRINIC hosts the largest foreign presence. Across
	// seeds Africa and Asia trade the top domestic spot (the paper's
	// Figure 1 colors both deep blue), so assert AFRINIC is top-2 on
	// domestic and strictly first on foreign.
	af := byRIR[ccodes.AFRINIC]
	domAbove := 0
	for _, rir := range []ccodes.RIR{ccodes.APNIC, ccodes.RIPE, ccodes.ARIN, ccodes.LACNIC} {
		if byRIR[rir].MedianDomestic > af.MedianDomestic {
			domAbove++
		}
		if byRIR[rir].MedianForeign > af.MedianForeign {
			t.Errorf("%v median foreign %.3f exceeds AFRINIC's %.3f",
				rir, byRIR[rir].MedianForeign, af.MedianForeign)
		}
	}
	if domAbove > 1 {
		t.Errorf("AFRINIC median domestic %.3f ranks below %d regions", af.MedianDomestic, domAbove+1)
	}
	if af.MedianDomestic < 0.15 {
		t.Errorf("AFRINIC median domestic %.3f implausibly low", af.MedianDomestic)
	}
	// ARIN is near-zero on every axis.
	if byRIR[ccodes.ARIN].Domestic > 0.05 {
		t.Errorf("ARIN domestic share %.3f too high", byRIR[ccodes.ARIN].Domestic)
	}
}

func TestAppendixE(t *testing.T) {
	rows := analysis.ComputeAppendixE(testData())
	if len(rows) < 4 {
		t.Fatalf("only %d exclusion categories", len(rows))
	}
	total := 0
	cats := map[string]bool{}
	for _, r := range rows {
		total += r.Count
		if r.Verdict == "out-of-scope" {
			cats[r.Reason] = true
		}
	}
	if total != len(testRes.Confirmation.Excluded) {
		t.Errorf("breakdown totals %d != %d exclusions", total, len(testRes.Confirmation.Excluded))
	}
	// The paper's Appendix E categories must all appear.
	for _, want := range []string{"academic network", "government bureaucratic network",
		"subnational operator", "not an Internet operator"} {
		if !cats[want] {
			t.Errorf("category %q missing from Appendix E", want)
		}
	}
	if out := analysis.RenderAppendixE(rows); len(out) < 80 {
		t.Error("Appendix E rendering too small")
	}
}

func TestOrbisAudit(t *testing.T) {
	a := analysis.ComputeOrbisAudit(testData(), testRes.Orbis)
	if a.FalseNegatives == 0 || a.FalsePositives == 0 {
		t.Errorf("audit degenerate: %+v", a)
	}
	if a.FalseNegatives < a.FalsePositives {
		t.Errorf("FN (%d) should dominate FP (%d), as in the paper (140 vs 12)", a.FalseNegatives, a.FalsePositives)
	}
}

func TestScoreStrata(t *testing.T) {
	d := testData()
	all := analysis.ComputeScore(d, nil)
	if all.Precision < 0.95 {
		t.Errorf("overall precision %.3f", all.Precision)
	}
	// The LACNIC stratum mirrors the paper's expert validation: zero
	// false positives there.
	lacnic := analysis.ComputeScore(d, func(a *world.AS) bool {
		c, ok := ccodes.ByCode(a.Country)
		return ok && c.RIR == ccodes.LACNIC
	})
	if lacnic.FP != 0 {
		t.Errorf("LACNIC false positives = %d (paper's expert found 0)", lacnic.FP)
	}
	if lacnic.TP == 0 {
		t.Error("no LACNIC state-owned ASes found at all")
	}
}

func TestCSVEmitters(t *testing.T) {
	d := testData()
	var buf strings.Builder
	if err := analysis.WriteFigure1CSV(&buf, analysis.ComputeFigure1(d)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != len(testRes.World.Countries)+1 {
		t.Errorf("figure1.csv has %d lines, want %d", lines, len(testRes.World.Countries)+1)
	}
	if !strings.HasPrefix(buf.String(), "cc,region,rir,") {
		t.Error("figure1.csv header wrong")
	}
	buf.Reset()
	if err := analysis.WriteFigure4CSV(&buf, analysis.ComputeFigure4(d)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "eyeballs,") || !strings.Contains(buf.String(), "addresses,") {
		t.Error("figure4.csv missing panels")
	}
	buf.Reset()
	if err := analysis.WriteFigure5CSV(&buf, analysis.ComputeFigure5(d)); err != nil {
		t.Fatal(err)
	}
	// Two ASes x 11 years + header.
	if lines := strings.Count(buf.String(), "\n"); lines != 23 {
		t.Errorf("figure5.csv has %d lines, want 23", lines)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	d := testData()
	outputs := []string{
		analysis.RenderFigure1(analysis.ComputeFigure1(d)),
		analysis.RenderFigure4(analysis.ComputeFigure4(d)),
		analysis.RenderFigure5(analysis.ComputeFigure5(d)),
		analysis.RenderFigure6(analysis.ComputeFigure6(d)),
		analysis.RenderTable1(analysis.ComputeTable1(d)),
		analysis.RenderTable2(analysis.ComputeTable2(d)),
		analysis.RenderTable3(analysis.ComputeTable3(d)),
		analysis.RenderTable5(analysis.ComputeTable5(d, 10)),
		analysis.RenderTable7(analysis.ComputeTable7(d)),
		analysis.RenderTable8(analysis.ComputeTable8(d, 0.9)),
		analysis.RenderOrbisAudit(analysis.ComputeOrbisAudit(d, testRes.Orbis)),
		analysis.RenderScore("score", analysis.ComputeScore(d, nil)),
	}
	r4, t4 := analysis.ComputeTable4(d)
	outputs = append(outputs, analysis.RenderTable4(r4, t4))
	r6, t6 := analysis.ComputeTable6(d)
	outputs = append(outputs, analysis.RenderTable6(r6, t6))
	for i, out := range outputs {
		if len(out) < 40 {
			t.Errorf("renderer %d produced near-empty output: %q", i, out)
		}
	}
}
