package stateowned

import (
	"strings"
	"testing"

	"stateowned/internal/runner"
)

// These tests prove the scheduler's panic guard: a build that panics
// inside a pool goroutine must not kill the run (a bare goroutine panic
// would crash the whole process — the guard has to live inside the node
// wrapper, not around the scheduler call). The panicking node degrades
// like any other failed source and the pipeline completes on what's
// left.

// withBuildHook installs a test build hook and removes it when the test
// ends. The hook mechanism is process-global, so these tests cannot run
// in parallel with other pipeline runs.
func withBuildHook(t *testing.T, hook func(node string)) {
	t.Helper()
	if buildHook != nil {
		t.Fatal("buildHook already installed")
	}
	buildHook = hook
	t.Cleanup(func() { buildHook = nil })
}

func sourceRow(t *testing.T, h *runner.Health, name string) *runner.SourceHealth {
	t.Helper()
	for _, sh := range h.Sources() {
		if sh.Name == name {
			return sh
		}
	}
	t.Fatalf("no health row for source %q", name)
	return nil
}

func TestPanickingSourceBuildContained(t *testing.T) {
	withBuildHook(t, func(node string) {
		if node == "eyeballs" {
			panic("injected eyeballs failure")
		}
	})

	// Workers=4 puts the panicking node on a pool goroutine — the case a
	// caller-side recover would miss.
	res := Run(Config{Seed: 7, Scale: 0.08, Workers: 4})

	if res.Dataset == nil || res.Candidates == nil {
		t.Fatal("pipeline did not complete after a source panic")
	}
	row := sourceRow(t, res.Health, "eyeballs")
	if row.Status != runner.Unavailable {
		t.Errorf("eyeballs status = %v, want unavailable", row.Status)
	}
	if !strings.Contains(row.LastError, "panicked") {
		t.Errorf("eyeballs LastError = %q, want a panic note", row.LastError)
	}
	// The degraded run must match the eyeballs ablation's shape: other
	// sources healthy, candidates produced without the E source.
	for _, name := range []string{"geo", "whois", "peeringdb"} {
		if row := sourceRow(t, res.Health, name); row.Status != runner.Healthy {
			t.Errorf("%s status = %v, want healthy", name, row.Status)
		}
	}
}

func TestPanickingStageContained(t *testing.T) {
	withBuildHook(t, func(node string) {
		if node == "stage2" {
			panic("injected confirmation failure")
		}
	})

	res := Run(Config{Seed: 7, Scale: 0.08, Workers: 4})

	if res.Confirmation == nil {
		t.Fatal("stage2 fallback missing: Confirmation is nil")
	}
	if len(res.Confirmation.Confirmed) != 0 {
		t.Errorf("panicked stage2 produced %d confirmations, want the empty fallback",
			len(res.Confirmation.Confirmed))
	}
	if res.Dataset == nil {
		t.Fatal("stage3 did not run on the empty fallback")
	}
	var noted bool
	for _, st := range res.Health.Stages {
		if st.Name == "stage2" && st.Degraded && strings.Contains(st.Note, "panicked") {
			noted = true
		}
	}
	if !noted {
		t.Errorf("no degraded stage2 note in %+v", res.Health.Stages)
	}
}

// TestPanicNoteDeterministic pins that the panic degradation pathway is
// itself schedule-independent: the same injected panic produces the same
// health report serial and parallel.
func TestPanicNoteDeterministic(t *testing.T) {
	withBuildHook(t, func(node string) {
		if node == "orbis" {
			panic("injected orbis failure")
		}
	})
	run := func(workers int) string {
		return Run(Config{Seed: 7, Scale: 0.08, Workers: workers}).Health.Render()
	}
	serial := run(1)
	parallel := run(8)
	if serial != parallel {
		t.Errorf("panic degradation differs by schedule:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}
