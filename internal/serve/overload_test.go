package serve

import (
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stateowned/internal/churn"
)

// gateSource wraps a Source and wedges the first `tickets` view
// resolutions on a gate channel, simulating stalled handlers: a
// wedged request parks on the gate — holding its admission slot and
// burning its deadline budget — until the test closes the gate.
// Resolutions beyond the ticket budget pass through untouched, so the
// operational endpoints (which also resolve Current for their
// generation stamp) keep answering once the intended victims are
// parked. Shed requests never reach the gate at all: the handler
// never runs.
type gateSource struct {
	inner   Source
	gate    chan struct{}
	tickets atomic.Int32
	// blocked counts goroutines currently parked on the gate.
	blocked atomic.Int32
}

func newGateSource(inner Source, tickets int32) *gateSource {
	g := &gateSource{inner: inner, gate: make(chan struct{})}
	g.tickets.Store(tickets)
	return g
}

func (g *gateSource) Current() *View {
	if g.tickets.Add(-1) >= 0 {
		g.blocked.Add(1)
		<-g.gate
		g.blocked.Add(-1)
	}
	return g.inner.Current()
}

func (g *gateSource) Generation(n int) (*View, GenStatus) { return g.inner.Generation(n) }

func (g *gateSource) Diff(from, to *View) (*churn.Audit, bool) { return g.inner.Diff(from, to) }

func (g *gateSource) ReloadStatus() ReloadStatus { return g.inner.ReloadStatus() }

// waitBlocked parks until exactly n requests are wedged on the gate.
func (g *gateSource) waitBlocked(t *testing.T, n int32) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for g.blocked.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d requests reached the gate, want %d", g.blocked.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDeadlineAnswers504 proves the per-request budget: a wedged
// handler's request is answered 504 as soon as the deadline timer
// fires, the late handler's eventual return is discarded without
// racing the written response, and its admission slot is freed only
// when the work truly ends.
func TestDeadlineAnswers504(t *testing.T) {
	src := newGateSource(&staticSource{view: View{Index: BuildIndex(fixtureDataset())}}, 1)
	s := NewDynamic(src, Options{
		Clock:          testClock(1),
		Admission:      &AdmissionConfig{MaxInFlight: 1, MaxQueue: -1},
		RequestTimeout: time.Second, // virtual: the injected timer decides
		After:          instantFire,
	})

	w := do(t, s, "/v1/asn/100")
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("wedged request = %d, want 504", w.Code)
	}
	// The handler goroutine is still wedged: the 504 was written while
	// the work was abandoned, and the slot is still held.
	src.waitBlocked(t, 1)
	if st := s.AdmissionStats(); st.Admitted != 1 {
		t.Fatalf("admission stats = %+v", st)
	}
	close(src.gate)
	// Once the gate opens the abandoned handler finishes and releases
	// its slot; acquiring it again must eventually succeed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rel, v := s.limiter.Acquire(nil)
		if v == Admitted {
			rel()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never released after the abandoned handler finished")
		}
		time.Sleep(time.Millisecond)
	}
	snap := s.Metrics().Snapshot()
	if snap.DeadlineExceededTotal != 1 {
		t.Fatalf("deadline_exceeded_total = %d", snap.DeadlineExceededTotal)
	}
}

// TestExpensiveEndpointsGetHalfBudget checks the budget table: /v1/diff
// and /v1/search run at half the configured request timeout, the
// operational plane has no budget at all.
func TestExpensiveEndpointsGetHalfBudget(t *testing.T) {
	s := NewDynamic(&staticSource{view: View{Index: BuildIndex(fixtureDataset())}}, Options{
		Clock:          testClock(1),
		RequestTimeout: 2 * time.Second,
	})
	for _, e := range []string{"/v1/asn", "/v1/country", "/v1/org", "/v1/dataset", "other"} {
		if got := s.budgets[e]; got != 2*time.Second {
			t.Errorf("budget[%s] = %v, want 2s", e, got)
		}
	}
	for _, e := range []string{"/v1/search", "/v1/diff"} {
		if got := s.budgets[e]; got != time.Second {
			t.Errorf("budget[%s] = %v, want 1s (half)", e, got)
		}
	}
	for _, e := range []string{"/healthz", "/readyz", "/metrics"} {
		if got := s.budgets[e]; got != 0 {
			t.Errorf("budget[%s] = %v, want none (operational plane)", e, got)
		}
	}
}

// TestPanicIsolation serves a broken view (nil Index, dereferenced by
// every handler) and proves the spine converts the panic to a 500 with
// a panics_total tick while the process — and subsequent requests on
// the same server — keep working.
func TestPanicIsolation(t *testing.T) {
	good := &staticSource{view: View{Index: BuildIndex(fixtureDataset())}}
	bad := &flipSource{good: good}
	s := NewDynamic(bad, Options{Clock: testClock(1)})

	bad.broken.Store(true)
	if w := do(t, s, "/v1/asn/100"); w.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", w.Code)
	}
	bad.broken.Store(false)
	if w := do(t, s, "/v1/asn/100"); w.Code != http.StatusOK {
		t.Fatalf("request after contained panic = %d, want 200", w.Code)
	}
	snap := s.Metrics().Snapshot()
	if snap.PanicsTotal != 1 {
		t.Fatalf("panics_total = %d, want 1", snap.PanicsTotal)
	}
}

// flipSource serves a broken view (nil Index) while broken is set, the
// good view otherwise.
type flipSource struct {
	good   Source
	broken atomic.Bool
}

func (f *flipSource) Current() *View {
	if f.broken.Load() {
		return &View{}
	}
	return f.good.Current()
}

func (f *flipSource) Generation(n int) (*View, GenStatus) { return f.good.Generation(n) }

func (f *flipSource) Diff(from, to *View) (*churn.Audit, bool) { return f.good.Diff(from, to) }

func (f *flipSource) ReloadStatus() ReloadStatus { return f.good.ReloadStatus() }

// TestOverloadSoak is the shed-don't-collapse proof, in three
// deterministic phases on a capacity-2 server. Phase 1: stalled
// clients wedge both slots (their requests park on the gate). Phase 2:
// a 10×-capacity flood arrives while the server is fully stalled —
// every flood request must be refused 503 + Retry-After, none may hang
// or crash. Phase 3: the stall clears and goodput returns — admitted
// requests answer 200 while excess contention keeps being shed. Every
// wait in the run rides the injected instant timer, so the whole soak
// is sleep-free and -short friendly; run under -race it also proves
// the spine's accounting and cache are clean under flood concurrency.
func TestOverloadSoak(t *testing.T) {
	const (
		maxInFlight  = 2
		stalled      = 4 // stalled clients; maxInFlight of them wedge
		floodClients = 8
		floodReqs    = 20
	)
	src := newGateSource(&staticSource{view: View{Index: BuildIndex(fixtureDataset())}}, maxInFlight)
	s := NewDynamic(src, Options{
		Clock:     testClock(1),
		Admission: &AdmissionConfig{MaxInFlight: maxInFlight, MaxQueue: 2},
		After:     instantFire, // queue waits expire at once; no deadlines (RequestTimeout 0)
	})

	var (
		mu       sync.Mutex
		byStatus = map[int]uint64{}
		bad      []string
	)
	record := func(code int, hdr http.Header) {
		mu.Lock()
		defer mu.Unlock()
		byStatus[code]++
		switch code {
		case http.StatusOK:
		case http.StatusServiceUnavailable:
			if hdr.Get("Retry-After") == "" {
				bad = append(bad, "503 without Retry-After")
			}
		default:
			bad = append(bad, http.StatusText(code))
		}
	}

	// Phase 1: stalled clients. With no request deadline their requests
	// block until the gate opens; exactly maxInFlight of them are
	// admitted and wedge, the rest are shed 503 immediately.
	var slowWG sync.WaitGroup
	for c := 0; c < stalled; c++ {
		slowWG.Add(1)
		go func() {
			defer slowWG.Done()
			w := do(t, s, "/v1/asn/100")
			record(w.Code, w.Header())
		}()
	}
	src.waitBlocked(t, maxInFlight)

	// Phase 2: flood a fully stalled server. No slot can free up, the
	// queue wait expires instantly — every single flood request must be
	// shed with 503, and none may block.
	var floodWG sync.WaitGroup
	for c := 0; c < floodClients; c++ {
		floodWG.Add(1)
		go func() {
			defer floodWG.Done()
			for i := 0; i < floodReqs; i++ {
				w := do(t, s, "/v1/asn/100")
				record(w.Code, w.Header())
			}
		}()
	}
	floodWG.Wait()
	mu.Lock()
	if got := byStatus[http.StatusServiceUnavailable]; got < floodClients*floodReqs {
		t.Fatalf("stalled-phase flood: %d shed, want >= %d", got, floodClients*floodReqs)
	}
	mu.Unlock()
	// The operational plane still answers while the data plane sheds.
	if w := do(t, s, "/readyz"); w.Code != http.StatusOK {
		t.Fatalf("readyz during full stall = %d", w.Code)
	}

	// Phase 3: the stall clears; the wedged requests complete and
	// goodput returns under the same limiter.
	close(src.gate)
	slowWG.Wait()
	var recoverWG sync.WaitGroup
	for c := 0; c < floodClients; c++ {
		recoverWG.Add(1)
		go func() {
			defer recoverWG.Done()
			for i := 0; i < floodReqs; i++ {
				w := do(t, s, "/v1/asn/100")
				record(w.Code, w.Header())
			}
		}()
	}
	recoverWG.Wait()

	mu.Lock()
	defer mu.Unlock()
	for _, b := range bad {
		t.Error(b)
	}
	total := uint64(0)
	for _, n := range byStatus {
		total += n
	}
	if want := uint64(stalled + 2*floodClients*floodReqs); total != want {
		t.Fatalf("recorded %d responses, want %d (no request may vanish)", total, want)
	}
	if byStatus[http.StatusOK] < uint64(maxInFlight) {
		t.Fatalf("goodput did not return after the stall: %d OKs", byStatus[http.StatusOK])
	}
	snap := s.Metrics().Snapshot()
	if snap.ShedTotal == 0 || snap.ShedFraction <= 0 {
		t.Fatalf("shed accounting: total %d fraction %v", snap.ShedTotal, snap.ShedFraction)
	}
	if snap.InFlight != 0 {
		t.Fatalf("in-flight gauge stuck at %d", snap.InFlight)
	}
	ast := s.AdmissionStats()
	verdicts := ast.Admitted + ast.ShedQueueFull + ast.ShedTimeout + ast.ShedCanceled
	if verdicts != total {
		t.Fatalf("admission verdicts %d != data-plane responses %d", verdicts, total)
	}
	// The shedding curve is visible on the wire: /metrics carries the
	// admission block and the headline shed fraction.
	w := do(t, s, "/metrics")
	wire := decode[Snapshot](t, w)
	if wire.Admission == nil || wire.Admission.Admitted != ast.Admitted {
		t.Fatalf("/metrics admission block = %+v, want admitted %d", wire.Admission, ast.Admitted)
	}
	if wire.ShedFraction <= 0 {
		t.Fatalf("/metrics shed_fraction = %v", wire.ShedFraction)
	}
}
