package serve

import (
	"container/list"
	"sync"
)

// CachedResponse is one materialized HTTP response body held by the
// cache: everything needed to replay the response without re-running the
// handler.
type CachedResponse struct {
	Status      int
	ContentType string
	Body        []byte
}

// Cache is a bounded LRU response cache keyed on the canonicalized
// request, with hit/miss accounting. A nil *Cache (or capacity <= 0) is
// a valid always-miss cache, so handlers never branch on "caching off".
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	hits     uint64
	misses   uint64
	purged   uint64
	rejected uint64
	// floor is the highest generation ever purged (-1 = none).
	// Generations leave the retention ring oldest-first, so gen <=
	// floor means "purged for good": a Put racing a concurrent
	// PurgeGeneration (miss → purge → late fill) must be refused, or
	// the dead entry would survive the purge forever.
	floor int
}

type cacheEntry struct {
	key string
	gen int
	val CachedResponse
}

// NewCache creates an LRU cache bounded to capacity entries; capacity
// <= 0 returns nil, the always-miss cache.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
		floor:    -1,
	}
}

// Get returns the cached response for key and promotes it to most
// recently used. The returned body is shared — callers must not mutate
// it (handlers only ever write it out).
func (c *Cache) Get(key string) (CachedResponse, bool) {
	if c == nil {
		return CachedResponse{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return CachedResponse{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores a response under key, tagged with the dataset generation
// it was answered from, evicting the least recently used entry when the
// cache is full. A fill for a generation at or below the purge floor is
// refused: the filler raced PurgeGeneration (it resolved its view, then
// the generation was evicted and purged while the handler ran) and its
// entry would otherwise outlive the purge as unreclaimable dead weight.
func (c *Cache) Put(key string, gen int, v CachedResponse) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen <= c.floor {
		c.rejected++
		return
	}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		ent := el.Value.(*cacheEntry)
		ent.gen = gen
		ent.val = v
		return
	}
	if c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*cacheEntry).key)
		}
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, gen: gen, val: v})
}

// PurgeGeneration removes every entry tagged with the given generation
// and returns how many were dropped. The snapshot store calls it when a
// generation leaves the retention ring: those keys can never be asked
// for again (pinned requests get 410 before the cache is consulted), so
// purging is hygiene — it returns the capacity to live generations
// immediately instead of waiting for LRU pressure to cycle the dead
// entries out.
func (c *Cache) PurgeGeneration(gen int) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen > c.floor {
		c.floor = gen
	}
	n := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if ent := el.Value.(*cacheEntry); ent.gen == gen {
			c.ll.Remove(el)
			delete(c.items, ent.key)
			n++
		}
		el = next
	}
	c.purged += uint64(n)
	return n
}

// CacheStats is the cache's accounting snapshot.
type CacheStats struct {
	Capacity int     `json:"capacity"`
	Size     int     `json:"size"`
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
	// Purged counts entries dropped by PurgeGeneration when their
	// generation left the retention ring; Rejected counts late fills
	// refused because their generation had already been purged (the
	// fill/purge race).
	Purged   uint64 `json:"purged"`
	Rejected uint64 `json:"rejected"`
}

// Stats snapshots the cache accounting. A nil cache reports zeroes.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Capacity: c.capacity,
		Size:     c.ll.Len(),
		Hits:     c.hits,
		Misses:   c.misses,
		Purged:   c.purged,
		Rejected: c.rejected,
	}
	if total := c.hits + c.misses; total > 0 {
		s.HitRatio = float64(c.hits) / float64(total)
	}
	return s
}
