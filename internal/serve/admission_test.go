package serve

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// neverFire is an After that never fires: queue waits and deadlines
// block forever, making "the timer did not win" deterministic.
func neverFire(time.Duration) <-chan time.Time { return nil }

// instantFire is an After that has already fired: the timer always
// wins any race it is allowed to win.
func instantFire(time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	ch <- time.Time{}
	return ch
}

func TestAdmissionConfigNormalize(t *testing.T) {
	cases := []struct {
		name string
		in   AdmissionConfig
		want AdmissionConfig
	}{
		{"zero value gets defaults", AdmissionConfig{}, AdmissionConfig{
			MaxInFlight: DefaultMaxInFlight, MaxQueue: DefaultMaxQueue,
			QueueWait: DefaultQueueWait, RetryAfter: DefaultRetryAfter,
		}},
		{"huge values clamp to the cap", AdmissionConfig{MaxInFlight: 1 << 30, MaxQueue: 1 << 30, QueueWait: time.Hour, RetryAfter: time.Hour}, AdmissionConfig{
			MaxInFlight: MaxInFlightCap, MaxQueue: MaxInFlightCap,
			QueueWait: time.Hour, RetryAfter: time.Hour,
		}},
		{"negative queue means no queue", AdmissionConfig{MaxInFlight: 4, MaxQueue: -1}, AdmissionConfig{
			MaxInFlight: 4, MaxQueue: 0, QueueWait: DefaultQueueWait, RetryAfter: DefaultRetryAfter,
		}},
		{"negative wait disables the queue", AdmissionConfig{MaxInFlight: 4, MaxQueue: 8, QueueWait: -time.Second}, AdmissionConfig{
			MaxInFlight: 4, MaxQueue: 0, QueueWait: 0, RetryAfter: DefaultRetryAfter,
		}},
		{"negative in-flight gets the default", AdmissionConfig{MaxInFlight: -3}, AdmissionConfig{
			MaxInFlight: DefaultMaxInFlight, MaxQueue: DefaultMaxQueue,
			QueueWait: DefaultQueueWait, RetryAfter: DefaultRetryAfter,
		}},
	}
	for _, tc := range cases {
		if got := tc.in.Normalize(); got != tc.want {
			t.Errorf("%s: Normalize(%+v) = %+v, want %+v", tc.name, tc.in, got, tc.want)
		}
	}
}

func TestLimiterAdmitAndRelease(t *testing.T) {
	l := NewLimiter(AdmissionConfig{MaxInFlight: 2, MaxQueue: -1}, neverFire)
	rel1, v1 := l.Acquire(nil)
	rel2, v2 := l.Acquire(nil)
	if v1 != Admitted || v2 != Admitted {
		t.Fatalf("verdicts = %v, %v", v1, v2)
	}
	// Both slots held, no queue: the third is shed without waiting.
	if _, v := l.Acquire(nil); v != ShedQueueFull {
		t.Fatalf("third acquire = %v, want ShedQueueFull", v)
	}
	rel1()
	if rel, v := l.Acquire(nil); v != Admitted {
		t.Fatalf("post-release acquire = %v", v)
	} else {
		rel()
	}
	rel2()
	st := l.Stats()
	if st.Admitted != 3 || st.ShedQueueFull != 1 || st.Queued != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLimiterQueueTimeout(t *testing.T) {
	l := NewLimiter(AdmissionConfig{MaxInFlight: 1, MaxQueue: 4}, instantFire)
	rel, v := l.Acquire(nil)
	if v != Admitted {
		t.Fatalf("first acquire = %v", v)
	}
	// The slot is held; the queued request's wait timer fires at once.
	if _, v := l.Acquire(nil); v != ShedTimeout {
		t.Fatalf("queued acquire = %v, want ShedTimeout", v)
	}
	rel()
	st := l.Stats()
	if st.ShedTimeout != 1 || st.Queued != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLimiterQueueCanceled(t *testing.T) {
	l := NewLimiter(AdmissionConfig{MaxInFlight: 1, MaxQueue: 4}, neverFire)
	rel, _ := l.Acquire(nil)
	defer rel()
	canceled := make(chan struct{})
	close(canceled)
	if _, v := l.Acquire(canceled); v != ShedCanceled {
		t.Fatalf("canceled acquire = %v, want ShedCanceled", v)
	}
	if st := l.Stats(); st.ShedCanceled != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLimiterQueueHandoff(t *testing.T) {
	// A queued waiter must get the slot when the holder releases it.
	l := NewLimiter(AdmissionConfig{MaxInFlight: 1, MaxQueue: 4}, neverFire)
	rel, _ := l.Acquire(nil)
	got := make(chan Verdict, 1)
	go func() {
		rel2, v := l.Acquire(nil)
		if v == Admitted {
			rel2()
		}
		got <- v
	}()
	// Wait until the goroutine is queued, then release.
	for {
		if l.Stats().Queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	rel()
	if v := <-got; v != Admitted {
		t.Fatalf("queued waiter verdict = %v, want Admitted", v)
	}
}

func TestLimiterNilAdmitsEverything(t *testing.T) {
	var l *Limiter
	rel, v := l.Acquire(nil)
	if v != Admitted || rel == nil {
		t.Fatalf("nil limiter: %v", v)
	}
	rel()
	if st := l.Stats(); st != (AdmissionStats{}) {
		t.Fatalf("nil limiter stats = %+v", st)
	}
	if l.RetryAfterSeconds() != 0 {
		t.Fatal("nil limiter advertised a Retry-After")
	}
}

func TestLimiterConcurrencyBound(t *testing.T) {
	// Hammer the limiter from many goroutines (with handoff enabled via
	// a real, very short queue wait) and prove admitted concurrency
	// never exceeds MaxInFlight.
	const maxInFlight = 4
	l := NewLimiter(AdmissionConfig{MaxInFlight: maxInFlight, MaxQueue: 64, QueueWait: 5 * time.Millisecond}, time.After)
	var (
		mu      sync.Mutex
		cur     int
		highRes int
	)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, v := l.Acquire(nil)
			if v != Admitted {
				return
			}
			mu.Lock()
			cur++
			if cur > highRes {
				highRes = cur
			}
			mu.Unlock()
			time.Sleep(100 * time.Microsecond)
			mu.Lock()
			cur--
			mu.Unlock()
			rel()
		}()
	}
	wg.Wait()
	if highRes > maxInFlight {
		t.Fatalf("observed %d concurrent admissions, bound is %d", highRes, maxInFlight)
	}
	if st := l.Stats(); st.Admitted == 0 {
		t.Fatalf("nothing admitted: %+v", st)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	l := NewLimiter(AdmissionConfig{RetryAfter: 2500 * time.Millisecond}, neverFire)
	if got := l.RetryAfterSeconds(); got != 3 {
		t.Fatalf("RetryAfterSeconds = %d, want 3 (rounded up)", got)
	}
	l = NewLimiter(AdmissionConfig{RetryAfter: time.Millisecond}, neverFire)
	if got := l.RetryAfterSeconds(); got != 1 {
		t.Fatalf("RetryAfterSeconds = %d, want the 1s minimum", got)
	}
}

// TestServerShedsWith503 drives the shed path end to end through the
// HTTP spine: with one slot held by a blocked handler and no queue, the
// next /v1 request is refused with 503 + Retry-After, the operational
// endpoints still answer, and the blocked request completes normally
// once unblocked.
func TestServerShedsWith503(t *testing.T) {
	src := newGateSource(&staticSource{view: View{Index: BuildIndex(fixtureDataset())}}, 1)
	s := NewDynamic(src, Options{
		Clock:     testClock(1),
		Admission: &AdmissionConfig{MaxInFlight: 1, MaxQueue: -1},
		After:     neverFire,
	})

	first := make(chan *httptest.ResponseRecorder, 1)
	go func() { first <- do(t, s, "/v1/asn/100") }()
	src.waitBlocked(t, 1) // the first request now holds the only slot

	if w := do(t, s, "/v1/asn/200"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("second request = %d, want 503", w.Code)
	} else if w.Header().Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After")
	}
	// The operational plane is never admission-controlled.
	if w := do(t, s, "/metrics"); w.Code != http.StatusOK {
		t.Fatalf("metrics under saturation = %d", w.Code)
	}

	close(src.gate)
	if w := <-first; w.Code != http.StatusOK {
		t.Fatalf("blocked request finished with %d", w.Code)
	}
	snap := s.Metrics().Snapshot()
	if snap.ShedTotal != 1 || snap.ShedFraction <= 0 {
		t.Fatalf("shed accounting = total %d fraction %v", snap.ShedTotal, snap.ShedFraction)
	}
}
