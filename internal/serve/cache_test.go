package serve

import (
	"fmt"
	"testing"
)

func respBody(s string) CachedResponse {
	return CachedResponse{Status: 200, ContentType: "application/json", Body: []byte(s)}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("a", 0, respBody("A"))
	got, ok := c.Get("a")
	if !ok || string(got.Body) != "A" {
		t.Fatalf("Get a = %q ok=%v", got.Body, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 || st.Capacity != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRatio != 0.5 {
		t.Fatalf("hit ratio = %v", st.HitRatio)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(3)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), 0, respBody(fmt.Sprintf("v%d", i)))
	}
	// Touch k0 so k1 becomes the eviction victim.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.Put("k3", 0, respBody("v3"))
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 should have been evicted (LRU)")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if st := c.Stats(); st.Size != 3 {
		t.Fatalf("size = %d after eviction", st.Size)
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := NewCache(2)
	c.Put("k", 0, respBody("old"))
	c.Put("k", 0, respBody("new"))
	got, ok := c.Get("k")
	if !ok || string(got.Body) != "new" {
		t.Fatalf("updated entry = %q ok=%v", got.Body, ok)
	}
	if st := c.Stats(); st.Size != 1 {
		t.Fatalf("size = %d after in-place update", st.Size)
	}
}

func TestCachePurgeGeneration(t *testing.T) {
	c := NewCache(8)
	c.Put("g0/a", 0, respBody("a0"))
	c.Put("g0/b", 0, respBody("b0"))
	c.Put("g1/a", 1, respBody("a1"))
	if n := c.PurgeGeneration(0); n != 2 {
		t.Fatalf("PurgeGeneration(0) dropped %d entries, want 2", n)
	}
	if _, ok := c.Get("g0/a"); ok {
		t.Fatal("g0/a survived its generation's purge")
	}
	if got, ok := c.Get("g1/a"); !ok || string(got.Body) != "a1" {
		t.Fatalf("g1/a = %q ok=%v after purging generation 0", got.Body, ok)
	}
	st := c.Stats()
	if st.Size != 1 || st.Purged != 2 {
		t.Fatalf("stats after purge = %+v", st)
	}
	if n := c.PurgeGeneration(5); n != 0 {
		t.Fatalf("purging an absent generation dropped %d entries", n)
	}
	var nilCache *Cache
	if n := nilCache.PurgeGeneration(0); n != 0 {
		t.Fatalf("nil cache purge = %d", n)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	if c != nil {
		t.Fatal("capacity 0 should return the nil always-miss cache")
	}
	c.Put("k", 0, respBody("v")) // must not panic
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache reported a hit")
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}
