package serve

import (
	"fmt"
	"sync"
	"testing"
)

func respBody(s string) CachedResponse {
	return CachedResponse{Status: 200, ContentType: "application/json", Body: []byte(s)}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("a", 0, respBody("A"))
	got, ok := c.Get("a")
	if !ok || string(got.Body) != "A" {
		t.Fatalf("Get a = %q ok=%v", got.Body, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 || st.Capacity != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRatio != 0.5 {
		t.Fatalf("hit ratio = %v", st.HitRatio)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(3)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), 0, respBody(fmt.Sprintf("v%d", i)))
	}
	// Touch k0 so k1 becomes the eviction victim.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.Put("k3", 0, respBody("v3"))
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 should have been evicted (LRU)")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if st := c.Stats(); st.Size != 3 {
		t.Fatalf("size = %d after eviction", st.Size)
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := NewCache(2)
	c.Put("k", 0, respBody("old"))
	c.Put("k", 0, respBody("new"))
	got, ok := c.Get("k")
	if !ok || string(got.Body) != "new" {
		t.Fatalf("updated entry = %q ok=%v", got.Body, ok)
	}
	if st := c.Stats(); st.Size != 1 {
		t.Fatalf("size = %d after in-place update", st.Size)
	}
}

func TestCachePurgeGeneration(t *testing.T) {
	c := NewCache(8)
	c.Put("g0/a", 0, respBody("a0"))
	c.Put("g0/b", 0, respBody("b0"))
	c.Put("g1/a", 1, respBody("a1"))
	if n := c.PurgeGeneration(0); n != 2 {
		t.Fatalf("PurgeGeneration(0) dropped %d entries, want 2", n)
	}
	if _, ok := c.Get("g0/a"); ok {
		t.Fatal("g0/a survived its generation's purge")
	}
	if got, ok := c.Get("g1/a"); !ok || string(got.Body) != "a1" {
		t.Fatalf("g1/a = %q ok=%v after purging generation 0", got.Body, ok)
	}
	st := c.Stats()
	if st.Size != 1 || st.Purged != 2 {
		t.Fatalf("stats after purge = %+v", st)
	}
	if n := c.PurgeGeneration(5); n != 0 {
		t.Fatalf("purging an absent generation dropped %d entries", n)
	}
	var nilCache *Cache
	if n := nilCache.PurgeGeneration(0); n != 0 {
		t.Fatalf("nil cache purge = %d", n)
	}
}

// TestCacheLateFillAfterPurge is the deterministic core of the
// fill/purge race: a handler resolved its view at generation 0, the
// generation was then evicted and purged, and the handler's Put lands
// after the purge. Without the purge floor the entry would survive the
// purge forever (nothing purges generation 0 twice), serving a dead
// generation's body to any later key collision and squatting capacity.
func TestCacheLateFillAfterPurge(t *testing.T) {
	c := NewCache(8)
	c.PurgeGeneration(0)
	c.Put("g0/a", 0, respBody("stale"))
	if _, ok := c.Get("g0/a"); ok {
		t.Fatal("late fill for a purged generation was accepted")
	}
	if st := c.Stats(); st.Rejected != 1 {
		t.Fatalf("stats = %+v, want Rejected=1", st)
	}
	// Fills for generations above the floor still land.
	c.Put("g1/a", 1, respBody("live"))
	if _, ok := c.Get("g1/a"); !ok {
		t.Fatal("live-generation fill rejected")
	}
	// The floor is monotonic: purging an older generation after a newer
	// one must not lower it.
	c.PurgeGeneration(3)
	c.PurgeGeneration(1)
	c.Put("g2/a", 2, respBody("dead"))
	if _, ok := c.Get("g2/a"); ok {
		t.Fatal("fill below the floor accepted after out-of-order purges")
	}
}

// TestCacheFillPurgeRace interleaves concurrent fills and purges under
// the race detector and then checks the invariant the floor exists for:
// once PurgeGeneration(g) has returned, no entry tagged g (or older) is
// ever retrievable again, no matter how fills raced it.
func TestCacheFillPurgeRace(t *testing.T) {
	const (
		generations = 8
		fillers     = 4
		keysPerGen  = 16
	)
	c := NewCache(1024)
	var wg sync.WaitGroup
	for f := 0; f < fillers; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for g := 0; g < generations; g++ {
				for k := 0; k < keysPerGen; k++ {
					key := fmt.Sprintf("g%d/f%d/k%d", g, f, k)
					c.Put(key, g, respBody(key))
					c.Get(key)
				}
			}
		}(f)
	}
	purgedUpTo := generations - 2 // leave the newest generations live
	wg.Add(1)
	go func() {
		defer wg.Done()
		for g := 0; g <= purgedUpTo; g++ {
			c.PurgeGeneration(g)
		}
	}()
	wg.Wait()
	// Quiesced: one final purge pass sweeps entries that were filled
	// before the purger's floor passed them...
	for g := 0; g <= purgedUpTo; g++ {
		c.PurgeGeneration(g)
	}
	// ...after which nothing at or below the floor may remain.
	for g := 0; g <= purgedUpTo; g++ {
		for f := 0; f < fillers; f++ {
			for k := 0; k < keysPerGen; k++ {
				key := fmt.Sprintf("g%d/f%d/k%d", g, f, k)
				if _, ok := c.Get(key); ok {
					t.Fatalf("entry %s survived its generation's purge", key)
				}
			}
		}
	}
	// Late fills for purged generations stay refused forever.
	c.Put("late", purgedUpTo, respBody("late"))
	if _, ok := c.Get("late"); ok {
		t.Fatal("late fill accepted after quiesce")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	if c != nil {
		t.Fatal("capacity 0 should return the nil always-miss cache")
	}
	c.Put("k", 0, respBody("v")) // must not panic
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache reported a hit")
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}
