package serve

import (
	"fmt"
	"testing"
)

func respBody(s string) CachedResponse {
	return CachedResponse{Status: 200, ContentType: "application/json", Body: []byte(s)}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("a", respBody("A"))
	got, ok := c.Get("a")
	if !ok || string(got.Body) != "A" {
		t.Fatalf("Get a = %q ok=%v", got.Body, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 || st.Capacity != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRatio != 0.5 {
		t.Fatalf("hit ratio = %v", st.HitRatio)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(3)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), respBody(fmt.Sprintf("v%d", i)))
	}
	// Touch k0 so k1 becomes the eviction victim.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.Put("k3", respBody("v3"))
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 should have been evicted (LRU)")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if st := c.Stats(); st.Size != 3 {
		t.Fatalf("size = %d after eviction", st.Size)
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := NewCache(2)
	c.Put("k", respBody("old"))
	c.Put("k", respBody("new"))
	got, ok := c.Get("k")
	if !ok || string(got.Body) != "new" {
		t.Fatalf("updated entry = %q ok=%v", got.Body, ok)
	}
	if st := c.Stats(); st.Size != 1 {
		t.Fatalf("size = %d after in-place update", st.Size)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	if c != nil {
		t.Fatal("capacity 0 should return the nil always-miss cache")
	}
	c.Put("k", respBody("v")) // must not panic
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache reported a hit")
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}
