package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"stateowned/internal/report"
)

// Clock supplies monotonically non-decreasing time in virtual units.
// Latency accounting runs on virtual units for the same reason the
// runner's backoff does: tests and chaos replays stay deterministic
// when they inject a counting clock, while the default clock maps a
// virtual unit to a microsecond of wall time.
type Clock func() int64

// WallClock is the default production clock: one virtual unit per
// microsecond.
func WallClock() int64 { return int64(time.Since(wallEpoch) / time.Microsecond) }

var wallEpoch = time.Now()

// latencyBuckets is the number of exponential histogram buckets: bucket
// i counts requests with latency < 2^i virtual units, the last bucket
// is the overflow.
const latencyBuckets = 16

// endpointStats accumulates one endpoint's counters.
type endpointStats struct {
	requests   uint64
	byStatus   map[int]uint64
	hist       [latencyBuckets]uint64
	totalUnits int64
	maxUnits   int64
	// Containment counters: requests refused by admission control,
	// requests that overran their deadline, handler panics converted to
	// 500s. All three also appear in byStatus (503/504/500) — these
	// separate the overload-policy outcomes from organic errors.
	shed             uint64
	deadlineExceeded uint64
	panics           uint64
}

// Metrics is the serve-metrics registry: per-endpoint request counts and
// latency histograms (virtual units), plus an in-flight gauge. Cache
// accounting lives on the Cache itself and is merged into snapshots by
// the server.
type Metrics struct {
	clock Clock

	mu        sync.Mutex
	inflight  int
	endpoints map[string]*endpointStats
	order     []string
}

// NewMetrics creates a registry on the given clock (nil selects
// WallClock).
func NewMetrics(clock Clock) *Metrics {
	if clock == nil {
		clock = WallClock
	}
	return &Metrics{clock: clock, endpoints: map[string]*endpointStats{}}
}

// Begin marks a request as in flight and returns its start timestamp.
func (m *Metrics) Begin() int64 {
	m.mu.Lock()
	m.inflight++
	m.mu.Unlock()
	return m.clock()
}

// End records a finished request against an endpoint: status class,
// latency bucket, totals, and the in-flight gauge.
func (m *Metrics) End(endpoint string, status int, start int64) {
	elapsed := m.clock() - start
	if elapsed < 0 {
		elapsed = 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inflight--
	st := m.stat(endpoint)
	st.requests++
	st.byStatus[status]++
	st.hist[bucketOf(elapsed)]++
	st.totalUnits += elapsed
	if elapsed > st.maxUnits {
		st.maxUnits = elapsed
	}
}

// stat returns (creating on first use) an endpoint's row; callers hold
// m.mu.
func (m *Metrics) stat(endpoint string) *endpointStats {
	st := m.endpoints[endpoint]
	if st == nil {
		st = &endpointStats{byStatus: map[int]uint64{}}
		m.endpoints[endpoint] = st
		m.order = append(m.order, endpoint)
	}
	return st
}

// Shed records a request refused by admission control.
func (m *Metrics) Shed(endpoint string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stat(endpoint).shed++
}

// DeadlineExceeded records a request that overran its handler budget.
func (m *Metrics) DeadlineExceeded(endpoint string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stat(endpoint).deadlineExceeded++
}

// Panicked records a handler panic contained by the per-request panic
// barrier.
func (m *Metrics) Panicked(endpoint string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stat(endpoint).panics++
}

// bucketOf maps a latency to its exponential bucket: bucket i holds
// latencies in [2^(i-1), 2^i), bucket 0 holds < 1.
func bucketOf(units int64) int {
	for i := 0; i < latencyBuckets-1; i++ {
		if units < 1<<uint(i) {
			return i
		}
	}
	return latencyBuckets - 1
}

// EndpointSnapshot is one endpoint's row of a metrics snapshot.
type EndpointSnapshot struct {
	Endpoint  string                 `json:"endpoint"`
	Requests  uint64                 `json:"requests"`
	ByStatus  map[string]uint64      `json:"by_status"`
	MeanUnits float64                `json:"mean_latency_units"`
	MaxUnits  int64                  `json:"max_latency_units"`
	Histogram [latencyBuckets]uint64 `json:"latency_histogram"`
	// Containment outcomes (see endpointStats).
	Shed             uint64 `json:"shed,omitempty"`
	DeadlineExceeded uint64 `json:"deadline_exceeded,omitempty"`
	Panics           uint64 `json:"panics,omitempty"`
}

// BuildNodeTiming is one pipeline build node's measured wall time as
// exposed on /metrics — the serving-side view of runner.NodeTiming.
// Reused marks nodes that were restored from the previous generation's
// artifact memo instead of executed (incremental rebuilds only).
type BuildNodeTiming struct {
	Node   string  `json:"node"`
	WallMS float64 `json:"wall_ms"`
	Reused bool    `json:"reused,omitempty"`
}

// Snapshot is the full registry state at one instant, the JSON body of
// /metrics. BuildWorkers and BuildNodes describe the pipeline run that
// produced the served dataset (filled by the server when it holds a
// health report; absent otherwise).
type Snapshot struct {
	InFlight  int                `json:"in_flight"`
	Requests  uint64             `json:"requests"`
	Endpoints []EndpointSnapshot `json:"endpoints"`
	Cache     CacheStats         `json:"cache"`
	// Overload-policy totals across endpoints: ShedFraction is
	// ShedTotal / Requests — the headline "how much load are we
	// refusing" number the soak tests and dashboards read.
	ShedTotal             uint64  `json:"shed_total"`
	ShedFraction          float64 `json:"shed_fraction"`
	DeadlineExceededTotal uint64  `json:"deadline_exceeded_total"`
	PanicsTotal           uint64  `json:"panics_total"`
	// Admission is the limiter's own accounting (absent when admission
	// control is off).
	Admission *AdmissionStats `json:"admission,omitempty"`
	// Generation is the live dataset generation at snapshot time;
	// Reloading reports whether a rebuild was in flight; Degraded (with
	// DegradedReason) that the reload gate is serving last-known-good.
	Generation     int               `json:"generation"`
	Reloading      bool              `json:"reloading"`
	Degraded       bool              `json:"degraded"`
	DegradedReason string            `json:"degraded_reason,omitempty"`
	BuildWorkers   int               `json:"build_workers,omitempty"`
	BuildNodes     []BuildNodeTiming `json:"build_nodes,omitempty"`
	// Incremental-rebuild counters, copied from the source's
	// ReloadStatus (absent for full-rebuild and static sources). All
	// cumulative across rebuilds.
	Incremental  bool   `json:"incremental,omitempty"`
	NodesReused  uint64 `json:"nodes_reused,omitempty"`
	NodesRebuilt uint64 `json:"nodes_rebuilt,omitempty"`
	IndexReuses  uint64 `json:"index_reuses,omitempty"`
	GraphReuses  uint64 `json:"graph_reuses,omitempty"`
	// Durable-archive counters, copied from the source's ReloadStatus
	// (absent for memory-only sources). Recovered/RecoveredGen report a
	// warm start adopted from the archive.
	Archive   bool `json:"archive,omitempty"`
	Recovered bool `json:"recovered,omitempty"`
	// Pointer for the same reason as ReadyResponse.RecoveredGen: a warm
	// start onto generation 0 must not disappear behind omitempty.
	RecoveredGen         *int   `json:"recovered_gen,omitempty"`
	SegmentsVerified     uint64 `json:"segments_verified,omitempty"`
	SegmentsQuarantined  uint64 `json:"segments_quarantined,omitempty"`
	ArchiveWrites        uint64 `json:"archive_writes,omitempty"`
	ArchiveWriteFailures uint64 `json:"archive_write_failures,omitempty"`
}

// Snapshot captures the registry (endpoints sorted by name for a stable
// JSON body; cache stats are filled in by the caller that owns the
// cache).
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := Snapshot{InFlight: m.inflight}
	names := append([]string(nil), m.order...)
	sort.Strings(names)
	for _, name := range names {
		st := m.endpoints[name]
		es := EndpointSnapshot{
			Endpoint:         name,
			Requests:         st.requests,
			ByStatus:         map[string]uint64{},
			MaxUnits:         st.maxUnits,
			Histogram:        st.hist,
			Shed:             st.shed,
			DeadlineExceeded: st.deadlineExceeded,
			Panics:           st.panics,
		}
		for code, n := range st.byStatus {
			es.ByStatus[fmt.Sprintf("%d", code)] = n
		}
		if st.requests > 0 {
			es.MeanUnits = float64(st.totalUnits) / float64(st.requests)
		}
		snap.Requests += st.requests
		snap.ShedTotal += st.shed
		snap.DeadlineExceededTotal += st.deadlineExceeded
		snap.PanicsTotal += st.panics
		snap.Endpoints = append(snap.Endpoints, es)
	}
	if snap.Requests > 0 {
		snap.ShedFraction = float64(snap.ShedTotal) / float64(snap.Requests)
	}
	return snap
}

// Render formats a snapshot as a plain-text table with a per-endpoint
// latency-histogram sparkline, in the house report style.
func (s Snapshot) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Serve metrics (%d requests, %d in flight, cache hit ratio %.2f)",
			s.Requests, s.InFlight, s.Cache.HitRatio),
		"endpoint", "requests", "mean", "max", "latency histogram")
	for _, es := range s.Endpoints {
		vals := make([]float64, len(es.Histogram))
		for i, n := range es.Histogram {
			vals[i] = float64(n)
		}
		t.AddRow(es.Endpoint, es.Requests, es.MeanUnits, es.MaxUnits, report.Sparkline(vals))
	}
	return t.String()
}
