package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"stateowned/internal/churn"
	"stateowned/internal/expand"
	"stateowned/internal/nameutil"
	"stateowned/internal/runner"
	"stateowned/internal/world"
)

// Options configures a Server.
type Options struct {
	// Health is the pipeline run's degradation report when the server is
	// built over a single static index (New); /readyz summarizes it.
	// Nil means "no health information" and /readyz always reports
	// ready. Generational sources (NewDynamic) carry health per View
	// and ignore this field.
	Health *runner.Health
	// CacheSize bounds the LRU response cache in entries (<= 0 disables
	// caching).
	CacheSize int
	// Clock drives latency accounting (nil = WallClock).
	Clock Clock
	// SearchLimit caps /v1/search results (<= 0 = 10).
	SearchLimit int

	// Admission enables load shedding on the /v1 endpoints: a bounded
	// in-flight limiter with a short deadline-aware wait queue; excess
	// load gets 503 + Retry-After instead of collapsing the process.
	// Nil disables admission control (every request is admitted). The
	// operational endpoints (/healthz, /readyz, /metrics) are never
	// limited — they must answer precisely when the server is drowning.
	Admission *AdmissionConfig
	// RequestTimeout is the per-request handler budget on the /v1
	// endpoints (0 = no deadlines). The expensive endpoints — /v1/diff
	// (a full churn audit) and /v1/search (token-set scoring) — run at
	// half budget: under pressure the costly work is the first to be
	// cut. An exceeded budget cancels the handler's context
	// (partial-work cancellation) and answers 504.
	RequestTimeout time.Duration
	// After is the timer the admission queue and request deadlines wait
	// on (nil = time.After). Tests inject a hand-fired channel so
	// overload runs are deterministic and near-instant.
	After After

	// DrainTimeout bounds the graceful drain in Serve: on shutdown the
	// listener closes immediately and in-flight requests get this long
	// to finish (0 = DefaultDrainTimeout).
	DrainTimeout time.Duration
	// ReadHeaderTimeout, WriteTimeout and IdleTimeout are applied to the
	// http.Server in Serve (0 selects the package defaults); unset
	// they'd let one slowloris client pin a connection forever.
	ReadHeaderTimeout time.Duration
	WriteTimeout      time.Duration
	IdleTimeout       time.Duration
}

// Connection-lifecycle defaults for Serve's http.Server. These bound
// the damage one misbehaving client can do to a connection: a client
// that trickles header bytes (slowloris) is cut off at
// DefaultReadHeaderTimeout, a stalled reader at DefaultWriteTimeout,
// an idle keep-alive at DefaultIdleTimeout.
const (
	// DefaultRequestTimeout is cmd/serve's default per-request handler
	// budget (the Options.RequestTimeout zero value still means "no
	// deadlines" for library users constructing a Server directly).
	DefaultRequestTimeout = 2 * time.Second
	// DefaultDrainTimeout bounds the graceful in-flight drain on
	// shutdown.
	DefaultDrainTimeout = 5 * time.Second
	// DefaultReadHeaderTimeout bounds how long a client may take to
	// send the request headers.
	DefaultReadHeaderTimeout = 10 * time.Second
	// DefaultWriteTimeout bounds the whole request+response exchange;
	// it comfortably exceeds any queue wait plus handler budget.
	DefaultWriteTimeout = 30 * time.Second
	// DefaultIdleTimeout bounds idle keep-alive connections.
	DefaultIdleTimeout = 120 * time.Second
)

// GenerationHeader is the response header naming the generation a /v1
// answer was served from. The hot-reload soak test keys its
// consistency check on it: a response's body must match a pinned
// ?gen=<header> replay byte for byte.
const GenerationHeader = "X-Generation"

// Server serves a generational dataset Source over HTTP. All state
// reached by handlers is either immutable once published (Views and
// their Indexes) or internally synchronized (source, cache, metrics,
// limiter), so the server is safe under arbitrary request concurrency —
// including concurrent generation swaps: a request resolves its View
// once and answers entirely from it.
//
// Every request flows through the containment spine (dispatch):
// admission control (503 + Retry-After under overload), a per-endpoint
// deadline (504 with context cancellation), and per-request panic
// isolation (500 + panics_total instead of a dead process). Handlers
// therefore never touch the ResponseWriter — they return a materialized
// response, and only the spine writes, so a late handler can never race
// a timeout answer on the wire.
type Server struct {
	src     Source
	cache   *Cache
	metrics *Metrics
	mux     *http.ServeMux
	limit   int

	limiter *Limiter
	after   After
	// budgets maps endpoint name to its handler deadline (0 = none).
	budgets map[string]time.Duration

	drainTimeout      time.Duration
	readHeaderTimeout time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration
}

// New assembles a Server over a single compiled Index: a static,
// generation-0-only source with no churn schedule. Use NewDynamic for
// a hot-reloading generational source (internal/snapshot).
func New(idx *Index, opts Options) *Server {
	return NewDynamic(&staticSource{view: View{
		Index:      idx,
		Health:     opts.Health,
		Provenance: Provenance{Origin: "static"},
	}}, opts)
}

// NewDynamic assembles a Server over a generational Source. The server
// itself holds no dataset state: every request resolves a View (the
// live generation, or a retained one pinned with ?gen=N) and answers
// from its immutable index.
func NewDynamic(src Source, opts Options) *Server {
	s := &Server{
		src:               src,
		cache:             NewCache(opts.CacheSize),
		metrics:           NewMetrics(opts.Clock),
		mux:               http.NewServeMux(),
		limit:             opts.SearchLimit,
		after:             opts.After,
		drainTimeout:      opts.DrainTimeout,
		readHeaderTimeout: opts.ReadHeaderTimeout,
		writeTimeout:      opts.WriteTimeout,
		idleTimeout:       opts.IdleTimeout,
	}
	if s.limit <= 0 {
		s.limit = 10
	}
	if s.after == nil {
		s.after = time.After
	}
	if opts.Admission != nil {
		s.limiter = NewLimiter(*opts.Admission, s.after)
	}
	// Per-endpoint deadlines: the expensive endpoints get half the
	// budget — under pressure, cut the costly work first.
	s.budgets = map[string]time.Duration{}
	if b := opts.RequestTimeout; b > 0 {
		tight := b / 2
		for _, e := range []string{"/v1/asn", "/v1/country", "/v1/org", "/v1/dataset",
			"/v1/graph/neighbors", "/v1/graph/upstreams", "/v1/graph/cone", "/v1/hijacks", "other"} {
			s.budgets[e] = b
		}
		for _, e := range []string{"/v1/search", "/v1/diff", "/v1/graph/path"} {
			s.budgets[e] = tight
		}
	}
	// The /v1 data plane runs load-controlled (admission + deadlines);
	// the operational plane does not — /healthz, /readyz and /metrics
	// must answer precisely when the server is shedding.
	s.mux.HandleFunc("GET /v1/asn/{asn}", s.handle("/v1/asn", true, s.viewHandler("/v1/asn", s.handleASN)))
	s.mux.HandleFunc("GET /v1/country/{cc}", s.handle("/v1/country", true, s.viewHandler("/v1/country", s.handleCountry)))
	s.mux.HandleFunc("GET /v1/org/{id}", s.handle("/v1/org", true, s.viewHandler("/v1/org", s.handleOrg)))
	s.mux.HandleFunc("GET /v1/search", s.handle("/v1/search", true, s.viewHandler("/v1/search", s.handleSearch)))
	s.mux.HandleFunc("GET /v1/dataset", s.handle("/v1/dataset", true, s.viewHandler("/v1/dataset", s.handleDataset)))
	s.mux.HandleFunc("GET /v1/graph/neighbors/{asn}", s.handle("/v1/graph/neighbors", true, s.viewHandler("/v1/graph/neighbors", s.handleGraphNeighbors)))
	s.mux.HandleFunc("GET /v1/graph/upstreams/{asn}", s.handle("/v1/graph/upstreams", true, s.viewHandler("/v1/graph/upstreams", s.handleGraphUpstreams)))
	s.mux.HandleFunc("GET /v1/graph/cone/{asn}", s.handle("/v1/graph/cone", true, s.viewHandler("/v1/graph/cone", s.handleGraphCone)))
	s.mux.HandleFunc("GET /v1/graph/path", s.handle("/v1/graph/path", true, s.viewHandler("/v1/graph/path", s.handleGraphPath)))
	s.mux.HandleFunc("GET /v1/hijacks", s.handle("/v1/hijacks", true, s.viewHandler("/v1/hijacks", s.handleHijacks)))
	s.mux.HandleFunc("GET /v1/diff", s.handle("/v1/diff", true, s.handleDiff))
	s.mux.HandleFunc("GET /healthz", s.handle("/healthz", false, s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.handle("/readyz", false, s.handleReadyz))
	s.mux.HandleFunc("GET /metrics", s.handle("/metrics", false, s.handleMetrics))
	s.mux.HandleFunc("/", s.handle("other", true, func(*http.Request) response {
		return errResponse(http.StatusNotFound, "unknown endpoint")
	}))
	return s
}

// ServeHTTP dispatches to the route table.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics exposes the registry (snapshots drive /metrics and tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// CacheStats exposes the response-cache accounting.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// AdmissionStats exposes the limiter accounting (zeroes when admission
// control is off).
func (s *Server) AdmissionStats() AdmissionStats { return s.limiter.Stats() }

// InvalidateGeneration purges every cached response that was answered
// from the given generation. The snapshot store calls this when a
// generation leaves the retention ring: entries of still-retained
// generations remain valid (responses are pure functions of
// (generation, canonical request)), so only evicted generations need
// purging — and a stale answer cannot survive a swap in any case,
// because unpinned requests resolve their generation before the cache
// is consulted.
func (s *Server) InvalidateGeneration(gen int) { s.cache.PurgeGeneration(gen) }

// Serve accepts connections on ln until ctx is canceled, then shuts the
// server down gracefully: the listener stops accepting immediately and
// in-flight requests get the drain timeout to finish. It returns nil on
// a clean context-driven shutdown (including one where the drain
// deadline expired and stragglers were cut off — that is the contract,
// not an error). The http.Server runs with read-header, write and idle
// timeouts so a slowloris client cannot pin a connection forever.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	return ServeHandler(ctx, ln, s, LifecycleOptions{
		DrainTimeout:      s.drainTimeout,
		ReadHeaderTimeout: s.readHeaderTimeout,
		WriteTimeout:      s.writeTimeout,
		IdleTimeout:       s.idleTimeout,
	})
}

// LifecycleOptions bound an http.Server's connection lifecycle for
// ServeHandler; zero fields select the package defaults.
type LifecycleOptions struct {
	DrainTimeout      time.Duration
	ReadHeaderTimeout time.Duration
	WriteTimeout      time.Duration
	IdleTimeout       time.Duration
}

// ServeHandler runs any handler with this package's hardened server
// lifecycle — slowloris-bounded connections, context-driven graceful
// drain, force-close of stragglers past the drain budget. The fleet's
// shard and router servers ride the same lifecycle as the
// single-process server.
func ServeHandler(ctx context.Context, ln net.Listener, h http.Handler, opts LifecycleOptions) error {
	drain := orDefault(opts.DrainTimeout, DefaultDrainTimeout)
	hs := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: orDefault(opts.ReadHeaderTimeout, DefaultReadHeaderTimeout),
		WriteTimeout:      orDefault(opts.WriteTimeout, DefaultWriteTimeout),
		IdleTimeout:       orDefault(opts.IdleTimeout, DefaultIdleTimeout),
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		// The drain deadline expired: force-close the stragglers. Still
		// a clean shutdown from the operator's point of view.
		hs.Close()
	}
	<-errc // always http.ErrServerClosed after Shutdown/Close
	return nil
}

// orDefault substitutes def for an unset duration.
func orDefault(d, def time.Duration) time.Duration {
	if d <= 0 {
		return def
	}
	return d
}

// response is a handler's materialized result, ready to write or cache.
type response struct {
	status      int
	contentType string
	body        []byte
	// genHeader, when non-empty, emits the X-Generation header.
	genHeader string
	// retryAfterSec, when > 0, emits a Retry-After header (shed
	// responses).
	retryAfterSec int
}

// jsonResponse marshals v as an indented JSON response.
func jsonResponse(status int, v any) response {
	body, err := JSONBody(v)
	if err != nil {
		return errResponse(http.StatusInternalServerError, "encoding response")
	}
	return response{status: status, contentType: "application/json", body: body}
}

// errResponse materializes the canonical ErrorBody envelope — the one
// helper every /v1 error path (400/404/410/500/503/504) goes through.
func errResponse(status int, msg string) response {
	return jsonResponse(status, ErrorBody{Error: msg, Status: status})
}

// resolveView resolves the generation a request addresses: the live
// generation by default, or the retained generation ?gen=N pins. On
// failure the returned view is nil and the response distinguishes a
// malformed number (400), a generation never built (404) and one
// evicted from the retention ring (410).
func (s *Server) resolveView(r *http.Request) (*View, response) {
	raw, ok := r.URL.Query()["gen"]
	if !ok {
		return s.src.Current(), response{}
	}
	return s.lookupGen(raw[0], "gen")
}

// lookupGen parses and resolves one generation query parameter.
func (s *Server) lookupGen(raw, param string) (*View, response) {
	n, err := strconv.ParseInt(raw, 10, 32)
	if err != nil || n < 0 {
		return nil, errResponse(http.StatusBadRequest,
			fmt.Sprintf("invalid ?%s=%q: want a non-negative generation number", param, raw))
	}
	v, st := s.src.Generation(int(n))
	switch st {
	case GenOK:
		return v, response{}
	case GenEvicted:
		return nil, errResponse(http.StatusGone,
			fmt.Sprintf("generation %d has been evicted from the retention ring", n))
	default:
		return nil, errResponse(http.StatusNotFound, fmt.Sprintf("unknown generation %d", n))
	}
}

// handle is the containment spine every route runs through: metrics
// accounting around a dispatch that applies (for load-controlled
// endpoints) admission control and the endpoint's deadline, and (for
// every endpoint) per-request panic isolation. The spine is the only
// code that touches the ResponseWriter, so an abandoned handler — one
// that outlived its deadline — can never race the 504 on the wire.
func (s *Server) handle(endpoint string, loadControlled bool, fn func(*http.Request) response) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := s.metrics.Begin()
		resp := s.dispatch(endpoint, loadControlled, fn, r)
		s.write(w, resp)
		s.metrics.End(endpoint, resp.status, start)
	}
}

// dispatch applies the overload policy to one request. The decision
// ladder: (1) admission — no free slot and no queue room, or the queue
// wait expires → 503 + Retry-After, the request never runs; (2)
// deadline — the handler runs but overshoots its endpoint budget → its
// context is canceled (partial-work cancellation) and the answer is
// 504; (3) the handler's materialized response. An admitted slot is
// held until the handler actually finishes — even past its deadline —
// so abandoned-but-running work still counts against MaxInFlight and a
// flood of timeouts cannot stack unbounded concurrency.
func (s *Server) dispatch(endpoint string, loadControlled bool, fn func(*http.Request) response, r *http.Request) response {
	release := func() {}
	if loadControlled && s.limiter != nil {
		rel, verdict := s.limiter.Acquire(r.Context().Done())
		if verdict != Admitted {
			s.metrics.Shed(endpoint)
			resp := errResponse(http.StatusServiceUnavailable, "overloaded: admission queue full or wait expired; retry later")
			resp.retryAfterSec = s.limiter.RetryAfterSeconds()
			return resp
		}
		release = rel
	}
	budget := s.budgets[endpoint]
	if budget <= 0 {
		defer release()
		return s.invoke(endpoint, fn, r)
	}
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	done := make(chan response, 1)
	go func() {
		defer release() // the slot is freed when the work truly ends
		done <- s.invoke(endpoint, fn, r.WithContext(ctx))
	}()
	select {
	case resp := <-done:
		return resp
	case <-s.after(budget):
		cancel() // stop context-aware partial work
		s.metrics.DeadlineExceeded(endpoint)
		return errResponse(http.StatusGatewayTimeout,
			fmt.Sprintf("request exceeded its %s budget", budget))
	}
}

// invoke runs one handler behind the panic barrier: a panicking handler
// becomes a 500 and a panics_total tick instead of a dead process. The
// recover lives here — inside whatever goroutine runs the handler —
// because a deferred recover in the caller cannot catch a panic on the
// deadline path's worker goroutine.
func (s *Server) invoke(endpoint string, fn func(*http.Request) response, r *http.Request) (resp response) {
	defer func() {
		if p := recover(); p != nil {
			s.metrics.Panicked(endpoint)
			resp = errResponse(http.StatusInternalServerError, "internal error (handler panic contained)")
		}
	}()
	return fn(r)
}

// viewHandler wraps a /v1 handler with generation resolution and the
// LRU response cache. Every /v1 response is a pure function of the
// (generation, canonicalized request) pair — each generation's Index is
// immutable — so hits and misses alike are cacheable, including
// deterministic errors like a 400 for a malformed ASN. The generation
// lands in the cache key (a swap can therefore never replay a stale
// generation's answer) and tags the entry so eviction can purge it.
// Responses produced after the request's context was canceled (a
// deadline 504, or partial work cut off mid-handler) are never cached:
// they are functions of timing, not of the (generation, request) pair.
func (s *Server) viewHandler(endpoint string, fn func(*View, *http.Request) response) func(*http.Request) response {
	return func(r *http.Request) response {
		view, errResp := s.resolveView(r)
		if view == nil {
			return errResp
		}
		gen := strconv.Itoa(view.Gen)
		key := "g" + gen + "\x00" + endpoint + "\x00" + canonicalKey(r)
		if hit, ok := s.cache.Get(key); ok {
			return response{status: hit.Status, contentType: hit.ContentType, body: hit.Body, genHeader: gen}
		}
		resp := fn(view, r)
		if r.Context().Err() == nil {
			s.cache.Put(key, view.Gen, CachedResponse{Status: resp.status, ContentType: resp.contentType, Body: resp.body})
		}
		resp.genHeader = gen
		return resp
	}
}

// canonicalKey reduces a request to its canonical lookup form so that
// equivalent requests share one cache entry: country codes upper-cased,
// ASNs numerically normalized (leading zeros dropped), search names
// name-normalized, the effective search limit spelled out. The
// generation is not part of this form — the cache wrapper prefixes it.
func canonicalKey(r *http.Request) string {
	if cc := r.PathValue("cc"); cc != "" {
		return "cc:" + CanonicalCC(cc)
	}
	if asn := r.PathValue("asn"); asn != "" {
		key := "asn-raw:" + asn
		if n, err := strconv.ParseUint(asn, 10, 32); err == nil {
			key = "asn:" + strconv.FormatUint(n, 10)
		}
		// The neighbors endpoint's class filter is part of its canonical
		// form (case-insensitive).
		if strings.HasPrefix(r.URL.Path, "/v1/graph/neighbors/") {
			key += "\x00class:" + strings.ToLower(r.URL.Query().Get("class"))
		}
		return key
	}
	if id := r.PathValue("id"); id != "" {
		return "id:" + id
	}
	if r.URL.Path == "/v1/search" {
		q := r.URL.Query()
		return "name:" + nameutil.Normalize(q.Get("name")) + "\x00limit:" + q.Get("limit")
	}
	if r.URL.Path == "/v1/graph/path" {
		q := r.URL.Query()
		return "from:" + canonASNParam(q.Get("from")) + "\x00to:" + canonASNParam(q.Get("to"))
	}
	if r.URL.Path == "/v1/hijacks" {
		q := r.URL.Query()
		return "victim:" + canonASNParam(q.Get("victim")) +
			"\x00cc:" + CanonicalCC(q.Get("cc")) +
			"\x00xb:" + canonBoolParam(q.Get("cross_border"))
	}
	return r.URL.Path
}

func (s *Server) write(w http.ResponseWriter, resp response) {
	w.Header().Set("Content-Type", resp.contentType)
	if resp.genHeader != "" {
		w.Header().Set(GenerationHeader, resp.genHeader)
	}
	if resp.retryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(resp.retryAfterSec))
	}
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body)
}

// --- /v1 handlers ----------------------------------------------------------

// ASNResponse answers "is this ASN state-owned, by whom, on what
// evidence".
type ASNResponse struct {
	ASN world.ASN `json:"asn"`
	// Status is "state-owned", "minority" or "none".
	Status       string                  `json:"status"`
	Organization *expand.OrgRecord       `json:"organization,omitempty"`
	SiblingASNs  []world.ASN             `json:"sibling_asns,omitempty"`
	Minority     []expand.MinorityRecord `json:"minority,omitempty"`
}

func (s *Server) handleASN(v *View, r *http.Request) response {
	raw := r.PathValue("asn")
	n, err := strconv.ParseUint(raw, 10, 32)
	if err != nil || n == 0 {
		return errResponse(http.StatusBadRequest, fmt.Sprintf("invalid ASN %q", raw))
	}
	a := world.ASN(n)
	org, minority, owned := v.Index.ASN(a)
	body := ASNResponse{ASN: a, Status: "none", Minority: minority}
	status := http.StatusNotFound
	switch {
	case owned:
		body.Status = "state-owned"
		body.Organization = org.Record
		body.SiblingASNs = org.ASNs
		status = http.StatusOK
	case len(minority) > 0:
		body.Status = "minority"
		status = http.StatusOK
	}
	return jsonResponse(status, body)
}

// OrgResponse is one organization with its ASNs. The membership list
// renders through ASNList — the same canonical sorted-ASN form the
// graph cone endpoint uses — so the record plane and the graph plane
// cannot drift.
type OrgResponse struct {
	Organization *expand.OrgRecord `json:"organization"`
	ASNs         ASNList           `json:"asn"`
}

func (s *Server) handleOrg(v *View, r *http.Request) response {
	id := r.PathValue("id")
	org, ok := v.Index.Org(id)
	if !ok {
		return errResponse(http.StatusNotFound, fmt.Sprintf("unknown organization %q", id))
	}
	return jsonResponse(http.StatusOK, OrgResponse{Organization: org.Record, ASNs: ASNList(org.ASNs)})
}

// CountryResponse lists a country's state-owned operators, including
// minority holdings.
type CountryResponse struct {
	CC            string                  `json:"cc"`
	Organizations []OrgResponse           `json:"organizations"`
	Minority      []expand.MinorityRecord `json:"minority,omitempty"`
}

func (s *Server) handleCountry(v *View, r *http.Request) response {
	cc := CanonicalCC(r.PathValue("cc"))
	if len(cc) != 2 || cc[0] < 'A' || cc[0] > 'Z' || cc[1] < 'A' || cc[1] > 'Z' {
		return errResponse(http.StatusBadRequest, fmt.Sprintf("invalid country code %q", r.PathValue("cc")))
	}
	orgs, minority := v.Index.Country(cc)
	body := CountryResponse{CC: cc, Organizations: []OrgResponse{}, Minority: minority}
	for _, o := range orgs {
		body.Organizations = append(body.Organizations, OrgResponse{Organization: o.Record, ASNs: ASNList(o.ASNs)})
	}
	return jsonResponse(http.StatusOK, body)
}

// SearchResponse is the fuzzy-name search result list. Query echoes the
// normalized form the results were computed from. Fallback reports that
// no organization shared a token with the query and the hits came from
// the full-scan fallback at its higher score floor — the fleet router
// needs the flag to merge shard results with single-process semantics
// (a shard with no token matches must not contribute fallback hits when
// another shard had real token candidates).
type SearchResponse struct {
	Query    string            `json:"query"`
	Hits     []SearchHitRecord `json:"hits"`
	Fallback bool              `json:"fallback,omitempty"`
}

// SearchHitRecord is one scored search hit.
type SearchHitRecord struct {
	Score        float64           `json:"score"`
	Organization *expand.OrgRecord `json:"organization"`
	ASNs         []world.ASN       `json:"asn"`
}

func (s *Server) handleSearch(v *View, r *http.Request) response {
	q := r.URL.Query()
	name := q.Get("name")
	if nameutil.Normalize(name) == "" {
		return errResponse(http.StatusBadRequest, "missing or empty ?name= query")
	}
	limit := s.limit
	if rawLimit := q.Get("limit"); rawLimit != "" {
		n, err := strconv.Atoi(rawLimit)
		if err != nil || n <= 0 {
			return errResponse(http.StatusBadRequest, fmt.Sprintf("invalid ?limit=%s", rawLimit))
		}
		if n < limit {
			limit = n
		}
	}
	hits, fallback := v.Index.SearchPartition(name, limit)
	body := SearchResponse{Query: nameutil.Normalize(name), Hits: []SearchHitRecord{}, Fallback: fallback}
	for _, h := range hits {
		body.Hits = append(body.Hits, SearchHitRecord{
			Score: h.Score, Organization: h.Org.Record, ASNs: h.Org.ASNs,
		})
	}
	return jsonResponse(http.StatusOK, body)
}

// DatasetResponse wraps the Listing-1 export with the generation it
// came from and the build's provenance.
type DatasetResponse struct {
	Generation int             `json:"generation"`
	Provenance Provenance      `json:"provenance"`
	Dataset    json.RawMessage `json:"dataset"`
}

func (s *Server) handleDataset(v *View, _ *http.Request) response {
	var buf bytes.Buffer
	if err := v.Index.Dataset().Export(&buf); err != nil {
		return errResponse(http.StatusInternalServerError, "exporting dataset")
	}
	return jsonResponse(http.StatusOK, DatasetResponse{
		Generation: v.Gen, Provenance: v.Provenance, Dataset: buf.Bytes(),
	})
}

// DiffResponse is the ownership-churn audit between two retained
// generations: Audit is exactly churn.RunAudit of `from`'s published
// dataset against `to`'s ground-truth world — what a maintainer of the
// paper's dataset would have to edit to bring the old list up to date.
type DiffResponse struct {
	From  int         `json:"from"`
	To    int         `json:"to"`
	Audit churn.Audit `json:"audit"`
}

func (s *Server) handleDiff(r *http.Request) response {
	q := r.URL.Query()
	rawFrom, okFrom := q["from"]
	rawTo, okTo := q["to"]
	if !okFrom || !okTo {
		return errResponse(http.StatusBadRequest, "need both ?from= and ?to= generation numbers")
	}
	from, errResp := s.lookupGen(rawFrom[0], "from")
	if from == nil {
		return errResp
	}
	to, errResp := s.lookupGen(rawTo[0], "to")
	if to == nil {
		return errResp
	}
	// The audit is the expensive part; if the deadline middleware already
	// canceled this request, skip it — the answer would be discarded.
	if r.Context().Err() != nil {
		return errResponse(http.StatusGatewayTimeout, "request canceled before the audit ran")
	}
	audit, ok := s.src.Diff(from, to)
	if !ok {
		return errResponse(http.StatusNotFound, "diff unavailable: this server's source keeps no ground truth")
	}
	return jsonResponse(http.StatusOK, DiffResponse{From: from.Gen, To: to.Gen, Audit: *audit})
}

// --- health and metrics ----------------------------------------------------

func (s *Server) handleHealthz(*http.Request) response {
	return jsonResponse(http.StatusOK, map[string]string{"status": "ok"})
}

// SourceStatus is one pipeline source's row of the readiness report.
type SourceStatus struct {
	Name        string `json:"name"`
	Status      string `json:"status"`
	Dropped     int    `json:"dropped,omitempty"`
	Corrupted   int    `json:"corrupted,omitempty"`
	Quarantined int    `json:"quarantined,omitempty"`
	Retries     int    `json:"retries,omitempty"`
	LastError   string `json:"last_error,omitempty"`
}

// StageStatus is one degraded pipeline stage.
type StageStatus struct {
	Name string `json:"name"`
	Note string `json:"note"`
}

// ReadyResponse summarizes the live generation's runner.Health: ready
// means no source went unavailable in the build that produced it
// (degraded-but-present sources still serve, they are just listed).
// During a hot reload the old generation keeps serving, so readiness
// stays green — Reloading only reports that a rebuild is in flight.
// Degraded (with DegradedReason) means the validation gate quarantined
// the newest rebuild(s) and the server is answering from its
// last-known-good generation: still ready (200), but the dataset has
// stopped advancing and an operator should look.
type ReadyResponse struct {
	Ready      bool `json:"ready"`
	Generation int  `json:"generation"`
	Reloading  bool `json:"reloading"`
	// Degraded state of the reload gate (see ReloadStatus).
	Degraded       bool           `json:"degraded"`
	DegradedReason string         `json:"degraded_reason,omitempty"`
	ReloadFailures int            `json:"reload_failures,omitempty"`
	ReloadGaveUp   bool           `json:"reload_gave_up,omitempty"`
	// Incremental-rebuild reuse counters (cumulative over the store's
	// lifetime), present only when the source rebuilds incrementally.
	Incremental  bool   `json:"incremental,omitempty"`
	NodesReused  uint64 `json:"nodes_reused,omitempty"`
	NodesRebuilt uint64 `json:"nodes_rebuilt,omitempty"`
	// Durable-archive state (see ReloadStatus): present only when the
	// source persists generations to the on-disk archive.
	Archive   bool `json:"archive,omitempty"`
	Recovered bool `json:"recovered,omitempty"`
	// RecoveredGen is a pointer so a warm start onto generation 0 — a
	// perfectly good recovered generation — still serializes instead of
	// vanishing behind omitempty's zero-value rule.
	RecoveredGen         *int           `json:"recovered_gen,omitempty"`
	SegmentsVerified     uint64         `json:"segments_verified,omitempty"`
	SegmentsQuarantined  uint64         `json:"segments_quarantined,omitempty"`
	ArchiveWrites        uint64         `json:"archive_writes,omitempty"`
	ArchiveWriteFailures uint64         `json:"archive_write_failures,omitempty"`
	ArchiveLastError     string         `json:"archive_last_error,omitempty"`
	ChaosSeverity        float64        `json:"chaos_severity"`
	Sources        []SourceStatus `json:"sources,omitempty"`
	DegradedSrc    []string       `json:"degraded_sources,omitempty"`
	Unavailable    []string       `json:"unavailable_sources,omitempty"`
	DegradedStages []StageStatus  `json:"degraded_stages,omitempty"`
}

func (s *Server) handleReadyz(*http.Request) response {
	v := s.src.Current()
	rs := s.src.ReloadStatus()
	body := ReadyResponse{
		Generation: v.Gen, Reloading: rs.Reloading,
		Degraded: rs.Degraded, DegradedReason: rs.Reason,
		ReloadFailures: rs.ConsecutiveFailures, ReloadGaveUp: rs.GaveUp,
		Incremental: rs.Incremental,
		NodesReused: rs.NodesReused, NodesRebuilt: rs.NodesRebuilt,
		Archive: rs.Archive, Recovered: rs.Recovered,
		SegmentsVerified: rs.SegmentsVerified, SegmentsQuarantined: rs.SegmentsQuarantined,
		ArchiveWrites: rs.ArchiveWrites, ArchiveWriteFailures: rs.ArchiveWriteFailures,
		ArchiveLastError: rs.ArchiveLastError,
	}
	if rs.Recovered {
		rg := rs.RecoveredGen
		body.RecoveredGen = &rg
	}
	if v.Health == nil {
		body.Ready = true
		return jsonResponse(http.StatusOK, body)
	}
	h := v.Health
	body.ChaosSeverity = h.Severity
	body.DegradedSrc = h.DegradedSources()
	body.Unavailable = h.UnavailableSources()
	for _, sh := range h.Sources() {
		body.Sources = append(body.Sources, SourceStatus{
			Name: sh.Name, Status: sh.Status.String(),
			Dropped: sh.Dropped, Corrupted: sh.Corrupted, Quarantined: sh.Quarantined,
			Retries: sh.Retries, LastError: sh.LastError,
		})
	}
	for _, st := range h.DegradedStages() {
		body.DegradedStages = append(body.DegradedStages, StageStatus{Name: st.Name, Note: st.Note})
	}
	body.Ready = h.Ready()
	status := http.StatusOK
	if !body.Ready {
		status = http.StatusServiceUnavailable
	}
	return jsonResponse(status, body)
}

func (s *Server) handleMetrics(*http.Request) response {
	v := s.src.Current()
	rs := s.src.ReloadStatus()
	snap := s.metrics.Snapshot()
	snap.Cache = s.cache.Stats()
	if s.limiter != nil {
		st := s.limiter.Stats()
		snap.Admission = &st
	}
	snap.Generation = v.Gen
	snap.Reloading = rs.Reloading
	snap.Degraded = rs.Degraded
	snap.DegradedReason = rs.Reason
	snap.Incremental = rs.Incremental
	snap.NodesReused = rs.NodesReused
	snap.NodesRebuilt = rs.NodesRebuilt
	snap.IndexReuses = rs.IndexReuses
	snap.GraphReuses = rs.GraphReuses
	snap.Archive = rs.Archive
	snap.Recovered = rs.Recovered
	if rs.Recovered {
		rg := rs.RecoveredGen
		snap.RecoveredGen = &rg
	}
	snap.SegmentsVerified = rs.SegmentsVerified
	snap.SegmentsQuarantined = rs.SegmentsQuarantined
	snap.ArchiveWrites = rs.ArchiveWrites
	snap.ArchiveWriteFailures = rs.ArchiveWriteFailures
	if h := v.Health; h != nil {
		snap.BuildWorkers = h.Workers
		for _, nt := range h.Timings {
			snap.BuildNodes = append(snap.BuildNodes, BuildNodeTiming{
				Node:   nt.Node,
				WallMS: float64(nt.Wall) / float64(time.Millisecond),
				Reused: nt.Reused,
			})
		}
	}
	return jsonResponse(http.StatusOK, snap)
}
