package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"stateowned/internal/churn"
	"stateowned/internal/expand"
	"stateowned/internal/nameutil"
	"stateowned/internal/runner"
	"stateowned/internal/world"
)

// Options configures a Server.
type Options struct {
	// Health is the pipeline run's degradation report when the server is
	// built over a single static index (New); /readyz summarizes it.
	// Nil means "no health information" and /readyz always reports
	// ready. Generational sources (NewDynamic) carry health per View
	// and ignore this field.
	Health *runner.Health
	// CacheSize bounds the LRU response cache in entries (<= 0 disables
	// caching).
	CacheSize int
	// Clock drives latency accounting (nil = WallClock).
	Clock Clock
	// SearchLimit caps /v1/search results (<= 0 = 10).
	SearchLimit int
}

// GenerationHeader is the response header naming the generation a /v1
// answer was served from. The hot-reload soak test keys its
// consistency check on it: a response's body must match a pinned
// ?gen=<header> replay byte for byte.
const GenerationHeader = "X-Generation"

// Server serves a generational dataset Source over HTTP. All state
// reached by handlers is either immutable once published (Views and
// their Indexes) or internally synchronized (source, cache, metrics),
// so the server is safe under arbitrary request concurrency — including
// concurrent generation swaps: a request resolves its View once and
// answers entirely from it.
type Server struct {
	src     Source
	cache   *Cache
	metrics *Metrics
	mux     *http.ServeMux
	limit   int
}

// New assembles a Server over a single compiled Index: a static,
// generation-0-only source with no churn schedule. Use NewDynamic for
// a hot-reloading generational source (internal/snapshot).
func New(idx *Index, opts Options) *Server {
	return NewDynamic(&staticSource{view: View{
		Index:      idx,
		Health:     opts.Health,
		Provenance: Provenance{Origin: "static"},
	}}, opts)
}

// NewDynamic assembles a Server over a generational Source. The server
// itself holds no dataset state: every request resolves a View (the
// live generation, or a retained one pinned with ?gen=N) and answers
// from its immutable index.
func NewDynamic(src Source, opts Options) *Server {
	s := &Server{
		src:     src,
		cache:   NewCache(opts.CacheSize),
		metrics: NewMetrics(opts.Clock),
		mux:     http.NewServeMux(),
		limit:   opts.SearchLimit,
	}
	if s.limit <= 0 {
		s.limit = 10
	}
	s.mux.HandleFunc("GET /v1/asn/{asn}", s.cached("/v1/asn", s.handleASN))
	s.mux.HandleFunc("GET /v1/country/{cc}", s.cached("/v1/country", s.handleCountry))
	s.mux.HandleFunc("GET /v1/org/{id}", s.cached("/v1/org", s.handleOrg))
	s.mux.HandleFunc("GET /v1/search", s.cached("/v1/search", s.handleSearch))
	s.mux.HandleFunc("GET /v1/dataset", s.cached("/v1/dataset", s.handleDataset))
	s.mux.HandleFunc("GET /v1/diff", s.instrumented("/v1/diff", s.handleDiff))
	s.mux.HandleFunc("GET /healthz", s.instrumented("/healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.instrumented("/readyz", s.handleReadyz))
	s.mux.HandleFunc("GET /metrics", s.instrumented("/metrics", s.handleMetrics))
	s.mux.HandleFunc("/", s.instrumented("other", func(*http.Request) response {
		return errResponse(http.StatusNotFound, "unknown endpoint")
	}))
	return s
}

// ServeHTTP dispatches to the route table.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics exposes the registry (snapshots drive /metrics and tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// CacheStats exposes the response-cache accounting.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// InvalidateGeneration purges every cached response that was answered
// from the given generation. The snapshot store calls this when a
// generation leaves the retention ring: entries of still-retained
// generations remain valid (responses are pure functions of
// (generation, canonical request)), so only evicted generations need
// purging — and a stale answer cannot survive a swap in any case,
// because unpinned requests resolve their generation before the cache
// is consulted.
func (s *Server) InvalidateGeneration(gen int) { s.cache.PurgeGeneration(gen) }

// Serve accepts connections on ln until ctx is canceled, then shuts the
// server down gracefully (in-flight requests get drainTimeout to
// finish). It returns nil on a clean context-driven shutdown.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	const drainTimeout = 5 * time.Second
	sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	<-errc // always http.ErrServerClosed after Shutdown
	return nil
}

// response is a handler's materialized result, ready to write or cache.
type response struct {
	status      int
	contentType string
	body        []byte
}

// jsonResponse marshals v as an indented JSON response.
func jsonResponse(status int, v any) response {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return errResponse(http.StatusInternalServerError, "encoding response")
	}
	return response{status: status, contentType: "application/json", body: buf.Bytes()}
}

type errorBody struct {
	Error string `json:"error"`
}

func errResponse(status int, msg string) response {
	return jsonResponse(status, errorBody{Error: msg})
}

// resolveView resolves the generation a request addresses: the live
// generation by default, or the retained generation ?gen=N pins. On
// failure the returned view is nil and the response distinguishes a
// malformed number (400), a generation never built (404) and one
// evicted from the retention ring (410).
func (s *Server) resolveView(r *http.Request) (*View, response) {
	raw, ok := r.URL.Query()["gen"]
	if !ok {
		return s.src.Current(), response{}
	}
	return s.lookupGen(raw[0], "gen")
}

// lookupGen parses and resolves one generation query parameter.
func (s *Server) lookupGen(raw, param string) (*View, response) {
	n, err := strconv.ParseInt(raw, 10, 32)
	if err != nil || n < 0 {
		return nil, errResponse(http.StatusBadRequest,
			fmt.Sprintf("invalid ?%s=%q: want a non-negative generation number", param, raw))
	}
	v, st := s.src.Generation(int(n))
	switch st {
	case GenOK:
		return v, response{}
	case GenEvicted:
		return nil, errResponse(http.StatusGone,
			fmt.Sprintf("generation %d has been evicted from the retention ring", n))
	default:
		return nil, errResponse(http.StatusNotFound, fmt.Sprintf("unknown generation %d", n))
	}
}

// instrumented wraps a handler with metrics accounting only (the
// health/metrics/diff endpoints must never serve cached state).
func (s *Server) instrumented(endpoint string, fn func(*http.Request) response) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := s.metrics.Begin()
		resp := fn(r)
		s.write(w, resp)
		s.metrics.End(endpoint, resp.status, start)
	}
}

// cached wraps a /v1 handler with generation resolution, metrics, and
// the LRU response cache. Every /v1 response is a pure function of the
// (generation, canonicalized request) pair — each generation's Index is
// immutable — so hits and misses alike are cacheable, including
// deterministic errors like a 400 for a malformed ASN. The generation
// lands in the cache key (a swap can therefore never replay a stale
// generation's answer) and tags the entry so eviction can purge it.
func (s *Server) cached(endpoint string, fn func(*View, *http.Request) response) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := s.metrics.Begin()
		view, errResp := s.resolveView(r)
		if view == nil {
			s.write(w, errResp)
			s.metrics.End(endpoint, errResp.status, start)
			return
		}
		w.Header().Set(GenerationHeader, strconv.Itoa(view.Gen))
		key := "g" + strconv.Itoa(view.Gen) + "\x00" + endpoint + "\x00" + canonicalKey(r)
		if hit, ok := s.cache.Get(key); ok {
			s.write(w, response{status: hit.Status, contentType: hit.ContentType, body: hit.Body})
			s.metrics.End(endpoint, hit.Status, start)
			return
		}
		resp := fn(view, r)
		s.cache.Put(key, view.Gen, CachedResponse{Status: resp.status, ContentType: resp.contentType, Body: resp.body})
		s.write(w, resp)
		s.metrics.End(endpoint, resp.status, start)
	}
}

// canonicalKey reduces a request to its canonical lookup form so that
// equivalent requests share one cache entry: country codes upper-cased,
// ASNs numerically normalized (leading zeros dropped), search names
// name-normalized, the effective search limit spelled out. The
// generation is not part of this form — the cache wrapper prefixes it.
func canonicalKey(r *http.Request) string {
	if cc := r.PathValue("cc"); cc != "" {
		return "cc:" + CanonicalCC(cc)
	}
	if asn := r.PathValue("asn"); asn != "" {
		if n, err := strconv.ParseUint(asn, 10, 32); err == nil {
			return "asn:" + strconv.FormatUint(n, 10)
		}
		return "asn-raw:" + asn
	}
	if id := r.PathValue("id"); id != "" {
		return "id:" + id
	}
	if r.URL.Path == "/v1/search" {
		q := r.URL.Query()
		return "name:" + nameutil.Normalize(q.Get("name")) + "\x00limit:" + q.Get("limit")
	}
	return r.URL.Path
}

func (s *Server) write(w http.ResponseWriter, resp response) {
	w.Header().Set("Content-Type", resp.contentType)
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body)
}

// --- /v1 handlers ----------------------------------------------------------

// ASNResponse answers "is this ASN state-owned, by whom, on what
// evidence".
type ASNResponse struct {
	ASN world.ASN `json:"asn"`
	// Status is "state-owned", "minority" or "none".
	Status       string                  `json:"status"`
	Organization *expand.OrgRecord       `json:"organization,omitempty"`
	SiblingASNs  []world.ASN             `json:"sibling_asns,omitempty"`
	Minority     []expand.MinorityRecord `json:"minority,omitempty"`
}

func (s *Server) handleASN(v *View, r *http.Request) response {
	raw := r.PathValue("asn")
	n, err := strconv.ParseUint(raw, 10, 32)
	if err != nil || n == 0 {
		return errResponse(http.StatusBadRequest, fmt.Sprintf("invalid ASN %q", raw))
	}
	a := world.ASN(n)
	org, minority, owned := v.Index.ASN(a)
	body := ASNResponse{ASN: a, Status: "none", Minority: minority}
	status := http.StatusNotFound
	switch {
	case owned:
		body.Status = "state-owned"
		body.Organization = org.Record
		body.SiblingASNs = org.ASNs
		status = http.StatusOK
	case len(minority) > 0:
		body.Status = "minority"
		status = http.StatusOK
	}
	return jsonResponse(status, body)
}

// OrgResponse is one organization with its ASNs.
type OrgResponse struct {
	Organization *expand.OrgRecord `json:"organization"`
	ASNs         []world.ASN       `json:"asn"`
}

func (s *Server) handleOrg(v *View, r *http.Request) response {
	id := r.PathValue("id")
	org, ok := v.Index.Org(id)
	if !ok {
		return errResponse(http.StatusNotFound, fmt.Sprintf("unknown organization %q", id))
	}
	return jsonResponse(http.StatusOK, OrgResponse{Organization: org.Record, ASNs: org.ASNs})
}

// CountryResponse lists a country's state-owned operators, including
// minority holdings.
type CountryResponse struct {
	CC            string                  `json:"cc"`
	Organizations []OrgResponse           `json:"organizations"`
	Minority      []expand.MinorityRecord `json:"minority,omitempty"`
}

func (s *Server) handleCountry(v *View, r *http.Request) response {
	cc := CanonicalCC(r.PathValue("cc"))
	if len(cc) != 2 || cc[0] < 'A' || cc[0] > 'Z' || cc[1] < 'A' || cc[1] > 'Z' {
		return errResponse(http.StatusBadRequest, fmt.Sprintf("invalid country code %q", r.PathValue("cc")))
	}
	orgs, minority := v.Index.Country(cc)
	body := CountryResponse{CC: cc, Organizations: []OrgResponse{}, Minority: minority}
	for _, o := range orgs {
		body.Organizations = append(body.Organizations, OrgResponse{Organization: o.Record, ASNs: o.ASNs})
	}
	return jsonResponse(http.StatusOK, body)
}

// SearchResponse is the fuzzy-name search result list. Query echoes the
// normalized form the results were computed from.
type SearchResponse struct {
	Query string            `json:"query"`
	Hits  []SearchHitRecord `json:"hits"`
}

// SearchHitRecord is one scored search hit.
type SearchHitRecord struct {
	Score        float64           `json:"score"`
	Organization *expand.OrgRecord `json:"organization"`
	ASNs         []world.ASN       `json:"asn"`
}

func (s *Server) handleSearch(v *View, r *http.Request) response {
	q := r.URL.Query()
	name := q.Get("name")
	if nameutil.Normalize(name) == "" {
		return errResponse(http.StatusBadRequest, "missing or empty ?name= query")
	}
	limit := s.limit
	if rawLimit := q.Get("limit"); rawLimit != "" {
		n, err := strconv.Atoi(rawLimit)
		if err != nil || n <= 0 {
			return errResponse(http.StatusBadRequest, fmt.Sprintf("invalid ?limit=%s", rawLimit))
		}
		if n < limit {
			limit = n
		}
	}
	body := SearchResponse{Query: nameutil.Normalize(name), Hits: []SearchHitRecord{}}
	for _, h := range v.Index.Search(name, limit) {
		body.Hits = append(body.Hits, SearchHitRecord{
			Score: h.Score, Organization: h.Org.Record, ASNs: h.Org.ASNs,
		})
	}
	return jsonResponse(http.StatusOK, body)
}

// DatasetResponse wraps the Listing-1 export with the generation it
// came from and the build's provenance.
type DatasetResponse struct {
	Generation int             `json:"generation"`
	Provenance Provenance      `json:"provenance"`
	Dataset    json.RawMessage `json:"dataset"`
}

func (s *Server) handleDataset(v *View, _ *http.Request) response {
	var buf bytes.Buffer
	if err := v.Index.Dataset().Export(&buf); err != nil {
		return errResponse(http.StatusInternalServerError, "exporting dataset")
	}
	return jsonResponse(http.StatusOK, DatasetResponse{
		Generation: v.Gen, Provenance: v.Provenance, Dataset: buf.Bytes(),
	})
}

// DiffResponse is the ownership-churn audit between two retained
// generations: Audit is exactly churn.RunAudit of `from`'s published
// dataset against `to`'s ground-truth world — what a maintainer of the
// paper's dataset would have to edit to bring the old list up to date.
type DiffResponse struct {
	From  int         `json:"from"`
	To    int         `json:"to"`
	Audit churn.Audit `json:"audit"`
}

func (s *Server) handleDiff(r *http.Request) response {
	q := r.URL.Query()
	rawFrom, okFrom := q["from"]
	rawTo, okTo := q["to"]
	if !okFrom || !okTo {
		return errResponse(http.StatusBadRequest, "need both ?from= and ?to= generation numbers")
	}
	from, errResp := s.lookupGen(rawFrom[0], "from")
	if from == nil {
		return errResp
	}
	to, errResp := s.lookupGen(rawTo[0], "to")
	if to == nil {
		return errResp
	}
	audit, ok := s.src.Diff(from, to)
	if !ok {
		return errResponse(http.StatusNotFound, "diff unavailable: this server's source keeps no ground truth")
	}
	return jsonResponse(http.StatusOK, DiffResponse{From: from.Gen, To: to.Gen, Audit: *audit})
}

// --- health and metrics ----------------------------------------------------

func (s *Server) handleHealthz(*http.Request) response {
	return jsonResponse(http.StatusOK, map[string]string{"status": "ok"})
}

// SourceStatus is one pipeline source's row of the readiness report.
type SourceStatus struct {
	Name        string `json:"name"`
	Status      string `json:"status"`
	Dropped     int    `json:"dropped,omitempty"`
	Corrupted   int    `json:"corrupted,omitempty"`
	Quarantined int    `json:"quarantined,omitempty"`
	Retries     int    `json:"retries,omitempty"`
	LastError   string `json:"last_error,omitempty"`
}

// StageStatus is one degraded pipeline stage.
type StageStatus struct {
	Name string `json:"name"`
	Note string `json:"note"`
}

// ReadyResponse summarizes the live generation's runner.Health: ready
// means no source went unavailable in the build that produced it
// (degraded-but-present sources still serve, they are just listed).
// During a hot reload the old generation keeps serving, so readiness
// stays green — Reloading only reports that a rebuild is in flight.
type ReadyResponse struct {
	Ready          bool           `json:"ready"`
	Generation     int            `json:"generation"`
	Reloading      bool           `json:"reloading"`
	ChaosSeverity  float64        `json:"chaos_severity"`
	Sources        []SourceStatus `json:"sources,omitempty"`
	Degraded       []string       `json:"degraded_sources,omitempty"`
	Unavailable    []string       `json:"unavailable_sources,omitempty"`
	DegradedStages []StageStatus  `json:"degraded_stages,omitempty"`
}

func (s *Server) handleReadyz(*http.Request) response {
	v := s.src.Current()
	body := ReadyResponse{Generation: v.Gen, Reloading: s.src.Reloading()}
	if v.Health == nil {
		body.Ready = true
		return jsonResponse(http.StatusOK, body)
	}
	h := v.Health
	body.ChaosSeverity = h.Severity
	body.Degraded = h.DegradedSources()
	body.Unavailable = h.UnavailableSources()
	for _, sh := range h.Sources() {
		body.Sources = append(body.Sources, SourceStatus{
			Name: sh.Name, Status: sh.Status.String(),
			Dropped: sh.Dropped, Corrupted: sh.Corrupted, Quarantined: sh.Quarantined,
			Retries: sh.Retries, LastError: sh.LastError,
		})
	}
	for _, st := range h.DegradedStages() {
		body.DegradedStages = append(body.DegradedStages, StageStatus{Name: st.Name, Note: st.Note})
	}
	body.Ready = h.Ready()
	status := http.StatusOK
	if !body.Ready {
		status = http.StatusServiceUnavailable
	}
	return jsonResponse(status, body)
}

func (s *Server) handleMetrics(*http.Request) response {
	v := s.src.Current()
	snap := s.metrics.Snapshot()
	snap.Cache = s.cache.Stats()
	snap.Generation = v.Gen
	snap.Reloading = s.src.Reloading()
	if h := v.Health; h != nil {
		snap.BuildWorkers = h.Workers
		for _, nt := range h.Timings {
			snap.BuildNodes = append(snap.BuildNodes, BuildNodeTiming{
				Node:   nt.Node,
				WallMS: float64(nt.Wall) / float64(time.Millisecond),
			})
		}
	}
	return jsonResponse(http.StatusOK, snap)
}
