package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"stateowned/internal/expand"
	"stateowned/internal/nameutil"
	"stateowned/internal/runner"
	"stateowned/internal/world"
)

// Options configures a Server.
type Options struct {
	// Health is the pipeline run's degradation report; /readyz summarizes
	// it. Nil means "no health information" and /readyz always reports
	// ready.
	Health *runner.Health
	// CacheSize bounds the LRU response cache in entries (<= 0 disables
	// caching).
	CacheSize int
	// Clock drives latency accounting (nil = WallClock).
	Clock Clock
	// SearchLimit caps /v1/search results (<= 0 = 10).
	SearchLimit int
}

// Server serves an Index over HTTP. All state reached by handlers is
// either immutable (the Index) or internally synchronized (cache,
// metrics), so the server is safe under arbitrary request concurrency.
type Server struct {
	idx     *Index
	health  *runner.Health
	cache   *Cache
	metrics *Metrics
	mux     *http.ServeMux
	limit   int
}

// New assembles a Server over a compiled Index.
func New(idx *Index, opts Options) *Server {
	s := &Server{
		idx:     idx,
		health:  opts.Health,
		cache:   NewCache(opts.CacheSize),
		metrics: NewMetrics(opts.Clock),
		mux:     http.NewServeMux(),
		limit:   opts.SearchLimit,
	}
	if s.limit <= 0 {
		s.limit = 10
	}
	s.mux.HandleFunc("GET /v1/asn/{asn}", s.cached("/v1/asn", s.handleASN))
	s.mux.HandleFunc("GET /v1/country/{cc}", s.cached("/v1/country", s.handleCountry))
	s.mux.HandleFunc("GET /v1/org/{id}", s.cached("/v1/org", s.handleOrg))
	s.mux.HandleFunc("GET /v1/search", s.cached("/v1/search", s.handleSearch))
	s.mux.HandleFunc("GET /v1/dataset", s.cached("/v1/dataset", s.handleDataset))
	s.mux.HandleFunc("GET /healthz", s.instrumented("/healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.instrumented("/readyz", s.handleReadyz))
	s.mux.HandleFunc("GET /metrics", s.instrumented("/metrics", s.handleMetrics))
	s.mux.HandleFunc("/", s.instrumented("other", func(*http.Request) response {
		return errResponse(http.StatusNotFound, "unknown endpoint")
	}))
	return s
}

// ServeHTTP dispatches to the route table.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics exposes the registry (snapshots drive /metrics and tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// CacheStats exposes the response-cache accounting.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// Serve accepts connections on ln until ctx is canceled, then shuts the
// server down gracefully (in-flight requests get drainTimeout to
// finish). It returns nil on a clean context-driven shutdown.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	const drainTimeout = 5 * time.Second
	sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	<-errc // always http.ErrServerClosed after Shutdown
	return nil
}

// response is a handler's materialized result, ready to write or cache.
type response struct {
	status      int
	contentType string
	body        []byte
}

// jsonResponse marshals v as an indented JSON response.
func jsonResponse(status int, v any) response {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return errResponse(http.StatusInternalServerError, "encoding response")
	}
	return response{status: status, contentType: "application/json", body: buf.Bytes()}
}

type errorBody struct {
	Error string `json:"error"`
}

func errResponse(status int, msg string) response {
	return jsonResponse(status, errorBody{Error: msg})
}

// instrumented wraps a handler with metrics accounting only (the
// health/metrics endpoints must never serve stale cached state).
func (s *Server) instrumented(endpoint string, fn func(*http.Request) response) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := s.metrics.Begin()
		resp := fn(r)
		s.write(w, resp)
		s.metrics.End(endpoint, resp.status, start)
	}
}

// cached wraps a handler with metrics plus the LRU response cache.
// Every /v1 response is a pure function of the canonicalized request
// (the Index is immutable), so hits and misses alike are cacheable —
// including deterministic errors like a 400 for a malformed ASN.
func (s *Server) cached(endpoint string, fn func(*http.Request) response) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := s.metrics.Begin()
		key := endpoint + "\x00" + canonicalKey(r)
		if hit, ok := s.cache.Get(key); ok {
			s.write(w, response{status: hit.Status, contentType: hit.ContentType, body: hit.Body})
			s.metrics.End(endpoint, hit.Status, start)
			return
		}
		resp := fn(r)
		s.cache.Put(key, CachedResponse{Status: resp.status, ContentType: resp.contentType, Body: resp.body})
		s.write(w, resp)
		s.metrics.End(endpoint, resp.status, start)
	}
}

// canonicalKey reduces a request to its canonical lookup form so that
// equivalent requests share one cache entry: country codes upper-cased,
// ASNs numerically normalized (leading zeros dropped), search names
// name-normalized, the effective search limit spelled out.
func canonicalKey(r *http.Request) string {
	if cc := r.PathValue("cc"); cc != "" {
		return "cc:" + CanonicalCC(cc)
	}
	if asn := r.PathValue("asn"); asn != "" {
		if n, err := strconv.ParseUint(asn, 10, 32); err == nil {
			return "asn:" + strconv.FormatUint(n, 10)
		}
		return "asn-raw:" + asn
	}
	if id := r.PathValue("id"); id != "" {
		return "id:" + id
	}
	if r.URL.Path == "/v1/search" {
		q := r.URL.Query()
		return "name:" + nameutil.Normalize(q.Get("name")) + "\x00limit:" + q.Get("limit")
	}
	return r.URL.Path
}

func (s *Server) write(w http.ResponseWriter, resp response) {
	w.Header().Set("Content-Type", resp.contentType)
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body)
}

// --- /v1 handlers ----------------------------------------------------------

// ASNResponse answers "is this ASN state-owned, by whom, on what
// evidence".
type ASNResponse struct {
	ASN world.ASN `json:"asn"`
	// Status is "state-owned", "minority" or "none".
	Status       string                  `json:"status"`
	Organization *expand.OrgRecord       `json:"organization,omitempty"`
	SiblingASNs  []world.ASN             `json:"sibling_asns,omitempty"`
	Minority     []expand.MinorityRecord `json:"minority,omitempty"`
}

func (s *Server) handleASN(r *http.Request) response {
	raw := r.PathValue("asn")
	n, err := strconv.ParseUint(raw, 10, 32)
	if err != nil || n == 0 {
		return errResponse(http.StatusBadRequest, fmt.Sprintf("invalid ASN %q", raw))
	}
	a := world.ASN(n)
	org, minority, owned := s.idx.ASN(a)
	body := ASNResponse{ASN: a, Status: "none", Minority: minority}
	status := http.StatusNotFound
	switch {
	case owned:
		body.Status = "state-owned"
		body.Organization = org.Record
		body.SiblingASNs = org.ASNs
		status = http.StatusOK
	case len(minority) > 0:
		body.Status = "minority"
		status = http.StatusOK
	}
	return jsonResponse(status, body)
}

// OrgResponse is one organization with its ASNs.
type OrgResponse struct {
	Organization *expand.OrgRecord `json:"organization"`
	ASNs         []world.ASN       `json:"asn"`
}

func (s *Server) handleOrg(r *http.Request) response {
	id := r.PathValue("id")
	org, ok := s.idx.Org(id)
	if !ok {
		return errResponse(http.StatusNotFound, fmt.Sprintf("unknown organization %q", id))
	}
	return jsonResponse(http.StatusOK, OrgResponse{Organization: org.Record, ASNs: org.ASNs})
}

// CountryResponse lists a country's state-owned operators, including
// minority holdings.
type CountryResponse struct {
	CC            string                  `json:"cc"`
	Organizations []OrgResponse           `json:"organizations"`
	Minority      []expand.MinorityRecord `json:"minority,omitempty"`
}

func (s *Server) handleCountry(r *http.Request) response {
	cc := CanonicalCC(r.PathValue("cc"))
	if len(cc) != 2 || cc[0] < 'A' || cc[0] > 'Z' || cc[1] < 'A' || cc[1] > 'Z' {
		return errResponse(http.StatusBadRequest, fmt.Sprintf("invalid country code %q", r.PathValue("cc")))
	}
	orgs, minority := s.idx.Country(cc)
	body := CountryResponse{CC: cc, Organizations: []OrgResponse{}, Minority: minority}
	for _, o := range orgs {
		body.Organizations = append(body.Organizations, OrgResponse{Organization: o.Record, ASNs: o.ASNs})
	}
	return jsonResponse(http.StatusOK, body)
}

// SearchResponse is the fuzzy-name search result list. Query echoes the
// normalized form the results were computed from.
type SearchResponse struct {
	Query string            `json:"query"`
	Hits  []SearchHitRecord `json:"hits"`
}

// SearchHitRecord is one scored search hit.
type SearchHitRecord struct {
	Score        float64           `json:"score"`
	Organization *expand.OrgRecord `json:"organization"`
	ASNs         []world.ASN       `json:"asn"`
}

func (s *Server) handleSearch(r *http.Request) response {
	q := r.URL.Query()
	name := q.Get("name")
	if nameutil.Normalize(name) == "" {
		return errResponse(http.StatusBadRequest, "missing or empty ?name= query")
	}
	limit := s.limit
	if rawLimit := q.Get("limit"); rawLimit != "" {
		n, err := strconv.Atoi(rawLimit)
		if err != nil || n <= 0 {
			return errResponse(http.StatusBadRequest, fmt.Sprintf("invalid ?limit=%s", rawLimit))
		}
		if n < limit {
			limit = n
		}
	}
	body := SearchResponse{Query: nameutil.Normalize(name), Hits: []SearchHitRecord{}}
	for _, h := range s.idx.Search(name, limit) {
		body.Hits = append(body.Hits, SearchHitRecord{
			Score: h.Score, Organization: h.Org.Record, ASNs: h.Org.ASNs,
		})
	}
	return jsonResponse(http.StatusOK, body)
}

func (s *Server) handleDataset(*http.Request) response {
	var buf bytes.Buffer
	if err := s.idx.Dataset().Export(&buf); err != nil {
		return errResponse(http.StatusInternalServerError, "exporting dataset")
	}
	return response{status: http.StatusOK, contentType: "application/json", body: buf.Bytes()}
}

// --- health and metrics ----------------------------------------------------

func (s *Server) handleHealthz(*http.Request) response {
	return jsonResponse(http.StatusOK, map[string]string{"status": "ok"})
}

// SourceStatus is one pipeline source's row of the readiness report.
type SourceStatus struct {
	Name        string `json:"name"`
	Status      string `json:"status"`
	Dropped     int    `json:"dropped,omitempty"`
	Corrupted   int    `json:"corrupted,omitempty"`
	Quarantined int    `json:"quarantined,omitempty"`
	Retries     int    `json:"retries,omitempty"`
	LastError   string `json:"last_error,omitempty"`
}

// StageStatus is one degraded pipeline stage.
type StageStatus struct {
	Name string `json:"name"`
	Note string `json:"note"`
}

// ReadyResponse summarizes the pipeline run's runner.Health: ready means
// no source went unavailable (degraded-but-present sources still serve,
// they are just listed).
type ReadyResponse struct {
	Ready          bool           `json:"ready"`
	ChaosSeverity  float64        `json:"chaos_severity"`
	Sources        []SourceStatus `json:"sources,omitempty"`
	Degraded       []string       `json:"degraded_sources,omitempty"`
	Unavailable    []string       `json:"unavailable_sources,omitempty"`
	DegradedStages []StageStatus  `json:"degraded_stages,omitempty"`
}

func (s *Server) handleReadyz(*http.Request) response {
	if s.health == nil {
		return jsonResponse(http.StatusOK, ReadyResponse{Ready: true})
	}
	h := s.health
	body := ReadyResponse{
		ChaosSeverity: h.Severity,
		Degraded:      h.DegradedSources(),
		Unavailable:   h.UnavailableSources(),
	}
	for _, sh := range h.Sources() {
		body.Sources = append(body.Sources, SourceStatus{
			Name: sh.Name, Status: sh.Status.String(),
			Dropped: sh.Dropped, Corrupted: sh.Corrupted, Quarantined: sh.Quarantined,
			Retries: sh.Retries, LastError: sh.LastError,
		})
	}
	for _, st := range h.DegradedStages() {
		body.DegradedStages = append(body.DegradedStages, StageStatus{Name: st.Name, Note: st.Note})
	}
	body.Ready = len(body.Unavailable) == 0
	status := http.StatusOK
	if !body.Ready {
		status = http.StatusServiceUnavailable
	}
	return jsonResponse(status, body)
}

func (s *Server) handleMetrics(*http.Request) response {
	snap := s.metrics.Snapshot()
	snap.Cache = s.cache.Stats()
	if s.health != nil {
		snap.BuildWorkers = s.health.Workers
		for _, nt := range s.health.Timings {
			snap.BuildNodes = append(snap.BuildNodes, BuildNodeTiming{
				Node:   nt.Node,
				WallMS: float64(nt.Wall) / float64(time.Millisecond),
			})
		}
	}
	return jsonResponse(http.StatusOK, snap)
}
