package serve

import (
	"sync"
	"time"
)

// After is the injectable timer the server's waiting paths run on: the
// admission queue's deadline and the per-request handler budget both
// wait on the channel it returns. Production uses time.After; tests
// inject a hand-fired channel so overload scenarios are deterministic
// and finish in microseconds — the same reason latency accounting runs
// on the virtual-unit Clock.
type After func(d time.Duration) <-chan time.Time

// Admission-control bounds. The defaults are deliberately permissive:
// they exist to survive floods, not to throttle normal traffic.
const (
	// DefaultMaxInFlight is the admitted-concurrency bound when
	// AdmissionConfig.MaxInFlight is 0.
	DefaultMaxInFlight = 256
	// DefaultMaxQueue is the wait-queue bound when MaxQueue is 0.
	DefaultMaxQueue = 256
	// DefaultQueueWait is the queue deadline when QueueWait is 0.
	DefaultQueueWait = 100 * time.Millisecond
	// DefaultRetryAfter is the Retry-After hint when RetryAfter is 0.
	DefaultRetryAfter = 1 * time.Second
	// MaxInFlightCap clamps MaxInFlight and MaxQueue: beyond it, more
	// concurrency only deepens collapse (and the slot channel's
	// allocation would grow without bound).
	MaxInFlightCap = 1 << 16
)

// AdmissionConfig bounds how much concurrent work the server accepts
// before it starts shedding load. The policy is shed-don't-collapse: a
// bounded number of requests run, a bounded number wait briefly for a
// slot, and everything beyond that is refused immediately with 503 +
// Retry-After so admitted requests keep their latency.
type AdmissionConfig struct {
	// MaxInFlight is the number of concurrently admitted requests
	// (0 = DefaultMaxInFlight; clamped to MaxInFlightCap).
	MaxInFlight int
	// MaxQueue is how many requests may wait for a slot beyond
	// MaxInFlight (0 = DefaultMaxQueue; negative = no queue, shed
	// immediately when saturated).
	MaxQueue int
	// QueueWait is the longest a queued request waits for a slot before
	// being shed (0 = DefaultQueueWait; negative = no waiting).
	QueueWait time.Duration
	// RetryAfter is the Retry-After hint attached to shed responses
	// (0 = DefaultRetryAfter).
	RetryAfter time.Duration
}

// Normalize resolves zero values to defaults and clamps out-of-range
// values into safe bounds. It never rejects: any input produces a
// config a Limiter can run on without panicking or deadlocking (the
// FuzzAdmissionConfig contract; cmd/serve additionally exits 2 on
// negative flag values before ever building a config).
func (c AdmissionConfig) Normalize() AdmissionConfig {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	if c.MaxInFlight > MaxInFlightCap {
		c.MaxInFlight = MaxInFlightCap
	}
	switch {
	case c.MaxQueue == 0:
		c.MaxQueue = DefaultMaxQueue
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	case c.MaxQueue > MaxInFlightCap:
		c.MaxQueue = MaxInFlightCap
	}
	switch {
	case c.QueueWait == 0:
		c.QueueWait = DefaultQueueWait
	case c.QueueWait < 0:
		// No waiting means the queue is unusable: shed at saturation.
		c.QueueWait = 0
		c.MaxQueue = 0
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	return c
}

// Verdict is the outcome of an admission attempt.
type Verdict uint8

// Admission outcomes.
const (
	// Admitted means a slot was acquired; the caller must release it.
	Admitted Verdict = iota
	// ShedQueueFull means both the in-flight slots and the wait queue
	// were saturated: the request was refused without waiting.
	ShedQueueFull
	// ShedTimeout means the request waited QueueWait without a slot
	// freeing up and was refused.
	ShedTimeout
	// ShedCanceled means the client gave up (context canceled) while
	// queued.
	ShedCanceled
)

// Limiter is the bounded in-flight admission controller: a slot channel
// caps concurrently admitted requests, a counted wait queue absorbs
// short bursts, and everything beyond that is shed. A nil *Limiter
// admits everything (admission control off), so callers never branch.
type Limiter struct {
	cfg   AdmissionConfig
	after After
	slots chan struct{}

	mu            sync.Mutex
	queued        int
	admitted      uint64
	shedQueueFull uint64
	shedTimeout   uint64
	shedCanceled  uint64
}

// NewLimiter builds a limiter for the normalized config; after nil
// selects time.After.
func NewLimiter(cfg AdmissionConfig, after After) *Limiter {
	cfg = cfg.Normalize()
	if after == nil {
		after = time.After
	}
	return &Limiter{cfg: cfg, after: after, slots: make(chan struct{}, cfg.MaxInFlight)}
}

// done is a context-shaped dependency: the caller's cancellation
// channel. Taking just the channel (not a context.Context) keeps the
// limiter independent of request plumbing.
type done <-chan struct{}

// Acquire tries to admit one request: immediately if a slot is free,
// after a bounded wait if the queue has room, otherwise shedding. On
// Admitted the returned release must be called exactly once when the
// request's work is finished; on every other verdict release is nil.
func (l *Limiter) Acquire(cancel done) (release func(), v Verdict) {
	if l == nil {
		return func() {}, Admitted
	}
	select {
	case l.slots <- struct{}{}:
		l.count(&l.admitted)
		return l.release, Admitted
	default:
	}
	l.mu.Lock()
	if l.queued >= l.cfg.MaxQueue {
		l.shedQueueFull++
		l.mu.Unlock()
		return nil, ShedQueueFull
	}
	l.queued++
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		l.queued--
		l.mu.Unlock()
	}()
	select {
	case l.slots <- struct{}{}:
		l.count(&l.admitted)
		return l.release, Admitted
	case <-l.after(l.cfg.QueueWait):
		l.count(&l.shedTimeout)
		return nil, ShedTimeout
	case <-cancel:
		l.count(&l.shedCanceled)
		return nil, ShedCanceled
	}
}

// release frees one admitted slot.
func (l *Limiter) release() { <-l.slots }

// count bumps one counter under the limiter lock.
func (l *Limiter) count(c *uint64) {
	l.mu.Lock()
	*c++
	l.mu.Unlock()
}

// RetryAfterSeconds is the whole-second Retry-After hint for shed
// responses (minimum 1: a zero header would invite an immediate retry
// into the same overload).
func (l *Limiter) RetryAfterSeconds() int {
	if l == nil {
		return 0
	}
	sec := int((l.cfg.RetryAfter + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	return sec
}

// AdmissionStats is the limiter's accounting snapshot, merged into the
// /metrics body.
type AdmissionStats struct {
	// MaxInFlight and MaxQueue echo the normalized bounds.
	MaxInFlight int `json:"max_in_flight"`
	MaxQueue    int `json:"max_queue"`
	// Queued is the instantaneous wait-queue depth.
	Queued int `json:"queued"`
	// Admitted counts requests that got a slot; the Shed* counters
	// partition the refusals by cause.
	Admitted      uint64 `json:"admitted"`
	ShedQueueFull uint64 `json:"shed_queue_full"`
	ShedTimeout   uint64 `json:"shed_timeout"`
	ShedCanceled  uint64 `json:"shed_canceled"`
}

// Stats snapshots the limiter accounting; a nil limiter reports zeroes.
func (l *Limiter) Stats() AdmissionStats {
	if l == nil {
		return AdmissionStats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return AdmissionStats{
		MaxInFlight:   l.cfg.MaxInFlight,
		MaxQueue:      l.cfg.MaxQueue,
		Queued:        l.queued,
		Admitted:      l.admitted,
		ShedQueueFull: l.shedQueueFull,
		ShedTimeout:   l.shedTimeout,
		ShedCanceled:  l.shedCanceled,
	}
}
