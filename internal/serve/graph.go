package serve

import (
	"fmt"
	"net/http"
	"strconv"

	"stateowned/internal/graph"
	"stateowned/internal/world"
)

// ASNList is the canonical wire rendering of a set of ASNs: ascending,
// deduplicated, and never null (an empty set renders as []). Every
// endpoint that answers with an ASN set — /v1/org's membership and the
// /v1/graph/* adjacency, cone and sibling sets — marshals through this
// one type, so the two planes cannot drift in ordering or null
// handling.
type ASNList []world.ASN

// MarshalJSON renders the set sorted ascending and deduplicated. The
// encoder re-indents the compact form, so a list nested in an indented
// response body is byte-identical to a plain []world.ASN rendering of
// the same sorted slice.
func (l ASNList) MarshalJSON() ([]byte, error) {
	s := append([]world.ASN(nil), l...)
	world.SortASNs(s)
	out := s[:0]
	for i, a := range s {
		if i == 0 || a != s[i-1] {
			out = append(out, a)
		}
	}
	buf := make([]byte, 0, 2+11*len(out))
	buf = append(buf, '[')
	for i, a := range out {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendUint(buf, uint64(a), 10)
	}
	return append(buf, ']'), nil
}

// --- /v1/graph handlers ------------------------------------------------------

// GraphNeighborsResponse is the full four-class adjacency of one AS.
type GraphNeighborsResponse struct {
	ASN       world.ASN `json:"asn"`
	Providers ASNList   `json:"providers"`
	Customers ASNList   `json:"customers"`
	Peers     ASNList   `json:"peers"`
	Siblings  ASNList   `json:"siblings"`
}

// GraphNeighborClassResponse is one relationship class of one AS (the
// ?class= filtered form).
type GraphNeighborClassResponse struct {
	ASN       world.ASN `json:"asn"`
	Class     string    `json:"class"`
	Count     int       `json:"count"`
	Neighbors ASNList   `json:"neighbors"`
}

// GraphUpstreamsResponse ranks the transits the observed monitor paths
// toward an AS depend on, hegemony-style: each upstream's score is the
// fraction of observed paths that traverse it.
type GraphUpstreamsResponse struct {
	ASN           world.ASN          `json:"asn"`
	PathsObserved int                `json:"paths_observed"`
	Monitors      int                `json:"monitors"`
	Upstreams     []graph.Dependency `json:"upstreams"`
}

// GraphConeResponse is an AS's transitive customer cone (ASRank
// semantics: self included).
type GraphConeResponse struct {
	ASN     world.ASN `json:"asn"`
	Size    int       `json:"size"`
	Members ASNList   `json:"members"`
}

// GraphPathResponse is the valley-free shortest-path answer. Path is an
// ordered hop sequence (from first, to last), not a set — it does not
// render through ASNList.
type GraphPathResponse struct {
	From  world.ASN   `json:"from"`
	To    world.ASN   `json:"to"`
	Found bool        `json:"found"`
	Hops  int         `json:"hops"`
	Path  []world.ASN `json:"path,omitempty"`
}

// graphFor extracts the generation's compiled graph, materializing the
// canonical 404 for sources that carry none (static index-only
// sources).
func graphFor(v *View) (*graph.Graph, response) {
	if v.Graph == nil {
		return nil, errResponse(http.StatusNotFound,
			"graph index unavailable: this source serves no topology graph")
	}
	return v.Graph, response{}
}

// parseGraphASN parses an ASN path or query parameter for the graph
// endpoints. Unlike /v1/asn (whose 404 carries a full ASNResponse
// body), every graph error is the unified envelope.
func parseGraphASN(raw string) (world.ASN, response) {
	n, err := strconv.ParseUint(raw, 10, 32)
	if err != nil || n == 0 {
		return 0, errResponse(http.StatusBadRequest, fmt.Sprintf("invalid ASN %q", raw))
	}
	return world.ASN(n), response{}
}

// inactiveASN is the graph plane's unknown-AS answer: the ASN parses
// but is not in this generation's topology snapshot.
func inactiveASN(a world.ASN) response {
	return errResponse(http.StatusNotFound,
		fmt.Sprintf("AS%d is not in this generation's topology", a))
}

func (s *Server) handleGraphNeighbors(v *View, r *http.Request) response {
	g, errResp := graphFor(v)
	if g == nil {
		return errResp
	}
	a, errResp := parseGraphASN(r.PathValue("asn"))
	if a == 0 {
		return errResp
	}
	if !g.Active(a) {
		return inactiveASN(a)
	}
	if raw := r.URL.Query().Get("class"); raw != "" {
		c, ok := graph.ParseClass(raw)
		if !ok {
			return errResponse(http.StatusBadRequest,
				fmt.Sprintf("unknown relationship class %q (want provider, customer, peer or sibling)", raw))
		}
		ns, _ := g.Neighbors(a, c)
		return jsonResponse(http.StatusOK, GraphNeighborClassResponse{
			ASN: a, Class: c.String(), Count: len(ns), Neighbors: ASNList(ns),
		})
	}
	prov, _ := g.Neighbors(a, graph.Provider)
	cust, _ := g.Neighbors(a, graph.Customer)
	peer, _ := g.Neighbors(a, graph.Peer)
	sibs, _ := g.Neighbors(a, graph.Sibling)
	return jsonResponse(http.StatusOK, GraphNeighborsResponse{
		ASN: a, Providers: ASNList(prov), Customers: ASNList(cust),
		Peers: ASNList(peer), Siblings: ASNList(sibs),
	})
}

func (s *Server) handleGraphUpstreams(v *View, r *http.Request) response {
	g, errResp := graphFor(v)
	if g == nil {
		return errResp
	}
	a, errResp := parseGraphASN(r.PathValue("asn"))
	if a == 0 {
		return errResp
	}
	deps, ok := g.Upstreams(a)
	if !ok {
		return inactiveASN(a)
	}
	if deps == nil {
		deps = []graph.Dependency{}
	}
	return jsonResponse(http.StatusOK, GraphUpstreamsResponse{
		ASN: a, PathsObserved: g.PathsObserved(a), Monitors: g.NumMonitors(), Upstreams: deps,
	})
}

func (s *Server) handleGraphCone(v *View, r *http.Request) response {
	g, errResp := graphFor(v)
	if g == nil {
		return errResp
	}
	a, errResp := parseGraphASN(r.PathValue("asn"))
	if a == 0 {
		return errResp
	}
	if !g.Active(a) {
		return inactiveASN(a)
	}
	cone := g.Cone(a)
	return jsonResponse(http.StatusOK, GraphConeResponse{
		ASN: a, Size: len(cone), Members: ASNList(cone),
	})
}

func (s *Server) handleGraphPath(v *View, r *http.Request) response {
	g, errResp := graphFor(v)
	if g == nil {
		return errResp
	}
	q := r.URL.Query()
	rawFrom, rawTo := q.Get("from"), q.Get("to")
	if rawFrom == "" || rawTo == "" {
		return errResponse(http.StatusBadRequest, "need both ?from= and ?to= ASNs")
	}
	from, errResp := parseGraphASN(rawFrom)
	if from == 0 {
		return errResp
	}
	to, errResp := parseGraphASN(rawTo)
	if to == 0 {
		return errResp
	}
	if !g.Active(from) {
		return inactiveASN(from)
	}
	if !g.Active(to) {
		return inactiveASN(to)
	}
	p := g.Path(from, to)
	body := GraphPathResponse{From: from, To: to, Found: len(p) > 0}
	if body.Found {
		body.Hops = len(p) - 1
		body.Path = p
	}
	return jsonResponse(http.StatusOK, body)
}

// canonASNParam numerically normalizes an ASN query value for cache
// keys (leading zeros dropped); malformed values stay raw so distinct
// garbage stays distinct.
func canonASNParam(raw string) string {
	if n, err := strconv.ParseUint(raw, 10, 32); err == nil {
		return strconv.FormatUint(n, 10)
	}
	return "raw:" + raw
}
