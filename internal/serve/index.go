// Package serve is the build-once/serve-many layer on top of the
// pipeline: it compiles an expand.Dataset into an immutable Index with
// constant-time ASN, country and organization lookups, and exposes the
// dataset over a concurrent HTTP JSON API with a bounded LRU response
// cache and a serve-metrics registry.
//
// The paper's contribution is ultimately a dataset that downstream users
// query ("is AS7473 state-owned, by whom, on what evidence?"); this
// package turns one pipeline run into a long-lived query service instead
// of re-running the pipeline — and linearly rescanning the dataset — per
// question.
package serve

import (
	"sort"
	"strings"

	"stateowned/internal/expand"
	"stateowned/internal/nameutil"
	"stateowned/internal/world"
)

// Org pairs an organization record with the ASNs it owns — one joined
// row of the dataset's two Listing-1 arrays.
type Org struct {
	Record *expand.OrgRecord
	ASNs   []world.ASN
}

// Index is an immutable set of lookup structures compiled from a
// dataset. Everything is built once by BuildIndex and never mutated, so
// an Index is safe for unlimited concurrent readers without locking.
//
// The hot path — the per-ASN question — is served from a dense
// ASN-keyed handle array rather than a hash map: world ASNs allocate
// from a compact range, so the array stays small (a few MB at full
// scale) and a lookup is a bounds check plus one load, several times
// faster than hashing.
type Index struct {
	ds *expand.Dataset

	// dense[a] is the packed handle for ASN a < len(dense); sparse holds
	// the (rare) ASNs at or above denseLimit. Handle encoding: low 31
	// bits = organization index + 1 (0 = no majority owner), top bit =
	// the ASN appears in minority records.
	dense  []uint32
	sparse map[world.ASN]uint32

	asnMinority map[world.ASN][]int // ASN -> minority-record indices
	orgByID     map[string]int      // org_id -> organization index

	countryOrgs     map[string][]int // operating CC -> organization indices
	countryMinority map[string][]int // CC -> minority-record indices

	normNames []string         // per-org normalized name (search scoring)
	nameToken map[string][]int // normalized token -> organization indices
}

// denseLimit caps the dense array at 64 MB worth of handles; dataset
// ASNs above it (none in practice — the world allocates from 50001
// upward) spill into the sparse map.
const denseLimit = 1 << 24

// handle encoding for the dense/sparse ASN tables.
const (
	orgIdxMask   = 1<<31 - 1
	minorityFlag = 1 << 31
)

// BuildIndex compiles the dataset into an Index. The dataset is adopted,
// not copied: callers must not mutate it afterwards (the pipeline never
// does — a Dataset is write-once output of stage 3).
func BuildIndex(ds *expand.Dataset) *Index {
	idx := &Index{
		ds:              ds,
		sparse:          map[world.ASN]uint32{},
		asnMinority:     make(map[world.ASN][]int),
		orgByID:         make(map[string]int, len(ds.Organizations)),
		countryOrgs:     make(map[string][]int),
		countryMinority: make(map[string][]int),
		normNames:       make([]string, len(ds.Organizations)),
		nameToken:       make(map[string][]int),
	}
	var maxASN world.ASN
	for i := range ds.ASNs {
		for _, a := range ds.ASNs[i].ASNs {
			if a > maxASN {
				maxASN = a
			}
		}
	}
	for i := range ds.Minority {
		for _, a := range ds.Minority[i].ASNs {
			if a > maxASN {
				maxASN = a
			}
		}
	}
	if n := uint64(maxASN) + 1; n > denseLimit {
		idx.dense = make([]uint32, denseLimit)
	} else {
		idx.dense = make([]uint32, n)
	}
	setHandle := func(a world.ASN, set func(uint32) uint32) {
		if int(a) < len(idx.dense) {
			idx.dense[a] = set(idx.dense[a])
		} else {
			idx.sparse[a] = set(idx.sparse[a])
		}
	}

	for i := range ds.Organizations {
		org := &ds.Organizations[i]
		i := i
		idx.orgByID[org.OrgID] = i
		idx.countryOrgs[org.OperatingCountry()] = append(idx.countryOrgs[org.OperatingCountry()], i)
		for _, a := range ds.ASNs[i].ASNs {
			setHandle(a, func(h uint32) uint32 { return h&minorityFlag | uint32(i+1) })
		}
		idx.normNames[i] = nameutil.Normalize(org.OrgName)
		seen := map[string]bool{}
		for _, tok := range nameutil.Tokens(org.OrgName) {
			if !seen[tok] {
				seen[tok] = true
				idx.nameToken[tok] = append(idx.nameToken[tok], i)
			}
		}
	}
	for i := range ds.Minority {
		m := &ds.Minority[i]
		idx.countryMinority[m.CC] = append(idx.countryMinority[m.CC], i)
		for _, a := range m.ASNs {
			idx.asnMinority[a] = append(idx.asnMinority[a], i)
			setHandle(a, func(h uint32) uint32 { return h | minorityFlag })
		}
	}
	// Canonicalize per-country ordering: organizations by OrgID, minority
	// records by (name, owner, share). Dataset assembly order is an
	// artifact of pipeline internals; the canonical order is a stable API
	// guarantee — and it is what lets the fleet router merge per-shard
	// country answers deterministically (and byte-identically to a
	// single-process answer) regardless of which shard replied first.
	for cc := range idx.countryOrgs {
		orgs := idx.countryOrgs[cc]
		sort.Slice(orgs, func(a, b int) bool {
			return ds.Organizations[orgs[a]].OrgID < ds.Organizations[orgs[b]].OrgID
		})
	}
	for cc := range idx.countryMinority {
		min := idx.countryMinority[cc]
		sort.Slice(min, func(a, b int) bool {
			return MinorityLess(&ds.Minority[min[a]], &ds.Minority[min[b]])
		})
	}
	return idx
}

// MinorityLess is the canonical minority-record order: by organization
// name, then owner state, then share, then first ASN — a total order on
// any real dataset, independent of assembly order.
func MinorityLess(a, b *expand.MinorityRecord) bool {
	if a.OrgName != b.OrgName {
		return a.OrgName < b.OrgName
	}
	if a.Owner != b.Owner {
		return a.Owner < b.Owner
	}
	if a.Share != b.Share {
		return a.Share < b.Share
	}
	var aa, ba world.ASN
	if len(a.ASNs) > 0 {
		aa = a.ASNs[0]
	}
	if len(b.ASNs) > 0 {
		ba = b.ASNs[0]
	}
	return aa < ba
}

// Dataset returns the underlying dataset (for the full Listing-1
// export endpoint).
func (idx *Index) Dataset() *expand.Dataset { return idx.ds }

// NumOrgs reports how many organizations the index covers.
func (idx *Index) NumOrgs() int { return len(idx.ds.Organizations) }

// NumASNs reports how many distinct majority-owned ASNs the index maps.
func (idx *Index) NumASNs() int {
	n := 0
	for _, h := range idx.dense {
		if h&orgIdxMask != 0 {
			n++
		}
	}
	for _, h := range idx.sparse {
		if h&orgIdxMask != 0 {
			n++
		}
	}
	return n
}

// NumMinority reports how many minority-holding records the index
// covers — with NumOrgs/NumASNs, the quick per-generation shape summary
// cmd/query and the snapshot tests print.
func (idx *Index) NumMinority() int { return len(idx.ds.Minority) }

// org materializes the i-th organization row.
func (idx *Index) org(i int) Org {
	return Org{Record: &idx.ds.Organizations[i], ASNs: idx.ds.ASNs[i].ASNs}
}

// ASN answers the per-ASN question in O(1): the owning organization (if
// majority state-owned) and any minority state holdings the ASN appears
// under. Both may be empty — then the ASN has no detected state
// ownership. The common-case cost is one array load; the minority map is
// only consulted when the handle's minority bit is set.
func (idx *Index) ASN(a world.ASN) (org Org, minority []expand.MinorityRecord, owned bool) {
	var h uint32
	if int64(a) < int64(len(idx.dense)) {
		h = idx.dense[a]
	} else {
		h = idx.sparse[a]
	}
	if h == 0 {
		return Org{}, nil, false
	}
	if i := h & orgIdxMask; i != 0 {
		org = idx.org(int(i - 1))
		owned = true
	}
	if h&minorityFlag != 0 {
		for _, mi := range idx.asnMinority[a] {
			minority = append(minority, idx.ds.Minority[mi])
		}
	}
	return org, minority, owned
}

// Org answers the per-organization question in O(1).
func (idx *Index) Org(id string) (Org, bool) {
	i, ok := idx.orgByID[id]
	if !ok {
		return Org{}, false
	}
	return idx.org(i), true
}

// Country lists the organizations operating in cc (majority ownership,
// domestic or foreign-subsidiary) and the minority state holdings
// registered there, in canonical order (organizations by OrgID,
// minority records by name/owner/share). cc is canonicalized to upper
// case.
func (idx *Index) Country(cc string) (orgs []Org, minority []expand.MinorityRecord) {
	cc = CanonicalCC(cc)
	for _, i := range idx.countryOrgs[cc] {
		orgs = append(orgs, idx.org(i))
	}
	for _, mi := range idx.countryMinority[cc] {
		minority = append(minority, idx.ds.Minority[mi])
	}
	return orgs, minority
}

// SearchHit is one fuzzy-name search result.
type SearchHit struct {
	Org   Org
	Score float64
}

// minSearchScore discards noise matches (a lone generic token scores
// well under containment but identifies nothing). Full-scan fallback
// candidates carry no token-overlap evidence, so they must clear the
// higher bar — Jaro–Winkler alone scores unrelated strings ~0.4.
const (
	minSearchScore   = 0.35
	minFallbackScore = 0.60
)

// Search finds the organizations whose names best match the query, using
// the pipeline's own name-similarity machinery (token-set + Jaro–Winkler
// over normalized forms). The token inverted index narrows scoring to
// organizations sharing at least one name token; when nothing shares a
// token (pure spelling variants) it falls back to scoring every
// organization. Results are sorted by descending score, ties broken by
// org ID, and truncated to limit (<=0 means 10).
func (idx *Index) Search(query string, limit int) []SearchHit {
	hits, _ := idx.SearchPartition(query, limit)
	return hits
}

// SearchPartition is Search plus the fallback verdict: fallback is true
// when no indexed organization shared a token with the query and the
// hits came from the full-scan fallback at its higher floor. The fleet
// router merges per-shard results on this flag: a shard that fell back
// contributes hits only when every shard fell back — exactly the
// single-index semantics, where the fallback never runs while any token
// candidate exists.
func (idx *Index) SearchPartition(query string, limit int) (_ []SearchHit, fallback bool) {
	if limit <= 0 {
		limit = 10
	}
	cands := map[int]bool{}
	for _, tok := range nameutil.Tokens(query) {
		for _, i := range idx.nameToken[tok] {
			cands[i] = true
		}
	}
	floor := minSearchScore
	if len(cands) == 0 {
		fallback = true
		floor = minFallbackScore
		for i := range idx.ds.Organizations {
			cands[i] = true
		}
	}
	hits := make([]SearchHit, 0, len(cands))
	for i := range cands {
		score := nameutil.Similarity(query, idx.ds.Organizations[i].OrgName)
		if score < floor {
			continue
		}
		hits = append(hits, SearchHit{Org: idx.org(i), Score: score})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Org.Record.OrgID < hits[j].Org.Record.OrgID
	})
	if len(hits) > limit {
		hits = hits[:limit]
	}
	return hits, fallback
}

// CanonicalCC upper-cases a country code so that /v1/country/ao and
// cache keys agree with the dataset's ISO-3166 form.
func CanonicalCC(cc string) string { return strings.ToUpper(strings.TrimSpace(cc)) }
