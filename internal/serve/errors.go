package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
)

// ErrorBody is the canonical JSON error envelope: every /v1 error
// response in the serving stack — the single-process server, the fleet
// shards and the fleet router alike — is this shape, produced by this
// package and nothing else. Status echoes the HTTP status code in the
// body so a client that lost the transport status line (a proxy log, a
// replayed capture) can still classify the failure.
type ErrorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// JSONBody encodes v exactly as the serving layer encodes every
// response body: two-space indent, trailing newline. The fleet router
// re-encodes merged scatter-gather results with this same encoder so a
// complete (no shard failed) fleet answer is byte-identical to the
// single-process answer.
func JSONBody(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteJSON writes v as an indented JSON response — the response-writer
// form of jsonResponse for handlers that live outside this package's
// containment spine (the fleet router and shard control plane).
func WriteJSON(w http.ResponseWriter, status int, v any) {
	body, err := JSONBody(v)
	if err != nil {
		WriteError(w, http.StatusInternalServerError, "encoding response")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// WriteError writes the canonical error envelope.
func WriteError(w http.ResponseWriter, status int, msg string) {
	body, err := JSONBody(ErrorBody{Error: msg, Status: status})
	if err != nil {
		// The envelope itself cannot fail to encode; keep a last-resort
		// plain body anyway rather than panicking in an error path.
		http.Error(w, msg, status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}
