package serve

import (
	"net/http"
	"testing"

	"stateowned/internal/churn"
	"stateowned/internal/expand"
	"stateowned/internal/world"
)

// fakeSource is an in-package generational Source for server tests:
// internal/snapshot implements the real one, but serve cannot import it
// (snapshot imports the root package, which imports serve), so the
// HTTP-layer contract is exercised against this hand-wound ring.
type fakeSource struct {
	views     map[int]*View
	current   int
	oldest    int
	reloading bool
	audit     *churn.Audit
}

func (f *fakeSource) Current() *View { return f.views[f.current] }

func (f *fakeSource) Generation(n int) (*View, GenStatus) {
	if v, ok := f.views[n]; ok {
		return v, GenOK
	}
	if n < f.oldest {
		return nil, GenEvicted
	}
	return nil, GenUnknown
}

func (f *fakeSource) Diff(from, to *View) (*churn.Audit, bool) {
	if f.audit == nil {
		return nil, false
	}
	return f.audit, true
}

func (f *fakeSource) ReloadStatus() ReloadStatus { return ReloadStatus{Reloading: f.reloading} }

// gen1Dataset is the fixture dataset one churn step later: ORG-0003
// privatized away, ORG-0001 lost a sibling — enough divergence that a
// pinned generation-0 answer is distinguishable from the live one.
func gen1Dataset() *expand.Dataset {
	ds := fixtureDataset()
	ds.Organizations = ds.Organizations[:2]
	ds.ASNs = ds.ASNs[:2]
	ds.ASNs[0] = expand.OrgASNs{OrgID: "ORG-0001", ASNs: []world.ASN{100}}
	return ds
}

func newFakeSource() *fakeSource {
	return &fakeSource{
		views: map[int]*View{
			0: {Gen: 0, Index: BuildIndex(fixtureDataset()), Provenance: Provenance{Origin: "generational"}},
			1: {Gen: 1, Index: BuildIndex(gen1Dataset()), Provenance: Provenance{Origin: "generational", Events: 2, TotalEvents: 2}},
		},
		current: 1,
	}
}

func newGenServer(t *testing.T, src Source, opts Options) *Server {
	t.Helper()
	if opts.Clock == nil {
		opts.Clock = testClock(3)
	}
	return NewDynamic(src, opts)
}

func TestGenerationPinning(t *testing.T) {
	src := newFakeSource()
	s := newGenServer(t, src, Options{CacheSize: 16})

	// Unpinned requests answer from the live generation.
	w := do(t, s, "/v1/asn/100")
	if w.Code != http.StatusOK {
		t.Fatalf("live asn 100: %d %s", w.Code, w.Body)
	}
	if got := w.Header().Get(GenerationHeader); got != "1" {
		t.Fatalf("live %s = %q, want 1", GenerationHeader, got)
	}
	if resp := decode[ASNResponse](t, w); len(resp.SiblingASNs) != 1 {
		t.Fatalf("live siblings = %v, want the shrunken gen-1 set", resp.SiblingASNs)
	}

	// ?gen=0 pins the retained old generation — different answer.
	w = do(t, s, "/v1/asn/100?gen=0")
	if w.Code != http.StatusOK {
		t.Fatalf("pinned asn 100: %d %s", w.Code, w.Body)
	}
	if got := w.Header().Get(GenerationHeader); got != "0" {
		t.Fatalf("pinned %s = %q, want 0", GenerationHeader, got)
	}
	if resp := decode[ASNResponse](t, w); len(resp.SiblingASNs) != 2 {
		t.Fatalf("pinned siblings = %v, want the original pair", resp.SiblingASNs)
	}

	// ASN 301 exists only in generation 0 (ORG-0003 privatized in gen 1).
	if w := do(t, s, "/v1/asn/301"); w.Code != http.StatusNotFound {
		t.Fatalf("privatized asn live: %d", w.Code)
	}
	if w := do(t, s, "/v1/asn/301?gen=0"); w.Code != http.StatusOK {
		t.Fatalf("privatized asn pinned to gen 0: %d", w.Code)
	}

	// Status contract: future 404, evicted 410, garbage 400.
	if w := do(t, s, "/v1/asn/100?gen=7"); w.Code != http.StatusNotFound {
		t.Fatalf("future generation: %d", w.Code)
	}
	src.oldest = 3
	delete(src.views, 0)
	if w := do(t, s, "/v1/asn/100?gen=0"); w.Code != http.StatusGone {
		t.Fatalf("evicted generation: %d", w.Code)
	}
	for _, raw := range []string{"-1", "abc", "1.5", "99999999999999999999", ""} {
		if w := do(t, s, "/v1/asn/100?gen="+raw); w.Code != http.StatusBadRequest {
			t.Fatalf("?gen=%q: %d, want 400", raw, w.Code)
		}
	}
}

func TestGenerationCacheIsolation(t *testing.T) {
	src := newFakeSource()
	s := newGenServer(t, src, Options{CacheSize: 16})

	// The same canonical request against two generations is two cache
	// entries; replays hit within a generation, never across.
	live := do(t, s, "/v1/asn/100")
	pinned := do(t, s, "/v1/asn/100?gen=0")
	if live.Body.String() == pinned.Body.String() {
		t.Fatal("generations served identical bodies; fixture divergence broken")
	}
	if st := s.CacheStats(); st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("stats after first touches = %+v", st)
	}
	again := do(t, s, "/v1/asn/100?gen=1") // pinned to live gen = same entry
	if again.Body.String() != live.Body.String() {
		t.Fatal("?gen=1 replay differs from unpinned live answer")
	}
	st := s.CacheStats()
	if st.Hits != 1 {
		t.Fatalf("stats after same-generation replay = %+v", st)
	}

	// Evicting a generation purges exactly its entries.
	s.InvalidateGeneration(0)
	st = s.CacheStats()
	if st.Purged != 1 || st.Size != 1 {
		t.Fatalf("stats after invalidating gen 0 = %+v", st)
	}
}

func TestDiffEndpoint(t *testing.T) {
	src := newFakeSource()
	src.audit = &churn.Audit{
		StaleOrgs:           []churn.StaleOrg{{OrgName: "ORG-0003", Adversarial: true}},
		MissingCompanies:    []string{"NewTel"},
		StillValid:          2,
		MaintenanceFraction: 0.5,
	}
	s := newGenServer(t, src, Options{})

	w := do(t, s, "/v1/diff?from=0&to=1")
	if w.Code != http.StatusOK {
		t.Fatalf("diff: %d %s", w.Code, w.Body)
	}
	resp := decode[DiffResponse](t, w)
	if resp.From != 0 || resp.To != 1 {
		t.Fatalf("diff envelope = %+v", resp)
	}
	if len(resp.Audit.StaleOrgs) != 1 || resp.Audit.StaleOrgs[0].OrgName != "ORG-0003" ||
		!resp.Audit.StaleOrgs[0].Adversarial || resp.Audit.MaintenanceFraction != 0.5 {
		t.Fatalf("diff audit = %+v", resp.Audit)
	}

	// Parameter contract.
	if w := do(t, s, "/v1/diff?from=0"); w.Code != http.StatusBadRequest {
		t.Fatalf("missing to: %d", w.Code)
	}
	if w := do(t, s, "/v1/diff"); w.Code != http.StatusBadRequest {
		t.Fatalf("missing both: %d", w.Code)
	}
	if w := do(t, s, "/v1/diff?from=bogus&to=1"); w.Code != http.StatusBadRequest {
		t.Fatalf("malformed from: %d", w.Code)
	}
	if w := do(t, s, "/v1/diff?from=0&to=9"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown to: %d", w.Code)
	}

	// A static server retains no ground truth: diff is unavailable even
	// for resolvable generations.
	static := newTestServer(t, Options{})
	if w := do(t, static, "/v1/diff?from=0&to=0"); w.Code != http.StatusNotFound {
		t.Fatalf("static diff: %d %s", w.Code, w.Body)
	}
}

func TestReadyzGenerational(t *testing.T) {
	src := newFakeSource()
	src.reloading = true
	s := newGenServer(t, src, Options{})

	// A rebuild in flight does not degrade readiness: the old generation
	// keeps serving.
	w := do(t, s, "/readyz")
	if w.Code != http.StatusOK {
		t.Fatalf("readyz during reload: %d", w.Code)
	}
	ready := decode[ReadyResponse](t, w)
	if !ready.Ready || !ready.Reloading || ready.Generation != 1 {
		t.Fatalf("readyz during reload = %+v", ready)
	}

	snap := decode[Snapshot](t, do(t, s, "/metrics"))
	if snap.Generation != 1 || !snap.Reloading {
		t.Fatalf("metrics generation fields = gen %d reloading %v", snap.Generation, snap.Reloading)
	}
}
