package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"stateowned/internal/as2org"
	"stateowned/internal/bgp"
	"stateowned/internal/graph"
	"stateowned/internal/topology"
	"stateowned/internal/whois"
	"stateowned/internal/world"
)

// testGraph compiles one small real relationship graph for the HTTP
// tests, memoized across the package (the build runs a propagation per
// AS).
var testGraphOnce = sync.OnceValues(func() (*graph.Graph, *topology.Graph) {
	w := world.Generate(world.Config{Seed: 42, Scale: 0.05})
	topo := topology.Build(w, topology.FinalYear)
	return graph.Build(topo, bgp.SelectMonitors(w, topo, 0), as2org.Infer(whois.Build(w)), 0), topo
})

// graphServer builds a generational server whose views carry the test
// graph: generation 3 live, generation 2 retained, older evicted.
func graphServer() (*Server, world.ASN) {
	g, topo := testGraphOnce()
	src := &fakeSource{
		views: map[int]*View{
			2: {Gen: 2, Index: BuildIndex(fixtureDataset()), Graph: g},
			3: {Gen: 3, Index: BuildIndex(gen1Dataset()), Graph: g},
		},
		current: 3,
		oldest:  2,
	}
	return NewDynamic(src, Options{CacheSize: 32}), topo.ASNAt(0)
}

func getJSON(t *testing.T, srv *Server, target string, into any) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, target, nil))
	if into != nil {
		if err := json.Unmarshal(w.Body.Bytes(), into); err != nil {
			t.Fatalf("GET %s: unmarshal: %v (body %q)", target, err, w.Body)
		}
	}
	return w
}

// TestASNListCanonicalRendering is the shared-renderer regression test:
// ASNList must render sorted, deduplicated and never null, and a
// sorted input must render byte-identically to the plain []world.ASN
// encoding it replaced (so adopting it on /v1/org changed no bytes).
func TestASNListCanonicalRendering(t *testing.T) {
	cases := []struct {
		in   ASNList
		want string
	}{
		{nil, "[]"},
		{ASNList{}, "[]"},
		{ASNList{42}, "[42]"},
		{ASNList{30, 10, 20, 10}, "[10,20,30]"},
	}
	for _, c := range cases {
		got, err := json.Marshal(c.in)
		if err != nil {
			t.Fatalf("Marshal(%v): %v", c.in, err)
		}
		if string(got) != c.want {
			t.Fatalf("Marshal(%v) = %s, want %s", c.in, got, c.want)
		}
	}

	// Nested in an indented envelope, a sorted ASNList is byte-identical
	// to the []world.ASN rendering of the same slice — the /v1/org wire
	// format did not move when it adopted the shared renderer.
	sorted := []world.ASN{7, 21, 42}
	asList, err := JSONBody(struct {
		ASNs ASNList `json:"asn"`
	}{ASNList(sorted)})
	if err != nil {
		t.Fatal(err)
	}
	asPlain, err := JSONBody(struct {
		ASNs []world.ASN `json:"asn"`
	}{sorted})
	if err != nil {
		t.Fatal(err)
	}
	if string(asList) != string(asPlain) {
		t.Fatalf("sorted ASNList rendering diverged from []world.ASN:\n%s\nvs\n%s", asList, asPlain)
	}
}

// TestOrgAndConeShareRenderer pins that the /v1/org membership list and
// the /v1/graph/cone member list are the same canonical form: same
// type, same bytes for the same set.
func TestOrgAndConeShareRenderer(t *testing.T) {
	set := []world.ASN{99, 7, 7, 50}
	org, err := json.Marshal(OrgResponse{ASNs: ASNList(set)}.ASNs)
	if err != nil {
		t.Fatal(err)
	}
	cone, err := json.Marshal(GraphConeResponse{Members: ASNList(set)}.Members)
	if err != nil {
		t.Fatal(err)
	}
	if string(org) != string(cone) || string(org) != "[7,50,99]" {
		t.Fatalf("renderers drifted: org %s, cone %s, want [7,50,99]", org, cone)
	}
}

func TestGraphEndpoints(t *testing.T) {
	srv, asn := graphServer()
	g, _ := testGraphOnce()

	var nb GraphNeighborsResponse
	w := getJSON(t, srv, fmt.Sprintf("/v1/graph/neighbors/%d", asn), &nb)
	if w.Code != http.StatusOK {
		t.Fatalf("neighbors: status %d (body %q)", w.Code, w.Body)
	}
	if w.Header().Get(GenerationHeader) != "3" {
		t.Fatalf("neighbors: X-Generation %q, want 3", w.Header().Get(GenerationHeader))
	}
	if nb.ASN != asn {
		t.Fatalf("neighbors: echoed ASN %d, want %d", nb.ASN, asn)
	}
	provs, _ := g.Neighbors(asn, graph.Provider)
	if len(nb.Providers) != len(provs) {
		t.Fatalf("neighbors: %d providers, want %d", len(nb.Providers), len(provs))
	}

	var cl GraphNeighborClassResponse
	w = getJSON(t, srv, fmt.Sprintf("/v1/graph/neighbors/%d?class=Provider", asn), &cl)
	if w.Code != http.StatusOK || cl.Class != "provider" || cl.Count != len(provs) {
		t.Fatalf("class filter: status %d, class %q, count %d (want provider/%d)", w.Code, cl.Class, cl.Count, len(provs))
	}

	var up GraphUpstreamsResponse
	w = getJSON(t, srv, fmt.Sprintf("/v1/graph/upstreams/%d", asn), &up)
	if w.Code != http.StatusOK {
		t.Fatalf("upstreams: status %d", w.Code)
	}
	if up.PathsObserved != g.PathsObserved(asn) || up.Monitors != g.NumMonitors() {
		t.Fatalf("upstreams: observed %d/%d, want %d/%d", up.PathsObserved, up.Monitors, g.PathsObserved(asn), g.NumMonitors())
	}
	if up.Upstreams == nil {
		t.Fatal("upstreams: null list (want [] at minimum)")
	}

	var cone GraphConeResponse
	w = getJSON(t, srv, fmt.Sprintf("/v1/graph/cone/%d", asn), &cone)
	if w.Code != http.StatusOK || cone.Size != g.ConeSize(asn) || len(cone.Members) != cone.Size {
		t.Fatalf("cone: status %d, size %d, members %d (want size %d)", w.Code, cone.Size, len(cone.Members), g.ConeSize(asn))
	}

	var p GraphPathResponse
	w = getJSON(t, srv, fmt.Sprintf("/v1/graph/path?from=%d&to=%d", asn, asn), &p)
	if w.Code != http.StatusOK || !p.Found || p.Hops != 0 || len(p.Path) != 1 {
		t.Fatalf("self path: status %d, body %+v", w.Code, p)
	}

	// ?gen= pinning resolves the retained generation and stamps the
	// header; the graph is per-view, so the answer still comes from a
	// compiled graph.
	w = getJSON(t, srv, fmt.Sprintf("/v1/graph/cone/%d?gen=2", asn), nil)
	if w.Code != http.StatusOK || w.Header().Get(GenerationHeader) != "2" {
		t.Fatalf("pinned cone: status %d, gen %q", w.Code, w.Header().Get(GenerationHeader))
	}
}

func TestGraphEndpointErrors(t *testing.T) {
	srv, asn := graphServer()
	assertErrEnvelope := func(target string, wantStatus int) {
		t.Helper()
		var e ErrorBody
		w := getJSON(t, srv, target, &e)
		if w.Code != wantStatus {
			t.Fatalf("GET %s: status %d, want %d (body %q)", target, w.Code, wantStatus, w.Body)
		}
		if e.Status != wantStatus || e.Error == "" {
			t.Fatalf("GET %s: envelope %+v does not match status %d", target, e, wantStatus)
		}
	}
	assertErrEnvelope("/v1/graph/neighbors/notanumber", http.StatusBadRequest)
	assertErrEnvelope("/v1/graph/neighbors/0", http.StatusBadRequest)
	assertErrEnvelope(fmt.Sprintf("/v1/graph/neighbors/%d?class=transit", asn), http.StatusBadRequest)
	assertErrEnvelope("/v1/graph/neighbors/4294967294", http.StatusNotFound)
	assertErrEnvelope("/v1/graph/upstreams/4294967294", http.StatusNotFound)
	assertErrEnvelope("/v1/graph/cone/4294967294", http.StatusNotFound)
	assertErrEnvelope("/v1/graph/path", http.StatusBadRequest)
	assertErrEnvelope(fmt.Sprintf("/v1/graph/path?from=%d", asn), http.StatusBadRequest)
	assertErrEnvelope(fmt.Sprintf("/v1/graph/path?from=%d&to=bogus", asn), http.StatusBadRequest)
	assertErrEnvelope(fmt.Sprintf("/v1/graph/path?from=4294967294&to=%d", asn), http.StatusNotFound)
	assertErrEnvelope(fmt.Sprintf("/v1/graph/cone/%d?gen=99", asn), http.StatusNotFound)
	assertErrEnvelope(fmt.Sprintf("/v1/graph/cone/%d?gen=1", asn), http.StatusGone)

	// A static index-only source compiles no graph: the whole plane
	// answers 404 with the envelope.
	static := New(BuildIndex(fixtureDataset()), Options{})
	var e ErrorBody
	w := httptest.NewRecorder()
	static.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/graph/cone/100", nil))
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatalf("static graph answer not JSON: %v", err)
	}
	if w.Code != http.StatusNotFound || e.Status != http.StatusNotFound {
		t.Fatalf("static source: status %d, envelope %+v (want 404 unavailable)", w.Code, e)
	}
}

// TestGraphNeighborsCacheKeyClass pins that the ?class= filter is part
// of the cache's canonical form: the filtered and unfiltered answers
// must not collide.
func TestGraphNeighborsCacheKeyClass(t *testing.T) {
	srv, asn := graphServer()
	var full GraphNeighborsResponse
	getJSON(t, srv, fmt.Sprintf("/v1/graph/neighbors/%d", asn), &full)
	var filtered GraphNeighborClassResponse
	getJSON(t, srv, fmt.Sprintf("/v1/graph/neighbors/%d?class=peer", asn), &filtered)
	if filtered.Class != "peer" {
		t.Fatalf("filtered answer came from the wrong cache entry: %+v", filtered)
	}
	// Equivalent spellings share one entry: the second request hits.
	before := srv.CacheStats().Hits
	var again GraphNeighborClassResponse
	getJSON(t, srv, fmt.Sprintf("/v1/graph/neighbors/%d?class=PEER", asn), &again)
	if srv.CacheStats().Hits != before+1 {
		t.Fatalf("case-insensitive class spelling missed the cache (hits %d -> %d)", before, srv.CacheStats().Hits)
	}
}

// FuzzGraphParams drives the whole /v1/graph/* parameter surface — ASN
// path segments, class filters, from/to pairs, and ?gen= interplay —
// asserting the unified error envelope on every non-200: whatever the
// inputs, a non-200 answer is ErrorBody JSON whose Status echoes the
// HTTP code.
func FuzzGraphParams(f *testing.F) {
	for _, s := range []string{
		"100", "0", "007", "4294967295", "4294967296", "-1", "+1",
		"abc", "", " ", "provider", "customer", "peer", "sibling",
		"PROVIDER", "transit", "1e3", "0x64", "\x00", "２",
		strings.Repeat("9", 300), "null", "..",
	} {
		f.Add(s, s, s)
	}

	srv, _ := graphServer()
	f.Fuzz(func(t *testing.T, a, b, c string) {
		targets := []string{
			"/v1/graph/neighbors/" + url.PathEscape(a) + "?class=" + url.QueryEscape(b),
			"/v1/graph/upstreams/" + url.PathEscape(a) + "?gen=" + url.QueryEscape(c),
			"/v1/graph/cone/" + url.PathEscape(a),
			"/v1/graph/path?from=" + url.QueryEscape(a) + "&to=" + url.QueryEscape(b) + "&gen=" + url.QueryEscape(c),
		}
		for _, target := range targets {
			if _, err := url.ParseRequestURI(target); err != nil {
				continue
			}
			w := httptest.NewRecorder()
			srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, target, nil))
			if w.Code == http.StatusMovedPermanently {
				continue // stdlib mux canonicalizes dot segments with a redirect
			}
			if !json.Valid(w.Body.Bytes()) {
				t.Fatalf("GET %q: invalid JSON body %q", target, w.Body)
			}
			if w.Code == http.StatusOK {
				continue
			}
			switch w.Code {
			case http.StatusBadRequest, http.StatusNotFound, http.StatusGone:
			default:
				t.Fatalf("GET %q: unexpected status %d (body %q)", target, w.Code, w.Body)
			}
			var e ErrorBody
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
				t.Fatalf("GET %q: non-200 body is not the error envelope: %v (body %q)", target, err, w.Body)
			}
			if e.Status != w.Code || e.Error == "" {
				t.Fatalf("GET %q: envelope %+v does not echo status %d", target, e, w.Code)
			}
		}
	})
}
