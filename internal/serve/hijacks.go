package serve

import (
	"fmt"
	"net/http"
	"strconv"

	"stateowned/internal/hijack"
)

// --- /v1/hijacks -------------------------------------------------------------

// HijacksResponse is the generation's routing-adversary detection
// report: every observed origin change against the registered
// ownership, optionally filtered. Detections is never null; an honest
// generation answers with an empty list.
type HijacksResponse struct {
	Generation int                `json:"generation"`
	Monitors   int                `json:"monitors"`
	Count      int                `json:"count"`
	Detections []hijack.Detection `json:"detections"`
}

// hijacksFor extracts the generation's detection report, materializing
// the canonical 404 for sources that carry none (static index-only
// sources, mirroring graphFor).
func hijacksFor(v *View) (*hijack.Report, response) {
	if v.Hijacks == nil {
		return nil, errResponse(http.StatusNotFound,
			"hijack detection unavailable: this source serves no routing observations")
	}
	return v.Hijacks, response{}
}

func (s *Server) handleHijacks(v *View, r *http.Request) response {
	rep, errResp := hijacksFor(v)
	if rep == nil {
		return errResp
	}
	q := r.URL.Query()

	var victim uint64
	if raw := q.Get("victim"); raw != "" {
		n, err := strconv.ParseUint(raw, 10, 32)
		if err != nil || n == 0 {
			return errResponse(http.StatusBadRequest, fmt.Sprintf("invalid ASN %q", raw))
		}
		victim = n
	}
	var cc string
	if raw := q.Get("cc"); raw != "" {
		cc = CanonicalCC(raw)
		if len(cc) != 2 || cc[0] < 'A' || cc[0] > 'Z' || cc[1] < 'A' || cc[1] > 'Z' {
			return errResponse(http.StatusBadRequest, fmt.Sprintf("invalid country code %q", raw))
		}
	}
	crossBorder := -1 // -1 = no filter
	if raw := q.Get("cross_border"); raw != "" {
		b, err := strconv.ParseBool(raw)
		if err != nil {
			return errResponse(http.StatusBadRequest, fmt.Sprintf("invalid cross_border value %q (want true or false)", raw))
		}
		if b {
			crossBorder = 1
		} else {
			crossBorder = 0
		}
	}

	body := HijacksResponse{
		Generation: v.Gen,
		Monitors:   rep.Monitors,
		Detections: []hijack.Detection{},
	}
	for _, d := range rep.Detections {
		if victim != 0 && uint64(d.Victim) != victim {
			continue
		}
		if cc != "" && d.VictimCountry != cc {
			continue
		}
		if crossBorder >= 0 && d.CrossBorder != (crossBorder == 1) {
			continue
		}
		body.Detections = append(body.Detections, d)
	}
	body.Count = len(body.Detections)
	return jsonResponse(http.StatusOK, body)
}

// canonBoolParam normalizes a boolean query value for cache keys: every
// spelling strconv.ParseBool accepts collapses to 0/1, malformed values
// stay raw so distinct garbage stays distinct.
func canonBoolParam(raw string) string {
	if raw == "" {
		return ""
	}
	b, err := strconv.ParseBool(raw)
	if err != nil {
		return "raw:" + raw
	}
	if b {
		return "1"
	}
	return "0"
}
