package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"stateowned/internal/expand"
	"stateowned/internal/runner"
)

// testClock is a deterministic virtual-unit clock: each reading advances
// by step units. Safe for concurrent readers (the soak tests hammer it
// from many request goroutines).
func testClock(step int64) Clock {
	var now atomic.Int64
	return func() int64 {
		return now.Add(step)
	}
}

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Clock == nil {
		opts.Clock = testClock(3)
	}
	return New(BuildIndex(fixtureDataset()), opts)
}

func do(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func decode[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding %q: %v", w.Body.String(), err)
	}
	return v
}

func TestEndpointASN(t *testing.T) {
	s := newTestServer(t, Options{CacheSize: 16})

	w := do(t, s, "/v1/asn/100")
	if w.Code != http.StatusOK {
		t.Fatalf("asn 100: %d %s", w.Code, w.Body)
	}
	resp := decode[ASNResponse](t, w)
	if resp.Status != "state-owned" || resp.Organization.OrgID != "ORG-0001" || len(resp.SiblingASNs) != 2 {
		t.Fatalf("asn 100 resp = %+v", resp)
	}

	if w := do(t, s, "/v1/asn/400"); w.Code != http.StatusOK {
		t.Fatalf("minority asn: %d", w.Code)
	} else if resp := decode[ASNResponse](t, w); resp.Status != "minority" || len(resp.Minority) != 1 {
		t.Fatalf("minority resp = %+v", resp)
	}

	if w := do(t, s, "/v1/asn/999"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown asn: %d", w.Code)
	}
	if w := do(t, s, "/v1/asn/abc"); w.Code != http.StatusBadRequest {
		t.Fatalf("malformed asn: %d", w.Code)
	}
	if w := do(t, s, "/v1/asn/0"); w.Code != http.StatusBadRequest {
		t.Fatalf("asn 0: %d", w.Code)
	}
}

func TestEndpointCountry(t *testing.T) {
	s := newTestServer(t, Options{})

	w := do(t, s, "/v1/country/ao")
	if w.Code != http.StatusOK {
		t.Fatalf("country ao: %d", w.Code)
	}
	resp := decode[CountryResponse](t, w)
	if resp.CC != "AO" || len(resp.Organizations) != 1 || len(resp.Minority) != 1 {
		t.Fatalf("country ao resp = %+v", resp)
	}

	// A valid code with no operators is an empty 200, not a 404.
	if w := do(t, s, "/v1/country/FR"); w.Code != http.StatusOK {
		t.Fatalf("empty country: %d", w.Code)
	} else if resp := decode[CountryResponse](t, w); len(resp.Organizations) != 0 {
		t.Fatalf("FR orgs = %+v", resp.Organizations)
	}

	if w := do(t, s, "/v1/country/123"); w.Code != http.StatusBadRequest {
		t.Fatalf("bad cc: %d", w.Code)
	}
}

func TestEndpointOrgAndSearch(t *testing.T) {
	s := newTestServer(t, Options{})

	if w := do(t, s, "/v1/org/ORG-0002"); w.Code != http.StatusOK {
		t.Fatalf("org: %d", w.Code)
	} else if resp := decode[OrgResponse](t, w); resp.Organization.TargetCC != "MM" {
		t.Fatalf("org resp = %+v", resp)
	}
	if w := do(t, s, "/v1/org/ORG-9999"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown org: %d", w.Code)
	}

	w := do(t, s, "/v1/search?name=angola+cables")
	if w.Code != http.StatusOK {
		t.Fatalf("search: %d", w.Code)
	}
	if resp := decode[SearchResponse](t, w); len(resp.Hits) == 0 || resp.Hits[0].Organization.OrgID != "ORG-0001" {
		t.Fatalf("search resp = %+v", resp)
	}
	if w := do(t, s, "/v1/search"); w.Code != http.StatusBadRequest {
		t.Fatalf("search without name: %d", w.Code)
	}
	if w := do(t, s, "/v1/search?name=angola&limit=bogus"); w.Code != http.StatusBadRequest {
		t.Fatalf("search bad limit: %d", w.Code)
	}
}

func TestEndpointDatasetRoundTrips(t *testing.T) {
	s := newTestServer(t, Options{})
	w := do(t, s, "/v1/dataset")
	if w.Code != http.StatusOK {
		t.Fatalf("dataset: %d", w.Code)
	}
	wrap := decode[DatasetResponse](t, w)
	if wrap.Generation != 0 || wrap.Provenance.Origin != "static" {
		t.Fatalf("dataset envelope = gen %d origin %q", wrap.Generation, wrap.Provenance.Origin)
	}
	ds, err := expand.Import(bytes.NewReader(wrap.Dataset))
	if err != nil {
		t.Fatalf("re-importing served dataset: %v", err)
	}
	if len(ds.Organizations) != 3 || len(ds.Minority) != 2 {
		t.Fatalf("round-tripped dataset: %d orgs, %d minority", len(ds.Organizations), len(ds.Minority))
	}
}

func TestEndpointUnknownPath(t *testing.T) {
	s := newTestServer(t, Options{})
	if w := do(t, s, "/v2/nope"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown path: %d", w.Code)
	}
}

func TestHealthzAndReadyz(t *testing.T) {
	s := newTestServer(t, Options{})
	if w := do(t, s, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}
	// No health report: always ready.
	if w := do(t, s, "/readyz"); w.Code != http.StatusOK {
		t.Fatalf("readyz without health: %d", w.Code)
	}

	// Degraded-but-available sources: ready, listed.
	h := runner.NewHealth(0.4)
	h.Source("geo")
	h.NoteQuarantined("geo", 7)
	s = newTestServer(t, Options{Health: h})
	w := do(t, s, "/readyz")
	if w.Code != http.StatusOK {
		t.Fatalf("degraded readyz: %d", w.Code)
	}
	ready := decode[ReadyResponse](t, w)
	if !ready.Ready || len(ready.DegradedSrc) != 1 || ready.DegradedSrc[0] != "geo" {
		t.Fatalf("degraded readyz resp = %+v", ready)
	}
	if ready.Sources[0].Quarantined != 7 {
		t.Fatalf("source row = %+v", ready.Sources[0])
	}

	// An unavailable source flips readiness to 503.
	h.MarkUnavailable("orbis", "timeout budget exhausted")
	w = do(t, s, "/readyz")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("unavailable readyz: %d", w.Code)
	}
	ready = decode[ReadyResponse](t, w)
	if ready.Ready || len(ready.Unavailable) != 1 || ready.Unavailable[0] != "orbis" {
		t.Fatalf("unavailable readyz resp = %+v", ready)
	}
}

func TestResponseCacheReplay(t *testing.T) {
	s := newTestServer(t, Options{CacheSize: 8})

	first := do(t, s, "/v1/asn/100")
	second := do(t, s, "/v1/asn/100")
	if first.Body.String() != second.Body.String() || first.Code != second.Code {
		t.Fatal("cached replay differs from original")
	}
	st := s.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats after replay = %+v", st)
	}

	// Equivalent requests canonicalize onto one entry.
	do(t, s, "/v1/country/mm")
	do(t, s, "/v1/country/MM")
	st = s.CacheStats()
	if st.Hits != 2 {
		t.Fatalf("canonicalized country lookups missed the cache: %+v", st)
	}

	// Deterministic errors are cached too.
	do(t, s, "/v1/asn/abc")
	do(t, s, "/v1/asn/abc")
	if st = s.CacheStats(); st.Hits != 3 {
		t.Fatalf("error replay missed the cache: %+v", st)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Options{CacheSize: 8, Clock: testClock(5)})
	for i := 0; i < 3; i++ {
		do(t, s, "/v1/asn/100")
	}
	do(t, s, "/v1/asn/999")

	w := do(t, s, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	snap := decode[Snapshot](t, w)
	if snap.InFlight != 1 { // the /metrics request itself
		t.Fatalf("in-flight = %d", snap.InFlight)
	}
	var asn *EndpointSnapshot
	for i := range snap.Endpoints {
		if snap.Endpoints[i].Endpoint == "/v1/asn" {
			asn = &snap.Endpoints[i]
		}
	}
	if asn == nil || asn.Requests != 4 {
		t.Fatalf("asn endpoint snapshot = %+v", asn)
	}
	if asn.ByStatus["200"] != 3 || asn.ByStatus["404"] != 1 {
		t.Fatalf("status mix = %+v", asn.ByStatus)
	}
	if asn.MeanUnits <= 0 || asn.MaxUnits <= 0 {
		t.Fatalf("latency accounting empty: %+v", asn)
	}
	if snap.Cache.Hits == 0 {
		t.Fatalf("cache accounting missing from snapshot: %+v", snap.Cache)
	}

	// The snapshot renders with sparklines without panicking.
	if out := snap.Render(); !strings.Contains(out, "/v1/asn") {
		t.Fatalf("render output missing endpoint:\n%s", out)
	}

	// Without a health report the build-timing fields stay absent.
	if snap.BuildWorkers != 0 || len(snap.BuildNodes) != 0 {
		t.Fatalf("unexpected build timings without health: %+v", snap)
	}
}

func TestMetricsBuildTimings(t *testing.T) {
	h := runner.NewHealth(0)
	h.Workers = 4
	h.Timings = []runner.NodeTiming{
		{Node: "world", Wall: 1500 * 1000}, // 1.5ms in ns
		{Node: "stage1", Wall: 250 * 1000},
	}
	s := newTestServer(t, Options{Health: h})

	snap := decode[Snapshot](t, do(t, s, "/metrics"))
	if snap.BuildWorkers != 4 {
		t.Fatalf("build workers = %d, want 4", snap.BuildWorkers)
	}
	if len(snap.BuildNodes) != 2 || snap.BuildNodes[0].Node != "world" {
		t.Fatalf("build nodes = %+v", snap.BuildNodes)
	}
	if snap.BuildNodes[0].WallMS != 1.5 {
		t.Fatalf("world wall = %v ms, want 1.5", snap.BuildNodes[0].WallMS)
	}
}

func TestLatencyBuckets(t *testing.T) {
	cases := []struct {
		units int64
		want  int
	}{{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1 << 20, latencyBuckets - 1}}
	for _, c := range cases {
		if got := bucketOf(c.units); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.units, got, c.want)
		}
	}
}

func TestServeGracefulShutdown(t *testing.T) {
	s := newTestServer(t, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatalf("live request: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over the wire: %d", resp.StatusCode)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
}
