package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"stateowned/internal/hijack"
)

// hijacksServer builds a generational server whose views carry small
// hand-wound detection reports: generation 3 live (two detections),
// generation 2 retained (one), generation 1 evicted, plus a static-like
// view at generation 4 carrying no report at all.
func hijacksServer() *Server {
	rep2 := &hijack.Report{Monitors: 5, Detections: []hijack.Detection{
		{Victim: 100, Observed: 900, Monitors: 3, VictimCountry: "CN", ObservedCountry: "IT",
			VictimStateOwned: true, CrossBorder: true},
	}}
	rep3 := &hijack.Report{Monitors: 7, Detections: []hijack.Detection{
		{Victim: 100, Observed: 901, Monitors: 2, VictimCountry: "CN", ObservedCountry: "CN",
			VictimStateOwned: true},
		{Victim: 200, Observed: 902, Monitors: 6, VictimCountry: "NO", ObservedCountry: "RU",
			CrossBorder: true},
	}}
	src := &fakeSource{
		views: map[int]*View{
			2: {Gen: 2, Index: BuildIndex(fixtureDataset()), Hijacks: rep2},
			3: {Gen: 3, Index: BuildIndex(gen1Dataset()), Hijacks: rep3},
			4: {Gen: 4, Index: BuildIndex(gen1Dataset())}, // no routing observations
		},
		current: 3,
		oldest:  2,
	}
	return NewDynamic(src, Options{CacheSize: 32})
}

func TestHijacksEndpoint(t *testing.T) {
	srv := hijacksServer()

	var live HijacksResponse
	if w := getJSON(t, srv, "/v1/hijacks", &live); w.Code != http.StatusOK {
		t.Fatalf("GET /v1/hijacks = %d (%s)", w.Code, w.Body)
	}
	if live.Generation != 3 || live.Monitors != 7 || live.Count != 2 || len(live.Detections) != 2 {
		t.Fatalf("live report = %+v", live)
	}

	// ?gen= pins to a retained generation's report.
	var pinned HijacksResponse
	getJSON(t, srv, "/v1/hijacks?gen=2", &pinned)
	if pinned.Generation != 2 || pinned.Count != 1 || pinned.Detections[0].Observed != 900 {
		t.Fatalf("pinned report = %+v", pinned)
	}

	// Filters: victim ASN, victim country (case-insensitive), cross-border.
	cases := map[string]int{
		"/v1/hijacks?victim=100":                1,
		"/v1/hijacks?victim=999":                0,
		"/v1/hijacks?cc=cn":                     1,
		"/v1/hijacks?cc=NO":                     1,
		"/v1/hijacks?cross_border=true":         1,
		"/v1/hijacks?cross_border=FALSE":        1,
		"/v1/hijacks?cc=CN&cross_border=false":  1,
		"/v1/hijacks?cc=CN&cross_border=true":   0,
		"/v1/hijacks?victim=200&cross_border=1": 1,
	}
	for target, want := range cases {
		var got HijacksResponse
		if w := getJSON(t, srv, target, &got); w.Code != http.StatusOK {
			t.Fatalf("GET %s = %d (%s)", target, w.Code, w.Body)
		}
		if got.Count != want || len(got.Detections) != want {
			t.Errorf("GET %s: count = %d, want %d", target, got.Count, want)
		}
		if got.Detections == nil {
			t.Errorf("GET %s: detections serialized as null", target)
		}
	}

	// Malformed parameters: 400 in the unified envelope.
	for _, target := range []string{
		"/v1/hijacks?victim=0",
		"/v1/hijacks?victim=-5",
		"/v1/hijacks?victim=abc",
		"/v1/hijacks?victim=4294967296",
		"/v1/hijacks?cc=XYZ",
		"/v1/hijacks?cc=1a",
		"/v1/hijacks?cross_border=maybe",
	} {
		var e ErrorBody
		if w := getJSON(t, srv, target, &e); w.Code != http.StatusBadRequest || e.Status != http.StatusBadRequest {
			t.Errorf("GET %s = %d (envelope %+v), want 400", target, w.Code, e)
		}
	}

	// A view without routing observations answers the canonical 404.
	var e ErrorBody
	if w := getJSON(t, srv, "/v1/hijacks?gen=4", &e); w.Code != http.StatusNotFound || e.Status != http.StatusNotFound {
		t.Errorf("GET /v1/hijacks?gen=4 = %d (envelope %+v), want 404", w.Code, e)
	}
}

// Equivalent filter spellings must share one cache entry: the canonical
// key collapses boolean spellings and country-code case.
func TestHijacksCacheKeyCanonicalization(t *testing.T) {
	srv := hijacksServer()
	getJSON(t, srv, "/v1/hijacks?cc=no&cross_border=true", nil)
	before := srv.CacheStats().Hits
	getJSON(t, srv, "/v1/hijacks?cc=NO&cross_border=1", nil)
	if srv.CacheStats().Hits != before+1 {
		t.Fatalf("equivalent spellings missed the cache (hits %d -> %d)", before, srv.CacheStats().Hits)
	}
}

// FuzzHijackParams drives the /v1/hijacks query surface — victim, cc,
// cross_border and ?gen= — asserting that every answer is valid JSON
// and every non-200 is the unified error envelope echoing its status.
func FuzzHijackParams(f *testing.F) {
	for _, s := range []string{
		"100", "0", "007", "4294967295", "4294967296", "-1", "+1",
		"abc", "", " ", "true", "false", "TRUE", "t", "1", "0", "maybe",
		"CN", "cn", "XY", "xyz", "c", "２", "\x00", strings.Repeat("9", 300), "null",
	} {
		f.Add(s, s, s, s)
	}

	srv := hijacksServer()
	f.Fuzz(func(t *testing.T, victim, cc, xb, gen string) {
		target := "/v1/hijacks?victim=" + url.QueryEscape(victim) +
			"&cc=" + url.QueryEscape(cc) +
			"&cross_border=" + url.QueryEscape(xb) +
			"&gen=" + url.QueryEscape(gen)
		if _, err := url.ParseRequestURI(target); err != nil {
			return
		}
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, target, nil))
		if !json.Valid(w.Body.Bytes()) {
			t.Fatalf("GET %q: invalid JSON body %q", target, w.Body)
		}
		if w.Code == http.StatusOK {
			return
		}
		switch w.Code {
		case http.StatusBadRequest, http.StatusNotFound, http.StatusGone:
		default:
			t.Fatalf("GET %q: unexpected status %d (body %q)", target, w.Code, w.Body)
		}
		var e ErrorBody
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
			t.Fatalf("GET %q: non-200 body is not the error envelope: %v (body %q)", target, err, w.Body)
		}
		if e.Status != w.Code || e.Error == "" {
			t.Fatalf("GET %q: envelope %+v does not echo status %d", target, e, w.Code)
		}
	})
}
