package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestErrorEnvelopeShape drives one request through the real HTTP
// surface for every /v1 error class — 400, 404, 410, 503 and 504 — and
// asserts the unified envelope contract: Content-Type
// application/json, a body that is exactly {error, status} with the
// status echoing the HTTP code, the canonical encoder's two-space
// indent and trailing newline, and no response cache header leaking on
// non-deterministic errors.
func TestErrorEnvelopeShape(t *testing.T) {
	cases := []struct {
		name   string
		status int
		build  func(t *testing.T) (*Server, string, func())
	}{
		{
			name:   "400 malformed ASN",
			status: http.StatusBadRequest,
			build: func(t *testing.T) (*Server, string, func()) {
				return newTestServer(t, Options{}), "/v1/asn/abc", nil
			},
		},
		{
			name:   "404 unknown organization",
			status: http.StatusNotFound,
			build: func(t *testing.T) (*Server, string, func()) {
				return newTestServer(t, Options{}), "/v1/org/ORG-9999", nil
			},
		},
		{
			name:   "404 unknown generation",
			status: http.StatusNotFound,
			build: func(t *testing.T) (*Server, string, func()) {
				return newGenServer(t, newFakeSource(), Options{}), "/v1/asn/100?gen=7", nil
			},
		},
		{
			name:   "410 evicted generation",
			status: http.StatusGone,
			build: func(t *testing.T) (*Server, string, func()) {
				src := newFakeSource()
				delete(src.views, 0)
				src.oldest = 1
				return newGenServer(t, src, Options{}), "/v1/asn/100?gen=0", nil
			},
		},
		{
			name:   "503 admission shed",
			status: http.StatusServiceUnavailable,
			build: func(t *testing.T) (*Server, string, func()) {
				// Wedge one request in the single admission slot; the
				// table's request is then shed at the door.
				src := newGateSource(newFakeSource(), 1)
				s := NewDynamic(src, Options{
					Clock:     testClock(1),
					Admission: &AdmissionConfig{MaxInFlight: 1, MaxQueue: -1},
				})
				go do(t, s, "/v1/asn/100")
				src.waitBlocked(t, 1)
				return s, "/v1/asn/100", func() { close(src.gate) }
			},
		},
		{
			name:   "504 deadline exceeded",
			status: http.StatusGatewayTimeout,
			build: func(t *testing.T) (*Server, string, func()) {
				src := newGateSource(newFakeSource(), 1)
				s := NewDynamic(src, Options{
					Clock:          testClock(1),
					RequestTimeout: time.Second, // virtual: instantFire decides
					After:          instantFire,
				})
				return s, "/v1/asn/100", func() { close(src.gate) }
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, path, teardown := tc.build(t)
			if teardown != nil {
				defer teardown()
			}
			w := do(t, s, path)
			if w.Code != tc.status {
				t.Fatalf("status %d, want %d (body %s)", w.Code, tc.status, w.Body.String())
			}
			if ct := w.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type %q, want application/json", ct)
			}

			// The body is exactly the envelope: {error, status}, nothing
			// else, status echoing the wire code, error human-readable.
			var eb ErrorBody
			if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
				t.Fatalf("body is not the JSON envelope: %v (%s)", err, w.Body.String())
			}
			if eb.Status != tc.status {
				t.Fatalf("envelope status %d, want %d", eb.Status, tc.status)
			}
			if eb.Error == "" {
				t.Fatal("envelope error message is empty")
			}
			var keys map[string]json.RawMessage
			if err := json.Unmarshal(w.Body.Bytes(), &keys); err != nil {
				t.Fatal(err)
			}
			if len(keys) != 2 {
				t.Fatalf("envelope has %d fields %v, want exactly {error, status}", len(keys), keys)
			}

			// Canonical encoder: two-space indent, trailing newline — the
			// byte-level contract the fleet merge relies on.
			if !strings.HasSuffix(w.Body.String(), "}\n") {
				t.Fatalf("body does not end with the canonical newline: %q", w.Body.String())
			}
			if !strings.Contains(w.Body.String(), "\n  \"error\"") {
				t.Fatalf("body is not two-space indented: %q", w.Body.String())
			}
		})
	}
}
