package serve

import (
	"testing"

	"stateowned/internal/expand"
	"stateowned/internal/world"
)

// fixtureDataset is a tiny hand-built Listing-1 dataset exercising every
// index dimension: a domestic org, a foreign subsidiary, a multi-ASN
// org, and a minority holding.
func fixtureDataset() *expand.Dataset {
	return &expand.Dataset{
		Organizations: []expand.OrgRecord{
			{
				ConglomerateName: "Angola Cables", OrgID: "ORG-0001",
				OrgName: "Angola Cables S.A.", OwnershipCC: "AO",
				OwnershipCountryName: "Angola", RIR: "AFRINIC", Source: "website",
			},
			{
				ConglomerateName: "Telenor", OrgID: "ORG-0002",
				OrgName: "Telenor Myanmar Ltd", OwnershipCC: "NO",
				OwnershipCountryName: "Norway", RIR: "APNIC", Source: "annual report",
				TargetCC: "MM", TargetCountryName: "Myanmar", ParentOrg: "Telenor ASA",
			},
			{
				ConglomerateName: "Ooredoo", OrgID: "ORG-0003",
				OrgName: "Ooredoo Q.S.C", OwnershipCC: "QA",
				OwnershipCountryName: "Qatar", RIR: "RIPE", Source: "website",
			},
		},
		ASNs: []expand.OrgASNs{
			{OrgID: "ORG-0001", ASNs: []world.ASN{100, 101}},
			{OrgID: "ORG-0002", ASNs: []world.ASN{200}},
			{OrgID: "ORG-0003", ASNs: []world.ASN{300, 301}},
		},
		Minority: []expand.MinorityRecord{
			{OrgName: "PartialTel", CC: "BR", Owner: "BR", Share: 0.30, ASNs: []world.ASN{400}},
			{OrgName: "HalfNet", CC: "AO", Owner: "AO", Share: 0.49, ASNs: []world.ASN{101, 500}},
		},
	}
}

func TestIndexASNLookup(t *testing.T) {
	idx := BuildIndex(fixtureDataset())

	org, minority, owned := idx.ASN(100)
	if !owned || org.Record.OrgID != "ORG-0001" {
		t.Fatalf("ASN 100: owned=%v org=%+v", owned, org.Record)
	}
	if len(org.ASNs) != 2 {
		t.Fatalf("ASN 100 siblings = %v", org.ASNs)
	}
	if len(minority) != 0 {
		t.Fatalf("ASN 100 unexpected minority %v", minority)
	}

	// 101 is both majority-owned (ORG-0001) and a minority holding.
	org, minority, owned = idx.ASN(101)
	if !owned || org.Record.OrgID != "ORG-0001" || len(minority) != 1 || minority[0].OrgName != "HalfNet" {
		t.Fatalf("ASN 101: owned=%v minority=%v", owned, minority)
	}

	// 400 is minority-only.
	_, minority, owned = idx.ASN(400)
	if owned || len(minority) != 1 || minority[0].OrgName != "PartialTel" {
		t.Fatalf("ASN 400: owned=%v minority=%v", owned, minority)
	}

	if _, mins, owned := idx.ASN(999); owned || len(mins) != 0 {
		t.Fatal("ASN 999 should be unknown")
	}
}

func TestIndexCountryLookup(t *testing.T) {
	idx := BuildIndex(fixtureDataset())

	orgs, minority := idx.Country("AO")
	if len(orgs) != 1 || orgs[0].Record.OrgID != "ORG-0001" {
		t.Fatalf("AO orgs = %+v", orgs)
	}
	if len(minority) != 1 || minority[0].OrgName != "HalfNet" {
		t.Fatalf("AO minority = %v", minority)
	}

	// The foreign subsidiary operates in its target country, not its
	// owner's.
	orgs, _ = idx.Country("MM")
	if len(orgs) != 1 || orgs[0].Record.OrgID != "ORG-0002" {
		t.Fatalf("MM orgs = %+v", orgs)
	}
	if orgs, _ := idx.Country("NO"); len(orgs) != 0 {
		t.Fatalf("NO should host no operators, got %+v", orgs)
	}

	// Lower-case codes canonicalize.
	lower, _ := idx.Country("ao")
	if len(lower) != 1 || lower[0].Record.OrgID != "ORG-0001" {
		t.Fatalf("lower-case lookup = %+v", lower)
	}
}

func TestIndexOrgLookup(t *testing.T) {
	idx := BuildIndex(fixtureDataset())
	org, ok := idx.Org("ORG-0003")
	if !ok || org.Record.OrgName != "Ooredoo Q.S.C" || len(org.ASNs) != 2 {
		t.Fatalf("ORG-0003 = %+v ok=%v", org, ok)
	}
	if _, ok := idx.Org("ORG-9999"); ok {
		t.Fatal("ORG-9999 should not resolve")
	}
}

func TestIndexSearch(t *testing.T) {
	idx := BuildIndex(fixtureDataset())

	hits := idx.Search("angola cables", 5)
	if len(hits) == 0 || hits[0].Org.Record.OrgID != "ORG-0001" {
		t.Fatalf("search 'angola cables' = %+v", hits)
	}

	// Legal-suffix and case variants match through normalization.
	hits = idx.Search("OOREDOO QSC", 5)
	if len(hits) == 0 || hits[0].Org.Record.OrgID != "ORG-0003" {
		t.Fatalf("search 'OOREDOO QSC' = %+v", hits)
	}

	// A pure spelling variant shares no token; the full-scan fallback
	// still finds it via Jaro-Winkler.
	hits = idx.Search("Telenoor Myanmaar", 5)
	if len(hits) == 0 || hits[0].Org.Record.OrgID != "ORG-0002" {
		t.Fatalf("search 'Telenoor Myanmaar' = %+v", hits)
	}

	if hits := idx.Search("zzzz qqqq xxxx", 5); len(hits) != 0 {
		t.Fatalf("nonsense query matched %+v", hits)
	}

	// Limit truncates.
	if hits := idx.Search("angola cables", 0); len(hits) > 10 {
		t.Fatalf("default limit exceeded: %d", len(hits))
	}
}

func TestIndexCounts(t *testing.T) {
	idx := BuildIndex(fixtureDataset())
	if idx.NumOrgs() != 3 {
		t.Fatalf("NumOrgs = %d", idx.NumOrgs())
	}
	if idx.NumASNs() != 5 {
		t.Fatalf("NumASNs = %d", idx.NumASNs())
	}
	if idx.Dataset() == nil {
		t.Fatal("Dataset accessor returned nil")
	}
}
