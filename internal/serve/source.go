package serve

import (
	"stateowned/internal/churn"
	"stateowned/internal/graph"
	"stateowned/internal/hijack"
	"stateowned/internal/runner"
)

// GenStatus classifies a generation-number lookup against a Source.
type GenStatus uint8

// Generation lookup outcomes.
const (
	// GenOK means the generation is retained and servable.
	GenOK GenStatus = iota
	// GenUnknown means the generation has never been built: it lies in
	// the future of the live generation, or the source only ever has
	// one generation (HTTP 404).
	GenUnknown
	// GenEvicted means the generation existed but has left the
	// retention ring; its answers are gone for good (HTTP 410).
	GenEvicted
)

// Provenance describes how a generation's dataset came to be; it is
// reported verbatim on /v1/dataset.
type Provenance struct {
	// Origin is "static" for a single build-once index or
	// "generational" for a snapshot-store generation.
	Origin string `json:"origin"`
	// Seed and Scale echo the pipeline configuration of the build.
	Seed  uint64  `json:"seed,omitempty"`
	Scale float64 `json:"scale,omitempty"`
	// ChurnSeed and YearsPerGen describe the ownership-churn schedule
	// that separates generations (generational sources only).
	ChurnSeed   uint64 `json:"churn_seed,omitempty"`
	YearsPerGen int    `json:"years_per_generation,omitempty"`
	// Events counts the churn events applied to reach this generation
	// from the previous one; TotalEvents is cumulative since
	// generation 0.
	Events      int `json:"churn_events,omitempty"`
	TotalEvents int `json:"total_churn_events,omitempty"`
}

// View is one dataset generation as the server sees it: the immutable
// index to answer from, the health report of the pipeline run that
// built it, and build provenance. A View (and everything it reaches)
// is immutable once published, so a request that resolved its View
// keeps answering from that generation even if a swap happens
// mid-flight — no torn reads by construction.
type View struct {
	// Gen is the generation number (0 = the initial build).
	Gen int
	// Index is the compiled lookup structure all /v1 answers come from.
	Index *Index
	// Health is the generation build's degradation report (nil = no
	// health information; /readyz then always reports ready).
	Health *runner.Health
	// Provenance describes the build for /v1/dataset.
	Provenance Provenance
	// Graph is the generation's compiled relationship index behind the
	// /v1/graph/* endpoints. Nil when the source carries no topology
	// (static index-only sources); the graph endpoints then answer 404.
	Graph *graph.Graph
	// Hijacks is the generation's routing-adversary detection report
	// behind /v1/hijacks. Nil when the source carries no routing
	// observations (static index-only sources); the endpoint then
	// answers 404. An honest generation carries an empty (non-nil)
	// report.
	Hijacks *hijack.Report
}

// ReloadStatus is a source's rebuild-state report, surfaced verbatim
// on /readyz and /metrics. Degraded means the last rebuild (or several)
// was quarantined by the validation gate and the source is serving its
// last-known-good generation — the server stays ready (it is still
// answering) but operators can see why the dataset stopped advancing.
type ReloadStatus struct {
	// Reloading reports whether a rebuild is in flight. The old
	// generation keeps serving (and /readyz stays green) while it runs.
	Reloading bool `json:"reloading"`
	// Degraded reports that the newest rebuild failed validation (or
	// panicked) and was quarantined; Reason says why.
	Degraded bool   `json:"degraded"`
	Reason   string `json:"degraded_reason,omitempty"`
	// ConsecutiveFailures counts quarantined rebuilds since the last
	// successful swap; GaveUp means the reload loop exhausted its
	// failure budget and stopped retrying.
	ConsecutiveFailures int  `json:"consecutive_failures,omitempty"`
	GaveUp              bool `json:"gave_up,omitempty"`
	// Incremental reports that the source rebuilds generations through
	// the dirty-set build graph; the counters below are cumulative
	// across all rebuilds. NodesReused/NodesRebuilt count build-graph
	// nodes restored from the previous generation's memo vs executed;
	// IndexReuses/GraphReuses count whole compiled structures adopted
	// unchanged. All of it is observability metadata — never part of
	// dataset bytes or determinism comparisons.
	Incremental  bool   `json:"incremental,omitempty"`
	NodesReused  uint64 `json:"nodes_reused,omitempty"`
	NodesRebuilt uint64 `json:"nodes_rebuilt,omitempty"`
	IndexReuses  uint64 `json:"index_reuses,omitempty"`
	GraphReuses  uint64 `json:"graph_reuses,omitempty"`
	// Archive reports that the source persists generations to the
	// durable on-disk archive. Recovered means this process warm-started
	// from it, with RecoveredGen the newest adopted generation (the
	// field is elided when zero; Recovered disambiguates a recovered
	// generation 0). The counters mirror the archive's write/verify/
	// quarantine ledger, and ArchiveLastError is the most recent write
	// failure — durability degraded, serving unaffected.
	Archive              bool   `json:"archive,omitempty"`
	Recovered            bool   `json:"recovered,omitempty"`
	RecoveredGen         int    `json:"recovered_gen,omitempty"`
	SegmentsVerified     uint64 `json:"segments_verified,omitempty"`
	SegmentsQuarantined  uint64 `json:"segments_quarantined,omitempty"`
	ArchiveWrites        uint64 `json:"archive_writes,omitempty"`
	ArchiveWriteFailures uint64 `json:"archive_write_failures,omitempty"`
	ArchiveLastError     string `json:"archive_last_error,omitempty"`
}

// Source supplies the server's generations. Implementations must be
// safe for arbitrary request concurrency: Current runs on every request
// and must be cheap, and the generation it returns must switch
// atomically between complete views — the hot-reload soak test hammers
// this contract under the race detector.
type Source interface {
	// Current returns the live generation.
	Current() *View
	// Generation resolves a pinned generation number to a retained
	// view, or reports why it cannot be served.
	Generation(n int) (*View, GenStatus)
	// Diff audits `from`'s dataset against `to`'s ground truth —
	// churn.RunAudit across two retained generations. The bool is false
	// when the source keeps no ground truth to audit against (static
	// sources).
	Diff(from, to *View) (*churn.Audit, bool)
	// ReloadStatus reports the rebuild state: in-flight, and whether
	// the source is degraded to last-known-good after quarantined
	// rebuilds.
	ReloadStatus() ReloadStatus
}

// staticSource adapts a single immutable Index — the build-once/serve-
// many deployment with no churn schedule — to the Source interface:
// generation 0, forever.
type staticSource struct{ view View }

// Current returns the one and only generation.
func (s *staticSource) Current() *View { return &s.view }

// Generation resolves only generation 0; nothing is ever evicted.
func (s *staticSource) Generation(n int) (*View, GenStatus) {
	if n == 0 {
		return &s.view, GenOK
	}
	return nil, GenUnknown
}

// Diff is unavailable: a static source retains no ground-truth worlds.
func (s *staticSource) Diff(from, to *View) (*churn.Audit, bool) { return nil, false }

// ReloadStatus is always the zero report: static sources never rebuild
// and can never degrade.
func (s *staticSource) ReloadStatus() ReloadStatus { return ReloadStatus{} }
