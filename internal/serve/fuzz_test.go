package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"stateowned/internal/churn"
)

// FuzzServeASNPath drives the /v1/asn/{asn} handler with arbitrary path
// segments. The handler's contract: never panic, answer only 200, 400
// or 404, and always produce a JSON body — no matter what the path
// parser hands it (overflow, signs, leading zeros, percent-escapes,
// non-digits, empty).
func FuzzServeASNPath(f *testing.F) {
	for _, seed := range []string{
		"100", "101", "0", "00100", "007",
		"4294967295", "4294967296", "18446744073709551616",
		"-1", "+1", "1e3", " 100", "100 ", "abc", "", ".", "..",
		"0x64", "１００", "100/extra", "%31%30%30", "\x00",
		strings.Repeat("9", 500),
	} {
		f.Add(seed)
	}

	srv := New(BuildIndex(fixtureDataset()), Options{CacheSize: 8})
	f.Fuzz(func(t *testing.T, raw string) {
		// Build the request the way a client would: escape the segment so
		// arbitrary bytes survive URL parsing; skip inputs even the escaper
		// cannot make a valid request-target from.
		target := "/v1/asn/" + url.PathEscape(raw)
		if _, err := url.ParseRequestURI(target); err != nil {
			t.Skip("unroutable request target")
		}
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, target, nil))

		switch w.Code {
		case http.StatusMovedPermanently:
			// Dot segments ("." / "..") are canonicalized by the stdlib mux
			// with a redirect before the handler ever runs.
			return
		case http.StatusOK, http.StatusBadRequest, http.StatusNotFound:
		default:
			t.Fatalf("GET %q: unexpected status %d (body %q)", target, w.Code, w.Body)
		}
		if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("GET %q: content-type %q, want application/json", target, ct)
		}
		if !json.Valid(w.Body.Bytes()) {
			t.Fatalf("GET %q: invalid JSON body %q", target, w.Body)
		}
	})
}

// FuzzGenParam drives the generation query parameters — ?gen= on the
// /v1 lookups and ?from=/?to= on /v1/diff — with arbitrary strings
// against a generational source with an eviction horizon. Contract:
// never panic, answer only 200, 400 (malformed or negative), 404
// (never built) or 410 (evicted), and always produce a non-empty valid
// JSON body.
func FuzzGenParam(f *testing.F) {
	for _, seed := range []string{
		"0", "1", "2", "3", "7", "007", "+1", "-1", "-9", "", " ", "1 ",
		"abc", "1.5", "1e2", "0x1", "２",
		"2147483647", "2147483648", "-2147483649",
		"99999999999999999999", "-99999999999999999999",
		strings.Repeat("9", 400), "\x00", "null",
	} {
		f.Add(seed, seed)
	}

	src := &fakeSource{
		views: map[int]*View{
			2: {Gen: 2, Index: BuildIndex(fixtureDataset())},
			3: {Gen: 3, Index: BuildIndex(gen1Dataset())},
		},
		current: 3,
		oldest:  2, // generations 0 and 1 were built, then evicted
		audit:   &churn.Audit{StillValid: 1, MaintenanceFraction: 1},
	}
	srv := NewDynamic(src, Options{CacheSize: 32})

	f.Fuzz(func(t *testing.T, rawA, rawB string) {
		targets := []string{
			"/v1/asn/100?gen=" + url.QueryEscape(rawA),
			"/v1/search?name=angola&gen=" + url.QueryEscape(rawA),
			"/v1/dataset?gen=" + url.QueryEscape(rawA),
			"/v1/diff?from=" + url.QueryEscape(rawA) + "&to=" + url.QueryEscape(rawB),
		}
		for _, target := range targets {
			w := httptest.NewRecorder()
			srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, target, nil))
			switch w.Code {
			case http.StatusOK, http.StatusBadRequest, http.StatusNotFound, http.StatusGone:
			default:
				t.Fatalf("GET %q: unexpected status %d (body %q)", target, w.Code, w.Body)
			}
			if w.Body.Len() == 0 {
				t.Fatalf("GET %q: empty body", target)
			}
			if !json.Valid(w.Body.Bytes()) {
				t.Fatalf("GET %q: invalid JSON body %q", target, w.Body)
			}
		}
	})
}
