package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"stateowned/internal/churn"
)

// FuzzServeASNPath drives the /v1/asn/{asn} handler with arbitrary path
// segments. The handler's contract: never panic, answer only 200, 400
// or 404, and always produce a JSON body — no matter what the path
// parser hands it (overflow, signs, leading zeros, percent-escapes,
// non-digits, empty).
func FuzzServeASNPath(f *testing.F) {
	for _, seed := range []string{
		"100", "101", "0", "00100", "007",
		"4294967295", "4294967296", "18446744073709551616",
		"-1", "+1", "1e3", " 100", "100 ", "abc", "", ".", "..",
		"0x64", "１００", "100/extra", "%31%30%30", "\x00",
		strings.Repeat("9", 500),
	} {
		f.Add(seed)
	}

	srv := New(BuildIndex(fixtureDataset()), Options{CacheSize: 8})
	f.Fuzz(func(t *testing.T, raw string) {
		// Build the request the way a client would: escape the segment so
		// arbitrary bytes survive URL parsing; skip inputs even the escaper
		// cannot make a valid request-target from.
		target := "/v1/asn/" + url.PathEscape(raw)
		if _, err := url.ParseRequestURI(target); err != nil {
			t.Skip("unroutable request target")
		}
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, target, nil))

		switch w.Code {
		case http.StatusMovedPermanently:
			// Dot segments ("." / "..") are canonicalized by the stdlib mux
			// with a redirect before the handler ever runs.
			return
		case http.StatusOK, http.StatusBadRequest, http.StatusNotFound:
		default:
			t.Fatalf("GET %q: unexpected status %d (body %q)", target, w.Code, w.Body)
		}
		if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("GET %q: content-type %q, want application/json", target, ct)
		}
		if !json.Valid(w.Body.Bytes()) {
			t.Fatalf("GET %q: invalid JSON body %q", target, w.Body)
		}
	})
}

// FuzzGenParam drives the generation query parameters — ?gen= on the
// /v1 lookups and ?from=/?to= on /v1/diff — with arbitrary strings
// against a generational source with an eviction horizon. Contract:
// never panic, answer only 200, 400 (malformed or negative), 404
// (never built) or 410 (evicted), and always produce a non-empty valid
// JSON body.
func FuzzGenParam(f *testing.F) {
	for _, seed := range []string{
		"0", "1", "2", "3", "7", "007", "+1", "-1", "-9", "", " ", "1 ",
		"abc", "1.5", "1e2", "0x1", "２",
		"2147483647", "2147483648", "-2147483649",
		"99999999999999999999", "-99999999999999999999",
		strings.Repeat("9", 400), "\x00", "null",
	} {
		f.Add(seed, seed)
	}

	src := &fakeSource{
		views: map[int]*View{
			2: {Gen: 2, Index: BuildIndex(fixtureDataset())},
			3: {Gen: 3, Index: BuildIndex(gen1Dataset())},
		},
		current: 3,
		oldest:  2, // generations 0 and 1 were built, then evicted
		audit:   &churn.Audit{StillValid: 1, MaintenanceFraction: 1},
	}
	srv := NewDynamic(src, Options{CacheSize: 32})

	f.Fuzz(func(t *testing.T, rawA, rawB string) {
		targets := []string{
			"/v1/asn/100?gen=" + url.QueryEscape(rawA),
			"/v1/search?name=angola&gen=" + url.QueryEscape(rawA),
			"/v1/dataset?gen=" + url.QueryEscape(rawA),
			"/v1/diff?from=" + url.QueryEscape(rawA) + "&to=" + url.QueryEscape(rawB),
		}
		for _, target := range targets {
			w := httptest.NewRecorder()
			srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, target, nil))
			switch w.Code {
			case http.StatusOK, http.StatusBadRequest, http.StatusNotFound, http.StatusGone:
			default:
				t.Fatalf("GET %q: unexpected status %d (body %q)", target, w.Code, w.Body)
			}
			if w.Body.Len() == 0 {
				t.Fatalf("GET %q: empty body", target)
			}
			if !json.Valid(w.Body.Bytes()) {
				t.Fatalf("GET %q: invalid JSON body %q", target, w.Body)
			}
		}
	})
}

// FuzzAdmissionConfig drives the admission-control configuration
// surface with arbitrary values — negative, zero, huge, overflowing —
// and proves the contract the flag layer relies on: Normalize always
// lands in safe bounds and a limiter built from ANY input serves a
// full admit/shed/release cycle without panicking or deadlocking.
func FuzzAdmissionConfig(f *testing.F) {
	f.Add(0, 0, int64(0), int64(0))
	f.Add(-1, -1, int64(-1), int64(-1))
	f.Add(1, 0, int64(1), int64(time.Second))
	f.Add(math.MaxInt, math.MaxInt, int64(math.MaxInt64), int64(math.MaxInt64))
	f.Add(math.MinInt, math.MinInt, int64(math.MinInt64), int64(math.MinInt64))
	f.Add(1<<20, 1<<20, int64(time.Hour), int64(time.Hour))
	f.Add(2, -5, int64(-time.Hour), int64(1))

	f.Fuzz(func(t *testing.T, maxInFlight, maxQueue int, queueWaitNs, retryAfterNs int64) {
		cfg := AdmissionConfig{
			MaxInFlight: maxInFlight,
			MaxQueue:    maxQueue,
			QueueWait:   time.Duration(queueWaitNs),
			RetryAfter:  time.Duration(retryAfterNs),
		}
		norm := cfg.Normalize()
		if norm.MaxInFlight < 1 || norm.MaxInFlight > MaxInFlightCap {
			t.Fatalf("Normalize(%+v).MaxInFlight = %d out of [1, %d]", cfg, norm.MaxInFlight, MaxInFlightCap)
		}
		if norm.MaxQueue < 0 || norm.MaxQueue > MaxInFlightCap {
			t.Fatalf("Normalize(%+v).MaxQueue = %d out of [0, %d]", cfg, norm.MaxQueue, MaxInFlightCap)
		}
		if norm.QueueWait < 0 {
			t.Fatalf("Normalize(%+v).QueueWait = %v negative", cfg, norm.QueueWait)
		}
		if norm.QueueWait == 0 && norm.MaxQueue != 0 {
			t.Fatalf("Normalize(%+v): zero wait with a non-empty queue would park requests forever", cfg)
		}
		if norm.RetryAfter <= 0 {
			t.Fatalf("Normalize(%+v).RetryAfter = %v", cfg, norm.RetryAfter)
		}
		// Normalize is not a fixed point (zero doubles as "use the
		// default", so a normalized no-queue config re-normalizes to the
		// default queue) — but re-normalizing must stay in bounds.
		renorm := norm.Normalize()
		if renorm.MaxInFlight < 1 || renorm.MaxInFlight > MaxInFlightCap ||
			renorm.MaxQueue < 0 || renorm.MaxQueue > MaxInFlightCap || renorm.QueueWait < 0 {
			t.Fatalf("re-Normalize(%+v) = %+v left safe bounds", norm, renorm)
		}

		// A limiter built from the raw config must run a full cycle
		// without panic or deadlock: the instant timer guarantees queue
		// waits cannot park, whatever the durations were.
		l := NewLimiter(cfg, instantFire)
		if l.RetryAfterSeconds() < 1 {
			t.Fatalf("RetryAfterSeconds = %d < 1", l.RetryAfterSeconds())
		}
		var releases []func()
		for i := 0; i < 3; i++ {
			rel, v := l.Acquire(nil)
			if v == Admitted {
				releases = append(releases, rel)
			}
		}
		for _, rel := range releases {
			rel()
		}
		st := l.Stats()
		if st.Admitted+st.ShedQueueFull+st.ShedTimeout+st.ShedCanceled != 3 {
			t.Fatalf("verdicts do not sum: %+v", st)
		}
	})
}
