package as2org

import (
	"testing"

	"stateowned/internal/whois"
	"stateowned/internal/world"
)

var (
	testW = world.Generate(world.Config{Seed: 7, Scale: 0.1})
	reg   = whois.Build(testW)
	testM = Infer(reg)
)

func TestEveryASClustered(t *testing.T) {
	for _, asn := range testW.ASNList {
		org, ok := testM.OrgOf(asn)
		if !ok {
			t.Fatalf("AS%d unclustered", asn)
		}
		found := false
		for _, a := range org.ASNs {
			if a == asn {
				found = true
			}
		}
		if !found {
			t.Fatalf("AS%d not in its own org", asn)
		}
	}
}

func TestSiblingsSymmetric(t *testing.T) {
	for _, asn := range testW.ASNList[:500] {
		for _, sib := range testM.Siblings(asn) {
			back := testM.Siblings(sib)
			found := false
			for _, b := range back {
				if b == asn {
					found = true
				}
			}
			if !found {
				t.Fatalf("sibling relation asymmetric: %d <-> %d", asn, sib)
			}
		}
	}
}

func TestInheritsWhoisFailure(t *testing.T) {
	missed := MissedSiblings(testM, testW)
	if missed == 0 {
		t.Error("AS2Org captured all siblings; the documented failure mode is absent")
	}
	// But most siblings must cluster.
	totalSiblingLinks := 0
	for _, id := range testW.OperatorIDs {
		if n := len(testW.Operators[id].ASNs); n > 1 {
			totalSiblingLinks += n - 1
		}
	}
	if frac := float64(missed) / float64(totalSiblingLinks); frac > 0.45 {
		t.Errorf("missed fraction %.2f too high", frac)
	}
}

func TestDistinctOrgs(t *testing.T) {
	// Telenor's primary siblings share an org: 7 ASNs fewer orgs.
	telenor, _ := testW.OperatorOfAS(2119)
	n := testM.DistinctOrgs(telenor.ASNs)
	if n < 1 || n >= len(telenor.ASNs) {
		t.Errorf("Telenor orgs = %d of %d ASNs", n, len(telenor.ASNs))
	}
	if got := testM.DistinctOrgs(nil); got != 0 {
		t.Errorf("empty DistinctOrgs = %d", got)
	}
}

func TestOrgsListed(t *testing.T) {
	if testM.NumOrgs() == 0 {
		t.Fatal("no orgs")
	}
	ids := testM.Orgs()
	if len(ids) != testM.NumOrgs() {
		t.Fatal("Orgs() length mismatch")
	}
	if _, ok := testM.Org(ids[0]); !ok {
		t.Fatal("Org lookup failed")
	}
}
