// Package as2org reimplements the inference behind CAIDA's AS-to-
// Organization mapping (Cai et al., IMC 2010): ASNs are clustered into
// organizations by the WHOIS organization records they are registered
// under. The paper uses AS2Org twice — to count distinct organizations in
// stage 1 and to expand confirmed companies to their sibling ASNs in
// stage 3 — and documents its key limitation: siblings registered under
// different org records (post-acquisition) are not clustered, which this
// implementation faithfully inherits from the simulated WHOIS.
package as2org

import (
	"sort"

	"stateowned/internal/whois"
	"stateowned/internal/world"
)

// Org is one inferred organization.
type Org struct {
	ID      string // org handle (from WHOIS)
	Name    string
	Country string
	ASNs    []world.ASN
}

// Mapping is the frozen AS2Org dataset.
type Mapping struct {
	orgOf map[world.ASN]string
	orgs  map[string]*Org
}

// Infer clusters the registry's ASNs by their WHOIS org handle.
func Infer(reg *whois.Registry) *Mapping {
	m := &Mapping{
		orgOf: make(map[world.ASN]string),
		orgs:  make(map[string]*Org),
	}
	for _, orgID := range reg.Orgs() {
		asns := reg.ASNsOfOrg(orgID)
		if len(asns) == 0 {
			continue
		}
		rec, _ := reg.Lookup(asns[0])
		org := &Org{ID: orgID, Name: rec.OrgName, Country: rec.Country, ASNs: asns}
		m.orgs[orgID] = org
		for _, a := range asns {
			m.orgOf[a] = orgID
		}
	}
	return m
}

// OrgOf returns the organization an ASN belongs to.
func (m *Mapping) OrgOf(a world.ASN) (*Org, bool) {
	id, ok := m.orgOf[a]
	if !ok {
		return nil, false
	}
	return m.orgs[id], true
}

// Siblings returns the other ASNs in the same inferred organization.
func (m *Mapping) Siblings(a world.ASN) []world.ASN {
	org, ok := m.OrgOf(a)
	if !ok {
		return nil
	}
	var out []world.ASN
	for _, s := range org.ASNs {
		if s != a {
			out = append(out, s)
		}
	}
	return out
}

// NumOrgs reports how many organizations were inferred.
func (m *Mapping) NumOrgs() int { return len(m.orgs) }

// Orgs returns all org IDs, sorted.
func (m *Mapping) Orgs() []string {
	out := make([]string, 0, len(m.orgs))
	for id := range m.orgs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Org returns one organization by ID.
func (m *Mapping) Org(id string) (*Org, bool) {
	o, ok := m.orgs[id]
	return o, ok
}

// DistinctOrgs counts the organizations behind a set of ASNs (the paper's
// "1091 ASes ... belong to 1023 different organizations" statistic).
func (m *Mapping) DistinctOrgs(asns []world.ASN) int {
	seen := map[string]bool{}
	for _, a := range asns {
		if id, ok := m.orgOf[a]; ok {
			seen[id] = true
		} else {
			seen["asn:"+string(rune(a))] = true // unregistered: its own org
		}
	}
	return len(seen)
}

// MissedSiblings reports, against the ground-truth world, sibling pairs
// AS2Org fails to cluster (the acquisition-renamed org records). Used by
// tests and the ablation bench to quantify the stage-3 recall loss the
// paper describes contributing fixes back for.
func MissedSiblings(m *Mapping, w *world.World) int {
	missed := 0
	for _, id := range w.OperatorIDs {
		op := w.Operators[id]
		if len(op.ASNs) < 2 {
			continue
		}
		base, ok := m.orgOf[op.ASNs[0]]
		if !ok {
			continue
		}
		for _, a := range op.ASNs[1:] {
			if m.orgOf[a] != base {
				missed++
			}
		}
	}
	return missed
}
