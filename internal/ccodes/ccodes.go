// Package ccodes provides the ISO 3166-1 alpha-2 country table used across
// the simulator: country codes, display names, UN macro-regions and the
// Regional Internet Registry (RIR) that serves each country.
//
// The paper groups results by RIR (Table 4, Figure 4) and by continent
// (Figure 1, §8), so both groupings are first-class here. The table is
// intentionally static data: it is the one piece of the real world that a
// synthetic reproduction can embed verbatim.
package ccodes

import (
	"fmt"
	"sort"
)

// RIR identifies one of the five Regional Internet Registries.
type RIR uint8

// The five RIRs, plus RIRUnknown for territories with no clear delegation.
const (
	RIRUnknown RIR = iota
	AFRINIC
	APNIC
	ARIN
	LACNIC
	RIPE
)

// String returns the registry's canonical name.
func (r RIR) String() string {
	switch r {
	case AFRINIC:
		return "AFRINIC"
	case APNIC:
		return "APNIC"
	case ARIN:
		return "ARIN"
	case LACNIC:
		return "LACNIC"
	case RIPE:
		return "RIPE"
	default:
		return "UNKNOWN"
	}
}

// AllRIRs lists the five registries in the order the paper's tables use.
func AllRIRs() []RIR { return []RIR{APNIC, RIPE, ARIN, AFRINIC, LACNIC} }

// Region is a UN macro-region (continent-level grouping).
type Region uint8

// Macro-regions used for prevalence modelling and Figure 1 commentary.
const (
	RegionUnknown Region = iota
	Africa
	Asia
	Europe
	NorthAmerica
	LatinAmerica
	Oceania
)

// String returns the region's display name.
func (g Region) String() string {
	switch g {
	case Africa:
		return "Africa"
	case Asia:
		return "Asia"
	case Europe:
		return "Europe"
	case NorthAmerica:
		return "North America"
	case LatinAmerica:
		return "Latin America"
	case Oceania:
		return "Oceania"
	default:
		return "Unknown"
	}
}

// Country is one ISO 3166-1 entry enriched with the groupings the pipeline
// and the analysis stages need.
type Country struct {
	Code      string // ISO 3166-1 alpha-2
	Name      string
	Region    Region
	Subregion string
	RIR       RIR
	// Population is a coarse national population estimate (thousands),
	// used by the world generator to size subscriber bases and address
	// allocations. Accuracy does not matter; relative order does.
	Population int
}

// table is the embedded country dataset. Codes follow ISO 3166-1; the RIR
// column follows the NRO's country-to-RIR delegation.
var table = []Country{
	// --- AFRINIC ---
	{"AO", "Angola", Africa, "Middle Africa", AFRINIC, 32866},
	{"BF", "Burkina Faso", Africa, "Western Africa", AFRINIC, 20903},
	{"BI", "Burundi", Africa, "Eastern Africa", AFRINIC, 11891},
	{"BJ", "Benin", Africa, "Western Africa", AFRINIC, 12123},
	{"BW", "Botswana", Africa, "Southern Africa", AFRINIC, 2352},
	{"CD", "DR Congo", Africa, "Middle Africa", AFRINIC, 89561},
	{"CF", "Central African Republic", Africa, "Middle Africa", AFRINIC, 4830},
	{"CG", "Congo", Africa, "Middle Africa", AFRINIC, 5518},
	{"CI", "Cote d'Ivoire", Africa, "Western Africa", AFRINIC, 26378},
	{"CM", "Cameroon", Africa, "Middle Africa", AFRINIC, 26546},
	{"CV", "Cabo Verde", Africa, "Western Africa", AFRINIC, 556},
	{"DJ", "Djibouti", Africa, "Eastern Africa", AFRINIC, 988},
	{"DZ", "Algeria", Africa, "Northern Africa", AFRINIC, 43851},
	{"EG", "Egypt", Africa, "Northern Africa", AFRINIC, 102334},
	{"ER", "Eritrea", Africa, "Eastern Africa", AFRINIC, 3546},
	{"ET", "Ethiopia", Africa, "Eastern Africa", AFRINIC, 114964},
	{"GA", "Gabon", Africa, "Middle Africa", AFRINIC, 2226},
	{"GH", "Ghana", Africa, "Western Africa", AFRINIC, 31073},
	{"GM", "Gambia", Africa, "Western Africa", AFRINIC, 2417},
	{"GN", "Guinea", Africa, "Western Africa", AFRINIC, 13133},
	{"GQ", "Equatorial Guinea", Africa, "Middle Africa", AFRINIC, 1403},
	{"GW", "Guinea-Bissau", Africa, "Western Africa", AFRINIC, 1968},
	{"KE", "Kenya", Africa, "Eastern Africa", AFRINIC, 53771},
	{"KM", "Comoros", Africa, "Eastern Africa", AFRINIC, 870},
	{"LR", "Liberia", Africa, "Western Africa", AFRINIC, 5058},
	{"LS", "Lesotho", Africa, "Southern Africa", AFRINIC, 2142},
	{"LY", "Libya", Africa, "Northern Africa", AFRINIC, 6871},
	{"MA", "Morocco", Africa, "Northern Africa", AFRINIC, 36911},
	{"MG", "Madagascar", Africa, "Eastern Africa", AFRINIC, 27691},
	{"ML", "Mali", Africa, "Western Africa", AFRINIC, 20251},
	{"MR", "Mauritania", Africa, "Western Africa", AFRINIC, 4650},
	{"MU", "Mauritius", Africa, "Eastern Africa", AFRINIC, 1272},
	{"MW", "Malawi", Africa, "Eastern Africa", AFRINIC, 19130},
	{"MZ", "Mozambique", Africa, "Eastern Africa", AFRINIC, 31255},
	{"NA", "Namibia", Africa, "Southern Africa", AFRINIC, 2541},
	{"NE", "Niger", Africa, "Western Africa", AFRINIC, 24207},
	{"NG", "Nigeria", Africa, "Western Africa", AFRINIC, 206140},
	{"RW", "Rwanda", Africa, "Eastern Africa", AFRINIC, 12952},
	{"SC", "Seychelles", Africa, "Eastern Africa", AFRINIC, 98},
	{"SD", "Sudan", Africa, "Northern Africa", AFRINIC, 43849},
	{"SL", "Sierra Leone", Africa, "Western Africa", AFRINIC, 7977},
	{"SN", "Senegal", Africa, "Western Africa", AFRINIC, 16744},
	{"SO", "Somalia", Africa, "Eastern Africa", AFRINIC, 15893},
	{"SS", "South Sudan", Africa, "Eastern Africa", AFRINIC, 11194},
	{"ST", "Sao Tome and Principe", Africa, "Middle Africa", AFRINIC, 219},
	{"SZ", "Eswatini", Africa, "Southern Africa", AFRINIC, 1160},
	{"TD", "Chad", Africa, "Middle Africa", AFRINIC, 16426},
	{"TG", "Togo", Africa, "Western Africa", AFRINIC, 8279},
	{"TN", "Tunisia", Africa, "Northern Africa", AFRINIC, 11819},
	{"TZ", "Tanzania", Africa, "Eastern Africa", AFRINIC, 59734},
	{"UG", "Uganda", Africa, "Eastern Africa", AFRINIC, 45741},
	{"ZA", "South Africa", Africa, "Southern Africa", AFRINIC, 59309},
	{"ZM", "Zambia", Africa, "Eastern Africa", AFRINIC, 18384},
	{"ZW", "Zimbabwe", Africa, "Eastern Africa", AFRINIC, 14863},

	// --- APNIC ---
	{"AF", "Afghanistan", Asia, "Southern Asia", APNIC, 38928},
	{"AU", "Australia", Oceania, "Australia and New Zealand", APNIC, 25500},
	{"BD", "Bangladesh", Asia, "Southern Asia", APNIC, 164689},
	{"BN", "Brunei", Asia, "South-Eastern Asia", APNIC, 437},
	{"BT", "Bhutan", Asia, "Southern Asia", APNIC, 772},
	{"CN", "China", Asia, "Eastern Asia", APNIC, 1439324},
	{"FJ", "Fiji", Oceania, "Melanesia", APNIC, 896},
	{"FM", "Micronesia", Oceania, "Micronesia", APNIC, 115},
	{"HK", "Hong Kong", Asia, "Eastern Asia", APNIC, 7497},
	{"ID", "Indonesia", Asia, "South-Eastern Asia", APNIC, 273524},
	{"IN", "India", Asia, "Southern Asia", APNIC, 1380004},
	{"JP", "Japan", Asia, "Eastern Asia", APNIC, 126476},
	{"KH", "Cambodia", Asia, "South-Eastern Asia", APNIC, 16719},
	{"KI", "Kiribati", Oceania, "Micronesia", APNIC, 119},
	{"KP", "North Korea", Asia, "Eastern Asia", APNIC, 25779},
	{"KR", "South Korea", Asia, "Eastern Asia", APNIC, 51269},
	{"LA", "Laos", Asia, "South-Eastern Asia", APNIC, 7276},
	{"LK", "Sri Lanka", Asia, "Southern Asia", APNIC, 21413},
	{"MM", "Myanmar", Asia, "South-Eastern Asia", APNIC, 54410},
	{"MN", "Mongolia", Asia, "Eastern Asia", APNIC, 3278},
	{"MO", "Macao", Asia, "Eastern Asia", APNIC, 649},
	{"MV", "Maldives", Asia, "Southern Asia", APNIC, 541},
	{"MY", "Malaysia", Asia, "South-Eastern Asia", APNIC, 32366},
	{"NP", "Nepal", Asia, "Southern Asia", APNIC, 29137},
	{"NR", "Nauru", Oceania, "Micronesia", APNIC, 11},
	{"NZ", "New Zealand", Oceania, "Australia and New Zealand", APNIC, 4822},
	{"PG", "Papua New Guinea", Oceania, "Melanesia", APNIC, 8947},
	{"PH", "Philippines", Asia, "South-Eastern Asia", APNIC, 109581},
	{"PK", "Pakistan", Asia, "Southern Asia", APNIC, 220892},
	{"SB", "Solomon Islands", Oceania, "Melanesia", APNIC, 687},
	{"SG", "Singapore", Asia, "South-Eastern Asia", APNIC, 5850},
	{"TH", "Thailand", Asia, "South-Eastern Asia", APNIC, 69800},
	{"TL", "Timor-Leste", Asia, "South-Eastern Asia", APNIC, 1318},
	{"TO", "Tonga", Oceania, "Polynesia", APNIC, 106},
	{"TV", "Tuvalu", Oceania, "Polynesia", APNIC, 12},
	{"TW", "Taiwan", Asia, "Eastern Asia", APNIC, 23817},
	{"VN", "Vietnam", Asia, "South-Eastern Asia", APNIC, 97339},
	{"VU", "Vanuatu", Oceania, "Melanesia", APNIC, 307},
	{"WS", "Samoa", Oceania, "Polynesia", APNIC, 198},

	// --- ARIN ---
	{"AG", "Antigua and Barbuda", LatinAmerica, "Caribbean", ARIN, 98},
	{"BM", "Bermuda", NorthAmerica, "Northern America", ARIN, 62},
	{"BS", "Bahamas", LatinAmerica, "Caribbean", ARIN, 393},
	{"CA", "Canada", NorthAmerica, "Northern America", ARIN, 37742},
	{"GD", "Grenada", LatinAmerica, "Caribbean", ARIN, 113},
	{"GL", "Greenland", NorthAmerica, "Northern America", RIPE, 57},
	{"JM", "Jamaica", LatinAmerica, "Caribbean", ARIN, 2961},
	{"KN", "Saint Kitts and Nevis", LatinAmerica, "Caribbean", ARIN, 53},
	{"LC", "Saint Lucia", LatinAmerica, "Caribbean", ARIN, 184},
	{"US", "United States", NorthAmerica, "Northern America", ARIN, 331003},
	{"VC", "Saint Vincent", LatinAmerica, "Caribbean", ARIN, 111},

	// --- LACNIC ---
	{"AR", "Argentina", LatinAmerica, "South America", LACNIC, 45196},
	{"BB", "Barbados", LatinAmerica, "Caribbean", LACNIC, 287},
	{"BO", "Bolivia", LatinAmerica, "South America", LACNIC, 11673},
	{"BR", "Brazil", LatinAmerica, "South America", LACNIC, 212559},
	{"BZ", "Belize", LatinAmerica, "Central America", LACNIC, 398},
	{"CL", "Chile", LatinAmerica, "South America", LACNIC, 19116},
	{"CO", "Colombia", LatinAmerica, "South America", LACNIC, 50883},
	{"CR", "Costa Rica", LatinAmerica, "Central America", LACNIC, 5094},
	{"CU", "Cuba", LatinAmerica, "Caribbean", LACNIC, 11327},
	{"DO", "Dominican Republic", LatinAmerica, "Caribbean", LACNIC, 10848},
	{"EC", "Ecuador", LatinAmerica, "South America", LACNIC, 17643},
	{"GT", "Guatemala", LatinAmerica, "Central America", LACNIC, 17916},
	{"GY", "Guyana", LatinAmerica, "South America", LACNIC, 787},
	{"HN", "Honduras", LatinAmerica, "Central America", LACNIC, 9905},
	{"HT", "Haiti", LatinAmerica, "Caribbean", LACNIC, 11403},
	{"MX", "Mexico", LatinAmerica, "Central America", LACNIC, 128933},
	{"NI", "Nicaragua", LatinAmerica, "Central America", LACNIC, 6625},
	{"PA", "Panama", LatinAmerica, "Central America", LACNIC, 4315},
	{"PE", "Peru", LatinAmerica, "South America", LACNIC, 32972},
	{"PY", "Paraguay", LatinAmerica, "South America", LACNIC, 7133},
	{"SR", "Suriname", LatinAmerica, "South America", LACNIC, 587},
	{"SV", "El Salvador", LatinAmerica, "Central America", LACNIC, 6486},
	{"TT", "Trinidad and Tobago", LatinAmerica, "Caribbean", LACNIC, 1399},
	{"UY", "Uruguay", LatinAmerica, "South America", LACNIC, 3474},
	{"VE", "Venezuela", LatinAmerica, "South America", LACNIC, 28436},

	// --- RIPE ---
	{"AD", "Andorra", Europe, "Southern Europe", RIPE, 77},
	{"AE", "United Arab Emirates", Asia, "Western Asia", RIPE, 9890},
	{"AL", "Albania", Europe, "Southern Europe", RIPE, 2878},
	{"AM", "Armenia", Asia, "Western Asia", RIPE, 2963},
	{"AT", "Austria", Europe, "Western Europe", RIPE, 9006},
	{"AZ", "Azerbaijan", Asia, "Western Asia", RIPE, 10139},
	{"BA", "Bosnia and Herzegovina", Europe, "Southern Europe", RIPE, 3281},
	{"BE", "Belgium", Europe, "Western Europe", RIPE, 11590},
	{"BG", "Bulgaria", Europe, "Eastern Europe", RIPE, 6948},
	{"BH", "Bahrain", Asia, "Western Asia", RIPE, 1702},
	{"BY", "Belarus", Europe, "Eastern Europe", RIPE, 9449},
	{"CH", "Switzerland", Europe, "Western Europe", RIPE, 8655},
	{"CY", "Cyprus", Europe, "Southern Europe", RIPE, 1207},
	{"CZ", "Czechia", Europe, "Eastern Europe", RIPE, 10709},
	{"DE", "Germany", Europe, "Western Europe", RIPE, 83784},
	{"DK", "Denmark", Europe, "Northern Europe", RIPE, 5792},
	{"EE", "Estonia", Europe, "Northern Europe", RIPE, 1327},
	{"ES", "Spain", Europe, "Southern Europe", RIPE, 46755},
	{"FI", "Finland", Europe, "Northern Europe", RIPE, 5541},
	{"FR", "France", Europe, "Western Europe", RIPE, 65274},
	{"GB", "United Kingdom", Europe, "Northern Europe", RIPE, 67886},
	{"GE", "Georgia", Asia, "Western Asia", RIPE, 3989},
	{"GR", "Greece", Europe, "Southern Europe", RIPE, 10423},
	{"HR", "Croatia", Europe, "Southern Europe", RIPE, 4105},
	{"HU", "Hungary", Europe, "Eastern Europe", RIPE, 9660},
	{"IE", "Ireland", Europe, "Northern Europe", RIPE, 4938},
	{"IL", "Israel", Asia, "Western Asia", RIPE, 8656},
	{"IM", "Isle of Man", Europe, "Northern Europe", RIPE, 85},
	{"IQ", "Iraq", Asia, "Western Asia", RIPE, 40223},
	{"IR", "Iran", Asia, "Southern Asia", RIPE, 83993},
	{"IS", "Iceland", Europe, "Northern Europe", RIPE, 341},
	{"IT", "Italy", Europe, "Southern Europe", RIPE, 60462},
	{"JO", "Jordan", Asia, "Western Asia", RIPE, 10203},
	{"KG", "Kyrgyzstan", Asia, "Central Asia", RIPE, 6524},
	{"KW", "Kuwait", Asia, "Western Asia", RIPE, 4271},
	{"KZ", "Kazakhstan", Asia, "Central Asia", RIPE, 18777},
	{"LB", "Lebanon", Asia, "Western Asia", RIPE, 6825},
	{"LI", "Liechtenstein", Europe, "Western Europe", RIPE, 38},
	{"LT", "Lithuania", Europe, "Northern Europe", RIPE, 2722},
	{"LU", "Luxembourg", Europe, "Western Europe", RIPE, 626},
	{"LV", "Latvia", Europe, "Northern Europe", RIPE, 1886},
	{"MC", "Monaco", Europe, "Western Europe", RIPE, 39},
	{"MD", "Moldova", Europe, "Eastern Europe", RIPE, 4034},
	{"ME", "Montenegro", Europe, "Southern Europe", RIPE, 628},
	{"MK", "North Macedonia", Europe, "Southern Europe", RIPE, 2083},
	{"MT", "Malta", Europe, "Southern Europe", RIPE, 442},
	{"NL", "Netherlands", Europe, "Western Europe", RIPE, 17135},
	{"NO", "Norway", Europe, "Northern Europe", RIPE, 5421},
	{"OM", "Oman", Asia, "Western Asia", RIPE, 5107},
	{"PL", "Poland", Europe, "Eastern Europe", RIPE, 37847},
	{"PS", "Palestine", Asia, "Western Asia", RIPE, 5101},
	{"PT", "Portugal", Europe, "Southern Europe", RIPE, 10197},
	{"QA", "Qatar", Asia, "Western Asia", RIPE, 2881},
	{"RO", "Romania", Europe, "Eastern Europe", RIPE, 19238},
	{"RS", "Serbia", Europe, "Southern Europe", RIPE, 8737},
	{"RU", "Russia", Europe, "Eastern Europe", RIPE, 145934},
	{"SA", "Saudi Arabia", Asia, "Western Asia", RIPE, 34814},
	{"SE", "Sweden", Europe, "Northern Europe", RIPE, 10099},
	{"SI", "Slovenia", Europe, "Southern Europe", RIPE, 2079},
	{"SK", "Slovakia", Europe, "Eastern Europe", RIPE, 5460},
	{"SM", "San Marino", Europe, "Southern Europe", RIPE, 34},
	{"SY", "Syria", Asia, "Western Asia", RIPE, 17501},
	{"TJ", "Tajikistan", Asia, "Central Asia", RIPE, 9538},
	{"TM", "Turkmenistan", Asia, "Central Asia", RIPE, 6031},
	{"TR", "Turkey", Asia, "Western Asia", RIPE, 84339},
	{"UA", "Ukraine", Europe, "Eastern Europe", RIPE, 43734},
	{"UZ", "Uzbekistan", Asia, "Central Asia", RIPE, 33469},
	{"YE", "Yemen", Asia, "Western Asia", RIPE, 29826},
}

var byCode map[string]*Country

func init() {
	byCode = make(map[string]*Country, len(table))
	for i := range table {
		c := &table[i]
		if _, dup := byCode[c.Code]; dup {
			panic(fmt.Sprintf("ccodes: duplicate country code %q", c.Code))
		}
		byCode[c.Code] = c
	}
}

// ByCode returns the country for an ISO alpha-2 code.
func ByCode(code string) (Country, bool) {
	c, ok := byCode[code]
	if !ok {
		return Country{}, false
	}
	return *c, true
}

// MustByCode is ByCode but panics on unknown codes; used for embedded
// scenario data that must reference valid countries.
func MustByCode(code string) Country {
	c, ok := ByCode(code)
	if !ok {
		panic(fmt.Sprintf("ccodes: unknown country code %q", code))
	}
	return c
}

// All returns every country, sorted by code. The returned slice is a copy.
func All() []Country {
	out := make([]Country, len(table))
	copy(out, table)
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// InRIR returns the countries served by the given registry, sorted by code.
func InRIR(r RIR) []Country {
	var out []Country
	for _, c := range All() {
		if c.RIR == r {
			out = append(out, c)
		}
	}
	return out
}

// InRegion returns the countries in the given macro-region, sorted by code.
func InRegion(g Region) []Country {
	var out []Country
	for _, c := range All() {
		if c.Region == g {
			out = append(out, c)
		}
	}
	return out
}

// Count reports the total number of countries in the table.
func Count() int { return len(table) }
