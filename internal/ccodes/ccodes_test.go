package ccodes

import "testing"

func TestTableIntegrity(t *testing.T) {
	if Count() < 180 {
		t.Fatalf("country table too small: %d", Count())
	}
	seen := map[string]bool{}
	for _, c := range All() {
		if len(c.Code) != 2 {
			t.Errorf("bad code %q", c.Code)
		}
		if seen[c.Code] {
			t.Errorf("duplicate code %q", c.Code)
		}
		seen[c.Code] = true
		if c.Name == "" {
			t.Errorf("%s: empty name", c.Code)
		}
		if c.Region == RegionUnknown {
			t.Errorf("%s: unknown region", c.Code)
		}
		if c.RIR == RIRUnknown {
			t.Errorf("%s: unknown RIR", c.Code)
		}
		if c.Population <= 0 {
			t.Errorf("%s: non-positive population", c.Code)
		}
	}
}

// TestPaperCountriesPresent checks every country code the paper's tables
// mention resolves, since the world generator plants anchors keyed by
// these codes.
func TestPaperCountriesPresent(t *testing.T) {
	codes := []string{
		// Table 3 owners and hosts.
		"AE", "CN", "QA", "NO", "VN", "SG", "MY", "CO", "RS", "ID", "BH",
		"TN", "SA", "FJ", "MU", "BE", "CH", "RU", "SI",
		"AF", "BF", "BJ", "CI", "EG", "GA", "MA", "ML", "MR", "NE", "TD",
		"TG", "AU", "GB", "HK", "MO", "NL", "PK", "US", "ZA", "DZ", "IQ",
		"KW", "MM", "MV", "OM", "PS", "BD", "DK", "FI", "SE", "TH", "BI",
		"CM", "HT", "KH", "LA", "MZ", "PE", "TL", "TZ", "JP", "KR", "LK",
		"TW", "NP", "AR", "BR", "CL", "AT", "BA", "ME", "IM", "JO", "CY",
		"MT", "VU", "UG", "LU", "IT", "AM", "AL",
		// Table 8 high-footprint countries.
		"ET", "TV", "CU", "GL", "DJ", "SY", "ER", "SR", "LY", "YE", "AD",
		"IR", "UY", "TM",
		// §7 / §8 others.
		"UZ", "KZ", "TJ", "AZ", "AO", "CG", "PL", "DE", "FR", "IN", "BY",
		"VE", "CR",
	}
	for _, code := range codes {
		if _, ok := ByCode(code); !ok {
			t.Errorf("paper country %s missing from table", code)
		}
	}
}

func TestRIRGrouping(t *testing.T) {
	total := 0
	for _, r := range AllRIRs() {
		cs := InRIR(r)
		if len(cs) == 0 {
			t.Errorf("RIR %v has no countries", r)
		}
		total += len(cs)
		for _, c := range cs {
			if c.RIR != r {
				t.Errorf("InRIR(%v) returned %s with RIR %v", r, c.Code, c.RIR)
			}
		}
	}
	if total != Count() {
		t.Errorf("RIR partition covers %d of %d countries", total, Count())
	}
}

func TestRegionGrouping(t *testing.T) {
	regions := []Region{Africa, Asia, Europe, NorthAmerica, LatinAmerica, Oceania}
	total := 0
	for _, g := range regions {
		cs := InRegion(g)
		total += len(cs)
	}
	if total != Count() {
		t.Errorf("region partition covers %d of %d countries", total, Count())
	}
}

func TestSpecificAssignments(t *testing.T) {
	cases := []struct {
		code string
		rir  RIR
		reg  Region
	}{
		{"NO", RIPE, Europe},
		{"SG", APNIC, Asia},
		{"US", ARIN, NorthAmerica},
		{"AR", LACNIC, LatinAmerica},
		{"AO", AFRINIC, Africa},
		{"AU", APNIC, Oceania},
		{"IR", RIPE, Asia}, // Iran is RIPE-served.
		{"EG", AFRINIC, Africa},
		{"GL", RIPE, NorthAmerica}, // Greenland: RIPE via Denmark.
	}
	for _, tc := range cases {
		c := MustByCode(tc.code)
		if c.RIR != tc.rir {
			t.Errorf("%s: RIR = %v, want %v", tc.code, c.RIR, tc.rir)
		}
		if c.Region != tc.reg {
			t.Errorf("%s: region = %v, want %v", tc.code, c.Region, tc.reg)
		}
	}
}

func TestByCodeUnknown(t *testing.T) {
	if _, ok := ByCode("XX"); ok {
		t.Error("ByCode(XX) should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustByCode(XX) should panic")
		}
	}()
	MustByCode("XX")
}
