// Package ownership models corporate equity structures and computes state
// control exactly as the paper defines it (§3): a firm is state-owned when
// a (federal) government owns at least 50% of its equity, where ownership
// may be direct, indirect through chains of state-controlled companies, or
// aggregated across multiple state-controlled bodies such as sovereign
// wealth, hedge and pension funds (the Telekom Malaysia case).
//
// The package also classifies foreign subsidiaries (§5.2): separate legal
// entities registered in one country but majority-held by another state's
// controlled entities.
package ownership

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// EntityID uniquely identifies an entity in the graph.
type EntityID string

// Kind distinguishes the entity classes that matter for control analysis.
type Kind uint8

// Entity kinds. Government units confer control of their own state by
// definition; funds and companies confer control transitively; private
// holders never confer state control.
const (
	KindGovernment Kind = iota // a government unit (ministry, treasury, federal agency)
	KindFund                   // state or private investment vehicle (wealth/pension/hedge fund)
	KindCompany                // an operating or holding company
	KindPrivate                // private shareholders, free float, individuals
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindGovernment:
		return "government"
	case KindFund:
		return "fund"
	case KindCompany:
		return "company"
	case KindPrivate:
		return "private"
	default:
		return "unknown"
	}
}

// Entity is a node in the equity graph.
type Entity struct {
	ID      EntityID
	Kind    Kind
	Name    string
	Country string // ISO alpha-2 registration country
}

// Holding is one equity position: Holder owns Share of Target's equity.
type Holding struct {
	Holder EntityID
	Target EntityID
	Share  float64 // fraction in (0, 1]
}

// MajorityThreshold is the IMF Fiscal Monitor criterion the paper adopts:
// state-owned means the government owns at least 50% of equity.
const MajorityThreshold = 0.50

// Graph is an equity graph. It is append-only: entities and holdings are
// added during world generation (single-goroutine) and then analyzed.
// The analysis entry points are safe for concurrent readers — the lazy
// control memo is filled under a mutex, so parallel build nodes may all
// query a frozen graph — but mutation must not overlap with reads.
type Graph struct {
	entities map[EntityID]*Entity
	inbound  map[EntityID][]Holding // holdings by target
	outbound map[EntityID][]Holding // holdings by holder

	// analysis caches, invalidated on mutation; resolveMu serializes the
	// fill so concurrent readers of a frozen graph never race on it.
	resolveMu sync.Mutex
	control   map[EntityID]Control
	dirty     bool
}

// Control describes the resolved state-control status of an entity.
type Control struct {
	// Controller is the ISO country code of the controlling state, empty
	// if no state controls the entity.
	Controller string
	// Share is the aggregated equity share held (directly or through
	// controlled entities) by the controlling state.
	Share float64
	// StateShares maps every country with nonzero aggregated state-held
	// equity to its share; used for minority and joint-venture analysis.
	StateShares map[string]float64
}

// Controlled reports whether any state controls the entity.
func (c Control) Controlled() bool { return c.Controller != "" }

// NewGraph returns an empty equity graph.
func NewGraph() *Graph {
	return &Graph{
		entities: make(map[EntityID]*Entity),
		inbound:  make(map[EntityID][]Holding),
		outbound: make(map[EntityID][]Holding),
		dirty:    true,
	}
}

// AddEntity registers an entity. It returns an error on duplicate IDs or
// empty countries for government units.
func (g *Graph) AddEntity(e Entity) error {
	if e.ID == "" {
		return fmt.Errorf("ownership: empty entity ID")
	}
	if _, dup := g.entities[e.ID]; dup {
		return fmt.Errorf("ownership: duplicate entity %q", e.ID)
	}
	if e.Kind == KindGovernment && e.Country == "" {
		return fmt.Errorf("ownership: government entity %q without country", e.ID)
	}
	cp := e
	g.entities[e.ID] = &cp
	g.dirty = true
	return nil
}

// MustAddEntity is AddEntity but panics on error; for generator code whose
// inputs are programmatic.
func (g *Graph) MustAddEntity(e Entity) {
	if err := g.AddEntity(e); err != nil {
		panic(err)
	}
}

// Entity looks up an entity by ID.
func (g *Graph) Entity(id EntityID) (Entity, bool) {
	e, ok := g.entities[id]
	if !ok {
		return Entity{}, false
	}
	return *e, true
}

// NumEntities reports how many entities the graph holds.
func (g *Graph) NumEntities() int { return len(g.entities) }

// Entities returns all entity IDs in sorted order.
func (g *Graph) Entities() []EntityID {
	ids := make([]EntityID, 0, len(g.entities))
	for id := range g.entities {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// AddHolding records an equity position. Shares of a target may not exceed
// 1.0 in total (with a small epsilon for rounding).
func (g *Graph) AddHolding(h Holding) error {
	if h.Share <= 0 || h.Share > 1 {
		return fmt.Errorf("ownership: share %f out of (0,1]", h.Share)
	}
	if _, ok := g.entities[h.Holder]; !ok {
		return fmt.Errorf("ownership: unknown holder %q", h.Holder)
	}
	if _, ok := g.entities[h.Target]; !ok {
		return fmt.Errorf("ownership: unknown target %q", h.Target)
	}
	if h.Holder == h.Target {
		return fmt.Errorf("ownership: self-holding of %q", h.Target)
	}
	total := h.Share
	for _, prev := range g.inbound[h.Target] {
		total += prev.Share
	}
	if total > 1.0+1e-9 {
		return fmt.Errorf("ownership: holdings of %q exceed 100%% (%.4f)", h.Target, total)
	}
	g.inbound[h.Target] = append(g.inbound[h.Target], h)
	g.outbound[h.Holder] = append(g.outbound[h.Holder], h)
	g.dirty = true
	return nil
}

// MustAddHolding is AddHolding but panics on error.
func (g *Graph) MustAddHolding(h Holding) {
	if err := g.AddHolding(h); err != nil {
		panic(err)
	}
}

// RemoveHolding deletes the position holder has in target, returning the
// removed share (0 if none existed). Used by the ownership-churn model
// (privatizations and nationalizations, §9 of the paper).
func (g *Graph) RemoveHolding(holder, target EntityID) float64 {
	removed := 0.0
	in := g.inbound[target][:0]
	for _, h := range g.inbound[target] {
		if h.Holder == holder {
			removed += h.Share
			continue
		}
		in = append(in, h)
	}
	g.inbound[target] = in
	out := g.outbound[holder][:0]
	for _, h := range g.outbound[holder] {
		if h.Target == target {
			continue
		}
		out = append(out, h)
	}
	g.outbound[holder] = out
	if removed > 0 {
		g.dirty = true
	}
	return removed
}

// Holders returns the holdings into the target, largest share first.
func (g *Graph) Holders(target EntityID) []Holding {
	hs := append([]Holding(nil), g.inbound[target]...)
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].Share != hs[j].Share {
			return hs[i].Share > hs[j].Share
		}
		return hs[i].Holder < hs[j].Holder
	})
	return hs
}

// HoldingsOf returns the positions the holder owns, largest share first.
func (g *Graph) HoldingsOf(holder EntityID) []Holding {
	hs := append([]Holding(nil), g.outbound[holder]...)
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].Share != hs[j].Share {
			return hs[i].Share > hs[j].Share
		}
		return hs[i].Target < hs[j].Target
	})
	return hs
}

// resolve recomputes the control fixpoint.
//
// Semantics: government entities are controlled by their own country. For
// any other entity E and country X, the state-held share is the sum of
// shares of E's holders that are either X's government units or entities
// already controlled by X. E is controlled by the country whose aggregated
// share is maximal and at least MajorityThreshold (lexicographic tie-break
// for the pathological 50/50 case).
//
// The per-country aggregates are monotone non-decreasing across
// iterations (control is only ever granted), so the loop terminates; the
// iteration cap is a defensive bound, not a correctness requirement.
func (g *Graph) resolve() {
	g.resolveMu.Lock()
	defer g.resolveMu.Unlock()
	if !g.dirty && g.control != nil {
		return
	}
	control := make(map[EntityID]Control, len(g.entities))
	for id, e := range g.entities {
		if e.Kind == KindGovernment {
			control[id] = Control{
				Controller:  e.Country,
				Share:       1,
				StateShares: map[string]float64{e.Country: 1},
			}
		}
	}
	ids := g.Entities()
	for iter := 0; iter <= len(g.entities)+1; iter++ {
		changed := false
		for _, id := range ids {
			e := g.entities[id]
			if e.Kind == KindGovernment {
				continue
			}
			agg := make(map[string]float64)
			for _, h := range g.inbound[id] {
				hc, ok := control[h.Holder]
				if !ok || !hc.Controlled() {
					continue
				}
				agg[hc.Controller] += h.Share
			}
			best, bestShare := "", 0.0
			countries := make([]string, 0, len(agg))
			for c := range agg {
				countries = append(countries, c)
			}
			sort.Strings(countries)
			for _, c := range countries {
				s := agg[c]
				if s > bestShare+1e-12 {
					best, bestShare = c, s
				}
			}
			next := Control{StateShares: agg}
			if bestShare >= MajorityThreshold-1e-12 {
				next.Controller = best
				next.Share = bestShare
			}
			prev := control[id]
			if prev.Controller != next.Controller || !sharesEqual(prev.StateShares, next.StateShares) {
				control[id] = next
				changed = true
			} else {
				control[id] = next // refresh share map regardless
			}
		}
		if !changed {
			break
		}
	}
	g.control = control
	g.dirty = false
}

func sharesEqual(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || v != w {
			return false
		}
	}
	return true
}

// ControlOf returns the resolved control status of the entity. Unknown
// entities report an uncontrolled zero value.
func (g *Graph) ControlOf(id EntityID) Control {
	g.resolve()
	c, ok := g.control[id]
	if !ok {
		return Control{StateShares: map[string]float64{}}
	}
	if c.StateShares == nil {
		c.StateShares = map[string]float64{}
	}
	return c
}

// StateShare returns the aggregated share of the entity's equity held by
// the given state (directly or through controlled entities).
func (g *Graph) StateShare(id EntityID, country string) float64 {
	return g.ControlOf(id).StateShares[country]
}

// IsForeignSubsidiary reports whether the entity is state-controlled by a
// country different from its registration country, returning the
// controlling country when so.
func (g *Graph) IsForeignSubsidiary(id EntityID) (string, bool) {
	e, ok := g.entities[id]
	if !ok {
		return "", false
	}
	c := g.ControlOf(id)
	if c.Controlled() && c.Controller != e.Country {
		return c.Controller, true
	}
	return "", false
}

// MinorityState returns the largest state-held share below the majority
// threshold, with its country, if any state holds a nonzero stake in an
// entity no state controls.
func (g *Graph) MinorityState(id EntityID) (string, float64, bool) {
	c := g.ControlOf(id)
	if c.Controlled() {
		return "", 0, false
	}
	best, bestShare := "", 0.0
	countries := make([]string, 0, len(c.StateShares))
	for cc := range c.StateShares {
		countries = append(countries, cc)
	}
	sort.Strings(countries)
	for _, cc := range countries {
		if s := c.StateShares[cc]; s > bestShare {
			best, bestShare = cc, s
		}
	}
	if bestShare <= 0 {
		return "", 0, false
	}
	return best, bestShare, true
}

// ControllingParent returns the entity's dominant state-controlled
// corporate holder (the paper's parent_org for subsidiaries): among the
// holders controlled by the entity's controlling state, the one with the
// largest share; government units qualify only if no corporate holder
// does.
func (g *Graph) ControllingParent(id EntityID) (EntityID, bool) {
	c := g.ControlOf(id)
	if !c.Controlled() {
		return "", false
	}
	var bestCorp, bestGov EntityID
	var bestCorpShare, bestGovShare float64
	for _, h := range g.Holders(id) {
		hc := g.ControlOf(h.Holder)
		if hc.Controller != c.Controller {
			continue
		}
		he := g.entities[h.Holder]
		if he.Kind == KindGovernment {
			if h.Share > bestGovShare {
				bestGov, bestGovShare = h.Holder, h.Share
			}
			continue
		}
		if h.Share > bestCorpShare {
			bestCorp, bestCorpShare = h.Holder, h.Share
		}
	}
	if bestCorp != "" {
		return bestCorp, true
	}
	if bestGov != "" {
		return bestGov, true
	}
	return "", false
}

// JointVenture reports whether two or more states hold at least the given
// floor of the entity's equity each (e.g., PTCL: Pakistan + UAE). Returns
// the participating countries sorted by descending share.
func (g *Graph) JointVenture(id EntityID, floor float64) ([]string, bool) {
	c := g.ControlOf(id)
	type cs struct {
		country string
		share   float64
	}
	var parts []cs
	for country, share := range c.StateShares {
		if share >= floor {
			parts = append(parts, cs{country, share})
		}
	}
	if len(parts) < 2 {
		return nil, false
	}
	sort.Slice(parts, func(i, j int) bool {
		if parts[i].share != parts[j].share {
			return parts[i].share > parts[j].share
		}
		return parts[i].country < parts[j].country
	})
	out := make([]string, len(parts))
	for i, p := range parts {
		out[i] = p.country
	}
	return out, true
}

// WriteDOT renders the ownership neighborhood of an entity as a GraphViz
// digraph: every holder chain into the entity (recursively), with
// state-controlled entities highlighted. Useful for documenting how a
// Telekom-Malaysia-style fund aggregation or an Ooredoo-style subsidiary
// chain confers control.
func (g *Graph) WriteDOT(w io.Writer, root EntityID) error {
	g.resolve()
	var b strings.Builder
	b.WriteString("digraph ownership {\n  rankdir=BT;\n  node [shape=box, fontname=\"sans-serif\"];\n")
	visited := map[EntityID]bool{}
	var visit func(id EntityID)
	visit = func(id EntityID) {
		if visited[id] {
			return
		}
		visited[id] = true
		e, ok := g.entities[id]
		if !ok {
			return
		}
		ctrl := g.control[id]
		style := ""
		switch {
		case e.Kind == KindGovernment:
			style = ", style=filled, fillcolor=\"#c6dbef\""
		case ctrl.Controlled():
			style = ", style=filled, fillcolor=\"#e7f0fa\""
		}
		fmt.Fprintf(&b, "  %q [label=\"%s\\n(%s, %s)\"%s];\n", id, e.Name, e.Kind, e.Country, style)
		for _, h := range g.Holders(id) {
			fmt.Fprintf(&b, "  %q -> %q [label=\"%.1f%%\"];\n", h.Holder, id, h.Share*100)
			visit(h.Holder)
		}
	}
	visit(root)
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Descendants returns every entity controlled (transitively) by the given
// country, sorted by ID. Useful for subsidiary discovery in stage 2.
func (g *Graph) Descendants(country string) []EntityID {
	g.resolve()
	var out []EntityID
	for id, c := range g.control {
		if c.Controller == country && g.entities[id].Kind != KindGovernment {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
