package ownership

import (
	"strings"
	"testing"
	"testing/quick"
)

func build(t *testing.T) *Graph {
	t.Helper()
	return NewGraph()
}

func TestDirectMajority(t *testing.T) {
	g := build(t)
	g.MustAddEntity(Entity{ID: "gov-NO", Kind: KindGovernment, Name: "Government of Norway", Country: "NO"})
	g.MustAddEntity(Entity{ID: "telenor", Kind: KindCompany, Name: "Telenor", Country: "NO"})
	g.MustAddEntity(Entity{ID: "float", Kind: KindPrivate, Name: "Free float", Country: "NO"})
	g.MustAddHolding(Holding{Holder: "gov-NO", Target: "telenor", Share: 0.547})
	g.MustAddHolding(Holding{Holder: "float", Target: "telenor", Share: 0.453})

	c := g.ControlOf("telenor")
	if c.Controller != "NO" {
		t.Fatalf("controller = %q, want NO", c.Controller)
	}
	if c.Share != 0.547 {
		t.Errorf("share = %f", c.Share)
	}
}

func TestMinorityNotControlled(t *testing.T) {
	g := build(t)
	g.MustAddEntity(Entity{ID: "gov-DE", Kind: KindGovernment, Name: "Germany", Country: "DE"})
	g.MustAddEntity(Entity{ID: "dtag", Kind: KindCompany, Name: "Deutsche Telekom", Country: "DE"})
	g.MustAddEntity(Entity{ID: "float", Kind: KindPrivate, Name: "Free float", Country: "DE"})
	g.MustAddHolding(Holding{Holder: "gov-DE", Target: "dtag", Share: 0.31})
	g.MustAddHolding(Holding{Holder: "float", Target: "dtag", Share: 0.69})

	if g.ControlOf("dtag").Controlled() {
		t.Error("31% should not confer control")
	}
	country, share, ok := g.MinorityState("dtag")
	if !ok || country != "DE" || share != 0.31 {
		t.Errorf("MinorityState = %q %f %v", country, share, ok)
	}
}

// TestFundAggregation models the Telekom Malaysia case: three
// state-controlled funds whose aggregate crosses 50%.
func TestFundAggregation(t *testing.T) {
	g := build(t)
	g.MustAddEntity(Entity{ID: "gov-MY", Kind: KindGovernment, Name: "Malaysia", Country: "MY"})
	for _, f := range []string{"khazanah", "amanah", "epf"} {
		g.MustAddEntity(Entity{ID: EntityID(f), Kind: KindFund, Name: f, Country: "MY"})
		g.MustAddHolding(Holding{Holder: "gov-MY", Target: EntityID(f), Share: 1})
	}
	g.MustAddEntity(Entity{ID: "tm", Kind: KindCompany, Name: "Telekom Malaysia", Country: "MY"})
	g.MustAddEntity(Entity{ID: "float", Kind: KindPrivate, Name: "Free float", Country: "MY"})
	g.MustAddHolding(Holding{Holder: "khazanah", Target: "tm", Share: 0.26})
	g.MustAddHolding(Holding{Holder: "amanah", Target: "tm", Share: 0.12})
	g.MustAddHolding(Holding{Holder: "epf", Target: "tm", Share: 0.16})
	g.MustAddHolding(Holding{Holder: "float", Target: "tm", Share: 0.46})

	c := g.ControlOf("tm")
	if c.Controller != "MY" {
		t.Fatalf("aggregated funds should confer control, got %+v", c)
	}
	if c.Share < 0.539 || c.Share > 0.541 {
		t.Errorf("aggregate share = %f, want 0.54", c.Share)
	}
}

// TestIndirectChain checks control through a chain: state -> holdco ->
// opco, where no single direct link would reveal it.
func TestIndirectChain(t *testing.T) {
	g := build(t)
	g.MustAddEntity(Entity{ID: "gov-QA", Kind: KindGovernment, Name: "Qatar", Country: "QA"})
	g.MustAddEntity(Entity{ID: "ooredoo", Kind: KindCompany, Name: "Ooredoo", Country: "QA"})
	g.MustAddEntity(Entity{ID: "ooredoo-tn", Kind: KindCompany, Name: "Ooredoo Tunisie", Country: "TN"})
	g.MustAddEntity(Entity{ID: "float", Kind: KindPrivate, Name: "float", Country: "QA"})
	g.MustAddHolding(Holding{Holder: "gov-QA", Target: "ooredoo", Share: 0.68})
	g.MustAddHolding(Holding{Holder: "float", Target: "ooredoo", Share: 0.32})
	g.MustAddHolding(Holding{Holder: "ooredoo", Target: "ooredoo-tn", Share: 0.75})

	c := g.ControlOf("ooredoo-tn")
	if c.Controller != "QA" {
		t.Fatalf("subsidiary not attributed to QA: %+v", c)
	}
	owner, ok := g.IsForeignSubsidiary("ooredoo-tn")
	if !ok || owner != "QA" {
		t.Errorf("IsForeignSubsidiary = %q %v", owner, ok)
	}
	if _, ok := g.IsForeignSubsidiary("ooredoo"); ok {
		t.Error("domestic company flagged as foreign subsidiary")
	}
	parent, ok := g.ControllingParent("ooredoo-tn")
	if !ok || parent != "ooredoo" {
		t.Errorf("ControllingParent = %q %v, want ooredoo", parent, ok)
	}
}

// TestJointVenture models PTCL: Pakistan 62% via govt, UAE 26% via
// Etisalat; control goes to the larger holder.
func TestJointVenture(t *testing.T) {
	g := build(t)
	g.MustAddEntity(Entity{ID: "gov-PK", Kind: KindGovernment, Name: "Pakistan", Country: "PK"})
	g.MustAddEntity(Entity{ID: "gov-AE", Kind: KindGovernment, Name: "UAE", Country: "AE"})
	g.MustAddEntity(Entity{ID: "etisalat", Kind: KindCompany, Name: "Etisalat", Country: "AE"})
	g.MustAddEntity(Entity{ID: "ptcl", Kind: KindCompany, Name: "PTCL", Country: "PK"})
	g.MustAddHolding(Holding{Holder: "gov-AE", Target: "etisalat", Share: 0.6})
	g.MustAddHolding(Holding{Holder: "gov-PK", Target: "ptcl", Share: 0.62})
	g.MustAddHolding(Holding{Holder: "etisalat", Target: "ptcl", Share: 0.26})

	c := g.ControlOf("ptcl")
	if c.Controller != "PK" {
		t.Fatalf("PTCL controller = %q, want PK", c.Controller)
	}
	parts, ok := g.JointVenture("ptcl", 0.20)
	if !ok || len(parts) != 2 || parts[0] != "PK" || parts[1] != "AE" {
		t.Errorf("JointVenture = %v %v", parts, ok)
	}
	if _, ok := g.JointVenture("etisalat", 0.20); ok {
		t.Error("single-state firm reported as joint venture")
	}
}

func TestExactlyFiftyPercent(t *testing.T) {
	g := build(t)
	g.MustAddEntity(Entity{ID: "gov-UY", Kind: KindGovernment, Name: "Uruguay", Country: "UY"})
	g.MustAddEntity(Entity{ID: "co", Kind: KindCompany, Name: "Co", Country: "UY"})
	g.MustAddEntity(Entity{ID: "p", Kind: KindPrivate, Name: "p", Country: "UY"})
	g.MustAddHolding(Holding{Holder: "gov-UY", Target: "co", Share: 0.50})
	g.MustAddHolding(Holding{Holder: "p", Target: "co", Share: 0.50})
	// IMF criterion: "at least 50%" — exactly 50% is state-owned.
	if !g.ControlOf("co").Controlled() {
		t.Error("exactly 50% should confer control")
	}
}

func TestCyclicCrossHoldings(t *testing.T) {
	g := build(t)
	g.MustAddEntity(Entity{ID: "gov-X", Kind: KindGovernment, Name: "X", Country: "FR"})
	g.MustAddEntity(Entity{ID: "a", Kind: KindCompany, Name: "A", Country: "FR"})
	g.MustAddEntity(Entity{ID: "b", Kind: KindCompany, Name: "B", Country: "FR"})
	g.MustAddHolding(Holding{Holder: "gov-X", Target: "a", Share: 0.6})
	g.MustAddHolding(Holding{Holder: "a", Target: "b", Share: 0.55})
	g.MustAddHolding(Holding{Holder: "b", Target: "a", Share: 0.2})
	// Must terminate and attribute both to FR.
	if g.ControlOf("a").Controller != "FR" || g.ControlOf("b").Controller != "FR" {
		t.Error("cycle resolution failed")
	}
}

func TestValidation(t *testing.T) {
	g := build(t)
	g.MustAddEntity(Entity{ID: "a", Kind: KindCompany, Name: "A", Country: "FR"})
	g.MustAddEntity(Entity{ID: "b", Kind: KindCompany, Name: "B", Country: "FR"})
	if err := g.AddEntity(Entity{ID: "a", Kind: KindCompany}); err == nil {
		t.Error("duplicate entity accepted")
	}
	if err := g.AddEntity(Entity{ID: "g", Kind: KindGovernment}); err == nil {
		t.Error("government without country accepted")
	}
	if err := g.AddHolding(Holding{Holder: "a", Target: "b", Share: 1.5}); err == nil {
		t.Error("share > 1 accepted")
	}
	if err := g.AddHolding(Holding{Holder: "a", Target: "a", Share: 0.5}); err == nil {
		t.Error("self-holding accepted")
	}
	if err := g.AddHolding(Holding{Holder: "missing", Target: "b", Share: 0.5}); err == nil {
		t.Error("unknown holder accepted")
	}
	g.MustAddHolding(Holding{Holder: "a", Target: "b", Share: 0.7})
	if err := g.AddHolding(Holding{Holder: "a", Target: "b", Share: 0.4}); err == nil {
		t.Error("over-100% holdings accepted")
	}
}

func TestDescendants(t *testing.T) {
	g := build(t)
	g.MustAddEntity(Entity{ID: "gov-VN", Kind: KindGovernment, Name: "Vietnam", Country: "VN"})
	g.MustAddEntity(Entity{ID: "viettel", Kind: KindCompany, Name: "Viettel", Country: "VN"})
	g.MustAddEntity(Entity{ID: "movitel", Kind: KindCompany, Name: "Movitel", Country: "MZ"})
	g.MustAddHolding(Holding{Holder: "gov-VN", Target: "viettel", Share: 1})
	g.MustAddHolding(Holding{Holder: "viettel", Target: "movitel", Share: 0.7})
	ds := g.Descendants("VN")
	if len(ds) != 2 || ds[0] != "movitel" || ds[1] != "viettel" {
		t.Errorf("Descendants = %v", ds)
	}
}

func TestWriteDOT(t *testing.T) {
	g := build(t)
	g.MustAddEntity(Entity{ID: "gov-MY", Kind: KindGovernment, Name: "Malaysia", Country: "MY"})
	g.MustAddEntity(Entity{ID: "fund", Kind: KindFund, Name: "Khazanah", Country: "MY"})
	g.MustAddEntity(Entity{ID: "tm", Kind: KindCompany, Name: "Telekom Malaysia", Country: "MY"})
	g.MustAddHolding(Holding{Holder: "gov-MY", Target: "fund", Share: 1})
	g.MustAddHolding(Holding{Holder: "fund", Target: "tm", Share: 0.54})
	var b strings.Builder
	if err := g.WriteDOT(&b, "tm"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"digraph ownership", "Telekom Malaysia", "Khazanah", "54.0%", "\"fund\" -> \"tm\""} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestRemoveHolding(t *testing.T) {
	g := build(t)
	g.MustAddEntity(Entity{ID: "gov", Kind: KindGovernment, Name: "G", Country: "FJ"})
	g.MustAddEntity(Entity{ID: "co", Kind: KindCompany, Name: "C", Country: "FJ"})
	g.MustAddHolding(Holding{Holder: "gov", Target: "co", Share: 0.7})
	if !g.ControlOf("co").Controlled() {
		t.Fatal("setup broken")
	}
	if got := g.RemoveHolding("gov", "co"); got != 0.7 {
		t.Errorf("removed share = %f", got)
	}
	if g.ControlOf("co").Controlled() {
		t.Error("control persists after removal")
	}
	if got := g.RemoveHolding("gov", "co"); got != 0 {
		t.Errorf("second removal returned %f", got)
	}
	// The freed equity can be re-assigned without tripping the 100% cap.
	g.MustAddHolding(Holding{Holder: "gov", Target: "co", Share: 0.9})
}

// Property: adding private holdings never grants state control, and
// control is stable under recomputation.
func TestControlProperties(t *testing.T) {
	f := func(shareRaw uint16, privRaw uint16) bool {
		share := 0.01 + 0.98*float64(shareRaw)/65535.0
		g := NewGraph()
		g.MustAddEntity(Entity{ID: "gov", Kind: KindGovernment, Name: "G", Country: "SE"})
		g.MustAddEntity(Entity{ID: "co", Kind: KindCompany, Name: "C", Country: "SE"})
		g.MustAddEntity(Entity{ID: "p", Kind: KindPrivate, Name: "P", Country: "SE"})
		g.MustAddHolding(Holding{Holder: "gov", Target: "co", Share: share})
		priv := (1 - share) * float64(privRaw) / 65535.0
		if priv > 0 {
			g.MustAddHolding(Holding{Holder: "p", Target: "co", Share: priv})
		}
		c1 := g.ControlOf("co")
		c2 := g.ControlOf("co")
		if c1.Controller != c2.Controller {
			return false
		}
		want := share >= MajorityThreshold-1e-12
		return c1.Controlled() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: control aggregates are monotone — granting the state an
// additional stake never removes control.
func TestControlMonotonicity(t *testing.T) {
	f := func(aRaw, bRaw uint16) bool {
		a := 0.30 + 0.25*float64(aRaw)/65535.0 // 0.30..0.55
		b := 0.10 + 0.20*float64(bRaw)/65535.0 // 0.10..0.30
		if a+b > 1 {
			return true
		}
		mk := func(withSecond bool) Control {
			g := NewGraph()
			g.MustAddEntity(Entity{ID: "gov", Kind: KindGovernment, Name: "G", Country: "AR"})
			g.MustAddEntity(Entity{ID: "fund", Kind: KindFund, Name: "F", Country: "AR"})
			g.MustAddEntity(Entity{ID: "co", Kind: KindCompany, Name: "C", Country: "AR"})
			g.MustAddHolding(Holding{Holder: "gov", Target: "fund", Share: 1})
			g.MustAddHolding(Holding{Holder: "gov", Target: "co", Share: a})
			if withSecond {
				g.MustAddHolding(Holding{Holder: "fund", Target: "co", Share: b})
			}
			return g.ControlOf("co")
		}
		without, with := mk(false), mk(true)
		if without.Controlled() && !with.Controlled() {
			return false
		}
		return with.StateShares["AR"] >= without.StateShares["AR"]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
