// Package faults is the seeded fault-injection substrate for chaos runs.
//
// The paper's real inputs are flaky in practice: RouteViews/RIS monitors
// go dark, WHOIS registries serve stale or malformed records, Orbis
// rate-limits and times out, and the documentary sources have coverage
// holes. A Plan describes one reproducible episode of that flakiness —
// per-source fault specs derived from a seed and a severity knob — so a
// chaos run can be replayed bit-for-bit and its degradation measured.
//
// Faults come in three shapes:
//
//   - record loss (Drop): a record silently never arrives — a monitor
//     outage, a WHOIS row missing from a bulk dump, a document 404;
//   - record corruption (Corrupt): a record arrives damaged (mojibake
//     names, impossible country codes) and must be caught by the
//     pipeline's validation pass and quarantined, never propagated;
//   - transient failures (TransientError): a whole fetch times out but
//     would succeed if retried — the Orbis rate-limit case.
//
// Everything is driven by rng sub-streams derived from the plan seed and
// a per-source label, so injecting faults into one source never perturbs
// the fault pattern of another.
package faults

import (
	"errors"
	"fmt"
	"strings"

	"stateowned/internal/rng"
)

// Action is the per-record fault decision.
type Action uint8

// Per-record fault decisions.
const (
	Keep Action = iota
	Drop
	Corrupt
)

// RecordSpec gives the per-record fault rates for one data source.
type RecordSpec struct {
	DropRate    float64
	CorruptRate float64
}

// Zero reports whether the spec injects nothing.
func (s RecordSpec) Zero() bool { return s.DropRate <= 0 && s.CorruptRate <= 0 }

// BGPSpec models vantage-point loss: each monitor goes dark with the
// given probability (collector session resets, peer withdrawals).
type BGPSpec struct {
	MonitorOutageRate float64
}

// OrbisSpec models the commercial database's service behaviour: Timeouts
// consecutive fetch attempts fail transiently before one succeeds
// (rate-limiting), and the eventual response may be truncated (Records).
type OrbisSpec struct {
	Timeouts int
	Records  RecordSpec
}

// Plan is one reproducible fault episode: per-source specs derived from
// (Seed, Severity). The zero Plan injects nothing.
type Plan struct {
	Seed     uint64
	Severity float64

	BGP   BGPSpec
	WHOIS RecordSpec
	Geo   RecordSpec
	Orbis OrbisSpec
	Docs  RecordSpec
}

// NewPlan derives a fault plan from a seed and a severity in [0, 1]
// (clamped). The per-source scaling keeps moderate severities survivable:
// monitors fail fastest (real collector churn is high), documentary
// coverage erodes linearly, and Orbis needs progressively more retries
// until, past severity ~0.65, it exhausts any reasonable retry budget and
// must be declared unavailable.
func NewPlan(seed uint64, severity float64) Plan {
	s := severity
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return Plan{
		Seed:     seed,
		Severity: s,
		BGP:      BGPSpec{MonitorOutageRate: 0.8 * s},
		WHOIS:    RecordSpec{DropRate: 0.35 * s, CorruptRate: 0.35 * s},
		Geo:      RecordSpec{DropRate: 0.25 * s, CorruptRate: 0.25 * s},
		Orbis:    OrbisSpec{Timeouts: int(6 * s), Records: RecordSpec{DropRate: 0.3 * s}},
		Docs:     RecordSpec{DropRate: 0.5 * s},
	}
}

// Enabled reports whether the plan injects any faults.
func (p Plan) Enabled() bool { return p.Severity > 0 }

// Injector derives the deterministic per-record fault stream for one
// source. The same (plan, source) pair always yields the same stream, so
// a degraded substrate build is exactly reproducible.
func (p Plan) Injector(source string, spec RecordSpec) *Injector {
	return &Injector{
		r:    rng.New(p.Seed ^ 0x5DEECE66D).Sub("faults/" + source),
		spec: spec,
	}
}

// Damage tallies what an injector did to a source.
type Damage struct {
	Dropped   int
	Corrupted int
}

// Zero reports whether no damage was done.
func (d Damage) Zero() bool { return d.Dropped == 0 && d.Corrupted == 0 }

// Injector makes per-record fault decisions from a deterministic stream.
// A nil Injector keeps every record.
type Injector struct {
	r    *rng.Stream
	spec RecordSpec
	dmg  Damage
}

// Next decides the fate of the next record.
func (in *Injector) Next() Action {
	if in == nil {
		return Keep
	}
	u := in.r.Float64()
	switch {
	case u < in.spec.DropRate:
		in.dmg.Dropped++
		return Drop
	case u < in.spec.DropRate+in.spec.CorruptRate:
		in.dmg.Corrupted++
		return Corrupt
	default:
		return Keep
	}
}

// Coin flips a fair deterministic coin (used to pick corruption modes).
func (in *Injector) Coin() bool { return in.r.Bool(0.5) }

// Damage reports the tally so far.
func (in *Injector) Damage() Damage {
	if in == nil {
		return Damage{}
	}
	return in.dmg
}

// BadCountry is the impossible ISO code corrupt records carry; no entry
// in internal/ccodes resolves it, which is what validators key on.
const BadCountry = "ZZ"

// mangleMark is the Unicode replacement character — the classic fingerprint
// of an encoding-damaged transfer.
const mangleMark = "�"

// MangleText damages a text field the way a broken transfer does:
// truncation plus replacement characters.
func (in *Injector) MangleText(s string) string {
	if len(s) > 4 {
		s = s[:len(s)/2]
	}
	return s + strings.Repeat(mangleMark, 1+in.r.Intn(3))
}

// Mangled reports whether a text field fails validation: empty, or
// carrying encoding damage.
func Mangled(s string) bool {
	return strings.TrimSpace(s) == "" || strings.Contains(s, mangleMark)
}

// TransientError marks a failure that is worth retrying: the source is
// believed healthy but this attempt timed out or was rate-limited.
type TransientError struct {
	Source  string
	Attempt int
}

// Error implements error.
func (e *TransientError) Error() string {
	return fmt.Sprintf("%s: simulated timeout on attempt %d (transient)", e.Source, e.Attempt)
}

// IsTransient reports whether the error chain contains a TransientError.
func IsTransient(err error) bool {
	var t *TransientError
	return errors.As(err, &t)
}
