package faults

import (
	"errors"
	"fmt"
	"testing"
)

func TestPlanSeverityClamped(t *testing.T) {
	for _, s := range []float64{-1, 0, 0.5, 1, 7} {
		p := NewPlan(1, s)
		if p.Severity < 0 || p.Severity > 1 {
			t.Errorf("severity %v -> %v outside [0,1]", s, p.Severity)
		}
	}
	if NewPlan(1, 0).Enabled() {
		t.Error("zero-severity plan reports enabled")
	}
	if !NewPlan(1, 0.2).Enabled() {
		t.Error("nonzero-severity plan reports disabled")
	}
}

func TestPlanScalesMonotonically(t *testing.T) {
	prev := NewPlan(1, 0)
	for _, s := range []float64{0.1, 0.3, 0.6, 1.0} {
		p := NewPlan(1, s)
		if p.WHOIS.DropRate < prev.WHOIS.DropRate || p.Docs.DropRate < prev.Docs.DropRate ||
			p.BGP.MonitorOutageRate < prev.BGP.MonitorOutageRate || p.Orbis.Timeouts < prev.Orbis.Timeouts {
			t.Errorf("severity %v produced weaker faults than %v", s, prev.Severity)
		}
		prev = p
	}
}

func TestInjectorDeterministic(t *testing.T) {
	p := NewPlan(42, 0.5)
	a := p.Injector("whois", p.WHOIS)
	b := p.Injector("whois", p.WHOIS)
	for i := 0; i < 5000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("decision %d differs across identical injectors", i)
		}
	}
	if a.Damage() != b.Damage() {
		t.Fatalf("damage tallies differ: %+v vs %+v", a.Damage(), b.Damage())
	}
}

func TestInjectorStreamsIndependent(t *testing.T) {
	p := NewPlan(42, 0.5)
	a := p.Injector("whois", p.WHOIS)
	b := p.Injector("geo", p.WHOIS) // same spec, different label
	same := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same == n {
		t.Error("differently-labeled injectors produced identical streams")
	}
}

func TestInjectorRatesApproximate(t *testing.T) {
	p := Plan{Seed: 9, Severity: 1}
	in := p.Injector("x", RecordSpec{DropRate: 0.3, CorruptRate: 0.2})
	const n = 20000
	for i := 0; i < n; i++ {
		in.Next()
	}
	d := in.Damage()
	if f := float64(d.Dropped) / n; f < 0.27 || f > 0.33 {
		t.Errorf("drop fraction %.3f far from 0.30", f)
	}
	if f := float64(d.Corrupted) / n; f < 0.17 || f > 0.23 {
		t.Errorf("corrupt fraction %.3f far from 0.20", f)
	}
}

func TestNilInjectorKeepsEverything(t *testing.T) {
	var in *Injector
	for i := 0; i < 100; i++ {
		if in.Next() != Keep {
			t.Fatal("nil injector did not keep a record")
		}
	}
	if !in.Damage().Zero() {
		t.Fatal("nil injector reported damage")
	}
}

func TestMangledDetection(t *testing.T) {
	p := NewPlan(3, 1)
	in := p.Injector("m", p.WHOIS)
	for _, name := range []string{"Telecom Argentina S.A.", "TTK", "Angola Cables"} {
		m := in.MangleText(name)
		if !Mangled(m) {
			t.Errorf("mangled %q -> %q not detected", name, m)
		}
	}
	for _, ok := range []string{"Telecom Argentina S.A.", "a"} {
		if Mangled(ok) {
			t.Errorf("clean %q flagged as mangled", ok)
		}
	}
	if !Mangled("") || !Mangled("   ") {
		t.Error("empty names must fail validation")
	}
}

func TestTransientErrorDetection(t *testing.T) {
	err := &TransientError{Source: "orbis", Attempt: 2}
	if !IsTransient(err) {
		t.Error("TransientError not detected")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", err)) {
		t.Error("wrapped TransientError not detected")
	}
	if IsTransient(errors.New("permanent")) {
		t.Error("plain error misclassified as transient")
	}
}
