// Package expand implements stage 3 of the paper's pipeline (§6): mapping
// confirmed state-owned Internet operators to AS numbers, expanding each
// organization with its AS2Org sibling ASNs, and assembling the final
// dataset in the exact schema of the paper's Listing 1 (JSON export; the
// paper also ships SQLite, which the stdlib-only constraint replaces with
// JSON — the paper's interchange format).
package expand

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"stateowned/internal/as2org"
	"stateowned/internal/candidates"
	"stateowned/internal/ccodes"
	"stateowned/internal/confirm"
	"stateowned/internal/whois"
	"stateowned/internal/world"
)

// OrgRecord is one state-owned organization, field-for-field the JSON
// object of the paper's Listing 1.
type OrgRecord struct {
	ConglomerateName     string   `json:"conglomerate_name"`
	OrgID                string   `json:"org_id"`
	OrgName              string   `json:"org_name"`
	OwnershipCC          string   `json:"ownership_cc"`
	OwnershipCountryName string   `json:"ownership_country_name"`
	RIR                  string   `json:"rir"`
	Source               string   `json:"source"`
	Quote                string   `json:"quote"`
	QuoteLang            string   `json:"quote_lang"`
	URL                  string   `json:"url"`
	AdditionalInfo       string   `json:"additional_info"`
	Inputs               []string `json:"inputs"`
	ParentOrg            string   `json:"parent_org,omitempty"`
	TargetCC             string   `json:"target_cc,omitempty"`
	TargetCountryName    string   `json:"target_country_name,omitempty"`
}

// IsForeignSubsidiary reports whether the record describes a foreign
// subsidiary (operates in TargetCC, owned by OwnershipCC).
func (r *OrgRecord) IsForeignSubsidiary() bool {
	return r.TargetCC != "" && r.TargetCC != r.OwnershipCC
}

// OperatingCountry returns where the organization's ASes run: the target
// country for subsidiaries, the ownership country otherwise.
func (r *OrgRecord) OperatingCountry() string {
	if r.TargetCC != "" {
		return r.TargetCC
	}
	return r.OwnershipCC
}

// OrgASNs is the second Listing-1 object: the ASNs an organization owns.
type OrgASNs struct {
	OrgID string      `json:"org_id"`
	ASNs  []world.ASN `json:"asn"`
}

// MinorityRecord extends the paper's dataset with the §7 minority
// bookkeeping (the paper reports these in prose and Figure 6).
type MinorityRecord struct {
	OrgName string      `json:"org_name"`
	CC      string      `json:"cc"`
	Owner   string      `json:"owner_cc"`
	Share   float64     `json:"share"`
	ASNs    []world.ASN `json:"asn"`
}

// Dataset is the final data product.
type Dataset struct {
	Organizations []OrgRecord      `json:"organizations"`
	ASNs          []OrgASNs        `json:"asns"`
	Minority      []MinorityRecord `json:"minority_state_owned,omitempty"`
}

// Options tweaks stage-3 behavior (ablations flip these).
type Options struct {
	// DisableSiblingExpansion skips the AS2Org expansion (ablation).
	DisableSiblingExpansion bool
	// WHOIS, when set, enables the analyst-style sibling recovery the
	// paper describes contributing back to AS2Org: WHOIS records in the
	// company's country whose AS names share the company's distinctive
	// brand stem are adopted as siblings even when registered under a
	// different (post-acquisition) organization.
	WHOIS *whois.Registry
}

// Run assembles the dataset from the stage-2 result.
func Run(res *confirm.Result, m *as2org.Mapping, opts Options) *Dataset {
	ds := &Dataset{}
	claimed := map[world.ASN]bool{}
	rec := newRecoverer(opts.WHOIS)

	for i := range res.Confirmed {
		c := &res.Confirmed[i]
		asns := append([]world.ASN(nil), c.Company.ASNs...)
		if !opts.DisableSiblingExpansion {
			for _, a := range c.Company.ASNs {
				asns = append(asns, m.Siblings(a)...)
			}
			asns = append(asns, rec.recover(c, asns)...)
		}
		asns = dedupeASNs(asns)
		var free []world.ASN
		for _, a := range asns {
			if !claimed[a] {
				claimed[a] = true
				free = append(free, a)
			}
		}
		if len(free) == 0 {
			continue // company without (unclaimed) ASNs: documented, not in the AS dataset
		}

		orgID := fmt.Sprintf("ORG-%04d", len(ds.Organizations)+1)
		if org, ok := m.OrgOf(free[0]); ok {
			orgID = org.ID
		}
		operCountry := c.Company.Country
		ownCC := c.Owner
		rec := OrgRecord{
			ConglomerateName:     conglomerateOf(c),
			OrgID:                orgID,
			OrgName:              c.Company.Name,
			OwnershipCC:          ownCC,
			OwnershipCountryName: countryName(ownCC),
			RIR:                  rirOf(operCountry),
			Source:               c.Source.String(),
			Quote:                c.Quote,
			QuoteLang:            c.Lang,
			URL:                  c.URL,
			Inputs:               c.Company.Sources.Letters(),
		}
		if c.ForeignSubsidiary {
			rec.TargetCC = operCountry
			rec.TargetCountryName = countryName(operCountry)
			rec.ParentOrg = c.ParentName
			if rec.ParentOrg == "" {
				rec.AdditionalInfo = "foreign ownership established from ownership documents"
			}
		}
		ds.Organizations = append(ds.Organizations, rec)
		ds.ASNs = append(ds.ASNs, OrgASNs{OrgID: rec.OrgID, ASNs: free})
	}

	for i := range res.Minority {
		mr := &res.Minority[i]
		ds.Minority = append(ds.Minority, MinorityRecord{
			OrgName: mr.Company.Name,
			CC:      mr.Company.Country,
			Owner:   mr.Owner,
			Share:   mr.Share,
			ASNs:    append([]world.ASN(nil), mr.Company.ASNs...),
		})
	}
	return ds
}

func conglomerateOf(c *confirm.Confirmed) string {
	if c.ParentName != "" {
		return c.ParentName
	}
	return c.Company.Name
}

func countryName(cc string) string {
	if c, ok := ccodes.ByCode(cc); ok {
		return c.Name
	}
	return cc
}

func rirOf(cc string) string {
	if c, ok := ccodes.ByCode(cc); ok {
		return c.RIR.String()
	}
	return "UNKNOWN"
}

func dedupeASNs(asns []world.ASN) []world.ASN {
	seen := map[world.ASN]bool{}
	out := asns[:0]
	for _, a := range asns {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllASNs returns every state-owned ASN in the dataset, sorted.
func (d *Dataset) AllASNs() []world.ASN {
	var out []world.ASN
	for _, oa := range d.ASNs {
		out = append(out, oa.ASNs...)
	}
	return dedupeASNs(out)
}

// NumForeignSubsidiaryASNs counts ASNs belonging to foreign-subsidiary
// organizations.
func (d *Dataset) NumForeignSubsidiaryASNs() int {
	n := 0
	for i := range d.Organizations {
		if d.Organizations[i].IsForeignSubsidiary() {
			n += len(d.ASNs[i].ASNs)
		}
	}
	return n
}

// OwnerCountries returns the distinct countries owning dataset
// organizations, sorted.
func (d *Dataset) OwnerCountries() []string {
	seen := map[string]bool{}
	for _, o := range d.Organizations {
		seen[o.OwnershipCC] = true
	}
	out := make([]string, 0, len(seen))
	for cc := range seen {
		out = append(out, cc)
	}
	sort.Strings(out)
	return out
}

// InputsOf reconstructs an organization's input-source set.
func (d *Dataset) InputsOf(i int) candidates.SourceSet {
	var ss candidates.SourceSet
	for _, l := range d.Organizations[i].Inputs {
		for _, s := range candidates.AllSources() {
			if s.Letter() == l {
				ss = ss.Add(s)
			}
		}
	}
	return ss
}

// Export writes the dataset as indented JSON.
func (d *Dataset) Export(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Import reads a dataset back from JSON.
func Import(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("expand: decoding dataset: %w", err)
	}
	if len(d.Organizations) != len(d.ASNs) {
		return nil, fmt.Errorf("expand: %d organizations but %d ASN groups",
			len(d.Organizations), len(d.ASNs))
	}
	return &d, nil
}
