package expand

import (
	"bytes"
	"strings"
	"testing"

	"stateowned/internal/as2org"
	"stateowned/internal/candidates"
	"stateowned/internal/confirm"
	"stateowned/internal/docsrc"
	"stateowned/internal/whois"
	"stateowned/internal/world"
)

var (
	testW = world.Generate(world.Config{Seed: 7, Scale: 0.1})
	reg   = whois.Build(testW)
	m     = as2org.Infer(reg)
)

func confirmedFixture(t *testing.T) *confirm.Result {
	t.Helper()
	telenor, _ := testW.OperatorOfAS(2119)
	optus, _ := testW.OperatorOfAS(7474)
	return &confirm.Result{
		Confirmed: []confirm.Confirmed{
			{
				Company: candidates.Company{
					Name: telenor.LegalName, Country: "NO",
					ASNs:    []world.ASN{2119}, // siblings come from expansion
					Sources: candidates.SourceSet(0).Add(candidates.SrcGeo).Add(candidates.SrcWiki),
				},
				Owner: "NO", Share: 0.547, Source: docsrc.CompanyWebsite,
				Quote: "Major Shareholdings: Government of Norway (54,7%)",
				Lang:  "English", URL: "https://example.no",
			},
			{
				Company: candidates.Company{
					Name: optus.LegalName, Country: "AU", ASNs: optus.ASNs,
					Sources: candidates.SourceSet(0).Add(candidates.SrcEyeballs),
				},
				Owner: "SG", Source: docsrc.AnnualReport,
				ForeignSubsidiary: true, ParentName: "Singapore Telecommunications Limited",
			},
		},
		Minority: []confirm.Minority{
			{
				Company: candidates.Company{Name: "Deutsche Telekom AG", Country: "DE", ASNs: []world.ASN{3320}},
				Owner:   "DE", Share: 0.31,
			},
		},
	}
}

func TestSiblingExpansion(t *testing.T) {
	ds := Run(confirmedFixture(t), m, Options{})
	if len(ds.Organizations) != 2 {
		t.Fatalf("organizations = %d", len(ds.Organizations))
	}
	// Telenor entered with one ASN; expansion must add its clustered
	// siblings (2119 shares an org with several of 8210... per WHOIS).
	telenorASNs := ds.ASNs[indexOf(t, ds, "NO")].ASNs
	if len(telenorASNs) < 2 {
		t.Errorf("sibling expansion added nothing: %v", telenorASNs)
	}
	// Disabling expansion keeps only the direct ASN.
	ds2 := Run(confirmedFixture(t), m, Options{DisableSiblingExpansion: true})
	if n := len(ds2.ASNs[indexOf(t, ds2, "NO")].ASNs); n != 1 {
		t.Errorf("no-expansion ASNs = %d, want 1", n)
	}
}

func indexOf(t *testing.T, ds *Dataset, ownCC string) int {
	t.Helper()
	for i := range ds.Organizations {
		if ds.Organizations[i].OwnershipCC == ownCC {
			return i
		}
	}
	t.Fatalf("no organization owned by %s", ownCC)
	return -1
}

func TestForeignSubsidiaryFields(t *testing.T) {
	ds := Run(confirmedFixture(t), m, Options{})
	i := indexOf(t, ds, "SG")
	org := ds.Organizations[i]
	if !org.IsForeignSubsidiary() {
		t.Fatal("Optus not marked foreign")
	}
	if org.TargetCC != "AU" || org.TargetCountryName != "Australia" {
		t.Errorf("target = %s/%s", org.TargetCC, org.TargetCountryName)
	}
	if org.OperatingCountry() != "AU" {
		t.Errorf("operating country = %s", org.OperatingCountry())
	}
	if org.ParentOrg == "" {
		t.Error("parent_org empty")
	}
	if org.RIR != "APNIC" {
		t.Errorf("RIR = %s, want APNIC (operating country)", org.RIR)
	}
	if ds.NumForeignSubsidiaryASNs() == 0 {
		t.Error("foreign ASN count zero")
	}
}

func TestNoDoubleClaim(t *testing.T) {
	// Two confirmed companies resolving to overlapping ASNs must not
	// both own an AS.
	res := confirmedFixture(t)
	dup := res.Confirmed[0]
	dup.Company.Name = "Telenor (duplicate record)"
	res.Confirmed = append(res.Confirmed, dup)
	ds := Run(res, m, Options{})
	seen := map[world.ASN]bool{}
	for _, oa := range ds.ASNs {
		for _, a := range oa.ASNs {
			if seen[a] {
				t.Fatalf("AS%d claimed twice", a)
			}
			seen[a] = true
		}
	}
	// The duplicate ended up with zero unclaimed ASNs and must be absent.
	if len(ds.Organizations) != 2 {
		t.Errorf("organizations = %d, want 2 (duplicate dropped)", len(ds.Organizations))
	}
}

func TestInputsRoundTrip(t *testing.T) {
	ds := Run(confirmedFixture(t), m, Options{})
	i := indexOf(t, ds, "NO")
	ss := ds.InputsOf(i)
	if !ss.Has(candidates.SrcGeo) || !ss.Has(candidates.SrcWiki) || ss.Has(candidates.SrcOrbis) {
		t.Errorf("inputs = %v", ds.Organizations[i].Inputs)
	}
}

func TestExportImport(t *testing.T) {
	ds := Run(confirmedFixture(t), m, Options{})
	var buf bytes.Buffer
	if err := ds.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"minority_state_owned"`) {
		t.Error("minority extension missing from export")
	}
	back, err := Import(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Organizations) != len(ds.Organizations) || len(back.Minority) != 1 {
		t.Error("round trip lost records")
	}
}

func TestImportRejectsMisaligned(t *testing.T) {
	bad := `{"organizations":[{"org_id":"X"}],"asns":[]}`
	if _, err := Import(strings.NewReader(bad)); err == nil {
		t.Error("misaligned dataset accepted")
	}
	if _, err := Import(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
}
