package expand

import (
	"sort"
	"strings"

	"stateowned/internal/ccodes"
	"stateowned/internal/confirm"
	"stateowned/internal/nameutil"
	"stateowned/internal/whois"
	"stateowned/internal/world"
)

// recoverer implements the analyst-style sibling recovery of §6: while
// investigating a company, the paper's authors noticed ASNs whose
// registry AS names carry the company's brand even though their WHOIS
// organization records differ (typically after acquisitions), and
// contributed those missing sibling links back to AS2Org. The mechanized
// equivalent scans the country's WHOIS records for AS names sharing the
// company's distinctive brand stem.
type recoverer struct {
	reg       *whois.Registry
	byCountry map[string][]whois.Record
}

// genericStems are brand stems too common to identify a company.
var genericStems = map[string]bool{
	"TELECOM": true, "TELE": true, "TEL": true, "NATIONAL": true,
	"MOBILE": true, "MOBI": true, "FIBER": true, "NET": true,
	"AIRLINK": true, "CELL": true, "INTERNET": true, "GLOBAL": true,
	"DIGITAL": true, "BROADBAND": true,
}

func newRecoverer(reg *whois.Registry) *recoverer {
	r := &recoverer{reg: reg}
	if reg == nil {
		return r
	}
	r.byCountry = make(map[string][]whois.Record)
	for _, orgID := range reg.Orgs() {
		for _, asn := range reg.ASNsOfOrg(orgID) {
			if rec, ok := reg.Lookup(asn); ok {
				r.byCountry[rec.Country] = append(r.byCountry[rec.Country], rec)
			}
		}
	}
	for cc := range r.byCountry {
		recs := r.byCountry[cc]
		sort.Slice(recs, func(i, j int) bool { return recs[i].ASN < recs[j].ASN })
	}
	return r
}

// brandStem extracts the distinctive uppercase stem the registry AS-name
// convention uses ("SINGTEL" from "SingTel"), or "" when the stem is too
// generic or collides with the country name.
func brandStem(name, cc string) string {
	toks := nameutil.Tokens(name)
	if len(toks) == 0 {
		return ""
	}
	stem := strings.ToUpper(toks[0])
	if len(stem) > 10 {
		stem = stem[:10]
	}
	return validStem(stem, cc)
}

// validStem rejects stems too short, too common, or identical to a word
// of the country's name ("UGANDA-" prefixes half of Uganda's AS names —
// no identity signal).
func validStem(stem, cc string) string {
	if len(stem) < 5 || genericStems[stem] {
		return ""
	}
	if c, ok := ccodes.ByCode(cc); ok {
		for _, t := range nameutil.Tokens(c.Name) {
			// Compare under the AS-name convention's 10-character
			// truncation: "AFGHANISTA" is still the country word.
			up := strings.ToUpper(t)
			if len(up) > 10 {
				up = up[:10]
			}
			if up == stem {
				return ""
			}
		}
	}
	return stem
}

// recover returns additional sibling ASNs for the confirmed company: in-
// country WHOIS records whose AS name starts with the company's brand
// stem but that AS2Org did not cluster with the known ASNs.
func (r *recoverer) recover(c *confirm.Confirmed, known []world.ASN) []world.ASN {
	if r.reg == nil || len(known) == 0 {
		return nil
	}
	stem := brandStem(c.Company.Name, c.Company.Country)
	if stem == "" {
		// Try the primary AS's registry name instead: the candidate
		// name may be a stale legal name while the AS names carry the
		// brand.
		if rec, ok := r.reg.Lookup(known[0]); ok {
			if i := strings.IndexByte(rec.ASName, '-'); i >= 5 {
				stem = validStem(rec.ASName[:i], c.Company.Country)
			}
		}
	}
	if stem == "" {
		return nil
	}
	knownSet := make(map[world.ASN]bool, len(known))
	for _, a := range known {
		knownSet[a] = true
	}
	var out []world.ASN
	for _, rec := range r.byCountry[c.Company.Country] {
		if knownSet[rec.ASN] {
			continue
		}
		if strings.HasPrefix(rec.ASName, stem+"-") {
			out = append(out, rec.ASN)
		}
	}
	return out
}
