// Package report renders the reproduction's tables and figures as plain
// text. Every experiment regenerator (cmd/experiments, the benches, the
// examples) goes through this package so that output formatting is uniform
// and diffable across runs.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports how many rows have been added.
func (t *Table) NumRows() int { return len(t.rows) }

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_, _ = t.WriteTo(&b)
	return b.String()
}

// Histogram renders a labeled horizontal bar chart, the textual stand-in
// for the paper's Figure 4 histograms.
type Histogram struct {
	Title  string
	labels []string
	values []float64
	notes  []string
}

// NewHistogram creates an empty histogram.
func NewHistogram(title string) *Histogram { return &Histogram{Title: title} }

// AddBar appends one bar with an optional note rendered after the count.
func (h *Histogram) AddBar(label string, value float64, note string) {
	h.labels = append(h.labels, label)
	h.values = append(h.values, value)
	h.notes = append(h.notes, note)
}

// String renders the histogram with bars scaled to maxWidth=40 characters.
func (h *Histogram) String() string {
	const maxWidth = 40
	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "%s\n%s\n", h.Title, strings.Repeat("=", len(h.Title)))
	}
	var max float64
	for _, v := range h.values {
		if v > max {
			max = v
		}
	}
	labelW := 0
	for _, l := range h.labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, l := range h.labels {
		bar := 0
		if max > 0 {
			bar = int(h.values[i] / max * maxWidth)
		}
		if h.values[i] > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "%-*s | %-*s %g", labelW, l, maxWidth, strings.Repeat("#", bar), h.values[i])
		if h.notes[i] != "" {
			fmt.Fprintf(&b, "  (%s)", h.notes[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// VennRegion is one region of a Venn diagram: the set of source labels the
// region belongs to and the count of elements exclusive to that region.
type VennRegion struct {
	Members []string
	Count   int
}

// RenderVenn prints Venn regions sorted by descending count, skipping empty
// regions, in the "bitmask: count" style of the paper's Figure 7.
func RenderVenn(title string, order []string, regions []VennRegion) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(&b, "sources (bit order): %s\n", strings.Join(order, ", "))
	idx := make(map[string]int, len(order))
	for i, s := range order {
		idx[s] = i
	}
	type row struct {
		bits  string
		names string
		count int
	}
	rows := make([]row, 0, len(regions))
	for _, r := range regions {
		if r.Count == 0 {
			continue
		}
		bits := make([]byte, len(order))
		for i := range bits {
			bits[i] = '0'
		}
		for _, m := range r.Members {
			if i, ok := idx[m]; ok {
				bits[i] = '1'
			}
		}
		rows = append(rows, row{string(bits), strings.Join(r.Members, "+"), r.Count})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		return rows[i].bits < rows[j].bits
	})
	for _, r := range rows {
		fmt.Fprintf(&b, "  %s  %4d  %s\n", r.bits, r.count, r.names)
	}
	return b.String()
}

// Series renders an (x, y) series as "x y" lines for figures like the
// paper's Figure 5 cone-growth plot.
func Series(title string, xs []string, ys []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	for i := range xs {
		fmt.Fprintf(&b, "  %-8s %.1f\n", xs[i], ys[i])
	}
	return b.String()
}

// sparkRamp is the unicode block ramp Sparkline draws with.
var sparkRamp = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a value series as a one-line unicode bar ramp, scaled
// to the series' own min..max (a flat series renders as all-low bars).
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(sparkRamp)-1))
		}
		b.WriteRune(sparkRamp[i])
	}
	return b.String()
}
