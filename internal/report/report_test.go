package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "AS", "Country", "Cone")
	tb.AddRow(7473, "SG", 4235)
	tb.AddRow(12389, "RU", 3778)
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "7473") || !strings.Contains(out, "3778") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title + rule + header + sep + 2 rows
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(0.123456)
	if !strings.Contains(tb.String(), "0.12") {
		t.Errorf("float not formatted:\n%s", tb.String())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram("Footprint")
	h.AddBar("0.0-0.1", 28, "ARIN-heavy")
	h.AddBar("0.9-1.0", 13, "")
	h.AddBar("empty", 0, "")
	out := h.String()
	if !strings.Contains(out, "#") {
		t.Error("no bars rendered")
	}
	if !strings.Contains(out, "ARIN-heavy") {
		t.Error("note dropped")
	}
	// A nonzero value must render at least one hash even when tiny.
	h2 := NewHistogram("")
	h2.AddBar("big", 10000, "")
	h2.AddBar("small", 1, "")
	if strings.Count(strings.Split(h2.String(), "\n")[1], "#") < 1 {
		t.Error("tiny nonzero bar invisible")
	}
}

func TestRenderVenn(t *testing.T) {
	out := RenderVenn("Sources", []string{"G", "E", "O"}, []VennRegion{
		{Members: []string{"G", "E", "O"}, Count: 193},
		{Members: []string{"G"}, Count: 22},
		{Members: []string{"E"}, Count: 0}, // skipped
	})
	if !strings.Contains(out, "111   193") {
		t.Errorf("missing full-overlap region:\n%s", out)
	}
	if !strings.Contains(out, "100    22") {
		t.Errorf("missing singleton region:\n%s", out)
	}
	if strings.Contains(out, "010") {
		t.Errorf("empty region rendered:\n%s", out)
	}
}

func TestSeries(t *testing.T) {
	out := Series("Cone", []string{"'10", "'11"}, []float64{100, 250})
	if !strings.Contains(out, "'10") || !strings.Contains(out, "250.0") {
		t.Errorf("series malformed:\n%s", out)
	}
}
