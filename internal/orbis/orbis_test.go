package orbis

import (
	"testing"

	"stateowned/internal/world"
)

var (
	testW  = world.Generate(world.Config{Seed: 7, Scale: 0.1})
	testDB = Build(testW)
)

func qualityCounts(t *testing.T) (fp, fn, tp int) {
	t.Helper()
	labeled := map[string]bool{}
	for _, e := range testDB.StateOwnedTelecoms() {
		if e.OperatorID != "" {
			labeled[e.OperatorID] = true
		}
	}
	for _, id := range testW.OperatorIDs {
		op := testW.Operators[id]
		if !op.Kind.InScope() {
			continue
		}
		truth := testW.Graph.ControlOf(op.Entity).Controlled()
		switch {
		case truth && labeled[id]:
			tp++
		case truth && !labeled[id]:
			fn++
		case !truth && labeled[id] && op.Kind.InScope():
			fp++
		}
	}
	// Municipal FPs (subnational) count too.
	for _, id := range testW.OperatorIDs {
		op := testW.Operators[id]
		if op.Kind == world.KindMunicipal && labeled[id] {
			fp++
		}
	}
	return fp, fn, tp
}

func TestQualityRegime(t *testing.T) {
	fp, fn, tp := qualityCounts(t)
	t.Logf("Orbis quality: TP=%d FP=%d FN=%d (paper: FP=12 FN=140)", tp, fp, fn)
	if tp == 0 {
		t.Fatal("Orbis finds no true state-owned operators")
	}
	if fn == 0 {
		t.Error("Orbis has no false negatives; §7's key finding is absent")
	}
	if fp == 0 {
		t.Error("Orbis has no false positives")
	}
	if fn < tp/4 {
		t.Errorf("FN=%d too low relative to TP=%d: developing-world gap missing", fn, tp)
	}
}

func TestCOMCELPlanted(t *testing.T) {
	var e Entry
	ok := false
	for _, cand := range testDB.StateOwnedTelecoms() {
		if cand.OperatorID != "" {
			if op, _ := testW.Operator(cand.OperatorID); op != nil && op.BrandName == "Comunicacion Celular de Colombia" {
				e, ok = cand, true
			}
		}
	}
	if !ok {
		t.Fatal("COMCEL missing from Orbis state-owned query")
	}
	if !e.StateOwned {
		t.Error("COMCEL must be mislabeled state-owned (the paper's FP case)")
	}
	op, _ := testW.Operator(e.OperatorID)
	if testW.Graph.ControlOf(op.Entity).Controlled() {
		t.Error("COMCEL ground truth should be private")
	}
}

func TestFillerEntriesPresent(t *testing.T) {
	fillers := 0
	for _, e := range testDB.StateOwnedTelecoms() {
		if e.OperatorID == "" {
			if e.Sector == SectorISP {
				t.Fatalf("filler with ISP sector: %+v", e)
			}
			fillers++
		}
	}
	if fillers < 100 {
		t.Errorf("only %d filler rows; the paper's query noise (~700 non-ISPs) is missing", fillers)
	}
}

func TestQuerySizeRegime(t *testing.T) {
	n := len(testDB.StateOwnedTelecoms())
	// Paper: 994 companies. Same order of magnitude expected.
	if n < 300 || n > 2500 {
		t.Errorf("query returned %d rows, want hundreds-to-low-thousands", n)
	}
}

func TestLACNICGap(t *testing.T) {
	// Orbis must miss most LACNIC state telcos (11 of 14 countries in
	// the paper).
	labeled := map[string]bool{}
	for _, e := range testDB.StateOwnedTelecoms() {
		if e.OperatorID != "" {
			labeled[e.OperatorID] = true
		}
	}
	var missedCountries, totalCountries int
	seen := map[string]bool{}
	for _, id := range testW.OperatorIDs {
		op := testW.Operators[id]
		if !op.Kind.InScope() || seen[op.Country] {
			continue
		}
		c := testW.Graph.ControlOf(op.Entity)
		if !c.Controlled() || c.Controller != op.Country {
			continue
		}
		prof := testW.Profiles[op.Country]
		_ = prof
		if rirOf(op.Country) != "LACNIC" {
			continue
		}
		seen[op.Country] = true
		totalCountries++
		// Does any state operator of this country carry the label?
		found := false
		for _, op2 := range testW.OperatorsIn(op.Country) {
			if labeled[op2.ID] {
				found = true
			}
		}
		if !found {
			missedCountries++
		}
	}
	if totalCountries == 0 {
		t.Skip("no LACNIC state countries in this world")
	}
	if frac := float64(missedCountries) / float64(totalCountries); frac < 0.4 {
		t.Errorf("Orbis misses only %.2f of LACNIC state countries; paper missed 11/14", frac)
	}
}

func rirOf(cc string) string {
	switch cc {
	case "AR", "BB", "BO", "BR", "BZ", "CL", "CO", "CR", "CU", "DO", "EC",
		"GT", "GY", "HN", "HT", "MX", "NI", "PA", "PE", "PY", "SR", "SV",
		"TT", "UY", "VE":
		return "LACNIC"
	}
	return "other"
}
