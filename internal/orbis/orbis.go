// Package orbis simulates the Bureau van Dijk Orbis business-information
// database as the paper experienced it (§4.3, §7): a query for
// majority-state-owned telecommunications companies returns a large list
// (994 in the paper) that (i) includes many state telecom-sector firms
// that are not Internet operators, (ii) misses or mislabels many real
// state-owned ISPs — concentrated in Latin America, Central & Southeast
// Asia and Africa (~140 false negatives across 79 countries) — and (iii)
// wrongly labels a handful of private or subnational firms as federally
// state-owned (~12 false positives, mostly foreign subsidiaries, e.g.
// COMCEL/Claro Colombia).
package orbis

import (
	"fmt"
	"sort"

	"stateowned/internal/ccodes"
	"stateowned/internal/faults"
	"stateowned/internal/rng"
	"stateowned/internal/world"
)

// Entry is one company row returned by the Orbis query.
type Entry struct {
	CompanyName string
	Country     string
	// StateOwned is Orbis's label (possibly wrong).
	StateOwned bool
	// Sector is Orbis's industry classification; stage 2 filters
	// non-operator sectors.
	Sector string
	// OperatorID links the entry to the simulated ground truth; empty
	// for filler (non-operator) companies. The pipeline never reads it —
	// it exists for scoring and tests.
	OperatorID string
}

// Sectors Orbis files telecom-adjacent companies under.
const (
	SectorISP       = "Internet service activities"
	SectorTelephony = "Wired/wireless telecommunications"
	SectorHardware  = "Communication equipment manufacturing"
	SectorTowers    = "Telecommunication infrastructure leasing"
	SectorBroadcast = "Radio and television broadcasting"
	SectorSatellite = "Satellite telecommunications"
)

// labelAccuracy is the per-RIR probability that Orbis correctly labels a
// truly state-owned operator as state-owned, calibrated to §7's findings
// (LACNIC misses 11 of 14 countries; Central Asia largely absent).
var labelAccuracy = map[ccodes.RIR]float64{
	ccodes.RIPE:    0.72,
	ccodes.ARIN:    0.90,
	ccodes.APNIC:   0.52,
	ccodes.AFRINIC: 0.48,
	ccodes.LACNIC:  0.22,
}

// centralAsia lists the countries §7 calls out as uncovered.
var centralAsia = map[string]bool{
	"IR": true, "KZ": true, "UZ": true, "TJ": true, "TM": true, "KG": true,
	"VN": true,
}

// DB is a frozen Orbis snapshot.
type DB struct {
	entries []Entry
}

// Build simulates the database contents for the world.
func Build(w *world.World) *DB {
	r := rng.New(w.Seed).Sub("orbis")
	var entries []Entry

	for _, id := range w.OperatorIDs {
		op := w.Operators[id]
		c := ccodes.MustByCode(op.Country)
		prof := w.Profiles[op.Country]
		or := r.Sub("op/" + op.ID)

		// Presence: Orbis coverage is broad but weakest where corporate
		// filings are thin. Quiet transit gateways fly under its radar
		// almost entirely (§7: the CTI-only class).
		presence := 0.45 + 0.5*prof.ICT
		if op.QuietGateway {
			presence *= 0.05
		}
		if !or.Bool(presence) {
			continue
		}
		ctrl := w.Graph.ControlOf(op.Entity)
		truthState := ctrl.Controlled() && op.Kind.InScope()

		label := false
		switch {
		case truthState:
			acc := labelAccuracy[c.RIR]
			if centralAsia[op.Country] {
				acc = 0.08
			}
			label = or.Bool(acc)
		case op.Kind == world.KindMunicipal:
			// Subnational public firms sometimes carry a bare
			// "government owned" flag Orbis surfaces as state-owned
			// (two of the paper's Colombian false positives).
			label = or.Bool(0.30)
		default:
			// Private false positives concentrate on foreign
			// subsidiaries of conglomerates with tangled holdings.
			fp := 0.004
			if op.Conglomerate != op.BrandName {
				fp = 0.06
			}
			label = or.Bool(fp)
		}

		sector := SectorISP
		if op.Kind == world.KindMobile {
			sector = SectorTelephony
		}
		entries = append(entries, Entry{
			CompanyName: op.LegalName,
			Country:     op.Country,
			StateOwned:  label,
			Sector:      sector,
			OperatorID:  op.ID,
		})
	}

	// The planted COMCEL case: América Móvil's Colombian subsidiary is
	// always present and always mislabeled.
	if comcel := findByBrand(w, "Comunicacion Celular de Colombia"); comcel != nil {
		present := false
		for i := range entries {
			if entries[i].OperatorID == comcel.ID {
				entries[i].StateOwned = true
				present = true
			}
		}
		if !present {
			entries = append(entries, Entry{
				CompanyName: comcel.LegalName, Country: comcel.Country,
				StateOwned: true, Sector: SectorTelephony, OperatorID: comcel.ID,
			})
		}
	}

	// Filler rows: state telecom-sector firms that are not Internet
	// operators (equipment, towers, broadcasting, satellite). These are
	// what pushes the paper's query to ~994 rows and what stage 2's
	// sector filter has to discard.
	fillerSectors := []string{SectorHardware, SectorTowers, SectorBroadcast, SectorSatellite}
	for _, cc := range w.Countries {
		cr := r.Sub("filler/" + cc)
		c := ccodes.MustByCode(cc)
		n := cr.IntBetween(3, 7)
		for i := 0; i < n; i++ {
			sector := fillerSectors[cr.Intn(len(fillerSectors))]
			entries = append(entries, Entry{
				CompanyName: fmt.Sprintf("%s National %s Company", c.Name, fillerName(sector)),
				Country:     cc,
				StateOwned:  true,
				Sector:      sector,
			})
		}
	}

	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Country != entries[j].Country {
			return entries[i].Country < entries[j].Country
		}
		return entries[i].CompanyName < entries[j].CompanyName
	})
	return &DB{entries: entries}
}

func fillerName(sector string) string {
	switch sector {
	case SectorHardware:
		return "Communication Equipment"
	case SectorTowers:
		return "Tower Infrastructure"
	case SectorBroadcast:
		return "Broadcasting"
	default:
		return "Satellite"
	}
}

func findByBrand(w *world.World, brand string) *world.Operator {
	for _, id := range w.OperatorIDs {
		if w.Operators[id].BrandName == brand {
			return w.Operators[id]
		}
	}
	return nil
}

// Fetch models querying the live service under faults: the first
// `timeouts` attempts fail transiently (rate-limiting), after which the
// snapshot arrives — possibly truncated and damaged per the injector.
// The hardened runner drives the attempt counter through its retry loop.
func Fetch(w *world.World, attempt, timeouts int, in *faults.Injector) (*DB, error) {
	if attempt <= timeouts {
		return nil, &faults.TransientError{Source: "orbis", Attempt: attempt}
	}
	db := Build(w)
	if in != nil {
		db.Degrade(in)
	}
	return db, nil
}

// Degrade injects response truncation (dropped rows — the rate-limited
// query returned a partial page) and row damage (mangled company names)
// into the snapshot. Damaged rows stay for the validation pass.
func (d *DB) Degrade(in *faults.Injector) faults.Damage {
	kept := d.entries[:0]
	for _, e := range d.entries {
		switch in.Next() {
		case faults.Drop:
			continue
		case faults.Corrupt:
			if in.Coin() {
				e.CompanyName = in.MangleText(e.CompanyName)
			} else {
				e.Country = faults.BadCountry
			}
		}
		kept = append(kept, e)
	}
	d.entries = kept
	return in.Damage()
}

// Quarantine is the validation pass: rows with damaged names or
// unresolvable countries are removed and counted.
func (d *DB) Quarantine() int {
	n := 0
	kept := d.entries[:0]
	for _, e := range d.entries {
		_, ccOK := ccodes.ByCode(e.Country)
		if faults.Mangled(e.CompanyName) || !ccOK {
			n++
			continue
		}
		kept = append(kept, e)
	}
	d.entries = kept
	return n
}

// StateOwnedTelecoms runs the paper's Orbis query: telecom-sector
// companies labeled majority state-owned.
func (d *DB) StateOwnedTelecoms() []Entry {
	var out []Entry
	for _, e := range d.entries {
		if e.StateOwned {
			out = append(out, e)
		}
	}
	return out
}

// LookupCompany returns the entry exactly matching a legal name.
func (d *DB) LookupCompany(name string) (Entry, bool) {
	for _, e := range d.entries {
		if e.CompanyName == name {
			return e, true
		}
	}
	return Entry{}, false
}

// NumEntries reports the database size.
func (d *DB) NumEntries() int { return len(d.entries) }
