package whois

import (
	"strings"
	"testing"

	"stateowned/internal/world"
)

var (
	testW   = world.Generate(world.Config{Seed: 7, Scale: 0.1})
	testReg = Build(testW)
)

func TestEveryASHasRecord(t *testing.T) {
	if testReg.NumRecords() != len(testW.ASNList) {
		t.Fatalf("records %d != ASes %d", testReg.NumRecords(), len(testW.ASNList))
	}
	for _, asn := range testW.ASNList {
		rec, ok := testReg.Lookup(asn)
		if !ok {
			t.Fatalf("AS%d missing", asn)
		}
		if rec.ASN != asn || rec.OrgName == "" || rec.Email == "" || rec.OrgID == "" {
			t.Fatalf("AS%d malformed record %+v", asn, rec)
		}
		a := testW.ASes[asn]
		if rec.Country != a.Country || rec.ASName != a.Name {
			t.Fatalf("AS%d identity mismatch", asn)
		}
	}
}

func TestStaleNamesPresent(t *testing.T) {
	// The planted Internexa Argentina case must surface in WHOIS.
	rec, _ := testReg.Lookup(262195)
	if rec.OrgName != "Transamerican Telecomunication S.A." {
		t.Errorf("Internexa AR OrgName = %q (staleness model should surface the former name)", rec.OrgName)
	}
	// Some share of rebranded operators must show stale names overall.
	stale := 0
	for _, id := range testW.OperatorIDs {
		op := testW.Operators[id]
		if op.FormerName == "" || len(op.ASNs) == 0 {
			continue
		}
		if rec, _ := testReg.Lookup(op.ASNs[0]); rec.OrgName == op.FormerName {
			stale++
		}
	}
	if stale == 0 {
		t.Error("no stale WHOIS records generated")
	}
}

func TestAcquiredSiblingSplits(t *testing.T) {
	// Some multi-ASN operators must have siblings under different org
	// handles (the AS2Org failure input).
	split, together := 0, 0
	for _, id := range testW.OperatorIDs {
		op := testW.Operators[id]
		if len(op.ASNs) < 2 {
			continue
		}
		base, _ := testReg.Lookup(op.ASNs[0])
		for _, asn := range op.ASNs[1:] {
			rec, _ := testReg.Lookup(asn)
			if rec.OrgID != base.OrgID {
				split++
				if !strings.Contains(rec.OrgID, "-ACQ") {
					t.Fatalf("AS%d unexpected foreign org %s", asn, rec.OrgID)
				}
			} else {
				together++
			}
		}
	}
	if split == 0 {
		t.Error("no split-org siblings; AS2Org failure mode not exercised")
	}
	if together == 0 {
		t.Error("no clustered siblings at all")
	}
	if frac := float64(split) / float64(split+together); frac > 0.45 {
		t.Errorf("split fraction %.2f too high", frac)
	}
}

func TestASNsOfOrg(t *testing.T) {
	rec, _ := testReg.Lookup(2119) // Telenor
	asns := testReg.ASNsOfOrg(rec.OrgID)
	if len(asns) < 2 {
		t.Errorf("Telenor org has %d ASNs", len(asns))
	}
	found := false
	for _, a := range asns {
		if a == 2119 {
			found = true
		}
	}
	if !found {
		t.Error("org ASN list misses the queried ASN")
	}
}

func TestDeterminism(t *testing.T) {
	reg2 := Build(testW)
	for _, asn := range testW.ASNList[:300] {
		a, _ := testReg.Lookup(asn)
		b, _ := reg2.Lookup(asn)
		if a != b {
			t.Fatalf("AS%d record differs across builds", asn)
		}
	}
}
