// Package whois simulates the five RIRs' WHOIS registries: the per-ASN
// records (AS name, org handle, org name, contacts) the paper's §4.2
// company-mapping stage consults first.
//
// The simulator reproduces WHOIS's documented failure modes: OrgName is a
// *legal* name that can lag reality after rebrands and acquisitions (the
// paper's Internexa / "Transamerican Telecomunication S.A." example), and
// sibling ASNs acquired over time may be registered under separate org
// handles with unrelated names — which is precisely what defeats
// WHOIS-based sibling inference (AS2Org).
package whois

import (
	"fmt"
	"sort"
	"strings"

	"stateowned/internal/ccodes"
	"stateowned/internal/faults"
	"stateowned/internal/rng"
	"stateowned/internal/world"
)

// Record is one WHOIS ASN entry with the cross-RIR common fields the
// paper lists: ASN, AS name, organization, and a contact.
type Record struct {
	ASN     world.ASN
	ASName  string
	OrgID   string
	OrgName string
	Country string
	RIR     ccodes.RIR
	Email   string
	URL     string
}

// Registry is a frozen WHOIS snapshot.
type Registry struct {
	records map[world.ASN]Record
	byOrg   map[string][]world.ASN
}

// Build snapshots WHOIS for the world.
func Build(w *world.World) *Registry {
	r := rng.New(w.Seed).Sub("whois")
	reg := &Registry{
		records: make(map[world.ASN]Record),
		byOrg:   make(map[string][]world.ASN),
	}
	for _, id := range w.OperatorIDs {
		op := w.Operators[id]
		c := ccodes.MustByCode(op.Country)
		prof := w.Profiles[op.Country]
		or := r.Sub("op/" + op.ID)

		// Stale records: when the operator rebranded, low-maturity
		// registries usually still carry the former legal name.
		orgName := op.LegalName
		if op.FormerName != "" && or.Bool(0.9-0.4*prof.ICT) {
			orgName = op.FormerName
		}
		domain := emailDomain(op.BrandName, op.Country)
		for i, asn := range op.ASNs {
			rec := Record{
				ASN:     asn,
				ASName:  w.ASes[asn].Name,
				OrgID:   op.OrgID,
				OrgName: orgName,
				Country: op.Country,
				RIR:     c.RIR,
				Email:   "noc@" + domain,
				URL:     "https://www." + domain,
			}
			// Acquired siblings: registered under a different org with
			// an unrelated name; AS2Org will not cluster them.
			if i > 0 && or.Bool(0.25) {
				alias := fmt.Sprintf("%s Networks %s", strings.ToUpper(rec.ASName[:3]), legalTail(or, c))
				rec.OrgID = fmt.Sprintf("%s-ACQ%d", op.OrgID, i)
				rec.OrgName = alias
				rec.Email = "admin@" + emailDomain(alias, op.Country)
			}
			reg.records[asn] = rec
			reg.byOrg[rec.OrgID] = append(reg.byOrg[rec.OrgID], asn)
		}
	}
	for _, asns := range reg.byOrg {
		world.SortASNs(asns)
	}
	return reg
}

func legalTail(r *rng.Stream, c ccodes.Country) string {
	switch c.RIR {
	case ccodes.LACNIC:
		return "S.A."
	case ccodes.RIPE:
		return "Ltd"
	default:
		return "Limited"
	}
}

// emailDomain derives a contact domain from a brand name.
func emailDomain(brand, cc string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(brand) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	s := b.String()
	if len(s) > 12 {
		s = s[:12]
	}
	if s == "" {
		s = "example"
	}
	return s + "." + strings.ToLower(cc)
}

// sortedASNs lists the registry's keys in ascending order, the iteration
// order every mutation uses so degraded registries stay deterministic.
func (r *Registry) sortedASNs() []world.ASN {
	asns := make([]world.ASN, 0, len(r.records))
	for a := range r.records {
		asns = append(asns, a)
	}
	world.SortASNs(asns)
	return asns
}

// remove deletes a record and unlinks it from its org handle.
func (r *Registry) remove(a world.ASN) {
	rec, ok := r.records[a]
	if !ok {
		return
	}
	delete(r.records, a)
	kept := r.byOrg[rec.OrgID][:0]
	for _, o := range r.byOrg[rec.OrgID] {
		if o != a {
			kept = append(kept, o)
		}
	}
	if len(kept) == 0 {
		delete(r.byOrg, rec.OrgID)
	} else {
		r.byOrg[rec.OrgID] = kept
	}
}

// Degrade injects the documented WHOIS failure modes into the snapshot:
// records missing from the bulk dump (dropped) and records damaged in
// transfer (mojibake org names, impossible country codes). Corrupt
// records stay in the registry — catching them is the job of the
// validation pass (Quarantine).
func (r *Registry) Degrade(in *faults.Injector) faults.Damage {
	for _, a := range r.sortedASNs() {
		switch in.Next() {
		case faults.Drop:
			r.remove(a)
		case faults.Corrupt:
			rec := r.records[a]
			if in.Coin() {
				rec.OrgName = in.MangleText(rec.OrgName)
			} else {
				rec.Country = faults.BadCountry
			}
			r.records[a] = rec
		}
	}
	return in.Damage()
}

// Quarantine is the validation pass: records with damaged names or
// unresolvable country codes are removed (never propagated to the
// pipeline) and counted.
func (r *Registry) Quarantine() int {
	n := 0
	for _, a := range r.sortedASNs() {
		rec := r.records[a]
		_, ccOK := ccodes.ByCode(rec.Country)
		if faults.Mangled(rec.OrgName) || faults.Mangled(rec.ASName) || !ccOK {
			r.remove(a)
			n++
		}
	}
	return n
}

// Lookup returns the record for an ASN.
func (r *Registry) Lookup(a world.ASN) (Record, bool) {
	rec, ok := r.records[a]
	return rec, ok
}

// ASNsOfOrg returns the ASNs registered under one org handle, sorted.
func (r *Registry) ASNsOfOrg(orgID string) []world.ASN {
	return append([]world.ASN(nil), r.byOrg[orgID]...)
}

// Orgs returns all org handles, sorted.
func (r *Registry) Orgs() []string {
	out := make([]string, 0, len(r.byOrg))
	for o := range r.byOrg {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// NumRecords reports the registry size.
func (r *Registry) NumRecords() int { return len(r.records) }
