package analysis

import (
	"fmt"
	"strings"

	"stateowned/internal/report"
)

// DegradationPoint is one sample of the chaos degradation curve: the
// pipeline's score and health counters at a given fault severity.
type DegradationPoint struct {
	Severity  float64
	Precision float64
	Recall    float64
	StateASes int

	DegradedSources    int
	UnavailableSources int
	Quarantined        int
	Dropped            int
	Retries            int
}

// RenderDegradation formats a severity sweep: the per-point table plus
// precision/recall sparklines showing the decay shape at a glance.
func RenderDegradation(pts []DegradationPoint) string {
	t := report.NewTable("Degradation curve (chaos severity sweep)",
		"severity", "precision", "recall", "state ASes",
		"degraded", "unavail", "quarantined", "dropped", "retries")
	prec := make([]float64, len(pts))
	rec := make([]float64, len(pts))
	for i, p := range pts {
		prec[i] = p.Precision
		rec[i] = p.Recall
		t.AddRow(fmt.Sprintf("%.2f", p.Severity),
			fmt.Sprintf("%.3f", p.Precision), fmt.Sprintf("%.3f", p.Recall),
			p.StateASes, p.DegradedSources, p.UnavailableSources,
			p.Quarantined, p.Dropped, p.Retries)
	}
	var b strings.Builder
	b.WriteString(t.String())
	fmt.Fprintf(&b, "  precision %s\n  recall    %s\n",
		report.Sparkline(prec), report.Sparkline(rec))
	return b.String()
}
