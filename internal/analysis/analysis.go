// Package analysis regenerates every table and figure of the paper's
// evaluation (§7, §8 and the appendices) from a pipeline run, and scores
// the pipeline against the synthetic ground truth — the measurement the
// original study could only approximate through expert spot checks.
package analysis

import (
	"sort"

	"stateowned/internal/candidates"
	"stateowned/internal/ccodes"
	"stateowned/internal/confirm"
	"stateowned/internal/expand"
	"stateowned/internal/eyeballs"
	"stateowned/internal/geo"
	"stateowned/internal/topology"
	"stateowned/internal/whois"
	"stateowned/internal/world"
)

// Data bundles the artifacts of one pipeline run that the analyses read.
type Data struct {
	World *world.World
	Geo   *geo.DB
	Eye   *eyeballs.Dataset
	WHOIS *whois.Registry
	Cands *candidates.Result
	Conf  *confirm.Result
	DS    *expand.Dataset

	// Snapshots are the yearly topology graphs; Lazy-built by
	// EnsureSnapshots for the cone analyses.
	Snapshots map[int]*topology.Graph
}

// EnsureSnapshots builds the 2010-2020 topology snapshots on first use.
func (d *Data) EnsureSnapshots() {
	if d.Snapshots == nil {
		d.Snapshots = topology.Snapshots(d.World)
	}
}

// asOwner returns, for each dataset ASN, the owning state and the country
// of operation.
type asOwner struct {
	owner   string // ownership_cc
	operate string // operating country
	orgIdx  int
	foreign bool
}

func (d *Data) ownersByAS() map[world.ASN]asOwner {
	out := make(map[world.ASN]asOwner)
	for i := range d.DS.Organizations {
		org := &d.DS.Organizations[i]
		for _, a := range d.DS.ASNs[i].ASNs {
			out[a] = asOwner{
				owner:   org.OwnershipCC,
				operate: org.OperatingCountry(),
				orgIdx:  i,
				foreign: org.IsForeignSubsidiary(),
			}
		}
	}
	return out
}

// Headline reproduces the paper's §1/§7 headline numbers.
type Headline struct {
	StateASes      int // paper: 989
	SubsidiaryASes int // paper: 193
	Companies      int // paper: 302
	SubCompanies   int // paper: 84
	OwnerCountries int // paper: 123 (domestic majority owners)
	SubOwners      int // paper: 19 (countries owning foreign subsidiaries)
	MinorityOwners int // paper: >= 24

	// Address-space shares of the global announced table.
	AddrShare     float64 // paper: 0.17
	AddrShareExUS float64 // paper: 0.25
}

// ComputeHeadline derives the headline statistics.
func ComputeHeadline(d *Data) Headline {
	h := Headline{
		StateASes:      len(d.DS.AllASNs()),
		SubsidiaryASes: d.DS.NumForeignSubsidiaryASNs(),
		Companies:      len(d.DS.Organizations),
	}
	domestic := map[string]bool{}
	subOwners := map[string]bool{}
	for i := range d.DS.Organizations {
		org := &d.DS.Organizations[i]
		if org.IsForeignSubsidiary() {
			h.SubCompanies++
			subOwners[org.OwnershipCC] = true
		} else {
			domestic[org.OwnershipCC] = true
		}
	}
	h.OwnerCountries = len(domestic)
	h.SubOwners = len(subOwners)
	minority := map[string]bool{}
	for _, m := range d.DS.Minority {
		minority[m.Owner] = true
	}
	h.MinorityOwners = len(minority)

	var stateAddr, totalAddr, usAddr uint64
	owners := d.ownersByAS()
	for _, asn := range d.World.ASNList {
		n := d.World.ASes[asn].NumAddresses()
		totalAddr += n
		if d.World.ASes[asn].Country == "US" {
			usAddr += n
		}
		if _, ok := owners[asn]; ok {
			stateAddr += n
		}
	}
	if totalAddr > 0 {
		h.AddrShare = float64(stateAddr) / float64(totalAddr)
		h.AddrShareExUS = float64(stateAddr) / float64(totalAddr-usAddr)
	}
	return h
}

// CountryFootprint is one country's row of Figure 1: the domestic and
// foreign state-owned footprint of its access market, each the maximum of
// the address-space fraction and the eyeball fraction.
type CountryFootprint struct {
	CC       string
	Domestic float64
	Foreign  float64
	// Components, for Figure 4.
	DomesticAddr, DomesticEye float64
	ForeignAddr, ForeignEye   float64
}

// ComputeFigure1 derives every country's footprint row.
func ComputeFigure1(d *Data) []CountryFootprint {
	owners := d.ownersByAS()
	var out []CountryFootprint
	for _, cc := range d.World.Countries {
		f := CountryFootprint{CC: cc}
		total := d.Geo.TotalIn(cc)
		if total > 0 {
			var dom, for_ uint64
			for asn, o := range owners {
				n := d.Geo.OriginAddressesIn(asn, cc)
				if n == 0 {
					continue
				}
				if o.owner == cc {
					dom += n
				} else {
					for_ += n
				}
			}
			f.DomesticAddr = float64(dom) / float64(total)
			f.ForeignAddr = float64(for_) / float64(total)
		}
		for _, e := range d.Eye.Country(cc) {
			if o, ok := owners[e.AS]; ok {
				if o.owner == cc {
					f.DomesticEye += e.Share
				} else {
					f.ForeignEye += e.Share
				}
			}
		}
		f.Domestic = maxf(f.DomesticAddr, f.DomesticEye)
		f.Foreign = maxf(f.ForeignAddr, f.ForeignEye)
		if f.Domestic > 1 {
			f.Domestic = 1
		}
		if f.Foreign > 1 {
			f.Foreign = 1
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CC < out[j].CC })
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// VennRegionCount is one exclusive region of a source Venn diagram.
type VennRegionCount struct {
	Members []string
	Count   int
}

// ComputeFigure3 builds the three-category Venn (Technical / Wikipedia+FH
// / Orbis) over the dataset's ASes.
func ComputeFigure3(d *Data) []VennRegionCount {
	cat := func(ss candidates.SourceSet) []string {
		var out []string
		if ss.Has(candidates.SrcGeo) || ss.Has(candidates.SrcEyeballs) || ss.Has(candidates.SrcCTI) {
			out = append(out, "Technical")
		}
		if ss.Has(candidates.SrcWiki) {
			out = append(out, "Wikipedia+FH")
		}
		if ss.Has(candidates.SrcOrbis) {
			out = append(out, "Orbis")
		}
		return out
	}
	return vennOverASes(d, cat)
}

// ComputeFigure7 builds the full five-source Venn (Appendix C).
func ComputeFigure7(d *Data) []VennRegionCount {
	cat := func(ss candidates.SourceSet) []string { return ss.Letters() }
	return vennOverASes(d, cat)
}

func vennOverASes(d *Data, cat func(candidates.SourceSet) []string) []VennRegionCount {
	counts := map[string]*VennRegionCount{}
	for i := range d.DS.Organizations {
		members := cat(d.DS.InputsOf(i))
		if len(members) == 0 {
			continue
		}
		key := ""
		for _, m := range members {
			key += m + "|"
		}
		r := counts[key]
		if r == nil {
			r = &VennRegionCount{Members: members}
			counts[key] = r
		}
		r.Count += len(d.DS.ASNs[i].ASNs)
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]VennRegionCount, 0, len(keys))
	for _, k := range keys {
		out = append(out, *counts[k])
	}
	return out
}

// Figure4Bin is one decile bar of Figure 4, split by RIR.
type Figure4Bin struct {
	Low, High float64
	ByRIR     map[ccodes.RIR]int
	Total     int
}

// Figure4Result carries both panels plus the §8 threshold statistics.
type Figure4Result struct {
	Addr, Eye []Figure4Bin
	// Threshold stats (paper: 49 countries > 0.5 by addresses, 42 by
	// eyeballs, 18 over 0.9 combined).
	AddrOverHalf, EyeOverHalf, Over90Combined int
}

// ComputeFigure4 buckets countries' aggregated domestic state footprints.
func ComputeFigure4(d *Data) Figure4Result {
	fp := ComputeFigure1(d)
	mk := func() []Figure4Bin {
		bins := make([]Figure4Bin, 10)
		for i := range bins {
			bins[i] = Figure4Bin{
				Low: float64(i) / 10, High: float64(i+1) / 10,
				ByRIR: map[ccodes.RIR]int{},
			}
		}
		return bins
	}
	res := Figure4Result{Addr: mk(), Eye: mk()}
	put := func(bins []Figure4Bin, v float64, rir ccodes.RIR) {
		i := int(v * 10)
		if i > 9 {
			i = 9
		}
		bins[i].ByRIR[rir]++
		bins[i].Total++
	}
	for _, f := range fp {
		c := ccodes.MustByCode(f.CC)
		va := clamp01(f.DomesticAddr)
		ve := clamp01(f.DomesticEye)
		put(res.Addr, va, c.RIR)
		put(res.Eye, ve, c.RIR)
		if va > 0.5 {
			res.AddrOverHalf++
		}
		if ve > 0.5 {
			res.EyeOverHalf++
		}
		if va > 0.9 || ve > 0.9 {
			res.Over90Combined++
		}
	}
	return res
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ConeSeries is one AS's customer-cone trajectory (Figure 5).
type ConeSeries struct {
	AS    world.ASN
	Years []int
	Sizes []int
	Slope float64
}

// ComputeFigure5 returns the cone-growth series for the paper's two
// submarine-cable anchors (Angola Cables, BSCCL).
func ComputeFigure5(d *Data) []ConeSeries {
	return ConeGrowth(d, []world.ASN{37468, 132602})
}

// ConeGrowth computes yearly cone sizes and the OLS growth slope for the
// given ASes.
func ConeGrowth(d *Data, asns []world.ASN) []ConeSeries {
	d.EnsureSnapshots()
	var out []ConeSeries
	for _, a := range asns {
		s := ConeSeries{AS: a}
		for y := topology.FirstYear; y <= topology.FinalYear; y++ {
			s.Years = append(s.Years, y)
			s.Sizes = append(s.Sizes, d.Snapshots[y].ConeSize(a))
		}
		s.Slope = topology.GrowthSlope(s.Years, s.Sizes)
		out = append(out, s)
	}
	return out
}

// FastestGrowingCones ranks the dataset's ASes by cone-growth slope (§8).
func FastestGrowingCones(d *Data, k int) []ConeSeries {
	all := ConeGrowth(d, d.DS.AllASNs())
	sort.Slice(all, func(i, j int) bool {
		if all[i].Slope != all[j].Slope {
			return all[i].Slope > all[j].Slope
		}
		return all[i].AS < all[j].AS
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// OwnershipCategory classifies a country for Figure 6's world map.
type OwnershipCategory uint8

// Figure 6 categories.
const (
	NoParticipation OwnershipCategory = iota
	MinorityOnly
	Majority
)

// ComputeFigure6 assigns each country its map category.
func ComputeFigure6(d *Data) map[string]OwnershipCategory {
	out := map[string]OwnershipCategory{}
	for _, cc := range d.World.Countries {
		out[cc] = NoParticipation
	}
	for _, m := range d.DS.Minority {
		if m.Owner != "" {
			if out[m.Owner] == NoParticipation {
				out[m.Owner] = MinorityOnly
			}
		}
	}
	for i := range d.DS.Organizations {
		out[d.DS.Organizations[i].OwnershipCC] = Majority
	}
	return out
}
