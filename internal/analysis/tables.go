package analysis

import (
	"sort"

	"stateowned/internal/candidates"
	"stateowned/internal/ccodes"
	"stateowned/internal/orbis"
	"stateowned/internal/topology"
	"stateowned/internal/world"
)

// Table1Row is one confirmation-source row of Table 1.
type Table1Row struct {
	Source    string
	Companies int
}

// ComputeTable1 counts which confirmation source verified each company.
func ComputeTable1(d *Data) []Table1Row {
	counts := map[string]int{}
	for i := range d.DS.Organizations {
		counts[d.DS.Organizations[i].Source]++
	}
	out := make([]Table1Row, 0, len(counts))
	for s, n := range counts {
		out = append(out, Table1Row{s, n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Companies != out[j].Companies {
			return out[i].Companies > out[j].Companies
		}
		return out[i].Source < out[j].Source
	})
	return out
}

// Table2 summarizes country participation (paper: 123 / 19 / 24, 136
// total).
type Table2 struct {
	MajorityOwners   int
	SubsidiaryOwners int
	MinorityOwners   int
	TotalCountries   int
}

// ComputeTable2 counts countries by participation type.
func ComputeTable2(d *Data) Table2 {
	majority := map[string]bool{}
	subs := map[string]bool{}
	minority := map[string]bool{}
	for i := range d.DS.Organizations {
		org := &d.DS.Organizations[i]
		majority[org.OwnershipCC] = true
		if org.IsForeignSubsidiary() {
			subs[org.OwnershipCC] = true
		}
	}
	for _, m := range d.DS.Minority {
		if m.Owner != "" {
			minority[m.Owner] = true
		}
	}
	all := map[string]bool{}
	for cc := range majority {
		all[cc] = true
	}
	for cc := range subs {
		all[cc] = true
	}
	for cc := range minority {
		all[cc] = true
	}
	return Table2{
		MajorityOwners:   len(majority),
		SubsidiaryOwners: len(subs),
		MinorityOwners:   len(minority),
		TotalCountries:   len(all),
	}
}

// Table3Row maps one owner country to the hosts of its subsidiaries.
type Table3Row struct {
	Owner string
	Hosts []string
}

// ComputeTable3 lists foreign-subsidiary relations, most hosts first.
func ComputeTable3(d *Data) []Table3Row {
	hosts := map[string]map[string]bool{}
	for i := range d.DS.Organizations {
		org := &d.DS.Organizations[i]
		if !org.IsForeignSubsidiary() {
			continue
		}
		if hosts[org.OwnershipCC] == nil {
			hosts[org.OwnershipCC] = map[string]bool{}
		}
		hosts[org.OwnershipCC][org.TargetCC] = true
	}
	out := make([]Table3Row, 0, len(hosts))
	for owner, hs := range hosts {
		row := Table3Row{Owner: owner}
		for h := range hs {
			row.Hosts = append(row.Hosts, h)
		}
		sort.Strings(row.Hosts)
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Hosts) != len(out[j].Hosts) {
			return len(out[i].Hosts) > len(out[j].Hosts)
		}
		return out[i].Owner < out[j].Owner
	})
	return out
}

// Table4Row is one RIR column of Table 4.
type Table4Row struct {
	RIR          ccodes.RIR
	Companies    int
	Countries    int
	PctCountries int
}

// ComputeTable4 groups state ownership by RIR of the home country.
func ComputeTable4(d *Data) ([]Table4Row, Table4Row) {
	companies := map[ccodes.RIR]int{}
	countries := map[ccodes.RIR]map[string]bool{}
	worldCountries := map[string]bool{}
	totalCompanies := 0
	for i := range d.DS.Organizations {
		org := &d.DS.Organizations[i]
		cc := org.OwnershipCC
		c, ok := ccodes.ByCode(cc)
		if !ok {
			continue
		}
		companies[c.RIR]++
		totalCompanies++
		if countries[c.RIR] == nil {
			countries[c.RIR] = map[string]bool{}
		}
		countries[c.RIR][cc] = true
		worldCountries[cc] = true
	}
	var rows []Table4Row
	for _, rir := range ccodes.AllRIRs() {
		n := len(ccodes.InRIR(rir))
		row := Table4Row{RIR: rir, Companies: companies[rir], Countries: len(countries[rir])}
		if n > 0 {
			row.PctCountries = row.Countries * 100 / n
		}
		rows = append(rows, row)
	}
	total := Table4Row{
		Companies: totalCompanies,
		Countries: len(worldCountries),
	}
	if n := ccodes.Count(); n > 0 {
		total.PctCountries = total.Countries * 100 / n
	}
	return rows, total
}

// Table5Row is one row of the largest-customer-cones table.
type Table5Row struct {
	AS       world.ASN
	ASName   string
	Country  string
	ConeSize int
}

// ComputeTable5 ranks the dataset's ASes by final-year customer cone.
func ComputeTable5(d *Data, k int) []Table5Row {
	d.EnsureSnapshots()
	g := d.Snapshots[topology.FinalYear]
	owners := d.ownersByAS()
	var rows []Table5Row
	for asn, o := range owners {
		size := g.ConeSize(asn)
		if size <= 1 {
			continue
		}
		name := ""
		if rec, ok := d.WHOIS.Lookup(asn); ok {
			name = rec.ASName
		}
		rows = append(rows, Table5Row{AS: asn, ASName: name, Country: o.operate, ConeSize: size})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].ConeSize != rows[j].ConeSize {
			return rows[i].ConeSize > rows[j].ConeSize
		}
		return rows[i].AS < rows[j].AS
	})
	if k > len(rows) {
		k = len(rows)
	}
	return rows[:k]
}

// Table6Row is one input-source row of Appendix B's Table 6.
type Table6Row struct {
	Source       candidates.Source
	StateASes    int
	Subsidiaries int
	MinorityASes int
}

// ComputeTable6 counts each source's contribution to the final list.
// Technical sources (G, E, C) are attributed at the AS level — an AS
// counts for the geolocation source only if it itself crossed the 5%
// threshold — while the company-level sources (Orbis, Wikipedia+FH)
// cover all of an organization's ASes, mirroring how the paper's data
// was collected.
func ComputeTable6(d *Data) ([]Table6Row, Table6Row) {
	techTag := map[candidates.Source]map[world.ASN]bool{}
	for _, src := range []candidates.Source{candidates.SrcGeo, candidates.SrcEyeballs, candidates.SrcCTI} {
		set := map[world.ASN]bool{}
		for _, a := range d.Cands.PerSourceASes[src] {
			set[a] = true
		}
		techTag[src] = set
	}
	rows := make([]Table6Row, 0, 5)
	var total Table6Row
	seenAS := map[world.ASN]bool{}
	for _, src := range candidates.AllSources() {
		row := Table6Row{Source: src}
		tech, isTech := techTag[src]
		for i := range d.DS.Organizations {
			ss := d.DS.InputsOf(i)
			if !ss.Has(src) {
				continue
			}
			for _, a := range d.DS.ASNs[i].ASNs {
				if isTech && !tech[a] {
					continue
				}
				row.StateASes++
				if d.DS.Organizations[i].IsForeignSubsidiary() {
					row.Subsidiaries++
				}
			}
		}
		for _, m := range d.DS.Minority {
			var ss candidates.SourceSet
			// Minority records carry no inputs field in the paper's
			// schema; attribute them through the stage-2 record.
			for _, mc := range d.Conf.Minority {
				if mc.Company.Name == m.OrgName && mc.Company.Country == m.CC {
					ss = mc.Company.Sources
					break
				}
			}
			if ss.Has(src) {
				row.MinorityASes += len(m.ASNs)
			}
		}
		rows = append(rows, row)
	}
	for i := range d.DS.Organizations {
		for _, a := range d.DS.ASNs[i].ASNs {
			if !seenAS[a] {
				seenAS[a] = true
				total.StateASes++
				if d.DS.Organizations[i].IsForeignSubsidiary() {
					total.Subsidiaries++
				}
			}
		}
	}
	for _, m := range d.DS.Minority {
		total.MinorityASes += len(m.ASNs)
	}
	return rows, total
}

// Table7Row is one CTI-only AS (Appendix D).
type Table7Row struct {
	Country string
	AS      world.ASN
	ASName  string
}

// ComputeTable7 lists dataset ASes whose organizations were discovered by
// CTI and by no other source.
func ComputeTable7(d *Data) []Table7Row {
	var out []Table7Row
	for i := range d.DS.Organizations {
		ss := d.DS.InputsOf(i)
		if !ss.Has(candidates.SrcCTI) {
			continue
		}
		only := true
		for _, src := range candidates.AllSources() {
			if src != candidates.SrcCTI && ss.Has(src) {
				only = false
			}
		}
		if !only {
			continue
		}
		for _, a := range d.DS.ASNs[i].ASNs {
			name := ""
			if rec, ok := d.WHOIS.Lookup(a); ok {
				name = rec.ASName
			}
			out = append(out, Table7Row{Country: d.DS.Organizations[i].OperatingCountry(), AS: a, ASName: name})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Country != out[j].Country {
			return out[i].Country < out[j].Country
		}
		return out[i].AS < out[j].AS
	})
	return out
}

// Table8Row is one high-footprint country (Appendix F).
type Table8Row struct {
	CC        string
	Footprint float64
}

// ComputeTable8 lists countries whose domestic state footprint is at
// least the threshold (paper: 0.9).
func ComputeTable8(d *Data, threshold float64) []Table8Row {
	var out []Table8Row
	for _, f := range ComputeFigure1(d) {
		if f.Domestic >= threshold {
			out = append(out, Table8Row{CC: f.CC, Footprint: f.Domestic})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Footprint != out[j].Footprint {
			return out[i].Footprint > out[j].Footprint
		}
		return out[i].CC < out[j].CC
	})
	return out
}

// ExcludedRow is one §5.3 / Appendix-E exclusion category.
type ExcludedRow struct {
	Verdict string
	Reason  string
	Count   int
}

// ComputeAppendixE breaks down the stage-2 exclusions by category: the
// academic networks, government bureaucratic networks, Internet-
// administration bodies, subnational operators and non-ISP firms the
// paper removes from scope, plus the private/minority/unconfirmed
// outcomes.
func ComputeAppendixE(d *Data) []ExcludedRow {
	counts := map[[2]string]int{}
	for _, e := range d.Conf.Excluded {
		key := [2]string{e.Verdict.String(), e.Reason}
		if e.Verdict.String() != "out-of-scope" {
			key[1] = "" // collapse non-scope reasons to the verdict
		}
		counts[key]++
	}
	out := make([]ExcludedRow, 0, len(counts))
	for k, n := range counts {
		out = append(out, ExcludedRow{Verdict: k[0], Reason: k[1], Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Verdict != out[j].Verdict {
			return out[i].Verdict < out[j].Verdict
		}
		return out[i].Reason < out[j].Reason
	})
	return out
}

// RIRShare is one RIR's aggregate address-space picture (§8: "the
// fraction of the address space originated by state-owned ASes in
// AFRINIC's countries is the largest out of all the regions; AFRINIC
// also has the largest presence of foreign state-owned ASes").
type RIRShare struct {
	RIR ccodes.RIR
	// Domestic and Foreign are fractions of the RIR's pooled geolocated
	// address space originated by ASes owned by the same country / by
	// another state. Pooled shares are dominated by the largest members
	// (China in APNIC, here as in reality).
	Domestic float64
	Foreign  float64
	// MedianDomestic/MedianForeign are the medians of the member
	// countries' Figure-1 footprints — the per-country view behind the
	// paper's "AFRINIC's fraction is the largest" reading.
	MedianDomestic float64
	MedianForeign  float64
}

// ComputeRIRShares aggregates state-owned address footprints per RIR.
func ComputeRIRShares(d *Data) []RIRShare {
	owners := d.ownersByAS()
	type agg struct{ dom, foreign, total float64 }
	sums := map[ccodes.RIR]*agg{}
	for _, rir := range ccodes.AllRIRs() {
		sums[rir] = &agg{}
	}
	for _, cc := range d.World.Countries {
		c := ccodes.MustByCode(cc)
		a := sums[c.RIR]
		a.total += float64(d.Geo.TotalIn(cc))
		for asn, o := range owners {
			n := float64(d.Geo.OriginAddressesIn(asn, cc))
			if n == 0 {
				continue
			}
			if o.owner == cc {
				a.dom += n
			} else {
				a.foreign += n
			}
		}
	}
	perCountry := map[ccodes.RIR][][2]float64{}
	for _, f := range ComputeFigure1(d) {
		c := ccodes.MustByCode(f.CC)
		// Use the paper's Figure-1 metric per country: the max of the
		// address and eyeball footprints.
		perCountry[c.RIR] = append(perCountry[c.RIR], [2]float64{f.Domestic, f.Foreign})
	}
	median := func(vals []float64) float64 {
		if len(vals) == 0 {
			return 0
		}
		sort.Float64s(vals)
		mid := len(vals) / 2
		if len(vals)%2 == 1 {
			return vals[mid]
		}
		return (vals[mid-1] + vals[mid]) / 2
	}
	out := make([]RIRShare, 0, len(sums))
	for _, rir := range ccodes.AllRIRs() {
		a := sums[rir]
		s := RIRShare{RIR: rir}
		if a.total > 0 {
			s.Domestic = a.dom / a.total
			s.Foreign = a.foreign / a.total
		}
		var dom, frn []float64
		for _, p := range perCountry[rir] {
			dom = append(dom, p[0])
			frn = append(frn, p[1])
		}
		s.MedianDomestic = median(dom)
		s.MedianForeign = median(frn)
		out = append(out, s)
	}
	return out
}

// OrbisAudit reproduces §7's commercial-database quality assessment.
type OrbisAudit struct {
	TruePositives  int
	FalsePositives int // paper: 12
	FalseNegatives int // paper: 140
	FNCountries    int // paper: 79
}

// ComputeOrbisAudit compares Orbis's state-owned labels with the
// pipeline's confirmed list, using ground truth to adjudicate.
func ComputeOrbisAudit(d *Data, db *orbis.DB) OrbisAudit {
	var audit OrbisAudit
	labeled := map[string]bool{}
	for _, e := range db.StateOwnedTelecoms() {
		if e.OperatorID != "" {
			labeled[e.OperatorID] = true
		}
	}
	fnCountries := map[string]bool{}
	for _, id := range d.World.OperatorIDs {
		op := d.World.Operators[id]
		if !op.Kind.InScope() && op.Kind != world.KindMunicipal {
			continue
		}
		truth := op.Kind.InScope() && d.World.Graph.ControlOf(op.Entity).Controlled()
		switch {
		case truth && labeled[id]:
			audit.TruePositives++
		case truth && !labeled[id]:
			audit.FalseNegatives++
			fnCountries[op.Country] = true
		case !truth && labeled[id]:
			audit.FalsePositives++
		}
	}
	audit.FNCountries = len(fnCountries)
	return audit
}

// Score is the ground-truth evaluation of the pipeline's final dataset.
type Score struct {
	TP, FP, FN        int
	Precision, Recall float64
}

// ComputeScore scores dataset membership per AS against the world's
// ground truth. The restrict filter (nil = all) limits scoring to a
// stratum, e.g. LACNIC for the paper's expert-validation comparison.
func ComputeScore(d *Data, restrict func(*world.AS) bool) Score {
	owners := d.ownersByAS()
	var s Score
	for _, asn := range d.World.ASNList {
		as := d.World.ASes[asn]
		if restrict != nil && !restrict(as) {
			continue
		}
		_, truth := d.World.TrueStateOwnedAS(asn)
		_, got := owners[asn]
		switch {
		case truth && got:
			s.TP++
		case truth && !got:
			s.FN++
		case !truth && got:
			s.FP++
		}
	}
	if s.TP+s.FP > 0 {
		s.Precision = float64(s.TP) / float64(s.TP+s.FP)
	}
	if s.TP+s.FN > 0 {
		s.Recall = float64(s.TP) / float64(s.TP+s.FN)
	}
	return s
}
