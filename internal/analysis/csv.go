package analysis

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"stateowned/internal/ccodes"
)

// CSV emitters for the plottable figures, so the reproduced data can be
// fed to external plotting tools (the paper's heatmap and histogram
// figures are graphical; cmd/experiments -csv writes these files).

// WriteFigure1CSV emits the per-country footprint rows.
func WriteFigure1CSV(w io.Writer, rows []CountryFootprint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"cc", "region", "rir", "domestic", "foreign",
		"domestic_addr", "domestic_eyeballs", "foreign_addr", "foreign_eyeballs"}); err != nil {
		return err
	}
	for _, f := range rows {
		c := ccodes.MustByCode(f.CC)
		rec := []string{
			f.CC, c.Region.String(), c.RIR.String(),
			ftoa(f.Domestic), ftoa(f.Foreign),
			ftoa(f.DomesticAddr), ftoa(f.DomesticEye),
			ftoa(f.ForeignAddr), ftoa(f.ForeignEye),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure4CSV emits both histogram panels in long form.
func WriteFigure4CSV(w io.Writer, r Figure4Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"panel", "bin_low", "bin_high", "rir", "countries"}); err != nil {
		return err
	}
	emit := func(panel string, bins []Figure4Bin) error {
		for _, b := range bins {
			for _, rir := range ccodes.AllRIRs() {
				n := b.ByRIR[rir]
				if n == 0 {
					continue
				}
				rec := []string{panel, ftoa(b.Low), ftoa(b.High), rir.String(), strconv.Itoa(n)}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := emit("addresses", r.Addr); err != nil {
		return err
	}
	if err := emit("eyeballs", r.Eye); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure5CSV emits the cone-growth series in long form.
func WriteFigure5CSV(w io.Writer, series []ConeSeries) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"asn", "year", "cone"}); err != nil {
		return err
	}
	for _, s := range series {
		for i := range s.Years {
			rec := []string{
				fmt.Sprint(uint32(s.AS)), strconv.Itoa(s.Years[i]), strconv.Itoa(s.Sizes[i]),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
