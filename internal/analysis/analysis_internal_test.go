package analysis

import (
	"testing"

	"stateowned/internal/candidates"
	"stateowned/internal/expand"
	"stateowned/internal/world"
)

// The heavyweight analysis tests live in the root package (they share one
// pipeline run); these cover the package's pure helpers.

func TestClamp01(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-0.5, 0}, {0, 0}, {0.42, 0.42}, {1, 1}, {3.7, 1},
	}
	for _, c := range cases {
		if got := clamp01(c.in); got != c.want {
			t.Errorf("clamp01(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMaxf(t *testing.T) {
	if maxf(1, 2) != 2 || maxf(2, 1) != 2 || maxf(-1, -2) != -1 {
		t.Error("maxf broken")
	}
}

func TestOwnershipCategoryOrdering(t *testing.T) {
	// Majority must dominate MinorityOnly which dominates
	// NoParticipation: ComputeFigure6 relies on this upgrade order.
	if !(NoParticipation < MinorityOnly && MinorityOnly < Majority) {
		t.Error("category ordering broken")
	}
}

func TestVennOverASesGrouping(t *testing.T) {
	// Build a tiny fake Data with just the dataset fields vennOverASes
	// reads: organizations' inputs and AS groups.
	d := &Data{DS: fakeDataset()}
	regions := vennOverASes(d, func(ss candidates.SourceSet) []string {
		return ss.Letters()
	})
	byKey := map[string]int{}
	for _, r := range regions {
		key := ""
		for _, m := range r.Members {
			key += m
		}
		byKey[key] = r.Count
	}
	if byKey["G"] != 2 {
		t.Errorf("G-only region = %d, want 2", byKey["G"])
	}
	if byKey["GO"] != 1 {
		t.Errorf("G+O region = %d, want 1", byKey["GO"])
	}
}

func fakeDataset() *expand.Dataset {
	ds := &expand.Dataset{}
	ds.Organizations = append(ds.Organizations,
		expand.OrgRecord{Inputs: []string{"G"}},
		expand.OrgRecord{Inputs: []string{"G", "O"}},
	)
	ds.ASNs = append(ds.ASNs,
		expand.OrgASNs{ASNs: []world.ASN{10, 11}},
		expand.OrgASNs{ASNs: []world.ASN{20}},
	)
	return ds
}
