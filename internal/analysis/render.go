package analysis

import (
	"fmt"
	"strings"

	"stateowned/internal/ccodes"
	"stateowned/internal/orbis"
	"stateowned/internal/report"
)

// RenderHeadline formats the headline stats with the paper's values
// alongside.
func RenderHeadline(h Headline) string {
	t := report.NewTable("Headline (paper §1/§7)", "metric", "measured", "paper")
	t.AddRow("state-owned ASes", h.StateASes, 989)
	t.AddRow("foreign-subsidiary ASes", h.SubsidiaryASes, 193)
	t.AddRow("state-owned companies", h.Companies, 302)
	t.AddRow("foreign-subsidiary companies", h.SubCompanies, 84)
	t.AddRow("countries owning operators", h.OwnerCountries, 123)
	t.AddRow("countries owning foreign subsidiaries", h.SubOwners, 19)
	t.AddRow("countries with minority stakes", h.MinorityOwners, 24)
	t.AddRow("share of announced address space", fmt.Sprintf("%.2f", h.AddrShare), "0.17")
	t.AddRow("share excluding the US", fmt.Sprintf("%.2f", h.AddrShareExUS), "0.25")
	return t.String()
}

// RenderFigure1 formats the per-country footprint rows (nonzero only).
func RenderFigure1(rows []CountryFootprint) string {
	t := report.NewTable("Figure 1: state-owned footprint per country",
		"cc", "domestic", "foreign", "dom-addr", "dom-eye", "for-addr", "for-eye")
	for _, f := range rows {
		if f.Domestic == 0 && f.Foreign == 0 {
			continue
		}
		t.AddRow(f.CC, f.Domestic, f.Foreign, f.DomesticAddr, f.DomesticEye, f.ForeignAddr, f.ForeignEye)
	}
	return t.String()
}

// RenderVennRegions formats a Venn result in the paper's bitmask style.
func RenderVennRegions(title string, order []string, regions []VennRegionCount) string {
	rr := make([]report.VennRegion, len(regions))
	for i, r := range regions {
		rr[i] = report.VennRegion{Members: r.Members, Count: r.Count}
	}
	return report.RenderVenn(title, order, rr)
}

// RenderFigure4 formats both panels as histograms.
func RenderFigure4(r Figure4Result) string {
	var b strings.Builder
	renderPanel := func(title string, bins []Figure4Bin) {
		h := report.NewHistogram(title)
		for _, bin := range bins {
			var parts []string
			for _, rir := range ccodes.AllRIRs() {
				if n := bin.ByRIR[rir]; n > 0 {
					parts = append(parts, fmt.Sprintf("%s:%d", rir, n))
				}
			}
			h.AddBar(fmt.Sprintf("%.1f-%.1f", bin.Low, bin.High), float64(bin.Total), strings.Join(parts, " "))
		}
		b.WriteString(h.String())
		b.WriteByte('\n')
	}
	renderPanel("Figure 4a: countries' aggregated state-owned address space", r.Addr)
	renderPanel("Figure 4b: countries' aggregated state-owned eyeballs", r.Eye)
	fmt.Fprintf(&b, "countries > 0.5 by addresses: %d (paper 49)\n", r.AddrOverHalf)
	fmt.Fprintf(&b, "countries > 0.5 by eyeballs:  %d (paper 42)\n", r.EyeOverHalf)
	fmt.Fprintf(&b, "countries > 0.9 combined:     %d (paper 18)\n", r.Over90Combined)
	return b.String()
}

// RenderFigure5 formats the cone-growth series.
func RenderFigure5(series []ConeSeries) string {
	var b strings.Builder
	for _, s := range series {
		xs := make([]string, len(s.Years))
		ys := make([]float64, len(s.Sizes))
		for i := range s.Years {
			xs[i] = fmt.Sprintf("'%02d", s.Years[i]%100)
			ys[i] = float64(s.Sizes[i])
		}
		b.WriteString(report.Series(fmt.Sprintf("Figure 5: AS%d customer-cone growth (slope %.1f/yr)", s.AS, s.Slope), xs, ys))
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderFigure6 summarizes the world-map categories.
func RenderFigure6(cats map[string]OwnershipCategory) string {
	var maj, min, non []string
	for cc, c := range cats {
		switch c {
		case Majority:
			maj = append(maj, cc)
		case MinorityOnly:
			min = append(min, cc)
		default:
			non = append(non, cc)
		}
	}
	sortStrings(maj)
	sortStrings(min)
	t := report.NewTable("Figure 6: world map categories", "category", "countries", "list")
	t.AddRow("majority state-owned", len(maj), strings.Join(maj, " "))
	t.AddRow("minority state-owned", len(min), strings.Join(min, " "))
	t.AddRow("no participation detected", len(non), "")
	return t.String()
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// RenderTable1 formats the confirmation-source table with paper values.
func RenderTable1(rows []Table1Row) string {
	paper := map[string]int{
		"Company's website": 161, "Company's annual report": 44,
		"Freedom House": 33, "TG's commsupdate": 22, "World Bank": 20,
		"ITU": 6, "FCC": 4, "News": 2, "regulator": 2,
	}
	t := report.NewTable("Table 1: confirmation sources", "source", "companies", "paper")
	for _, r := range rows {
		p := "-"
		if v, ok := paper[r.Source]; ok {
			p = fmt.Sprint(v)
		}
		t.AddRow(r.Source, r.Companies, p)
	}
	return t.String()
}

// RenderTable2 formats country-participation counts.
func RenderTable2(t2 Table2) string {
	t := report.NewTable("Table 2: countries owning Internet operator businesses",
		"participation", "countries", "paper")
	t.AddRow("state-owned operators", t2.MajorityOwners, 123)
	t.AddRow("subsidiaries", t2.SubsidiaryOwners, 19)
	t.AddRow("minority state-owned operators", t2.MinorityOwners, 24)
	t.AddRow("total countries", t2.TotalCountries, 136)
	return t.String()
}

// RenderTable3 formats the subsidiary matrix.
func RenderTable3(rows []Table3Row) string {
	t := report.NewTable("Table 3: foreign subsidiaries", "owner", "#", "hosts")
	for _, r := range rows {
		t.AddRow(r.Owner, len(r.Hosts), strings.Join(r.Hosts, " "))
	}
	return t.String()
}

// RenderTable4 formats per-RIR ownership.
func RenderTable4(rows []Table4Row, total Table4Row) string {
	t := report.NewTable("Table 4: state-owned Internet operators by RIR",
		"", "APNIC", "RIPE", "ARIN", "AFRINIC", "LACNIC", "World")
	get := func(f func(Table4Row) int) []any {
		out := make([]any, 0, 7)
		for _, r := range rows {
			out = append(out, f(r))
		}
		out = append(out, f(total))
		return out
	}
	t.AddRow(append([]any{"# companies"}, get(func(r Table4Row) int { return r.Companies })...)...)
	t.AddRow(append([]any{"# countries"}, get(func(r Table4Row) int { return r.Countries })...)...)
	t.AddRow(append([]any{"% countries"}, get(func(r Table4Row) int { return r.PctCountries })...)...)
	return t.String()
}

// RenderTable5 formats the top customer cones with the paper's ranking.
func RenderTable5(rows []Table5Row) string {
	t := report.NewTable("Table 5: largest customer cones of state-owned ASes",
		"ASN", "AS name", "cc", "cone")
	for _, r := range rows {
		t.AddRow(uint32(r.AS), r.ASName, r.Country, r.ConeSize)
	}
	b := t.String()
	b += "paper order: 7473-SingTel 4235, 12389-Rostelecom 3778, 20485-TTK 3171,\n" +
		"  37468-Angola Cables 1843, 262589-Internexa 1315, 4809-China Telecom 1134,\n" +
		"  3303-Swisscom 702, 20804-Exatel 699, 10099-China Unicom 595, 132602-BSCCL 556\n"
	return b
}

// RenderTable6 formats per-source contributions.
func RenderTable6(rows []Table6Row, total Table6Row) string {
	t := report.NewTable("Table 6: individual contribution of each data source",
		"source", "state-owned ASes", "(subsidiaries)", "minority", "paper")
	paper := []string{"593 (126) / 253", "586 (151) / 288", "15 (0) / 7", "587 (123) / 0", "728 (126) / 4"}
	order := []int{0, 1, 2, 3, 4} // G E C O W; paper order G E C O W with W last
	for i, r := range rows {
		_ = order
		t.AddRow(r.Source.String(), r.StateASes, r.Subsidiaries, r.MinorityASes, paper[i])
	}
	t.AddRow("TOTAL", total.StateASes, total.Subsidiaries, total.MinorityASes, "984 (193) / 302")
	return t.String()
}

// RenderTable7 formats the CTI-only AS list.
func RenderTable7(rows []Table7Row) string {
	t := report.NewTable("Table 7: state-owned ASes only discovered by CTI",
		"cc", "ASN", "AS name")
	for _, r := range rows {
		t.AddRow(r.Country, uint32(r.AS), r.ASName)
	}
	b := t.String()
	b += "paper: 9 ASes (MobiFone Global x3, BSCCL, ETECSA, 4 Belarusian gateway ASes)\n"
	return b
}

// RenderTable8 formats the high-footprint country list.
func RenderTable8(rows []Table8Row) string {
	t := report.NewTable("Table 8: countries with >= 0.9 estimated access-market footprint",
		"cc", "footprint")
	for _, r := range rows {
		t.AddRow(r.CC, r.Footprint)
	}
	b := t.String()
	b += fmt.Sprintf("measured: %d countries; paper: 18 (ET TV CU GL DJ SY AE ER SR CN LY YE DZ MO AD IR UY TM)\n", len(rows))
	return b
}

// RenderRIRShares formats the §8 per-RIR address aggregates.
func RenderRIRShares(rows []RIRShare) string {
	t := report.NewTable("Per-RIR state-owned address-space shares (§8)",
		"RIR", "pooled domestic", "pooled foreign", "median country domestic", "median country foreign")
	for _, r := range rows {
		t.AddRow(r.RIR.String(), fmt.Sprintf("%.3f", r.Domestic), fmt.Sprintf("%.3f", r.Foreign),
			fmt.Sprintf("%.3f", r.MedianDomestic), fmt.Sprintf("%.3f", r.MedianForeign))
	}
	b := t.String()
	b += "paper: AFRINIC's domestic fraction is the largest of all regions and\n" +
		"AFRINIC hosts the largest foreign state-owned presence; LACNIC's domestic\n" +
		"fraction is small despite half its countries owning operators.\n"
	return b
}

// RenderAppendixE formats the exclusion breakdown.
func RenderAppendixE(rows []ExcludedRow) string {
	t := report.NewTable("Appendix E: excluded candidates by category",
		"verdict", "category", "candidates")
	for _, r := range rows {
		reason := r.Reason
		if reason == "" {
			reason = "-"
		}
		t.AddRow(r.Verdict, reason, r.Count)
	}
	return t.String()
}

// RenderOrbisAudit formats the §7 Orbis quality assessment.
func RenderOrbisAudit(a OrbisAudit) string {
	t := report.NewTable("Orbis quality audit (§7)", "metric", "measured", "paper")
	t.AddRow("correctly labeled state-owned operators", a.TruePositives, "-")
	t.AddRow("false positives", a.FalsePositives, 12)
	t.AddRow("false negatives", a.FalseNegatives, 140)
	t.AddRow("countries with false negatives", a.FNCountries, 79)
	return t.String()
}

// RenderScore formats a ground-truth score.
func RenderScore(title string, s Score) string {
	t := report.NewTable(title, "tp", "fp", "fn", "precision", "recall")
	t.AddRow(s.TP, s.FP, s.FN, fmt.Sprintf("%.3f", s.Precision), fmt.Sprintf("%.3f", s.Recall))
	return t.String()
}

// OrbisDB re-exports the orbis type for callers that hold a Data plus the
// database (keeps cmd imports tidy).
type OrbisDB = orbis.DB
