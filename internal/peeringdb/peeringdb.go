// Package peeringdb simulates PeeringDB: the voluntary, self-reported AS
// registry the paper uses as its second mapping source (§4.2). Coverage
// is partial (~20% of WHOIS-registered ASes in the paper's snapshot) and
// biased toward transit-oriented, peering-active networks in mature
// ecosystems — but the names operators report there are *fresh brand
// names*, which is exactly why the pipeline consults it after WHOIS.
package peeringdb

import (
	"strings"

	"stateowned/internal/rng"
	"stateowned/internal/world"
)

// Entry is one self-reported PeeringDB network record.
type Entry struct {
	ASN     world.ASN
	Name    string // brand name, current
	Website string
	Country string
	// IRRAsSet and NOCEmail round out the operational fields real
	// entries carry; the pipeline only reads Name and Website.
	IRRAsSet string
	NOCEmail string
}

// DB is a frozen PeeringDB snapshot.
type DB struct {
	entries map[world.ASN]Entry
}

// Build samples which operators registered on PeeringDB.
func Build(w *world.World) *DB {
	r := rng.New(w.Seed).Sub("peeringdb")
	db := &DB{entries: make(map[world.ASN]Entry)}
	for _, id := range w.OperatorIDs {
		op := w.Operators[id]
		prof := w.Profiles[op.Country]
		or := r.Sub("op/" + op.ID)
		// Registration probability: transit networks and incumbents
		// register to attract peers/customers; stubs rarely bother.
		var p float64
		switch op.Kind {
		case world.KindTransit, world.KindSubmarineCable:
			p = 0.45 + 0.4*prof.ICT
		case world.KindIncumbent:
			p = 0.25 + 0.4*prof.ICT
		case world.KindMobile, world.KindRegionalISP:
			p = 0.10 + 0.25*prof.ICT
		case world.KindEnterprise:
			p = 0.03 + 0.12*prof.ICT
		default:
			p = 0.05 + 0.10*prof.ICT
		}
		if !or.Bool(p) {
			continue
		}
		domain := webDomain(op.BrandName, op.Country)
		for _, asn := range op.ASNs {
			// Even registered operators list only some siblings.
			if asn != op.ASNs[0] && !or.Bool(0.5) {
				continue
			}
			db.entries[asn] = Entry{
				ASN:      asn,
				Name:     op.BrandName,
				Website:  "https://www." + domain,
				Country:  op.Country,
				IRRAsSet: "AS-" + strings.ToUpper(firstToken(op.BrandName)),
				NOCEmail: "peering@" + domain,
			}
		}
	}
	return db
}

func firstToken(s string) string {
	f := strings.Fields(s)
	if len(f) == 0 {
		return "NET"
	}
	return strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			return r
		}
		return -1
	}, f[0])
}

func webDomain(brand, cc string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(brand) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	s := b.String()
	if len(s) > 12 {
		s = s[:12]
	}
	if s == "" {
		s = "example"
	}
	return s + "." + strings.ToLower(cc)
}

// Lookup returns the entry for an ASN.
func (d *DB) Lookup(a world.ASN) (Entry, bool) {
	e, ok := d.entries[a]
	return e, ok
}

// NumEntries reports how many ASNs are registered.
func (d *DB) NumEntries() int { return len(d.entries) }
