package peeringdb

import (
	"testing"

	"stateowned/internal/world"
)

var (
	testW  = world.Generate(world.Config{Seed: 7, Scale: 0.1})
	testDB = Build(testW)
)

func TestPartialCoverage(t *testing.T) {
	frac := float64(testDB.NumEntries()) / float64(len(testW.ASNList))
	// Paper: roughly 20% of WHOIS-registered ASes.
	if frac < 0.05 || frac > 0.45 {
		t.Errorf("coverage %.2f outside plausible PeeringDB band", frac)
	}
}

func TestEntriesCarryBrandNames(t *testing.T) {
	hits := 0
	for _, asn := range testW.ASNList {
		e, ok := testDB.Lookup(asn)
		if !ok {
			continue
		}
		hits++
		op, _ := testW.OperatorOfAS(asn)
		if e.Name != op.BrandName {
			t.Fatalf("AS%d PeeringDB name %q != brand %q", asn, e.Name, op.BrandName)
		}
		if e.Country != op.Country || e.Website == "" || e.NOCEmail == "" {
			t.Fatalf("AS%d malformed entry %+v", asn, e)
		}
	}
	if hits == 0 {
		t.Fatal("no entries at all")
	}
}

func TestTransitBias(t *testing.T) {
	// Transit/incumbent networks must be registered at a higher rate
	// than enterprise stubs.
	rate := func(kinds map[world.OperatorKind]bool) float64 {
		covered, total := 0, 0
		for _, id := range testW.OperatorIDs {
			op := testW.Operators[id]
			if !kinds[op.Kind] || len(op.ASNs) == 0 {
				continue
			}
			total++
			if _, ok := testDB.Lookup(op.ASNs[0]); ok {
				covered++
			}
		}
		if total == 0 {
			return 0
		}
		return float64(covered) / float64(total)
	}
	transit := rate(map[world.OperatorKind]bool{world.KindTransit: true, world.KindIncumbent: true, world.KindSubmarineCable: true})
	stub := rate(map[world.OperatorKind]bool{world.KindEnterprise: true})
	if transit <= stub {
		t.Errorf("transit coverage %.2f not above stub coverage %.2f", transit, stub)
	}
}

func TestDeterminism(t *testing.T) {
	db2 := Build(testW)
	if db2.NumEntries() != testDB.NumEntries() {
		t.Fatal("entry counts differ across builds")
	}
}
