// Package candidates implements stage 1 of the paper's pipeline (§4):
// assembling the list of candidate ASes and companies to be manually
// verified.
//
// Technical sources propose ASes: country-level AS geolocation (ASes
// originating >= 5% of a country's geolocated addresses), the APNIC
// eyeball estimates (>= 5% of a country's eyeballs) and the CTI metric
// (the two most influential transit ASes per covered country). Candidate
// ASes are then mapped to company names via WHOIS, PeeringDB and — when
// both fail to yield a usable name — a simulated web search on the
// registered contact domain (§4.2).
//
// Non-technical sources propose company names directly: the Orbis
// state-owned-telecom query and the Wikipedia + Freedom House country
// listings (§4.3).
package candidates

import (
	"fmt"
	"sort"
	"strings"

	"stateowned/internal/as2org"
	"stateowned/internal/ccodes"
	"stateowned/internal/docsrc"
	"stateowned/internal/eyeballs"
	"stateowned/internal/geo"
	"stateowned/internal/nameutil"
	"stateowned/internal/orbis"
	"stateowned/internal/peeringdb"
	"stateowned/internal/whois"
	"stateowned/internal/world"
)

// Source identifies one of the five input sources, abbreviated as in the
// paper's dataset (§6): G, E, C, O, W.
type Source uint8

// The five input sources.
const (
	SrcGeo      Source = iota // G: country-level AS geolocation
	SrcEyeballs               // E: APNIC eyeballs dataset
	SrcCTI                    // C: country transit influence
	SrcOrbis                  // O: Orbis
	SrcWiki                   // W: Wikipedia + Freedom House
)

// Letter returns the paper's one-letter abbreviation.
func (s Source) Letter() string { return [...]string{"G", "E", "C", "O", "W"}[s] }

// String names the source.
func (s Source) String() string {
	return [...]string{
		"Country-level AS geolocation", "APNIC eyeballs dataset",
		"Country Transit Influence", "Orbis", "Wikipedia + Freedom House",
	}[s]
}

// AllSources lists the sources in canonical order.
func AllSources() []Source { return []Source{SrcGeo, SrcEyeballs, SrcCTI, SrcOrbis, SrcWiki} }

// SourceSet is a bitmask of input sources.
type SourceSet uint8

// Add returns the set with s included.
func (ss SourceSet) Add(s Source) SourceSet { return ss | 1<<s }

// Has reports membership.
func (ss SourceSet) Has(s Source) bool { return ss&(1<<s) != 0 }

// Union merges two sets.
func (ss SourceSet) Union(o SourceSet) SourceSet { return ss | o }

// Letters renders the set in the paper's "[G, E, W, O]" order: G E C O W.
func (ss SourceSet) Letters() []string {
	var out []string
	for _, s := range AllSources() {
		if ss.Has(s) {
			out = append(out, s.Letter())
		}
	}
	return out
}

// MarketShareThreshold is the paper's 5% market-relevance cut for the
// geolocation and eyeball sources.
const MarketShareThreshold = 0.05

// CTITopK is how many top-CTI ASes per country join the candidate list.
const CTITopK = 2

// MappingThreshold is the minimum name similarity for resolving a company
// name against WHOIS/PeeringDB records.
const MappingThreshold = 0.80

// Identity matching between company names is stricter than retrieval: two
// records are the same company only when, after stripping the operating
// country's name tokens (inside one country, "Nigeria Mobile" and
// "Nigeria Telecom" share no identity signal beyond the country word),
// either the normalized strings are near-identical or both the combined
// similarity and the weighted token overlap are high.
const (
	identityJWBar    = 0.92
	identitySimBar   = 0.85
	identityTokenBar = 0.65
)

// SameCompany reports whether two names (both operating in country cc)
// plausibly denote the same company. Both stage-1 candidate merging and
// stage-2 document matching use this predicate.
func SameCompany(a, b, cc string) bool {
	sa, sb := stripCountryTokens(a, cc), stripCountryTokens(b, cc)
	if sa != "" && sb != "" {
		a, b = sa, sb
	}
	if nameutil.JaroWinkler(nameutil.Normalize(a), nameutil.Normalize(b)) >= identityJWBar {
		return true
	}
	return nameutil.Similarity(a, b) >= identitySimBar &&
		nameutil.TokenSetSimilarity(a, b) >= identityTokenBar
}

// stripCountryTokens removes the country's name words from a company name
// ("Nigeria Mobile" -> "Mobile" for cc=NG).
func stripCountryTokens(name, cc string) string {
	c, ok := ccodes.ByCode(cc)
	if !ok {
		return name
	}
	drop := map[string]bool{}
	for _, t := range nameutil.Tokens(c.Name) {
		drop[t] = true
	}
	var kept []string
	for _, t := range nameutil.Tokens(name) {
		if !drop[t] {
			kept = append(kept, t)
		}
	}
	return strings.Join(kept, " ")
}

// Company is one candidate company to be verified in stage 2.
type Company struct {
	// Name is the best name stage 1 could establish; NameSource records
	// where it came from ("whois", "peeringdb", "web-search", "orbis",
	// "wiki+fh").
	Name       string
	NameSource string
	Country    string
	Sources    SourceSet
	// ASNs are the candidate ASes mapped to this company so far (empty
	// for company-name-only candidates).
	ASNs []world.ASN
	// OrgIDs are the AS2Org organizations behind those ASNs.
	OrgIDs []string
}

// Inputs bundles the data sources stage 1 consumes. A nil Geo, Eyeballs
// or Orbis drops that source (ablations); DisableWikiFH drops the
// Wikipedia + Freedom House listings while keeping the corpus available
// for name mapping.
type Inputs struct {
	Geo       *geo.DB
	Eyeballs  *eyeballs.Dataset
	CTITop    map[string][]world.ASN // country -> top-K transit ASes
	WHOIS     *whois.Registry
	PeeringDB *peeringdb.DB
	AS2Org    *as2org.Mapping
	Orbis     *orbis.DB
	Docs      *docsrc.Corpus
	Countries []string // countries in scope

	DisableWikiFH bool
	// Threshold overrides MarketShareThreshold when > 0 (ablation sweep).
	Threshold float64
}

func (in Inputs) threshold() float64 {
	if in.Threshold > 0 {
		return in.Threshold
	}
	return MarketShareThreshold
}

// Stats captures the stage-1 aggregates the paper reports in §4.
type Stats struct {
	GeoASes           int // paper: 793
	EyeballASes       int // paper: 716
	TechIntersection  int // paper: 466
	TechUnionGE       int // paper: 1043
	CTIASes           int // paper: 93
	AllTechnicalASes  int // paper: 1091
	DistinctOrgs      int // paper: 1023
	OrbisCompanies    int // paper: 994
	WikiFHCompanies   int
	CandidateCompanys int
}

// Result is stage 1's output.
type Result struct {
	Companies []Company
	// PerSourceASes records which ASNs each technical source proposed.
	PerSourceASes map[Source][]world.ASN
	Stats         Stats
}

// Run executes stage 1.
func Run(in Inputs) *Result {
	res := &Result{PerSourceASes: map[Source][]world.ASN{}}

	geoASes := geoCandidates(in)
	eyeASes := eyeballCandidates(in)
	ctiASes := ctiCandidates(in)
	res.PerSourceASes[SrcGeo] = setToSorted(geoASes)
	res.PerSourceASes[SrcEyeballs] = setToSorted(eyeASes)
	res.PerSourceASes[SrcCTI] = setToSorted(ctiASes)

	res.Stats.GeoASes = len(geoASes)
	res.Stats.EyeballASes = len(eyeASes)
	res.Stats.CTIASes = len(ctiASes)
	inter, union := 0, map[world.ASN]bool{}
	for a := range geoASes {
		union[a] = true
		if eyeASes[a] {
			inter++
		}
	}
	for a := range eyeASes {
		union[a] = true
	}
	res.Stats.TechIntersection = inter
	res.Stats.TechUnionGE = len(union)
	for a := range ctiASes {
		union[a] = true
	}
	res.Stats.AllTechnicalASes = len(union)

	// Map technical candidate ASes to companies, grouped by AS2Org org.
	all := setToSorted(map[world.ASN]bool(union))
	res.Stats.DistinctOrgs = in.AS2Org.DistinctOrgs(all)

	tagOf := func(a world.ASN) SourceSet {
		var ss SourceSet
		if geoASes[a] {
			ss = ss.Add(SrcGeo)
		}
		if eyeASes[a] {
			ss = ss.Add(SrcEyeballs)
		}
		if ctiASes[a] {
			ss = ss.Add(SrcCTI)
		}
		return ss
	}

	type orgAgg struct {
		asns []world.ASN
		ss   SourceSet
	}
	orgGroups := map[string]*orgAgg{}
	for _, a := range all {
		// An AS with no AS2Org organization (its WHOIS record is missing
		// or was quarantined) stands alone: pooling org-less ASes into one
		// shared group would weld unrelated operators into a single
		// pseudo-company.
		orgID := fmt.Sprintf("asn-only/%d", a)
		if org, ok := in.AS2Org.OrgOf(a); ok {
			orgID = org.ID
		}
		g := orgGroups[orgID]
		if g == nil {
			g = &orgAgg{}
			orgGroups[orgID] = g
		}
		g.asns = append(g.asns, a)
		g.ss = g.ss.Union(tagOf(a))
	}
	orgIDs := make([]string, 0, len(orgGroups))
	for id := range orgGroups {
		orgIDs = append(orgIDs, id)
	}
	sort.Strings(orgIDs)

	var companies []Company
	for _, orgID := range orgIDs {
		g := orgGroups[orgID]
		sort.Slice(g.asns, func(i, j int) bool { return g.asns[i] < g.asns[j] })
		name, nameSrc, country := mapASToCompany(in, g.asns[0])
		if name == "" {
			// No registry, PeeringDB or web-search name at all: stage 2
			// has nothing to confirm against, and an unnamed candidate
			// would match documents promiscuously. The AS stays counted in
			// the technical stats but produces no company candidate.
			continue
		}
		companies = append(companies, Company{
			Name: name, NameSource: nameSrc, Country: country,
			Sources: g.ss, ASNs: g.asns, OrgIDs: []string{orgID},
		})
	}

	// Non-technical candidates.
	if in.Orbis != nil {
		orbisRows := in.Orbis.StateOwnedTelecoms()
		res.Stats.OrbisCompanies = len(orbisRows)
		for _, e := range orbisRows {
			companies = append(companies, Company{
				Name: e.CompanyName, NameSource: "orbis", Country: e.Country,
				Sources: SourceSet(0).Add(SrcOrbis),
			})
		}
	}
	if !in.DisableWikiFH {
		wikiFH := 0
		for _, l := range append(in.Docs.FreedomHouseListings(), in.Docs.WikipediaListings()...) {
			for _, name := range l.Companies {
				wikiFH++
				companies = append(companies, Company{
					Name: name, NameSource: "wiki+fh", Country: l.Country,
					Sources: SourceSet(0).Add(SrcWiki),
				})
			}
		}
		res.Stats.WikiFHCompanies = wikiFH
	}

	res.Companies = mergeCandidates(companies)
	res.Stats.CandidateCompanys = len(res.Companies)
	return res
}

func geoCandidates(in Inputs) map[world.ASN]bool {
	out := map[world.ASN]bool{}
	if in.Geo == nil {
		return out
	}
	for _, cc := range in.Countries {
		total := in.Geo.TotalIn(cc)
		if total == 0 {
			continue
		}
		for _, tr := range in.Geo.CountryOrigins(cc) {
			if float64(tr.Addresses)/float64(total) >= in.threshold() {
				out[tr.Origin] = true
			}
		}
	}
	return out
}

func eyeballCandidates(in Inputs) map[world.ASN]bool {
	out := map[world.ASN]bool{}
	if in.Eyeballs == nil {
		return out
	}
	for _, cc := range in.Countries {
		for _, e := range in.Eyeballs.Country(cc) {
			if e.Share >= in.threshold() {
				out[e.AS] = true
			}
		}
	}
	return out
}

func ctiCandidates(in Inputs) map[world.ASN]bool {
	out := map[world.ASN]bool{}
	for _, asns := range in.CTITop {
		for i, a := range asns {
			if i >= CTITopK {
				break
			}
			out[a] = true
		}
	}
	return out
}

func setToSorted(m map[world.ASN]bool) []world.ASN {
	out := make([]world.ASN, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mapASToCompany resolves an AS to its best-known company name (§4.2):
// WHOIS OrgName first; PeeringDB's fresher brand name when present; and
// when the WHOIS name looks like a dead end, a web search seeded with the
// record's contact domain.
func mapASToCompany(in Inputs, a world.ASN) (name, source, country string) {
	rec, ok := in.WHOIS.Lookup(a)
	if ok {
		name, source, country = rec.OrgName, "whois", rec.Country
	}
	if e, ok := in.PeeringDB.Lookup(a); ok {
		// Self-reported brand names are fresher than WHOIS legal names.
		name, source, country = e.Name, "peeringdb", e.Country
		return
	}
	if ok {
		// Web search fallback: the paper googles the contact domains
		// when the WHOIS name finds no website. Simulated: search the
		// documentary corpus for the WHOIS name; if it misses but the
		// domain's brand stem hits, adopt the document's company name.
		if len(in.Docs.Search(name, country)) == 0 {
			stem := strings.SplitN(rec.Email, "@", 2)
			if len(stem) == 2 {
				brandStem := strings.SplitN(stem[1], ".", 2)[0]
				if docs := in.Docs.Search(brandStem, country); len(docs) > 0 {
					return docs[0].CompanyName, "web-search", country
				}
			}
		}
	}
	return
}

// mergeCandidates deduplicates candidates that refer to the same company
// (same country, name similarity above threshold), unioning their source
// tags and ASNs.
func mergeCandidates(cands []Company) []Company {
	byCountry := map[string][]Company{}
	for _, c := range cands {
		byCountry[c.Country] = append(byCountry[c.Country], c)
	}
	countries := make([]string, 0, len(byCountry))
	for cc := range byCountry {
		countries = append(countries, cc)
	}
	sort.Strings(countries)

	var out []Company
	for _, cc := range countries {
		group := byCountry[cc]
		// Prefer AS-backed candidates as merge anchors.
		sort.SliceStable(group, func(i, j int) bool {
			if (len(group[i].ASNs) > 0) != (len(group[j].ASNs) > 0) {
				return len(group[i].ASNs) > 0
			}
			return group[i].Name < group[j].Name
		})
		var merged []Company
		for _, c := range group {
			placed := false
			for i := range merged {
				if SameCompany(merged[i].Name, c.Name, cc) {
					merged[i].Sources = merged[i].Sources.Union(c.Sources)
					merged[i].ASNs = unionASNs(merged[i].ASNs, c.ASNs)
					merged[i].OrgIDs = unionStrings(merged[i].OrgIDs, c.OrgIDs)
					placed = true
					break
				}
			}
			if !placed {
				merged = append(merged, c)
			}
		}
		out = append(out, merged...)
	}
	return out
}

func unionASNs(a, b []world.ASN) []world.ASN {
	seen := map[world.ASN]bool{}
	for _, x := range a {
		seen[x] = true
	}
	for _, x := range b {
		if !seen[x] {
			a = append(a, x)
			seen[x] = true
		}
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	return a
}

func unionStrings(a, b []string) []string {
	seen := map[string]bool{}
	for _, x := range a {
		seen[x] = true
	}
	for _, x := range b {
		if !seen[x] {
			a = append(a, x)
			seen[x] = true
		}
	}
	sort.Strings(a)
	return a
}
