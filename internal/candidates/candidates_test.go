package candidates

import (
	"testing"

	"stateowned/internal/as2org"
	"stateowned/internal/docsrc"
	"stateowned/internal/eyeballs"
	"stateowned/internal/geo"
	"stateowned/internal/orbis"
	"stateowned/internal/peeringdb"
	"stateowned/internal/whois"
	"stateowned/internal/world"
)

var (
	testW   = world.Generate(world.Config{Seed: 7, Scale: 0.1})
	testIn  = buildInputs()
	testRes = Run(testIn)
)

func buildInputs() Inputs {
	reg := whois.Build(testW)
	return Inputs{
		Geo:       geo.Build(testW),
		Eyeballs:  eyeballs.Build(testW),
		CTITop:    map[string][]world.ASN{"CU": {11960}, "VN": {45895, 7552}},
		WHOIS:     reg,
		PeeringDB: peeringdb.Build(testW),
		AS2Org:    as2org.Infer(reg),
		Orbis:     orbis.Build(testW),
		Docs:      docsrc.Build(testW),
		Countries: testW.Countries,
	}
}

func TestSourceSet(t *testing.T) {
	var ss SourceSet
	ss = ss.Add(SrcGeo).Add(SrcWiki)
	if !ss.Has(SrcGeo) || !ss.Has(SrcWiki) || ss.Has(SrcCTI) {
		t.Fatalf("set membership wrong: %v", ss.Letters())
	}
	got := ss.Letters()
	if len(got) != 2 || got[0] != "G" || got[1] != "W" {
		t.Errorf("Letters = %v, want [G W]", got)
	}
	union := ss.Union(SourceSet(0).Add(SrcOrbis))
	if !union.Has(SrcOrbis) || !union.Has(SrcGeo) {
		t.Error("union broken")
	}
}

func TestSameCompany(t *testing.T) {
	same := []struct{ a, b, cc string }{
		{"Telenor Norge AS", "Telenor", "NO"},
		{"Angola Cables S.A.", "Angola Cables", "AO"},
		{"Optus Pty Ltd", "Optus", "AU"},
		{"Rostelecom PJSC", "Rostelecom", "RU"},
	}
	for _, c := range same {
		if !SameCompany(c.a, c.b, c.cc) {
			t.Errorf("SameCompany(%q, %q) = false", c.a, c.b)
		}
	}
	different := []struct{ a, b, cc string }{
		{"Nigeria Mobile", "Nigeria Telecom", "NG"}, // country-token trap
		{"Singapore Mobile", "Singapore Telecommunications Limited", "SG"},
		{"Sierra Leone Backbone", "Sierra Leone Telecom", "SL"},
		{"Telefinl", "Telenor Finland", "FI"},
		{"BermudaTel", "Bermuda Mobile", "BM"},
	}
	for _, c := range different {
		if SameCompany(c.a, c.b, c.cc) {
			t.Errorf("SameCompany(%q, %q) = true", c.a, c.b)
		}
	}
}

func TestThresholdFiltering(t *testing.T) {
	// Candidates must have >= 5% of some country's addresses/eyeballs.
	geoASes := map[world.ASN]bool{}
	for _, a := range testRes.PerSourceASes[SrcGeo] {
		geoASes[a] = true
	}
	if len(geoASes) == 0 {
		t.Fatal("no geolocation candidates")
	}
	// Tiny stubs must not qualify.
	qualified := 0
	for _, asn := range testW.ASNList {
		op, _ := testW.OperatorOfAS(asn)
		if op.Kind == world.KindEnterprise && geoASes[asn] {
			qualified++
		}
	}
	if frac := float64(qualified) / float64(len(geoASes)); frac > 0.25 {
		t.Errorf("%.2f of geo candidates are stubs; threshold too weak", frac)
	}
	// A higher threshold strictly shrinks the candidate set.
	strict := testIn
	strict.Threshold = 0.20
	strictRes := Run(strict)
	if strictRes.Stats.GeoASes > testRes.Stats.GeoASes {
		t.Error("raising the threshold grew the candidate list")
	}
}

func TestStatsConsistency(t *testing.T) {
	st := testRes.Stats
	if st.TechIntersection > st.GeoASes || st.TechIntersection > st.EyeballASes {
		t.Error("intersection exceeds a source")
	}
	if st.TechUnionGE < st.GeoASes || st.TechUnionGE < st.EyeballASes {
		t.Error("union smaller than a source")
	}
	if st.AllTechnicalASes < st.TechUnionGE {
		t.Error("all-technical smaller than G/E union")
	}
	if st.DistinctOrgs > st.AllTechnicalASes {
		t.Error("more orgs than ASes")
	}
	if st.CandidateCompanys == 0 {
		t.Error("no candidate companies")
	}
}

func TestMergedCandidatesCarryUnionTags(t *testing.T) {
	// The Telenor candidate must exist with technical + non-technical
	// sources merged.
	for _, c := range testRes.Companies {
		if c.Country != "NO" {
			continue
		}
		if SameCompany(c.Name, "Telenor", "NO") {
			hasTech := c.Sources.Has(SrcGeo) || c.Sources.Has(SrcEyeballs)
			if !hasTech {
				t.Errorf("Telenor candidate lacks technical tags: %v", c.Sources.Letters())
			}
			if len(c.ASNs) == 0 {
				t.Error("Telenor candidate has no ASNs")
			}
			return
		}
	}
	t.Error("no Telenor candidate found")
}

func TestAblationDropsSource(t *testing.T) {
	noGeo := testIn
	noGeo.Geo = nil
	r := Run(noGeo)
	if r.Stats.GeoASes != 0 {
		t.Error("geo candidates present despite nil Geo")
	}
	if len(r.PerSourceASes[SrcGeo]) != 0 {
		t.Error("geo AS list not empty")
	}
	noWiki := testIn
	noWiki.DisableWikiFH = true
	r2 := Run(noWiki)
	if r2.Stats.WikiFHCompanies != 0 {
		t.Error("wiki+FH mentions despite DisableWikiFH")
	}
}

func TestCompanyMappingPrefersFreshNames(t *testing.T) {
	// An AS with a PeeringDB entry must be mapped to the brand name, not
	// the (possibly stale) WHOIS legal name.
	found := false
	for _, c := range testRes.Companies {
		if c.NameSource == "peeringdb" {
			found = true
			break
		}
	}
	if !found {
		t.Error("no candidate mapped via PeeringDB")
	}
}
