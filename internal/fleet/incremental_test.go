package fleet

// Fleet-level differential proof for incremental rebuilds: a fleet
// whose shards rebuild generations through the dirty-set build graph
// must flip coherently and answer every routed request byte-identically
// to a fleet doing full rebuilds. The shards' two-phase stage/commit
// path runs the same validation gate either way, so the only thing the
// incremental flag may change is how much build work a stage costs.

import (
	"context"
	"fmt"
	"strconv"
	"testing"

	"stateowned/internal/serve"
)

// TestIncrementalFleetFlipByteIdentical flips a 2-shard incremental
// fleet and a 2-shard full-rebuild fleet through a coherent two-phase
// reload and compares the routed data plane — current and pinned to
// each generation — byte for byte.
func TestIncrementalFleetFlipByteIdentical(t *testing.T) {
	full := buildFleet(t, fleetConfig{shards: 2, seed: 21})
	inc := buildFleet(t, fleetConfig{shards: 2, seed: 21, incremental: true})

	for flip := 1; flip <= 2; flip++ {
		if gen, err := full.coord.FlipOnce(context.Background()); err != nil || gen != flip {
			t.Fatalf("full fleet flip %d: gen=%d err=%v", flip, gen, err)
		}
		if gen, err := inc.coord.FlipOnce(context.Background()); err != nil || gen != flip {
			t.Fatalf("incremental fleet flip %d: gen=%d err=%v", flip, gen, err)
		}
	}

	// Shards must have actually exercised the incremental path: the
	// staged builds of generations 1 and 2 ran against a parent memo.
	for i, sh := range inc.shards {
		if st := sh.Store().Current().Stats; st.NodesReused == 0 {
			t.Errorf("incremental shard %d reused zero nodes across two flips (stats %+v)", i, st)
		}
		_, reused, _, _ := sh.Store().IncrementalCounters()
		if reused == 0 {
			t.Errorf("incremental shard %d cumulative reuse counter is zero", i)
		}
	}
	for i, sh := range full.shards {
		if _, reused, _, _ := sh.Store().IncrementalCounters(); reused != 0 {
			t.Errorf("full-rebuild shard %d reports %d reused nodes", i, reused)
		}
	}

	// Probe battery over the routed data plane, drawn from generation
	// 0's dataset (identical across fleets by determinism).
	g0, _ := full.shards[0].Store().Lookup(0)
	ds := g0.Result.Dataset
	var asns []string
	for i := range ds.ASNs {
		for _, a := range ds.ASNs[i].ASNs {
			asns = append(asns, strconv.FormatUint(uint64(a), 10))
		}
		if len(asns) >= 4 {
			break
		}
	}
	if len(asns) < 2 {
		t.Fatal("generation 0 dataset too small to probe")
	}
	paths := []string{
		"/v1/asn/" + asns[0],
		"/v1/asn/" + asns[len(asns)-1],
		"/v1/country/" + ds.Organizations[0].OwnershipCC,
		"/v1/org/" + ds.Organizations[0].OrgID,
		"/v1/search?name=telecom",
		"/v1/dataset",
		"/v1/graph/neighbors/" + asns[0],
		"/v1/graph/cone/" + asns[0],
		"/v1/graph/path?from=" + asns[0] + "&to=" + asns[len(asns)-1],
		"/v1/diff?from=0&to=2",
	}
	probe := func(path string) {
		rf := full.get(path)
		ri := inc.get(path)
		if rf.Code != ri.Code || rf.Body.String() != ri.Body.String() {
			t.Errorf("GET %s diverges between full and incremental fleets\nfull (%d): %.300s\nincremental (%d): %.300s",
				path, rf.Code, rf.Body.String(), ri.Code, ri.Body.String())
			return
		}
		if hf, hi := rf.Header().Get(serve.GenerationHeader), ri.Header().Get(serve.GenerationHeader); hf != hi {
			t.Errorf("GET %s: generation header %q vs %q", path, hf, hi)
		}
	}
	for _, p := range paths {
		probe(p) // current generation (router-pinned to the committed flip)
		for gen := 0; gen <= 2; gen++ {
			sep := "?"
			for _, r := range p {
				if r == '?' {
					sep = "&"
					break
				}
			}
			probe(p + sep + "gen=" + fmt.Sprint(gen))
		}
	}
}
