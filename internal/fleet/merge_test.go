package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"stateowned/internal/expand"
	"stateowned/internal/serve"
	"stateowned/internal/world"
)

// --- synthetic merge fixtures (no pipeline needed) -------------------------

// syntheticOrg builds a minimal org row for merge-order tests.
func syntheticOrg(id, name, cc string, asns ...world.ASN) serve.OrgResponse {
	return serve.OrgResponse{
		Organization: &expand.OrgRecord{
			OrgID:       id,
			OrgName:     name,
			OwnershipCC: cc,
		},
		ASNs: asns,
	}
}

// syntheticCountryLegs fabricates per-shard country bodies with a
// replicated boundary org (ORG-B on shards 0 and 1) and distinct
// minority records.
func syntheticCountryLegs(t testing.TB) []leg {
	t.Helper()
	mk := func(shard int, orgs []serve.OrgResponse, minority []expand.MinorityRecord) leg {
		body, err := serve.JSONBody(serve.CountryResponse{CC: "AO", Organizations: orgs, Minority: minority})
		if err != nil {
			t.Fatalf("encoding leg: %v", err)
		}
		return leg{shard: shard, status: http.StatusOK, body: body, gen: "3"}
	}
	return []leg{
		mk(0,
			[]serve.OrgResponse{
				syntheticOrg("ORG-B", "Boundary Telecom", "AO", 100, 900),
				syntheticOrg("ORG-A", "Angola Net", "AO", 120),
			},
			[]expand.MinorityRecord{{OrgName: "Mixed Holdings", CC: "AO", Owner: "AO", Share: 0.3, ASNs: []world.ASN{130}}},
		),
		mk(1,
			[]serve.OrgResponse{
				syntheticOrg("ORG-B", "Boundary Telecom", "AO", 100, 900),
				syntheticOrg("ORG-C", "Coastal Carrier", "AO", 910),
			},
			[]expand.MinorityRecord{{OrgName: "Harbor Net", CC: "AO", Owner: "PT", Share: 0.2, ASNs: []world.ASN{920}}},
		),
		mk(2,
			[]serve.OrgResponse{},
			nil,
		),
	}
}

// syntheticSearchLegs fabricates per-shard search bodies; shard 2 fell
// back to a full scan (no token candidates locally) and must be dropped
// by the merge while shards 0/1 carry token hits.
func syntheticSearchLegs(t testing.TB) []leg {
	t.Helper()
	mk := func(shard int, fallback bool, hits ...serve.SearchHitRecord) leg {
		body, err := serve.JSONBody(serve.SearchResponse{Query: "telecom", Hits: hits, Fallback: fallback})
		if err != nil {
			t.Fatalf("encoding leg: %v", err)
		}
		return leg{shard: shard, status: http.StatusOK, body: body, gen: "3"}
	}
	hit := func(id, name string, score float64, asns ...world.ASN) serve.SearchHitRecord {
		o := syntheticOrg(id, name, "AO", asns...)
		return serve.SearchHitRecord{Score: score, Organization: o.Organization, ASNs: o.ASNs}
	}
	return []leg{
		mk(0, false,
			hit("ORG-B", "Boundary Telecom", 0.9, 100, 900),
			hit("ORG-A", "Angola Telecom", 0.8, 120),
		),
		mk(1, false,
			hit("ORG-B", "Boundary Telecom", 0.9, 100, 900),
			hit("ORG-C", "Coastal Telecom", 0.8, 910),
		),
		mk(2, true,
			hit("ORG-Z", "Unrelated Utility", 0.65, 930),
		),
	}
}

// permute returns legs reordered by a seeded Fisher–Yates shuffle (a
// tiny LCG keeps the fuzz target free of math/rand).
func permute(legs []leg, seed uint64) []leg {
	out := append([]leg(nil), legs...)
	state := seed | 1
	for i := len(out) - 1; i > 0; i-- {
		state = state*6364136223846793005 + 1442695040888963407
		j := int(state % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// TestMergeCountryDeterministic proves the country merge: replicated
// orgs deduplicate, ordering is canonical, and the result is identical
// for any leg arrival order.
func TestMergeCountryDeterministic(t *testing.T) {
	legs := syntheticCountryLegs(t)
	base, err := mergeCountry("AO", legs, Envelope{})
	if err != nil {
		t.Fatal(err)
	}
	var resp CountryFleetResponse
	decodeJSON(t, base, &resp)
	wantOrder := []string{"ORG-A", "ORG-B", "ORG-C"}
	if len(resp.Organizations) != len(wantOrder) {
		t.Fatalf("merged %d orgs, want %d (replica not deduplicated?)", len(resp.Organizations), len(wantOrder))
	}
	for i, id := range wantOrder {
		if resp.Organizations[i].Organization.OrgID != id {
			t.Fatalf("org[%d] = %s, want %s", i, resp.Organizations[i].Organization.OrgID, id)
		}
	}
	if len(resp.Minority) != 2 || resp.Minority[0].OrgName != "Harbor Net" {
		t.Fatalf("minority merge wrong: %+v", resp.Minority)
	}
	if resp.Partial || len(resp.ShardsFailed) != 0 {
		t.Fatalf("complete merge carries a partial envelope: %s", base)
	}
	for seed := uint64(1); seed < 20; seed++ {
		got, err := mergeCountry("AO", permute(legs, seed), Envelope{})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, base) {
			t.Fatalf("merge depends on arrival order (seed %d):\n%s\nvs\n%s", seed, got, base)
		}
	}
}

// TestMergeSearchFallbackRule proves the fallback partition semantics:
// a shard that fell back to a full scan contributes nothing while any
// shard holds token candidates, and contributes normally when every
// shard fell back.
func TestMergeSearchFallbackRule(t *testing.T) {
	legs := syntheticSearchLegs(t)
	body, err := mergeSearch(legs, 10, Envelope{})
	if err != nil {
		t.Fatal(err)
	}
	var resp SearchFleetResponse
	decodeJSON(t, body, &resp)
	if resp.Fallback {
		t.Fatal("merged response marked fallback although shards 0/1 had token hits")
	}
	for _, h := range resp.Hits {
		if h.Organization.OrgID == "ORG-Z" {
			t.Fatal("fallback shard's full-scan hit leaked into a token-candidate merge")
		}
	}
	if len(resp.Hits) != 3 || resp.Hits[0].Organization.OrgID != "ORG-B" {
		t.Fatalf("merged hits wrong: %+v", resp.Hits)
	}

	// All-fallback: every shard scanned, so the union is the answer.
	for i := range legs {
		var sr serve.SearchResponse
		decodeJSON(t, legs[i].body, &sr)
		sr.Fallback = true
		legs[i].body = mustJSON(t, sr)
	}
	body, err = mergeSearch(legs, 10, Envelope{})
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, body, &resp)
	if !resp.Fallback {
		t.Fatal("all-fallback merge not marked fallback")
	}
	found := false
	for _, h := range resp.Hits {
		if h.Organization.OrgID == "ORG-Z" {
			found = true
		}
	}
	if !found {
		t.Fatal("all-fallback merge dropped the fallback hit")
	}
}

// FuzzScatterMerge is the arrival-order independence proof: for any
// permutation of shard replies (country and search), the merged body is
// byte-identical to the identity-order merge.
func FuzzScatterMerge(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(7))
	f.Add(uint64(1 << 40))
	countryLegs := syntheticCountryLegs(f)
	searchLegs := syntheticSearchLegs(f)
	countryBase, err := mergeCountry("AO", countryLegs, Envelope{})
	if err != nil {
		f.Fatal(err)
	}
	searchBase, err := mergeSearch(searchLegs, 10, Envelope{})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		got, err := mergeCountry("AO", permute(countryLegs, seed), Envelope{})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, countryBase) {
			t.Fatalf("country merge depends on arrival order (seed %d)", seed)
		}
		got, err = mergeSearch(permute(searchLegs, seed), 10, Envelope{})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, searchBase) {
			t.Fatalf("search merge depends on arrival order (seed %d)", seed)
		}
	})
}

// --- differential: fleet ≡ single process ----------------------------------

// TestFleetMatchesSingleProcess is the end-to-end differential proof:
// for seeds {7, 21, 42}, a 2-shard and a 4-shard fleet answer every
// /v1 query byte-identically (status, body and X-Generation) to a
// single-process server over the same generation — router, partition,
// carve, scatter, and merge all cancel out exactly.
func TestFleetMatchesSingleProcess(t *testing.T) {
	seeds := []uint64{7, 21, 42}
	if testing.Short() {
		seeds = seeds[2:]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := fleetConfig{seed: seed, scale: 0.05}
			single := serve.NewDynamic(shardStore(cfg).Source(), serve.Options{})
			for _, shards := range []int{2, 4} {
				cfg := cfg
				cfg.shards = shards
				tf := buildFleet(t, cfg)
				ds := tf.shards[0].Store().Current().Result.Dataset

				var paths []string
				ccs := append([]string(nil), tf.shards[0].Store().Current().World.Countries...)
				ccs = append(ccs, "ZZ")
				for _, cc := range ccs {
					paths = append(paths, "/v1/country/"+cc)
				}
				for _, a := range ds.AllASNs() {
					paths = append(paths, fmt.Sprintf("/v1/asn/%d", a))
				}
				paths = append(paths, "/v1/asn/49999") // never state-owned
				for i := range ds.Organizations {
					paths = append(paths, "/v1/org/"+ds.Organizations[i].OrgID)
				}
				paths = append(paths, "/v1/org/ORG-NOPE")
				for i := 0; i < len(ds.Organizations) && i < 5; i++ {
					paths = append(paths, "/v1/search?name="+urlQueryEscape(ds.Organizations[i].OrgName))
				}
				paths = append(paths,
					"/v1/search?name=telecom",
					"/v1/search?name=zzzzqqqq", // no shared token anywhere: full-scan fallback
					"/v1/search?name=telecom&limit=3",
					"/v1/dataset",
				)

				for _, path := range paths {
					want := httptest.NewRecorder()
					single.ServeHTTP(want, httptest.NewRequest(http.MethodGet, path, nil))
					got := tf.get(path)
					if got.Code != want.Code {
						t.Fatalf("%d shards %s: fleet %d, single %d\nfleet: %s\nsingle: %s",
							shards, path, got.Code, want.Code, got.Body, want.Body)
					}
					if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
						t.Fatalf("%d shards %s: bodies differ\nfleet:  %s\nsingle: %s",
							shards, path, got.Body, want.Body)
					}
					if g, w := got.Header().Get(serve.GenerationHeader), want.Header().Get(serve.GenerationHeader); g != w {
						t.Fatalf("%d shards %s: X-Generation %q vs %q", shards, path, g, w)
					}
				}
			}
		})
	}
}

// TestFleetMatchesSingleAfterReload re-proves the differential after a
// two-phase flip: fleet generation 1 must equal single-process
// generation 1, including ?gen=0 time travel.
func TestFleetMatchesSingleAfterReload(t *testing.T) {
	cfg := fleetConfig{seed: 42, scale: 0.05, shards: 2}
	singleStore := shardStore(cfg)
	singleStore.Advance()
	single := serve.NewDynamic(singleStore.Source(), serve.Options{})

	tf := buildFleet(t, cfg)
	if gen, err := tf.coord.FlipOnce(context.Background()); err != nil || gen != 1 {
		t.Fatalf("FlipOnce = %d, %v", gen, err)
	}

	ds := singleStore.Current().Result.Dataset
	var paths []string
	for _, cc := range singleStore.Current().World.Countries {
		paths = append(paths, "/v1/country/"+cc, "/v1/country/"+cc+"?gen=0")
	}
	for _, a := range ds.AllASNs()[:10] {
		paths = append(paths, fmt.Sprintf("/v1/asn/%d", a))
	}
	for _, path := range paths {
		want := httptest.NewRecorder()
		single.ServeHTTP(want, httptest.NewRequest(http.MethodGet, path, nil))
		got := tf.get(path)
		if got.Code != want.Code || !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
			t.Fatalf("%s: fleet (%d) %s\nvs single (%d) %s", path, got.Code, got.Body, want.Code, want.Body)
		}
	}
}

// --- small test helpers ----------------------------------------------------

func decodeJSON(t testing.TB, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("decoding %s: %v", data, err)
	}
}

func mustJSON(t testing.TB, v any) []byte {
	t.Helper()
	b, err := serve.JSONBody(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func urlQueryEscape(s string) string { return url.QueryEscape(s) }
