package fleet

// Fleet-scope recovery proofs: shards recover from their own durable
// archives independently, Bootstrap adopts the newest generation every
// shard actually holds — cross-checking that "the same generation
// number" means "the same dataset bytes" — and the next flip converges
// stragglers whose disks died mid-history. The negative case proves a
// shard whose archive holds divergent bytes for an agreed generation is
// refused, not served.

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"stateowned"
	"stateowned/internal/durable"
	"stateowned/internal/serve"
	"stateowned/internal/snapshot"
)

// archivedShardStore builds one shard's store persisting to an archive
// over the given filesystem seam.
func archivedShardStore(t *testing.T, cfg fleetConfig, fs durable.FS) *snapshot.Store {
	t.Helper()
	a, err := durable.Open(durable.Options{FS: fs, Dir: "arch"})
	if err != nil {
		t.Fatalf("opening shard archive: %v", err)
	}
	return snapshot.New(snapshot.Options{
		Base: stateowned.Config{
			Seed: cfg.seed, Scale: cfg.scale,
			HijackSeverity: cfg.hijack, ROVFraction: cfg.rov,
		},
		Retain:  cfg.retain,
		Archive: a,
	})
}

// assembleFleet wires pre-built stores into shard servers, a router and
// a coordinator on a fresh transport — the recovery tests assemble the
// "restarted" fleet over recovered stores with the same partition the
// dead fleet used.
func assembleFleet(t *testing.T, part Partition, stores []*snapshot.Store) *testFleet {
	t.Helper()
	tr := newHandlerTransport()
	httpClient := &http.Client{Transport: tr}
	tf := &testFleet{part: part, transport: tr}
	for i, s := range stores {
		sh := NewShardServer(s, part, i, serve.Options{})
		tf.shards = append(tf.shards, sh)
		host := fmt.Sprintf("shard%d", i)
		tr.register(host, sh)
		tf.clients = append(tf.clients, ShardClient{Index: i, Base: "http://" + host, HTTP: httpClient})
	}
	router, err := NewRouter(RouterOptions{Partition: part, Shards: tf.clients, After: neverAfter})
	if err != nil {
		t.Fatalf("building router: %v", err)
	}
	tf.router = router
	tf.coord = NewCoordinator(tf.router, tf.clients, CoordinatorOptions{})
	return tf
}

// fleetRecordPaths is the router-level record-plane battery: everything
// a recovered fleet must answer byte-identically to its pre-crash self.
// Graph paths are deliberately absent — the topology plane is process
// memory and honestly 404s on recovered generations.
func fleetRecordPaths(s *snapshot.Store) []string {
	ds := s.Current().Result.Dataset
	var asns []string
	for i := range ds.ASNs {
		for _, a := range ds.ASNs[i].ASNs {
			asns = append(asns, strconv.FormatUint(uint64(a), 10))
		}
		if len(asns) >= 4 {
			break
		}
	}
	return []string{
		"/v1/asn/" + asns[0],
		"/v1/asn/" + asns[len(asns)-1],
		"/v1/country/" + ds.Organizations[0].OwnershipCC,
		"/v1/org/" + ds.Organizations[0].OrgID,
		"/v1/search?name=telecom",
		"/v1/dataset",
		"/v1/hijacks",
	}
}

// fleetProbe captures one pinned router answer.
type fleetProbe struct {
	status int
	body   string
}

// captureFleet snapshots the battery pinned at each generation in gens,
// plus every /v1/diff pair among them.
func captureFleet(tf *testFleet, paths []string, gens []int) map[string]fleetProbe {
	out := map[string]fleetProbe{}
	for _, gen := range gens {
		for _, p := range paths {
			sep := "?"
			if strings.ContainsRune(p, '?') {
				sep = "&"
			}
			pp := p + sep + "gen=" + strconv.Itoa(gen)
			rec := tf.get(pp)
			out[pp] = fleetProbe{rec.Code, rec.Body.String()}
		}
	}
	for _, from := range gens {
		for _, to := range gens {
			if from == to {
				continue
			}
			p := fmt.Sprintf("/v1/diff?from=%d&to=%d", from, to)
			rec := tf.get(p)
			out[p] = fleetProbe{rec.Code, rec.Body.String()}
		}
	}
	return out
}

// TestFleetRecoversIndependentlyAndConverges is the two-shard recovery
// drill from the issue: shard 0's disk dies before generation 2 is
// archived, both processes are killed, both shards recover from what
// their own disks hold (shard 0 lands on generation 1, shard 1 on 2),
// Bootstrap pins the router to the newest generation both hold — after
// proving their archived bytes agree — and the next flip converges
// shard 0 to generation 2 with byte-identical content. Finally, a
// forged archive entry (same generation number, different bytes) must
// make Bootstrap refuse the fleet.
func TestFleetRecoversIndependentlyAndConverges(t *testing.T) {
	ctx := context.Background()
	cfg := fleetConfig{seed: 42, scale: 0.05, shards: 2, retain: 8, hijack: 0.75, rov: 0.25}

	mems := []*durable.MemFS{durable.NewMemFS(), durable.NewMemFS()}
	ffs0 := durable.NewFaultFS(mems[0])

	// The original fleet: both shards archive as they advance.
	stores := make([]*snapshot.Store, 2)
	var wg sync.WaitGroup
	for i, fs := range []durable.FS{ffs0, mems[1]} {
		wg.Add(1)
		go func(i int, fs durable.FS) {
			defer wg.Done()
			stores[i] = archivedShardStore(t, cfg, fs)
		}(i, fs)
	}
	wg.Wait()
	part, err := ComputePartition(stores[0].Current().Result.Dataset, 2)
	if err != nil {
		t.Fatalf("computing partition: %v", err)
	}
	tf := assembleFleet(t, part, stores)

	if _, err := tf.coord.FlipOnce(ctx); err != nil {
		t.Fatalf("flip to generation 1: %v", err)
	}
	// Shard 0's disk dies now: generation 2 will publish fleet-wide from
	// memory but never reach shard 0's archive.
	ffs0.SetCrashAt(ffs0.Ops())
	if _, err := tf.coord.FlipOnce(ctx); err != nil {
		t.Fatalf("flip to generation 2: %v", err)
	}
	if c := stores[0].Archive().Counters(); c.WriteFailures == 0 {
		t.Fatalf("shard 0's dead disk went unnoticed: %+v", c)
	}
	if c := stores[1].Archive().Counters(); c.WriteFailures != 0 || c.Writes != 3 {
		t.Fatalf("shard 1 did not archive the full chain: %+v", c)
	}

	paths := fleetRecordPaths(stores[0])
	// pre01 is the sub-battery the half-recovered fleet must already
	// answer; preAll additionally pins generation 2, coherent only after
	// the converging flip.
	pre01 := captureFleet(tf, paths, []int{0, 1})
	preAll := captureFleet(tf, paths, []int{0, 1, 2})

	// The crash: both processes die; each disk keeps what fsync proved.
	mems[0].Crash(0)
	mems[1].Crash(0)

	// Independent recovery: each shard warm-starts from its own archive.
	recovered := make([]*snapshot.Store, 2)
	for i, mem := range mems {
		recovered[i] = archivedShardStore(t, cfg, mem)
	}
	if got := recovered[0].RecoveredGen(); got != 1 {
		t.Fatalf("shard 0 recovered generation %d, want 1 (its disk died before 2 was archived)", got)
	}
	if got := recovered[1].RecoveredGen(); got != 2 {
		t.Fatalf("shard 1 recovered generation %d, want 2", got)
	}

	tf2 := assembleFleet(t, part, recovered)
	adopt, err := tf2.coord.Bootstrap(ctx)
	if err != nil {
		t.Fatalf("bootstrap over recovered shards: %v", err)
	}
	if adopt != 1 || tf2.router.Gen() != 1 {
		t.Fatalf("bootstrap adopted generation %d (router pins %d), want 1 — the newest generation every shard holds",
			adopt, tf2.router.Gen())
	}
	// The recovered fleet serves generations 0 and 1 byte-identically.
	for p, want := range pre01 {
		rec := tf2.get(p)
		if rec.Code != want.status || rec.Body.String() != want.body {
			t.Errorf("GET %s diverges after fleet recovery\npre-crash (%d): %.200s\nrecovered (%d): %.200s",
				p, want.status, want.body, rec.Code, rec.Body.String())
		}
	}

	// Convergence: the next flip re-stages generation 2 — a rebuild on
	// shard 0, an idempotent ack on shard 1 (already live there) — and
	// the whole pre-crash surface is back, byte for byte.
	gen, err := tf2.coord.FlipOnce(ctx)
	if err != nil {
		t.Fatalf("converging flip: %v", err)
	}
	if gen != 2 {
		t.Fatalf("converging flip landed on generation %d, want 2", gen)
	}
	for p, want := range preAll {
		rec := tf2.get(p)
		if rec.Code != want.status || rec.Body.String() != want.body {
			t.Errorf("GET %s diverges after convergence\npre-crash (%d): %.200s\nconverged (%d): %.200s",
				p, want.status, want.body, rec.Code, rec.Body.String())
		}
	}

	// Negative case: forge shard 0's archive so generation 2 maps to
	// different dataset bytes. The generation numbers still agree
	// fleet-wide; the fingerprints do not — Bootstrap must refuse.
	if _, err := recovered[0].Archive().Commit(&durable.Record{Gen: 2}, []byte("forged dataset bytes")); err != nil {
		t.Fatalf("forging shard 0's archive: %v", err)
	}
	if _, err := tf2.coord.Bootstrap(ctx); err == nil {
		t.Fatal("bootstrap accepted a fleet whose shards hold different bytes for the same generation")
	} else if !strings.Contains(err.Error(), "disagrees across shards") {
		t.Fatalf("bootstrap refusal names the wrong cause: %v", err)
	}
}
