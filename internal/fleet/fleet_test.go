package fleet

// Shared fleet-test infrastructure: every test fleet runs shards as
// in-process http.Handlers behind a custom RoundTripper keyed by fake
// host names — no listeners, no ports, no real sleeps — so the suites
// (including the rolling-reload soak) are deterministic under -race and
// fast enough for -short.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stateowned"
	"stateowned/internal/serve"
	"stateowned/internal/snapshot"
)

// neverAfter is the virtual timer for paths that must not fire in a
// test: select on a nil channel blocks forever, so hedge timers and leg
// deadlines stay silent unless a test drives them explicitly.
func neverAfter(time.Duration) <-chan time.Time { return nil }

// handlerTransport maps fake host names to in-process handlers, with a
// per-host down flag (simulated crash: instant transport error) and an
// optional intercept hook for crafting failures on specific calls.
type handlerTransport struct {
	mu       sync.Mutex
	handlers map[string]http.Handler
	down     map[string]*atomic.Bool

	// intercept, when non-nil, may return (response, true) to answer the
	// request itself or (nil, true) to fail it with a transport error.
	intercept func(req *http.Request) (*http.Response, bool)
}

func newHandlerTransport() *handlerTransport {
	return &handlerTransport{
		handlers: map[string]http.Handler{},
		down:     map[string]*atomic.Bool{},
	}
}

func (ht *handlerTransport) register(host string, h http.Handler) {
	ht.mu.Lock()
	defer ht.mu.Unlock()
	ht.handlers[host] = h
	ht.down[host] = &atomic.Bool{}
}

func (ht *handlerTransport) setDown(host string, down bool) {
	ht.mu.Lock()
	flag := ht.down[host]
	ht.mu.Unlock()
	flag.Store(down)
}

func (ht *handlerTransport) setIntercept(fn func(req *http.Request) (*http.Response, bool)) {
	ht.mu.Lock()
	ht.intercept = fn
	ht.mu.Unlock()
}

func (ht *handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	ht.mu.Lock()
	h := ht.handlers[req.URL.Host]
	flag := ht.down[req.URL.Host]
	icept := ht.intercept
	ht.mu.Unlock()
	if icept != nil {
		if resp, handled := icept(req); handled {
			if resp == nil {
				return nil, fmt.Errorf("injected transport failure for %s %s", req.Method, req.URL)
			}
			return resp, nil
		}
	}
	if h == nil {
		return nil, fmt.Errorf("no handler for host %q", req.URL.Host)
	}
	if flag != nil && flag.Load() {
		return nil, fmt.Errorf("host %q is down", req.URL.Host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// craftedResponse builds a minimal *http.Response for intercept hooks.
func craftedResponse(status int, headers map[string]string, body string) *http.Response {
	h := http.Header{}
	for k, v := range headers {
		h.Set(k, v)
	}
	return &http.Response{
		StatusCode: status,
		Header:     h,
		Body:       io.NopCloser(strings.NewReader(body)),
	}
}

// testFleet is a fully wired in-process fleet.
type testFleet struct {
	part      Partition
	shards    []*ShardServer
	clients   []ShardClient
	router    *Router
	coord     *Coordinator
	transport *handlerTransport
}

// fleetConfig tweaks buildFleet.
type fleetConfig struct {
	seed        uint64
	scale       float64
	shards      int
	retain      int
	incremental bool
	hijack      float64
	rov         float64
	routerOpt   func(*RouterOptions)
	coordOpt    func(*CoordinatorOptions)
}

// shardStore builds one shard's snapshot store; every store in a fleet
// gets the identical Base config, so their generations are identical by
// the store's determinism guarantee.
func shardStore(cfg fleetConfig) *snapshot.Store {
	return snapshot.New(snapshot.Options{
		Base: stateowned.Config{
			Seed: cfg.seed, Scale: cfg.scale,
			HijackSeverity: cfg.hijack, ROVFraction: cfg.rov,
		},
		Retain:      cfg.retain,
		Incremental: cfg.incremental,
	})
}

// buildFleet assembles a fleet of in-process shards, a router and a
// coordinator over the handler transport. The partition is computed
// from shard 0's generation-0 dataset — exactly what production does.
func buildFleet(t testing.TB, cfg fleetConfig) *testFleet {
	t.Helper()
	if cfg.scale == 0 {
		cfg.scale = 0.05
	}
	if cfg.seed == 0 {
		cfg.seed = 42
	}
	if cfg.retain == 0 {
		cfg.retain = 8
	}
	tr := newHandlerTransport()
	httpClient := &http.Client{Transport: tr}

	stores := make([]*snapshot.Store, cfg.shards)
	var wg sync.WaitGroup
	for i := range stores {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stores[i] = shardStore(cfg)
		}(i)
	}
	wg.Wait()

	part, err := ComputePartition(stores[0].Current().Result.Dataset, cfg.shards)
	if err != nil {
		t.Fatalf("computing partition: %v", err)
	}

	tf := &testFleet{part: part, transport: tr}
	for i := range stores {
		sh := NewShardServer(stores[i], part, i, serve.Options{})
		tf.shards = append(tf.shards, sh)
		host := fmt.Sprintf("shard%d", i)
		tr.register(host, sh)
		tf.clients = append(tf.clients, ShardClient{
			Index: i,
			Base:  "http://" + host,
			HTTP:  httpClient,
		})
	}

	ropts := RouterOptions{
		Partition: part,
		Shards:    tf.clients,
		After:     neverAfter,
	}
	if cfg.routerOpt != nil {
		cfg.routerOpt(&ropts)
	}
	tf.router, err = NewRouter(ropts)
	if err != nil {
		t.Fatalf("building router: %v", err)
	}

	copts := CoordinatorOptions{}
	if cfg.coordOpt != nil {
		cfg.coordOpt(&copts)
	}
	tf.coord = NewCoordinator(tf.router, tf.clients, copts)
	return tf
}

// get issues one request against the router and returns the recorder.
func (tf *testFleet) get(path string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	tf.router.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}
