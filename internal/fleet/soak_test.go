package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stateowned/internal/serve"
)

// sample is one 200 answer captured during the soak storm: the path, the
// generation it was pinned to, and the exact bytes served.
type sample struct {
	path string
	gen  string
	body []byte
}

// TestSoakRollingReloadsUnderFire is the fleet's centerpiece robustness
// proof: concurrent clients hammer every endpoint class while the
// coordinator drives the fleet through three committed generations with
// every failure mode injected along the way — a poisoned build at stage
// time, a shard crash mid-flip, and a lost commit ack that splits the
// shards' live generations. The invariants:
//
//   - No request ever sees a 500 or a torn read: every status is 200,
//     206 or 503, every 200/206 names exactly one generation, and every
//     206 names the shards it lost.
//   - Zero torn reads, proved by replay: every 200 body captured during
//     the storm, re-requested afterwards pinned to its generation, is
//     byte-identical — so each answer was a pure function of (path,
//     generation) even while flips, crashes and recoveries raced it.
//   - The fleet converges: after the storm every path answers 200 and
//     the flip ledger shows exactly the injected history.
func TestSoakRollingReloadsUnderFire(t *testing.T) {
	// The storyline is identical in -short mode; only the world is
	// smaller, so the per-flip generation builds (the dominant cost,
	// especially under -race) stay cheap.
	scale := 0.05
	if testing.Short() {
		scale = 0.02
	}
	tf := buildFleet(t, fleetConfig{shards: 3, scale: scale})
	ctx := context.Background()

	// The request mix: every endpoint class, all valid inputs (the soak
	// is about infrastructure failures, not client errors).
	ds := tf.shards[0].Store().Current().Result.Dataset
	mix := []string{"/v1/dataset", "/v1/search?name=telecom"}
	for shard := 0; shard < 3; shard++ {
		mix = append(mix, asnPath(tf.asnOnShard(t, shard)))
	}
	for _, cc := range tf.shards[0].Store().Current().World.Countries[:3] {
		mix = append(mix, "/v1/country/"+cc)
	}
	mix = append(mix, "/v1/org/"+ds.Organizations[0].OrgID)
	mix = append(mix, "/v1/search?name="+strings.ReplaceAll(ds.Organizations[0].OrgName, " ", "+"))

	// Unthrottled workers saturate the CPU and starve the flip builds of
	// cores, which under -race stretches the storyline several-fold; the
	// -short storm trades raw request volume for wall time.
	workers, throttle := 4, time.Duration(0)
	if testing.Short() {
		workers, throttle = 2, time.Millisecond
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	samples := make([][]sample, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if throttle > 0 {
					time.Sleep(throttle)
				}
				path := mix[(w+i)%len(mix)]
				rec := tf.get(path)
				switch rec.Code {
				case http.StatusOK, http.StatusPartialContent:
					if gens := rec.Header().Values(serve.GenerationHeader); len(gens) != 1 || gens[0] == "" {
						t.Errorf("worker %d: %s answered %d with generations %v", w, path, rec.Code, gens)
						return
					}
					if !json.Valid(rec.Body.Bytes()) {
						t.Errorf("worker %d: %s answered %d with invalid JSON", w, path, rec.Code)
						return
					}
					if rec.Code == http.StatusPartialContent &&
						rec.Header().Get(ShardsFailedHeader) == "" {
						t.Errorf("worker %d: %s answered 206 without %s", w, path, ShardsFailedHeader)
						return
					}
					if rec.Code == http.StatusOK && i%5 == 0 && len(samples[w]) < 48 {
						samples[w] = append(samples[w], sample{
							path: path,
							gen:  rec.Header().Get(serve.GenerationHeader),
							body: append([]byte(nil), rec.Body.Bytes()...),
						})
					}
				case http.StatusServiceUnavailable:
					// A lost fast-path shard, an all-legs-lost fan-out or a
					// breaker denial: degraded, declared, allowed.
				default:
					t.Errorf("worker %d: %s answered %d: %s", w, path, rec.Code, rec.Body.String())
					return
				}
			}
		}(w)
	}

	// waitMore blocks until the workers have pushed n more requests
	// through the router, so every storyline phase is actually exercised
	// under load.
	waitMore := func(n uint64) {
		t.Helper()
		target := tf.router.Metrics().Snapshot().Requests + n
		deadline := time.Now().Add(30 * time.Second)
		for tf.router.Metrics().Snapshot().Requests < target {
			if time.Now().After(deadline) {
				t.Fatal("workers stalled")
			}
			time.Sleep(time.Millisecond)
		}
	}

	waitMore(50) // a healthy baseline at generation 0

	// Act 1: a clean flip under load.
	if gen, err := tf.coord.FlipOnce(ctx); err != nil || gen != 1 {
		t.Fatalf("clean flip: %d, %v", gen, err)
	}
	waitMore(50)

	// Act 2: a poisoned build — shard 1's generation 2 crashes at stage
	// time; the whole flip quarantines and the fleet keeps serving 1.
	tf.shards[1].Store().SetBuildHook(func(gen int) {
		if gen == 2 {
			panic("soak: injected build crash")
		}
	})
	if _, err := tf.coord.FlipOnce(ctx); err == nil {
		t.Fatal("poisoned flip succeeded")
	}
	tf.shards[1].Store().SetBuildHook(nil)
	if g := tf.router.Gen(); g != 1 {
		t.Fatalf("router left generation 1 (now %d) after a quarantined flip", g)
	}
	waitMore(50)

	// Act 3: shard 2 crashes outright; a flip attempted against the dead
	// shard fails, and traffic degrades to partial answers while the
	// survivors keep serving generation 1.
	tf.transport.setDown("shard2", true)
	if _, err := tf.coord.FlipOnce(ctx); err == nil {
		t.Fatal("flip succeeded with a crashed shard")
	}
	if g := tf.router.Gen(); g != 1 {
		t.Fatalf("router flipped to %d with a crashed shard", g)
	}
	waitMore(100)

	// Act 4: the shard comes back and the delayed flip lands.
	tf.transport.setDown("shard2", false)
	if gen, err := tf.coord.FlipOnce(ctx); err != nil || gen != 2 {
		t.Fatalf("post-crash flip: %d, %v", gen, err)
	}
	waitMore(50)

	// Act 5: shard 0's commit ack for generation 3 is lost after phase
	// two began — the fleet's live generations split, the router stays
	// pinned to 2 (which everyone retains), and the next attempt
	// converges.
	var lost atomic.Bool
	tf.transport.setIntercept(func(req *http.Request) (*http.Response, bool) {
		if req.Method == http.MethodPost &&
			req.URL.Host == "shard0" && req.URL.Path == CommitPath &&
			lost.CompareAndSwap(false, true) {
			return nil, true
		}
		return nil, false
	})
	if _, err := tf.coord.FlipOnce(ctx); err == nil {
		t.Fatal("flip succeeded with a lost commit ack")
	}
	tf.transport.setIntercept(nil)
	if g := tf.router.Gen(); g != 2 {
		t.Fatalf("router flipped to %d without unanimous commit acks", g)
	}
	waitMore(50)
	if gen, err := tf.coord.FlipOnce(ctx); err != nil || gen != 3 {
		t.Fatalf("convergence flip: %d, %v", gen, err)
	}
	waitMore(50)

	close(stop)
	wg.Wait()

	// The flip ledger shows exactly the injected history: three
	// committed generations, one stage abort per stage-phase failure
	// (the poisoned build and the crashed shard), and a clean slate
	// after the final success.
	st := tf.coord.Status()
	if st.Gen != 3 || st.Flips != 3 || st.Aborts != 2 ||
		st.ConsecutiveFailures != 0 || st.LastError != "" {
		t.Fatalf("flip ledger %+v", st)
	}

	// Drain: shard 2's breaker may still be open from the crash window;
	// keep probing until the fleet answers 20 consecutive clean 200s.
	healthy := 0
	for i := 0; healthy < 20; i++ {
		if i > 5000 {
			t.Fatal("fleet never re-converged to fully healthy answers")
		}
		if rec := tf.get(mix[i%len(mix)]); rec.Code == http.StatusOK {
			healthy++
		} else {
			healthy = 0
		}
	}

	// Replay: every 200 captured during the storm, pinned to the
	// generation it was served from, must reproduce byte for byte. This
	// is the zero-torn-reads proof — if any answer had mixed
	// generations, or depended on which shards happened to be alive or
	// mid-flip, its replay would differ.
	replayed := 0
	for w := range samples {
		for _, s := range samples[w] {
			sep := "?"
			if strings.Contains(s.path, "?") {
				sep = "&"
			}
			rec := tf.get(s.path + sep + "gen=" + s.gen)
			if rec.Code != http.StatusOK {
				t.Fatalf("replay %s at gen %s: %d %s", s.path, s.gen, rec.Code, rec.Body.String())
			}
			if !bytes.Equal(rec.Body.Bytes(), s.body) {
				t.Fatalf("torn read: %s at gen %s replayed differently\nstorm: %s\nreplay: %s",
					s.path, s.gen, s.body, rec.Body.Bytes())
			}
			replayed++
		}
	}
	if replayed == 0 {
		t.Fatal("the storm captured no samples — the soak proved nothing")
	}
	t.Logf("soak: %d requests, %d samples replayed coherently across generations 0-3, metrics %+v",
		tf.router.Metrics().Snapshot().Requests, replayed, tf.router.Metrics().Snapshot())
}
