package fleet

import "sync/atomic"

// Metrics is the router's fleet-level accounting: how much traffic is
// fanning out, how it degrades (failed legs, hedges, partial answers)
// and how the router defends itself (shed requests, breaker denials).
type Metrics struct {
	requests       atomic.Uint64
	shed           atomic.Uint64
	fanouts        atomic.Uint64
	legs           atomic.Uint64
	legFailures    atomic.Uint64
	hedges         atomic.Uint64
	partials       atomic.Uint64
	breakerDenials atomic.Uint64
}

// MetricsSnapshot is the /metrics JSON shape.
type MetricsSnapshot struct {
	Requests       uint64 `json:"requests_total"`
	Shed           uint64 `json:"shed_total"`
	Fanouts        uint64 `json:"fanouts_total"`
	Legs           uint64 `json:"legs_total"`
	LegFailures    uint64 `json:"leg_failures_total"`
	Hedges         uint64 `json:"hedges_total"`
	Partials       uint64 `json:"partial_responses_total"`
	BreakerDenials uint64 `json:"breaker_denials_total"`
}

// Snapshot reads the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Requests:       m.requests.Load(),
		Shed:           m.shed.Load(),
		Fanouts:        m.fanouts.Load(),
		Legs:           m.legs.Load(),
		LegFailures:    m.legFailures.Load(),
		Hedges:         m.hedges.Load(),
		Partials:       m.partials.Load(),
		BreakerDenials: m.breakerDenials.Load(),
	}
}
