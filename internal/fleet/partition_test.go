package fleet

import (
	"testing"

	"stateowned"
	"stateowned/internal/world"
)

// TestPartitionContract proves the partition function's load-bearing
// properties on real datasets across seeds: totality (every ASN maps to
// exactly one in-range shard), determinism (same dataset, same
// partition), rough balance, and carve coverage (the union of the
// carved sub-datasets is the whole dataset, with boundary-spanning
// records replicated whole).
func TestPartitionContract(t *testing.T) {
	for _, seed := range []uint64{7, 21, 42} {
		res := stateowned.Run(stateowned.Config{Seed: seed, Scale: 0.05})
		ds := res.Dataset
		for _, n := range []int{1, 2, 4, 7} {
			p, err := ComputePartition(ds, n)
			if err != nil {
				t.Fatalf("seed %d shards %d: %v", seed, n, err)
			}
			p2, _ := ComputePartition(ds, n)
			if !p.Equal(p2) {
				t.Fatalf("seed %d shards %d: partition not deterministic", seed, n)
			}

			// Totality and balance over the dataset's own ASNs.
			counts := make([]int, n)
			for _, a := range ds.AllASNs() {
				s := p.ShardOf(a)
				if s < 0 || s >= n {
					t.Fatalf("ShardOf(%d) = %d out of range", a, s)
				}
				counts[s]++
			}
			total := 0
			for s, c := range counts {
				if c == 0 {
					t.Fatalf("seed %d shards %d: shard %d owns no ASNs (counts %v)", seed, n, s, counts)
				}
				total += c
			}
			if total != len(ds.AllASNs()) {
				t.Fatalf("counts %v sum %d != %d ASNs", counts, total, len(ds.AllASNs()))
			}
			// Count-balanced split points: no shard more than 2x the ideal.
			ideal := total / n
			for s, c := range counts {
				if ideal > 0 && c > 2*ideal+1 {
					t.Errorf("seed %d shards %d: shard %d owns %d ASNs, ideal %d — unbalanced",
						seed, n, s, c, ideal)
				}
			}

			// Extremes always map in range.
			for _, a := range []world.ASN{0, 1, 1 << 30} {
				if s := p.ShardOf(a); s < 0 || s >= n {
					t.Fatalf("ShardOf(%d) = %d out of range", a, s)
				}
			}

			// Carve coverage: every org and minority record appears in the
			// union of the carved sub-datasets, and each shard holds exactly
			// the records with at least one ASN in its range.
			seenOrg := map[string]bool{}
			seenMin := map[string]int{}
			for s := 0; s < n; s++ {
				sub := p.Carve(ds, s)
				for i := range sub.Organizations {
					if sub.Organizations[i].OrgID != sub.ASNs[i].OrgID {
						t.Fatalf("carve broke the org/ASN pairing at row %d", i)
					}
					owns := false
					for _, a := range sub.ASNs[i].ASNs {
						if p.ShardOf(a) == s {
							owns = true
						}
					}
					if !owns {
						t.Fatalf("shard %d carved org %s but owns none of its ASNs",
							s, sub.Organizations[i].OrgID)
					}
					seenOrg[sub.Organizations[i].OrgID] = true
				}
				for i := range sub.Minority {
					seenMin[sub.Minority[i].OrgName+"/"+sub.Minority[i].CC]++
				}
			}
			for i := range ds.Organizations {
				if !seenOrg[ds.Organizations[i].OrgID] {
					t.Fatalf("org %s lost by the carve", ds.Organizations[i].OrgID)
				}
			}
			for i := range ds.Minority {
				if seenMin[ds.Minority[i].OrgName+"/"+ds.Minority[i].CC] == 0 {
					t.Fatalf("minority record %s/%s lost by the carve",
						ds.Minority[i].OrgName, ds.Minority[i].CC)
				}
			}
		}
	}
}

// TestComputePartitionRejects proves the error paths: out-of-range
// shard counts and datasets too small to split.
func TestComputePartitionRejects(t *testing.T) {
	res := stateowned.Run(stateowned.Config{Seed: 7, Scale: 0.05})
	for _, n := range []int{0, -1, MaxShards + 1} {
		if _, err := ComputePartition(res.Dataset, n); err == nil {
			t.Errorf("ComputePartition(n=%d) accepted", n)
		}
	}
	if _, err := ComputePartition(res.Dataset, MaxShards); err != nil {
		// A 0.05-scale dataset has well over 64 ASNs; MaxShards must work.
		t.Errorf("ComputePartition(n=%d): %v", MaxShards, err)
	}
}
