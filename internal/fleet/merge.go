package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"stateowned/internal/expand"
	"stateowned/internal/serve"
)

// Envelope is the degraded-response contract: when a minority of shard
// legs failed, the router still answers from the survivors but says so
// explicitly — Partial true, the failed shard indexes listed, HTTP 206
// and X-Shards-Failed on the wire. Both fields are omitempty, so a
// complete answer's body is byte-identical to a single-process
// server's.
type Envelope struct {
	Partial      bool  `json:"partial,omitempty"`
	ShardsFailed []int `json:"shards_failed,omitempty"`
}

// CountryFleetResponse is a merged /v1/country answer: the standard
// response plus the partial envelope.
type CountryFleetResponse struct {
	serve.CountryResponse
	Envelope
}

// SearchFleetResponse is a merged /v1/search answer.
type SearchFleetResponse struct {
	serve.SearchResponse
	Envelope
}

// leg is one shard's contribution to a fan-out: either a response
// (status, body, generation, Retry-After) or a transport-level error.
type leg struct {
	shard      int
	status     int
	body       []byte
	gen        string
	retryAfter int
	err        error
	hedged     bool
}

// classified buckets a fan-out's legs for merging.
type classified struct {
	// ok holds the 200 legs that answered from the pinned generation, in
	// shard order.
	ok []leg
	// detErr is the first deterministic client-level error (400/404/410)
	// by shard order: every shard serving the pinned generation gives the
	// same verdict for these, so one shard's answer is the fleet's.
	detErr *leg
	// failed lists shards whose legs were lost: breaker-open, transport
	// error, leg deadline, shard-side shed (503), or an incoherent
	// generation. Ascending.
	failed []int
	// retryAfter is the largest Retry-After carried by a shed leg.
	retryAfter int
}

// classify sorts a fan-out's legs into mergeable, deterministic-error
// and failed. pin is the generation every leg was pinned to; a leg
// answering from any other generation is incoherent — a torn read the
// merge must not ingest — and counts as failed.
func classify(legs []leg, pin string) classified {
	var c classified
	for _, l := range legs {
		switch {
		case l.err != nil:
			c.failed = append(c.failed, l.shard)
		case l.status == http.StatusOK:
			if l.gen != pin {
				c.failed = append(c.failed, l.shard)
				continue
			}
			c.ok = append(c.ok, l)
		case l.status == http.StatusServiceUnavailable:
			// Shard-side shedding: back-pressure, not breaker-worthy
			// failure. The leg is still lost for this request.
			c.failed = append(c.failed, l.shard)
			if l.retryAfter > c.retryAfter {
				c.retryAfter = l.retryAfter
			}
		case l.status == http.StatusBadRequest,
			l.status == http.StatusNotFound,
			l.status == http.StatusGone:
			if c.detErr == nil || l.shard < c.detErr.shard {
				l := l
				c.detErr = &l
			}
		default:
			// 5xx or anything unexpected: a lost leg.
			c.failed = append(c.failed, l.shard)
		}
	}
	sort.Ints(c.failed)
	sort.Slice(c.ok, func(i, j int) bool { return c.ok[i].shard < c.ok[j].shard })
	return c
}

// envelope builds the partial envelope for a merged answer: empty when
// every leg contributed (so the body stays byte-identical to
// single-process), marked partial otherwise.
func (c classified) envelope() Envelope {
	if len(c.failed) == 0 {
		return Envelope{}
	}
	return Envelope{Partial: true, ShardsFailed: c.failed}
}

// mergeCountry unions per-shard country answers into the fleet answer.
// Organizations replicated across shards (an ASN list spanning a range
// boundary) arrive as byte-identical copies and deduplicate by OrgID;
// the canonical index ordering (orgs by OrgID, minority records by
// MinorityLess) is re-established after the union, which is what makes
// the merged body independent of shard reply order — and, when no leg
// failed, byte-identical to a single-process answer.
func mergeCountry(cc string, legs []leg, env Envelope) ([]byte, error) {
	orgsByID := map[string]serve.OrgResponse{}
	minority := []expand.MinorityRecord{}
	seenMinority := map[string]bool{}
	for _, l := range legs {
		var resp serve.CountryResponse
		if err := json.Unmarshal(l.body, &resp); err != nil {
			return nil, fmt.Errorf("shard %d country body: %w", l.shard, err)
		}
		for _, o := range resp.Organizations {
			if o.Organization == nil {
				continue
			}
			orgsByID[o.Organization.OrgID] = o
		}
		for _, m := range resp.Minority {
			key, err := json.Marshal(m)
			if err != nil {
				return nil, err
			}
			if !seenMinority[string(key)] {
				seenMinority[string(key)] = true
				minority = append(minority, m)
			}
		}
	}
	merged := CountryFleetResponse{
		CountryResponse: serve.CountryResponse{CC: cc, Organizations: []serve.OrgResponse{}},
		Envelope:        env,
	}
	ids := make([]string, 0, len(orgsByID))
	for id := range orgsByID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		merged.Organizations = append(merged.Organizations, orgsByID[id])
	}
	sort.Slice(minority, func(a, b int) bool { return serve.MinorityLess(&minority[a], &minority[b]) })
	if len(minority) > 0 {
		merged.Minority = minority
	}
	return serve.JSONBody(merged)
}

// mergeSearch unions per-shard search answers. Two rules restore exact
// single-index semantics:
//
//   - Fallback partition: a shard with no token candidates falls back to
//     a full scan the single index would never have run while any other
//     shard held a token candidate — so fallback legs contribute only
//     when every leg fell back.
//   - Distributed top-K: each shard returned its local top-limit, and
//     every member of the global top-limit is in its owning shard's
//     local top-limit (it has strictly fewer competitors there), so the
//     deduplicated union contains the global top-limit; re-sorting by
//     (score desc, OrgID) and truncating yields it exactly.
func mergeSearch(legs []leg, limit int, env Envelope) ([]byte, error) {
	resps := make([]serve.SearchResponse, len(legs))
	allFallback := true
	for i, l := range legs {
		if err := json.Unmarshal(l.body, &resps[i]); err != nil {
			return nil, fmt.Errorf("shard %d search body: %w", l.shard, err)
		}
		if !resps[i].Fallback {
			allFallback = false
		}
	}
	merged := SearchFleetResponse{
		SearchResponse: serve.SearchResponse{Hits: []serve.SearchHitRecord{}, Fallback: allFallback},
		Envelope:       env,
	}
	seen := map[string]bool{}
	for _, resp := range resps {
		if merged.Query == "" {
			merged.Query = resp.Query
		}
		if resp.Fallback && !allFallback {
			continue
		}
		for _, h := range resp.Hits {
			if h.Organization == nil || seen[h.Organization.OrgID] {
				continue
			}
			seen[h.Organization.OrgID] = true
			merged.Hits = append(merged.Hits, h)
		}
	}
	sort.Slice(merged.Hits, func(i, j int) bool {
		if merged.Hits[i].Score != merged.Hits[j].Score {
			return merged.Hits[i].Score > merged.Hits[j].Score
		}
		return merged.Hits[i].Organization.OrgID < merged.Hits[j].Organization.OrgID
	})
	if len(merged.Hits) > limit {
		merged.Hits = merged.Hits[:limit]
	}
	return serve.JSONBody(merged)
}
