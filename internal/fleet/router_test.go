package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"stateowned/internal/serve"
	"stateowned/internal/world"
)

// asnOnShard finds an ASN the partition assigns to the given shard.
func (tf *testFleet) asnOnShard(t testing.TB, shard int) world.ASN {
	t.Helper()
	for _, a := range tf.shards[0].Store().Current().Result.Dataset.AllASNs() {
		if tf.part.ShardOf(a) == shard {
			return a
		}
	}
	t.Fatalf("no ASN maps to shard %d", shard)
	return 0
}

func asnPath(a world.ASN) string {
	return "/v1/asn/" + strconv.FormatUint(uint64(a), 10)
}

// TestRouterPartialEnvelope proves pillar two's degraded-response
// contract end to end: with one shard down, scatter endpoints answer
// 206 from the survivors with X-Shards-Failed and a partial body
// envelope, the fast path 503s only for ASNs the dead shard owns, and
// once the shard returns, answers are byte-identical to the healthy
// baseline (the envelope leaves no residue).
func TestRouterPartialEnvelope(t *testing.T) {
	// A high breaker threshold keeps the circuit out of this test: the
	// down period costs several leg failures, and the point here is the
	// envelope contract, not breaker behavior.
	tf := buildFleet(t, fleetConfig{
		shards:    2,
		routerOpt: func(o *RouterOptions) { o.BreakerThreshold = 100 },
	})
	cc := tf.shards[0].Store().Current().World.Countries[0]
	asn0 := tf.asnOnShard(t, 0)
	asn1 := tf.asnOnShard(t, 1)

	baseline := tf.get("/v1/country/" + cc)
	if baseline.Code != http.StatusOK {
		t.Fatalf("healthy country: %d %s", baseline.Code, baseline.Body.String())
	}
	if h := baseline.Header().Get(ShardsFailedHeader); h != "" {
		t.Fatalf("healthy country carries %s: %q", ShardsFailedHeader, h)
	}

	tf.transport.setDown("shard1", true)

	// Scatter with a lost minority: degraded but explicit.
	rec := tf.get("/v1/country/" + cc)
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("country with shard 1 down: %d %s", rec.Code, rec.Body.String())
	}
	if h := rec.Header().Get(ShardsFailedHeader); h != "1" {
		t.Fatalf("%s = %q, want \"1\"", ShardsFailedHeader, h)
	}
	var env struct {
		Partial      bool  `json:"partial"`
		ShardsFailed []int `json:"shards_failed"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if !env.Partial || len(env.ShardsFailed) != 1 || env.ShardsFailed[0] != 1 {
		t.Fatalf("partial envelope %+v", env)
	}

	// Fast path: the dead shard's ASNs are unavailable, everyone else's
	// answer normally.
	if rec := tf.get(asnPath(asn1)); rec.Code != http.StatusServiceUnavailable ||
		rec.Header().Get(ShardsFailedHeader) != "1" {
		t.Fatalf("asn on dead shard: %d %s %q", rec.Code, rec.Body.String(),
			rec.Header().Get(ShardsFailedHeader))
	}
	if rec := tf.get(asnPath(asn0)); rec.Code != http.StatusOK {
		t.Fatalf("asn on live shard: %d %s", rec.Code, rec.Body.String())
	}

	// Any-shard endpoints rotate around the dead shard.
	for i := 0; i < 4; i++ {
		if rec := tf.get("/v1/dataset"); rec.Code != http.StatusOK {
			t.Fatalf("dataset with shard 1 down (attempt %d): %d", i, rec.Code)
		}
	}

	// Recovery: the partial envelope leaves no residue.
	tf.transport.setDown("shard1", false)
	rec = tf.get("/v1/country/" + cc)
	if rec.Code != http.StatusOK {
		t.Fatalf("country after recovery: %d %s", rec.Code, rec.Body.String())
	}
	if h := rec.Header().Get(ShardsFailedHeader); h != "" {
		t.Fatalf("recovered country still carries %s %q", ShardsFailedHeader, h)
	}
	if !bytes.Equal(rec.Body.Bytes(), baseline.Body.Bytes()) {
		t.Fatal("recovered country body differs from the healthy baseline")
	}

	if m := tf.router.Metrics().Snapshot(); m.Partials == 0 || m.LegFailures == 0 {
		t.Fatalf("metrics did not record the degradation: %+v", m)
	}
}

// TestRouterAllShardsLost proves the every-leg-failed verdict: an
// explicit 503 naming every shard, with a Retry-After hint — never a
// fabricated empty 200.
func TestRouterAllShardsLost(t *testing.T) {
	tf := buildFleet(t, fleetConfig{shards: 2})
	cc := tf.shards[0].Store().Current().World.Countries[0]
	tf.transport.setDown("shard0", true)
	tf.transport.setDown("shard1", true)

	for _, path := range []string{"/v1/country/" + cc, "/v1/search?name=telecom", "/v1/dataset"} {
		rec := tf.get(path)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s with all shards down: %d %s", path, rec.Code, rec.Body.String())
		}
		if h := rec.Header().Get(ShardsFailedHeader); h != "0,1" {
			t.Fatalf("%s: %s = %q, want \"0,1\"", path, ShardsFailedHeader, h)
		}
		if ra := rec.Header().Get("Retry-After"); ra == "" {
			t.Fatalf("%s: shed without Retry-After", path)
		}
	}

	// An org lookup must degrade, not fabricate a 404: the record may
	// have lived on a lost shard.
	rec := tf.get("/v1/org/ORG-ANYTHING")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("org with all shards down: %d (a 404 here would be a lie)", rec.Code)
	}
}

// TestRouterRetryAfterPropagation proves shard-side back-pressure
// surfaces at the router: a shard answering 503 + Retry-After marks the
// leg failed (partial answer) and the largest shard hint rides the
// router's response — and the breaker does NOT open, because an HTTP
// answer means the shard is alive.
func TestRouterRetryAfterPropagation(t *testing.T) {
	tf := buildFleet(t, fleetConfig{shards: 2})
	cc := tf.shards[0].Store().Current().World.Countries[0]
	shedBody, _ := serve.JSONBody(serve.ErrorBody{Error: "overloaded", Status: 503})
	tf.transport.setIntercept(func(req *http.Request) (*http.Response, bool) {
		if req.URL.Host == "shard1" && strings.HasPrefix(req.URL.Path, "/v1/country/") {
			return craftedResponse(http.StatusServiceUnavailable,
				map[string]string{"Retry-After": "7", "Content-Type": "application/json"},
				string(shedBody)), true
		}
		return nil, false
	})

	rec := tf.get("/v1/country/" + cc)
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("country with shard 1 shedding: %d %s", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want the shard's hint \"7\"", ra)
	}
	if h := rec.Header().Get(ShardsFailedHeader); h != "1" {
		t.Fatalf("%s = %q, want \"1\"", ShardsFailedHeader, h)
	}
	if tf.router.shards[1].open() {
		t.Fatal("a shard-side 503 opened the breaker — back-pressure is not shard death")
	}
}

// TestRouterIncoherentLegRejected proves the coherence core: a 200 leg
// answering from a generation other than the pin is a torn read and
// must be discarded, even on the single-shard fast path.
func TestRouterIncoherentLegRejected(t *testing.T) {
	tf := buildFleet(t, fleetConfig{shards: 2})
	asn0 := tf.asnOnShard(t, 0)
	tf.transport.setIntercept(func(req *http.Request) (*http.Response, bool) {
		if req.URL.Host == "shard0" && strings.HasPrefix(req.URL.Path, "/v1/asn/") {
			return craftedResponse(http.StatusOK,
				map[string]string{serve.GenerationHeader: "5", "Content-Type": "application/json"},
				`{"asn": 1}`), true
		}
		return nil, false
	})
	rec := tf.get(asnPath(asn0))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("incoherent fast-path leg passed through: %d %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "generation") {
		t.Fatalf("incoherence 503 does not say why: %s", rec.Body.String())
	}
}

// TestRouterBreakerOpensAndProbes proves the breaker lifecycle: enough
// consecutive transport failures open a shard's circuit (requests fail
// fast without touching the transport), every Nth denial probes
// through, and a successful probe closes the circuit.
func TestRouterBreakerOpensAndProbes(t *testing.T) {
	tf := buildFleet(t, fleetConfig{
		shards: 2,
		routerOpt: func(o *RouterOptions) {
			o.BreakerThreshold = 2
			o.BreakerProbeEvery = 3
		},
	})
	asn1 := tf.asnOnShard(t, 1)
	tf.transport.setDown("shard1", true)

	// Two failed fan-outs (each fetchLeg records one failure after its
	// hedge also dies) trip the threshold-2 breaker.
	for i := 0; i < 2; i++ {
		if rec := tf.get(asnPath(asn1)); rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("request %d against down shard: %d", i, rec.Code)
		}
	}
	if !tf.router.shards[1].open() {
		t.Fatal("breaker still closed after threshold failures")
	}

	// The shard recovers, but the breaker doesn't know yet: the next two
	// requests are denied without touching the transport, and the third
	// denial probes through, succeeds, and closes the circuit.
	tf.transport.setDown("shard1", false)
	before := tf.router.Metrics().Snapshot().BreakerDenials
	for i := 0; i < 2; i++ {
		if rec := tf.get(asnPath(asn1)); rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("denied request %d: %d, want fail-fast 503", i, rec.Code)
		}
	}
	if got := tf.router.Metrics().Snapshot().BreakerDenials; got != before+2 {
		t.Fatalf("breaker denials %d, want %d", got, before+2)
	}
	if rec := tf.get(asnPath(asn1)); rec.Code != http.StatusOK {
		t.Fatalf("probe request: %d, want 200", rec.Code)
	}
	if tf.router.shards[1].open() {
		t.Fatal("breaker still open after a successful probe")
	}
	if rec := tf.get(asnPath(asn1)); rec.Code != http.StatusOK {
		t.Fatalf("post-recovery request: %d", rec.Code)
	}
}

// TestRouterHedgeOnTransportError proves the fast hedge: a leg whose
// first attempt dies at the transport level retries immediately (no
// timer), and the hedged attempt's answer serves the request.
func TestRouterHedgeOnTransportError(t *testing.T) {
	tf := buildFleet(t, fleetConfig{shards: 2})
	asn0 := tf.asnOnShard(t, 0)
	var calls atomic.Int64
	tf.transport.setIntercept(func(req *http.Request) (*http.Response, bool) {
		if req.URL.Host == "shard0" && strings.HasPrefix(req.URL.Path, "/v1/asn/") {
			if calls.Add(1) == 1 {
				return nil, true // first attempt: transport error
			}
		}
		return nil, false
	})
	rec := tf.get(asnPath(asn0))
	if rec.Code != http.StatusOK {
		t.Fatalf("hedged request: %d %s", rec.Code, rec.Body.String())
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("%d attempts, want first + hedge", got)
	}
	if m := tf.router.Metrics().Snapshot(); m.Hedges != 1 {
		t.Fatalf("hedges metric %d, want 1", m.Hedges)
	}
	if tf.router.shards[0].open() {
		t.Fatal("breaker opened although the hedge succeeded")
	}
}

// TestRouterHedgeOnSlowLeg proves the timer hedge on a virtual clock: a
// first attempt that stalls (no transport error, just silence) is
// duplicated when the hedge timer fires, and the duplicate's answer
// serves the request while the stalled attempt is abandoned.
func TestRouterHedgeOnSlowLeg(t *testing.T) {
	const (
		hedgeAfter = 1 * time.Second
		legTimeout = 2 * time.Second
	)
	hedgeCh := make(chan time.Time)
	stall := make(chan struct{})   // holds the first attempt open
	stalled := make(chan struct{}) // signals the first attempt arrived
	defer close(stall)

	tf := buildFleet(t, fleetConfig{
		shards: 2,
		routerOpt: func(o *RouterOptions) {
			o.HedgeAfter = hedgeAfter
			o.LegTimeout = legTimeout
			o.After = func(d time.Duration) <-chan time.Time {
				if d == hedgeAfter {
					return hedgeCh
				}
				return nil // deadlines never fire in this test
			}
		},
	})
	asn0 := tf.asnOnShard(t, 0)
	var calls atomic.Int64
	tf.transport.setIntercept(func(req *http.Request) (*http.Response, bool) {
		if req.URL.Host == "shard0" && strings.HasPrefix(req.URL.Path, "/v1/asn/") {
			if calls.Add(1) == 1 {
				close(stalled)
				<-stall // the first attempt hangs until the test ends
				return nil, true
			}
		}
		return nil, false
	})

	done := make(chan *http.Response, 1)
	go func() {
		rec := tf.get(asnPath(asn0))
		done <- rec.Result()
	}()

	<-stalled              // first attempt is wedged inside the transport
	hedgeCh <- time.Time{} // fire the hedge timer

	select {
	case resp := <-done:
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("hedged request: %d", resp.StatusCode)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request never completed after the hedge fired")
	}
	if m := tf.router.Metrics().Snapshot(); m.Hedges != 1 {
		t.Fatalf("hedges metric %d, want 1", m.Hedges)
	}
}

// TestRouterAdmissionShed proves pillar three at the router: with
// MaxInFlight 1 and no queue, a second concurrent request is shed with
// 503 + Retry-After while the first (wedged in a shard call) still
// completes normally.
func TestRouterAdmissionShed(t *testing.T) {
	tf := buildFleet(t, fleetConfig{
		shards: 2,
		routerOpt: func(o *RouterOptions) {
			o.Admission = &serve.AdmissionConfig{MaxInFlight: 1, MaxQueue: -1}
		},
	})
	asn0 := tf.asnOnShard(t, 0)
	wedge := make(chan struct{})
	arrived := make(chan struct{})
	var once atomic.Bool
	tf.transport.setIntercept(func(req *http.Request) (*http.Response, bool) {
		if req.URL.Host == "shard0" && strings.HasPrefix(req.URL.Path, "/v1/asn/") &&
			once.CompareAndSwap(false, true) {
			close(arrived)
			<-wedge
		}
		return nil, false
	})

	first := make(chan int, 1)
	go func() {
		first <- tf.get(asnPath(asn0)).Code
	}()
	<-arrived // the one admission slot is held

	rec := tf.get(asnPath(asn0))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("second concurrent request: %d, want shed 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("shed Retry-After = %q, want \"1\"", ra)
	}
	if !strings.Contains(rec.Body.String(), "router overloaded") {
		t.Fatalf("shed body: %s", rec.Body.String())
	}

	close(wedge)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("admitted request: %d", code)
	}
	if m := tf.router.Metrics().Snapshot(); m.Shed != 1 {
		t.Fatalf("shed metric %d, want 1", m.Shed)
	}
}

// TestRouterOpsEndpoints proves the ops surface: healthz is
// unconditional, readyz reports the fleet generation and degrades to
// 503 only when every breaker is open, metrics returns the fleet and
// admission snapshots, and unknown routes get the JSON error envelope.
func TestRouterOpsEndpoints(t *testing.T) {
	tf := buildFleet(t, fleetConfig{
		shards:    2,
		routerOpt: func(o *RouterOptions) { o.BreakerThreshold = 1 },
	})

	if rec := tf.get("/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	rec := tf.get("/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz healthy: %d %s", rec.Code, rec.Body.String())
	}
	var st RouterStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Gen != 0 || st.Partition.Shards != 2 || len(st.BreakersOpen) != 0 {
		t.Fatalf("readyz status %+v", st)
	}

	rec = tf.get("/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	var m RouterMetrics
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}

	rec = tf.get("/v2/nope")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown route: %d", rec.Code)
	}
	var eb serve.ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Status != http.StatusNotFound {
		t.Fatalf("unknown-route body %q (err %v)", rec.Body.String(), err)
	}

	// Kill both shards; threshold 1 opens both breakers after one
	// fan-out, and readyz goes unready.
	tf.transport.setDown("shard0", true)
	tf.transport.setDown("shard1", true)
	cc := tf.shards[0].Store().Current().World.Countries[0]
	tf.get("/v1/country/" + cc)
	rec = tf.get("/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with every breaker open: %d %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil || len(st.BreakersOpen) != 2 {
		t.Fatalf("unready status %+v (err %v)", st, err)
	}
}
