package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// maxControlBody bounds how much of a control-plane reply the client
// will read — acks and statuses are small; anything larger is a bug.
const maxControlBody = 1 << 20

// ShardClient is the router's and coordinator's handle on one shard:
// its position in the partition, its base URL, and the HTTP client to
// reach it with. Tests swap HTTP's Transport for an in-process
// round-tripper, so the whole fleet runs without listeners.
type ShardClient struct {
	Index int
	Base  string
	HTTP  *http.Client
}

func (c *ShardClient) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Get issues a data-plane GET (path must start with "/") and returns
// the raw response: the merge layer needs status, body and headers, not
// a decoded struct.
func (c *ShardClient) Get(ctx context.Context, path string) (*http.Response, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, body, nil
}

// control issues one POST to a control-plane path with a ?gen= operand
// and decodes the ack. Non-2xx is an error carrying the shard's own
// explanation (e.g. the validation-gate quarantine reason on a failed
// stage).
func (c *ShardClient) control(ctx context.Context, path string, gen int) (StageAck, error) {
	url := c.Base + path + "?gen=" + strconv.Itoa(gen)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
	if err != nil {
		return StageAck{}, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return StageAck{}, fmt.Errorf("shard %d: %w", c.Index, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxControlBody))
	if err != nil {
		return StageAck{}, fmt.Errorf("shard %d: reading ack: %w", c.Index, err)
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(body, &e)
		return StageAck{}, fmt.Errorf("shard %d: %s %d: %s", c.Index, path, resp.StatusCode, e.Error)
	}
	var ack StageAck
	if err := json.Unmarshal(body, &ack); err != nil {
		return StageAck{}, fmt.Errorf("shard %d: decoding ack: %w", c.Index, err)
	}
	return ack, nil
}

// Stage asks the shard to build and hold generation gen (phase one).
func (c *ShardClient) Stage(ctx context.Context, gen int) (StageAck, error) {
	return c.control(ctx, StagePath, gen)
}

// Commit asks the shard to publish its staged generation (phase two).
func (c *ShardClient) Commit(ctx context.Context, gen int) (StageAck, error) {
	return c.control(ctx, CommitPath, gen)
}

// Abort asks the shard to discard its staged generation.
func (c *ShardClient) Abort(ctx context.Context, gen int) (StageAck, error) {
	return c.control(ctx, AbortPath, gen)
}

// Status fetches the shard's control-plane self-description.
func (c *ShardClient) Status(ctx context.Context) (ShardStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+StatusPath, nil)
	if err != nil {
		return ShardStatus{}, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return ShardStatus{}, fmt.Errorf("shard %d: %w", c.Index, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxControlBody))
	if err != nil {
		return ShardStatus{}, fmt.Errorf("shard %d: reading status: %w", c.Index, err)
	}
	if resp.StatusCode != http.StatusOK {
		return ShardStatus{}, fmt.Errorf("shard %d: status %d", c.Index, resp.StatusCode)
	}
	var st ShardStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return ShardStatus{}, fmt.Errorf("shard %d: decoding status: %w", c.Index, err)
	}
	return st, nil
}
