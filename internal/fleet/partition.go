// Package fleet is the sharded serving layer over the generational
// dataset: N shard servers each hold one ASN-range partition of the
// index, a thin router answers /v1/asn with single-shard fast-path
// routing and /v1/search, /v1/country, /v1/org with scatter-gather and
// a deterministic merge, and a two-phase coordinator keeps every
// shard's generation coherent through hot reloads — all shards stage
// generation g behind the snapshot validation gate, and the router
// flips only after unanimous stage-acks and commits.
//
// Robustness is the design center. The fleet never serves a
// mixed-generation aggregate: the router pins every shard leg to its
// own committed fleet generation, and legs answering from any other
// generation are discarded as incoherent. The fleet never turns a
// minority shard failure into a total failure: per-shard circuit
// breakers, per-leg deadlines carved from the request budget, and one
// hedged retry for slow legs keep healthy shards answering, and a
// query that lost a minority of its legs degrades to an explicit
// partial envelope (206 + X-Shards-Failed) instead of a 500. And the
// fleet never tears a reload: a shard that fails to stage quarantines
// the whole flip while every shard keeps serving the previous
// generation — the snapshot store's last-known-good discipline, lifted
// to fleet scope.
package fleet

import (
	"fmt"
	"sort"

	"stateowned/internal/expand"
	"stateowned/internal/world"
)

// MaxShards bounds the fleet size: beyond it the per-request fan-out
// cost dominates any partitioning win.
const MaxShards = 64

// Partition is the fleet's ASN-range partition function: shard i owns
// the half-open ASN range [Bounds[i], Bounds[i+1]) with Bounds[0]
// implicitly 0 and the last range open-ended. Every router and every
// shard must hold the identical partition — it is computed
// deterministically from the generation-0 dataset (ComputePartition)
// and cross-checked at bootstrap (Equal).
type Partition struct {
	// Shards is the shard count (>= 1).
	Shards int `json:"shards"`
	// Bounds are the Shards-1 split points, ascending: an ASN a belongs
	// to the highest shard i with Bounds[i-1] <= a (shard 0 below
	// Bounds[0]).
	Bounds []world.ASN `json:"bounds"`
}

// ComputePartition derives the fleet's partition from a dataset: the
// dataset's state-owned ASNs, sorted, are split into n contiguous runs
// of near-equal count, and each run's first ASN becomes a split point.
// The function is a pure function of (dataset, n), so every shard and
// router that builds the same generation-0 dataset computes the same
// partition without any coordination.
func ComputePartition(ds *expand.Dataset, n int) (Partition, error) {
	if n < 1 || n > MaxShards {
		return Partition{}, fmt.Errorf("shard count %d out of range [1, %d]", n, MaxShards)
	}
	p := Partition{Shards: n}
	if n == 1 {
		return p, nil
	}
	asns := ds.AllASNs() // sorted, deduplicated
	if len(asns) < n {
		return Partition{}, fmt.Errorf("dataset has %d state-owned ASNs, too few for %d shards", len(asns), n)
	}
	for i := 1; i < n; i++ {
		p.Bounds = append(p.Bounds, asns[i*len(asns)/n])
	}
	return p, nil
}

// ShardOf maps an ASN to the shard that owns it: binary search over the
// split points. Total — every representable ASN maps to exactly one
// shard, so the router can route /v1/asn without consulting any index.
func (p Partition) ShardOf(a world.ASN) int {
	return sort.Search(len(p.Bounds), func(i int) bool { return a < p.Bounds[i] })
}

// Equal reports whether two partitions are identical — the bootstrap
// cross-check that every shard and the router agree on ownership.
func (p Partition) Equal(q Partition) bool {
	if p.Shards != q.Shards || len(p.Bounds) != len(q.Bounds) {
		return false
	}
	for i := range p.Bounds {
		if p.Bounds[i] != q.Bounds[i] {
			return false
		}
	}
	return true
}

// Carve builds shard's sub-dataset: the organizations and minority
// records with at least one ASN in the shard's range, each kept whole
// (full record, full ASN list). An organization whose ASNs span a range
// boundary is therefore replicated onto every shard that owns one of
// its ASNs — that is what makes the fast path complete (any owning
// shard answers /v1/asn with the full sibling list) and the
// scatter-gather merge exact (replicas are byte-identical, deduplicated
// by OrgID). Relative order is preserved, so a sub-dataset is a
// subsequence of the full dataset.
func (p Partition) Carve(ds *expand.Dataset, shard int) *expand.Dataset {
	if shard < 0 || shard >= p.Shards {
		panic(fmt.Sprintf("fleet: carve shard %d of %d", shard, p.Shards))
	}
	sub := &expand.Dataset{}
	owns := func(asns []world.ASN) bool {
		for _, a := range asns {
			if p.ShardOf(a) == shard {
				return true
			}
		}
		// Record with no ASNs at all: owned by shard 0 so it is not lost.
		return len(asns) == 0 && shard == 0
	}
	for i := range ds.Organizations {
		if owns(ds.ASNs[i].ASNs) {
			sub.Organizations = append(sub.Organizations, ds.Organizations[i])
			sub.ASNs = append(sub.ASNs, ds.ASNs[i])
		}
	}
	for i := range ds.Minority {
		if owns(ds.Minority[i].ASNs) {
			sub.Minority = append(sub.Minority, ds.Minority[i])
		}
	}
	return sub
}
