package fleet

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"

	"stateowned/internal/churn"
	"stateowned/internal/serve"
	"stateowned/internal/snapshot"
)

// Control-plane paths a shard mounts next to its data plane. The
// control plane is never admission-limited: the coordinator must be
// able to stage, commit and abort precisely when the data plane is
// shedding.
const (
	StagePath  = "/fleet/stage"
	CommitPath = "/fleet/commit"
	AbortPath  = "/fleet/abort"
	StatusPath = "/fleet/status"
	// FullPrefix mounts a second, un-carved data plane: /full/v1/*
	// answers from the shard's complete generation exactly as a
	// single-process server would. The router sends /v1/dataset and
	// /v1/diff here (any one shard holds the whole deterministic build),
	// keeping those answers byte-identical to single-process without a
	// dataset-merge.
	FullPrefix = "/full"
)

// ShardStatus is a shard's control-plane self-description: who it is,
// what partition it carved, and where its generations stand. The router
// bootstraps from these (cross-checking that every shard agrees on the
// partition) and the coordinator reads LiveGen/StagedGen to converge a
// fleet whose shards diverged across a failed flip.
type ShardStatus struct {
	Shard     int                `json:"shard"`
	Shards    int                `json:"shards"`
	Partition Partition          `json:"partition"`
	LiveGen   int                `json:"live_gen"`
	StagedGen int                `json:"staged_gen"` // -1 when nothing is staged
	Retained  []int              `json:"retained"`
	Reload    serve.ReloadStatus `json:"reload"`
	// DatasetSums maps archived generation → dataset fingerprint when
	// the shard persists to a durable archive (absent otherwise).
	// Shards recover from their archives independently; Bootstrap
	// compares these fingerprints so two shards claiming the same
	// generation number are proven to hold the same dataset bytes
	// before the router pins to it.
	DatasetSums map[int]string `json:"dataset_sums,omitempty"`
}

// StageAck is the control-plane body for stage/commit/abort responses.
type StageAck struct {
	Shard int  `json:"shard"`
	Gen   int  `json:"gen"`
	Live  int  `json:"live_gen"`
	Done  bool `json:"done"`
}

// ShardServer is one fleet shard: a snapshot store that rebuilds every
// generation deterministically from (seed, churn seed, generation) — so
// shards need no state transfer, only agreement on the generation
// number — a carved data plane serving the shard's ASN-range partition,
// a full data plane under /full/ for fleet-wide answers, and the
// two-phase control plane the coordinator drives.
type ShardServer struct {
	store *snapshot.Store
	src   *shardSource
	data  *serve.Server // carved partition plane (/v1/*)
	full  *serve.Server // complete-generation plane (/full/v1/*)
	mux   *http.ServeMux
	life  serve.LifecycleOptions
}

// NewShardServer assembles shard `index` of the partition over a built
// snapshot store. The serve options apply to the carved data plane
// (admission, deadlines, cache); the full plane runs uncached and
// unlimited — it answers rare fleet-internal queries, not user traffic.
func NewShardServer(store *snapshot.Store, part Partition, index int, opts serve.Options) *ShardServer {
	if index < 0 || index >= part.Shards {
		panic(fmt.Sprintf("fleet: shard index %d out of range [0, %d)", index, part.Shards))
	}
	src := &shardSource{store: store, part: part, shard: index, carved: map[int]*serve.View{}}
	sh := &ShardServer{
		store: store,
		src:   src,
		data:  serve.NewDynamic(src, opts),
		full: serve.NewDynamic(store.Source(), serve.Options{
			Clock: opts.Clock, SearchLimit: opts.SearchLimit,
		}),
		mux: http.NewServeMux(),
		life: serve.LifecycleOptions{
			DrainTimeout:      opts.DrainTimeout,
			ReadHeaderTimeout: opts.ReadHeaderTimeout,
			WriteTimeout:      opts.WriteTimeout,
			IdleTimeout:       opts.IdleTimeout,
		},
	}
	// A generation leaving the retention ring takes its carved view and
	// its cached responses with it.
	store.OnEvict(func(gen int) {
		src.evict(gen)
		sh.data.InvalidateGeneration(gen)
		sh.full.InvalidateGeneration(gen)
	})
	sh.mux.HandleFunc("POST "+StagePath, sh.handleStage)
	sh.mux.HandleFunc("POST "+CommitPath, sh.handleCommit)
	sh.mux.HandleFunc("POST "+AbortPath, sh.handleAbort)
	sh.mux.HandleFunc("GET "+StatusPath, sh.handleStatus)
	sh.mux.Handle(FullPrefix+"/", http.StripPrefix(FullPrefix, sh.full))
	sh.mux.Handle("/", sh.data)
	return sh
}

// ServeHTTP dispatches between the control plane, the full plane and
// the carved data plane.
func (sh *ShardServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { sh.mux.ServeHTTP(w, r) }

// Serve runs the shard on ln with the hardened server lifecycle until
// ctx is canceled.
func (sh *ShardServer) Serve(ctx context.Context, ln net.Listener) error {
	return serve.ServeHandler(ctx, ln, sh, sh.life)
}

// Store exposes the shard's snapshot store (tests inject build hooks
// through it).
func (sh *ShardServer) Store() *snapshot.Store { return sh.store }

// Status snapshots the shard's control-plane self-description.
func (sh *ShardServer) Status() ShardStatus {
	return ShardStatus{
		Shard:     sh.src.shard,
		Shards:    sh.src.part.Shards,
		Partition: sh.src.part,
		LiveGen:     sh.store.Current().Gen,
		StagedGen:   sh.store.StagedGen(),
		Retained:    sh.store.Retained(),
		Reload:      sh.store.Source().ReloadStatus(),
		DatasetSums: sh.store.DatasetSums(),
	}
}

// genParam parses the ?gen= control parameter.
func genParam(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("gen")
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid ?gen=%q: want a non-negative generation number", raw)
	}
	return n, nil
}

// handleStage is phase one: build generation gen through the snapshot
// validation gate and hold it unpublished. A 200 ack means "this shard
// can serve gen and awaits commit"; a 409 means the gate quarantined
// the build (the body carries the reason) and the coordinator must
// abort the flip fleet-wide.
func (sh *ShardServer) handleStage(w http.ResponseWriter, r *http.Request) {
	gen, err := genParam(r)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := sh.store.Stage(gen); err != nil {
		serve.WriteError(w, http.StatusConflict, err.Error())
		return
	}
	// Pre-carve the staged generation so the first post-commit request
	// doesn't pay the sub-index build.
	if g := sh.store.Staged(); g != nil && g.Gen == gen {
		sh.src.carve(g)
	}
	serve.WriteJSON(w, http.StatusOK, StageAck{
		Shard: sh.src.shard, Gen: gen, Live: sh.store.Current().Gen, Done: true,
	})
}

// handleCommit is phase two: publish the staged generation with one
// atomic swap. Idempotent — re-committing an already-live generation
// acks — so a coordinator retrying after a lost ack converges.
func (sh *ShardServer) handleCommit(w http.ResponseWriter, r *http.Request) {
	gen, err := genParam(r)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	if _, err := sh.store.Commit(gen); err != nil {
		serve.WriteError(w, http.StatusConflict, err.Error())
		return
	}
	serve.WriteJSON(w, http.StatusOK, StageAck{
		Shard: sh.src.shard, Gen: gen, Live: sh.store.Current().Gen, Done: true,
	})
}

// handleAbort discards a staged generation; the fleet keeps serving the
// live one. Always acks: aborting nothing is not an error.
func (sh *ShardServer) handleAbort(w http.ResponseWriter, r *http.Request) {
	gen, err := genParam(r)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	dropped := sh.store.AbortStage(gen)
	sh.src.drop(gen)
	serve.WriteJSON(w, http.StatusOK, StageAck{
		Shard: sh.src.shard, Gen: gen, Live: sh.store.Current().Gen, Done: dropped,
	})
}

func (sh *ShardServer) handleStatus(w http.ResponseWriter, _ *http.Request) {
	serve.WriteJSON(w, http.StatusOK, sh.Status())
}

// shardSource adapts the snapshot store to the serving layer, carving
// each generation down to the shard's partition. Carved views are
// memoized per generation (bounded by the retention ring via evict) and
// everything a view reaches is immutable once built, so the source is
// safe under arbitrary request concurrency.
type shardSource struct {
	store *snapshot.Store
	part  Partition
	shard int

	mu     sync.Mutex
	carved map[int]*serve.View
}

// carve returns the shard's sub-view of a generation, building and
// memoizing it on first use.
func (ss *shardSource) carve(g *snapshot.Generation) *serve.View {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if v, ok := ss.carved[g.Gen]; ok {
		return v
	}
	full := g.View()
	sub := ss.part.Carve(g.Result.Dataset, ss.shard)
	v := &serve.View{
		Gen:        g.Gen,
		Index:      serve.BuildIndex(sub),
		Health:     full.Health,
		Provenance: full.Provenance,
		// The graph is global (relationships cross partition boundaries)
		// and immutable, so the carved plane shares the generation's
		// compiled graph rather than carving it: a shard queried directly
		// answers graph queries exactly as the full plane does.
		Graph: full.Graph,
		// The detection report is likewise global and immutable: hijack
		// observations are collected fleet-wide, never range-carved.
		Hijacks: full.Hijacks,
	}
	ss.carved[g.Gen] = v
	return v
}

// evict drops a generation's carved view when it leaves the ring.
func (ss *shardSource) evict(gen int) {
	ss.mu.Lock()
	delete(ss.carved, gen)
	ss.mu.Unlock()
}

// drop removes a pre-carved view for an aborted stage (only if that
// generation never went live).
func (ss *shardSource) drop(gen int) {
	if ss.store.Current().Gen >= gen {
		return
	}
	ss.evict(gen)
}

// Current returns the live generation's carved view.
func (ss *shardSource) Current() *serve.View { return ss.carve(ss.store.Current()) }

// Generation resolves a pinned generation to its carved view.
func (ss *shardSource) Generation(n int) (*serve.View, serve.GenStatus) {
	g, st := ss.store.Lookup(n)
	if st != serve.GenOK {
		return nil, st
	}
	return ss.carve(g), st
}

// Diff delegates to the store's full source: the audit runs over the
// complete dataset and ground truth, not the carved partition, so a
// diff answered by any one shard equals the single-process answer.
func (ss *shardSource) Diff(from, to *serve.View) (*churn.Audit, bool) {
	return ss.store.Source().Diff(from, to)
}

// ReloadStatus reports the store's rebuild state.
func (ss *shardSource) ReloadStatus() serve.ReloadStatus { return ss.store.Source().ReloadStatus() }
