package fleet

import (
	"context"
	"fmt"
	"testing"

	"stateowned"
	"stateowned/internal/serve"
	"stateowned/internal/snapshot"
)

// hijackProbePaths is the /v1/hijacks request battery the fleet
// byte-identity checks replay: the bare report, every filter, malformed
// parameters (error envelopes must match too), and generation pins.
func hijackProbePaths() []string {
	return []string{
		"/v1/hijacks",
		"/v1/hijacks?cross_border=true",
		"/v1/hijacks?cross_border=0",
		"/v1/hijacks?cc=CN",
		"/v1/hijacks?cc=cn&cross_border=TRUE",
		"/v1/hijacks?victim=4294967294",
		"/v1/hijacks?victim=0",
		"/v1/hijacks?victim=bogus",
		"/v1/hijacks?cc=notacountry",
		"/v1/hijacks?cross_border=maybe",
		"/v1/hijacks?gen=0",
		"/v1/hijacks?gen=99",
		"/v1/hijacks?gen=abc",
	}
}

// TestHijacksByteIdentityAcrossShardCounts extends the fleet acceptance
// check to the adversarial surface: with live campaigns, /v1/hijacks
// answers — the report is global, never range-carved — must be
// byte-identical between a single-process server and 1-, 2- and 4-shard
// fleets, at generation 0 and after a two-phase flip.
func TestHijacksByteIdentityAcrossShardCounts(t *testing.T) {
	const (
		seed   = 42
		scale  = 0.05
		hijack = 0.75
		rov    = 0.25
	)
	shardCounts := []int{1, 2, 4}
	if testing.Short() {
		shardCounts = []int{2}
	}
	refStore := snapshot.New(snapshot.Options{
		Base:   stateowned.Config{Seed: seed, Scale: scale, HijackSeverity: hijack, ROVFraction: rov},
		Retain: 8,
	})
	if len(refStore.Current().Result.Hijacks.Detections) == 0 {
		t.Fatal("reference run detected nothing; the adversarial battery is vacuous")
	}
	ref := serve.NewDynamic(refStore.Source(), serve.Options{})

	fleets := make([]*testFleet, len(shardCounts))
	for i, shards := range shardCounts {
		fleets[i] = buildFleet(t, fleetConfig{
			seed: seed, scale: scale, shards: shards, retain: 8, hijack: hijack, rov: rov,
		})
	}
	probes := hijackProbePaths()
	compare := func(stage string) {
		t.Helper()
		for i, tf := range fleets {
			for _, path := range probes {
				want := singleGet(ref, path)
				got := tf.get(path)
				if got.Code != want.Code || got.Body.String() != want.Body.String() {
					t.Fatalf("%d shards, %s: GET %s diverged:\n fleet (%d): %s\nsingle (%d): %s",
						shardCounts[i], stage, path, got.Code, got.Body, want.Code, want.Body)
				}
				if g, w := got.Header().Get(serve.GenerationHeader), want.Header().Get(serve.GenerationHeader); g != w {
					t.Fatalf("%d shards, %s: GET %s X-Generation %q, single-process %q",
						shardCounts[i], stage, path, g, w)
				}
			}
		}
	}
	compare("generation 0")

	if g := refStore.Advance(); g == nil {
		t.Fatal("reference store quarantined generation 1")
	}
	for i, tf := range fleets {
		gen, err := tf.coord.FlipOnce(context.Background())
		if err != nil {
			t.Fatalf("%d shards: flip: %v", shardCounts[i], err)
		}
		if gen != 1 {
			t.Fatalf("%d shards: flip landed on generation %d", shardCounts[i], gen)
		}
	}
	compare("after flip")
}

// TestHijacksFullROVFleetMatchesHonest is the acceptance criterion from
// the other side: a fully ROV-gated fleet must answer every probed
// endpoint byte-identically to an honest (adversary-free)
// single-process server — campaigns at rov=1.0 do not exist, anywhere
// on the surface.
func TestHijacksFullROVFleetMatchesHonest(t *testing.T) {
	const (
		seed  = 7
		scale = 0.05
	)
	shards := 2
	honestStore := snapshot.New(snapshot.Options{
		Base:   stateowned.Config{Seed: seed, Scale: scale},
		Retain: 8,
	})
	honest := serve.NewDynamic(honestStore.Source(), serve.Options{})
	tf := buildFleet(t, fleetConfig{
		seed: seed, scale: scale, shards: shards, retain: 8, hijack: 1.0, rov: 1.0,
	})

	topo := honestStore.Current().Result.Topology
	a := topo.ASNAt(0)
	probes := append(hijackProbePaths(),
		"/v1/dataset",
		fmt.Sprintf("/v1/asn/%d", a),
		fmt.Sprintf("/v1/graph/neighbors/%d", a),
		fmt.Sprintf("/v1/graph/cone/%d", a),
	)
	for _, path := range probes {
		want := singleGet(honest, path)
		got := tf.get(path)
		if got.Code != want.Code || got.Body.String() != want.Body.String() {
			t.Fatalf("rov=1.0 fleet: GET %s diverged from the honest server:\n fleet (%d): %s\nhonest (%d): %s",
				path, got.Code, got.Body, want.Code, want.Body)
		}
	}
}
