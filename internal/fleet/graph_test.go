package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"stateowned"
	"stateowned/internal/serve"
	"stateowned/internal/snapshot"
	"stateowned/internal/world"
)

// graphProbePaths builds the request set the byte-identity check
// replays: every /v1/graph/* endpoint, hit ASNs and missing ASNs,
// class filters (valid and not), path pairs, and malformed parameters —
// error envelopes must match byte-for-byte too.
func graphProbePaths(asns []world.ASN) []string {
	paths := []string{
		"/v1/graph/neighbors/notanumber",
		"/v1/graph/neighbors/4294967294",
		"/v1/graph/upstreams/4294967294",
		"/v1/graph/cone/4294967294",
		"/v1/graph/path",
		"/v1/graph/path?from=1&to=bogus",
	}
	for _, a := range asns {
		paths = append(paths,
			fmt.Sprintf("/v1/graph/neighbors/%d", a),
			fmt.Sprintf("/v1/graph/neighbors/%d?class=provider", a),
			fmt.Sprintf("/v1/graph/neighbors/%d?class=sibling", a),
			fmt.Sprintf("/v1/graph/neighbors/%d?class=transit", a),
			fmt.Sprintf("/v1/graph/upstreams/%d", a),
			fmt.Sprintf("/v1/graph/cone/%d", a),
		)
	}
	for i := 0; i+1 < len(asns); i++ {
		paths = append(paths, fmt.Sprintf("/v1/graph/path?from=%d&to=%d", asns[i], asns[i+1]))
	}
	return paths
}

// singleGet replays a path against the single-process reference server.
func singleGet(srv *serve.Server, path string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

// TestGraphByteIdentityAcrossShardCounts is the fleet acceptance check:
// every /v1/graph/* answer — bodies, statuses and X-Generation — must
// be byte-identical between a single-process server and 1-, 2- and
// 4-shard router fleets, for each seed, including pinned generations
// and after two two-phase flips.
func TestGraphByteIdentityAcrossShardCounts(t *testing.T) {
	seeds := []uint64{7, 21, 42}
	shardCounts := []int{1, 2, 4}
	if testing.Short() {
		seeds = seeds[len(seeds)-1:]
		shardCounts = []int{2}
	}
	const scale = 0.05
	for _, seed := range seeds {
		// The single-process reference: the same snapshot store a
		// cmd/serve instance would run.
		refStore := snapshot.New(snapshot.Options{
			Base:   stateowned.Config{Seed: seed, Scale: scale},
			Retain: 8,
		})
		ref := serve.NewDynamic(refStore.Source(), serve.Options{})

		topo := refStore.Current().Result.Topology
		n := topo.NumASes()
		asns := []world.ASN{topo.ASNAt(0), topo.ASNAt(n / 2), topo.ASNAt(n - 1)}
		probes := graphProbePaths(asns)

		// All fleets share the one reference, so they advance in step with
		// it: compare everything at generation 0, then flip everything
		// twice, then compare again (pinned replays included).
		fleets := make([]*testFleet, len(shardCounts))
		for i, shards := range shardCounts {
			fleets[i] = buildFleet(t, fleetConfig{seed: seed, scale: scale, shards: shards, retain: 8})
		}
		compare := func(stage string, paths []string) {
			t.Helper()
			for i, tf := range fleets {
				for _, path := range paths {
					want := singleGet(ref, path)
					got := tf.get(path)
					if got.Code != want.Code {
						t.Fatalf("seed %d, %d shards, %s: GET %s status %d, single-process %d",
							seed, shardCounts[i], stage, path, got.Code, want.Code)
					}
					if got.Body.String() != want.Body.String() {
						t.Fatalf("seed %d, %d shards, %s: GET %s body diverged:\n fleet: %s\nsingle: %s",
							seed, shardCounts[i], stage, path, got.Body, want.Body)
					}
					if g, w := got.Header().Get(serve.GenerationHeader), want.Header().Get(serve.GenerationHeader); g != w {
						t.Fatalf("seed %d, %d shards, %s: GET %s X-Generation %q, single-process %q",
							seed, shardCounts[i], stage, path, g, w)
					}
				}
			}
		}
		compare("generation 0", probes)

		// Two two-phase flips: the reference store advances in step with
		// every fleet's coordinator.
		for flip := 1; flip <= 2; flip++ {
			if g := refStore.Advance(); g == nil {
				t.Fatalf("seed %d: reference store quarantined generation %d", seed, flip)
			}
			for i, tf := range fleets {
				gen, err := tf.coord.FlipOnce(context.Background())
				if err != nil {
					t.Fatalf("seed %d, %d shards: flip %d: %v", seed, shardCounts[i], flip, err)
				}
				if gen != flip {
					t.Fatalf("seed %d, %d shards: flip %d landed on generation %d", seed, shardCounts[i], flip, gen)
				}
			}
		}
		compare("after two flips", probes)

		// Pinned replays: explicit ?gen= must time-travel identically,
		// and a malformed pin must produce the identical 400 envelope.
		a := asns[0]
		pinned := []string{
			fmt.Sprintf("/v1/graph/cone/%d?gen=0", a),
			fmt.Sprintf("/v1/graph/upstreams/%d?gen=1", a),
			fmt.Sprintf("/v1/graph/neighbors/%d?gen=2&class=customer", a),
			fmt.Sprintf("/v1/graph/cone/%d?gen=99", a),
			fmt.Sprintf("/v1/graph/cone/%d?gen=abc", a),
			fmt.Sprintf("/v1/graph/path?from=%d&to=%d&gen=0", a, asns[1]),
		}
		compare("pinned generations", pinned)
	}
}
