package fleet

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"stateowned/internal/serve"
)

// Router-overhead benchmarks: the same requests against a 2-shard
// in-process fleet (router → handler transport → shard) and against a
// single-process server over the identical generation. The delta is
// the price of the front door — scatter, coherence check, merge — with
// no real network underneath, so it isolates the router's own work.

func benchPaths(tb testing.TB, tf *testFleet) (asnPath0, countryPath, searchPath string) {
	tb.Helper()
	a := tf.asnOnShard(tb, 0)
	cc := tf.shards[0].Store().Current().World.Countries[0]
	return asnPath(a), "/v1/country/" + cc, "/v1/search?name=telecom"
}

func benchFleet(b *testing.B) *testFleet {
	return buildFleet(b, fleetConfig{shards: 2})
}

func benchRequest(b *testing.B, h http.Handler, path string) {
	b.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("%s: %d %s", path, rec.Code, rec.Body.String())
		}
	}
}

func BenchmarkRouterASN(b *testing.B) {
	tf := benchFleet(b)
	path, _, _ := benchPaths(b, tf)
	benchRequest(b, tf.router, path)
}

func BenchmarkSingleASN(b *testing.B) {
	tf := benchFleet(b)
	path, _, _ := benchPaths(b, tf)
	single := serve.NewDynamic(shardStore(fleetConfig{seed: 42, scale: 0.05, retain: 8}).Source(), serve.Options{})
	benchRequest(b, single, path)
}

func BenchmarkRouterCountry(b *testing.B) {
	tf := benchFleet(b)
	_, path, _ := benchPaths(b, tf)
	benchRequest(b, tf.router, path)
}

func BenchmarkSingleCountry(b *testing.B) {
	tf := benchFleet(b)
	_, path, _ := benchPaths(b, tf)
	single := serve.NewDynamic(shardStore(fleetConfig{seed: 42, scale: 0.05, retain: 8}).Source(), serve.Options{})
	benchRequest(b, single, path)
}

func BenchmarkRouterSearch(b *testing.B) {
	tf := benchFleet(b)
	_, _, path := benchPaths(b, tf)
	benchRequest(b, tf.router, path)
}

func BenchmarkSingleSearch(b *testing.B) {
	tf := benchFleet(b)
	_, _, path := benchPaths(b, tf)
	single := serve.NewDynamic(shardStore(fleetConfig{seed: 42, scale: 0.05, retain: 8}).Source(), serve.Options{})
	benchRequest(b, single, path)
}
