package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stateowned/internal/nameutil"
	"stateowned/internal/runner"
	"stateowned/internal/serve"
	"stateowned/internal/world"
)

// ShardsFailedHeader names the shards whose legs were lost on a
// degraded (206) or exhausted (503) fan-out, comma-separated.
const ShardsFailedHeader = "X-Shards-Failed"

// Router fan-out defaults.
const (
	// DefaultRequestTimeout is the router's per-request budget.
	DefaultRequestTimeout = 2 * time.Second
	// DefaultBreakerProbeEvery is how often an open breaker lets a probe
	// leg through (every Nth denial) so a recovered shard is rediscovered
	// without waiting for an operator.
	DefaultBreakerProbeEvery = 8
)

// Leg-failure sentinels (classified, never written to the wire).
var (
	errBreakerOpen = errors.New("fleet: shard breaker open")
	errLegDeadline = errors.New("fleet: leg deadline exceeded")
)

// RouterOptions configures a Router.
type RouterOptions struct {
	// Partition is the fleet's partition function; Shards must hold one
	// client per partition shard, in shard order.
	Partition Partition
	Shards    []ShardClient
	// InitialGen is the committed fleet generation the router starts
	// pinning (normally adopted from Bootstrap).
	InitialGen int

	// Admission bounds router-level concurrency; nil admits everything.
	Admission *serve.AdmissionConfig

	// RequestTimeout is the full-request budget (0 = 2s). LegTimeout is
	// the per-shard leg deadline carved from it (0 = RequestTimeout/2) —
	// a leg that misses it is a failed leg, not a stalled request.
	// HedgeAfter is how long a leg waits before duplicating itself to
	// the same shard (0 = LegTimeout/4); transport-level errors hedge
	// immediately.
	RequestTimeout time.Duration
	LegTimeout     time.Duration
	HedgeAfter     time.Duration

	// BreakerThreshold opens a shard's circuit after that many
	// consecutive transport failures (0 = runner default of 4);
	// BreakerProbeEvery lets every Nth denied leg through as a probe
	// (0 = 8).
	BreakerThreshold  int
	BreakerProbeEvery int

	// SearchLimit caps /v1/search results (<= 0 = 10); shards in the
	// same fleet must be configured with the same limit for the merged
	// top-K to equal the single-process top-K.
	SearchLimit int

	// After is the injectable timer all router waits run on (nil =
	// time.After); tests drive hedging, leg deadlines and admission on a
	// virtual clock through it.
	After serve.After

	// Lifecycle carries the listener hardening for Serve.
	Lifecycle serve.LifecycleOptions
}

// Router is the fleet's front door. It owns the committed fleet
// generation: every shard leg — fast path included — is pinned to it
// with ?gen=, and a leg answering from any other generation is
// discarded as incoherent, so no response ever mixes generations even
// while a two-phase flip is mid-flight. Around that coherence core it
// wraps the fan-out robustness: per-shard circuit breakers with probe
// recovery, per-leg deadlines, one hedged retry, partial (206)
// envelopes for minority leg loss, and router-level admission shedding.
type Router struct {
	part       Partition
	shards     []*shardState
	gen        atomic.Int64
	limiter    *serve.Limiter
	metrics    Metrics
	mux        *http.ServeMux
	after      serve.After
	legTimeout time.Duration
	hedgeAfter time.Duration
	probeEvery int
	searchLim  int
	life       serve.LifecycleOptions
	rr         atomic.Uint64              // any-shard rotation cursor
	flip       atomic.Pointer[FlipStatus] // coordinator's last report
}

// shardState is the router's per-shard fan-out state: the client plus a
// mutex-wrapped circuit breaker (runner.Breaker is not goroutine-safe)
// with probe-through recovery.
type shardState struct {
	client ShardClient

	mu      sync.Mutex
	br      *runner.Breaker
	denials int
}

func (ss *shardState) allow(probeEvery int) bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.br.Allow() {
		return true
	}
	ss.denials++
	return ss.denials%probeEvery == 0
}

func (ss *shardState) success() {
	ss.mu.Lock()
	ss.br.Success()
	ss.denials = 0
	ss.mu.Unlock()
}

func (ss *shardState) failure() {
	ss.mu.Lock()
	ss.br.Failure()
	ss.mu.Unlock()
}

func (ss *shardState) open() bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.br.Open()
}

// NewRouter assembles the fleet router.
func NewRouter(opts RouterOptions) (*Router, error) {
	if len(opts.Shards) != opts.Partition.Shards {
		return nil, fmt.Errorf("fleet: %d shard clients for a %d-shard partition",
			len(opts.Shards), opts.Partition.Shards)
	}
	rt := &Router{
		part:       opts.Partition,
		after:      opts.After,
		legTimeout: opts.LegTimeout,
		hedgeAfter: opts.HedgeAfter,
		probeEvery: opts.BreakerProbeEvery,
		searchLim:  opts.SearchLimit,
		life:       opts.Lifecycle,
		mux:        http.NewServeMux(),
	}
	reqTimeout := opts.RequestTimeout
	if reqTimeout <= 0 {
		reqTimeout = DefaultRequestTimeout
	}
	if rt.legTimeout <= 0 {
		rt.legTimeout = reqTimeout / 2
	}
	if rt.hedgeAfter <= 0 {
		rt.hedgeAfter = rt.legTimeout / 4
	}
	if rt.probeEvery <= 0 {
		rt.probeEvery = DefaultBreakerProbeEvery
	}
	if rt.searchLim <= 0 {
		rt.searchLim = 10
	}
	if rt.after == nil {
		rt.after = time.After
	}
	if opts.Admission != nil {
		rt.limiter = serve.NewLimiter(*opts.Admission, rt.after)
	}
	for i, c := range opts.Shards {
		c.Index = i
		rt.shards = append(rt.shards, &shardState{
			client: c,
			br:     runner.NewBreaker(opts.BreakerThreshold),
		})
	}
	rt.gen.Store(int64(opts.InitialGen))
	rt.mux.HandleFunc("GET /v1/asn/{asn}", rt.handle(rt.handleASN))
	rt.mux.HandleFunc("GET /v1/country/{cc}", rt.handle(rt.handleCountry))
	rt.mux.HandleFunc("GET /v1/org/{id}", rt.handle(rt.handleOrg))
	rt.mux.HandleFunc("GET /v1/search", rt.handle(rt.handleSearch))
	rt.mux.HandleFunc("GET /v1/dataset", rt.handle(rt.handleDataset))
	rt.mux.HandleFunc("GET /v1/diff", rt.handle(rt.handleDiff))
	rt.mux.HandleFunc("GET /v1/graph/neighbors/{asn}", rt.handle(func(r *http.Request) routerResponse {
		return rt.handleGraph(r, "/v1/graph/neighbors/"+url.PathEscape(r.PathValue("asn")))
	}))
	rt.mux.HandleFunc("GET /v1/graph/upstreams/{asn}", rt.handle(func(r *http.Request) routerResponse {
		return rt.handleGraph(r, "/v1/graph/upstreams/"+url.PathEscape(r.PathValue("asn")))
	}))
	rt.mux.HandleFunc("GET /v1/graph/cone/{asn}", rt.handle(func(r *http.Request) routerResponse {
		return rt.handleGraph(r, "/v1/graph/cone/"+url.PathEscape(r.PathValue("asn")))
	}))
	rt.mux.HandleFunc("GET /v1/graph/path", rt.handle(func(r *http.Request) routerResponse {
		return rt.handleGraph(r, "/v1/graph/path")
	}))
	// Hijack detections are global observations (like graph answers),
	// served from any healthy shard's full plane.
	rt.mux.HandleFunc("GET /v1/hijacks", rt.handle(func(r *http.Request) routerResponse {
		return rt.handleGraph(r, "/v1/hijacks")
	}))
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /readyz", rt.handleReadyz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		serve.WriteError(w, http.StatusNotFound, fmt.Sprintf("no route for %s %s", r.Method, r.URL.Path))
	})
	return rt, nil
}

// Gen returns the committed fleet generation the router is pinning.
func (rt *Router) Gen() int { return int(rt.gen.Load()) }

// SetGen flips the router to a newly committed fleet generation — the
// coordinator's final act of a successful two-phase reload. One atomic
// store: requests in flight keep their already-resolved pin.
func (rt *Router) SetGen(gen int) { rt.gen.Store(int64(gen)) }

// Metrics exposes the router's fleet accounting.
func (rt *Router) Metrics() *Metrics { return &rt.metrics }

// setFlipStatus records the coordinator's latest flip report for
// /readyz.
func (rt *Router) setFlipStatus(st FlipStatus) { rt.flip.Store(&st) }

// ServeHTTP routes one request.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Serve runs the router on ln with the hardened lifecycle until ctx is
// canceled.
func (rt *Router) Serve(ctx context.Context, ln net.Listener) error {
	return serve.ServeHandler(ctx, ln, rt, rt.life)
}

// routerResponse is a materialized router answer; handlers build one
// and only the spine writes, mirroring the single-process server's
// containment discipline.
type routerResponse struct {
	status       int
	body         []byte
	gen          string
	shardsFailed []int
	retryAfter   int
}

func errRouterResponse(status int, msg string) routerResponse {
	body, _ := serve.JSONBody(serve.ErrorBody{Error: msg, Status: status})
	return routerResponse{status: status, body: body}
}

// handle is the router's containment spine: admission shedding, panic
// isolation, single-writer response emission.
func (rt *Router) handle(fn func(*http.Request) routerResponse) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rt.metrics.requests.Add(1)
		release, verdict := rt.limiter.Acquire(r.Context().Done())
		if verdict != serve.Admitted {
			rt.metrics.shed.Add(1)
			resp := errRouterResponse(http.StatusServiceUnavailable, "router overloaded, retry later")
			resp.retryAfter = rt.limiter.RetryAfterSeconds()
			rt.write(w, resp)
			return
		}
		defer release()
		resp := func() (resp routerResponse) {
			defer func() {
				if p := recover(); p != nil {
					resp = errRouterResponse(http.StatusInternalServerError, "internal error")
				}
			}()
			return fn(r)
		}()
		rt.write(w, resp)
	}
}

// write emits a materialized response.
func (rt *Router) write(w http.ResponseWriter, resp routerResponse) {
	w.Header().Set("Content-Type", "application/json")
	if resp.gen != "" {
		w.Header().Set(serve.GenerationHeader, resp.gen)
	}
	if len(resp.shardsFailed) > 0 {
		parts := make([]string, len(resp.shardsFailed))
		for i, s := range resp.shardsFailed {
			parts[i] = strconv.Itoa(s)
		}
		w.Header().Set(ShardsFailedHeader, strings.Join(parts, ","))
		rt.metrics.partials.Add(1)
	}
	if resp.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(resp.retryAfter))
	}
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body)
}

// pin resolves the generation this request's legs are pinned to: the
// client's explicit ?gen= if present (time travel within the retention
// ring), the router's committed fleet generation otherwise. The second
// return is the already-formatted query value.
func (rt *Router) pin(r *http.Request) (int, string, *routerResponse) {
	if raw := r.URL.Query().Get("gen"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			resp := errRouterResponse(http.StatusBadRequest, fmt.Sprintf("invalid generation %q", raw))
			return 0, "", &resp
		}
		return n, raw, nil
	}
	g := rt.Gen()
	return g, strconv.Itoa(g), nil
}

// --- leg fetching ----------------------------------------------------------

// doGet runs one HTTP attempt against a shard.
func (rt *Router) doGet(ctx context.Context, shard int, path string, hedged bool) leg {
	resp, body, err := rt.shards[shard].client.Get(ctx, path)
	if err != nil {
		return leg{shard: shard, err: err, hedged: hedged}
	}
	l := leg{
		shard:  shard,
		status: resp.StatusCode,
		body:   body,
		gen:    resp.Header.Get(serve.GenerationHeader),
		hedged: hedged,
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if n, err := strconv.Atoi(ra); err == nil {
			l.retryAfter = n
		}
	}
	return l
}

// fetchLeg runs one shard leg of a fan-out: circuit-breaker gate, a
// deadline carved from the request budget, and at most one hedged
// retry — fired early on a transport error, or after the hedge delay
// when the first attempt is merely slow. Any HTTP response (including a
// 503 shed) closes the breaker: the shard is alive and talking.
// Transport errors and leg deadlines feed it.
func (rt *Router) fetchLeg(ctx context.Context, shard int, path string) leg {
	rt.metrics.legs.Add(1)
	ss := rt.shards[shard]
	if !ss.allow(rt.probeEvery) {
		rt.metrics.breakerDenials.Add(1)
		rt.metrics.legFailures.Add(1)
		return leg{shard: shard, err: errBreakerOpen}
	}
	legCtx, cancel := context.WithCancel(ctx)
	defer cancel() // unblocks any attempt still in flight when we return
	resc := make(chan leg, 2)
	launch := func(hedged bool) {
		go func() { resc <- rt.doGet(legCtx, shard, path, hedged) }()
	}
	launch(false)
	outstanding, hedged := 1, false
	hedgeCh := rt.after(rt.hedgeAfter)
	deadline := rt.after(rt.legTimeout)
	var lastErr leg
	for {
		select {
		case l := <-resc:
			outstanding--
			if l.err == nil {
				ss.success()
				return l
			}
			lastErr = l
			if !hedged {
				hedged = true
				rt.metrics.hedges.Add(1)
				launch(true)
				outstanding++
				continue
			}
			if outstanding == 0 {
				ss.failure()
				rt.metrics.legFailures.Add(1)
				return lastErr
			}
		case <-hedgeCh:
			hedgeCh = nil
			if !hedged {
				hedged = true
				rt.metrics.hedges.Add(1)
				launch(true)
				outstanding++
			}
		case <-deadline:
			ss.failure()
			rt.metrics.legFailures.Add(1)
			return leg{shard: shard, err: errLegDeadline}
		case <-ctx.Done():
			rt.metrics.legFailures.Add(1)
			return leg{shard: shard, err: ctx.Err()}
		}
	}
}

// scatter fans one path out to every shard concurrently.
func (rt *Router) scatter(ctx context.Context, path string) []leg {
	rt.metrics.fanouts.Add(1)
	legs := make([]leg, len(rt.shards))
	var wg sync.WaitGroup
	for i := range rt.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			legs[i] = rt.fetchLeg(ctx, i, path)
		}(i)
	}
	wg.Wait()
	return legs
}

// anyShard asks shards in rotation until one yields an HTTP response —
// for fleet-wide answers (/v1/dataset, /v1/diff) any single shard's
// full plane can serve. pin non-empty additionally requires coherence.
//
// A 404 is not the fleet's answer yet: after divergent recovery, shards
// legitimately hold different archive histories (one disk died earlier
// than another), so "I don't hold that generation/span" from one shard
// may still be served by the next. Rotation continues past 404s and the
// first one is returned only when no shard can do better — the fleet
// answers 404 exactly when nobody holds it, independent of rotation
// phase. Other statuses (400, 410, 503…) are deterministic verdicts
// about the request itself and pass through from the first responder.
func (rt *Router) anyShard(ctx context.Context, path, pin string) (leg, []int) {
	start := int(rt.rr.Add(1))
	var failed []int
	var miss *leg
	for i := 0; i < len(rt.shards); i++ {
		shard := (start + i) % len(rt.shards)
		l := rt.fetchLeg(ctx, shard, path)
		if l.err != nil {
			failed = append(failed, shard)
			continue
		}
		if pin != "" && l.status == http.StatusOK && l.gen != pin {
			failed = append(failed, shard)
			continue
		}
		if l.status == http.StatusNotFound {
			if miss == nil {
				miss = &l
			}
			continue
		}
		sort.Ints(failed)
		return l, failed
	}
	sort.Ints(failed) // rotation order is arbitrary; the wire contract is ascending
	if miss != nil {
		return *miss, failed
	}
	return leg{err: errors.New("fleet: no shard answered")}, failed
}

// --- endpoint handlers -----------------------------------------------------

// handleASN is the single-shard fast path: the partition function names
// the one shard that owns the ASN, and its (pinned, coherent) answer is
// passed through byte for byte.
func (rt *Router) handleASN(r *http.Request) routerResponse {
	raw := r.PathValue("asn")
	n, err := strconv.ParseUint(raw, 10, 32)
	if err != nil || n == 0 {
		return errRouterResponse(http.StatusBadRequest, fmt.Sprintf("invalid ASN %q", raw))
	}
	_, pinStr, errResp := rt.pin(r)
	if errResp != nil {
		return *errResp
	}
	shard := rt.part.ShardOf(world.ASN(n))
	l := rt.fetchLeg(r.Context(), shard, "/v1/asn/"+raw+"?gen="+pinStr)
	switch {
	case l.err != nil:
		resp := errRouterResponse(http.StatusServiceUnavailable,
			fmt.Sprintf("shard %d unavailable", shard))
		resp.shardsFailed = []int{shard}
		return resp
	case l.status == http.StatusOK && l.gen != pinStr:
		resp := errRouterResponse(http.StatusServiceUnavailable,
			fmt.Sprintf("shard %d answered generation %s, pinned %s", shard, l.gen, pinStr))
		resp.shardsFailed = []int{shard}
		return resp
	default:
		return routerResponse{status: l.status, body: l.body, gen: l.gen, retryAfter: l.retryAfter}
	}
}

// handleCountry scatter-gathers every shard's slice of a country and
// merges them deterministically.
func (rt *Router) handleCountry(r *http.Request) routerResponse {
	cc := serve.CanonicalCC(r.PathValue("cc"))
	if len(cc) != 2 || cc[0] < 'A' || cc[0] > 'Z' || cc[1] < 'A' || cc[1] > 'Z' {
		return errRouterResponse(http.StatusBadRequest, fmt.Sprintf("invalid country code %q", r.PathValue("cc")))
	}
	_, pinStr, errResp := rt.pin(r)
	if errResp != nil {
		return *errResp
	}
	legs := rt.scatter(r.Context(), "/v1/country/"+cc+"?gen="+pinStr)
	cls := classify(legs, pinStr)
	if cls.detErr != nil {
		return routerResponse{status: cls.detErr.status, body: cls.detErr.body, gen: cls.detErr.gen}
	}
	if len(cls.ok) == 0 {
		return rt.allLegsLost(cls)
	}
	body, err := mergeCountry(cc, cls.ok, cls.envelope())
	if err != nil {
		return errRouterResponse(http.StatusInternalServerError, "merging country responses")
	}
	return rt.mergedResponse(body, pinStr, cls)
}

// handleOrg scatters an organization lookup; the owning shards carry
// whole replicas, so the first coherent 200 is the complete answer.
func (rt *Router) handleOrg(r *http.Request) routerResponse {
	_, pinStr, errResp := rt.pin(r)
	if errResp != nil {
		return *errResp
	}
	legs := rt.scatter(r.Context(), "/v1/org/"+url.PathEscape(r.PathValue("id"))+"?gen="+pinStr)
	cls := classify(legs, pinStr)
	if len(cls.ok) > 0 {
		// A replica is the whole record: one coherent 200 is complete even
		// if other shards were lost.
		l := cls.ok[0]
		return routerResponse{status: l.status, body: l.body, gen: l.gen}
	}
	if len(cls.failed) > 0 {
		// The org may have lived on a lost shard; "not found" would be a
		// lie. Degrade explicitly.
		return rt.allLegsLost(cls)
	}
	if cls.detErr != nil {
		return routerResponse{status: cls.detErr.status, body: cls.detErr.body, gen: cls.detErr.gen}
	}
	return errRouterResponse(http.StatusServiceUnavailable, "no shard answered")
}

// handleSearch scatter-gathers the fuzzy name search and merges the
// per-shard top-K into the exact global top-K.
func (rt *Router) handleSearch(r *http.Request) routerResponse {
	q := r.URL.Query()
	name := q.Get("name")
	if nameutil.Normalize(name) == "" {
		return errRouterResponse(http.StatusBadRequest, "missing or empty ?name= query")
	}
	limit := rt.searchLim
	if rawLimit := q.Get("limit"); rawLimit != "" {
		n, err := strconv.Atoi(rawLimit)
		if err != nil || n <= 0 {
			return errRouterResponse(http.StatusBadRequest, fmt.Sprintf("invalid ?limit=%s", rawLimit))
		}
		if n < limit {
			limit = n
		}
	}
	_, pinStr, errResp := rt.pin(r)
	if errResp != nil {
		return *errResp
	}
	vals := url.Values{}
	vals.Set("name", name)
	vals.Set("limit", strconv.Itoa(limit))
	vals.Set("gen", pinStr)
	legs := rt.scatter(r.Context(), "/v1/search?"+vals.Encode())
	cls := classify(legs, pinStr)
	if cls.detErr != nil {
		return routerResponse{status: cls.detErr.status, body: cls.detErr.body, gen: cls.detErr.gen}
	}
	if len(cls.ok) == 0 {
		return rt.allLegsLost(cls)
	}
	body, err := mergeSearch(cls.ok, limit, cls.envelope())
	if err != nil {
		return errRouterResponse(http.StatusInternalServerError, "merging search responses")
	}
	return rt.mergedResponse(body, pinStr, cls)
}

// handleDataset routes the full Listing-1 export to any healthy shard's
// full plane — every shard builds the identical generation, so one
// shard's export is the fleet's.
func (rt *Router) handleDataset(r *http.Request) routerResponse {
	_, pinStr, errResp := rt.pin(r)
	if errResp != nil {
		return *errResp
	}
	l, failed := rt.anyShard(r.Context(), FullPrefix+"/v1/dataset?gen="+pinStr, pinStr)
	if l.err != nil {
		resp := errRouterResponse(http.StatusServiceUnavailable, "no shard could serve the dataset")
		resp.shardsFailed = failed
		resp.retryAfter = 1
		return resp
	}
	return routerResponse{status: l.status, body: l.body, gen: l.gen, retryAfter: l.retryAfter}
}

// handleDiff routes the churn audit to any healthy shard's full plane;
// ?from= and ?to= name the generations, so the answer is deterministic
// regardless of which shard runs it.
func (rt *Router) handleDiff(r *http.Request) routerResponse {
	path := FullPrefix + "/v1/diff"
	if raw := r.URL.RawQuery; raw != "" {
		path += "?" + raw
	}
	l, failed := rt.anyShard(r.Context(), path, "")
	if l.err != nil {
		resp := errRouterResponse(http.StatusServiceUnavailable, "no shard could serve the diff")
		resp.shardsFailed = failed
		resp.retryAfter = 1
		return resp
	}
	return routerResponse{status: l.status, body: l.body, gen: l.gen, retryAfter: l.retryAfter}
}

// handleGraph routes one /v1/graph/* query to any healthy shard's full
// plane — graph answers are global (relationships cross partition
// boundaries), so they must never be range-carved; every shard holds
// the identical compiled graph. When the client did not pin a
// generation the router pins its committed fleet generation, so a
// two-phase flip mid-request cannot mix generations. An explicit ?gen=
// (even a malformed or empty one) passes through raw: the shard's own
// pinning makes the answer deterministic, and its error envelopes stay
// byte-identical to single-process serving.
func (rt *Router) handleGraph(r *http.Request, subpath string) routerResponse {
	q := r.URL.Query()
	pin := ""
	if _, ok := q["gen"]; !ok {
		pin = strconv.Itoa(rt.Gen())
		q.Set("gen", pin)
	}
	path := FullPrefix + subpath
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	l, failed := rt.anyShard(r.Context(), path, pin)
	if l.err != nil {
		resp := errRouterResponse(http.StatusServiceUnavailable, "no shard could serve the graph query")
		resp.shardsFailed = failed
		resp.retryAfter = 1
		return resp
	}
	return routerResponse{status: l.status, body: l.body, gen: l.gen, retryAfter: l.retryAfter}
}

// mergedResponse wraps a merged body: 200 when every leg contributed,
// 206 + X-Shards-Failed when a minority was lost.
func (rt *Router) mergedResponse(body []byte, pin string, cls classified) routerResponse {
	resp := routerResponse{status: http.StatusOK, body: body, gen: pin}
	if len(cls.failed) > 0 {
		resp.status = http.StatusPartialContent
		resp.shardsFailed = cls.failed
		resp.retryAfter = cls.retryAfter
	}
	return resp
}

// allLegsLost is the every-leg-failed verdict: an explicit 503 naming
// the lost shards — never a fabricated empty answer, never a 500.
func (rt *Router) allLegsLost(cls classified) routerResponse {
	resp := errRouterResponse(http.StatusServiceUnavailable, "all shards unavailable")
	resp.shardsFailed = cls.failed
	resp.retryAfter = cls.retryAfter
	if resp.retryAfter <= 0 {
		resp.retryAfter = 1
	}
	return resp
}

// --- ops endpoints ---------------------------------------------------------

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	serve.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// RouterStatus is the /readyz body: the committed fleet generation, the
// partition, per-shard breaker state and the coordinator's latest flip
// report.
type RouterStatus struct {
	Gen          int         `json:"gen"`
	Partition    Partition   `json:"partition"`
	BreakersOpen []int       `json:"breakers_open,omitempty"`
	Flip         *FlipStatus `json:"flip,omitempty"`
}

func (rt *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	st := RouterStatus{Gen: rt.Gen(), Partition: rt.part, Flip: rt.flip.Load()}
	for i, ss := range rt.shards {
		if ss.open() {
			st.BreakersOpen = append(st.BreakersOpen, i)
		}
	}
	// Ready as long as we can still answer: every breaker open means no
	// leg can succeed.
	status := http.StatusOK
	if len(st.BreakersOpen) == len(rt.shards) && len(rt.shards) > 0 {
		status = http.StatusServiceUnavailable
	}
	serve.WriteJSON(w, status, st)
}

// RouterMetrics is the /metrics body.
type RouterMetrics struct {
	Fleet     MetricsSnapshot      `json:"fleet"`
	Admission serve.AdmissionStats `json:"admission"`
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	serve.WriteJSON(w, http.StatusOK, RouterMetrics{
		Fleet:     rt.metrics.Snapshot(),
		Admission: rt.limiter.Stats(),
	})
}
