package fleet

import (
	"context"
	"fmt"
	"sync"
	"time"

	"stateowned/internal/runner"
)

// FlipStatus is the coordinator's public report: how far the fleet has
// flipped and how the last attempt went. It is what /readyz shows for
// the reload plane.
type FlipStatus struct {
	// Gen is the committed fleet generation after the last successful
	// flip.
	Gen int `json:"gen"`
	// Flips counts successful two-phase reloads; Aborts counts flips
	// quarantined at stage time (some shard failed validation, everyone
	// kept the previous generation).
	Flips  uint64 `json:"flips"`
	Aborts uint64 `json:"aborts"`
	// ConsecutiveFailures counts failed flips since the last success;
	// LastError describes the newest one. GaveUp means the reload loop
	// exhausted its failure budget and stopped — the fleet serves its
	// last committed generation indefinitely.
	ConsecutiveFailures int    `json:"consecutive_failures,omitempty"`
	LastError           string `json:"last_error,omitempty"`
	GaveUp              bool   `json:"gave_up,omitempty"`
}

// CoordinatorOptions configures the fleet reload coordinator.
type CoordinatorOptions struct {
	// ControlTimeout bounds each control-plane call (0 = 30s; stage
	// calls build a full generation, so this is a build budget, not a
	// ping budget).
	ControlTimeout time.Duration
	// Backoff spaces retries after failed flips (zero value =
	// runner.DefaultBackoff); MaxFailures stops the loop after that many
	// consecutive failed flips (0 = never give up).
	Backoff     runner.Backoff
	MaxFailures int
	// Sleep is the injectable wait (nil = time.Sleep-backed); tests run
	// the reload loop on virtual time through it.
	Sleep func(ctx context.Context, d time.Duration)
}

// Coordinator drives the fleet's generation-coherent two-phase reloads:
// phase one stages generation g on every shard (each builds it behind
// its own validation gate and holds it unpublished), phase two commits
// everywhere, and only after unanimous commit acks does the router's
// pin flip to g. Any stage failure aborts the whole flip — every shard
// keeps serving g-1, so a poisoned build can never split the fleet. A
// commit ack lost after phase two began leaves the router pinned to
// g-1, which every shard still retains: coherent, and converged by the
// next (idempotent) flip attempt.
type Coordinator struct {
	router *Router
	shards []ShardClient
	opts   CoordinatorOptions

	mu     sync.Mutex
	status FlipStatus
}

// NewCoordinator builds a coordinator over the router's fleet. The
// shard clients are the control-plane handles (usually the same
// base URLs the router fans out to).
func NewCoordinator(router *Router, shards []ShardClient, opts CoordinatorOptions) *Coordinator {
	if opts.ControlTimeout <= 0 {
		opts.ControlTimeout = 30 * time.Second
	}
	if opts.Backoff == (runner.Backoff{}) {
		opts.Backoff = runner.DefaultBackoff()
	}
	if opts.Sleep == nil {
		opts.Sleep = func(ctx context.Context, d time.Duration) {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
			}
		}
	}
	c := &Coordinator{router: router, shards: shards, opts: opts}
	c.status.Gen = router.Gen()
	c.publish()
	return c
}

// Status snapshots the flip report.
func (c *Coordinator) Status() FlipStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.status
}

// publish pushes the current status to the router's /readyz.
func (c *Coordinator) publish() {
	c.router.setFlipStatus(c.status)
}

// forEach runs one control call against every shard concurrently and
// returns the first error by shard order (so failure reports are
// deterministic).
func (c *Coordinator) forEach(ctx context.Context, call func(ctx context.Context, sc ShardClient) error) error {
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, sc := range c.shards {
		wg.Add(1)
		go func(i int, sc ShardClient) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, c.opts.ControlTimeout)
			defer cancel()
			errs[i] = call(cctx, sc)
		}(i, sc)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// FlipOnce attempts one two-phase reload to the next generation and
// returns the committed generation on success.
//
// Failure handling is asymmetric by design. A stage failure is a clean
// quarantine: abort everywhere, nobody moved, the fleet serves g-1
// exactly as before. A commit failure (crash or lost ack after phase
// two began) must NOT abort — some shards may already have published
// g — so the router simply keeps pinning g-1, which every shard still
// retains in its ring; the fleet stays coherent on g-1 and the next
// attempt re-stages (no-op for shards already at g, idempotent ack)
// and re-commits until unanimity is reached.
func (c *Coordinator) FlipOnce(ctx context.Context) (int, error) {
	target := c.router.Gen() + 1

	// Phase one: everyone builds and validates g, nobody serves it.
	if err := c.forEach(ctx, func(ctx context.Context, sc ShardClient) error {
		_, err := sc.Stage(ctx, target)
		return err
	}); err != nil {
		// Quarantine fleet-wide: drop every staged copy of g.
		abortErr := c.forEach(ctx, func(ctx context.Context, sc ShardClient) error {
			_, aerr := sc.Abort(ctx, target)
			return aerr
		})
		c.recordFailure(target, fmt.Errorf("stage: %w", err), true)
		if abortErr != nil {
			return 0, fmt.Errorf("staging generation %d: %w (abort also failed: %v)", target, err, abortErr)
		}
		return 0, fmt.Errorf("staging generation %d: %w", target, err)
	}

	// Phase two: unanimous publish, then — and only then — the flip.
	if err := c.forEach(ctx, func(ctx context.Context, sc ShardClient) error {
		_, err := sc.Commit(ctx, target)
		return err
	}); err != nil {
		c.recordFailure(target, fmt.Errorf("commit: %w", err), false)
		return 0, fmt.Errorf("committing generation %d: %w", target, err)
	}

	c.router.SetGen(target)
	c.mu.Lock()
	c.status.Gen = target
	c.status.Flips++
	c.status.ConsecutiveFailures = 0
	c.status.LastError = ""
	c.status.GaveUp = false
	c.mu.Unlock()
	c.publish()
	return target, nil
}

// recordFailure books one failed flip attempt.
func (c *Coordinator) recordFailure(gen int, err error, aborted bool) {
	c.mu.Lock()
	c.status.ConsecutiveFailures++
	c.status.LastError = fmt.Sprintf("generation %d: %v", gen, err)
	if aborted {
		c.status.Aborts++
	}
	c.mu.Unlock()
	c.publish()
}

// gaveUp marks the loop stopped after exhausting its failure budget.
func (c *Coordinator) gaveUp() {
	c.mu.Lock()
	c.status.GaveUp = true
	c.mu.Unlock()
	c.publish()
}

// Run is the fleet reload loop: a flip attempt every `every`, backoff
// after failures, give-up after MaxFailures consecutive failures —
// the fleet-scope mirror of snapshot.Store.Reload.
func (c *Coordinator) Run(ctx context.Context, every time.Duration, logf func(format string, args ...any)) {
	for {
		delay := every
		st := c.Status()
		if st.ConsecutiveFailures > 0 {
			if c.opts.MaxFailures > 0 && st.ConsecutiveFailures >= c.opts.MaxFailures {
				c.gaveUp()
				if logf != nil {
					logf("fleet reload: giving up after %d consecutive failed flips (%s)",
						st.ConsecutiveFailures, st.LastError)
				}
				return
			}
			delay = every * time.Duration(c.opts.Backoff.Delay(st.ConsecutiveFailures))
		}
		c.opts.Sleep(ctx, delay)
		if ctx.Err() != nil {
			return
		}
		gen, err := c.FlipOnce(ctx)
		if logf != nil {
			if err != nil {
				logf("fleet reload: %v", err)
			} else {
				logf("fleet reload: flipped to generation %d", gen)
			}
		}
	}
}

// Bootstrap adopts a safe fleet generation from a running fleet: it
// fetches every shard's status, cross-checks identity (each shard's
// position and partition must match the router's), and pins the router
// to the lowest live generation — the only one guaranteed committed
// everywhere. Shards ahead of the pin (commits from a flip whose ack
// was lost) retain the pinned generation in their rings, so the fleet
// is immediately coherent; the next flip converges the stragglers.
func (c *Coordinator) Bootstrap(ctx context.Context) (int, error) {
	statuses := make([]ShardStatus, len(c.shards))
	if err := c.forEach(ctx, func(ctx context.Context, sc ShardClient) error {
		st, err := sc.Status(ctx)
		if err != nil {
			return err
		}
		statuses[sc.Index] = st
		return nil
	}); err != nil {
		return 0, fmt.Errorf("fleet bootstrap: %w", err)
	}
	adopt := -1
	for i, st := range statuses {
		if st.Shard != i {
			return 0, fmt.Errorf("fleet bootstrap: shard at position %d reports index %d", i, st.Shard)
		}
		if !st.Partition.Equal(c.router.part) {
			return 0, fmt.Errorf("fleet bootstrap: shard %d partition differs from router's", i)
		}
		if adopt == -1 || st.LiveGen < adopt {
			adopt = st.LiveGen
		}
	}
	if adopt < 0 {
		return 0, fmt.Errorf("fleet bootstrap: no shards")
	}
	for i, st := range statuses {
		retained := false
		for _, g := range st.Retained {
			if g == adopt {
				retained = true
				break
			}
		}
		if !retained {
			return 0, fmt.Errorf("fleet bootstrap: shard %d does not retain generation %d", i, adopt)
		}
	}
	// Shards with durable archives recovered independently; agreeing on
	// a generation *number* is not yet agreeing on its *bytes*. Every
	// archived dataset fingerprint for the adopted generation must
	// match across the fleet — a shard whose recovery landed on
	// different bytes (corrupted archive healed from a divergent build,
	// mismatched seeds) must be caught before the router pins to it.
	sum, sumShard := "", -1
	for i, st := range statuses {
		s, ok := st.DatasetSums[adopt]
		if !ok || s == "" {
			continue
		}
		if sum == "" {
			sum, sumShard = s, i
			continue
		}
		if s != sum {
			return 0, fmt.Errorf(
				"fleet bootstrap: recovered generation %d disagrees across shards: shard %d has dataset %s, shard %d has %s",
				adopt, sumShard, sum[:12], i, s[:12])
		}
	}
	c.router.SetGen(adopt)
	c.mu.Lock()
	c.status.Gen = adopt
	c.mu.Unlock()
	c.publish()
	return adopt, nil
}
