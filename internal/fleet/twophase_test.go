package fleet

import (
	"context"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
)

// TestTwoPhaseHappyFlip proves the basic coherent reload: stage
// everywhere, commit everywhere, flip — every shard live on the new
// generation and the router pinning it.
func TestTwoPhaseHappyFlip(t *testing.T) {
	tf := buildFleet(t, fleetConfig{shards: 2})
	gen, err := tf.coord.FlipOnce(context.Background())
	if err != nil || gen != 1 {
		t.Fatalf("FlipOnce = %d, %v", gen, err)
	}
	if g := tf.router.Gen(); g != 1 {
		t.Fatalf("router gen %d after flip", g)
	}
	for i, sh := range tf.shards {
		if live := sh.Store().Current().Gen; live != 1 {
			t.Fatalf("shard %d live gen %d after flip", i, live)
		}
		if staged := sh.Store().StagedGen(); staged != -1 {
			t.Fatalf("shard %d still holds staged gen %d after commit", i, staged)
		}
	}
	st := tf.coord.Status()
	if st.Flips != 1 || st.Gen != 1 || st.ConsecutiveFailures != 0 {
		t.Fatalf("flip status %+v", st)
	}
}

// TestTwoPhaseStageFailureQuarantinesFlip proves pillar one: one
// shard's build failing at stage time aborts the whole flip — no shard
// publishes, every shard (and the router) stays on the previous
// generation, and the staged build is discarded everywhere. A later
// clean flip succeeds.
func TestTwoPhaseStageFailureQuarantinesFlip(t *testing.T) {
	tf := buildFleet(t, fleetConfig{shards: 3})
	// Shard 2's build of generation 1 crashes — the snapshot gate turns
	// the panic into a quarantine, the stage call into a 409.
	tf.shards[2].Store().SetBuildHook(func(gen int) {
		if gen == 1 {
			panic("injected build crash")
		}
	})
	if _, err := tf.coord.FlipOnce(context.Background()); err == nil {
		t.Fatal("FlipOnce succeeded with a crashing shard build")
	} else if !strings.Contains(err.Error(), "staging generation 1") {
		t.Fatalf("unexpected flip error: %v", err)
	}
	if g := tf.router.Gen(); g != 0 {
		t.Fatalf("router flipped to %d after an aborted stage", g)
	}
	for i, sh := range tf.shards {
		if live := sh.Store().Current().Gen; live != 0 {
			t.Fatalf("shard %d advanced to %d despite the quarantined flip", i, live)
		}
		if staged := sh.Store().StagedGen(); staged != -1 {
			t.Fatalf("shard %d still holds staged gen %d after the abort", i, staged)
		}
	}
	st := tf.coord.Status()
	if st.Aborts != 1 || st.ConsecutiveFailures != 1 || st.LastError == "" {
		t.Fatalf("flip status after quarantine %+v", st)
	}
	// Requests keep answering coherently from generation 0 the whole time.
	rec := tf.get("/v1/dataset")
	if rec.Code != http.StatusOK || rec.Header().Get("X-Generation") != "0" {
		t.Fatalf("dataset during quarantine: %d gen %q", rec.Code, rec.Header().Get("X-Generation"))
	}

	// Clear the crash; the next flip converges the fleet to generation 1.
	tf.shards[2].Store().SetBuildHook(nil)
	if gen, err := tf.coord.FlipOnce(context.Background()); err != nil || gen != 1 {
		t.Fatalf("recovery FlipOnce = %d, %v", gen, err)
	}
	if st := tf.coord.Status(); st.ConsecutiveFailures != 0 || st.Gen != 1 {
		t.Fatalf("flip status after recovery %+v", st)
	}
}

// TestTwoPhaseCommitAckLostConverges proves the commit-phase failure
// contract: when a shard's commit ack is lost after phase two began,
// the router does NOT flip (it keeps pinning g-1, which every shard
// still retains — coherent), and the next flip attempt converges the
// fleet through the idempotent stage/commit path.
func TestTwoPhaseCommitAckLostConverges(t *testing.T) {
	tf := buildFleet(t, fleetConfig{shards: 2})
	// Lose shard 1's commit ack exactly once. The intercept runs on the
	// coordinator's parallel per-shard goroutines, so the one-shot flag
	// must be atomic.
	var failed atomic.Bool
	tf.transport.setIntercept(func(req *http.Request) (*http.Response, bool) {
		if req.Method == http.MethodPost &&
			req.URL.Host == "shard1" && req.URL.Path == CommitPath &&
			failed.CompareAndSwap(false, true) {
			return nil, true // transport error: the ack is lost
		}
		return nil, false
	})
	if _, err := tf.coord.FlipOnce(context.Background()); err == nil {
		t.Fatal("FlipOnce succeeded with a lost commit ack")
	}
	tf.transport.setIntercept(nil)

	// The fleet is now split (shard 0 live on 1, shard 1 on 0) but the
	// router still pins 0, which both shards retain — every answer stays
	// on one consistent generation.
	if g := tf.router.Gen(); g != 0 {
		t.Fatalf("router flipped to %d without unanimous commit acks", g)
	}
	if live0 := tf.shards[0].Store().Current().Gen; live0 != 1 {
		t.Fatalf("shard 0 live gen %d, want 1 (its commit succeeded)", live0)
	}
	if live1 := tf.shards[1].Store().Current().Gen; live1 != 0 {
		t.Fatalf("shard 1 live gen %d, want 0 (its commit ack was lost)", live1)
	}
	rec := tf.get("/v1/dataset")
	if rec.Code != http.StatusOK || rec.Header().Get("X-Generation") != "0" {
		t.Fatalf("dataset during split: %d gen %q", rec.Code, rec.Header().Get("X-Generation"))
	}

	// Next attempt: stage is a no-op ack on the advanced shard and an
	// already-staged re-ack on the lagging one (its commit never ran, so
	// the staged build is still held); commit publishes it everywhere and
	// the flip lands.
	if gen, err := tf.coord.FlipOnce(context.Background()); err != nil || gen != 1 {
		t.Fatalf("convergence FlipOnce = %d, %v", gen, err)
	}
	for i, sh := range tf.shards {
		if live := sh.Store().Current().Gen; live != 1 {
			t.Fatalf("shard %d live gen %d after convergence", i, live)
		}
	}
	if g := tf.router.Gen(); g != 1 {
		t.Fatalf("router gen %d after convergence", g)
	}
}

// TestTwoPhaseControlPlaneIdempotent proves the control verbs are safe
// to repeat: double stage, commit of an already-live generation, and
// abort of nothing all ack without changing state.
func TestTwoPhaseControlPlaneIdempotent(t *testing.T) {
	tf := buildFleet(t, fleetConfig{shards: 2})
	ctx := context.Background()
	sc := tf.clients[0]
	if _, err := sc.Stage(ctx, 1); err != nil {
		t.Fatalf("stage: %v", err)
	}
	if _, err := sc.Stage(ctx, 1); err != nil {
		t.Fatalf("re-stage: %v", err)
	}
	if _, err := sc.Commit(ctx, 1); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if _, err := sc.Commit(ctx, 1); err != nil {
		t.Fatalf("re-commit: %v", err)
	}
	if _, err := sc.Stage(ctx, 1); err != nil {
		t.Fatalf("stage of already-live gen: %v", err)
	}
	if ack, err := sc.Abort(ctx, 5); err != nil || ack.Done {
		t.Fatalf("abort of nothing: done=%v err=%v", ack.Done, err)
	}
	if live := tf.shards[0].Store().Current().Gen; live != 1 {
		t.Fatalf("live gen %d after idempotence dance", live)
	}
	// Commit without a stage is refused — phase order is enforced.
	if _, err := sc.Commit(ctx, 3); err == nil {
		t.Fatal("commit of an unstaged generation acked")
	}
}

// TestBootstrapAdoptsCommonGeneration proves router bootstrap: with
// shards at divergent live generations (a lost-ack aftermath), the
// adopted fleet generation is the lowest live one, which everyone
// retains.
func TestBootstrapAdoptsCommonGeneration(t *testing.T) {
	tf := buildFleet(t, fleetConfig{shards: 2})
	// Advance shard 0 ahead: stage+commit gen 1 directly on its store.
	if err := tf.shards[0].Store().Stage(1); err != nil {
		t.Fatal(err)
	}
	if _, err := tf.shards[0].Store().Commit(1); err != nil {
		t.Fatal(err)
	}
	tf.router.SetGen(99) // nonsense pin to prove Bootstrap overwrites it
	gen, err := tf.coord.Bootstrap(context.Background())
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	if gen != 0 || tf.router.Gen() != 0 {
		t.Fatalf("bootstrap adopted %d (router %d), want 0", gen, tf.router.Gen())
	}
}
