package netaddr

import "testing"

// FuzzParse checks that Parse never panics and that every accepted input
// round-trips through String.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"10.0.0.0/8", "0.0.0.0/0", "255.255.255.255/32", "192.168.1.0/24",
		"", "/", "10.0.0.0", "10.0.0.0/33", "10.0.0.1/24", "a.b.c.d/0",
		"256.1.1.1/8", "1.2.3.4/-1", "01.2.3.4/8", "1.2.3.4/08",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		back, err2 := Parse(p.String())
		if err2 != nil {
			t.Fatalf("accepted %q -> %q which does not re-parse: %v", s, p.String(), err2)
		}
		if back != p {
			t.Fatalf("round trip %q -> %v -> %v", s, p, back)
		}
		if p.NumAddresses() == 0 {
			t.Fatalf("%v has zero addresses", p)
		}
	})
}

// FuzzContainsCovers cross-checks Contains against Covers on /32s.
func FuzzContainsCovers(f *testing.F) {
	f.Add(uint32(0x0a000000), uint8(8), uint32(0x0a010203))
	f.Add(uint32(0xffffffff), uint8(32), uint32(0xffffffff))
	f.Add(uint32(0), uint8(0), uint32(12345))
	f.Fuzz(func(t *testing.T, base uint32, bits uint8, addr uint32) {
		if bits > 32 {
			return
		}
		p := Make(base, bits)
		host := Make(addr, 32)
		if p.Contains(addr) != p.Covers(host) {
			t.Fatalf("Contains(%08x)=%v but Covers(/32)=%v for %v",
				addr, p.Contains(addr), p.Covers(host), p)
		}
		if p.Covers(host) && !p.Overlaps(host) {
			t.Fatal("covers implies overlaps")
		}
	})
}
