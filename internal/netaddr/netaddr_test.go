package netaddr

import (
	"testing"
	"testing/quick"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{"0.0.0.0/0", "10.0.0.0/8", "192.168.1.0/24", "1.2.3.4/32", "100.64.0.0/10"}
	for _, s := range cases {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if p.String() != s {
			t.Errorf("round trip %q -> %q", s, p.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "256.0.0.0/8",
		"10.0.0/8", "10.0.0.0.0/8", "10.0.0.1/24", "a.b.c.d/8", "10.01.0.0/8"}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestNumAddresses(t *testing.T) {
	if n := MustParse("10.0.0.0/8").NumAddresses(); n != 1<<24 {
		t.Errorf("/8 = %d addresses", n)
	}
	if n := MustParse("1.2.3.4/32").NumAddresses(); n != 1 {
		t.Errorf("/32 = %d addresses", n)
	}
	if n := MustParse("0.0.0.0/0").NumAddresses(); n != 1<<32 {
		t.Errorf("/0 = %d addresses", n)
	}
}

func TestCoversAndOverlaps(t *testing.T) {
	p8 := MustParse("10.0.0.0/8")
	p16 := MustParse("10.1.0.0/16")
	other := MustParse("11.0.0.0/8")
	if !p8.Covers(p16) {
		t.Error("/8 should cover nested /16")
	}
	if p16.Covers(p8) {
		t.Error("/16 should not cover parent /8")
	}
	if !p8.Overlaps(p16) || !p16.Overlaps(p8) {
		t.Error("nested prefixes should overlap symmetrically")
	}
	if p8.Overlaps(other) {
		t.Error("disjoint /8s should not overlap")
	}
	if !p8.Covers(p8) {
		t.Error("prefix should cover itself")
	}
}

func TestContains(t *testing.T) {
	p := MustParse("192.168.0.0/16")
	in, _ := parseIPv4("192.168.5.9")
	out, _ := parseIPv4("192.169.0.0")
	if !p.Contains(in) {
		t.Error("address inside prefix not contained")
	}
	if p.Contains(out) {
		t.Error("address outside prefix contained")
	}
}

func TestMakeCanonicalizes(t *testing.T) {
	p := Make(0x0a0a0a0a, 8)
	if p.Base != 0x0a000000 {
		t.Errorf("Make did not zero host bits: %08x", p.Base)
	}
}

// Property: any allocator sequence yields pairwise-disjoint canonical
// prefixes fully contained in the pool.
func TestAllocatorDisjoint(t *testing.T) {
	err := quick.Check(func(seed uint8) bool {
		pool := MustParse("10.0.0.0/8")
		a := NewAllocator(pool)
		var got []Prefix
		// Mix of sizes driven by the seed.
		sizes := []uint8{24, 22, 20, 16, 24, 19, 28}
		for i := 0; i < 40; i++ {
			bits := sizes[(int(seed)+i)%len(sizes)]
			p, ok := a.Alloc(bits)
			if !ok {
				break
			}
			if !pool.Covers(p) {
				return false
			}
			for _, q := range got {
				if p.Overlaps(q) {
					return false
				}
			}
			got = append(got, p)
		}
		return len(got) > 0
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	a := NewAllocator(MustParse("10.0.0.0/30"))
	var n int
	for {
		if _, ok := a.Alloc(32); !ok {
			break
		}
		n++
	}
	if n != 4 {
		t.Errorf("allocated %d /32s from a /30, want 4", n)
	}
	if a.Remaining() != 0 {
		t.Errorf("Remaining = %d after exhaustion", a.Remaining())
	}
}

func TestAllocatorRejectsLargerThanPool(t *testing.T) {
	a := NewAllocator(MustParse("10.0.0.0/16"))
	if _, ok := a.Alloc(8); ok {
		t.Error("allocated a /8 from a /16 pool")
	}
}

func TestAllocatorTopOfSpace(t *testing.T) {
	a := NewAllocator(MustParse("255.255.255.0/24"))
	got := 0
	for {
		if _, ok := a.Alloc(26); !ok {
			break
		}
		got++
	}
	if got != 4 {
		t.Errorf("allocated %d /26s at top of v4 space, want 4", got)
	}
}

func TestSumAddresses(t *testing.T) {
	ps := []Prefix{MustParse("10.0.0.0/24"), MustParse("10.0.1.0/24")}
	if n := SumAddresses(ps); n != 512 {
		t.Errorf("SumAddresses = %d, want 512", n)
	}
}

func TestLessOrdering(t *testing.T) {
	a := MustParse("10.0.0.0/8")
	b := MustParse("10.0.0.0/16")
	c := MustParse("11.0.0.0/8")
	if !a.Less(b) || !b.Less(c) || !a.Less(c) {
		t.Error("Less ordering violated")
	}
	if c.Less(a) {
		t.Error("Less not antisymmetric")
	}
}
