// Package netaddr provides the IPv4 prefix arithmetic the simulator needs:
// CIDR blocks, address counting, containment, and a sequential allocator
// that hands out non-overlapping blocks the way an RIR hands out address
// space to its members.
//
// The paper's technical pipeline stage reasons entirely in terms of
// "number of IPv4 addresses originated by AS X geolocated to country C",
// so prefixes here carry only what BGP origination needs: a base address
// and a mask length. IPv6 is out of scope, as it was for the paper's
// market-share estimates.
package netaddr

import (
	"fmt"
	"strconv"
	"strings"
)

// Prefix is an IPv4 CIDR block. The zero value is 0.0.0.0/0.
type Prefix struct {
	// Base is the network address in host byte order. Bits below the
	// mask are guaranteed zero for prefixes built by this package.
	Base uint32
	// Bits is the mask length, 0..32.
	Bits uint8
}

// Make returns the prefix with the given base and length, canonicalizing
// the base by zeroing host bits. It panics if bits > 32.
func Make(base uint32, bits uint8) Prefix {
	if bits > 32 {
		panic(fmt.Sprintf("netaddr: invalid prefix length %d", bits))
	}
	return Prefix{Base: base & mask(bits), Bits: bits}
}

func mask(bits uint8) uint32 {
	if bits == 0 {
		return 0
	}
	return ^uint32(0) << (32 - bits)
}

// Parse parses "a.b.c.d/len" into a Prefix.
func Parse(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netaddr: missing '/' in %q", s)
	}
	addr, err := parseIPv4(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netaddr: invalid prefix length in %q", s)
	}
	p := Make(addr, uint8(bits))
	if p.Base != addr {
		return Prefix{}, fmt.Errorf("netaddr: %q has non-zero host bits", s)
	}
	return p, nil
}

// MustParse is Parse but panics on error; for embedded constants.
func MustParse(s string) Prefix {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

func parseIPv4(s string) (uint32, error) {
	var out uint32
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netaddr: invalid IPv4 address %q", s)
	}
	for _, part := range parts {
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 || n > 255 || (len(part) > 1 && part[0] == '0') {
			return 0, fmt.Errorf("netaddr: invalid IPv4 octet %q", part)
		}
		out = out<<8 | uint32(n)
	}
	return out, nil
}

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%d.%d.%d.%d/%d",
		byte(p.Base>>24), byte(p.Base>>16), byte(p.Base>>8), byte(p.Base), p.Bits)
}

// NumAddresses returns the number of addresses covered by the prefix.
func (p Prefix) NumAddresses() uint64 { return 1 << (32 - uint(p.Bits)) }

// Contains reports whether addr falls inside the prefix.
func (p Prefix) Contains(addr uint32) bool { return addr&mask(p.Bits) == p.Base }

// Covers reports whether p covers all of q (p is q or a supernet of q).
func (p Prefix) Covers(q Prefix) bool {
	return p.Bits <= q.Bits && q.Base&mask(p.Bits) == p.Base
}

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool { return p.Covers(q) || q.Covers(p) }

// Less orders prefixes by base address, then by length (shorter first).
// Useful for stable iteration orders.
func (p Prefix) Less(q Prefix) bool {
	if p.Base != q.Base {
		return p.Base < q.Base
	}
	return p.Bits < q.Bits
}

// SumAddresses totals the address counts of the given prefixes. The caller
// is responsible for the prefixes being disjoint if an exact population is
// required; the simulator's allocator only produces disjoint blocks.
func SumAddresses(ps []Prefix) uint64 {
	var n uint64
	for _, p := range ps {
		n += p.NumAddresses()
	}
	return n
}

// Allocator hands out non-overlapping prefixes from a contiguous pool,
// mimicking registry delegation. Allocation is first-fit on aligned
// boundaries, so every returned prefix is canonical and disjoint from all
// previously returned prefixes.
type Allocator struct {
	pool Prefix
	next uint32
	done bool
}

// NewAllocator creates an allocator over the given pool.
func NewAllocator(pool Prefix) *Allocator {
	return &Allocator{pool: pool, next: pool.Base}
}

// Alloc returns the next free block of the requested length, or false if
// the pool is exhausted (or cannot fit a block of that size). Requested
// lengths shorter than the pool's are rejected.
func (a *Allocator) Alloc(bits uint8) (Prefix, bool) {
	if bits > 32 || bits < a.pool.Bits || a.done {
		return Prefix{}, false
	}
	size := uint32(1) << (32 - bits)
	// Align the cursor up to the block size.
	start := a.next
	if rem := start % size; rem != 0 {
		start += size - rem
	}
	// Exhaustion check, careful with uint32 wraparound at 255.255.255.255.
	poolEnd := uint64(a.pool.Base) + uint64(a.pool.NumAddresses())
	if uint64(start)+uint64(size) > poolEnd || start < a.next {
		return Prefix{}, false
	}
	a.next = start + size
	if a.next == 0 { // wrapped: pool ended exactly at top of v4 space
		a.done = true
	}
	return Make(start, bits), true
}

// Remaining returns the number of addresses still unallocated in the pool.
func (a *Allocator) Remaining() uint64 {
	if a.done {
		return 0
	}
	poolEnd := uint64(a.pool.Base) + uint64(a.pool.NumAddresses())
	return poolEnd - uint64(a.next)
}
