package world

import (
	"stateowned/internal/ccodes"
	"stateowned/internal/rng"
)

// Region priors. The paper's headline geography — state ownership "much
// more prevalent in Africa and Asia", essentially absent in ARIN — enters
// the simulation here as the probability that a country's incumbent is
// majority state-owned.
var stateOwnershipPrior = map[ccodes.Region]float64{
	ccodes.Africa:       0.78,
	ccodes.Asia:         0.68,
	ccodes.Europe:       0.42,
	ccodes.LatinAmerica: 0.42,
	ccodes.Oceania:      0.50,
	ccodes.NorthAmerica: 0.04,
}

// ictBase models digital-ecosystem maturity per region; it drives document
// availability, WHOIS freshness, PeeringDB coverage and stub-AS counts.
var ictBase = map[ccodes.Region]float64{
	ccodes.Africa:       0.35,
	ccodes.Asia:         0.58,
	ccodes.Europe:       0.85,
	ccodes.LatinAmerica: 0.58,
	ccodes.Oceania:      0.55,
	ccodes.NorthAmerica: 0.93,
}

// ictOverride pins countries whose digital ecosystems sit far from their
// region's average — developed Asia-Pacific and the Gulf above it, a few
// below. Without these, China would dominate APNIC's address space and
// flip the paper's §8 regional ordering (AFRINIC's domestic state share
// is the largest of all regions).
var ictOverride = map[string]float64{
	"JP": 0.92, "KR": 0.93, "SG": 0.93, "HK": 0.90, "TW": 0.88,
	"AU": 0.90, "NZ": 0.88, "IL": 0.88, "MO": 0.80,
	"AE": 0.85, "QA": 0.84, "KW": 0.78, "BH": 0.80, "SA": 0.72,
	"CY": 0.75, "MT": 0.78, "EE": 0.85,
	"CN": 0.62, "MY": 0.70, "TH": 0.62, "TR": 0.68, "KZ": 0.62,
	"RU": 0.76, "CL": 0.72, "UY": 0.74, "AR": 0.68, "BR": 0.65,
	"MX": 0.62, "CR": 0.68, "ZA": 0.60, "MU": 0.62, "SC": 0.60,
	"IN": 0.48, "ID": 0.52, "PK": 0.42, "BD": 0.40, "MM": 0.32,
	"AF": 0.22, "YE": 0.22, "SY": 0.28, "KP": 0.12,
}

// forcedTransitDominated lists countries the CTI work (Gamero-Garrido's
// dissertation, which the paper applies in 75 countries) infers as
// transit-dominated without being single-gateway: much of Latin America,
// where the paper's CTI source surfaced the state transit builders
// (ARSAT, Telebras, Internexa).
var forcedTransitDominated = map[string]bool{
	"AR": true, "BR": true, "CO": true, "UY": true, "PY": true,
	"BO": true, "EC": true, "PE": true, "VE": true, "CR": true,
}

// forcedGatewayConcentrated lists countries the paper's narrative ties to
// single-gateway international connectivity (Syria's AS29386, Cuba's
// ETECSA, the Belarusian exchange ASes, ...).
var forcedGatewayConcentrated = map[string]bool{
	"SY": true, "BY": true, "CU": true, "BD": true, "VN": true,
	"ET": true, "ER": true, "TM": true, "DJ": true, "AO": true,
	"IR": true, "YE": true, "LY": true, "SD": true, "TD": true,
	"NE": true, "ML": true, "MR": true, "BF": true, "UZ": true,
}

// buildProfile derives a country's simulation profile.
func buildProfile(r *rng.Stream, c ccodes.Country) *CountryProfile {
	var ict float64
	if base, ok := ictOverride[c.Code]; ok {
		ict = base + r.Norm(0, 0.03)
	} else {
		ict = ictBase[c.Region] + r.Norm(0, 0.10)
	}
	if ict < 0.10 {
		ict = 0.10
	}
	if ict > 0.98 {
		ict = 0.98
	}
	// Internet penetration grows with ICT maturity.
	penetration := 0.15 + 0.75*ict
	users := int(float64(c.Population) * 1000 * penetration)
	if users < 500 {
		users = 500
	}
	// Announced address space scales with online population, with a
	// legacy-allocation premium for mature ecosystems (early adopters
	// hold disproportionate v4 space) and a large extra multiplier for
	// the US, which announces huge, largely-unused legacy blocks
	// (§7: excluding the US raises the state-owned share from 17% to 25%).
	// Addresses per user rise steeply with maturity: late adopters live
	// behind CGNAT on small allocations while early adopters hold legacy
	// space — which is also why state-heavy developing regions originate
	// a modest share of the global table despite dominating their home
	// markets.
	perUser := 0.015 + 0.40*ict*ict*ict
	budget := uint64(float64(users) * perUser)
	if c.Code == "US" {
		budget *= 5
	}
	if budget < 8192 {
		budget = 8192
	}
	concentrated := forcedGatewayConcentrated[c.Code] || r.Bool(0.18-0.15*ict)
	transit := concentrated || forcedTransitDominated[c.Code] || r.Bool(0.72-0.6*ict)
	return &CountryProfile{
		Code:                c.Code,
		ICT:                 ict,
		AddressBudget:       budget,
		InternetUsers:       users,
		TransitDominated:    transit,
		GatewayConcentrated: concentrated,
	}
}
