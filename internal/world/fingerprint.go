package world

import (
	"stateowned/internal/ownership"
	"stateowned/internal/sched"
)

// This file defines the canonical input projections the incremental
// rebuild path fingerprints a world through. Three projections exist
// because the pipeline's sources read the world at three granularities:
// everything except the equity graph (geo, eyeballs, WHOIS, PeeringDB),
// the full derived ownership view (Orbis, the documents corpus), and
// the narrow two-bit ownership view the topology builder consults. A
// source's fingerprint combines exactly the projections it reads, so
// churn that leaves a projection untouched leaves the source clean.

// FingerprintStructure hashes every world field except the equity
// graph: seed, countries and their profiles, all operator attributes
// (including entity IDs and ASN lists), and all AS registry records
// with their prefixes, in the world's canonical iteration orders.
func (w *World) FingerprintStructure() sched.Fingerprint {
	h := sched.NewHasher("world/structure")
	h.U64(w.Seed)
	h.I64(int64(len(w.Countries)))
	for _, cc := range w.Countries {
		h.Str(cc)
		p := w.Profiles[cc]
		h.Str(p.Code)
		h.F64(p.ICT)
		h.U64(p.AddressBudget)
		h.I64(int64(p.InternetUsers))
		h.Bool(p.TransitDominated)
		h.Bool(p.GatewayConcentrated)
	}
	h.I64(int64(len(w.OperatorIDs)))
	for _, id := range w.OperatorIDs {
		op := w.Operators[id]
		h.Str(op.ID)
		h.Str(string(op.Entity))
		h.Str(op.OrgID)
		h.Str(op.LegalName)
		h.Str(op.BrandName)
		h.Str(op.FormerName)
		h.Str(op.Conglomerate)
		h.I64(int64(op.Kind))
		h.Str(op.Country)
		h.I64(int64(op.Subscribers))
		h.F64(op.AddrShare)
		h.F64(op.WebPresence)
		h.Bool(op.QuietGateway)
		h.I64(int64(op.Founded))
		h.I64(int64(len(op.ASNs)))
		for _, a := range op.ASNs {
			h.U64(uint64(a))
		}
	}
	h.I64(int64(len(w.ASNList)))
	for _, n := range w.ASNList {
		a := w.ASes[n]
		h.U64(uint64(a.Number))
		h.Str(a.OperatorID)
		h.Str(a.Name)
		h.Str(a.Country)
		h.I64(int64(a.Registered))
		h.I64(int64(len(a.Prefixes)))
		for _, p := range a.Prefixes {
			h.U64(uint64(p.Base))
			h.U64(uint64(p.Bits))
		}
	}
	return h.Sum()
}

// FingerprintOwnership hashes the full derived ownership view of every
// operator, in OperatorIDs order: resolved control (controller country,
// share, per-state aggregated shares), foreign-subsidiary and
// minority-state status, the controlling parent with its entity
// attributes, and the sorted holder list with each holder's entity
// attributes. This covers every equity-graph read the Orbis and
// documents sources (and the analysis truth scorer) perform, so two
// worlds with equal structure and ownership fingerprints are
// indistinguishable to the whole pipeline.
func (w *World) FingerprintOwnership() sched.Fingerprint {
	h := sched.NewHasher("world/ownership")
	g := w.Graph
	hashEntity := func(id ownership.EntityID) {
		e, ok := g.Entity(id)
		h.Bool(ok)
		h.Str(string(e.ID))
		h.I64(int64(e.Kind))
		h.Str(e.Name)
		h.Str(e.Country)
	}
	h.I64(int64(len(w.OperatorIDs)))
	for _, id := range w.OperatorIDs {
		op := w.Operators[id]
		h.Str(op.ID)
		c := g.ControlOf(op.Entity)
		h.Str(c.Controller)
		h.F64(c.Share)
		h.StrMapF64(c.StateShares)
		fcc, foreign := g.IsForeignSubsidiary(op.Entity)
		h.Str(fcc)
		h.Bool(foreign)
		mcc, mshare, minority := g.MinorityState(op.Entity)
		h.Str(mcc)
		h.F64(mshare)
		h.Bool(minority)
		parent, hasParent := g.ControllingParent(op.Entity)
		h.Bool(hasParent)
		if hasParent {
			hashEntity(parent)
		}
		hs := g.Holders(op.Entity)
		h.I64(int64(len(hs)))
		for _, hd := range hs {
			h.F64(hd.Share)
			hashEntity(hd.Holder)
		}
	}
	return h.Sum()
}

// FingerprintTopologyOwnership hashes the narrow ownership projection
// the topology builder reads while classifying gateways and tier-1
// candidates: for every operator with ASes of a gateway kind
// (incumbent, transit, submarine cable), whether it is a foreign
// state's subsidiary (consulted for non-incumbents only) and whether it
// is state-controlled. Churn that flips neither bit for any gateway
// operator leaves the topology — and every path computed over it —
// provably unchanged.
func (w *World) FingerprintTopologyOwnership() sched.Fingerprint {
	h := sched.NewHasher("world/topology-ownership")
	g := w.Graph
	for _, id := range w.OperatorIDs {
		op := w.Operators[id]
		if len(op.ASNs) == 0 {
			continue
		}
		switch op.Kind {
		case KindIncumbent, KindTransit, KindSubmarineCable:
		default:
			continue
		}
		h.Str(op.ID)
		if op.Kind != KindIncumbent {
			fcc, foreign := g.IsForeignSubsidiary(op.Entity)
			h.Str(fcc)
			h.Bool(foreign)
		}
		h.Bool(g.ControlOf(op.Entity).Controlled())
	}
	return h.Sum()
}
