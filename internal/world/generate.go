package world

import (
	"fmt"
	"math"
	"sort"

	"stateowned/internal/ccodes"
	"stateowned/internal/netaddr"
	"stateowned/internal/ownership"
	"stateowned/internal/rng"
)

// Config parameterizes world generation.
type Config struct {
	// Seed drives all randomness; equal seeds yield identical worlds.
	Seed uint64
	// Scale multiplies stub/enterprise AS counts. 1.0 yields a world of
	// roughly 8-10k ASes; tests use small scales.
	Scale float64
	// Countries restricts generation to a subset of ISO codes (nil = all).
	// Anchors whose home or host country is excluded are skipped.
	Countries []string
}

// DefaultConfig is the configuration the experiments run with.
func DefaultConfig() Config { return Config{Seed: 42, Scale: 1.0} }

// opPlan is the pre-entity plan for one operator.
type opPlan struct {
	id        string
	anchor    *AnchorOperator
	sub       *AnchorSubsidiary
	parentID  string // operator ID of the parent (for subsidiaries)
	kind      OperatorKind
	conglom   string
	brand     string
	country   string
	addrShare float64
	// stateShare is the home government's equity (synthetic operators);
	// 0 means private. minorityShare < 0.5 plants a minority case.
	stateShare    float64
	minorityShare float64
	fundsSplit    bool
	holdco        string // holdco name for indirect chains ("" = direct)
	transitOnly   bool
	ctiOnly       bool
	founded       int
	formerLegal   string
	parentShare   float64 // equity the parent holds (subsidiaries)
}

// specialWiring lists equity positions between anchor companies that the
// generic gov/float wiring cannot express (joint ventures, consortiums,
// chains through sister companies).
var specialWiring = []struct {
	holderKey string // anchor key, or "gov:CC"
	targetKey string
	share     float64
}{
	{"angolatelecom", "angolacables", 0.62},
	{"telkomindonesia", "telkomsel", 0.65},
	{"singtel", "telkomsel", 0.35},
	{"singtel", "bharti", 0.351},
	{"etisalat", "ptcl", 0.26},
	{"mauritiustelecom", "wiocc", 0.15},
	{"gov:DJ", "wiocc", 0.14},
}

// skipDefaultGov marks anchor keys whose state share is entirely carried
// by specialWiring chains rather than a direct government holding.
var skipDefaultGov = map[string]bool{
	"angolacables": true,
	"wiocc":        true,
}

// holdcoNames interposes a named state holding company for these anchors,
// exercising indirect-chain resolution.
var holdcoNames = map[string]string{
	"ttk":     "Russian Railways",
	"viettel": "Ministry of National Defence Holding",
}

// Generate builds a world from the configuration.
func Generate(cfg Config) *World {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	root := rng.New(cfg.Seed)
	w := &World{
		Seed:      cfg.Seed,
		Graph:     ownership.NewGraph(),
		Operators: make(map[string]*Operator),
		ASes:      make(map[ASN]*AS),
		Profiles:  make(map[string]*CountryProfile),
	}

	countries := selectCountries(cfg)
	w.Countries = countries
	inScopeCountry := make(map[string]bool, len(countries))
	for _, cc := range countries {
		inScopeCountry[cc] = true
	}

	// Profiles.
	for _, cc := range countries {
		c := ccodes.MustByCode(cc)
		w.Profiles[cc] = buildProfile(root.Sub("profile/"+cc), c)
	}

	g := newGen(w, root, cfg, inScopeCountry)
	g.plan()
	g.createOperators()
	g.wireSpecialHoldings()
	g.assignASNsAndPrefixes()
	g.assignSubscribers()

	sort.Strings(w.OperatorIDs)
	sort.Slice(w.ASNList, func(i, j int) bool { return w.ASNList[i] < w.ASNList[j] })
	return w
}

func selectCountries(cfg Config) []string {
	if len(cfg.Countries) == 0 {
		all := ccodes.All()
		out := make([]string, len(all))
		for i, c := range all {
			out[i] = c.Code
		}
		return out
	}
	out := append([]string(nil), cfg.Countries...)
	sort.Strings(out)
	return out
}

type gen struct {
	w         *World
	root      *rng.Stream
	cfg       Config
	inScope   map[string]bool
	plans     []*opPlan
	plansByID map[string]*opPlan
	anchorOp  map[string]string // anchor key -> operator ID
	nextASN   ASN
	orgSeq    int
	reserved  map[ASN]bool
	alloc     *netaddr.Allocator
	fundsFor  map[string][]ownership.EntityID
}

func newGen(w *World, root *rng.Stream, cfg Config, inScope map[string]bool) *gen {
	return &gen{
		w:         w,
		root:      root,
		cfg:       cfg,
		inScope:   inScope,
		plansByID: make(map[string]*opPlan),
		anchorOp:  make(map[string]string),
		nextASN:   50001,
		reserved:  anchorASNs(),
		alloc:     netaddr.NewAllocator(netaddr.MustParse("0.0.0.0/1")),
		fundsFor:  make(map[string][]ownership.EntityID),
	}
}

func (g *gen) addPlan(p *opPlan) {
	g.plans = append(g.plans, p)
	g.plansByID[p.id] = p
}

// plan builds the per-country operator plans: anchors first (homes, then
// subsidiaries), then synthetic fill.
func (g *gen) plan() {
	// Home anchors.
	for i := range Anchors {
		a := &Anchors[i]
		if !g.inScope[a.Country] {
			continue
		}
		share := a.MarketShare
		p := &opPlan{
			id: "anchor-" + a.Key, anchor: a, kind: a.Kind,
			conglom: a.Conglomerate, brand: a.BrandName, country: a.Country,
			addrShare: share, transitOnly: a.TransitOnly, ctiOnly: a.CTIOnly,
			founded: a.Founded, fundsSplit: a.FundsSplit,
			holdco: holdcoNames[a.Key],
		}
		if a.StateShare >= ownership.MajorityThreshold {
			p.stateShare = a.StateShare
		} else if a.StateShare > 0 {
			p.minorityShare = a.StateShare
		}
		g.addPlan(p)
		g.anchorOp[a.Key] = p.id
		// Subsidiaries.
		for j := range a.Subsidiaries {
			s := &a.Subsidiaries[j]
			if !g.inScope[s.Host] {
				continue
			}
			kind := KindMobile
			if s.TransitOnly {
				kind = KindTransit
			}
			share := s.Share
			if share == 0 {
				share = 0.75
			}
			g.addPlan(&opPlan{
				id: fmt.Sprintf("anchor-%s-%s", a.Key, s.Host), sub: s,
				parentID: p.id, kind: kind, conglom: a.Conglomerate,
				brand: s.Brand, country: s.Host, addrShare: s.MarketShare,
				transitOnly: s.TransitOnly, founded: maxInt(a.Founded, 2004),
				formerLegal: s.FormerLegal, parentShare: share,
			})
		}
	}

	// Synthetic fill per country.
	for _, cc := range g.w.Countries {
		g.planCountry(cc)
	}
}

func (g *gen) planCountry(cc string) {
	c := ccodes.MustByCode(cc)
	prof := g.w.Profiles[cc]
	r := g.root.Sub("country/" + cc)

	var planned float64
	hasIncumbent := false
	for _, p := range g.plans {
		if p.country != cc {
			continue
		}
		if p.kind.ProvidesAccess() && !p.transitOnly {
			planned += p.addrShare
		}
		if p.kind == KindIncumbent && p.anchor != nil {
			hasIncumbent = true
		}
	}
	remaining := 1.0 - planned
	if remaining < 0 {
		remaining = 0
	}

	countryStateOwned := hasStateAnchor(g.plans, cc)
	idx := 0
	newID := func(kind string) string {
		id := fmt.Sprintf("%s-%s-%d", cc, kind, idx)
		idx++
		return id
	}

	// Brand names are unique within a country (trademark reality); a
	// collision would otherwise let one company's documents confirm a
	// different company's ownership.
	usedNames := map[string]bool{}
	for _, p := range g.plans {
		if p.country == cc {
			usedNames[p.brand] = true
		}
	}
	uniqueName := func(gen func() string) string {
		for i := 0; i < 8; i++ {
			n := gen()
			if !usedNames[n] {
				usedNames[n] = true
				return n
			}
		}
		n := gen() + " " + string(rune('A'+idx%26)) // last resort disambiguator
		usedNames[n] = true
		return n
	}

	// Incumbent.
	if !hasIncumbent && remaining > 0.05 {
		prior := stateOwnershipPrior[c.Region]
		// The ARIN service region is the paper's outlier (Table 4: 7% of
		// member economies): the US and Canada have no state operators
		// and the English-speaking Caribbean privatized its telcos.
		if c.RIR == ccodes.ARIN {
			prior *= 0.2
		}
		// Latin America largely privatized *access* in the 1990s; the
		// state presence the paper finds there is mostly transit
		// (ARSAT, Telebras, Internexa), handled below. Incumbent
		// state ownership is correspondingly rarer.
		if c.RIR == ccodes.LACNIC {
			prior *= 0.6
		}
		stateOwned := r.Bool(prior)
		share := remaining * incumbentShareDraw(r)
		p := &opPlan{
			id: newID("incumbent"), kind: KindIncumbent, country: cc,
			brand: uniqueName(func() string { return incumbentName(r, c) }), addrShare: share,
			founded: r.IntBetween(1993, 2002),
		}
		p.conglom = p.brand
		if stateOwned {
			p.stateShare = stateShareDraw(r)
			p.fundsSplit = r.Bool(0.15)
			if !p.fundsSplit && r.Bool(0.25) {
				p.holdco = shortCountry(c) + " State Holding"
			}
			countryStateOwned = true
		} else {
			if r.Bool(0.50) {
				p.minorityShare = r.FloatBetween(0.05, 0.45)
			}
			// Privatized decoy: a misleading formerly-state name.
			if r.Bool(0.06) {
				p.formerLegal = shortCountry(c) + " State Telecom"
			}
		}
		remaining -= share
		g.addPlan(p)
	}

	// Mobile operators.
	nMobile := 1
	if c.Population > 5000 {
		nMobile += r.Intn(2)
	}
	if c.Population > 50000 {
		nMobile++
	}
	for i := 0; i < nMobile && remaining > 0.04; i++ {
		share := remaining * r.FloatBetween(0.25, 0.6)
		p := &opPlan{
			id: newID("mobile"), kind: KindMobile, country: cc,
			brand: uniqueName(func() string { return mobileName(r, c) }), addrShare: share,
			founded: r.IntBetween(1998, 2012),
		}
		p.conglom = p.brand
		// States that privatized their incumbent rarely own mobiles, so
		// extra state operators appear only in already-state countries.
		pState := 0.0
		if countryStateOwned {
			pState = 0.22
		}
		if r.Bool(pState) {
			p.stateShare = stateShareDraw(r)
		} else if r.Bool(0.15) {
			p.minorityShare = r.FloatBetween(0.05, 0.45)
		}
		remaining -= share
		g.addPlan(p)
	}

	// Regional ISPs.
	nRegional := int(prof.ICT * 4 * g.cfg.Scale)
	if nRegional < 1 {
		nRegional = 1
	}
	for i := 0; i < nRegional && remaining > 0.02; i++ {
		share := remaining * r.FloatBetween(0.15, 0.45)
		p := &opPlan{
			id: newID("regional"), kind: KindRegionalISP, country: cc,
			brand: uniqueName(func() string { return regionalISPName(r, c) }), addrShare: share,
			founded: r.IntBetween(2003, 2016),
		}
		p.conglom = p.brand
		if countryStateOwned && r.Bool(0.03) {
			p.stateShare = stateShareDraw(r)
		}
		remaining -= share
		g.addPlan(p)
	}

	// Wholesale/transit carrier.
	if c.Population > 5000 && r.Bool(0.5) && !hasTransitPlan(g.plans, cc) {
		p := &opPlan{
			id: newID("transit"), kind: KindTransit, country: cc,
			brand: uniqueName(func() string { return transitName(r, c) }), transitOnly: true,
			founded: r.IntBetween(2000, 2014),
		}
		p.conglom = p.brand
		pState := 0.02
		if countryStateOwned {
			pState = 0.45
		}
		// The LACNIC pattern: states that left the access market still
		// build national transit backbones (§4.1's ARSAT and Telebras
		// examples).
		if c.RIR == ccodes.LACNIC && !countryStateOwned {
			pState = 0.35
		}
		if r.Bool(pState) {
			p.stateShare = stateShareDraw(r)
		}
		g.addPlan(p)
	}

	// Excluded organizations (§5.3 / Appendix E).
	if c.Population > 2000 || r.Bool(0.7) {
		g.addPlan(&opPlan{
			id: newID("academic"), kind: KindAcademic, country: cc,
			brand: excludedName(r, c, KindAcademic), stateShare: 1.0,
			founded: r.IntBetween(1992, 2005), conglom: "",
		})
	}
	if r.Bool(0.75) {
		g.addPlan(&opPlan{
			id: newID("govnet"), kind: KindGovernmentNet, country: cc,
			brand: excludedName(r, c, KindGovernmentNet), stateShare: 1.0,
			founded: r.IntBetween(1995, 2010),
		})
	}
	if r.Bool(0.5) {
		g.addPlan(&opPlan{
			id: newID("nic"), kind: KindInternetAdmin, country: cc,
			brand:   excludedName(r, c, KindInternetAdmin),
			founded: r.IntBetween(1995, 2008),
		})
	}
	if r.Bool(0.15 + 0.25*prof.ICT) {
		g.addPlan(&opPlan{
			id: newID("municipal"), kind: KindMunicipal, country: cc,
			brand: excludedName(r, c, KindMunicipal), stateShare: 1.0,
			founded: r.IntBetween(2005, 2017),
		})
	}

	// Enterprise / content stubs.
	nStub := int(g.cfg.Scale * (2 + pow(float64(c.Population), 0.45)*prof.ICT*1.1))
	if nStub > 600 {
		nStub = 600
	}
	for i := 0; i < nStub; i++ {
		g.addPlan(&opPlan{
			id: newID("stub"), kind: KindEnterprise, country: cc,
			brand:   uniqueName(func() string { return excludedName(r, c, KindEnterprise) }),
			founded: r.IntBetween(2004, 2019),
		})
	}
}

func hasStateAnchor(plans []*opPlan, cc string) bool {
	for _, p := range plans {
		if p.country == cc && p.anchor != nil && p.stateShare >= ownership.MajorityThreshold {
			return true
		}
	}
	return false
}

func hasTransitPlan(plans []*opPlan, cc string) bool {
	for _, p := range plans {
		if p.country == cc && (p.kind == KindTransit || p.kind == KindSubmarineCable) {
			return true
		}
	}
	return false
}

// incumbentShareDraw mixes market-share regimes so the Figure 4 deciles
// populate across the [0,1] range.
func incumbentShareDraw(r *rng.Stream) float64 {
	switch {
	case r.Bool(0.40):
		return r.FloatBetween(0.15, 0.40)
	case r.Bool(0.58):
		return r.FloatBetween(0.40, 0.65)
	default:
		return r.FloatBetween(0.65, 0.95)
	}
}

// stateShareDraw draws a majority state equity share.
func stateShareDraw(r *rng.Stream) float64 {
	switch {
	case r.Bool(0.25):
		return 1.0
	case r.Bool(0.60):
		return r.FloatBetween(0.50, 0.75)
	default:
		return r.FloatBetween(0.75, 1.0)
	}
}

// createOperators materializes plans into entities and Operator records.
// Order: home anchors, then subsidiaries (parents exist), then the rest.
func (g *gen) createOperators() {
	var homes, subs, rest []*opPlan
	for _, p := range g.plans {
		switch {
		case p.anchor != nil:
			homes = append(homes, p)
		case p.sub != nil:
			subs = append(subs, p)
		default:
			rest = append(rest, p)
		}
	}
	for _, batch := range [][]*opPlan{homes, subs, rest} {
		for _, p := range batch {
			g.createOperator(p)
		}
	}
}

func (g *gen) govEntity(cc string) ownership.EntityID {
	id := ownership.EntityID("gov-" + cc)
	if _, ok := g.w.Graph.Entity(id); !ok {
		c := ccodes.MustByCode(cc)
		g.w.Graph.MustAddEntity(ownership.Entity{
			ID: id, Kind: ownership.KindGovernment,
			Name: "Government of " + c.Name, Country: cc,
		})
	}
	return id
}

func (g *gen) stateFunds(cc string) []ownership.EntityID {
	if fs, ok := g.fundsFor[cc]; ok {
		return fs
	}
	gov := g.govEntity(cc)
	c := ccodes.MustByCode(cc)
	names := []string{
		c.Name + " Sovereign Wealth Fund",
		c.Name + " National Trust",
		c.Name + " Employees Pension Fund",
	}
	fs := make([]ownership.EntityID, 3)
	for i, n := range names {
		id := ownership.EntityID(fmt.Sprintf("fund-%s-%d", cc, i))
		g.w.Graph.MustAddEntity(ownership.Entity{
			ID: id, Kind: ownership.KindFund, Name: n, Country: cc,
		})
		g.w.Graph.MustAddHolding(ownership.Holding{Holder: gov, Target: id, Share: 1})
		fs[i] = id
	}
	g.fundsFor[cc] = fs
	return fs
}

func (g *gen) createOperator(p *opPlan) {
	c := ccodes.MustByCode(p.country)
	prof := g.w.Profiles[p.country]
	r := g.root.Sub("op/" + p.id)

	entID := ownership.EntityID("ent-" + p.id)
	var legal string
	if p.anchor != nil {
		legal = p.anchor.LegalName
	} else {
		legal = legalName(r, p.brand, c)
	}
	g.w.Graph.MustAddEntity(ownership.Entity{
		ID: entID, Kind: ownership.KindCompany, Name: legal, Country: p.country,
	})

	var allocated float64
	addHolding := func(holder ownership.EntityID, share float64) {
		if share <= 0 {
			return
		}
		if allocated+share > 1 {
			share = 1 - allocated
		}
		if share <= 1e-9 {
			return
		}
		g.w.Graph.MustAddHolding(ownership.Holding{Holder: holder, Target: entID, Share: share})
		allocated += share
	}

	anchorKey := ""
	if p.anchor != nil {
		anchorKey = p.anchor.Key
	}
	switch {
	case p.sub != nil:
		parent, ok := g.w.Operators[p.parentID]
		if !ok {
			panic(fmt.Sprintf("world: subsidiary %s created before parent %s", p.id, p.parentID))
		}
		addHolding(parent.Entity, p.parentShare)
	case p.stateShare > 0 && !skipDefaultGov[anchorKey]:
		switch {
		case p.fundsSplit:
			funds := g.stateFunds(p.country)
			split := []float64{0.45, 0.30, 0.25}
			for i, f := range funds {
				addHolding(f, p.stateShare*split[i])
			}
		case p.holdco != "":
			hID := ownership.EntityID("hold-" + p.id)
			g.w.Graph.MustAddEntity(ownership.Entity{
				ID: hID, Kind: ownership.KindCompany, Name: p.holdco, Country: p.country,
			})
			g.w.Graph.MustAddHolding(ownership.Holding{
				Holder: g.govEntity(p.country), Target: hID, Share: 1,
			})
			addHolding(hID, p.stateShare)
		default:
			addHolding(g.govEntity(p.country), p.stateShare)
		}
	case p.minorityShare > 0:
		addHolding(g.govEntity(p.country), p.minorityShare)
	}

	// Special wiring is applied later (wireSpecialHoldings), so leave
	// room: reserve the special shares before assigning the float.
	var reservedSpecial float64
	for _, sw := range specialWiring {
		if sw.targetKey == anchorKey {
			reservedSpecial += sw.share
		}
	}
	if rem := 1 - allocated - reservedSpecial; rem > 0.001 {
		floatID := ownership.EntityID("float-" + p.id)
		g.w.Graph.MustAddEntity(ownership.Entity{
			ID: floatID, Kind: ownership.KindPrivate,
			Name: legal + " public float", Country: p.country,
		})
		g.w.Graph.MustAddHolding(ownership.Holding{Holder: floatID, Target: entID, Share: rem})
	}

	web := prof.ICT + r.Norm(0.05, 0.10)
	if p.anchor != nil || p.sub != nil {
		web = 0.97
	}
	web = clamp01(web)

	former := p.formerLegal
	if former == "" && p.anchor == nil && p.sub == nil && p.kind.InScope() {
		if r.Bool(0.30 - 0.20*prof.ICT) {
			former = legalName(r, brandName(r)+" Communications", c)
		}
	}

	g.orgSeq++
	op := &Operator{
		QuietGateway: p.ctiOnly,
		ID:           p.id, Entity: entID, OrgID: orgID(p.brand, g.orgSeq, c.RIR),
		LegalName: legal, BrandName: p.brand, FormerName: former,
		Conglomerate: p.conglom, Kind: p.kind, Country: p.country,
		AddrShare: p.addrShare, WebPresence: web, Founded: p.founded,
	}
	if op.Conglomerate == "" {
		op.Conglomerate = p.brand
	}
	g.w.Operators[p.id] = op
	g.w.OperatorIDs = append(g.w.OperatorIDs, p.id)
}

func (g *gen) wireSpecialHoldings() {
	for _, sw := range specialWiring {
		targetID, ok := g.anchorOp[sw.targetKey]
		if !ok {
			continue
		}
		target := g.w.Operators[targetID]
		var holder ownership.EntityID
		if len(sw.holderKey) > 4 && sw.holderKey[:4] == "gov:" {
			cc := sw.holderKey[4:]
			if !g.inScope[cc] {
				continue
			}
			holder = g.govEntity(cc)
		} else {
			hID, ok := g.anchorOp[sw.holderKey]
			if !ok {
				continue
			}
			holder = g.w.Operators[hID].Entity
		}
		g.w.Graph.MustAddHolding(ownership.Holding{
			Holder: holder, Target: target.Entity, Share: sw.share,
		})
	}
}

func (g *gen) allocASN() ASN {
	for g.reserved[g.nextASN] {
		g.nextASN++
	}
	n := g.nextASN
	g.nextASN++
	return n
}

// asnCount decides how many sibling ASNs an operator holds. The paper's
// dataset averages ~3.3 ASNs per state-owned company; state incumbents
// accumulate siblings through history and acquisitions.
func (g *gen) asnCount(p *opPlan, r *rng.Stream) int {
	switch p.kind {
	case KindIncumbent:
		if p.stateShare > 0 {
			return r.IntBetween(3, 6)
		}
		return r.IntBetween(1, 3)
	case KindMobile:
		if p.stateShare > 0 {
			return r.IntBetween(2, 4)
		}
		return r.IntBetween(1, 2)
	case KindTransit, KindSubmarineCable:
		if p.stateShare > 0 {
			return r.IntBetween(2, 3)
		}
		return r.IntBetween(1, 2)
	default:
		return 1
	}
}

func (g *gen) assignASNsAndPrefixes() {
	for _, p := range g.plans {
		op := g.w.Operators[p.id]
		r := g.root.Sub("asn/" + p.id)
		prof := g.w.Profiles[p.country]

		var asns []ASN
		switch {
		case p.anchor != nil:
			asns = append(asns, p.anchor.ASNs...)
		case p.sub != nil && len(p.sub.ASNs) > 0:
			asns = append(asns, p.sub.ASNs...)
		case p.sub != nil:
			n := 1
			if p.transitOnly {
				if r.Bool(0.4) {
					n = 2
				}
			} else {
				n = r.IntBetween(2, 3)
			}
			for i := 0; i < n; i++ {
				asns = append(asns, g.allocASN())
			}
		default:
			n := g.asnCount(p, r)
			for i := 0; i < n; i++ {
				asns = append(asns, g.allocASN())
			}
		}
		op.ASNs = asns

		// Address space.
		var total uint64
		switch {
		case p.ctiOnly:
			total = 512
		case p.transitOnly:
			total = 4096
		case p.kind == KindAcademic:
			total = uint64(0.03 * float64(prof.AddressBudget))
		case p.kind == KindGovernmentNet:
			frac := r.FloatBetween(0.005, 0.03)
			if p.country == "US" {
				frac = 0.25 // the DoD-style legacy block (Appendix E)
			}
			total = uint64(frac * float64(prof.AddressBudget))
		case p.kind == KindInternetAdmin:
			total = 512
		case p.kind == KindMunicipal:
			total = 2048
		case p.kind == KindEnterprise:
			// Mature ecosystems host large cloud/hosting allocations;
			// most stubs stay tiny, and a hosting block never dwarfs
			// its country's access space.
			switch {
			case prof.AddressBudget > 4<<20 && r.Bool(0.10*prof.ICT):
				total = 65536 // /16 hosting block
			case prof.AddressBudget > 1<<20 && r.Bool(0.18*prof.ICT):
				total = 16384 // /18
			default:
				total = 256 << uint(r.Intn(3)) // /24../22
			}
		default:
			total = uint64(p.addrShare * float64(prof.AddressBudget))
		}
		if total < 256 {
			total = 256
		}
		sizes := prefixSizes(total)
		prefixes := make([]netaddr.Prefix, 0, len(sizes))
		for _, bits := range sizes {
			pf, ok := g.alloc.Alloc(bits)
			if !ok {
				break
			}
			prefixes = append(prefixes, pf)
		}

		for i, asn := range asns {
			year := op.Founded + i*r.IntBetween(0, 4)
			if year > 2019 {
				year = 2019
			}
			a := &AS{
				Number: asn, OperatorID: p.id,
				Name:    asName(r, op.BrandName, p.country, i),
				Country: p.country, Registered: year,
			}
			g.w.ASes[asn] = a
			g.w.ASNList = append(g.w.ASNList, asn)
		}
		// The first AS originates the bulk; others receive the tail
		// blocks round-robin (siblings announce some space each).
		for i, pf := range prefixes {
			var target ASN
			if i == 0 || len(asns) == 1 {
				target = asns[0]
			} else {
				target = asns[i%len(asns)]
			}
			ga := g.w.ASes[target]
			ga.Prefixes = append(ga.Prefixes, pf)
		}
	}
}

// prefixSizes decomposes an address total into at most 12 CIDR block
// sizes between /6 and /24, greedily from the largest.
func prefixSizes(total uint64) []uint8 {
	var out []uint8
	remaining := total
	for len(out) < 12 && remaining >= 256 {
		bits := uint8(24)
		for b := uint8(6); b < 24; b++ {
			if uint64(1)<<(32-uint(b)) <= remaining {
				bits = b
				break
			}
		}
		out = append(out, bits)
		remaining -= uint64(1) << (32 - uint(bits))
	}
	if len(out) == 0 {
		out = append(out, 24)
	}
	return out
}

func (g *gen) assignSubscribers() {
	for _, p := range g.plans {
		op := g.w.Operators[p.id]
		if !op.Kind.ProvidesAccess() || p.transitOnly {
			continue
		}
		prof := g.w.Profiles[p.country]
		r := g.root.Sub("subs/" + p.id)
		// Eyeball share tracks address share with multiplicative noise;
		// the two technical sources must agree often but not always
		// (the paper found 466 of ~1050 candidate ASes in both).
		share := p.addrShare * r.LogNorm(0, 0.18)
		if share > 1 {
			share = 1
		}
		op.Subscribers = int(share * float64(prof.InternetUsers))
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func pow(base, exp float64) float64 { return math.Pow(base, exp) }
