package world

// Route-origin-validation deployment ground truth. Each AS carries a
// deterministic adoption threshold in [0,1): the AS deploys ROV once the
// economy-wide deployment fraction reaches its threshold. Thresholds are
// a pure function of the world seed and the AS's country ICT level, so
// raising the fraction only ever adds deployers — deployment sets are
// nested, which is what makes hijack-recall monotonicity provable rather
// than merely plausible.

import (
	"math"
	"strconv"

	"stateowned/internal/rng"
)

// ROVThreshold returns AS n's adoption threshold. High-ICT economies
// skew toward early deployment (the exponent compresses the uniform
// draw toward zero), low-ICT ones toward late; unknown ASes never
// deploy. The draw uses a per-ASN substream, so thresholds do not
// depend on iteration order.
func (w *World) ROVThreshold(n ASN) float64 {
	as, ok := w.ASes[n]
	if !ok {
		return 1
	}
	ict := 0.5
	if p, ok := w.Profiles[as.Country]; ok {
		ict = p.ICT
	}
	u := rng.New(w.Seed).Sub("rov/" + strconv.FormatUint(uint64(n), 10)).Float64()
	return math.Pow(u, 0.4+1.2*ict)
}
