package world

import (
	"testing"
	"testing/quick"

	"stateowned/internal/ccodes"
	"stateowned/internal/rng"
)

func TestPrefixSizes(t *testing.T) {
	cases := []struct {
		total uint64
		min   uint64 // minimum covered addresses
	}{
		{256, 256},
		{300, 256},
		{65536, 65536},
		{1 << 20, 1 << 20},
		{100, 256}, // below a /24: still gets one /24
	}
	for _, tc := range cases {
		sizes := prefixSizes(tc.total)
		if len(sizes) == 0 || len(sizes) > 12 {
			t.Fatalf("prefixSizes(%d) length %d", tc.total, len(sizes))
		}
		var covered uint64
		for _, bits := range sizes {
			if bits < 6 || bits > 24 {
				t.Fatalf("prefixSizes(%d) yields /%d outside [6,24]", tc.total, bits)
			}
			covered += uint64(1) << (32 - uint(bits))
		}
		if covered < tc.min {
			t.Errorf("prefixSizes(%d) covers %d, want >= %d", tc.total, covered, tc.min)
		}
	}
}

// Property: the greedy decomposition never overshoots by more than the
// smallest block except for the sub-/24 floor.
func TestPrefixSizesProperty(t *testing.T) {
	f := func(raw uint32) bool {
		total := uint64(raw)%(1<<26) + 256
		var covered uint64
		for _, bits := range prefixSizes(total) {
			covered += uint64(1) << (32 - uint(bits))
		}
		// Greedy never exceeds total (blocks are chosen <= remaining),
		// and with 12 blocks it reaches at least half of any total in
		// range (the largest block alone covers >= total/2).
		return covered <= total && covered >= total/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestProfileInvariants(t *testing.T) {
	r := rng.New(5)
	for _, c := range ccodes.All() {
		p := buildProfile(r.Sub("t/"+c.Code), c)
		if p.ICT < 0.10 || p.ICT > 0.98 {
			t.Errorf("%s ICT %.3f out of range", c.Code, p.ICT)
		}
		if p.InternetUsers < 500 {
			t.Errorf("%s users %d below floor", c.Code, p.InternetUsers)
		}
		if p.AddressBudget < 8192 {
			t.Errorf("%s budget %d below floor", c.Code, p.AddressBudget)
		}
		if p.GatewayConcentrated && !p.TransitDominated {
			t.Errorf("%s concentrated but not transit-dominated", c.Code)
		}
	}
}

func TestICTOverridesApplied(t *testing.T) {
	r := rng.New(5)
	jp := buildProfile(r.Sub("jp"), ccodes.MustByCode("JP"))
	cn := buildProfile(r.Sub("cn"), ccodes.MustByCode("CN"))
	if jp.ICT < 0.85 {
		t.Errorf("Japan ICT %.3f, override not applied", jp.ICT)
	}
	if cn.ICT > 0.70 {
		t.Errorf("China ICT %.3f, override not applied", cn.ICT)
	}
}

func TestBrandStemUniqueness(t *testing.T) {
	// uniqueName must prevent same-country brand collisions; verify on
	// the generated world: no two operators of a country share a brand.
	w := Generate(Config{Seed: 31, Scale: 0.08})
	seen := map[string]string{}
	for _, id := range w.OperatorIDs {
		op := w.Operators[id]
		key := op.Country + "/" + op.BrandName
		if prev, dup := seen[key]; dup {
			t.Fatalf("brand %q duplicated in %s by %s and %s", op.BrandName, op.Country, prev, id)
		}
		seen[key] = id
	}
}

func TestStateShareDrawRange(t *testing.T) {
	r := rng.New(9)
	for i := 0; i < 5000; i++ {
		if s := stateShareDraw(r); s < 0.50 || s > 1.0 {
			t.Fatalf("state share %.3f outside [0.5, 1]", s)
		}
		if s := incumbentShareDraw(r); s < 0.15 || s > 0.95 {
			t.Fatalf("incumbent share %.3f outside [0.15, 0.95]", s)
		}
	}
}
