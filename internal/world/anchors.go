package world

// This file embeds the paper's "anchor facts": operators the paper names
// explicitly, with their real ASNs, ownership shares and foreign-subsidiary
// footprints (Tables 3, 5, 7, 8, §7 and §8 of the paper). Planting these
// in the synthetic world makes the regenerated tables directly comparable
// to the published ones; everything not listed here is synthesized
// statistically by generate.go.

// AnchorSubsidiary describes one foreign operation of an anchor group.
type AnchorSubsidiary struct {
	Host        string  // ISO code of the country of operation
	Brand       string  // local brand name
	ASNs        []ASN   // real ASNs where the paper names them; empty = synthesize
	Share       float64 // parent's equity share (defaults to 0.75 when zero)
	MarketShare float64 // share of the host's access market (addresses); 0 = small default
	TransitOnly bool    // provides transit, serves no eyeballs
	// FormerLegal plants a stale WHOIS OrgName unrelated to the brand
	// (the paper's Internexa/"Transamerican Telecomunication S.A." case).
	FormerLegal string
}

// AnchorOperator describes one home-country anchor company.
type AnchorOperator struct {
	Key          string // unique key, also used in IDs
	Conglomerate string
	LegalName    string
	BrandName    string
	Country      string
	Kind         OperatorKind
	ASNs         []ASN

	// StateShare is the home state's aggregated equity; < 0.50 plants a
	// minority case (§7), 0 plants a private company used as a decoy.
	StateShare float64
	// ForeignStateShare optionally adds a second state's stake (joint
	// ventures such as PTCL: Pakistan + UAE via Etisalat).
	ForeignState      string
	ForeignStateShare float64
	// FundsSplit spreads the state share across three state funds so the
	// aggregation logic is exercised (the Telekom Malaysia structure).
	FundsSplit bool

	MarketShare float64 // share of home access market; 0 = generator default
	TransitOnly bool
	// ConeTarget is the paper's reported customer-cone size (Table 5);
	// the topology builder scales it by world size and uses it as the
	// planted transit attractiveness.
	ConeTarget int
	// ConeStartYear is when the cone starts growing (Figure 5 anchors);
	// 0 means the cone is mature over the whole 2010-2020 window.
	ConeStartYear int
	Founded       int
	// CTIOnly marks ASes visible only through the CTI source (Table 7):
	// pure transit, no eyeballs, too small for the 5% address threshold.
	CTIOnly bool

	Subsidiaries []AnchorSubsidiary
}

// Anchors is the embedded anchor scenario. Subsidiary host lists follow
// the paper's Table 3 (the published "UK" code is normalized to GB).
var Anchors = []AnchorOperator{
	{
		Key: "telenor", Conglomerate: "Telenor", LegalName: "Telenor Norge AS",
		BrandName: "Telenor", Country: "NO", Kind: KindIncumbent,
		ASNs:       []ASN{2119, 8210, 8394, 8786, 39197, 197943, 200168},
		StateShare: 0.547, MarketShare: 0.48, Founded: 1994,
		Subsidiaries: []AnchorSubsidiary{
			{Host: "BD", Brand: "Grameenphone", MarketShare: 0.30},
			{Host: "DK", Brand: "Telenor Danmark", MarketShare: 0.15},
			{Host: "FI", Brand: "Telenor Finland", MarketShare: 0.12},
			{Host: "MM", Brand: "Telenor Myanmar", MarketShare: 0.28},
			{Host: "MY", Brand: "Digi Telecommunications", MarketShare: 0.18},
			{Host: "PK", Brand: "Telenor Pakistan", MarketShare: 0.20},
			{Host: "SE", Brand: "Telenor Sverige", MarketShare: 0.16},
			{Host: "TH", Brand: "dtac", MarketShare: 0.22},
			{Host: "GB", Brand: "Telenor Connexion UK", MarketShare: 0.01},
		},
	},
	{
		Key: "singtel", Conglomerate: "SingTel", LegalName: "Singapore Telecommunications Limited",
		BrandName: "SingTel", Country: "SG", Kind: KindIncumbent,
		ASNs:       []ASN{7473, 3758},
		StateShare: 0.52, MarketShare: 0.45, ConeTarget: 4235, Founded: 1992,
		Subsidiaries: []AnchorSubsidiary{
			{Host: "AU", Brand: "Optus", ASNs: []ASN{7474, 4804}, MarketShare: 0.182},
			{Host: "HK", Brand: "SingTel Hong Kong", MarketShare: 0.02, TransitOnly: true},
			{Host: "JP", Brand: "SingTel Japan", MarketShare: 0.01, TransitOnly: true},
			{Host: "KR", Brand: "SingTel Korea", MarketShare: 0.01, TransitOnly: true},
			{Host: "LK", Brand: "Mobitel Lanka", MarketShare: 0.20},
			{Host: "TW", Brand: "SingTel Taiwan", MarketShare: 0.01, TransitOnly: true},
		},
	},
	{
		Key: "chinatelecom", Conglomerate: "China Telecom", LegalName: "China Telecom Corporation Limited",
		BrandName: "China Telecom", Country: "CN", Kind: KindIncumbent,
		ASNs:       []ASN{4134, 4809, 23764},
		StateShare: 0.708, MarketShare: 0.52, ConeTarget: 1134, Founded: 1995,
		Subsidiaries: []AnchorSubsidiary{
			{Host: "AU", Brand: "China Telecom Australia", MarketShare: 0.01, TransitOnly: true},
			{Host: "GB", Brand: "China Telecom Europe", MarketShare: 0.01, TransitOnly: true},
			{Host: "HK", Brand: "China Telecom Global", MarketShare: 0.04, TransitOnly: true},
			{Host: "MO", Brand: "China Telecom Macau", MarketShare: 0.05},
			{Host: "NL", Brand: "China Telecom Netherlands", MarketShare: 0.01, TransitOnly: true},
			{Host: "SG", Brand: "China Telecom Singapore", MarketShare: 0.01, TransitOnly: true},
			{Host: "US", Brand: "China Telecom Americas", MarketShare: 0.002, TransitOnly: true},
		},
	},
	{
		Key: "chinaunicom", Conglomerate: "China Unicom", LegalName: "China United Network Communications Group",
		BrandName: "China Unicom", Country: "CN", Kind: KindIncumbent,
		ASNs:       []ASN{4837, 10099, 9800},
		StateShare: 0.63, MarketShare: 0.30, ConeTarget: 595, Founded: 1994,
		Subsidiaries: []AnchorSubsidiary{
			{Host: "PK", Brand: "China Unicom Pakistan", MarketShare: 0.01, TransitOnly: true},
			{Host: "ZA", Brand: "China Unicom South Africa", MarketShare: 0.01, TransitOnly: true},
		},
	},
	{
		Key: "chinamobile", Conglomerate: "China Mobile", LegalName: "China Mobile Communications Group",
		BrandName: "China Mobile", Country: "CN", Kind: KindMobile,
		ASNs:       []ASN{9808, 56040},
		StateShare: 0.72, MarketShare: 0.15, Founded: 1997,
	},
	{
		Key: "ooredoo", Conglomerate: "Ooredoo", LegalName: "Ooredoo Q.S.C.",
		BrandName: "Ooredoo", Country: "QA", Kind: KindIncumbent,
		ASNs:       []ASN{8781},
		StateShare: 0.68, MarketShare: 0.85, Founded: 1987,
		Subsidiaries: []AnchorSubsidiary{
			{Host: "DZ", Brand: "Ooredoo Algerie", MarketShare: 0.18},
			{Host: "ID", Brand: "Indosat Ooredoo", MarketShare: 0.16},
			{Host: "IQ", Brand: "Asiacell", MarketShare: 0.30},
			{Host: "KW", Brand: "Ooredoo Kuwait", MarketShare: 0.25},
			{Host: "MM", Brand: "Ooredoo Myanmar", MarketShare: 0.18},
			{Host: "MV", Brand: "Ooredoo Maldives", MarketShare: 0.40},
			{Host: "OM", Brand: "Ooredoo Oman", MarketShare: 0.30},
			{Host: "PS", Brand: "Ooredoo Palestine", MarketShare: 0.25},
			{Host: "TN", Brand: "Ooredoo Tunisie", MarketShare: 0.28},
		},
	},
	{
		Key: "etisalat", Conglomerate: "Etisalat", LegalName: "Emirates Telecommunications Group Company PJSC",
		BrandName: "Etisalat", Country: "AE", Kind: KindIncumbent,
		ASNs:       []ASN{8966, 5384},
		StateShare: 0.60, MarketShare: 0.70, Founded: 1976,
		Subsidiaries: []AnchorSubsidiary{
			{Host: "AF", Brand: "Etisalat Afghanistan", MarketShare: 0.22},
			{Host: "BF", Brand: "Onatel Burkina", MarketShare: 0.55},
			{Host: "BJ", Brand: "Moov Benin", MarketShare: 0.30},
			{Host: "CI", Brand: "Moov Cote d'Ivoire", MarketShare: 0.25},
			{Host: "EG", Brand: "Etisalat Misr", MarketShare: 0.22},
			{Host: "GA", Brand: "Moov Gabon", MarketShare: 0.54},
			{Host: "MA", Brand: "Maroc Telecom", MarketShare: 0.45},
			{Host: "ML", Brand: "Sotelma Malitel", MarketShare: 0.52},
			{Host: "MR", Brand: "Mauritel", MarketShare: 0.51},
			{Host: "NE", Brand: "Moov Niger", MarketShare: 0.58},
			{Host: "TD", Brand: "Moov Tchad", MarketShare: 0.60},
			{Host: "TG", Brand: "Moov Togo", MarketShare: 0.35},
		},
	},
	{
		Key: "du", Conglomerate: "du", LegalName: "Emirates Integrated Telecommunications Company PJSC",
		BrandName: "du", Country: "AE", Kind: KindMobile,
		ASNs:       []ASN{15802},
		StateShare: 0.595, FundsSplit: true, MarketShare: 0.29, Founded: 2005,
		// Together with Etisalat this puts AE's state footprint at the
		// paper's 0.99 (Table 8).
	},
	{
		Key: "viettel", Conglomerate: "Viettel", LegalName: "Viettel Group",
		BrandName: "Viettel", Country: "VN", Kind: KindIncumbent,
		ASNs:       []ASN{7552, 24086},
		StateShare: 1.0, MarketShare: 0.42, Founded: 1989,
		Subsidiaries: []AnchorSubsidiary{
			{Host: "BI", Brand: "Lumitel", MarketShare: 0.35},
			{Host: "CM", Brand: "Nexttel", MarketShare: 0.20},
			{Host: "HT", Brand: "Natcom", MarketShare: 0.40},
			{Host: "KH", Brand: "Metfone", MarketShare: 0.35},
			{Host: "LA", Brand: "Unitel", MarketShare: 0.45},
			{Host: "MZ", Brand: "Movitel", MarketShare: 0.30},
			{Host: "PE", Brand: "Bitel", MarketShare: 0.12},
			{Host: "TL", Brand: "Telemor", MarketShare: 0.40},
			{Host: "TZ", Brand: "Halotel", MarketShare: 0.18},
		},
	},
	{
		Key: "vnpt", Conglomerate: "VNPT", LegalName: "Vietnam Posts and Telecommunications Group",
		BrandName: "VNPT", Country: "VN", Kind: KindIncumbent,
		ASNs:       []ASN{45899, 7643},
		StateShare: 1.0, MarketShare: 0.38, Founded: 1995,
	},
	{
		Key: "mobifoneglobal", Conglomerate: "MobiFone", LegalName: "MobiFone Global JSC",
		BrandName: "MobiFone Global", Country: "VN", Kind: KindTransit,
		ASNs:       []ASN{45895, 45896, 45897},
		StateShare: 1.0, TransitOnly: true, CTIOnly: true, Founded: 2009,
	},
	{
		Key: "telekommalaysia", Conglomerate: "Telekom Malaysia", LegalName: "Telekom Malaysia Berhad",
		BrandName: "TM", Country: "MY", Kind: KindIncumbent,
		ASNs:       []ASN{4788},
		StateShare: 0.54, FundsSplit: true, MarketShare: 0.40, Founded: 1984,
	},
	{
		Key: "axiata", Conglomerate: "Axiata", LegalName: "Axiata Group Berhad",
		BrandName: "Axiata", Country: "MY", Kind: KindMobile,
		ASNs:       []ASN{38466},
		StateShare: 0.53, FundsSplit: true, MarketShare: 0.20, Founded: 1992,
		Subsidiaries: []AnchorSubsidiary{
			{Host: "BD", Brand: "Robi Axiata", MarketShare: 0.18},
			{Host: "ID", Brand: "XL Axiata", MarketShare: 0.14},
			{Host: "KH", Brand: "Smart Axiata", MarketShare: 0.30},
			{Host: "LK", Brand: "Dialog Axiata", MarketShare: 0.35},
			{Host: "NP", Brand: "Ncell", MarketShare: 0.35},
		},
	},
	{
		Key: "internexa", Conglomerate: "Internexa", LegalName: "Internexa S.A. E.S.P.",
		BrandName: "Internexa", Country: "CO", Kind: KindTransit,
		ASNs:       []ASN{18678},
		StateShare: 0.52, TransitOnly: true, Founded: 2000,
		Subsidiaries: []AnchorSubsidiary{
			{Host: "AR", Brand: "Internexa Argentina", ASNs: []ASN{262195}, TransitOnly: true,
				FormerLegal: "Transamerican Telecomunication S.A."},
			{Host: "BR", Brand: "Internexa Brasil", ASNs: []ASN{262589}, TransitOnly: true},
			{Host: "CL", Brand: "Internexa Chile", TransitOnly: true},
			{Host: "PE", Brand: "Internexa Peru", TransitOnly: true},
		},
	},
	{
		Key: "telekomsrbija", Conglomerate: "Telekom Srbija", LegalName: "Telekom Srbija a.d.",
		BrandName: "mts", Country: "RS", Kind: KindIncumbent,
		ASNs:       []ASN{8400},
		StateShare: 0.58, MarketShare: 0.45, Founded: 1997,
		Subsidiaries: []AnchorSubsidiary{
			{Host: "AT", Brand: "mtel Austria", MarketShare: 0.02},
			{Host: "BA", Brand: "mtel Banja Luka", MarketShare: 0.30},
			{Host: "ME", Brand: "mtel Montenegro", MarketShare: 0.25},
		},
	},
	{
		Key: "telkomindonesia", Conglomerate: "Telkom Indonesia", LegalName: "PT Telekomunikasi Indonesia Tbk",
		BrandName: "Telkom", Country: "ID", Kind: KindIncumbent,
		ASNs:       []ASN{7713, 17974},
		StateShare: 0.521, MarketShare: 0.45, Founded: 1991,
		Subsidiaries: []AnchorSubsidiary{
			{Host: "MY", Brand: "Telin Malaysia", MarketShare: 0.01, TransitOnly: true},
			{Host: "SG", Brand: "Telin Singapore", MarketShare: 0.01, TransitOnly: true},
			{Host: "TL", Brand: "Telkomcel", MarketShare: 0.30},
		},
	},
	{
		Key: "telkomsel", Conglomerate: "Telkom Indonesia", LegalName: "PT Telekomunikasi Selular",
		BrandName: "Telkomsel", Country: "ID", Kind: KindMobile,
		ASNs:       []ASN{23693},
		StateShare: 0, MarketShare: 0.30, Founded: 1995,
		// Owned 65% by (state-owned) Telkom Indonesia and 35% by SingTel:
		// wired up by the generator as corporate holdings, making it a
		// multi-government joint venture (§7).
	},
	{
		Key: "batelco", Conglomerate: "Batelco", LegalName: "Bahrain Telecommunications Company B.S.C.",
		BrandName: "Batelco", Country: "BH", Kind: KindIncumbent,
		ASNs:       []ASN{5416},
		StateShare: 0.57, MarketShare: 0.55, Founded: 1981,
		Subsidiaries: []AnchorSubsidiary{
			{Host: "IM", Brand: "Sure Isle of Man", MarketShare: 0.45},
			{Host: "JO", Brand: "Umniah", MarketShare: 0.25},
			{Host: "MV", Brand: "Dhiraagu", MarketShare: 0.45},
		},
	},
	{
		Key: "tunisietelecom", Conglomerate: "Tunisie Telecom", LegalName: "Societe Nationale des Telecommunications",
		BrandName: "Tunisie Telecom", Country: "TN", Kind: KindIncumbent,
		ASNs:       []ASN{5438, 2609},
		StateShare: 0.65, MarketShare: 0.50, Founded: 1995,
		Subsidiaries: []AnchorSubsidiary{
			{Host: "CY", Brand: "Epic Cyprus", MarketShare: 0.20},
			{Host: "MR", Brand: "Mattel Mauritanie", MarketShare: 0.20},
			{Host: "MT", Brand: "Epic Malta", MarketShare: 0.25},
		},
	},
	{
		Key: "stc", Conglomerate: "STC", LegalName: "Saudi Telecom Company SJSC",
		BrandName: "stc", Country: "SA", Kind: KindIncumbent,
		ASNs:       []ASN{39386, 25019},
		StateShare: 0.70, MarketShare: 0.60, Founded: 1998,
		Subsidiaries: []AnchorSubsidiary{
			{Host: "BH", Brand: "stc Bahrain", MarketShare: 0.20},
			{Host: "KW", Brand: "stc Kuwait", MarketShare: 0.22},
		},
	},
	{
		Key: "athfiji", Conglomerate: "Amalgamated Telecom Holdings", LegalName: "Amalgamated Telecom Holdings Limited",
		BrandName: "Vodafone Fiji", Country: "FJ", Kind: KindIncumbent,
		ASNs:       []ASN{9241},
		StateShare: 0.72, MarketShare: 0.70, Founded: 1998,
		// Misleading-name case (§9): nationalized in 2014, brand kept.
		Subsidiaries: []AnchorSubsidiary{
			{Host: "VU", Brand: "Vodafone Vanuatu", MarketShare: 0.40},
		},
	},
	{
		Key: "mauritiustelecom", Conglomerate: "Mauritius Telecom", LegalName: "Mauritius Telecom Ltd",
		BrandName: "Mauritius Telecom", Country: "MU", Kind: KindIncumbent,
		ASNs:       []ASN{23889},
		StateShare: 0.59, MarketShare: 0.60, Founded: 1992,
		Subsidiaries: []AnchorSubsidiary{
			{Host: "UG", Brand: "Telecel Uganda", MarketShare: 0.10},
		},
	},
	{
		Key: "proximus", Conglomerate: "Proximus", LegalName: "Proximus NV",
		BrandName: "Proximus", Country: "BE", Kind: KindIncumbent,
		ASNs:       []ASN{5432, 6774},
		StateShare: 0.533, MarketShare: 0.40, Founded: 1992,
		// AS6774 is BICS, the long-running BE/CH joint venture that
		// became fully Proximus-owned in 2021 (§7).
		Subsidiaries: []AnchorSubsidiary{
			{Host: "LU", Brand: "Telindus Luxembourg", MarketShare: 0.15},
		},
	},
	{
		Key: "swisscom", Conglomerate: "Swisscom", LegalName: "Swisscom AG",
		BrandName: "Swisscom", Country: "CH", Kind: KindIncumbent,
		ASNs:       []ASN{3303},
		StateShare: 0.51, MarketShare: 0.50, ConeTarget: 702, Founded: 1998,
		Subsidiaries: []AnchorSubsidiary{
			{Host: "IT", Brand: "Fastweb", MarketShare: 0.15},
		},
	},
	{
		Key: "rostelecom", Conglomerate: "Rostelecom", LegalName: "PJSC Rostelecom",
		BrandName: "Rostelecom", Country: "RU", Kind: KindIncumbent,
		ASNs:       []ASN{12389, 8342},
		StateShare: 0.53, MarketShare: 0.38, ConeTarget: 3778, Founded: 1993,
		Subsidiaries: []AnchorSubsidiary{
			{Host: "AM", Brand: "GNC-Alfa", MarketShare: 0.25},
		},
	},
	{
		Key: "ttk", Conglomerate: "TTK", LegalName: "TransTeleCom Company JSC",
		BrandName: "TTK", Country: "RU", Kind: KindTransit,
		ASNs:       []ASN{20485, 21127},
		StateShare: 1.0, MarketShare: 0.08, ConeTarget: 3171, Founded: 1997,
		// Owned by (state-owned) Russian Railways — the holdco chain —
		// and, like the real TTK, carrying a retail broadband arm of a
		// few percent of the Russian market alongside the backbone.
	},
	{
		Key: "telekomslovenije", Conglomerate: "Telekom Slovenije", LegalName: "Telekom Slovenije d.d.",
		BrandName: "Telekom Slovenije", Country: "SI", Kind: KindIncumbent,
		ASNs:       []ASN{5603},
		StateShare: 0.626, MarketShare: 0.45, Founded: 1995,
		Subsidiaries: []AnchorSubsidiary{
			{Host: "AL", Brand: "One Albania", MarketShare: 0.25},
		},
	},
	{
		Key: "angolacables", Conglomerate: "Angola Cables", LegalName: "Angola Cables S.A.",
		BrandName: "Angola Cables", Country: "AO", Kind: KindSubmarineCable,
		ASNs:       []ASN{37468},
		StateShare: 0.62, TransitOnly: true, ConeTarget: 1843, ConeStartYear: 2013, Founded: 2009,
		// Majority held via state-owned Angola Telecom and Unitel stakes;
		// modeled as an indirect chain.
	},
	{
		Key: "angolatelecom", Conglomerate: "Angola Telecom", LegalName: "Angola Telecom E.P.",
		BrandName: "Angola Telecom", Country: "AO", Kind: KindIncumbent,
		ASNs:       []ASN{3255 + 33000}, // synthetic-range ASN; real one not named in the paper
		StateShare: 1.0, MarketShare: 0.45, Founded: 1992,
	},
	{
		Key: "bsccl", Conglomerate: "BSCCL", LegalName: "Bangladesh Submarine Cable Company Limited",
		BrandName: "BSCCL", Country: "BD", Kind: KindSubmarineCable,
		ASNs:       []ASN{132602},
		StateShare: 0.74, TransitOnly: true, ConeTarget: 556, ConeStartYear: 2012,
		CTIOnly: true, Founded: 2008,
	},
	{
		Key: "btcl", Conglomerate: "BTCL", LegalName: "Bangladesh Telecommunications Company Limited",
		BrandName: "BTCL", Country: "BD", Kind: KindIncumbent,
		ASNs:       []ASN{17494},
		StateShare: 1.0, MarketShare: 0.25, Founded: 1998,
	},
	{
		Key: "etecsa", Conglomerate: "ETECSA", LegalName: "Empresa de Telecomunicaciones de Cuba S.A.",
		BrandName: "ETECSA", Country: "CU", Kind: KindIncumbent,
		ASNs:       []ASN{11960, 27725},
		StateShare: 1.0, MarketShare: 1.0, Founded: 1994,
		// The paper found ETECSA's AS11960 only via CTI (Table 7); this
		// reproduction simplifies that per-sibling subtlety and lets
		// ETECSA surface through the market-share sources as well (see
		// EXPERIMENTS.md).
	},
	{
		Key: "beltelecom", Conglomerate: "Beltelecom", LegalName: "Republican Unitary Enterprise Beltelecom",
		BrandName: "Beltelecom", Country: "BY", Kind: KindIncumbent,
		ASNs:       []ASN{6697},
		StateShare: 1.0, MarketShare: 0.75, Founded: 1995,
	},
	{
		Key: "bctby", Conglomerate: "NTEC", LegalName: "National Traffic Exchange Center JLLC",
		BrandName: "beCloud", Country: "BY", Kind: KindTransit,
		ASNs:       []ASN{60330, 205475, 35647, 60280},
		StateShare: 1.0, TransitOnly: true, CTIOnly: true, Founded: 2012,
		// The four Belarusian gateway/exchange ASes of Table 7.
	},
	{
		Key: "syriantelecom", Conglomerate: "Syrian Telecom", LegalName: "Syrian Telecommunications Establishment",
		BrandName: "Syrian Telecom", Country: "SY", Kind: KindIncumbent,
		ASNs:       []ASN{29386, 29256},
		StateShare: 1.0, MarketShare: 1.0, Founded: 1994,
	},
	{
		Key: "arsat", Conglomerate: "ARSAT", LegalName: "Empresa Argentina de Soluciones Satelitales S.A.",
		BrandName: "ARSAT", Country: "AR", Kind: KindTransit,
		ASNs:       []ASN{52361},
		StateShare: 1.0, TransitOnly: true, Founded: 2006,
	},
	{
		Key: "telebras", Conglomerate: "Telebras", LegalName: "Telecomunicacoes Brasileiras S.A.",
		BrandName: "Telebras", Country: "BR", Kind: KindTransit,
		ASNs:       []ASN{53237},
		StateShare: 0.87, TransitOnly: true, Founded: 1972,
	},
	{
		Key: "antel", Conglomerate: "ANTEL", LegalName: "Administracion Nacional de Telecomunicaciones",
		BrandName: "ANTEL", Country: "UY", Kind: KindIncumbent,
		ASNs:       []ASN{6057},
		StateShare: 1.0, MarketShare: 0.92, Founded: 1974,
	},
	{
		Key: "exatel", Conglomerate: "Exatel", LegalName: "Exatel S.A.",
		BrandName: "Exatel", Country: "PL", Kind: KindTransit,
		ASNs:       []ASN{20804},
		StateShare: 1.0, TransitOnly: true, ConeTarget: 699, Founded: 2004,
	},
	{
		Key: "ptcl", Conglomerate: "PTCL", LegalName: "Pakistan Telecommunication Company Limited",
		BrandName: "PTCL", Country: "PK", Kind: KindIncumbent,
		ASNs:       []ASN{17557, 45595},
		StateShare: 0.62, ForeignState: "AE", ForeignStateShare: 0.26,
		MarketShare: 0.45, Founded: 1996,
	},
	{
		Key: "wiocc", Conglomerate: "WIOCC", LegalName: "West Indian Ocean Cable Company",
		BrandName: "WIOCC", Country: "MU", Kind: KindSubmarineCable,
		ASNs:       []ASN{37662},
		StateShare: 0.29, TransitOnly: true, Founded: 2008,
		// Consortium of African operators; aggregate state participation
		// below the majority threshold, so it must be *excluded* by the
		// pipeline — a deliberate near-miss test case (§4.1 mentions it).
	},
	// ---- Table 8 high-footprint incumbents not covered above ----
	{
		Key: "ethiotelecom", Conglomerate: "Ethio Telecom", LegalName: "Ethio Telecom",
		BrandName: "Ethio Telecom", Country: "ET", Kind: KindIncumbent,
		ASNs:       []ASN{24757},
		StateShare: 1.0, MarketShare: 1.0, Founded: 1996,
	},
	{
		Key: "tuvalutelecom", Conglomerate: "Tuvalu Telecom", LegalName: "Tuvalu Telecommunications Corporation",
		BrandName: "Tuvalu Telecom", Country: "TV", Kind: KindIncumbent,
		ASNs:       []ASN{23911 + 33000},
		StateShare: 1.0, MarketShare: 1.0, Founded: 1998,
	},
	{
		Key: "telegreenland", Conglomerate: "TELE Greenland", LegalName: "TELE Greenland A/S",
		BrandName: "Tusass", Country: "GL", Kind: KindIncumbent,
		ASNs:       []ASN{8818},
		StateShare: 1.0, MarketShare: 1.0, Founded: 1997,
	},
	{
		Key: "djiboutitelecom", Conglomerate: "Djibouti Telecom", LegalName: "Djibouti Telecom S.A.",
		BrandName: "Djibouti Telecom", Country: "DJ", Kind: KindIncumbent,
		ASNs:       []ASN{30990},
		StateShare: 1.0, MarketShare: 1.0, Founded: 1999,
	},
	{
		Key: "eritel", Conglomerate: "EriTel", LegalName: "Eritrea Telecommunication Services Corporation",
		BrandName: "EriTel", Country: "ER", Kind: KindIncumbent,
		ASNs:       []ASN{30987},
		StateShare: 1.0, MarketShare: 0.99, Founded: 2003,
	},
	{
		Key: "telesur", Conglomerate: "Telesur", LegalName: "Telecommunicatiebedrijf Suriname",
		BrandName: "Telesur", Country: "SR", Kind: KindIncumbent,
		ASNs:       []ASN{27775},
		StateShare: 1.0, MarketShare: 0.97, Founded: 1981,
	},
	{
		Key: "ltt", Conglomerate: "LTT", LegalName: "Libya Telecom and Technology",
		BrandName: "LTT", Country: "LY", Kind: KindIncumbent,
		ASNs:       []ASN{21003},
		StateShare: 1.0, MarketShare: 0.97, Founded: 1997,
	},
	{
		Key: "yemennet", Conglomerate: "YemenNet", LegalName: "Public Telecommunication Corporation",
		BrandName: "YemenNet", Country: "YE", Kind: KindIncumbent,
		ASNs:       []ASN{30873},
		StateShare: 1.0, MarketShare: 0.97, Founded: 1996,
	},
	{
		Key: "algerietelecom", Conglomerate: "Algerie Telecom", LegalName: "Algerie Telecom S.p.A.",
		BrandName: "Algerie Telecom", Country: "DZ", Kind: KindIncumbent,
		ASNs:       []ASN{36947, 327712},
		StateShare: 1.0, MarketShare: 0.78, Founded: 2001,
		// Ooredoo Algerie holds ~0.18; together the state-owned share of
		// the DZ market lands at the paper's 0.96 (Table 8).
	},
	{
		Key: "macaotelecom", Conglomerate: "CTM", LegalName: "Companhia de Telecomunicacoes de Macau",
		BrandName: "CTM", Country: "MO", Kind: KindIncumbent,
		ASNs:       []ASN{4609},
		StateShare: 0.51, MarketShare: 0.91, Founded: 1981,
	},
	{
		Key: "andorratelecom", Conglomerate: "Andorra Telecom", LegalName: "Andorra Telecom S.A.U.",
		BrandName: "Andorra Telecom", Country: "AD", Kind: KindIncumbent,
		ASNs:       []ASN{6752},
		StateShare: 1.0, MarketShare: 0.94, Founded: 1975,
	},
	{
		Key: "tci", Conglomerate: "TCI", LegalName: "Telecommunication Company of Iran",
		BrandName: "TCI", Country: "IR", Kind: KindIncumbent,
		ASNs:       []ASN{58224, 12880},
		StateShare: 0.60, MarketShare: 0.92, Founded: 1971,
	},
	{
		Key: "turkmentelecom", Conglomerate: "Turkmentelecom", LegalName: "Turkmentelecom State Company",
		BrandName: "Turkmentelecom", Country: "TM", Kind: KindIncumbent,
		ASNs:       []ASN{20661},
		StateShare: 1.0, MarketShare: 0.91, Founded: 1993,
	},
	// ---- §7 minority anchors (excluded from the dataset, kept as
	// minority bookkeeping and Figure 6's orange countries) ----
	{
		Key: "deutschetelekom", Conglomerate: "Deutsche Telekom", LegalName: "Deutsche Telekom AG",
		BrandName: "Deutsche Telekom", Country: "DE", Kind: KindIncumbent,
		ASNs:       []ASN{3320, 2792, 5517, 6878},
		StateShare: 0.31, MarketShare: 0.40, Founded: 1995,
	},
	{
		Key: "orange", Conglomerate: "Orange", LegalName: "Orange S.A.",
		BrandName: "Orange", Country: "FR", Kind: KindIncumbent,
		ASNs:       []ASN{5511, 3215, 8376},
		StateShare: 0.2295, MarketShare: 0.42, Founded: 1988,
	},
	{
		Key: "telia", Conglomerate: "Telia", LegalName: "Telia Company AB",
		BrandName: "Telia", Country: "SE", Kind: KindIncumbent,
		ASNs:       []ASN{1299, 3301, 8233},
		StateShare: 0.395, MarketShare: 0.40, Founded: 1993,
	},
	{
		Key: "bharti", Conglomerate: "Bharti Airtel", LegalName: "Bharti Airtel Limited",
		BrandName: "Airtel", Country: "IN", Kind: KindIncumbent,
		ASNs:       []ASN{9498, 24560, 45609},
		StateShare: 0, ForeignState: "SG", ForeignStateShare: 0.351,
		MarketShare: 0.30, Founded: 1995,
		// Foreign *minority*: SingTel's 35.1% stake (§7). The generator
		// wires this stake through the SingTel company entity.
	},
	// ---- private decoys with state-sounding names; the pipeline must
	// not classify these as state-owned ----
	{
		Key: "vodafonegroup", Conglomerate: "Vodafone", LegalName: "Vodafone Group Plc",
		BrandName: "Vodafone", Country: "GB", Kind: KindIncumbent,
		ASNs:       []ASN{1273, 25310},
		StateShare: 0, MarketShare: 0.25, Founded: 1984,
	},
	{
		Key: "americamovil", Conglomerate: "America Movil", LegalName: "America Movil S.A.B. de C.V.",
		BrandName: "Claro", Country: "MX", Kind: KindIncumbent,
		ASNs:       []ASN{28403, 6342},
		StateShare: 0, MarketShare: 0.55, Founded: 2000,
		Subsidiaries: []AnchorSubsidiary{
			// Private subsidiary Orbis wrongly labels state-owned (§7's
			// COMCEL false-positive case).
			{Host: "CO", Brand: "Comunicacion Celular de Colombia", ASNs: []ASN{26611}, MarketShare: 0.35},
		},
	},
}

// anchorASNs returns the set of all ASNs reserved by anchors so the
// synthetic allocator avoids them.
func anchorASNs() map[ASN]bool {
	out := make(map[ASN]bool)
	for _, a := range Anchors {
		for _, n := range a.ASNs {
			out[n] = true
		}
		for _, s := range a.Subsidiaries {
			for _, n := range s.ASNs {
				out[n] = true
			}
		}
	}
	return out
}
