package world

import (
	"testing"

	"stateowned/internal/ownership"
)

// testWorld generates a small-scale world once for the whole test file.
var testW = Generate(Config{Seed: 7, Scale: 0.15})

func TestValidate(t *testing.T) {
	if err := testW.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Config{Seed: 99, Scale: 0.05})
	b := Generate(Config{Seed: 99, Scale: 0.05})
	if len(a.OperatorIDs) != len(b.OperatorIDs) || len(a.ASNList) != len(b.ASNList) {
		t.Fatalf("sizes differ: %d/%d vs %d/%d",
			len(a.OperatorIDs), len(a.ASNList), len(b.OperatorIDs), len(b.ASNList))
	}
	for i := range a.ASNList {
		if a.ASNList[i] != b.ASNList[i] {
			t.Fatalf("ASN lists diverge at %d", i)
		}
	}
	for _, id := range a.OperatorIDs {
		oa, ob := a.Operators[id], b.Operators[id]
		if oa.LegalName != ob.LegalName || oa.AddrShare != ob.AddrShare || oa.Subscribers != ob.Subscribers {
			t.Fatalf("operator %s differs between runs", id)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := Generate(Config{Seed: 1, Scale: 0.05})
	b := Generate(Config{Seed: 2, Scale: 0.05})
	diff := false
	for _, id := range a.OperatorIDs {
		if ob, ok := b.Operators[id]; ok {
			if oa := a.Operators[id]; oa.LegalName != ob.LegalName {
				diff = true
				break
			}
		} else {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("seeds 1 and 2 generated identical worlds")
	}
}

func TestAnchorsPlanted(t *testing.T) {
	cases := []struct {
		asn     ASN
		country string
		owner   string // expected controlling state ("" = not state-owned)
	}{
		{2119, "NO", "NO"},   // Telenor
		{7473, "SG", "SG"},   // SingTel
		{7474, "AU", "SG"},   // Optus: SG-controlled in AU
		{4809, "CN", "CN"},   // China Telecom
		{12389, "RU", "RU"},  // Rostelecom
		{20485, "RU", "RU"},  // TTK via holdco chain
		{37468, "AO", "AO"},  // Angola Cables via Angola Telecom chain
		{132602, "BD", "BD"}, // BSCCL
		{11960, "CU", "CU"},  // ETECSA
		{52361, "AR", "AR"},  // ARSAT
		{4788, "MY", "MY"},   // Telekom Malaysia via fund aggregation
		{23693, "ID", "ID"},  // Telkomsel joint venture: ID wins
		{17557, "PK", "PK"},  // PTCL joint venture: PK wins
		{262195, "AR", "CO"}, // Internexa Argentina: CO-controlled
		{3320, "DE", ""},     // Deutsche Telekom: minority only
		{5511, "FR", ""},     // Orange: minority only
		{1299, "SE", ""},     // Telia: minority only
		{9498, "IN", ""},     // Bharti: foreign minority only
		{37662, "MU", ""},    // WIOCC consortium below threshold
		{1273, "GB", ""},     // Vodafone: private
		{26611, "CO", ""},    // COMCEL: private (America Movil)
	}
	for _, tc := range cases {
		a, ok := testW.AS(tc.asn)
		if !ok {
			t.Errorf("AS%d missing", tc.asn)
			continue
		}
		if a.Country != tc.country {
			t.Errorf("AS%d country = %s, want %s", tc.asn, a.Country, tc.country)
		}
		owner, owned := testW.TrueStateOwnedAS(tc.asn)
		if tc.owner == "" {
			if owned {
				t.Errorf("AS%d should not be state-owned, got %s", tc.asn, owner)
			}
		} else if owner != tc.owner {
			t.Errorf("AS%d owner = %q (owned=%v), want %s", tc.asn, owner, owned, tc.owner)
		}
	}
}

func TestForeignSubsidiaries(t *testing.T) {
	owner, ok := testW.TrueForeignSubsidiaryAS(7474) // Optus
	if !ok || owner != "SG" {
		t.Errorf("Optus foreign-subsidiary = %q %v, want SG", owner, ok)
	}
	if _, ok := testW.TrueForeignSubsidiaryAS(7473); ok {
		t.Error("SingTel home AS flagged as foreign subsidiary")
	}
	// Every Table 3 owner country must control at least one foreign AS.
	owners := map[string]int{}
	for _, asn := range testW.ASNList {
		if cc, ok := testW.TrueForeignSubsidiaryAS(asn); ok {
			owners[cc]++
		}
	}
	for _, cc := range []string{"AE", "CN", "QA", "NO", "VN", "SG", "MY", "CO", "RS", "ID", "BH", "TN", "SA", "FJ", "MU", "BE", "CH", "RU", "SI"} {
		if owners[cc] == 0 {
			t.Errorf("owner country %s has no foreign subsidiary ASes", cc)
		}
	}
}

func TestExcludedKindsNotStateOwnedASes(t *testing.T) {
	// Academic and government networks are state-funded but out of scope:
	// TrueStateOwnedAS must never label them.
	n := 0
	for _, id := range testW.OperatorIDs {
		op := testW.Operators[id]
		if op.Kind.InScope() {
			continue
		}
		n++
		for _, asn := range op.ASNs {
			if owner, ok := testW.TrueStateOwnedAS(asn); ok {
				t.Fatalf("out-of-scope AS%d (%s) labeled state-owned by %s", asn, op.Kind, owner)
			}
		}
	}
	if n == 0 {
		t.Error("world has no excluded-kind operators")
	}
}

func TestJointVenturesPlanted(t *testing.T) {
	op, _ := testW.OperatorOfAS(17557)
	parts, ok := testW.Graph.JointVenture(op.Entity, 0.20)
	if !ok || parts[0] != "PK" {
		t.Errorf("PTCL joint venture = %v %v", parts, ok)
	}
}

func TestFundAggregationPlanted(t *testing.T) {
	op, _ := testW.OperatorOfAS(4788)
	c := testW.ControlOf(op)
	if c.Controller != "MY" {
		t.Fatalf("Telekom Malaysia controller = %q", c.Controller)
	}
	// The government must hold no *direct* stake; control flows through
	// the three funds.
	for _, h := range testW.Graph.Holders(op.Entity) {
		if h.Holder == ownership.EntityID("gov-MY") {
			t.Error("Telekom Malaysia has a direct government holding; expected funds only")
		}
	}
}

func TestHighFootprintCountries(t *testing.T) {
	// Table 8 anchors: the state's address footprint must be >= 0.9 in
	// these countries.
	for _, cc := range []string{"ET", "CU", "SY", "AE"} {
		var state, total uint64
		for _, asn := range testW.ASNList {
			a := testW.ASes[asn]
			if a.Country != cc {
				continue
			}
			op := testW.Operators[a.OperatorID]
			if !op.Kind.ProvidesAccess() {
				continue
			}
			n := a.NumAddresses()
			total += n
			if owner, ok := testW.TrueStateOwnedAS(asn); ok && owner == cc {
				state += n
			}
		}
		if total == 0 {
			t.Errorf("%s: no access address space", cc)
			continue
		}
		if frac := float64(state) / float64(total); frac < 0.85 {
			t.Errorf("%s: state access footprint %.2f, want >= 0.85", cc, frac)
		}
	}
}

func TestWorldScaleCounts(t *testing.T) {
	if len(testW.Countries) < 180 {
		t.Errorf("countries = %d", len(testW.Countries))
	}
	if len(testW.ASNList) < 1000 {
		t.Errorf("world too small: %d ASes", len(testW.ASNList))
	}
	// Count state-owned countries (majority, in-scope operators).
	countries := map[string]bool{}
	for _, asn := range testW.ASNList {
		if owner, ok := testW.TrueStateOwnedAS(asn); ok {
			a := testW.ASes[asn]
			if a.Country == owner {
				countries[owner] = true
			}
		}
	}
	if n := len(countries); n < 95 || n > 150 {
		t.Errorf("state-owned countries = %d, want ~123 +/- band", n)
	}
}

func TestCountrySubsetConfig(t *testing.T) {
	w := Generate(Config{Seed: 3, Scale: 0.1, Countries: []string{"NO", "SE", "DK"}})
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, id := range w.OperatorIDs {
		cc := w.Operators[id].Country
		if cc != "NO" && cc != "SE" && cc != "DK" {
			t.Fatalf("operator %s outside country subset: %s", id, cc)
		}
	}
	// Telenor's home anchor must exist; its excluded-host subsidiaries
	// must not.
	if _, ok := w.AS(2119); !ok {
		t.Error("Telenor anchor missing in subset world")
	}
	if _, ok := w.AS(7473); ok {
		t.Error("SingTel generated despite SG being out of subset")
	}
}

func TestSubscriberSanity(t *testing.T) {
	for _, id := range testW.OperatorIDs {
		op := testW.Operators[id]
		if op.Subscribers < 0 {
			t.Fatalf("%s: negative subscribers", id)
		}
		if !op.Kind.ProvidesAccess() && op.Subscribers > 0 {
			t.Fatalf("%s (%s): non-access operator has subscribers", id, op.Kind)
		}
		users := testW.Profiles[op.Country].InternetUsers
		if op.Subscribers > users {
			t.Fatalf("%s: subscribers %d exceed country users %d", id, op.Subscribers, users)
		}
	}
}

func TestStaleWhoisNamePlanted(t *testing.T) {
	op, ok := testW.OperatorOfAS(262195)
	if !ok {
		t.Fatal("Internexa Argentina missing")
	}
	if op.FormerName != "Transamerican Telecomunication S.A." {
		t.Errorf("FormerName = %q", op.FormerName)
	}
}
