package world

import "testing"

// TestCalibrationBands regenerates the full-scale default world and checks
// the ground-truth aggregates stay inside bands around the paper's
// published numbers. These are the quantities the whole reproduction is
// calibrated against; if a generator change drifts them, the experiment
// tables drift too.
func TestCalibrationBands(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale world generation")
	}
	w := Generate(DefaultConfig())
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}

	stateASes, subASes := 0, 0
	companies := map[string]bool{}
	stateCountries := map[string]bool{}
	var stateAddr, totalAddr, usAddr uint64
	for _, asn := range w.ASNList {
		a := w.ASes[asn]
		n := a.NumAddresses()
		totalAddr += n
		if a.Country == "US" {
			usAddr += n
		}
		if owner, ok := w.TrueStateOwnedAS(asn); ok {
			stateASes++
			stateAddr += n
			companies[a.OperatorID] = true
			if a.Country == owner {
				stateCountries[owner] = true
			}
			if _, sub := w.TrueForeignSubsidiaryAS(asn); sub {
				subASes++
			}
		}
	}

	check := func(name string, got, lo, hi int) {
		t.Helper()
		if got < lo || got > hi {
			t.Errorf("%s = %d, want in [%d, %d]", name, got, lo, hi)
		} else {
			t.Logf("%s = %d (band [%d, %d])", name, got, lo, hi)
		}
	}
	// Paper: 989 state-owned ASes, 193 foreign-subsidiary ASes, 302
	// companies, 123 countries. The ground truth should be in the same
	// regime (the pipeline then recovers most of it).
	check("state-owned ASes (paper 989)", stateASes, 600, 1200)
	check("foreign-subsidiary ASes (paper 193)", subASes, 150, 260)
	check("state-owned companies (paper 302)", len(companies), 210, 380)
	check("state-owned countries (paper 123)", len(stateCountries), 105, 140)
	check("total ASes (paper sees 68k; scaled world)", len(w.ASNList), 8000, 20000)

	stateFrac := float64(stateAddr) / float64(totalAddr)
	exUS := float64(stateAddr) / float64(totalAddr-usAddr)
	t.Logf("state address share = %.3f (paper 0.17), ex-US = %.3f (paper 0.25)", stateFrac, exUS)
	if stateFrac < 0.12 || stateFrac > 0.30 {
		t.Errorf("state address share %.3f outside [0.12, 0.30]", stateFrac)
	}
	// The US-exclusion effect is the paper's sharpest global claim:
	// removing the US raises the share by roughly 1.5x.
	if ratio := exUS / stateFrac; ratio < 1.25 || ratio > 1.75 {
		t.Errorf("US-exclusion ratio %.2f outside [1.25, 1.75] (paper 25/17 = 1.47)", ratio)
	}
}
