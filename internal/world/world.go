// Package world generates the synthetic ground truth that replaces the
// real Internet and the real corporate world in this reproduction: every
// country's operator companies, their equity structures (who the states
// control), the ASNs and address space they hold, and their subscriber
// bases.
//
// The generator is deterministic in its seed and plants "anchor"
// operators — the companies the paper names explicitly (Telenor, SingTel,
// Ooredoo, Angola Cables, …) with their real ASNs and subsidiary
// footprints — so the reproduced tables are directly comparable to the
// paper's. Everything else is synthesized from per-region statistical
// profiles.
package world

import (
	"fmt"
	"sort"

	"stateowned/internal/ccodes"
	"stateowned/internal/netaddr"
	"stateowned/internal/ownership"
)

// ASN is an autonomous system number.
type ASN uint32

// SortASNs sorts an ASN slice ascending in place. Every package that
// materializes ASN lists for stable consumption goes through this helper.
func SortASNs(asns []ASN) {
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
}

// OperatorKind classifies a network-operating company. The paper's scope
// filter (§3, §5.3) keys off this: only federal-level operators offering
// unrestricted transit or access count; academic, bureaucratic,
// administrative and non-ISP organizations are excluded.
type OperatorKind uint8

// Operator kinds.
const (
	KindIncumbent      OperatorKind = iota // national fixed-line/broadband incumbent
	KindMobile                             // mobile network operator
	KindRegionalISP                        // competitive access ISP (national license)
	KindTransit                            // wholesale/transit-only carrier
	KindSubmarineCable                     // submarine-cable operator (transit)
	KindAcademic                           // NREN / university network (excluded by scope)
	KindGovernmentNet                      // government office connectivity (excluded)
	KindInternetAdmin                      // NIC / ccTLD / registry bodies (excluded)
	KindMunicipal                          // subnational public operator (excluded: not federal)
	KindEnterprise                         // enterprise / hosting / content ASes
)

// String names the kind.
func (k OperatorKind) String() string {
	switch k {
	case KindIncumbent:
		return "incumbent"
	case KindMobile:
		return "mobile"
	case KindRegionalISP:
		return "regional-isp"
	case KindTransit:
		return "transit"
	case KindSubmarineCable:
		return "submarine-cable"
	case KindAcademic:
		return "academic"
	case KindGovernmentNet:
		return "government-net"
	case KindInternetAdmin:
		return "internet-admin"
	case KindMunicipal:
		return "municipal"
	case KindEnterprise:
		return "enterprise"
	default:
		return "unknown"
	}
}

// InScope reports whether the paper's definition of "Internet operator"
// covers this kind of company: offering transit or unrestricted access at
// federal level.
func (k OperatorKind) InScope() bool {
	switch k {
	case KindIncumbent, KindMobile, KindRegionalISP, KindTransit, KindSubmarineCable:
		return true
	default:
		return false
	}
}

// ProvidesAccess reports whether the kind serves end users (eyeballs).
func (k OperatorKind) ProvidesAccess() bool {
	switch k {
	case KindIncumbent, KindMobile, KindRegionalISP:
		return true
	default:
		return false
	}
}

// Operator is a company operating one or more ASes in one country. A
// multinational group is several Operators (one per country of operation)
// tied together by the ownership graph and a shared Conglomerate name,
// mirroring how the paper models parent companies and their foreign
// subsidiaries as separate legal entities.
type Operator struct {
	ID     string             // stable identifier, e.g. "NO-incumbent-0"
	Entity ownership.EntityID // node in the equity graph
	OrgID  string             // registry org handle, e.g. "ORG-TELE1-RIPE"

	LegalName string // registered legal name (WHOIS OrgName)
	BrandName string // commercial/brand name (PeeringDB, websites)
	// FormerName is a stale legal name still present in WHOIS when the
	// company rebranded or was acquired and the records were never
	// updated (the Internexa/"Transamerican Telecomunication" case).
	FormerName   string
	Conglomerate string // group/brand-family name shared with the parent

	Kind    OperatorKind
	Country string // ISO code of the country of operation/registration

	// Subscribers is the ground-truth residential/mobile subscriber count
	// in Country (eyeball population before estimation noise).
	Subscribers int
	// AddrShare is the ground-truth fraction of Country's announced
	// address space this operator originates.
	AddrShare float64
	// WebPresence in [0,1] scales the probability that authoritative
	// documents (website, annual report) about this company exist online.
	WebPresence float64
	// QuietGateway marks pure transit gateways that serve no consumers
	// and "fly under the radar" of popularity- and ownership-database
	// sources (the paper's Table 7 class: MobiFone Global, BSCCL, the
	// Belarusian exchange ASes). The topology builder places them above
	// their country's primary gateway so CTI sees them.
	QuietGateway bool
	// Founded is the year the company (or its AS registration) appeared.
	Founded int

	ASNs []ASN
}

// AS is one autonomous system: its registry identity and the prefixes it
// originates in BGP.
type AS struct {
	Number     ASN
	OperatorID string
	Name       string // registry AS name (often cryptic, sometimes unrelated to the brand)
	Country    string
	Registered int // year the ASN appeared (drives historical snapshots)
	Prefixes   []netaddr.Prefix
}

// NumAddresses totals the AS's originated address space.
func (a *AS) NumAddresses() uint64 { return netaddr.SumAddresses(a.Prefixes) }

// CountryProfile carries per-country simulation parameters.
type CountryProfile struct {
	Code string
	// ICT in [0,1] models digital-ecosystem maturity: it scales document
	// availability, WHOIS freshness, PeeringDB participation and stub-AS
	// counts (§9 "Visibility and data interpretation").
	ICT float64
	// AddressBudget is the total announced IPv4 address space
	// attributable to the country.
	AddressBudget uint64
	// InternetUsers is the ground-truth eyeball population.
	InternetUsers int
	// TransitDominated marks countries whose inbound connectivity is
	// dominated by transit providers rather than peering; CTI is
	// computed for these (the paper applies CTI in 75 such countries).
	TransitDominated bool
	// GatewayConcentrated marks the stricter condition that domestic
	// connectivity funnels through one or two national gateway ASes
	// (Syria, Cuba, Belarus, ...). Only here do domestic state gateways
	// top the CTI ranking; elsewhere foreign carriers do.
	GatewayConcentrated bool
}

// World is the generated ground truth.
type World struct {
	Seed      uint64
	Graph     *ownership.Graph
	Operators map[string]*Operator
	ASes      map[ASN]*AS
	Profiles  map[string]*CountryProfile

	// stable iteration orders
	OperatorIDs []string
	ASNList     []ASN
	Countries   []string
}

// Operator returns the operator by ID.
func (w *World) Operator(id string) (*Operator, bool) {
	op, ok := w.Operators[id]
	return op, ok
}

// AS returns the AS record for an ASN.
func (w *World) AS(n ASN) (*AS, bool) {
	a, ok := w.ASes[n]
	return a, ok
}

// OperatorOfAS returns the operator owning the ASN.
func (w *World) OperatorOfAS(n ASN) (*Operator, bool) {
	a, ok := w.ASes[n]
	if !ok {
		return nil, false
	}
	return w.Operators[a.OperatorID], true
}

// ControlOf returns the ground-truth control status of an operator.
func (w *World) ControlOf(op *Operator) ownership.Control {
	return w.Graph.ControlOf(op.Entity)
}

// TrueStateOwnedAS reports whether the AS belongs to a majority
// state-owned in-scope Internet operator, and if so which state controls
// it. This is the label the pipeline is scored against.
func (w *World) TrueStateOwnedAS(n ASN) (string, bool) {
	op, ok := w.OperatorOfAS(n)
	if !ok || !op.Kind.InScope() {
		return "", false
	}
	c := w.ControlOf(op)
	if !c.Controlled() {
		return "", false
	}
	return c.Controller, true
}

// TrueForeignSubsidiaryAS reports whether the AS belongs to an in-scope
// operator controlled by a state other than its country of operation.
func (w *World) TrueForeignSubsidiaryAS(n ASN) (string, bool) {
	op, ok := w.OperatorOfAS(n)
	if !ok || !op.Kind.InScope() {
		return "", false
	}
	owner, ok := w.Graph.IsForeignSubsidiary(op.Entity)
	return owner, ok
}

// OperatorsIn returns the operators registered in a country, sorted by ID.
func (w *World) OperatorsIn(country string) []*Operator {
	var out []*Operator
	for _, id := range w.OperatorIDs {
		if op := w.Operators[id]; op.Country == country {
			out = append(out, op)
		}
	}
	return out
}

// ASesOf returns the AS records of an operator in ASN order.
func (w *World) ASesOf(op *Operator) []*AS {
	out := make([]*AS, 0, len(op.ASNs))
	for _, n := range op.ASNs {
		out = append(out, w.ASes[n])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	return out
}

// TotalAnnounced returns the total announced address space across all ASes.
func (w *World) TotalAnnounced() uint64 {
	var n uint64
	for _, asn := range w.ASNList {
		n += w.ASes[asn].NumAddresses()
	}
	return n
}

// Validate checks internal consistency; the generator's tests call this.
func (w *World) Validate() error {
	for _, id := range w.OperatorIDs {
		op, ok := w.Operators[id]
		if !ok {
			return fmt.Errorf("world: operator index lists missing %q", id)
		}
		if _, ok := ccodes.ByCode(op.Country); !ok {
			return fmt.Errorf("world: operator %q has unknown country %q", id, op.Country)
		}
		if _, ok := w.Graph.Entity(op.Entity); !ok {
			return fmt.Errorf("world: operator %q has no entity", id)
		}
		for _, asn := range op.ASNs {
			a, ok := w.ASes[asn]
			if !ok {
				return fmt.Errorf("world: operator %q lists missing AS%d", id, asn)
			}
			if a.OperatorID != id {
				return fmt.Errorf("world: AS%d owner mismatch %q != %q", asn, a.OperatorID, id)
			}
		}
	}
	seen := make(map[netaddr.Prefix]ASN)
	for _, asn := range w.ASNList {
		a, ok := w.ASes[asn]
		if !ok {
			return fmt.Errorf("world: ASN index lists missing AS%d", asn)
		}
		for _, p := range a.Prefixes {
			if prev, dup := seen[p]; dup {
				return fmt.Errorf("world: prefix %v originated by AS%d and AS%d", p, prev, asn)
			}
			seen[p] = asn
		}
	}
	return nil
}
