package world

import (
	"fmt"
	"strings"

	"stateowned/internal/ccodes"
	"stateowned/internal/rng"
)

// Name generation for synthetic operators. Real operator names mix
// country references, generic telecom words and invented brands; the
// pipeline's name-matching must cope with all three, so the generator
// produces all three.

var brandSyllables = []string{
	"net", "tel", "com", "fi", "lu", "vo", "za", "ri", "ko", "da",
	"mi", "sa", "to", "ve", "no", "li", "ra", "be", "ax", "or",
	"qu", "in", "ex", "ul", "an", "el", "os", "ur", "ix", "ap",
}

// brandName invents a pronounceable brand of 2-3 syllables.
func brandName(r *rng.Stream) string {
	n := 2 + r.Intn(2)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(brandSyllables[r.Intn(len(brandSyllables))])
	}
	s := b.String()
	return strings.ToUpper(s[:1]) + s[1:]
}

// shortCountry derives the name fragment operators use: "Norway" ->
// "Norway", "United Arab Emirates" -> "Emirates", etc.
func shortCountry(c ccodes.Country) string {
	name := c.Name
	for _, prefix := range []string{"United ", "Republic of ", "DR "} {
		name = strings.TrimPrefix(name, prefix)
	}
	if i := strings.IndexByte(name, ' '); i > 0 && len(name) > 14 {
		name = name[:i]
	}
	return name
}

// incumbentName generates a plausible national-incumbent brand.
func incumbentName(r *rng.Stream, c ccodes.Country) string {
	s := shortCountry(c)
	switch r.Intn(6) {
	case 0:
		return s + " Telecom"
	case 1:
		return "Telecom " + s
	case 2:
		return s + " Telecommunications"
	case 3:
		return "Tele" + strings.ToLower(s[:min(4, len(s))])
	case 4:
		return s + "Tel"
	default:
		return "National Telecom of " + s
	}
}

// mobileName generates a mobile-operator brand.
func mobileName(r *rng.Stream, c ccodes.Country) string {
	s := shortCountry(c)
	switch r.Intn(5) {
	case 0:
		return "Mobi" + strings.ToLower(s[:min(3, len(s))])
	case 1:
		return s + " Mobile"
	case 2:
		return brandName(r) + " Cell"
	case 3:
		return "AirLink " + s
	default:
		return brandName(r) + " Mobile"
	}
}

// regionalISPName generates a competitive-ISP brand.
func regionalISPName(r *rng.Stream, c ccodes.Country) string {
	switch r.Intn(5) {
	case 0:
		return brandName(r) + "Net"
	case 1:
		return brandName(r) + " Broadband"
	case 2:
		return "Fiber" + brandName(r)
	case 3:
		return brandName(r) + " Online"
	default:
		return brandName(r) + " Internet"
	}
}

// transitName generates a wholesale/backbone brand.
func transitName(r *rng.Stream, c ccodes.Country) string {
	s := shortCountry(c)
	switch r.Intn(4) {
	case 0:
		return s + " Backbone"
	case 1:
		return brandName(r) + " Carrier"
	case 2:
		return s + " IX Transit"
	default:
		return brandName(r) + " Wholesale"
	}
}

// excludedName generates names for out-of-scope organizations.
func excludedName(r *rng.Stream, c ccodes.Country, kind OperatorKind) string {
	s := shortCountry(c)
	switch kind {
	case KindAcademic:
		if r.Bool(0.5) {
			return s + " Research and Education Network"
		}
		return "National University of " + s
	case KindGovernmentNet:
		if r.Bool(0.5) {
			return "Government of " + s + " IT Directorate"
		}
		return s + " Federal Network Agency"
	case KindInternetAdmin:
		return "NIC " + s
	case KindMunicipal:
		return brandName(r) + " Municipal Broadband"
	default:
		return brandName(r) + " " + pick(r, "Hosting", "Datacenter", "Systems", "Cloud", "Media")
	}
}

func pick(r *rng.Stream, xs ...string) string { return xs[r.Intn(len(xs))] }

// legalSuffix returns a jurisdiction-plausible legal-form suffix.
func legalSuffix(r *rng.Stream, c ccodes.Country) string {
	var forms []string
	switch c.RIR {
	case ccodes.RIPE:
		forms = []string{"AS", "AB", "A/S", "GmbH", "S.p.A.", "PJSC", "JSC", "B.V.", "S.A.", "Ltd"}
	case ccodes.LACNIC:
		forms = []string{"S.A.", "S.A. de C.V.", "Ltda", "S.R.L."}
	case ccodes.APNIC:
		forms = []string{"Berhad", "Pte Ltd", "Co Ltd", "Limited", "Pty Ltd", "JSC"}
	case ccodes.AFRINIC:
		forms = []string{"S.A.", "Ltd", "SAE", "Limited", "PLC"}
	default:
		forms = []string{"Inc.", "LLC", "Corp.", "Ltd"}
	}
	return forms[r.Intn(len(forms))]
}

// legalName builds the registered legal name from a brand.
func legalName(r *rng.Stream, brand string, c ccodes.Country) string {
	return brand + " " + legalSuffix(r, c)
}

// asName builds the registry AS name. Real AS names range from clean
// ("TELENOR-AS") to cryptic legacy strings, and sibling ASes frequently
// carry unrelated names — the failure mode AS2Org inherits.
func asName(r *rng.Stream, brand, country string, sibling int) string {
	up := strings.ToUpper(strings.ReplaceAll(strings.Fields(brand)[0], "'", ""))
	if len(up) > 10 {
		up = up[:10]
	}
	switch {
	case sibling == 0:
		return fmt.Sprintf("%s-AS-%s", up, country)
	case r.Bool(0.5):
		return fmt.Sprintf("%s-AS%d", up, sibling+1)
	default:
		// Cryptic legacy sibling name unrelated to the brand.
		return fmt.Sprintf("%s-NET-%s", strings.ToUpper(brandName(r)), country)
	}
}

// orgID builds a registry org handle in the RIR's style. seq guarantees
// global uniqueness, which real registries enforce for org handles.
func orgID(brand string, seq int, rir ccodes.RIR) string {
	up := strings.ToUpper(strings.ReplaceAll(strings.Fields(brand)[0], "'", ""))
	if len(up) > 4 {
		up = up[:4]
	}
	return fmt.Sprintf("ORG-%s%d-%s", up, seq, rir)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
