package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"stateowned/internal/sched"
)

// ManifestName is the append-only log of archive state transitions,
// one individually checksummed record per committed or evicted
// generation. The manifest is the recovery root: a segment the
// manifest does not reference does not exist, no matter what the
// directory listing says.
const ManifestName = "MANIFEST"

// maxManifestPayload bounds a single record. Records are small JSON
// objects; anything claiming to be larger is a torn or corrupt length
// prefix, and the decoder must not allocate gigabytes on its say-so.
const maxManifestPayload = 1 << 20

// manifestRecord is one manifest entry.
//
// Op "commit" binds a generation number to a named, checksummed
// segment; a later commit for the same generation supersedes the
// earlier one (that is how a re-committed generation heals a corrupt
// segment). Op "evict" retires a generation from the archive.
//
// Seq is a monotone record counter — pure diagnostics and golden-file
// stability, never control flow. Nothing here is a timestamp: the
// manifest bytes for a given build sequence are deterministic, which is
// what lets the golden fixture pin them exactly.
type manifestRecord struct {
	Op       string `json:"op"`
	Seq      int    `json:"seq"`
	Gen      int    `json:"gen"`
	Segment  string `json:"segment,omitempty"`
	Checksum string `json:"checksum,omitempty"`
	// DatasetSum mirrors Record.DatasetSum so fleet agreement checks
	// can be answered from the manifest alone.
	DatasetSum string `json:"dataset_sum,omitempty"`
}

// encodeManifestRecord frames one record:
//
//	u32 len(payload) | payload JSON | 32-byte checksum of the payload
//
// Each record carries its own checksum so a torn append (the only
// mutation an append-only file admits) damages at most the tail, and
// the decoder can prove exactly where the valid prefix ends.
func encodeManifestRecord(rec manifestRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("encoding manifest record: %w", err)
	}
	buf := make([]byte, 0, 4+len(payload)+32)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	h := sched.NewHasher(manifestDomain)
	h.Bytes(payload)
	sum := h.Sum()
	return append(buf, sum[:]...), nil
}

// decodeManifest walks the record stream and returns the longest valid
// prefix. It never fails and never panics: the first record that does
// not verify — truncated frame, oversized length, checksum mismatch,
// JSON that does not decode — ends the manifest there, and note says
// why and at which byte offset. Records beyond a damaged one are
// unreachable by design: with no trustworthy length prefix there is no
// safe resynchronization point, and guessing would risk adopting bytes
// that happen to checksum by accident.
func decodeManifest(data []byte) (recs []manifestRecord, note string) {
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < 4 {
			return recs, fmt.Sprintf("torn tail at byte %d: %d trailing bytes, record frame needs 4", off, len(rest))
		}
		n := int(binary.BigEndian.Uint32(rest))
		if n > maxManifestPayload {
			return recs, fmt.Sprintf("corrupt record at byte %d: payload length %d exceeds bound", off, n)
		}
		if len(rest) < 4+n+32 {
			return recs, fmt.Sprintf("torn tail at byte %d: record wants %d bytes, %d remain", off, 4+n+32, len(rest))
		}
		payload := rest[4 : 4+n]
		h := sched.NewHasher(manifestDomain)
		h.Bytes(payload)
		sum := h.Sum()
		var stored sched.Fingerprint
		copy(stored[:], rest[4+n:4+n+32])
		if sum != stored {
			return recs, fmt.Sprintf("corrupt record at byte %d: checksum mismatch", off)
		}
		var rec manifestRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, fmt.Sprintf("corrupt record at byte %d: %v", off, err)
		}
		recs = append(recs, rec)
		off += 4 + n + 32
	}
	return recs, ""
}
