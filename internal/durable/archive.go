package durable

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultRetain is how many generations the archive keeps on disk when
// Options.Retain is 0. It is independent of the snapshot store's
// in-memory ring: the archive may retain more history than is pinnable.
const DefaultRetain = 8

// Options configures an Archive.
type Options struct {
	// FS is the filesystem seam (nil = the real filesystem).
	FS FS
	// Dir is the archive directory; created if missing.
	Dir string
	// Retain bounds how many generations stay archived (0 =
	// DefaultRetain; minimum 1). Older generations are evicted —
	// recorded in the manifest, segment removed — as commits advance.
	Retain int
}

// Archive is the crash-consistent generation archive. One writer (the
// snapshot store's build path) calls Commit; recovery state is
// immutable after Open; counters are safe to read from any goroutine.
type Archive struct {
	fs     FS
	dir    string
	retain int

	mu   sync.Mutex
	seq  int                // next manifest sequence number
	live map[int]segmentRef // manifest-visible generations

	recovery Recovery

	writes        atomic.Uint64
	writeFailures atomic.Uint64
	verified      atomic.Uint64
	quarantined   atomic.Uint64
	evictions     atomic.Uint64
}

// segmentRef is the manifest's view of one archived generation.
type segmentRef struct {
	segment    string
	checksum   string
	datasetSum string
}

// RecoveredGen is one verified archived generation: its record and the
// verbatim dataset bytes the pre-crash process exported.
type RecoveredGen struct {
	Record  *Record
	Dataset []byte
}

// Quarantine is one archived generation recovery refused to adopt,
// with the structured reason. Quarantined entries are never served;
// they heal when the generation is rebuilt and re-committed (the new
// segment supersedes the damaged one in the manifest).
type Quarantine struct {
	Gen     int    `json:"gen"`
	Segment string `json:"segment"`
	Reason  string `json:"reason"`
}

// Recovery is the outcome of the Open-time archive scan.
type Recovery struct {
	// Generations are the verified archived generations, ascending.
	Generations []RecoveredGen
	// Quarantined lists every manifest-referenced generation that
	// failed verification, ascending by generation.
	Quarantined []Quarantine
	// ManifestNote is the decoder's truncation diagnosis when the
	// manifest had a torn or corrupt tail ("" when it was clean).
	ManifestNote string
}

// Open prepares the archive directory, probes that it is writable, and
// scans the manifest, verifying every referenced segment. It never
// fails on damaged contents — damage becomes Quarantine entries — only
// on an unusable directory.
func Open(opts Options) (*Archive, error) {
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.Retain <= 0 {
		opts.Retain = DefaultRetain
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("durable: archive directory not set")
	}
	a := &Archive{fs: opts.FS, dir: opts.Dir, retain: opts.Retain, live: map[int]segmentRef{}}
	if err := a.fs.MkdirAll(a.dir); err != nil {
		return nil, fmt.Errorf("durable: creating archive dir %s: %w", a.dir, err)
	}
	if err := a.probe(); err != nil {
		return nil, fmt.Errorf("durable: archive dir %s not writable: %w", a.dir, err)
	}
	a.scan()
	return a, nil
}

// probe proves the directory accepts durable writes before the store
// commits to warm-start semantics: better an exit-2 at boot than a
// write-failure loop at the first commit.
func (a *Archive) probe() error {
	name := a.path(".probe")
	w, err := a.fs.Create(name)
	if err != nil {
		return err
	}
	if _, err := w.Write([]byte("probe")); err != nil {
		w.Close()
		return err
	}
	if err := w.Sync(); err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	return a.fs.Remove(name)
}

// scan replays the manifest and verifies every referenced segment.
func (a *Archive) scan() {
	data, err := a.fs.ReadFile(a.path(ManifestName))
	if err != nil {
		return // no manifest: empty archive
	}
	recs, note := decodeManifest(data)
	a.recovery.ManifestNote = note
	if note != "" {
		// The manifest ends in a torn or corrupt record. Appending past
		// it would strand every future record beyond the tear (the
		// decoder has no resynchronization point), so rewrite the
		// manifest to its valid prefix now — atomically, temp-then-
		// rename, exactly like a segment. If the repair itself fails the
		// archive still recovers correctly; only future commits would
		// stay unreachable, which the write-failure counters surface.
		a.repairManifest(recs)
	}
	refs := map[int]segmentRef{}
	for _, r := range recs {
		if r.Seq >= a.seq {
			a.seq = r.Seq + 1
		}
		switch r.Op {
		case "commit":
			refs[r.Gen] = segmentRef{segment: r.Segment, checksum: r.Checksum, datasetSum: r.DatasetSum}
		case "evict":
			delete(refs, r.Gen)
		}
		// Unknown ops are skipped: a future writer's records must not
		// brick recovery by an older binary.
	}
	gens := make([]int, 0, len(refs))
	for g := range refs {
		gens = append(gens, g)
	}
	sort.Ints(gens)
	for _, gen := range gens {
		ref := refs[gen]
		rec, dataset, reason := a.verifySegment(gen, ref)
		if reason != "" {
			a.recovery.Quarantined = append(a.recovery.Quarantined,
				Quarantine{Gen: gen, Segment: ref.segment, Reason: reason})
			a.quarantined.Add(1)
			continue
		}
		a.live[gen] = ref
		a.recovery.Generations = append(a.recovery.Generations, RecoveredGen{Record: rec, Dataset: dataset})
		a.verified.Add(1)
	}
}

// repairManifest rewrites the manifest to the given (verified-prefix)
// records, truncating a torn tail so subsequent appends are reachable.
func (a *Archive) repairManifest(recs []manifestRecord) {
	var buf []byte
	for _, r := range recs {
		frame, err := encodeManifestRecord(r)
		if err != nil {
			a.writeFailures.Add(1)
			return
		}
		buf = append(buf, frame...)
	}
	tmp := a.path(ManifestName + ".tmp")
	if err := a.writeFileSync(tmp, buf); err != nil {
		a.writeFailures.Add(1)
		return
	}
	if err := a.fs.Rename(tmp, a.path(ManifestName)); err != nil {
		a.writeFailures.Add(1)
		return
	}
	if err := a.fs.SyncDir(a.dir); err != nil {
		a.writeFailures.Add(1)
	}
}

// verifySegment loads and verifies one manifest-referenced segment,
// returning a structured quarantine reason on any failure.
func (a *Archive) verifySegment(gen int, ref segmentRef) (*Record, []byte, string) {
	data, err := a.fs.ReadFile(a.path(ref.segment))
	if err != nil {
		return nil, nil, fmt.Sprintf("segment missing: %v", err)
	}
	rec, dataset, sum, err := decodeSegment(data)
	if err != nil {
		return nil, nil, err.Error()
	}
	if sum.String() != ref.checksum {
		return nil, nil, fmt.Sprintf("manifest/segment checksum disagreement: manifest %s, segment %s",
			ref.checksum[:12], sum.String()[:12])
	}
	if rec.Gen != gen {
		return nil, nil, fmt.Sprintf("generation mismatch: manifest says %d, segment says %d", gen, rec.Gen)
	}
	if rec.DatasetSum != DatasetSum(dataset) {
		return nil, nil, "dataset fingerprint mismatch"
	}
	return rec, dataset, ""
}

// Recovered returns the Open-time scan outcome. The slices are owned
// by the archive; callers must not mutate them.
func (a *Archive) Recovered() *Recovery { return &a.recovery }

// NoteQuarantine records a quarantine decided above the archive layer
// (the snapshot store's re-import self-check), keeping the quarantine
// ledger and counter in one place.
func (a *Archive) NoteQuarantine(gen int, reason string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.recovery.Quarantined = append(a.recovery.Quarantined,
		Quarantine{Gen: gen, Segment: segmentName(gen), Reason: reason})
	a.quarantined.Add(1)
}

// Counters is the archive's observability snapshot, surfaced on
// /metrics and /readyz.
type Counters struct {
	// Writes counts segments durably committed by this process;
	// WriteFailures counts Commit calls that failed (the store keeps
	// serving from memory — a broken disk degrades durability, never
	// availability).
	Writes        uint64 `json:"archive_writes"`
	WriteFailures uint64 `json:"archive_write_failures"`
	// SegmentsVerified and SegmentsQuarantined count recovery-time
	// verification outcomes (plus post-recovery quarantines noted by
	// the store).
	SegmentsVerified    uint64 `json:"segments_verified"`
	SegmentsQuarantined uint64 `json:"segments_quarantined"`
	// Evictions counts generations retired by the retention bound.
	Evictions uint64 `json:"archive_evictions"`
}

// Counters reads the current counter values.
func (a *Archive) Counters() Counters {
	return Counters{
		Writes:              a.writes.Load(),
		WriteFailures:       a.writeFailures.Load(),
		SegmentsVerified:    a.verified.Load(),
		SegmentsQuarantined: a.quarantined.Load(),
		Evictions:           a.evictions.Load(),
	}
}

// Retain reports the archive's retention bound.
func (a *Archive) Retain() int { return a.retain }

// DatasetSums returns gen → dataset fingerprint for every generation
// the manifest currently references — the fleet bootstrap's
// cross-shard agreement table.
func (a *Archive) DatasetSums() map[int]string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[int]string, len(a.live))
	for g, ref := range a.live {
		out[g] = ref.datasetSum
	}
	return out
}

func segmentName(gen int) string { return fmt.Sprintf("gen-%08d.seg", gen) }

func (a *Archive) path(name string) string { return filepath.Join(a.dir, name) }

// Commit durably archives one generation: segment written
// temp-then-fsync-then-rename, directory synced, then the manifest
// record appended and synced. Returns the dataset fingerprint it
// recorded. Idempotent per generation — re-committing (after a crash
// that lost the manifest append, or to heal a quarantined segment)
// atomically replaces the segment and appends a superseding record.
// On error the archive is unchanged as far as recovery is concerned:
// at worst an unreferenced temporary or orphan segment remains, which
// the next Commit for that generation overwrites.
func (a *Archive) Commit(rec *Record, dataset []byte) (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	sum, err := a.commitLocked(rec, dataset)
	if err != nil {
		a.writeFailures.Add(1)
		return "", err
	}
	a.writes.Add(1)
	// Retention: evict everything older than the window, oldest first
	// (a deterministic order keeps the manifest bytes reproducible).
	// Eviction failures are write failures too, but the commit stands.
	floor := rec.Gen - a.retain + 1
	var old []int
	for g := range a.live {
		if g < floor {
			old = append(old, g)
		}
	}
	sort.Ints(old)
	for _, g := range old {
		if err := a.evictLocked(g); err != nil {
			a.writeFailures.Add(1)
			return sum, nil
		}
	}
	return sum, nil
}

func (a *Archive) commitLocked(rec *Record, dataset []byte) (string, error) {
	rec.DatasetSum = DatasetSum(dataset)
	final := segmentName(rec.Gen)
	tmp := final + ".tmp"
	seg, segSum, err := encodeSegment(rec, dataset)
	if err != nil {
		return "", err
	}
	if err := a.writeFileSync(a.path(tmp), seg); err != nil {
		return "", fmt.Errorf("writing segment %s: %w", tmp, err)
	}
	if err := a.fs.Rename(a.path(tmp), a.path(final)); err != nil {
		return "", fmt.Errorf("publishing segment %s: %w", final, err)
	}
	if err := a.fs.SyncDir(a.dir); err != nil {
		return "", fmt.Errorf("syncing archive dir: %w", err)
	}
	mrec := manifestRecord{
		Op: "commit", Seq: a.seq, Gen: rec.Gen,
		Segment: final, Checksum: segSum.String(), DatasetSum: rec.DatasetSum,
	}
	if err := a.appendManifest(mrec); err != nil {
		return "", err
	}
	a.live[rec.Gen] = segmentRef{segment: final, checksum: mrec.Checksum, datasetSum: mrec.DatasetSum}
	return rec.DatasetSum, nil
}

// evictLocked retires one generation: the evict record goes first, the
// segment file second — a crash in between leaves an orphan segment the
// manifest no longer references, which recovery ignores.
func (a *Archive) evictLocked(gen int) error {
	ref := a.live[gen]
	if err := a.appendManifest(manifestRecord{Op: "evict", Seq: a.seq, Gen: gen}); err != nil {
		return err
	}
	delete(a.live, gen)
	a.evictions.Add(1)
	if err := a.fs.Remove(a.path(ref.segment)); err != nil {
		return err
	}
	return nil
}

// appendManifest frames, appends and fsyncs one record, then syncs the
// directory so a freshly created manifest's name is durable too.
func (a *Archive) appendManifest(rec manifestRecord) error {
	buf, err := encodeManifestRecord(rec)
	if err != nil {
		return err
	}
	w, err := a.fs.OpenAppend(a.path(ManifestName))
	if err != nil {
		return fmt.Errorf("opening manifest: %w", err)
	}
	if _, err := w.Write(buf); err != nil {
		w.Close()
		return fmt.Errorf("appending manifest record: %w", err)
	}
	if err := w.Sync(); err != nil {
		w.Close()
		return fmt.Errorf("syncing manifest: %w", err)
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("closing manifest: %w", err)
	}
	if err := a.fs.SyncDir(a.dir); err != nil {
		return fmt.Errorf("syncing archive dir: %w", err)
	}
	a.seq++
	return nil
}

// writeFileSync writes name in one create-write-fsync-close sequence.
func (a *Archive) writeFileSync(name string, data []byte) error {
	w, err := a.fs.Create(name)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		return err
	}
	if err := w.Sync(); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}
