package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"stateowned/internal/churn"
	"stateowned/internal/hijack"
	"stateowned/internal/runner"
	"stateowned/internal/sched"
	"stateowned/internal/serve"
)

// Record is everything the archive persists about one committed
// generation besides the dataset bytes themselves: the serving
// provenance, the build's health report, the hijack detection report,
// the churn events that led here, and the churn-audit spans against the
// generations retained at commit time (so /v1/diff keeps answering for
// recovered generations whose ground-truth world is gone).
//
// Deliberately absent: the world (its ownership graph is process
// memory, rebuilt deterministically by the next live generation), the
// compiled index (recompiled from the dataset bytes — BuildIndex is a
// pure function, so the recompiled index answers byte-identically), and
// all wall-clock measurement (timings would make archived bytes differ
// run to run; see runner.HealthSnapshot).
type Record struct {
	Gen         int                   `json:"gen"`
	Provenance  serve.Provenance      `json:"provenance"`
	Health      runner.HealthSnapshot `json:"health"`
	Hijacks     *hijack.Report        `json:"hijacks,omitempty"`
	Events      []churn.Event         `json:"events,omitempty"`
	TotalEvents int                   `json:"total_events"`
	Spans       []AuditSpan           `json:"spans,omitempty"`
	// DatasetSum is the fingerprint of the dataset bytes alone,
	// excluding everything process-local (worker counts, health rows).
	// Fleet bootstrap compares it across independently recovered shards:
	// two shards claiming the same generation must hold the same bytes.
	DatasetSum string `json:"dataset_sum"`
}

// AuditSpan is one archived /v1/diff answer: the churn audit of
// generation From's dataset against generation To's ground truth,
// computed while both were resident.
type AuditSpan struct {
	From  int         `json:"from"`
	To    int         `json:"to"`
	Audit churn.Audit `json:"audit"`
}

// Segment file layout (all integers big-endian):
//
//	magic "SOARCH1\n"
//	u32 len(meta JSON) | meta JSON (the Record)
//	u32 len(dataset)   | dataset bytes, verbatim expand.Export output
//	32-byte SHA-256 checksum over everything above (domain-separated
//	via the sched fingerprint hasher)
//
// The checksum is last so a torn segment write fails verification for
// free; the exact-length check makes trailing garbage equally fatal.
const segmentMagic = "SOARCH1\n"

// checksum domains, in the sched fingerprint discipline: every hash is
// domain-separated so segment, manifest and dataset sums can never be
// confused for one another.
const (
	segmentDomain  = "durable/segment"
	manifestDomain = "durable/manifest"
	datasetDomain  = "durable/dataset"
)

// DatasetSum fingerprints dataset bytes for cross-shard agreement
// checks.
func DatasetSum(dataset []byte) string {
	h := sched.NewHasher(datasetDomain)
	h.Bytes(dataset)
	return h.Sum().String()
}

// encodeSegment serializes a generation record and its dataset bytes.
func encodeSegment(rec *Record, dataset []byte) ([]byte, sched.Fingerprint, error) {
	meta, err := json.Marshal(rec)
	if err != nil {
		return nil, sched.Fingerprint{}, fmt.Errorf("encoding segment metadata: %w", err)
	}
	buf := make([]byte, 0, len(segmentMagic)+8+len(meta)+len(dataset)+32)
	buf = append(buf, segmentMagic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(meta)))
	buf = append(buf, meta...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(dataset)))
	buf = append(buf, dataset...)
	h := sched.NewHasher(segmentDomain)
	h.Bytes(buf)
	sum := h.Sum()
	return append(buf, sum[:]...), sum, nil
}

// decodeSegment verifies and decodes a segment file. The error message
// is the structured quarantine reason.
func decodeSegment(data []byte) (*Record, []byte, sched.Fingerprint, error) {
	var zero sched.Fingerprint
	if len(data) < len(segmentMagic)+8+32 {
		return nil, nil, zero, fmt.Errorf("segment truncated: %d bytes", len(data))
	}
	if string(data[:len(segmentMagic)]) != segmentMagic {
		return nil, nil, zero, fmt.Errorf("bad segment magic %q", data[:len(segmentMagic)])
	}
	body, tail := data[:len(data)-32], data[len(data)-32:]
	h := sched.NewHasher(segmentDomain)
	h.Bytes(body)
	sum := h.Sum()
	var stored sched.Fingerprint
	copy(stored[:], tail)
	if sum != stored {
		return nil, nil, zero, fmt.Errorf("segment checksum mismatch: stored %s, computed %s",
			stored.String()[:12], sum.String()[:12])
	}
	p := body[len(segmentMagic):]
	metaLen := int(binary.BigEndian.Uint32(p))
	p = p[4:]
	if metaLen < 0 || metaLen > len(p)-4 {
		return nil, nil, zero, fmt.Errorf("segment metadata length %d out of bounds", metaLen)
	}
	meta, p := p[:metaLen], p[metaLen:]
	dataLen := int(binary.BigEndian.Uint32(p))
	p = p[4:]
	if dataLen != len(p) {
		return nil, nil, zero, fmt.Errorf("segment dataset length %d, have %d bytes", dataLen, len(p))
	}
	var rec Record
	if err := json.Unmarshal(meta, &rec); err != nil {
		return nil, nil, zero, fmt.Errorf("segment metadata decode failed: %v", err)
	}
	return &rec, p, sum, nil
}
