package durable

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// testDataset fabricates deterministic dataset bytes for generation g.
// The durable layer treats the dataset as opaque bytes, so synthetic
// payloads exercise every code path the real export does, much faster.
func testDataset(g int) []byte {
	return []byte(fmt.Sprintf("dataset-bytes-for-generation-%d\n", g))
}

func commitGen(t *testing.T, a *Archive, g int) string {
	t.Helper()
	sum, err := a.Commit(&Record{Gen: g, TotalEvents: g}, testDataset(g))
	if err != nil {
		t.Fatalf("Commit(gen %d): %v", g, err)
	}
	return sum
}

// recoveredGens extracts the ascending generation numbers of a scan.
func recoveredGens(rec *Recovery) []int {
	var gens []int
	for _, rg := range rec.Generations {
		gens = append(gens, rg.Record.Gen)
	}
	return gens
}

func TestArchiveRoundTrip(t *testing.T) {
	fs := NewMemFS()
	a, err := Open(Options{FS: fs, Dir: "arch"})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for g := 0; g < 3; g++ {
		commitGen(t, a, g)
	}
	if got := a.Counters().Writes; got != 3 {
		t.Fatalf("writes = %d, want 3", got)
	}

	b, err := Open(Options{FS: fs, Dir: "arch"})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rec := b.Recovered()
	if rec.ManifestNote != "" {
		t.Fatalf("clean archive has manifest note %q", rec.ManifestNote)
	}
	if len(rec.Quarantined) != 0 {
		t.Fatalf("clean archive quarantined %v", rec.Quarantined)
	}
	if got, want := fmt.Sprint(recoveredGens(rec)), "[0 1 2]"; got != want {
		t.Fatalf("recovered gens %s, want %s", got, want)
	}
	for _, rg := range rec.Generations {
		if !bytes.Equal(rg.Dataset, testDataset(rg.Record.Gen)) {
			t.Fatalf("gen %d dataset bytes differ after recovery", rg.Record.Gen)
		}
		if rg.Record.TotalEvents != rg.Record.Gen {
			t.Fatalf("gen %d metadata differs after recovery", rg.Record.Gen)
		}
		if rg.Record.DatasetSum != DatasetSum(rg.Dataset) {
			t.Fatalf("gen %d dataset sum mismatch", rg.Record.Gen)
		}
	}
	if got := b.Counters().SegmentsVerified; got != 3 {
		t.Fatalf("verified = %d, want 3", got)
	}
}

func TestArchiveCommitIdempotent(t *testing.T) {
	fs := NewMemFS()
	a, err := Open(Options{FS: fs, Dir: "arch"})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	commitGen(t, a, 0)
	// Re-committing the same generation supersedes the earlier segment
	// rather than duplicating it.
	sum2, err := a.Commit(&Record{Gen: 0, TotalEvents: 99}, testDataset(0))
	if err != nil {
		t.Fatalf("re-commit: %v", err)
	}
	b, err := Open(Options{FS: fs, Dir: "arch"})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rec := b.Recovered()
	if len(rec.Generations) != 1 {
		t.Fatalf("recovered %d generations, want 1", len(rec.Generations))
	}
	if got := rec.Generations[0].Record.TotalEvents; got != 99 {
		t.Fatalf("recovery adopted the superseded record (TotalEvents=%d, want 99)", got)
	}
	if got := rec.Generations[0].Record.DatasetSum; got != sum2 {
		t.Fatalf("dataset sum %s, want %s", got, sum2)
	}
}

func TestArchiveRetentionEviction(t *testing.T) {
	fs := NewMemFS()
	a, err := Open(Options{FS: fs, Dir: "arch", Retain: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for g := 0; g < 5; g++ {
		commitGen(t, a, g)
	}
	if got := a.Counters().Evictions; got != 3 {
		t.Fatalf("evictions = %d, want 3", got)
	}
	// Evicted segments are gone from disk, not just from the manifest.
	for g := 0; g < 3; g++ {
		if n := fs.FileLen("arch/" + segmentName(g)); n != -1 {
			t.Fatalf("evicted segment gen %d still on disk (%d bytes)", g, n)
		}
	}
	b, err := Open(Options{FS: fs, Dir: "arch", Retain: 2})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got, want := fmt.Sprint(recoveredGens(b.Recovered())), "[3 4]"; got != want {
		t.Fatalf("recovered gens %s, want %s", got, want)
	}
}

func TestArchiveQuarantineAndHeal(t *testing.T) {
	fs := NewMemFS()
	a, err := Open(Options{FS: fs, Dir: "arch"})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	commitGen(t, a, 0)
	commitGen(t, a, 1)
	if !fs.FlipBit("arch/"+segmentName(0), 20, 0x40) {
		t.Fatalf("FlipBit missed the segment")
	}

	b, err := Open(Options{FS: fs, Dir: "arch"})
	if err != nil {
		t.Fatalf("reopen over corruption: %v", err)
	}
	rec := b.Recovered()
	if got, want := fmt.Sprint(recoveredGens(rec)), "[1]"; got != want {
		t.Fatalf("recovered gens %s, want %s", got, want)
	}
	if len(rec.Quarantined) != 1 || rec.Quarantined[0].Gen != 0 {
		t.Fatalf("quarantined = %+v, want gen 0", rec.Quarantined)
	}
	if rec.Quarantined[0].Reason == "" || rec.Quarantined[0].Segment != segmentName(0) {
		t.Fatalf("quarantine lacks a structured reason: %+v", rec.Quarantined[0])
	}
	if got := b.Counters().SegmentsQuarantined; got != 1 {
		t.Fatalf("quarantined counter = %d, want 1", got)
	}

	// Healing: re-committing the damaged generation supersedes the
	// corrupt segment, and the next recovery adopts it cleanly.
	commitGen(t, b, 0)
	c, err := Open(Options{FS: fs, Dir: "arch"})
	if err != nil {
		t.Fatalf("reopen after heal: %v", err)
	}
	if got, want := fmt.Sprint(recoveredGens(c.Recovered())), "[0 1]"; got != want {
		t.Fatalf("healed gens %s, want %s", got, want)
	}
	if len(c.Recovered().Quarantined) != 0 {
		t.Fatalf("healed archive still quarantines %v", c.Recovered().Quarantined)
	}
}

func TestArchiveSegmentMissing(t *testing.T) {
	fs := NewMemFS()
	a, err := Open(Options{FS: fs, Dir: "arch"})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	commitGen(t, a, 0)
	if err := fs.Remove("arch/" + segmentName(0)); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	b, err := Open(Options{FS: fs, Dir: "arch"})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rec := b.Recovered()
	if len(rec.Generations) != 0 || len(rec.Quarantined) != 1 {
		t.Fatalf("recovery = %+v, want one quarantine, no generations", rec)
	}
}

func TestManifestTornTailTruncatesCleanly(t *testing.T) {
	fs := NewMemFS()
	a, err := Open(Options{FS: fs, Dir: "arch"})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	commitGen(t, a, 0)
	commitGen(t, a, 1)
	// Simulate a torn append: garbage bytes at the manifest tail, as a
	// crashed writer would leave them.
	w, err := fs.OpenAppend("arch/" + ManifestName)
	if err != nil {
		t.Fatalf("OpenAppend: %v", err)
	}
	if _, err := w.Write([]byte{0x00, 0x00, 0x01}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	w.Close()

	b, err := Open(Options{FS: fs, Dir: "arch"})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rec := b.Recovered()
	if rec.ManifestNote == "" {
		t.Fatalf("torn tail produced no manifest note")
	}
	if got, want := fmt.Sprint(recoveredGens(rec)), "[0 1]"; got != want {
		t.Fatalf("recovered gens %s, want %s (torn tail must not cost valid records)", got, want)
	}
	// Open repairs the torn manifest (rewrites the valid prefix), so a
	// post-tear commit appends to a clean log and the next recovery
	// sees it — nothing is ever stranded beyond a tear.
	commitGen(t, b, 2)
	c, err := Open(Options{FS: fs, Dir: "arch"})
	if err != nil {
		t.Fatalf("reopen after post-tear commit: %v", err)
	}
	if got, want := fmt.Sprint(recoveredGens(c.Recovered())), "[0 1 2]"; got != want {
		t.Fatalf("post-tear recovery gens %s, want %s", got, want)
	}
	if note := c.Recovered().ManifestNote; note != "" {
		t.Fatalf("repaired manifest still noted torn: %q", note)
	}
}

// TestArchiveCrashSweep is the durable-level crash-point sweep: run a
// fixed three-commit sequence, crash the process at every individual
// filesystem operation, materialize the survivor state at three torn-
// write severities, and prove recovery always lands on a verified
// contiguous prefix of the committed history — never a panic, never an
// unverified byte, and always writable afterwards.
func TestArchiveCrashSweep(t *testing.T) {
	// Baseline: count the operations of the full sequence.
	base := NewFaultFS(NewMemFS())
	a, err := Open(Options{FS: base, Dir: "arch"})
	if err != nil {
		t.Fatalf("baseline Open: %v", err)
	}
	opsAfterOpen := base.Ops()
	for g := 0; g < 3; g++ {
		commitGen(t, a, g)
	}
	totalOps := base.Ops()

	for _, tornKeep := range []float64{0, 0.5, 1} {
		for k := opsAfterOpen; k < totalOps; k++ {
			mem := NewMemFS()
			ffs := NewFaultFS(mem)
			ffs.CrashAt = k
			a, err := Open(Options{FS: ffs, Dir: "arch"})
			if err != nil {
				t.Fatalf("crash@%d: Open: %v", k, err)
			}
			lastDurable := -1
			for g := 0; g < 3; g++ {
				if _, err := a.Commit(&Record{Gen: g, TotalEvents: g}, testDataset(g)); err != nil {
					if !errors.Is(err, ErrCrashed) {
						t.Fatalf("crash@%d gen %d: unexpected error %v", k, g, err)
					}
					break
				}
				lastDurable = g
			}
			mem.Crash(tornKeep)

			b, err := Open(Options{FS: mem, Dir: "arch"})
			if err != nil {
				t.Fatalf("crash@%d torn=%v: recovery Open: %v", k, tornKeep, err)
			}
			rec := b.Recovered()
			// Crash damage is always a clean truncation, never a
			// quarantine: the fsync ordering guarantees a manifest record
			// is only durable after its segment is.
			if len(rec.Quarantined) != 0 {
				t.Fatalf("crash@%d torn=%v: quarantined %+v", k, tornKeep, rec.Quarantined)
			}
			gens := recoveredGens(rec)
			for i, g := range gens {
				if g != i {
					t.Fatalf("crash@%d torn=%v: recovered gens %v not a contiguous prefix", k, tornKeep, gens)
				}
				if !bytes.Equal(rec.Generations[i].Dataset, testDataset(g)) {
					t.Fatalf("crash@%d torn=%v: gen %d bytes differ", k, tornKeep, g)
				}
			}
			// Every commit the writer saw acked must have survived the
			// crash — that is what the fsync-before-ack ordering buys.
			if len(gens)-1 < lastDurable {
				t.Fatalf("crash@%d torn=%v: acked through gen %d but recovered only %v",
					k, tornKeep, lastDurable, gens)
			}
			// The recovered archive accepts new commits.
			commitGen(t, b, len(gens))
			c, err := Open(Options{FS: mem, Dir: "arch"})
			if err != nil {
				t.Fatalf("crash@%d torn=%v: post-recovery Open: %v", k, tornKeep, err)
			}
			if got := len(recoveredGens(c.Recovered())); got != len(gens)+1 {
				t.Fatalf("crash@%d torn=%v: post-recovery commit not visible (%d gens)", k, tornKeep, got)
			}
		}
	}
}

// TestArchiveFaultSweep injects a single transient disk fault (ENOSPC
// style) at every operation of a commit and proves the archive degrades
// — the commit reports failure — without corrupting: the prior history
// still recovers, and retrying the commit succeeds.
func TestArchiveFaultSweep(t *testing.T) {
	// Count the ops of one commit after a clean first generation.
	base := NewFaultFS(NewMemFS())
	a, err := Open(Options{FS: base, Dir: "arch"})
	if err != nil {
		t.Fatalf("baseline Open: %v", err)
	}
	commitGen(t, a, 0)
	opsBefore := base.Ops()
	commitGen(t, a, 1)
	opsAfter := base.Ops()

	for k := opsBefore; k < opsAfter; k++ {
		mem := NewMemFS()
		ffs := NewFaultFS(mem)
		ffs.FailAt = k
		a, err := Open(Options{FS: ffs, Dir: "arch"})
		if err != nil {
			t.Fatalf("fault@%d: Open: %v", k, err)
		}
		commitGen(t, a, 0)
		if _, err := a.Commit(&Record{Gen: 1, TotalEvents: 1}, testDataset(1)); !errors.Is(err, ErrInjected) {
			t.Fatalf("fault@%d: Commit error = %v, want injected fault", k, err)
		}
		if got := a.Counters().WriteFailures; got != 1 {
			t.Fatalf("fault@%d: write failures = %d, want 1", k, got)
		}
		// The fault was transient: the retry must succeed and the
		// archive must recover both generations.
		commitGen(t, a, 1)
		b, err := Open(Options{FS: mem, Dir: "arch"})
		if err != nil {
			t.Fatalf("fault@%d: reopen: %v", k, err)
		}
		rec := b.Recovered()
		if got, want := fmt.Sprint(recoveredGens(rec)), "[0 1]"; got != want {
			t.Fatalf("fault@%d: recovered gens %s, want %s (quarantined %+v, note %q)",
				k, got, want, rec.Quarantined, rec.ManifestNote)
		}
	}
}

// TestArchiveEvictionCrashSweep crashes at every operation of a commit
// that triggers retention eviction: recovery must land on a contiguous
// generation range (suffix of the committed history) with no quarantine.
func TestArchiveEvictionCrashSweep(t *testing.T) {
	buildTo := 4 // gens 0..3 with retain 2 → evictions at gens 2 and 3
	base := NewFaultFS(NewMemFS())
	a, err := Open(Options{FS: base, Dir: "arch", Retain: 2})
	if err != nil {
		t.Fatalf("baseline Open: %v", err)
	}
	opsAfterOpen := base.Ops()
	for g := 0; g < buildTo; g++ {
		commitGen(t, a, g)
	}
	totalOps := base.Ops()

	for k := opsAfterOpen; k < totalOps; k++ {
		mem := NewMemFS()
		ffs := NewFaultFS(mem)
		ffs.CrashAt = k
		a, err := Open(Options{FS: ffs, Dir: "arch", Retain: 2})
		if err != nil {
			t.Fatalf("crash@%d: Open: %v", k, err)
		}
		for g := 0; g < buildTo; g++ {
			if _, err := a.Commit(&Record{Gen: g, TotalEvents: g}, testDataset(g)); err != nil {
				break
			}
		}
		mem.Crash(0)
		b, err := Open(Options{FS: mem, Dir: "arch", Retain: 2})
		if err != nil {
			t.Fatalf("crash@%d: recovery Open: %v", k, err)
		}
		rec := b.Recovered()
		if len(rec.Quarantined) != 0 {
			t.Fatalf("crash@%d: quarantined %+v", k, rec.Quarantined)
		}
		gens := recoveredGens(rec)
		for i := 1; i < len(gens); i++ {
			if gens[i] != gens[i-1]+1 {
				t.Fatalf("crash@%d: recovered gens %v not contiguous", k, gens)
			}
		}
		for i, g := range gens {
			if !bytes.Equal(rec.Generations[i].Dataset, testDataset(g)) {
				t.Fatalf("crash@%d: gen %d bytes differ", k, g)
			}
		}
	}
}

func TestOpenRejectsMissingDir(t *testing.T) {
	if _, err := Open(Options{FS: NewMemFS()}); err == nil {
		t.Fatalf("Open with no directory succeeded")
	}
}

func TestDatasetSumsTable(t *testing.T) {
	fs := NewMemFS()
	a, err := Open(Options{FS: fs, Dir: "arch"})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s0 := commitGen(t, a, 0)
	s1 := commitGen(t, a, 1)
	sums := a.DatasetSums()
	if sums[0] != s0 || sums[1] != s1 {
		t.Fatalf("DatasetSums = %v, want {0:%s 1:%s}", sums, s0[:8], s1[:8])
	}
	b, err := Open(Options{FS: fs, Dir: "arch"})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := b.DatasetSums(); got[0] != s0 || got[1] != s1 {
		t.Fatalf("recovered DatasetSums = %v", got)
	}
}
