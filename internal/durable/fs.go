// Package durable is the crash-consistent on-disk generation archive
// behind the snapshot store's -data-dir mode: every committed
// generation is serialized to a content-checksummed segment file and
// recorded in an append-only manifest, so a restarted process adopts
// its last verified generation for immediate warm-start serving instead
// of paying a cold pipeline rebuild.
//
// The write-path ordering is the whole durability argument:
//
//  1. the segment is written to a temporary name and fsynced — its
//     bytes are durable but unreachable by recovery;
//  2. the temporary is atomically renamed to its final name and the
//     directory is fsynced — the segment is durable and named;
//  3. only then is the commit record appended (and fsynced) to the
//     manifest.
//
// A crash between any two steps leaves either an ignorable orphan (the
// manifest never references it) or a fully durable segment; the
// manifest never references bytes that are not already on disk in
// full. Every record and every segment carries a SHA-256 checksum in
// the internal/sched fingerprint discipline, so recovery can verify
// everything it adopts and quarantine — with a structured reason,
// never a panic — everything it cannot.
//
// All filesystem access goes through the FS seam below; tests drive
// the archive over an in-memory filesystem that models fsync-aware
// crash semantics and injects torn writes, bit flips, ENOSPC and
// crash-at-every-op fault points deterministically.
package durable

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem seam the archive writes and recovers through.
// The methods are deliberately primitive — one durability-relevant
// operation each — so fault injection can kill the process between any
// two steps of the write path.
type FS interface {
	// MkdirAll creates the directory (and parents) if missing.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing file.
	Create(name string) (FileWriter, error)
	// OpenAppend opens name for appending, creating it if missing.
	OpenAppend(name string) (FileWriter, error)
	// Rename atomically replaces newname with oldname's file. The
	// rename is durable only after SyncDir on the containing directory.
	Rename(oldname, newname string) error
	// Remove deletes a file (not an error if it is already gone).
	Remove(name string) error
	// SyncDir fsyncs a directory, making completed creates, renames and
	// removes in it crash-durable.
	SyncDir(dir string) error
	// ReadFile returns the file's full contents.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the file names in dir, sorted.
	ReadDir(dir string) ([]string, error)
}

// FileWriter is an open file on the write path.
type FileWriter interface {
	io.Writer
	// Sync fsyncs the file: everything written so far survives a crash.
	Sync() error
	Close() error
}

// OSFS is the real filesystem.
type OSFS struct{}

// MkdirAll implements FS via os.MkdirAll.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS via os.Create.
func (OSFS) Create(name string) (FileWriter, error) { return os.Create(name) }

// OpenAppend implements FS via os.OpenFile in append mode.
func (OSFS) OpenAppend(name string) (FileWriter, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// Rename implements FS via os.Rename.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS via os.Remove, tolerating a missing file.
func (OSFS) Remove(name string) error {
	err := os.Remove(name)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// SyncDir implements FS by fsyncing the directory, best-effort.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some filesystems refuse fsync on directories (EINVAL). That
	// weakens durability of the newest name, not recovery correctness —
	// an unnamed segment is an ignorable orphan — so it is best-effort.
	_ = d.Sync()
	return nil
}

// ReadFile implements FS via os.ReadFile.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir implements FS, listing plain files sorted by name.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, filepath.Base(e.Name()))
		}
	}
	sort.Strings(names)
	return names, nil
}
