package durable

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

// MemFS is a deterministic in-memory filesystem that models the crash
// semantics the archive's durability argument depends on:
//
//   - file bytes written since the last Sync may be lost, or survive
//     only as an arbitrary prefix (a torn write);
//   - namespace operations (Create, Rename, Remove) are atomic for the
//     running process but crash-durable only after SyncDir — a crash
//     before the directory sync rolls the name back, so a renamed
//     segment reappears under its temporary name.
//
// Crash materializes those semantics: it discards everything volatile
// and leaves the filesystem as a restarted process would find it. Tests
// wrap MemFS in FaultFS to stop the process at every individual
// operation and then Crash the survivor state.
type MemFS struct {
	mu sync.Mutex
	// live is the namespace the running process sees; stable is the
	// crash-durable namespace (what SyncDir has committed). Both map
	// names to shared inodes.
	live   map[string]*inode
	stable map[string]*inode
	dirs   map[string]bool
}

// inode is one file's content. data is what the running process reads;
// synced is the length of the prefix guaranteed to survive a crash.
type inode struct {
	data   []byte
	synced int
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{live: map[string]*inode{}, stable: map[string]*inode{}, dirs: map[string]bool{}}
}

// MkdirAll implements FS; directories are only names here.
func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[dir] = true
	return nil
}

// Create implements FS: a fresh inode replaces any existing file.
func (m *MemFS) Create(name string) (FileWriter, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino := &inode{}
	m.live[name] = ino
	return &memFile{fs: m, ino: ino}, nil
}

// OpenAppend implements FS, creating the file if missing.
func (m *MemFS) OpenAppend(name string) (FileWriter, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino := m.live[name]
	if ino == nil {
		ino = &inode{}
		m.live[name] = ino
	}
	return &memFile{fs: m, ino: ino}, nil
}

// Rename implements FS: atomic in the live namespace, durable only
// after SyncDir.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino := m.live[oldname]
	if ino == nil {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	delete(m.live, oldname)
	m.live[newname] = ino
	return nil
}

// Remove implements FS in the live namespace.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.live, name)
	return nil
}

// SyncDir commits the live namespace of dir to the crash-durable one.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name := range m.stable {
		if inDir(name, dir) {
			delete(m.stable, name)
		}
	}
	for name, ino := range m.live {
		if inDir(name, dir) {
			m.stable[name] = ino
		}
	}
	return nil
}

// ReadFile implements FS from the live namespace.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino := m.live[name]
	if ino == nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return append([]byte(nil), ino.data...), nil
}

// ReadDir implements FS over the live namespace.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for name := range m.live {
		if inDir(name, dir) {
			names = append(names, baseName(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Crash simulates a process kill plus restart: the namespace reverts to
// the last SyncDir, and every inode's unsynced suffix is truncated to a
// fraction tornKeep of its length (0 = unsynced bytes vanish, 1 = the
// write happened to hit the platter in full; anything between is a torn
// write). Deterministic: the same op sequence and tornKeep always
// yields the same survivor state.
func (m *MemFS) Crash(tornKeep float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := map[*inode]bool{}
	m.live = map[string]*inode{}
	for name, ino := range m.stable {
		if !seen[ino] {
			seen[ino] = true
			if unsynced := len(ino.data) - ino.synced; unsynced > 0 {
				keep := ino.synced + int(tornKeep*float64(unsynced))
				ino.data = ino.data[:keep]
			}
			ino.synced = len(ino.data)
		}
		m.live[name] = ino
	}
}

// FlipBit flips one bit of the named file in place — the corruption
// sweep's primitive. Reports false when the file or offset is absent.
func (m *MemFS) FlipBit(name string, offset int, mask byte) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino := m.live[name]
	if ino == nil || offset < 0 || offset >= len(ino.data) {
		return false
	}
	ino.data[offset] ^= mask
	return true
}

// FileLen reports the named file's current length (-1 when absent).
func (m *MemFS) FileLen(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino := m.live[name]
	if ino == nil {
		return -1
	}
	return len(ino.data)
}

// memFile is an open MemFS file.
type memFile struct {
	fs  *MemFS
	ino *inode
}

// Write appends to the inode; the bytes are volatile until Sync.
func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.ino.data = append(f.ino.data, p...)
	return len(p), nil
}

// Sync marks everything written so far as crash-durable.
func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.ino.synced = len(f.ino.data)
	return nil
}

// Close is a no-op: this model flushes on Sync only.
func (f *memFile) Close() error { return nil }

func inDir(name, dir string) bool { return strings.HasPrefix(name, dir+"/") }

func baseName(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// ErrCrashed is what FaultFS returns from every operation at and after
// its crash point: the process is dead, nothing more happens.
var ErrCrashed = errors.New("durable: simulated crash")

// ErrInjected is the transient disk fault (ENOSPC-style) FaultFS
// injects at a single operation.
var ErrInjected = errors.New("durable: injected disk fault (no space left on device)")

// FaultFS wraps an FS and counts every mutating operation, turning each
// one into an injectable fault point:
//
//   - CrashAt k: operation k and everything after it fails with
//     ErrCrashed — the process died mid-write. The test then calls
//     MemFS.Crash to materialize what survives and recovers over it.
//   - FailAt k: operation k alone fails with ErrInjected (ENOSPC, a
//     transient write error); later operations succeed. The archive
//     must degrade, not corrupt.
//
// Operation indexes are deterministic: the same archive call sequence
// numbers its operations identically on every run, so "crash at op k"
// names one exact point in the write path. Read operations are never
// counted — they inject nothing and keep recovery deterministic.
type FaultFS struct {
	FS
	mu      sync.Mutex
	ops     int
	CrashAt int // -1 = never
	FailAt  int // -1 = never
}

// NewFaultFS wraps fs with no faults armed.
func NewFaultFS(fs FS) *FaultFS { return &FaultFS{FS: fs, CrashAt: -1, FailAt: -1} }

// Ops reports how many mutating operations have run.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// SetCrashAt arms (or, with k < 0, disarms) the crash point under the
// counter's lock — safe to call between operations of a filesystem
// other goroutines also write through, which is how the fleet tests
// kill one shard's disk mid-run.
func (f *FaultFS) SetCrashAt(k int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.CrashAt = k
}

// step assigns the next operation index and returns the injected error,
// if any.
func (f *FaultFS) step() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	op := f.ops
	f.ops++
	if f.CrashAt >= 0 && op >= f.CrashAt {
		return fmt.Errorf("op %d: %w", op, ErrCrashed)
	}
	if op == f.FailAt {
		return fmt.Errorf("op %d: %w", op, ErrInjected)
	}
	return nil
}

// MkdirAll counts one fault point, then delegates.
func (f *FaultFS) MkdirAll(dir string) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.FS.MkdirAll(dir)
}

// Create counts one fault point, then delegates; the returned file's
// Write and Sync count their own.
func (f *FaultFS) Create(name string) (FileWriter, error) {
	if err := f.step(); err != nil {
		return nil, err
	}
	w, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, w: w}, nil
}

// OpenAppend counts one fault point, then delegates; the returned
// file's Write and Sync count their own.
func (f *FaultFS) OpenAppend(name string) (FileWriter, error) {
	if err := f.step(); err != nil {
		return nil, err
	}
	w, err := f.FS.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, w: w}, nil
}

// Rename counts one fault point, then delegates.
func (f *FaultFS) Rename(oldname, newname string) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.FS.Rename(oldname, newname)
}

// Remove counts one fault point, then delegates.
func (f *FaultFS) Remove(name string) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.FS.Remove(name)
}

// SyncDir counts one fault point, then delegates.
func (f *FaultFS) SyncDir(dir string) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.FS.SyncDir(dir)
}

// faultFile routes a file's Write and Sync through the op counter.
// Close is free: it flushes nothing in this model.
type faultFile struct {
	fs *FaultFS
	w  FileWriter
}

// Write counts one fault point, then delegates.
func (ff *faultFile) Write(p []byte) (int, error) {
	if err := ff.fs.step(); err != nil {
		return 0, err
	}
	return ff.w.Write(p)
}

// Sync counts one fault point, then delegates.
func (ff *faultFile) Sync() error {
	if err := ff.fs.step(); err != nil {
		return err
	}
	return ff.w.Sync()
}

// Close delegates without counting: closing flushes nothing here.
func (ff *faultFile) Close() error { return ff.w.Close() }
