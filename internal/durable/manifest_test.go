package durable

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

func encodeAll(t *testing.T, recs []manifestRecord) []byte {
	t.Helper()
	var buf []byte
	for _, r := range recs {
		frame, err := encodeManifestRecord(r)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		buf = append(buf, frame...)
	}
	return buf
}

func TestManifestRoundTrip(t *testing.T) {
	want := []manifestRecord{
		{Op: "commit", Seq: 0, Gen: 0, Segment: "gen-00000000.seg", Checksum: "aa", DatasetSum: "bb"},
		{Op: "evict", Seq: 1, Gen: 0},
		{Op: "commit", Seq: 2, Gen: 1, Segment: "gen-00000001.seg", Checksum: "cc", DatasetSum: "dd"},
	}
	got, note := decodeManifest(encodeAll(t, want))
	if note != "" {
		t.Fatalf("clean manifest note = %q", note)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
}

// TestManifestEveryTruncationPoint proves the core torn-tail property:
// cutting the manifest at ANY byte yields a valid record prefix and a
// diagnostic note — never a panic, never a misparsed record.
func TestManifestEveryTruncationPoint(t *testing.T) {
	recs := []manifestRecord{
		{Op: "commit", Seq: 0, Gen: 0, Segment: "gen-00000000.seg", Checksum: "aa", DatasetSum: "bb"},
		{Op: "commit", Seq: 1, Gen: 1, Segment: "gen-00000001.seg", Checksum: "cc", DatasetSum: "dd"},
	}
	full := encodeAll(t, recs)
	frame0, _ := encodeManifestRecord(recs[0])
	boundaries := map[int]int{0: 0, len(frame0): 1, len(full): 2}
	for cut := 0; cut <= len(full); cut++ {
		got, note := decodeManifest(full[:cut])
		wantN, atBoundary := boundaries[cut]
		if atBoundary {
			if len(got) != wantN || note != "" {
				t.Fatalf("cut@%d: got %d records, note %q; want %d records, clean", cut, len(got), note, wantN)
			}
			continue
		}
		// Mid-frame cut: the complete frames before the cut decode, the
		// torn one is reported.
		wantPrefix := 0
		if cut > len(frame0) {
			wantPrefix = 1
		}
		if len(got) != wantPrefix {
			t.Fatalf("cut@%d: got %d records, want %d", cut, len(got), wantPrefix)
		}
		if note == "" {
			t.Fatalf("cut@%d: torn tail produced no note", cut)
		}
		if wantPrefix > 0 && !reflect.DeepEqual(got, recs[:wantPrefix]) {
			t.Fatalf("cut@%d: prefix records differ: %+v", cut, got)
		}
	}
}

func TestManifestRejectsOversizedLength(t *testing.T) {
	var buf []byte
	buf = binary.BigEndian.AppendUint32(buf, maxManifestPayload+1)
	buf = append(buf, bytes.Repeat([]byte{0xff}, 64)...)
	recs, note := decodeManifest(buf)
	if len(recs) != 0 || note == "" {
		t.Fatalf("oversized length accepted: %d records, note %q", len(recs), note)
	}
}

func TestManifestRejectsFlippedBit(t *testing.T) {
	full := encodeAll(t, []manifestRecord{
		{Op: "commit", Seq: 0, Gen: 0, Segment: "gen-00000000.seg", Checksum: "aa"},
	})
	for off := 4; off < len(full); off++ { // skip the length prefix: changing it is a different failure
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x10
		recs, note := decodeManifest(mut)
		if len(recs) != 0 {
			t.Fatalf("bit flip at %d still decoded %d records", off, len(recs))
		}
		if note == "" {
			t.Fatalf("bit flip at %d produced no note", off)
		}
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	rec := &Record{Gen: 7, TotalEvents: 3}
	dataset := []byte("some dataset bytes")
	seg, sum, err := encodeSegment(rec, dataset)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, data, gotSum, err := decodeSegment(seg)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Gen != 7 || got.TotalEvents != 3 || !bytes.Equal(data, dataset) || gotSum != sum {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestSegmentRejectsEveryFlippedBit(t *testing.T) {
	seg, _, err := encodeSegment(&Record{Gen: 1}, []byte("payload"))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	for off := 0; off < len(seg); off++ {
		mut := append([]byte(nil), seg...)
		mut[off] ^= 0x01
		if _, _, _, err := decodeSegment(mut); err == nil {
			t.Fatalf("bit flip at byte %d went undetected", off)
		}
	}
	for cut := 0; cut < len(seg); cut++ {
		if _, _, _, err := decodeSegment(seg[:cut]); err == nil {
			t.Fatalf("truncation at byte %d went undetected", cut)
		}
	}
}

// FuzzManifestDecode drives the manifest decoder with arbitrary bytes:
// it must never panic, and whatever records it accepts must re-encode
// into a stream that decodes to the same records (the decoder and
// encoder agree on the format).
func FuzzManifestDecode(f *testing.F) {
	var seed []byte
	for _, r := range []manifestRecord{
		{Op: "commit", Seq: 0, Gen: 0, Segment: "gen-00000000.seg", Checksum: "ab", DatasetSum: "cd"},
		{Op: "evict", Seq: 1, Gen: 0},
	} {
		frame, err := encodeManifestRecord(r)
		if err != nil {
			f.Fatal(err)
		}
		seed = append(seed, frame...)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-5]) // torn tail
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, _ := decodeManifest(data)
		var reenc []byte
		for _, r := range recs {
			frame, err := encodeManifestRecord(r)
			if err != nil {
				t.Fatalf("accepted record fails to re-encode: %+v: %v", r, err)
			}
			reenc = append(reenc, frame...)
		}
		again, note := decodeManifest(reenc)
		if note != "" {
			t.Fatalf("re-encoded stream not clean: %q", note)
		}
		if len(again) != len(recs) {
			t.Fatalf("re-encoded stream decodes %d records, had %d", len(again), len(recs))
		}
	})
}

// FuzzSegmentDecode: arbitrary bytes must never panic the segment
// decoder, and a decoded segment must re-encode byte-identically.
func FuzzSegmentDecode(f *testing.F) {
	seg, _, err := encodeSegment(&Record{Gen: 3, TotalEvents: 1}, []byte("dataset"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seg)
	f.Add(seg[:len(seg)-3])
	f.Add([]byte(segmentMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, dataset, _, err := decodeSegment(data)
		if err != nil {
			return
		}
		reenc, _, err := encodeSegment(rec, dataset)
		if err != nil {
			t.Fatalf("accepted segment fails to re-encode: %v", err)
		}
		if !bytes.Equal(reenc, data) {
			t.Fatalf("accepted segment does not re-encode byte-identically")
		}
	})
}
