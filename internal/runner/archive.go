package runner

// HealthSnapshot is the serializable form of a Health report: what the
// durable generation archive persists so a recovered generation answers
// /readyz and /metrics exactly as it did before the crash.
//
// Timings are deliberately absent. They are measurement, not simulation
// (see NodeTiming): archiving wall times would make the archived bytes
// vary run to run, breaking both the manifest's determinism (the golden
// fixture pins exact bytes per seed) and the recovered-equals-pre-crash
// byte-identity proof. A recovered Health reports no timings, which is
// truthful — the recovered process never ran those builds.
type HealthSnapshot struct {
	Severity float64        `json:"severity"`
	Workers  int            `json:"workers"`
	Stages   []StageHealth  `json:"stages,omitempty"`
	Sources  []SourceHealth `json:"sources,omitempty"` // first-touch order
}

// Snapshot captures the report's serializable state. Safe for
// concurrent use with the mutating methods; rows are copied by value,
// so the snapshot does not alias live state.
func (h *Health) Snapshot() HealthSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HealthSnapshot{
		Severity: h.Severity,
		Workers:  h.Workers,
		Stages:   append([]StageHealth(nil), h.Stages...),
	}
	for _, name := range h.order {
		snap.Sources = append(snap.Sources, *h.sources[name])
	}
	return snap
}

// RestoreHealth rebuilds a Health report from its archived snapshot.
// The restored report answers Ready, DegradedSources, Render and every
// other read identically to the original; its Timings are empty.
func RestoreHealth(snap HealthSnapshot) *Health {
	h := NewHealth(snap.Severity)
	h.Workers = snap.Workers
	h.Stages = append([]StageHealth(nil), snap.Stages...)
	for _, src := range snap.Sources {
		row := src
		h.sources[row.Name] = &row
		h.order = append(h.order, row.Name)
	}
	return h
}
