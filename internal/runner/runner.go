// Package runner is the degradation-aware execution substrate for the
// pipeline: retry with deterministic backoff for transient faults,
// per-source circuit breakers that trip a repeatedly failing source into
// "unavailable", and a structured Health report recording per-source
// status, records lost or quarantined, retries spent and stages that ran
// degraded. The contract it enforces is the production one: the pipeline
// completes on whatever sources survive, reports what it lost, and never
// panics.
//
// Time is simulated: backoff delays are accounted in abstract units
// (recorded in the Health report) rather than slept, so chaos runs stay
// deterministic and fast while the retry arithmetic matches what a wall
// clock deployment would do.
package runner

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"stateowned/internal/faults"
	"stateowned/internal/report"
)

// Status is a source's condition after the run.
type Status uint8

// Source conditions, ordered by increasing damage.
const (
	Healthy Status = iota
	Degraded
	Unavailable
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	default:
		return "unavailable"
	}
}

// Backoff is a deterministic exponential-backoff policy: the n-th retry
// waits BaseUnits<<(n-1) units, capped at MaxUnits.
type Backoff struct {
	MaxAttempts int
	BaseUnits   int
	MaxUnits    int
}

// DefaultBackoff is the policy substrate builds run with: up to four
// attempts, delays 1, 2, 4 units.
func DefaultBackoff() Backoff { return Backoff{MaxAttempts: 4, BaseUnits: 1, MaxUnits: 8} }

// Delay returns the backoff after the given attempt (1-based).
func (b Backoff) Delay(attempt int) int {
	d := b.BaseUnits << (attempt - 1)
	if b.MaxUnits > 0 && d > b.MaxUnits {
		d = b.MaxUnits
	}
	return d
}

// Breaker is a per-source circuit breaker: after Threshold consecutive
// failures the circuit opens and the source is treated as unavailable;
// any success closes it again.
type Breaker struct {
	Threshold int
	failures  int
}

// NewBreaker returns a breaker that opens after threshold consecutive
// failures (<=0 selects the default of 4).
func NewBreaker(threshold int) *Breaker {
	if threshold <= 0 {
		threshold = 4
	}
	return &Breaker{Threshold: threshold}
}

// Allow reports whether another attempt may be made.
func (b *Breaker) Allow() bool { return b.failures < b.Threshold }

// Open reports whether the circuit has tripped.
func (b *Breaker) Open() bool { return !b.Allow() }

// Success records a successful attempt, closing the circuit.
func (b *Breaker) Success() { b.failures = 0 }

// Failure records one failed attempt.
func (b *Breaker) Failure() { b.failures++ }

// SourceHealth is one data source's row of the Health report.
type SourceHealth struct {
	Name   string
	Status Status
	// Attempts is how many build attempts ran; Retries how many of them
	// were retries after a transient failure; BackoffUnits the simulated
	// wait they cost.
	Attempts     int
	Retries      int
	BackoffUnits int
	// Dropped counts records silently lost (outages, missing records);
	// Corrupted counts records damaged in flight; Quarantined counts the
	// damaged records the validation pass caught and removed.
	Dropped     int
	Corrupted   int
	Quarantined int
	LastError   string
}

// degrade raises the status to at least s (never lowers it).
func (sh *SourceHealth) degrade(s Status) {
	if s > sh.Status {
		sh.Status = s
	}
}

// StageHealth records whether a pipeline stage ran degraded and why.
type StageHealth struct {
	Name     string
	Degraded bool
	Note     string
}

// NodeTiming is one build-graph node's measured wall time. Timings are
// measurement, not simulation: they vary run to run and machine to
// machine, so they are kept out of Render (the diffable report) and out
// of determinism comparisons, and surfaced separately (RenderTimings,
// /metrics).
type NodeTiming struct {
	Node string
	Wall time.Duration
	// Reused marks a node whose artifact was restored from the previous
	// generation's memo instead of rebuilt (incremental rebuilds only).
	// Like Wall it is build metadata: excluded from Render and from
	// determinism comparisons.
	Reused bool
}

// Health is the structured degradation report attached to a Result.
// Its mutating methods are safe for concurrent use: with the parallel
// build scheduler, substrate nodes report damage from pool goroutines.
// Each source row is still owned by exactly one node, so the row's
// fields need no lock of their own — only the shared map, order and
// stage list do.
type Health struct {
	// Severity echoes the fault plan's severity (0 = pristine run).
	Severity float64
	// Workers records the scheduler pool size the run executed with
	// (1 = the canonical serial schedule).
	Workers int
	Stages  []StageHealth
	// Timings lists per-build-node wall time in build-graph order.
	Timings []NodeTiming

	mu      sync.Mutex
	sources map[string]*SourceHealth
	order   []string
}

// NewHealth creates an empty report for a run at the given severity.
func NewHealth(severity float64) *Health {
	return &Health{Severity: severity, sources: map[string]*SourceHealth{}}
}

// source is the lock-free row lookup; callers hold h.mu.
func (h *Health) source(name string) *SourceHealth {
	sh := h.sources[name]
	if sh == nil {
		sh = &SourceHealth{Name: name}
		h.sources[name] = sh
		h.order = append(h.order, name)
	}
	return sh
}

// Source returns (creating on first use) the named source's row.
func (h *Health) Source(name string) *SourceHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.source(name)
}

// Sources lists the rows in first-touch order.
func (h *Health) Sources() []*SourceHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*SourceHealth, 0, len(h.order))
	for _, name := range h.order {
		out = append(out, h.sources[name])
	}
	return out
}

// NoteDamage records injection damage against a source and degrades its
// status accordingly.
func (h *Health) NoteDamage(source string, dmg faults.Damage) {
	h.mu.Lock()
	defer h.mu.Unlock()
	sh := h.source(source)
	sh.Dropped += dmg.Dropped
	sh.Corrupted += dmg.Corrupted
	if !dmg.Zero() {
		sh.degrade(Degraded)
	}
}

// NoteQuarantined records how many corrupt records validation removed.
func (h *Health) NoteQuarantined(source string, n int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	sh := h.source(source)
	sh.Quarantined += n
	if n > 0 {
		sh.degrade(Degraded)
	}
}

// MarkUnavailable trips a source to unavailable with a reason.
func (h *Health) MarkUnavailable(source, reason string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	sh := h.source(source)
	sh.degrade(Unavailable)
	if reason != "" {
		sh.LastError = reason
	}
}

// MarkStage records a stage outcome. When stages run inside parallel
// scheduler nodes, callers must buffer their notes per node and flush
// them in canonical node order — concurrent MarkStage calls are safe
// but their interleaving is not deterministic.
func (h *Health) MarkStage(name string, degraded bool, note string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.Stages = append(h.Stages, StageHealth{Name: name, Degraded: degraded, Note: note})
}

// Ready is the serving-readiness verdict over this report: true unless
// some source went unavailable. Degraded-but-present sources still
// serve — they are listed, not disqualifying. /readyz and the snapshot
// store's generation health both key off this.
func (h *Health) Ready() bool { return len(h.UnavailableSources()) == 0 }

// DegradedSources lists sources whose status is not healthy.
func (h *Health) DegradedSources() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for _, name := range h.order {
		if h.sources[name].Status != Healthy {
			out = append(out, name)
		}
	}
	return out
}

// UnavailableSources lists sources whose circuit tripped.
func (h *Health) UnavailableSources() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for _, name := range h.order {
		if h.sources[name].Status == Unavailable {
			out = append(out, name)
		}
	}
	return out
}

// Quarantined totals the records validation removed across sources.
func (h *Health) Quarantined() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, sh := range h.sources {
		n += sh.Quarantined
	}
	return n
}

// Dropped totals the records silently lost across sources.
func (h *Health) Dropped() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, sh := range h.sources {
		n += sh.Dropped
	}
	return n
}

// Retries totals retry attempts across sources.
func (h *Health) Retries() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, sh := range h.sources {
		n += sh.Retries
	}
	return n
}

// DegradedStages lists the stages that ran degraded.
func (h *Health) DegradedStages() []StageHealth {
	var out []StageHealth
	for _, st := range h.Stages {
		if st.Degraded {
			out = append(out, st)
		}
	}
	return out
}

// Render formats the report as a diffable plain-text table.
func (h *Health) Render() string {
	var b strings.Builder
	t := report.NewTable(
		fmt.Sprintf("Pipeline health (fault severity %.2f)", h.Severity),
		"source", "status", "attempts", "retries", "backoff", "dropped", "corrupted", "quarantined", "note")
	for _, sh := range h.Sources() {
		t.AddRow(sh.Name, sh.Status.String(), sh.Attempts, sh.Retries,
			sh.BackoffUnits, sh.Dropped, sh.Corrupted, sh.Quarantined, sh.LastError)
	}
	b.WriteString(t.String())
	if len(h.Stages) > 0 {
		b.WriteString("\nstages:\n")
		for _, st := range h.Stages {
			state := "ok"
			if st.Degraded {
				state = "degraded"
			}
			fmt.Fprintf(&b, "  %-20s %-9s %s\n", st.Name, state, st.Note)
		}
	}
	h.mu.Lock()
	rows := len(h.order)
	h.mu.Unlock()
	fmt.Fprintf(&b, "\nsummary: %d/%d sources degraded (%d unavailable), %d records dropped, %d quarantined, %d retries\n",
		len(h.DegradedSources()), rows, len(h.UnavailableSources()),
		h.Dropped(), h.Quarantined(), h.Retries())
	return b.String()
}

// RenderTimings formats the per-node wall-time profile as a table. It
// lives outside Render because wall times are nondeterministic: Render
// stays byte-diffable across runs, timings are observability. On an
// incremental rebuild a "built" column distinguishes rebuilt nodes from
// ones restored out of the previous generation's memo.
func (h *Health) RenderTimings() string {
	t := report.NewTable(
		fmt.Sprintf("Build-node wall time (%d workers)", h.Workers),
		"node", "wall", "built")
	var total time.Duration
	reused := 0
	for _, nt := range h.Timings {
		built := "built"
		if nt.Reused {
			built = "reused"
			reused++
		}
		t.AddRow(nt.Node, nt.Wall.Round(time.Microsecond).String(), built)
		total += nt.Wall
	}
	t.AddRow("(sum of nodes)", total.Round(time.Microsecond).String(),
		fmt.Sprintf("%d/%d reused", reused, len(h.Timings)))
	return t.String()
}

// Do executes one substrate build under the hardened contract: up to
// Backoff.MaxAttempts attempts, retrying only transient failures, with
// the breaker consulted before every attempt. On success it returns
// (value, true); when the breaker trips or a permanent error occurs it
// records the source as unavailable and returns (zero, false) — the
// caller degrades gracefully instead of propagating the failure.
func Do[T any](h *Health, br *Breaker, bo Backoff, source string, build func(attempt int) (T, error)) (T, bool) {
	sh := h.Source(source)
	var zero T
	for attempt := 1; attempt <= bo.MaxAttempts && br.Allow(); attempt++ {
		sh.Attempts = attempt
		v, err := build(attempt)
		if err == nil {
			br.Success()
			if sh.Retries > 0 {
				sh.degrade(Degraded)
			}
			return v, true
		}
		br.Failure()
		sh.LastError = err.Error()
		if !faults.IsTransient(err) {
			break
		}
		if attempt < bo.MaxAttempts && br.Allow() {
			sh.Retries++
			sh.BackoffUnits += bo.Delay(attempt)
		}
	}
	sh.degrade(Unavailable)
	return zero, false
}
