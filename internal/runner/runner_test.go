package runner

import (
	"errors"
	"strings"
	"testing"

	"stateowned/internal/faults"
)

func TestDoSucceedsFirstAttempt(t *testing.T) {
	h := NewHealth(0)
	v, ok := Do(h, NewBreaker(0), DefaultBackoff(), "geo", func(int) (int, error) { return 7, nil })
	if !ok || v != 7 {
		t.Fatalf("Do = (%v, %v), want (7, true)", v, ok)
	}
	sh := h.Source("geo")
	if sh.Status != Healthy || sh.Attempts != 1 || sh.Retries != 0 {
		t.Errorf("unexpected health row: %+v", sh)
	}
}

func TestDoRetriesTransientThenRecovers(t *testing.T) {
	h := NewHealth(0.3)
	calls := 0
	v, ok := Do(h, NewBreaker(0), DefaultBackoff(), "orbis", func(attempt int) (string, error) {
		calls++
		if attempt <= 2 {
			return "", &faults.TransientError{Source: "orbis", Attempt: attempt}
		}
		return "data", nil
	})
	if !ok || v != "data" {
		t.Fatalf("Do = (%q, %v), want recovery", v, ok)
	}
	if calls != 3 {
		t.Errorf("build called %d times, want 3", calls)
	}
	sh := h.Source("orbis")
	if sh.Status != Degraded {
		t.Errorf("status %v after retries, want degraded", sh.Status)
	}
	if sh.Retries != 2 {
		t.Errorf("retries = %d, want 2", sh.Retries)
	}
	// Deterministic exponential backoff: 1 + 2 units.
	if sh.BackoffUnits != 3 {
		t.Errorf("backoff units = %d, want 3", sh.BackoffUnits)
	}
}

func TestDoTripsBreakerOnPersistentTimeouts(t *testing.T) {
	h := NewHealth(0.9)
	br := NewBreaker(0)
	calls := 0
	_, ok := Do(h, br, DefaultBackoff(), "orbis", func(attempt int) (int, error) {
		calls++
		return 0, &faults.TransientError{Source: "orbis", Attempt: attempt}
	})
	if ok {
		t.Fatal("Do reported success despite persistent timeouts")
	}
	if calls != DefaultBackoff().MaxAttempts {
		t.Errorf("build called %d times, want %d", calls, DefaultBackoff().MaxAttempts)
	}
	if !br.Open() {
		t.Error("breaker not open after exhausting attempts")
	}
	if h.Source("orbis").Status != Unavailable {
		t.Error("source not marked unavailable")
	}
	if got := h.UnavailableSources(); len(got) != 1 || got[0] != "orbis" {
		t.Errorf("UnavailableSources = %v", got)
	}
}

func TestDoStopsOnPermanentError(t *testing.T) {
	h := NewHealth(0)
	calls := 0
	_, ok := Do(h, NewBreaker(0), DefaultBackoff(), "whois", func(int) (int, error) {
		calls++
		return 0, errors.New("schema violation")
	})
	if ok || calls != 1 {
		t.Fatalf("permanent error retried: ok=%v calls=%d", ok, calls)
	}
}

func TestDoRespectsOpenBreaker(t *testing.T) {
	h := NewHealth(0)
	br := NewBreaker(2)
	br.Failure()
	br.Failure()
	calls := 0
	_, ok := Do(h, br, DefaultBackoff(), "geo", func(int) (int, error) { calls++; return 1, nil })
	if ok || calls != 0 {
		t.Fatalf("open breaker still admitted attempts: ok=%v calls=%d", ok, calls)
	}
}

func TestBackoffDelaysCapped(t *testing.T) {
	b := Backoff{MaxAttempts: 6, BaseUnits: 1, MaxUnits: 4}
	want := []int{1, 2, 4, 4, 4}
	for i, w := range want {
		if d := b.Delay(i + 1); d != w {
			t.Errorf("Delay(%d) = %d, want %d", i+1, d, w)
		}
	}
}

func TestHealthAccounting(t *testing.T) {
	h := NewHealth(0.4)
	h.NoteDamage("whois", faults.Damage{Dropped: 10, Corrupted: 4})
	h.NoteQuarantined("whois", 4)
	h.NoteDamage("geo", faults.Damage{})
	h.MarkUnavailable("orbis", "circuit open")
	h.MarkStage("stage1-candidates", true, "orbis unavailable")
	h.MarkStage("stage2-confirm", false, "")

	if got := h.DegradedSources(); len(got) != 2 {
		t.Errorf("DegradedSources = %v, want whois+orbis", got)
	}
	if h.Source("geo").Status != Healthy {
		t.Error("zero damage degraded a source")
	}
	if h.Quarantined() != 4 || h.Dropped() != 10 {
		t.Errorf("totals wrong: quarantined=%d dropped=%d", h.Quarantined(), h.Dropped())
	}
	if len(h.DegradedStages()) != 1 {
		t.Errorf("DegradedStages = %v", h.DegradedStages())
	}
	out := h.Render()
	for _, want := range []string{"whois", "unavailable", "stage1-candidates", "summary:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render misses %q:\n%s", want, out)
		}
	}
}

func TestStatusNeverDowngrades(t *testing.T) {
	h := NewHealth(1)
	h.MarkUnavailable("bgp", "all monitors dark")
	h.NoteDamage("bgp", faults.Damage{Dropped: 3})
	if h.Source("bgp").Status != Unavailable {
		t.Error("recording damage downgraded an unavailable source")
	}
}
