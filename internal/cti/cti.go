// Package cti implements the Country-Level Transit Influence metric from
// the paper's Appendix G (Gamero-Garrido):
//
//	CTI(AS, C) = Σ_m  w(m)/|M| · Σ_{p | onpath(AS,m,p)} a(p,C)/A(C) · 1/d(AS,m,p)
//
// where w(m) is the inverse of the number of monitors hosted in m's AS,
// onpath(AS,m,p) holds when AS appears as a *transit* hop on monitor m's
// preferred path toward prefix p (the monitor must not be inside AS, and
// the origin itself is not a transit hop), a(p,C) is the number of p's
// addresses geolocated to country C not covered by a more specific
// prefix, A(C) is C's total geolocated address count, and d is the number
// of AS-level hops between AS and p's origin on that path.
package cti

import (
	"sort"

	"stateowned/internal/bgp"
	"stateowned/internal/world"
)

// PrefixGeo supplies the geolocated address counts CTI weights by. It is
// implemented by the geolocation simulator; tests use literal maps.
type PrefixGeo interface {
	// AddressesIn returns a(p, C): how many of the prefix's addresses
	// geolocate to country C.
	AddressesIn(origin world.ASN, pfxIdx int, country string) uint64
	// TotalIn returns A(C): the country's total geolocated addresses.
	TotalIn(country string) uint64
}

// Score is one AS's transit influence over one country.
type Score struct {
	AS    world.ASN
	Value float64
}

// Computer evaluates CTI for a fixed monitor-path collection.
type Computer struct {
	paths   *bgp.MonitorPaths
	weights []float64 // per-monitor w(m)/|M|
}

// NewComputer prepares per-monitor weights from the path collection.
func NewComputer(paths *bgp.MonitorPaths) *Computer {
	perAS := paths.MonitorsInAS()
	ws := make([]float64, len(paths.Monitors))
	total := float64(len(paths.Monitors))
	for i, m := range paths.Monitors {
		ws[i] = 1 / float64(perAS[m.AS]) / total
	}
	return &Computer{paths: paths, weights: ws}
}

// prefixRef identifies one prefix by its origin and index within the
// origin's prefix list.
type prefixRef struct {
	origin world.ASN
	idx    int
}

// Country computes CTI(·, C) for every AS observed as transit toward C's
// prefixes, returning scores sorted descending (ties by ascending ASN).
//
// origins lists the responsive origin ASes whose prefixes geolocate to C,
// with their per-origin prefix counts supplied by prefixesOf.
func (c *Computer) Country(
	country string,
	origins []world.ASN,
	prefixesOf func(world.ASN) int,
	geo PrefixGeo,
) []Score {
	totalAddr := geo.TotalIn(country)
	if totalAddr == 0 {
		return nil
	}
	acc := make(map[world.ASN]float64)
	for mi := range c.paths.Monitors {
		w := c.weights[mi]
		monitorAS := c.paths.Monitors[mi].AS
		for _, origin := range origins {
			path := c.paths.Path(mi, origin)
			if len(path) < 2 {
				continue // monitor is the origin or origin unreachable
			}
			for _, ref := range prefixRefs(origin, prefixesOf(origin)) {
				a := geo.AddressesIn(ref.origin, ref.idx, country)
				if a == 0 {
					continue
				}
				frac := float64(a) / float64(totalAddr)
				// path[0] is the monitor's AS, path[len-1] the origin.
				// Transit hops are path[1:len-1]; additionally the
				// monitor's own AS never scores (m not contained in AS).
				for hop := 1; hop < len(path)-1; hop++ {
					as := path[hop]
					if as == monitorAS {
						continue
					}
					d := len(path) - 1 - hop // AS hops to the origin
					acc[as] += w * frac / float64(d)
				}
			}
		}
	}
	out := make([]Score, 0, len(acc))
	for as, v := range acc {
		out = append(out, Score{AS: as, Value: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return out[i].AS < out[j].AS
	})
	return out
}

func prefixRefs(origin world.ASN, n int) []prefixRef {
	out := make([]prefixRef, n)
	for i := range out {
		out[i] = prefixRef{origin, i}
	}
	return out
}

// TopK returns the k highest-CTI ASes of a score list (the paper selects
// the two highest-ranked per country for its candidate list).
func TopK(scores []Score, k int) []Score {
	if k > len(scores) {
		k = len(scores)
	}
	return scores[:k]
}
