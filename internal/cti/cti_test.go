package cti

import (
	"math"
	"testing"

	"stateowned/internal/bgp"
	"stateowned/internal/topology"
	"stateowned/internal/world"
)

// fakeGeo implements PrefixGeo with literal counts.
type fakeGeo struct {
	addr  map[world.ASN][]uint64 // per origin, per prefix index, addresses in the country
	total uint64
}

func (f fakeGeo) AddressesIn(origin world.ASN, idx int, country string) uint64 {
	ps := f.addr[origin]
	if idx >= len(ps) {
		return 0
	}
	return ps[idx]
}

func (f fakeGeo) TotalIn(country string) uint64 { return f.total }

// fakePaths builds a MonitorPaths-compatible structure through the real
// collector on a generated graph; for formula-level tests we instead use
// a hand-built world below.

func TestFormulaOnGeneratedWorld(t *testing.T) {
	w := world.Generate(world.Config{Seed: 7, Scale: 0.1})
	g := topology.Build(w, topology.FinalYear)
	monitors := bgp.SelectMonitors(w, g, 30)

	// Cuba: ETECSA (AS11960) is the gateway; CTI must rank the Syrian-
	// style gateway structure with the state AS on top.
	var origins []world.ASN
	for _, asn := range g.ASes() {
		if w.ASes[asn].Country == "CU" {
			origins = append(origins, asn)
		}
	}
	if len(origins) < 2 {
		t.Skip("CU too small in this world")
	}
	mp := bgp.CollectPaths(g, monitors, origins, 0)
	comp := NewComputer(mp)

	// Ground-truth prefix geolocation: every prefix of a CU AS is in CU.
	addr := map[world.ASN][]uint64{}
	var total uint64
	for _, o := range origins {
		for _, p := range w.ASes[o].Prefixes {
			addr[o] = append(addr[o], p.NumAddresses())
			total += p.NumAddresses()
		}
	}
	scores := comp.Country("CU", origins, func(o world.ASN) int { return len(addr[o]) }, fakeGeo{addr, total})
	if len(scores) == 0 {
		t.Fatal("no CTI scores for CU")
	}
	// Scores are sorted and bounded.
	for i, s := range scores {
		if s.Value <= 0 {
			t.Fatalf("non-positive score %f", s.Value)
		}
		if i > 0 && s.Value > scores[i-1].Value {
			t.Fatal("scores not sorted")
		}
	}
	// The top transit AS for Cuba should be Cuban state infrastructure:
	// ETECSA's primary gateway AS carries the domestic tail.
	top := scores[0].AS
	op, _ := w.OperatorOfAS(top)
	if op == nil {
		t.Fatalf("top CTI AS %d has no operator", top)
	}
	foundETECSA := false
	for _, s := range TopK(scores, 2) {
		o, _ := w.OperatorOfAS(s.AS)
		if o != nil && o.Conglomerate == "ETECSA" {
			foundETECSA = true
		}
	}
	if !foundETECSA {
		t.Errorf("ETECSA not in Cuba's top-2 CTI (top=%d, op=%s)", top, op.BrandName)
	}
}

// TestMonitorWeighting verifies w(m) = 1/#monitors-in-AS: duplicating a
// monitor inside an AS must not change that AS-pair's contribution.
func TestMonitorWeighting(t *testing.T) {
	w := world.Generate(world.Config{Seed: 7, Scale: 0.1})
	g := topology.Build(w, topology.FinalYear)
	var origins []world.ASN
	for _, asn := range g.ASes() {
		if w.ASes[asn].Country == "SY" {
			origins = append(origins, asn)
		}
	}
	if len(origins) == 0 {
		t.Skip("no SY origins")
	}
	addr := map[world.ASN][]uint64{}
	var total uint64
	for _, o := range origins {
		for _, p := range w.ASes[o].Prefixes {
			addr[o] = append(addr[o], p.NumAddresses())
			total += p.NumAddresses()
		}
	}
	geo := fakeGeo{addr, total}
	nPfx := func(o world.ASN) int { return len(addr[o]) }

	base := bgp.SelectMonitors(w, g, 20)
	var single, double []bgp.Monitor
	for _, m := range base {
		single = append(single, m)
	}
	// Duplicate every monitor: weights halve, |M| doubles -> each AS's
	// total contribution is exactly half... no: w(m)/|M| = (1/2)/(2N)
	// per monitor x2 monitors = 1/(2N) vs 1/N. The metric definition
	// normalizes by |M|, so doubling all monitors halves nothing —
	// each AS keeps contribution (2 monitors x 1/2 weight)/(2N) = 1/(2N)
	// ... hence total scores halve. Verify the exact ratio instead.
	for _, m := range base {
		double = append(double, m, bgp.Monitor{ID: m.ID + "b", AS: m.AS})
	}
	s1 := NewComputer(bgp.CollectPaths(g, single, origins, 0)).Country("SY", origins, nPfx, geo)
	s2 := NewComputer(bgp.CollectPaths(g, double, origins, 0)).Country("SY", origins, nPfx, geo)
	if len(s1) == 0 || len(s1) != len(s2) {
		t.Fatalf("score set changed: %d vs %d", len(s1), len(s2))
	}
	m1 := map[world.ASN]float64{}
	for _, s := range s1 {
		m1[s.AS] = s.Value
	}
	for _, s := range s2 {
		want := m1[s.AS] / 2
		if math.Abs(s.Value-want) > 1e-12 {
			t.Fatalf("AS%d: doubled-monitor score %g, want %g", s.AS, s.Value, want)
		}
	}
}

func TestTopK(t *testing.T) {
	scores := []Score{{1, 0.5}, {2, 0.3}, {3, 0.1}}
	if got := TopK(scores, 2); len(got) != 2 || got[0].AS != 1 {
		t.Errorf("TopK = %v", got)
	}
	if got := TopK(scores, 10); len(got) != 3 {
		t.Errorf("oversized TopK = %v", got)
	}
}

func TestEmptyCountry(t *testing.T) {
	w := world.Generate(world.Config{Seed: 7, Scale: 0.05})
	g := topology.Build(w, topology.FinalYear)
	mp := bgp.CollectPaths(g, bgp.SelectMonitors(w, g, 5), nil, 0)
	comp := NewComputer(mp)
	if s := comp.Country("XX", nil, func(world.ASN) int { return 0 }, fakeGeo{nil, 0}); s != nil {
		t.Errorf("expected nil scores for empty country, got %v", s)
	}
}
