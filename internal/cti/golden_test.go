package cti

import (
	"math"
	"testing"

	"stateowned/internal/bgp"
	"stateowned/internal/world"
)

// TestGoldenFormula verifies the Appendix-G formula against a fully
// hand-computed example.
//
// Setup: country C has two origins, o1 (AS100) with one /24 prefix (256
// addresses) and o2 (AS200) with one /23 prefix (512 addresses), so
// A(C) = 768. Transit AS999 sits on some paths. Three monitors:
//
//	m0 in AS10: path to o1 = [10, 999, 100]  (999 at d=1)
//	            path to o2 = [10, 999, 50, 200] (999 at d=2)
//	m1 in AS20: path to o1 = [20, 100]       (no transit hop)
//	            path to o2 = [20, 999, 200]  (999 at d=1)
//	m2 in AS20: path to o1 = [20, 999, 100]  (999 at d=1)
//	            (no path to o2)
//
// Monitor weights: m0 alone in AS10 -> w=1; m1,m2 share AS20 -> w=1/2
// each. |M| = 3.
//
//	CTI(999, C) = 1/3 · [ 1·(256/768·1/1 + 512/768·1/2)     (m0)
//	                    + 1/2·(512/768·1/1)                  (m1)
//	                    + 1/2·(256/768·1/1) ]                (m2)
//	            = 1/3 · [ 2/3 + 1/3 + 1/6 ] = 7/18
//
// AS50 appears only on m0's path to o2 at d=1:
//
//	CTI(50, C) = 1/3 · 1 · (512/768 · 1/1) = 2/9
func TestGoldenFormula(t *testing.T) {
	monitors := []bgp.Monitor{
		{ID: "m0", AS: 10},
		{ID: "m1", AS: 20},
		{ID: "m2", AS: 20},
	}
	paths := []map[world.ASN][]world.ASN{
		{100: {10, 999, 100}, 200: {10, 999, 50, 200}},
		{100: {20, 100}, 200: {20, 999, 200}},
		{100: {20, 999, 100}},
	}
	comp := NewComputer(bgp.ReplayPaths(monitors, paths))

	geo := fakeGeo{
		addr:  map[world.ASN][]uint64{100: {256}, 200: {512}},
		total: 768,
	}
	scores := comp.Country("C", []world.ASN{100, 200},
		func(o world.ASN) int { return len(geo.addr[o]) }, geo)

	got := map[world.ASN]float64{}
	for _, s := range scores {
		got[s.AS] = s.Value
	}
	want := map[world.ASN]float64{
		999: 7.0 / 18.0,
		50:  2.0 / 9.0,
	}
	for as, w := range want {
		if math.Abs(got[as]-w) > 1e-12 {
			t.Errorf("CTI(AS%d) = %.12f, want %.12f", as, got[as], w)
		}
	}
	// Origins themselves and monitor ASes must not score.
	for _, as := range []world.ASN{100, 200, 10, 20} {
		if _, scored := got[as]; scored {
			t.Errorf("AS%d should not receive a transit score", as)
		}
	}
	// Ranking: 999 > 50.
	if len(scores) != 2 || scores[0].AS != 999 {
		t.Errorf("ranking wrong: %+v", scores)
	}
}

// TestGoldenMonitorInsideAS checks the "monitor not contained within AS"
// clause: a hop equal to the monitor's own AS contributes nothing.
func TestGoldenMonitorInsideAS(t *testing.T) {
	monitors := []bgp.Monitor{{ID: "m0", AS: 999}}
	paths := []map[world.ASN][]world.ASN{
		// AS999 appears as both the monitor AS and a transit hop.
		{100: {999, 50, 100}},
	}
	comp := NewComputer(bgp.ReplayPaths(monitors, paths))
	geo := fakeGeo{addr: map[world.ASN][]uint64{100: {256}}, total: 256}
	scores := comp.Country("C", []world.ASN{100},
		func(o world.ASN) int { return 1 }, geo)
	for _, s := range scores {
		if s.AS == 999 {
			t.Errorf("monitor's own AS scored %.6f", s.Value)
		}
	}
	// AS50 at d=1 with the full address space: CTI = 1·1·(1·1/1) = 1.
	if len(scores) != 1 || scores[0].AS != 50 || math.Abs(scores[0].Value-1) > 1e-12 {
		t.Errorf("scores = %+v, want AS50 at exactly 1.0", scores)
	}
}
