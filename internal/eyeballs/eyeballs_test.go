package eyeballs

import (
	"math"
	"testing"

	"stateowned/internal/world"
)

var (
	testW  = world.Generate(world.Config{Seed: 7, Scale: 0.1})
	testDS = Build(testW)
)

func TestSharesSumToOne(t *testing.T) {
	for _, cc := range testW.Countries {
		ests := testDS.Country(cc)
		if len(ests) == 0 {
			continue
		}
		var sum float64
		for _, e := range ests {
			if e.Users <= 0 || e.Share <= 0 {
				t.Fatalf("%s: non-positive estimate %+v", cc, e)
			}
			sum += e.Share
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: shares sum to %f", cc, sum)
		}
	}
}

func TestOnlyAccessASesCovered(t *testing.T) {
	for _, asn := range testW.ASNList {
		if e, ok := testDS.ByAS(asn); ok {
			op, _ := testW.OperatorOfAS(asn)
			if op.Subscribers == 0 {
				t.Fatalf("AS%d covered with zero-subscriber operator %s", asn, op.ID)
			}
			if e.Country != op.Country {
				t.Fatalf("AS%d estimate country mismatch", asn)
			}
		}
	}
	if testDS.CoveredASes() == 0 {
		t.Fatal("no coverage at all")
	}
	// Coverage must be partial: stubs and transit networks are absent.
	if testDS.CoveredASes() >= len(testW.ASNList)/2 {
		t.Errorf("coverage %d of %d too broad", testDS.CoveredASes(), len(testW.ASNList))
	}
}

func TestEstimatesTrackTruth(t *testing.T) {
	// Per operator, estimates should be within ~2x of truth (log-normal
	// sigma 0.2 makes >2x deviations vanishingly rare).
	for _, id := range testW.OperatorIDs {
		op := testW.Operators[id]
		if op.Subscribers < 5000 || len(op.ASNs) == 0 {
			continue
		}
		var est int
		for _, asn := range op.ASNs {
			if e, ok := testDS.ByAS(asn); ok {
				est += e.Users
			}
		}
		if est == 0 {
			continue
		}
		ratio := float64(est) / float64(op.Subscribers)
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("%s: estimate ratio %.2f (est %d, truth %d)", id, ratio, est, op.Subscribers)
		}
	}
}

func TestSortedDescending(t *testing.T) {
	for _, cc := range []string{"NO", "CN", "BR", "ET"} {
		ests := testDS.Country(cc)
		for i := 1; i < len(ests); i++ {
			if ests[i].Users > ests[i-1].Users {
				t.Fatalf("%s estimates not sorted", cc)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	ds2 := Build(testW)
	if ds2.CoveredASes() != testDS.CoveredASes() {
		t.Fatal("coverage differs across builds")
	}
	for _, cc := range testW.Countries {
		a, b := testDS.Country(cc), ds2.Country(cc)
		if len(a) != len(b) {
			t.Fatalf("%s coverage differs", cc)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s estimate %d differs", cc, i)
			}
		}
	}
}

func TestCountryShare(t *testing.T) {
	ests := testDS.Country("CU")
	if len(ests) == 0 {
		t.Skip("no CU estimates")
	}
	if got := testDS.CountryShare("CU", ests[0].AS); got != ests[0].Share {
		t.Errorf("CountryShare = %f, want %f", got, ests[0].Share)
	}
	if got := testDS.CountryShare("CU", 4242424); got != 0 {
		t.Errorf("missing AS share = %f", got)
	}
}
