// Package eyeballs simulates APNIC's ad-based per-AS user-population
// estimates (labs.apnic.net). The estimator observes each access AS's
// ground-truth subscriber base through multiplicative sampling noise and
// reports, per country, the estimated user count and the share of the
// country's samples attributed to each AS — the quantities the paper's
// §4.1 eyeball filter consumes.
//
// Coverage mirrors the real dataset's: only ASes that actually serve end
// users appear (the paper's APNIC snapshot covers 25,498 of ~68k ASes),
// and very small populations fall below the sampling floor.
package eyeballs

import (
	"sort"

	"stateowned/internal/rng"
	"stateowned/internal/world"
)

// Estimate is one AS's eyeball estimate within one country.
type Estimate struct {
	AS      world.ASN
	Country string
	// Users is the estimated user population.
	Users int
	// Share is the fraction of the country's sampled eyeballs attributed
	// to this AS.
	Share float64
}

// Dataset is a frozen eyeball snapshot.
type Dataset struct {
	byCountry map[string][]Estimate
	byAS      map[world.ASN]Estimate
}

// samplingFloor is the minimum estimated population that survives the
// ad-sampling process.
const samplingFloor = 200

// Build estimates eyeball populations for the world.
func Build(w *world.World) *Dataset {
	r := rng.New(w.Seed).Sub("eyeballs")
	ds := &Dataset{
		byCountry: make(map[string][]Estimate),
		byAS:      make(map[world.ASN]Estimate),
	}
	raw := make(map[string][]Estimate)
	for _, id := range w.OperatorIDs {
		op := w.Operators[id]
		if op.Subscribers == 0 || len(op.ASNs) == 0 {
			continue
		}
		// Subscribers split across the operator's ASNs, front-loaded on
		// the primary AS (mirroring how measured eyeballs concentrate).
		weights := make([]float64, len(op.ASNs))
		weights[0] = 1
		for i := 1; i < len(weights); i++ {
			weights[i] = 0.15 / float64(len(weights))
		}
		var wsum float64
		for _, x := range weights {
			wsum += x
		}
		or := r.Sub("op/" + op.ID)
		for i, asn := range op.ASNs {
			truth := float64(op.Subscribers) * weights[i] / wsum
			est := truth * or.LogNorm(0, 0.20)
			if est < samplingFloor {
				continue
			}
			raw[op.Country] = append(raw[op.Country], Estimate{
				AS: asn, Country: op.Country, Users: int(est),
			})
		}
	}
	for cc, list := range raw {
		var total float64
		for _, e := range list {
			total += float64(e.Users)
		}
		for i := range list {
			list[i].Share = float64(list[i].Users) / total
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].Users != list[j].Users {
				return list[i].Users > list[j].Users
			}
			return list[i].AS < list[j].AS
		})
		ds.byCountry[cc] = list
		for _, e := range list {
			ds.byAS[e.AS] = e
		}
	}
	return ds
}

// Country returns the country's estimates, largest first.
func (d *Dataset) Country(cc string) []Estimate { return d.byCountry[cc] }

// ByAS returns an AS's estimate (zero value if the AS is not covered).
func (d *Dataset) ByAS(a world.ASN) (Estimate, bool) {
	e, ok := d.byAS[a]
	return e, ok
}

// CoveredASes reports how many ASes carry an estimate.
func (d *Dataset) CoveredASes() int { return len(d.byAS) }

// CountryShare returns the share of a country's eyeballs on the given AS.
func (d *Dataset) CountryShare(cc string, a world.ASN) float64 {
	for _, e := range d.byCountry[cc] {
		if e.AS == a {
			return e.Share
		}
	}
	return 0
}
