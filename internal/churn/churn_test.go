package churn

import (
	"testing"

	"stateowned/internal/as2org"
	"stateowned/internal/expand"
	"stateowned/internal/hijack"
	"stateowned/internal/whois"
	"stateowned/internal/world"
)

func countStateOps(w *world.World) int {
	n := 0
	for _, id := range w.OperatorIDs {
		op := w.Operators[id]
		if op.Kind.InScope() && w.Graph.ControlOf(op.Entity).Controlled() {
			n++
		}
	}
	return n
}

func TestEvolveChangesOwnership(t *testing.T) {
	w := world.Generate(world.Config{Seed: 7, Scale: 0.05})
	before := countStateOps(w)
	events := Evolve(w, 5, 11, DefaultRates())
	if len(events) == 0 {
		t.Fatal("five years produced no events")
	}
	after := countStateOps(w)
	t.Logf("state operators: %d -> %d across %d events", before, after, len(events))

	kinds := map[EventKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
		if e.Year < 1 || e.Year > 5 || e.OperatorID == "" {
			t.Fatalf("malformed event %+v", e)
		}
	}
	if kinds[Privatization] == 0 {
		t.Error("no privatizations in five years")
	}

	// Every privatized operator must have actually lost state control.
	for _, e := range events {
		if e.Kind != Privatization {
			continue
		}
		op := w.Operators[e.OperatorID]
		// It may have been re-nationalized by a later event; verify only
		// if no later nationalization touched it.
		renationalized := false
		for _, e2 := range events {
			if e2.OperatorID == e.OperatorID && e2.Kind == Nationalization && e2.Year > e.Year {
				renationalized = true
			}
		}
		if !renationalized && w.Graph.ControlOf(op.Entity).Controlled() {
			t.Errorf("%s privatized but still controlled", e.OperatorID)
		}
	}
}

func TestEvolveDeterministic(t *testing.T) {
	w1 := world.Generate(world.Config{Seed: 7, Scale: 0.05})
	w2 := world.Generate(world.Config{Seed: 7, Scale: 0.05})
	e1 := Evolve(w1, 3, 5, DefaultRates())
	e2 := Evolve(w2, 3, 5, DefaultRates())
	if len(e1) != len(e2) {
		t.Fatalf("event counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

// TestEvolveOrderIndependent is the regression test for the canonical
// within-year ordering: evolving two identical worlds — one enumerated
// in natural operator order, one in reversed order — must produce the
// same event log and the same resulting ownership state. Before the
// two-phase rewrite, both the RNG draws and the mutation order followed
// the enumeration order, so generation content silently depended on it.
func TestEvolveOrderIndependent(t *testing.T) {
	w1 := world.Generate(world.Config{Seed: 7, Scale: 0.05})
	w2 := world.Generate(world.Config{Seed: 7, Scale: 0.05})
	for i, j := 0, len(w2.OperatorIDs)-1; i < j; i, j = i+1, j-1 {
		w2.OperatorIDs[i], w2.OperatorIDs[j] = w2.OperatorIDs[j], w2.OperatorIDs[i]
	}

	e1 := Evolve(w1, 5, 11, DefaultRates())
	e2 := Evolve(w2, 5, 11, DefaultRates())
	if len(e1) == 0 {
		t.Fatal("no events to compare")
	}
	if len(e1) != len(e2) {
		t.Fatalf("event counts differ under reversed enumeration: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("event %d differs under reversed enumeration:\n  %+v\n  %+v", i, e1[i], e2[i])
		}
	}
	for _, id := range w1.OperatorIDs {
		c1 := w1.Graph.ControlOf(w1.Operators[id].Entity)
		c2 := w2.Graph.ControlOf(w2.Operators[id].Entity)
		if c1.Controller != c2.Controller || c1.Share != c2.Share {
			t.Fatalf("operator %s control diverged: %+v vs %+v", id, c1, c2)
		}
	}
}

// TestEvolveEventsCanonicalOrder pins the event log's sort contract:
// ascending (year, kind, operator ID).
func TestEvolveEventsCanonicalOrder(t *testing.T) {
	w := world.Generate(world.Config{Seed: 21, Scale: 0.05})
	events := Evolve(w, 8, 3, DefaultRates())
	if len(events) < 2 {
		t.Skipf("only %d events; nothing to order", len(events))
	}
	for i := 1; i < len(events); i++ {
		a, b := events[i-1], events[i]
		ordered := a.Year < b.Year ||
			(a.Year == b.Year && (a.Kind < b.Kind ||
				(a.Kind == b.Kind && a.OperatorID < b.OperatorID)))
		if !ordered {
			t.Fatalf("events %d and %d out of canonical order:\n  %+v\n  %+v", i-1, i, a, b)
		}
	}
}

func TestZeroRatesNoEvents(t *testing.T) {
	w := world.Generate(world.Config{Seed: 7, Scale: 0.05})
	if events := Evolve(w, 10, 3, Rates{}); len(events) != 0 {
		t.Errorf("zero rates produced %d events", len(events))
	}
}

func TestAuditDetectsAgeing(t *testing.T) {
	w := world.Generate(world.Config{Seed: 7, Scale: 0.05})
	// Build a small "dataset" directly from ground truth: one org per
	// state operator.
	reg := whois.Build(w)
	m := as2org.Infer(reg)
	_ = m
	ds := &expand.Dataset{}
	for _, id := range w.OperatorIDs {
		op := w.Operators[id]
		ctrl := w.Graph.ControlOf(op.Entity)
		if !op.Kind.InScope() || !ctrl.Controlled() || len(op.ASNs) == 0 {
			continue
		}
		ds.Organizations = append(ds.Organizations, expand.OrgRecord{
			OrgID: op.OrgID, OrgName: op.LegalName, OwnershipCC: ctrl.Controller,
		})
		ds.ASNs = append(ds.ASNs, expand.OrgASNs{OrgID: op.OrgID, ASNs: op.ASNs})
	}

	// Fresh dataset: fully valid.
	fresh := RunAudit(ds, w)
	if len(fresh.StaleOrgs) != 0 {
		t.Fatalf("fresh dataset already stale: %v", fresh.StaleOrgs)
	}
	if fresh.StillValid != len(ds.Organizations) {
		t.Fatalf("fresh valid = %d of %d", fresh.StillValid, len(ds.Organizations))
	}

	// Age the world; the audit must now find work, and far less than a
	// full rebuild.
	events := Evolve(w, 5, 11, DefaultRates())
	aged := RunAudit(ds, w)
	if len(events) > 0 && len(aged.StaleOrgs)+len(aged.MissingCompanies) == 0 {
		t.Error("events occurred but the audit found nothing")
	}
	if aged.MaintenanceFraction > 0.5 {
		t.Errorf("maintenance fraction %.2f: ageing should be incremental", aged.MaintenanceFraction)
	}
	t.Logf("after 5 years: %d stale, %d missing, fraction %.3f",
		len(aged.StaleOrgs), len(aged.MissingCompanies), aged.MaintenanceFraction)
}

// TestAuditAdversarialFlag is the regression test distinguishing
// legitimate M&A churn from hijack-coincident churn. Two stale rows can
// look identical in the ownership audit; only the one whose ASNs appear
// as victims in the generation's detection report may be an adversary's
// artifact, and only that one must carry the adversarial flag.
func TestAuditAdversarialFlag(t *testing.T) {
	w := world.Generate(world.Config{Seed: 7, Scale: 0.05})
	ds := &expand.Dataset{}
	for _, id := range w.OperatorIDs {
		op := w.Operators[id]
		ctrl := w.Graph.ControlOf(op.Entity)
		if !op.Kind.InScope() || !ctrl.Controlled() || len(op.ASNs) == 0 {
			continue
		}
		ds.Organizations = append(ds.Organizations, expand.OrgRecord{
			OrgID: op.OrgID, OrgName: op.LegalName, OwnershipCC: ctrl.Controller,
		})
		ds.ASNs = append(ds.ASNs, expand.OrgASNs{OrgID: op.OrgID, ASNs: op.ASNs})
	}
	Evolve(w, 5, 11, DefaultRates())
	plain := RunAudit(ds, w)
	if len(plain.StaleOrgs) < 2 {
		t.Skipf("only %d stale orgs; need two to distinguish", len(plain.StaleOrgs))
	}
	for _, row := range plain.StaleOrgs {
		if row.Adversarial {
			t.Fatalf("audit with no detection report flagged %q adversarial", row.OrgName)
		}
	}

	// Pick one stale org and forge a detection report naming one of its
	// ASNs as a hijack victim; every other stale row is plain M&A churn.
	target := plain.StaleOrgs[0].OrgName
	var victim world.ASN
	for i := range ds.Organizations {
		if ds.Organizations[i].OrgName == target {
			victim = ds.ASNs[i].ASNs[0]
		}
	}
	rep := &hijack.Report{Detections: []hijack.Detection{
		{Victim: victim, Observed: victim + 1, Monitors: 3},
	}}

	flagged := RunAuditFlagged(ds, w, rep)
	if len(flagged.StaleOrgs) != len(plain.StaleOrgs) {
		t.Fatalf("flag join changed the stale set: %d vs %d", len(flagged.StaleOrgs), len(plain.StaleOrgs))
	}
	for _, row := range flagged.StaleOrgs {
		if row.OrgName == target && !row.Adversarial {
			t.Errorf("%q has a detected origin change but no adversarial flag", row.OrgName)
		}
		if row.OrgName != target && row.Adversarial {
			t.Errorf("%q is plain M&A churn but was flagged adversarial", row.OrgName)
		}
	}
	// Other audit fields are unaffected by the join.
	if flagged.StillValid != plain.StillValid || flagged.MaintenanceFraction != plain.MaintenanceFraction {
		t.Errorf("flag join changed audit totals: %+v vs %+v", flagged, plain)
	}
}
