package churn

import (
	"testing"

	"stateowned/internal/as2org"
	"stateowned/internal/expand"
	"stateowned/internal/whois"
	"stateowned/internal/world"
)

func countStateOps(w *world.World) int {
	n := 0
	for _, id := range w.OperatorIDs {
		op := w.Operators[id]
		if op.Kind.InScope() && w.Graph.ControlOf(op.Entity).Controlled() {
			n++
		}
	}
	return n
}

func TestEvolveChangesOwnership(t *testing.T) {
	w := world.Generate(world.Config{Seed: 7, Scale: 0.05})
	before := countStateOps(w)
	events := Evolve(w, 5, 11, DefaultRates())
	if len(events) == 0 {
		t.Fatal("five years produced no events")
	}
	after := countStateOps(w)
	t.Logf("state operators: %d -> %d across %d events", before, after, len(events))

	kinds := map[EventKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
		if e.Year < 1 || e.Year > 5 || e.OperatorID == "" {
			t.Fatalf("malformed event %+v", e)
		}
	}
	if kinds[Privatization] == 0 {
		t.Error("no privatizations in five years")
	}

	// Every privatized operator must have actually lost state control.
	for _, e := range events {
		if e.Kind != Privatization {
			continue
		}
		op := w.Operators[e.OperatorID]
		// It may have been re-nationalized by a later event; verify only
		// if no later nationalization touched it.
		renationalized := false
		for _, e2 := range events {
			if e2.OperatorID == e.OperatorID && e2.Kind == Nationalization && e2.Year > e.Year {
				renationalized = true
			}
		}
		if !renationalized && w.Graph.ControlOf(op.Entity).Controlled() {
			t.Errorf("%s privatized but still controlled", e.OperatorID)
		}
	}
}

func TestEvolveDeterministic(t *testing.T) {
	w1 := world.Generate(world.Config{Seed: 7, Scale: 0.05})
	w2 := world.Generate(world.Config{Seed: 7, Scale: 0.05})
	e1 := Evolve(w1, 3, 5, DefaultRates())
	e2 := Evolve(w2, 3, 5, DefaultRates())
	if len(e1) != len(e2) {
		t.Fatalf("event counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestZeroRatesNoEvents(t *testing.T) {
	w := world.Generate(world.Config{Seed: 7, Scale: 0.05})
	if events := Evolve(w, 10, 3, Rates{}); len(events) != 0 {
		t.Errorf("zero rates produced %d events", len(events))
	}
}

func TestAuditDetectsAgeing(t *testing.T) {
	w := world.Generate(world.Config{Seed: 7, Scale: 0.05})
	// Build a small "dataset" directly from ground truth: one org per
	// state operator.
	reg := whois.Build(w)
	m := as2org.Infer(reg)
	_ = m
	ds := &expand.Dataset{}
	for _, id := range w.OperatorIDs {
		op := w.Operators[id]
		ctrl := w.Graph.ControlOf(op.Entity)
		if !op.Kind.InScope() || !ctrl.Controlled() || len(op.ASNs) == 0 {
			continue
		}
		ds.Organizations = append(ds.Organizations, expand.OrgRecord{
			OrgID: op.OrgID, OrgName: op.LegalName, OwnershipCC: ctrl.Controller,
		})
		ds.ASNs = append(ds.ASNs, expand.OrgASNs{OrgID: op.OrgID, ASNs: op.ASNs})
	}

	// Fresh dataset: fully valid.
	fresh := RunAudit(ds, w)
	if len(fresh.StaleOrgs) != 0 {
		t.Fatalf("fresh dataset already stale: %v", fresh.StaleOrgs)
	}
	if fresh.StillValid != len(ds.Organizations) {
		t.Fatalf("fresh valid = %d of %d", fresh.StillValid, len(ds.Organizations))
	}

	// Age the world; the audit must now find work, and far less than a
	// full rebuild.
	events := Evolve(w, 5, 11, DefaultRates())
	aged := RunAudit(ds, w)
	if len(events) > 0 && len(aged.StaleOrgs)+len(aged.MissingCompanies) == 0 {
		t.Error("events occurred but the audit found nothing")
	}
	if aged.MaintenanceFraction > 0.5 {
		t.Errorf("maintenance fraction %.2f: ageing should be incremental", aged.MaintenanceFraction)
	}
	t.Logf("after 5 years: %d stale, %d missing, fraction %.3f",
		len(aged.StaleOrgs), len(aged.MissingCompanies), aged.MaintenanceFraction)
}
