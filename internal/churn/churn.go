// Package churn models what the paper's §9 calls "Changes in ownership
// over time" and proposes as future work: ownership of telecom companies
// is dynamic — privatizations (rare), (re-)nationalizations (the Ucell
// and Vodafone Fiji cases), and new foreign expansions — so a published
// dataset ages and needs periodic maintenance.
//
// Evolve applies seeded yearly ownership events to a world; Audit then
// compares an existing dataset against the evolved ground truth, telling
// the maintainer exactly what the paper predicted: re-validating an aged
// list is far cheaper than rebuilding it, because only a small fraction
// of records changes per year.
package churn

import (
	"fmt"
	"sort"

	"stateowned/internal/expand"
	"stateowned/internal/hijack"
	"stateowned/internal/ownership"
	"stateowned/internal/rng"
	"stateowned/internal/world"
)

// EventKind classifies an ownership-change event.
type EventKind uint8

// Event kinds.
const (
	Privatization EventKind = iota
	Nationalization
	NewForeignSubsidiary
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case Privatization:
		return "privatization"
	case Nationalization:
		return "nationalization"
	case NewForeignSubsidiary:
		return "new-foreign-subsidiary"
	default:
		return "unknown"
	}
}

// Event is one applied ownership change.
type Event struct {
	Year       int
	Kind       EventKind
	OperatorID string
	Company    string
	Country    string
	Detail     string
}

// Rates are the per-operator, per-year event probabilities. Defaults
// follow the paper's observations: privatizations are "relatively rare";
// nationalizations happen (Ucell 2018, Vodafone Fiji 2014); states keep
// expanding abroad.
type Rates struct {
	Privatization   float64
	Nationalization float64
	NewSubsidiary   float64
}

// DefaultRates mirror the observed decade: roughly one privatization per
// hundred state operators per year, and somewhat rarer nationalizations.
func DefaultRates() Rates {
	return Rates{Privatization: 0.012, Nationalization: 0.006, NewSubsidiary: 0.008}
}

// Evolve applies `years` years of ownership churn to the world, mutating
// its equity graph in place, and returns the event log in canonical
// (year, kind, operator ID) order.
//
// Each year runs in two deterministic phases. Phase one samples every
// in-scope operator against the year's rates using an operator-keyed
// random stream and the ownership state as of the start of the year, so
// neither the draws nor the decisions depend on the order in which
// operators are enumerated. Phase two sorts the proposed events by
// (kind, operator ID) and applies the mutations in that order. The
// evolved graph — and therefore the content of every dataset generation
// built from it — is identical under any permutation of
// world.OperatorIDs, any map-iteration order and any worker count: the
// same canonical-order contract the build scheduler enforces for the
// pipeline itself.
func Evolve(w *world.World, years int, seed uint64, rates Rates) []Event {
	r := rng.New(seed).Sub("churn")
	var events []Event
	for year := 1; year <= years; year++ {
		yr := r.Sub(fmt.Sprintf("year/%d", year))

		// Phase 1: propose events from the start-of-year ownership state.
		var proposals []Event
		for _, id := range w.OperatorIDs {
			op := w.Operators[id]
			if !op.Kind.InScope() {
				continue
			}
			or := yr.Sub("op/" + id)
			ctrl := w.Graph.ControlOf(op.Entity)
			switch {
			case ctrl.Controlled() && or.Bool(rates.Privatization):
				proposals = append(proposals, Event{
					Year: year, Kind: Privatization, OperatorID: id,
					Company: op.BrandName, Country: op.Country,
					Detail: fmt.Sprintf("state of %s divests its holdings", ctrl.Controller),
				})
			case !ctrl.Controlled() && op.Kind == world.KindIncumbent && or.Bool(rates.Nationalization):
				proposals = append(proposals, Event{
					Year: year, Kind: Nationalization, OperatorID: id,
					Company: op.BrandName, Country: op.Country,
					Detail: fmt.Sprintf("government of %s acquires a majority", op.Country),
				})
			case ctrl.Controlled() && ctrl.Controller == op.Country && or.Bool(rates.NewSubsidiary):
				proposals = append(proposals, Event{
					Year: year, Kind: NewForeignSubsidiary, OperatorID: id,
					Company: op.BrandName, Country: op.Country,
					Detail: "announces a new foreign operation (no ASN yet)",
				})
			}
		}

		// Phase 2: apply in canonical (kind, operator ID) order. Proposals
		// whose precondition evaporated under an earlier same-year event
		// (the mutation reports false) are dropped from the log.
		sort.Slice(proposals, func(i, j int) bool {
			if proposals[i].Kind != proposals[j].Kind {
				return proposals[i].Kind < proposals[j].Kind
			}
			return proposals[i].OperatorID < proposals[j].OperatorID
		})
		for _, e := range proposals {
			op := w.Operators[e.OperatorID]
			switch e.Kind {
			case Privatization:
				if !privatize(w, op) {
					continue
				}
			case Nationalization:
				if !nationalize(w, op) {
					continue
				}
			}
			events = append(events, e)
		}
	}
	return events
}

// privatize removes every state-controlled holding in the operator and
// hands the equity to a new private buyer. The company keeps its name —
// the misleading-name hazard §9 warns about now exists in the world.
func privatize(w *world.World, op *world.Operator) bool {
	var removed float64
	for _, h := range w.Graph.Holders(op.Entity) {
		hc := w.Graph.ControlOf(h.Holder)
		if hc.Controlled() {
			removed += w.Graph.RemoveHolding(h.Holder, op.Entity)
		}
	}
	if removed <= 0 {
		return false
	}
	buyer := ownership.EntityID("buyer-" + op.ID)
	if _, ok := w.Graph.Entity(buyer); !ok {
		w.Graph.MustAddEntity(ownership.Entity{
			ID: buyer, Kind: ownership.KindPrivate,
			Name: op.BrandName + " private investors", Country: op.Country,
		})
	}
	w.Graph.MustAddHolding(ownership.Holding{Holder: buyer, Target: op.Entity, Share: removed})
	return true
}

// nationalize moves a majority of the operator's equity to its government.
func nationalize(w *world.World, op *world.Operator) bool {
	// Take over the largest private holder's position.
	for _, h := range w.Graph.Holders(op.Entity) {
		e, _ := w.Graph.Entity(h.Holder)
		if e.Kind != ownership.KindPrivate || h.Share < ownership.MajorityThreshold {
			continue
		}
		share := w.Graph.RemoveHolding(h.Holder, op.Entity)
		gov := ownership.EntityID("gov-" + op.Country)
		if _, ok := w.Graph.Entity(gov); !ok {
			w.Graph.MustAddEntity(ownership.Entity{
				ID: gov, Kind: ownership.KindGovernment,
				Name: "Government of " + op.Country, Country: op.Country,
			})
		}
		w.Graph.MustAddHolding(ownership.Holding{Holder: gov, Target: op.Entity, Share: share})
		return true
	}
	return false
}

// StaleOrg is one audit row: a dataset organization whose recorded
// classification no longer matches ground truth. Adversarial separates
// legitimate churn (privatizations, M&A — the record really changed)
// from hijack-coincident churn: when the generation's detection report
// shows an observed origin change against one of the organization's
// ASNs, the "ownership change" the audit sees may be an adversary's
// artifact, not a registry event, and a maintainer should verify the
// routing incident before editing the record.
type StaleOrg struct {
	OrgName string `json:"org_name"`
	// Adversarial is true when the ownership change joins against a
	// detected origin change: some ASN registered to this organization
	// appears as a victim in the generation's hijack report.
	Adversarial bool `json:"adversarial,omitempty"`
}

// Audit compares an existing dataset against the (possibly evolved)
// world, producing the maintenance picture §9 anticipates. The JSON
// form is the wire format of the serving layer's /v1/diff endpoint, so
// an offline RunAudit marshals byte-for-byte identically to the served
// generation diff.
type Audit struct {
	// StaleOrgs are dataset organizations that are no longer majority
	// state-owned (privatized since publication), each row annotated
	// with whether the change coincides with a detected hijack.
	StaleOrgs []StaleOrg `json:"stale_orgs"`
	// MissingCompanies are operators that became state-owned after the
	// dataset was built.
	MissingCompanies []string `json:"missing_companies"`
	// StillValid counts organizations whose classification holds.
	StillValid int `json:"still_valid"`
	// MaintenanceFraction is the share of records needing any edit —
	// the paper's argument that upkeep is "significantly less taxing"
	// than regeneration.
	MaintenanceFraction float64 `json:"maintenance_fraction"`
}

// RunAudit audits a dataset against the world's current ground truth.
// Equivalent to RunAuditFlagged with no detection report: every stale
// row is presumed legitimate churn.
func RunAudit(ds *expand.Dataset, w *world.World) Audit {
	return RunAuditFlagged(ds, w, nil)
}

// RunAuditFlagged audits a dataset against the world's current ground
// truth and joins each stale row against the generation's hijack
// detection report (nil or empty for honest generations — then it is
// exactly RunAudit). A stale organization whose ASNs include a detected
// victim is flagged Adversarial: the apparent ownership change
// coincides with an observed origin change, so it may be routing
// adversary noise rather than a registry event.
func RunAuditFlagged(ds *expand.Dataset, w *world.World, rep *hijack.Report) Audit {
	victims := map[world.ASN]bool{}
	if rep != nil {
		for _, d := range rep.Detections {
			victims[d.Victim] = true
		}
	}
	var a Audit
	inDataset := map[string]bool{}
	for i := range ds.Organizations {
		org := &ds.Organizations[i]
		valid, adversarial := false, false
		for _, asn := range ds.ASNs[i].ASNs {
			if owner, ok := w.TrueStateOwnedAS(asn); ok && owner == org.OwnershipCC {
				valid = true
			}
			if victims[asn] {
				adversarial = true
			}
			if op, ok := w.OperatorOfAS(asn); ok {
				inDataset[op.ID] = true
			}
		}
		if valid {
			a.StillValid++
		} else {
			a.StaleOrgs = append(a.StaleOrgs, StaleOrg{OrgName: org.OrgName, Adversarial: adversarial})
		}
	}
	for _, id := range w.OperatorIDs {
		op := w.Operators[id]
		if !op.Kind.InScope() || inDataset[id] {
			continue
		}
		if w.Graph.ControlOf(op.Entity).Controlled() {
			a.MissingCompanies = append(a.MissingCompanies, op.BrandName)
		}
	}
	sort.Slice(a.StaleOrgs, func(i, j int) bool { return a.StaleOrgs[i].OrgName < a.StaleOrgs[j].OrgName })
	sort.Strings(a.MissingCompanies)
	if n := len(ds.Organizations); n > 0 {
		a.MaintenanceFraction = float64(len(a.StaleOrgs)+len(a.MissingCompanies)) / float64(n)
	}
	return a
}
