package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedSeparation(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func TestSubStreams(t *testing.T) {
	parent := New(7)
	c1 := parent.Sub("geo")
	c2 := parent.Sub("eyeballs")
	c1b := New(7).Sub("geo")
	if c1.Uint64() != c1b.Uint64() {
		t.Error("same-label sub-streams differ")
	}
	if c1.Uint64() == c2.Uint64() {
		t.Error("different-label sub-streams coincide")
	}
	// Deriving children must not advance the parent.
	p1, p2 := New(7), New(7)
	p1.Sub("x")
	if p1.Uint64() != p2.Uint64() {
		t.Error("Sub advanced the parent stream")
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(10) value %d count %d outside uniform band", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			f := s.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestNormMoments(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.Norm(5, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("mean = %f, want ~5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("stddev = %f, want ~2", math.Sqrt(variance))
	}
}

func TestParetoTail(t *testing.T) {
	s := New(13)
	for i := 0; i < 10000; i++ {
		if v := s.Pareto(1, 1.2); v < 1 {
			t.Fatalf("Pareto below xm: %f", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		p := s.Perm(50)
		seen := make([]bool, 50)
		for _, v := range p {
			if v < 0 || v >= 50 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestWeightedPick(t *testing.T) {
	s := New(17)
	weights := []float64{0, 1, 3, 0}
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[s.WeightedPick(weights)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Errorf("zero-weight indices picked: %v", counts)
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight ratio = %f, want ~3", ratio)
	}
}

func TestWeightedPickAllZero(t *testing.T) {
	if got := New(1).WeightedPick([]float64{0, 0}); got != 0 {
		t.Errorf("all-zero weights pick = %d, want 0", got)
	}
}

func TestIntBetween(t *testing.T) {
	s := New(19)
	for i := 0; i < 1000; i++ {
		v := s.IntBetween(5, 7)
		if v < 5 || v > 7 {
			t.Fatalf("IntBetween out of range: %d", v)
		}
	}
	if got := s.IntBetween(4, 4); got != 4 {
		t.Errorf("degenerate IntBetween = %d", got)
	}
}

func TestSampleStrings(t *testing.T) {
	s := New(23)
	xs := []string{"a", "b", "c", "d", "e"}
	got := s.SampleStrings(xs, 3)
	if len(got) != 3 {
		t.Fatalf("sample size = %d", len(got))
	}
	seen := map[string]bool{}
	for _, g := range got {
		if seen[g] {
			t.Errorf("duplicate sample %q", g)
		}
		seen[g] = true
	}
	if got := s.SampleStrings(xs, 10); len(got) != 5 {
		t.Errorf("oversized sample length = %d, want 5", len(got))
	}
}
