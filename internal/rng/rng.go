// Package rng supplies deterministic pseudo-random streams for the world
// generator and the data-source simulators.
//
// Reproducibility is a hard requirement: every experiment in the paper
// reproduction must regenerate identical numbers for a given seed, across
// machines and Go releases. We therefore implement our own generator
// (splitmix64 seeding a xoshiro256** state) instead of relying on math/rand,
// and we derive independent sub-streams from string labels so that adding a
// new consumer of randomness does not perturb existing ones.
package rng

import (
	"hash/fnv"
	"math"
	"sort"
)

// Stream is a deterministic PRNG. The zero value is not usable; construct
// with New or derive with Sub.
type Stream struct {
	s [4]uint64
}

// New returns a stream seeded from the given 64-bit seed.
func New(seed uint64) *Stream {
	st := &Stream{}
	x := seed
	for i := range st.s {
		x = splitmix64(&x)
		st.s[i] = x
	}
	// A few warm-up rounds decorrelate nearby seeds.
	for i := 0; i < 8; i++ {
		st.Uint64()
	}
	return st
}

// Sub derives an independent child stream from a label. Two Sub calls with
// the same label on streams in the same state yield identical children;
// different labels yield statistically independent children.
func (s *Stream) Sub(label string) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	// Mix the label hash with the parent state rather than the parent
	// output so deriving children does not advance the parent.
	return New(h.Sum64() ^ rotl(s.s[0], 17) ^ s.s[2])
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 bits (xoshiro256**).
func (s *Stream) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling, simplified: rejection
	// sampling on the high bits keeps the distribution exactly uniform.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := s.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// IntBetween returns a uniform integer in [lo, hi]. It panics if hi < lo.
func (s *Stream) IntBetween(lo, hi int) int {
	if hi < lo {
		panic("rng: IntBetween with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Float64 returns a uniform float in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// FloatBetween returns a uniform float in [lo, hi).
func (s *Stream) FloatBetween(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool { return s.Float64() < p }

// Norm returns a normally distributed value with the given mean and
// standard deviation (Box–Muller).
func (s *Stream) Norm(mean, stddev float64) float64 {
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNorm returns a log-normally distributed value whose underlying normal
// has the given mu and sigma.
func (s *Stream) LogNorm(mu, sigma float64) float64 {
	return math.Exp(s.Norm(mu, sigma))
}

// Pareto returns a Pareto(alpha)-distributed value with minimum xm. Heavy
// tails model AS sizes and company market shares well.
func (s *Stream) Pareto(xm, alpha float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles the slice in place (Fisher–Yates).
func (s *Stream) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// PickString returns a uniformly chosen element of the slice.
// It panics on an empty slice.
func (s *Stream) PickString(xs []string) string {
	return xs[s.Intn(len(xs))]
}

// WeightedPick returns an index of weights chosen with probability
// proportional to its weight. Zero and negative weights are treated as
// unselectable; if all weights are unselectable it returns 0.
func (s *Stream) WeightedPick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	r := s.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// SampleStrings returns k distinct elements chosen uniformly from xs,
// in a stable pseudo-random order. If k >= len(xs) a shuffled copy of xs
// is returned.
func (s *Stream) SampleStrings(xs []string, k int) []string {
	cp := make([]string, len(xs))
	copy(cp, xs)
	s.Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
	if k > len(cp) {
		k = len(cp)
	}
	out := cp[:k]
	sort.Strings(out)
	return out
}
