package snapshot

// Proof battery for the durable generation archive's warm-start
// contract (ISSUE 10): a recovered store serves the record plane
// byte-identically to its pre-crash self; a crash at ANY filesystem
// operation of the archive write path recovers to a verified prefix of
// the committed history; arbitrary single-bit corruption is always
// quarantined, never served.
//
// Cost discipline: pipeline builds dominate test time, so the sweeps
// replay a once-built baseline's (record, dataset bytes) pairs straight
// through the archive layer — the exact byte streams and FS call
// sequence a store-driven commit produces — and spend real builds only
// where store-level behavior (warm start, resumed advance) is itself
// under test.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"stateowned"
	"stateowned/internal/durable"
	"stateowned/internal/serve"
)

// recoveryGens is the chain depth every recovery test builds: 3
// generations (0..2).
const recoveryGens = 2

// recoveryBase is the build config for recovery tests: hijack campaigns
// on, so the archived record carries a detection report and
// adversarial-joined audit spans, not just the dataset.
func recoveryBase(seed uint64) stateowned.Config {
	return stateowned.Config{Seed: seed, Scale: testScale, HijackSeverity: 0.75, ROVFraction: 0.25}
}

// archiveBaseline is one seed's pre-built archive content: the verbatim
// (record, dataset) pairs a store-driven chain committed, reusable to
// reconstruct the archive's FS state cheaply under fault injection.
type archiveBaseline struct {
	records  []*durable.Record
	datasets [][]byte
}

var (
	baselineMu  sync.Mutex
	baselineMap = map[uint64]*archiveBaseline{}
)

// recoveryBaseline builds (once per seed) a 3-generation archived chain
// through the real store and captures the archive's contents.
func recoveryBaseline(t *testing.T, seed uint64) *archiveBaseline {
	t.Helper()
	baselineMu.Lock()
	defer baselineMu.Unlock()
	if b, ok := baselineMap[seed]; ok {
		return b
	}
	mem := durable.NewMemFS()
	a, err := durable.Open(durable.Options{FS: mem, Dir: "arch"})
	if err != nil {
		t.Fatalf("baseline archive: %v", err)
	}
	s := New(Options{Base: recoveryBase(seed), Retain: 4, Archive: a})
	for g := 1; g <= recoveryGens; g++ {
		if s.Advance() == nil {
			t.Fatalf("baseline advance to %d: %v", g, s.Degraded())
		}
	}
	if c := a.Counters(); c.WriteFailures != 0 || c.Writes != recoveryGens+1 {
		t.Fatalf("baseline archive counters off: %+v", c)
	}
	// Reopen to capture exactly what a recovery reads.
	b2, err := durable.Open(durable.Options{FS: mem, Dir: "arch"})
	if err != nil {
		t.Fatalf("baseline reopen: %v", err)
	}
	base := &archiveBaseline{}
	for _, rg := range b2.Recovered().Generations {
		base.records = append(base.records, rg.Record)
		base.datasets = append(base.datasets, rg.Dataset)
	}
	if len(base.records) != recoveryGens+1 {
		t.Fatalf("baseline recovered %d generations, want %d", len(base.records), recoveryGens+1)
	}
	// The archived bytes are the live store's export, verbatim.
	for g := 0; g <= recoveryGens; g++ {
		lg, st := s.Lookup(g)
		if st != serve.GenOK {
			t.Fatalf("baseline generation %d not retained", g)
		}
		if !bytes.Equal(base.datasets[g], exportDataset(t, lg)) {
			t.Fatalf("baseline generation %d: archived bytes differ from live export", g)
		}
	}
	baselineMap[seed] = base
	return base
}

// replayBaseline commits the baseline's generations through a fresh
// archive over fs, stopping at the first error (an injected fault).
func replayBaseline(base *archiveBaseline, fs durable.FS) error {
	a, err := durable.Open(durable.Options{FS: fs, Dir: "arch"})
	if err != nil {
		return err
	}
	for i, rec := range base.records {
		if _, err := a.Commit(rec, base.datasets[i]); err != nil {
			return err
		}
	}
	return nil
}

// recordPlanePaths is the HTTP battery every generation must answer
// byte-identically across a crash/recover cycle.
func recordPlanePaths(t *testing.T, g *Generation) []string {
	t.Helper()
	var paths []string
	for _, p := range probePaths(t, g) {
		if strings.HasPrefix(p, "/v1/graph/") {
			continue // the graph plane is process memory; 404 after recovery
		}
		paths = append(paths, p)
	}
	return paths
}

// graphPlanePaths is the complement: served pre-crash, 404 post-crash
// until the next live build.
func graphPlanePaths(t *testing.T, g *Generation) []string {
	t.Helper()
	var paths []string
	for _, p := range probePaths(t, g) {
		if strings.HasPrefix(p, "/v1/graph/") {
			paths = append(paths, p)
		}
	}
	return paths
}

// TestWarmStartByteIdentity is the warm-start contract end to end:
// build an archived chain, kill the process (nothing outlives the
// filesystem), boot a fresh store over the same directory, and compare
// every record-plane surface of every retained generation byte for
// byte — then resume the reload cadence and prove the next built
// generation equals the one the dead process would have built.
func TestWarmStartByteIdentity(t *testing.T) {
	mem := durable.NewMemFS()
	a1, err := durable.Open(durable.Options{FS: mem, Dir: "arch"})
	if err != nil {
		t.Fatalf("archive: %v", err)
	}
	opts := Options{Base: recoveryBase(42), Retain: 4, Archive: a1}
	s1 := New(opts)
	for g := 1; g <= recoveryGens; g++ {
		if s1.Advance() == nil {
			t.Fatalf("advance to %d: %v", g, s1.Degraded())
		}
	}
	if s1.RecoveredGen() != -1 {
		t.Fatalf("cold start reported recovered generation %d", s1.RecoveredGen())
	}

	srv1 := httptest.NewServer(serve.NewDynamic(s1.Source(), serve.Options{}))
	defer srv1.Close()
	g0, _ := s1.Lookup(0)
	recPaths := recordPlanePaths(t, g0)
	graphPaths := graphPlanePaths(t, g0)

	type probe struct {
		status int
		body   string
	}
	pre := map[string]probe{}
	for gen := 0; gen <= recoveryGens; gen++ {
		for _, p := range recPaths {
			pp := pin(p, gen)
			st, body := fetch(t, srv1, pp)
			pre[pp] = probe{st, body}
		}
	}
	for from := 0; from <= recoveryGens; from++ {
		for to := 0; to <= recoveryGens; to++ {
			if from == to {
				continue
			}
			p := fmt.Sprintf("/v1/diff?from=%d&to=%d", from, to)
			st, body := fetch(t, srv1, p)
			pre[p] = probe{st, body}
		}
	}

	// The crash: the process dies, the disk survives as fsync left it.
	mem.Crash(0)

	a2, err := durable.Open(durable.Options{FS: mem, Dir: "arch"})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	if got := len(a2.Recovered().Generations); got != recoveryGens+1 {
		t.Fatalf("recovered %d generations, want %d (quarantined %+v)",
			got, recoveryGens+1, a2.Recovered().Quarantined)
	}
	opts.Archive = a2
	s2 := New(opts)
	if s2.RecoveredGen() != recoveryGens {
		t.Fatalf("RecoveredGen = %d, want %d", s2.RecoveredGen(), recoveryGens)
	}
	if cur := s2.Current(); cur.Gen != recoveryGens || !cur.Recovered {
		t.Fatalf("current = gen %d (recovered=%v), want recovered gen %d", cur.Gen, cur.Recovered, recoveryGens)
	}
	if got, want := fmt.Sprint(s2.Retained()), fmt.Sprint(s1.Retained()); got != want {
		t.Fatalf("retained ring %s, want %s", got, want)
	}

	srv2 := httptest.NewServer(serve.NewDynamic(s2.Source(), serve.Options{}))
	defer srv2.Close()
	for p, want := range pre {
		st, body := fetch(t, srv2, p)
		if st != want.status || body != want.body {
			t.Errorf("GET %s diverges after recovery\npre-crash (%d): %.300s\nrecovered (%d): %.300s",
				p, want.status, want.body, st, body)
		}
	}
	// Generation pinning survived: the X-Generation header names the
	// pinned generation exactly as before the crash.
	resp, err := srv2.Client().Get(srv2.URL + pin("/v1/dataset", recoveryGens))
	if err != nil {
		t.Fatalf("pinned dataset: %v", err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Generation"); got != fmt.Sprint(recoveryGens) {
		t.Errorf("X-Generation = %q, want %d", got, recoveryGens)
	}
	// The graph plane is honestly absent, not wrong: 404 with the
	// structured reason until the next live build.
	for _, p := range graphPaths {
		st, body := fetch(t, srv2, p)
		if st != 404 || !strings.Contains(body, "graph index unavailable") {
			t.Errorf("GET %s after recovery = %d %.120s, want 404 graph-unavailable", p, st, body)
		}
	}
	// /readyz and /metrics surface the recovery.
	var ready struct {
		Archive          bool   `json:"archive"`
		Recovered        bool   `json:"recovered"`
		RecoveredGen     int    `json:"recovered_gen"`
		SegmentsVerified uint64 `json:"segments_verified"`
	}
	_, body := fetch(t, srv2, "/readyz")
	if err := json.Unmarshal([]byte(body), &ready); err != nil {
		t.Fatalf("parsing /readyz: %v", err)
	}
	if !ready.Archive || !ready.Recovered || ready.RecoveredGen != recoveryGens || ready.SegmentsVerified != uint64(recoveryGens+1) {
		t.Errorf("/readyz recovery fields wrong: %+v (%s)", ready, body)
	}
	var metrics struct {
		Recovered     bool   `json:"recovered"`
		RecoveredGen  int    `json:"recovered_gen"`
		ArchiveWrites uint64 `json:"archive_writes"`
	}
	_, body = fetch(t, srv2, "/metrics")
	if err := json.Unmarshal([]byte(body), &metrics); err != nil {
		t.Fatalf("parsing /metrics: %v", err)
	}
	if !metrics.Recovered || metrics.RecoveredGen != recoveryGens {
		t.Errorf("/metrics recovery fields wrong: %+v", metrics)
	}

	// Resume the cadence: both stores build the next generation; the
	// recovered store's build must be byte-identical to the survivor's
	// (generation content is a pure function of (Base, churn seed, g),
	// and recovery restored that function's inputs).
	next := recoveryGens + 1
	gLive := s1.Advance()
	gRec := s2.Advance()
	if gLive == nil || gRec == nil {
		t.Fatalf("post-recovery advance failed: live=%v recovered=%v (%v)", gLive, gRec, s2.Degraded())
	}
	if gRec.Gen != next || gRec.World == nil || gRec.Recovered {
		t.Fatalf("resumed generation %d malformed (world=%v recovered=%v)", gRec.Gen, gRec.World != nil, gRec.Recovered)
	}
	if !bytes.Equal(exportDataset(t, gLive), exportDataset(t, gRec)) {
		t.Errorf("resumed generation %d dataset differs from the uncrashed store's", next)
	}
	// The graph plane is back for the live-built generation...
	for _, p := range graphPaths {
		pp := pin(p, next)
		st1, b1 := fetch(t, srv1, pp)
		st2, b2 := fetch(t, srv2, pp)
		if st1 != st2 || b1 != b2 {
			t.Errorf("GET %s diverges on the resumed generation (%d vs %d)", pp, st1, st2)
		}
	}
	// ...and /v1/diff across the crash boundary: a recovered `from` with
	// a live `to` computes the audit live (to's world exists) and must
	// match the uncrashed store; a live `from` against a recovered `to`
	// has no archived span — those generations never coexisted before
	// the crash — and honestly 404s rather than fabricating an audit.
	liveTo := fmt.Sprintf("/v1/diff?from=%d&to=%d", recoveryGens, next)
	st1, b1 := fetch(t, srv1, liveTo)
	st2, b2 := fetch(t, srv2, liveTo)
	if st1 != st2 || b1 != b2 {
		t.Errorf("GET %s diverges after recovery: %d %.200s vs %d %.200s", liveTo, st1, b1, st2, b2)
	}
	recTo := fmt.Sprintf("/v1/diff?from=%d&to=%d", next, recoveryGens)
	if st, body := fetch(t, srv2, recTo); st != 404 {
		t.Errorf("GET %s = %d %.200s, want 404 (no archived span across the crash)", recTo, st, body)
	}
}

// TestRecoveryCrashPointSweep kills the archive writer at every
// filesystem operation of the commit sequence (ISSUE: "kill at every
// fault point"), for seeds {7, 21, 42} and torn-write severities
// {0, 0.5}, and proves recovery always lands on a verified, contiguous,
// byte-identical prefix of the committed chain — and that a store
// booting over the survivor state warm-starts on exactly that prefix.
func TestRecoveryCrashPointSweep(t *testing.T) {
	seeds := []uint64{7, 21, 42}
	if testing.Short() {
		seeds = []uint64{42}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			base := recoveryBaseline(t, seed)
			// Count the replay's operations once.
			counter := durable.NewFaultFS(durable.NewMemFS())
			if err := replayBaseline(base, counter); err != nil {
				t.Fatalf("clean replay: %v", err)
			}
			totalOps := counter.Ops()

			stride := 1
			if seed != 42 {
				stride = 3 // full resolution on one seed, sampled on the others
			}
			if testing.Short() {
				stride = 2
			}
			for _, tornKeep := range []float64{0, 0.5} {
				for k := 0; k < totalOps; k += stride {
					mem := durable.NewMemFS()
					ffs := durable.NewFaultFS(mem)
					ffs.CrashAt = k
					err := replayBaseline(base, ffs)
					if k > 0 && err == nil {
						t.Fatalf("crash@%d: replay did not observe the crash", k)
					}
					mem.Crash(tornKeep)

					a, err := durable.Open(durable.Options{FS: mem, Dir: "arch"})
					if err != nil {
						// The crash predates a usable directory (e.g. during
						// MkdirAll/probe): a cold start, not a recovery bug.
						continue
					}
					rec := a.Recovered()
					if len(rec.Quarantined) != 0 {
						t.Fatalf("crash@%d torn=%v: crash damage quarantined instead of truncated: %+v",
							k, tornKeep, rec.Quarantined)
					}
					for i, rg := range rec.Generations {
						if rg.Record.Gen != i {
							t.Fatalf("crash@%d torn=%v: recovered gens not a contiguous prefix", k, tornKeep)
						}
						if !bytes.Equal(rg.Dataset, base.datasets[i]) {
							t.Fatalf("crash@%d torn=%v: generation %d bytes differ from pre-crash", k, tornKeep, i)
						}
					}
					if len(rec.Generations) == 0 {
						continue // empty archive → cold start, covered elsewhere
					}
					// A store over the survivor state warm-starts on the
					// newest verified generation and serves its bytes.
					s := New(Options{Base: recoveryBase(seed), Retain: 4, Archive: a})
					newest := len(rec.Generations) - 1
					if s.RecoveredGen() != newest || s.Current().Gen != newest {
						t.Fatalf("crash@%d torn=%v: warm start on gen %d/%d, want %d",
							k, tornKeep, s.RecoveredGen(), s.Current().Gen, newest)
					}
					for g := 0; g <= newest; g++ {
						lg, st := s.Lookup(g)
						if st != serve.GenOK {
							t.Fatalf("crash@%d torn=%v: generation %d not pinnable after recovery", k, tornKeep, g)
						}
						if !bytes.Equal(exportDataset(t, lg), base.datasets[g]) {
							t.Fatalf("crash@%d torn=%v: generation %d serves different bytes", k, tornKeep, g)
						}
					}
				}
			}
		})
	}
}

// TestRecoveryCorruptionSweep flips single bits across every archived
// file — segments and manifest — and proves recovery never adopts
// damaged bytes: every recovered generation is byte-identical to the
// baseline, everything else is quarantined (with a structured reason)
// or truncated away.
func TestRecoveryCorruptionSweep(t *testing.T) {
	base := recoveryBaseline(t, 42)
	files := []string{"arch/" + durable.ManifestName}
	for g := 0; g <= recoveryGens; g++ {
		files = append(files, fmt.Sprintf("arch/gen-%08d.seg", g))
	}
	for _, file := range files {
		file := file
		t.Run(strings.TrimPrefix(file, "arch/"), func(t *testing.T) {
			// Determine the file's length from one clean replay.
			probe := durable.NewMemFS()
			if err := replayBaseline(base, probe); err != nil {
				t.Fatalf("clean replay: %v", err)
			}
			n := probe.FileLen(file)
			if n <= 0 {
				t.Fatalf("file %s not present after replay", file)
			}
			offsets := []int{1, n / 5, 2 * n / 5, n / 2, 3 * n / 5, 4 * n / 5, n - 2}
			if testing.Short() {
				offsets = []int{1, n / 2, n - 2}
			}
			for _, off := range offsets {
				mem := durable.NewMemFS()
				if err := replayBaseline(base, mem); err != nil {
					t.Fatalf("replay: %v", err)
				}
				if !mem.FlipBit(file, off, 0x20) {
					t.Fatalf("FlipBit(%s, %d) missed", file, off)
				}
				a, err := durable.Open(durable.Options{FS: mem, Dir: "arch"})
				if err != nil {
					t.Fatalf("flip %s@%d: Open: %v", file, off, err)
				}
				rec := a.Recovered()
				for _, rg := range rec.Generations {
					if !bytes.Equal(rg.Dataset, base.datasets[rg.Record.Gen]) {
						t.Fatalf("flip %s@%d: recovery adopted corrupt bytes for generation %d",
							file, off, rg.Record.Gen)
					}
				}
				damaged := recoveryGens + 1 - len(rec.Generations)
				if damaged == 0 {
					t.Fatalf("flip %s@%d went entirely undetected", file, off)
				}
				for _, q := range rec.Quarantined {
					if q.Reason == "" {
						t.Fatalf("flip %s@%d: quarantine without a reason: %+v", file, off, q)
					}
				}
				// Manifest damage truncates (note), segment damage
				// quarantines (reason); either way the loss is accounted.
				if len(rec.Quarantined) == 0 && rec.ManifestNote == "" {
					t.Fatalf("flip %s@%d: %d generations silently missing", file, off, damaged)
				}
				if len(rec.Generations) == 0 {
					continue // nothing verified → cold start
				}
				// Warm start serves only the verified prefix.
				s := New(Options{Base: recoveryBase(42), Retain: 4, Archive: a})
				cur := s.Current()
				if !cur.Recovered {
					t.Fatalf("flip %s@%d: store did not warm start", file, off)
				}
				if !bytes.Equal(exportDataset(t, cur), base.datasets[cur.Gen]) {
					t.Fatalf("flip %s@%d: warm-started generation %d serves different bytes", file, off, cur.Gen)
				}
			}
		})
	}
}

// TestRecoveryArchiveWriteFailureDegrades: a dead disk after boot must
// cost durability, never availability — the store keeps publishing
// generations from memory and surfaces the failure on /readyz.
func TestRecoveryArchiveWriteFailureDegrades(t *testing.T) {
	mem := durable.NewMemFS()
	ffs := durable.NewFaultFS(mem)
	a, err := durable.Open(durable.Options{FS: ffs, Dir: "arch"})
	if err != nil {
		t.Fatalf("archive: %v", err)
	}
	s := New(Options{Base: recoveryBase(7), Retain: 4, Archive: a})
	ffs.CrashAt = ffs.Ops() // the disk dies now
	if s.Advance() == nil {
		t.Fatalf("advance quarantined by archive failure: %v", s.Degraded())
	}
	if s.Current().Gen != 1 {
		t.Fatalf("store did not publish past the dead disk (gen %d)", s.Current().Gen)
	}
	if c := a.Counters(); c.WriteFailures == 0 {
		t.Fatalf("dead disk not counted: %+v", c)
	}
	st := s.Source().ReloadStatus()
	if st.ArchiveWriteFailures == 0 || st.ArchiveLastError == "" {
		t.Fatalf("reload status hides the archive failure: %+v", st)
	}
	if st.Degraded {
		t.Fatalf("archive failure must not mark the reload plane degraded: %+v", st)
	}
}
